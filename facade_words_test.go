package sherlock

import (
	"math/rand"
	"reflect"
	"testing"
)

// packBatch packs map-keyed vectors into a RunBatchWords slot-major block
// the way the serving layer does.
func packBatch(t *testing.T, names []string, batch []map[string]bool) ([]uint64, int) {
	t.Helper()
	lanes := len(batch)
	W := (lanes + 63) / 64
	in := make([]uint64, len(names)*W)
	for l, inp := range batch {
		for s, name := range names {
			v, ok := inp[name]
			if !ok {
				t.Fatalf("vector %d: missing input %q", l, name)
			}
			if v {
				in[s*W+l/64] |= uint64(1) << uint(l%64)
			}
		}
	}
	return in, lanes
}

// TestRunBatchWordsMatchesRunBatch pins the packed-bits fast path to the
// map path bit for bit, across group boundaries (1, 63, 64, 65, 255, 256,
// 300 lanes exercise partial words, partial blocks, and multi-group runs).
func TestRunBatchWordsMatchesRunBatch(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	names := c.InputNames()
	outNames := c.OutputNames()
	if len(outNames) != 2 {
		t.Fatalf("OutputNames() = %v, want 2 names", outNames)
	}
	rng := rand.New(rand.NewSource(7))
	for _, lanes := range []int{1, 63, 64, 65, 255, 256, 300} {
		batch := make([]map[string]bool, lanes)
		for i := range batch {
			batch[i] = map[string]bool{
				"a": rng.Intn(2) == 1, "b": rng.Intn(2) == 1, "c": rng.Intn(2) == 1,
			}
		}
		want, err := c.RunBatch(batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		in, n := packBatch(t, names, batch)
		out, err := c.RunBatchWords(in, n, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		W := (lanes + 63) / 64
		if len(out) != len(outNames)*W {
			t.Fatalf("lanes=%d: out has %d words, want %d", lanes, len(out), len(outNames)*W)
		}
		for o, name := range outNames {
			for l := 0; l < lanes; l++ {
				got := out[o*W+l/64]>>uint(l%64)&1 == 1
				if got != want[l][name] {
					t.Fatalf("lanes=%d: vector %d output %q: packed=%v map=%v", lanes, l, name, got, want[l][name])
				}
			}
			// Dead lanes of the last word must be masked to zero.
			if rem := lanes % 64; rem != 0 {
				if extra := out[o*W+W-1] >> uint(rem); extra != 0 {
					t.Fatalf("lanes=%d: output %q has bits beyond the last lane: %#x", lanes, name, extra)
				}
			}
		}
	}
}

// TestRunBatchWordsReusesBuffer pins that a caller-provided output buffer
// with enough capacity is returned in place (the steady-state serving
// path allocates nothing).
func TestRunBatchWordsReusesBuffer(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	names := c.InputNames()
	batch := []map[string]bool{
		{"a": true, "b": false, "c": true},
		{"a": false, "b": true, "c": true},
	}
	in, lanes := packBatch(t, names, batch)
	buf := make([]uint64, 16)
	out, err := c.RunBatchWords(in, lanes, buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Error("RunBatchWords reallocated despite sufficient capacity")
	}
	// Warmed up, the packed path performs zero allocations per call. The
	// race detector perturbs sync.Pool reuse, so only assert without it.
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.RunBatchWords(in, lanes, buf, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("RunBatchWords steady state allocates %.1f objects/call, want 0", allocs)
	}
}

func TestRunBatchWordsInputValidation(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBatchWords(make([]uint64, 1), 65, nil, 1); err == nil {
		t.Error("short input block accepted")
	}
	if _, err := c.RunBatchWords(nil, 0, nil, 1); err == nil {
		t.Error("zero lanes accepted")
	}
}

// TestRunBatchOutputMapsAreCallerOwned pins the RunBatch ownership
// contract: the returned maps are fresh on every call, so a caller
// mutating them — flipping values, adding keys — cannot corrupt a later
// batch's results, and the later batch never returns the same map
// objects.
func TestRunBatchOutputMapsAreCallerOwned(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	batch := []map[string]bool{
		{"a": true, "b": true, "c": false},
		{"a": false, "b": true, "c": true},
		{"a": true, "b": false, "c": true},
	}
	want, err := c.RunBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.RunBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything the first call returned.
	for _, m := range first {
		for k := range m {
			m[k] = !m[k]
		}
		m["garbage"] = true
	}
	second, err := c.RunBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if reflect.ValueOf(second[i]).Pointer() == reflect.ValueOf(first[i]).Pointer() {
			t.Errorf("vector %d: second batch returned the first batch's map object", i)
		}
		if _, ok := second[i]["garbage"]; ok {
			t.Errorf("vector %d: caller mutation leaked into the next batch", i)
		}
		for k, v := range want[i] {
			if second[i][k] != v {
				t.Errorf("vector %d output %q: got %v after mutation, want %v", i, k, second[i][k], v)
			}
		}
	}
}

// TestRunBatchIntoReusesMaps pins output-map reuse: the second call fills
// the same map objects rather than allocating fresh ones, and stale keys
// from the previous fill do not survive.
func TestRunBatchIntoReusesMaps(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	batch := []map[string]bool{
		{"a": true, "b": true, "c": false},
		{"a": false, "b": false, "c": true},
	}
	outs := make([]map[string]bool, len(batch))
	if err := c.RunBatchInto(batch, outs, 1); err != nil {
		t.Fatal(err)
	}
	first := []uintptr{reflect.ValueOf(outs[0]).Pointer(), reflect.ValueOf(outs[1]).Pointer()}
	outs[0]["stale"] = true
	if err := c.RunBatchInto(batch, outs, 1); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if reflect.ValueOf(outs[i]).Pointer() != first[i] {
			t.Errorf("output map %d was reallocated instead of reused", i)
		}
	}
	if _, ok := outs[0]["stale"]; ok {
		t.Error("stale key survived map reuse")
	}
	want, err := c.RunBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k, v := range want[i] {
			if outs[i][k] != v {
				t.Errorf("vector %d output %q: got %v, want %v", i, k, outs[i][k], v)
			}
		}
	}
	if err := c.RunBatchInto(batch, make([]map[string]bool, 1), 1); err == nil {
		t.Error("mismatched outs length accepted")
	}
}
