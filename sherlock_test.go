package sherlock

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

const demoKernel = `
void demo(word a, word b, word c, word *lo, word *hi) {
	word t = (a & b) ^ c;
	*lo = t | ~a;
	*hi = t & b;
}`

func TestCompileCAndRun(t *testing.T) {
	for _, mapper := range []MapperKind{MapperNaive, MapperOptimized} {
		c, err := CompileC(demoKernel, Options{Mapper: mapper, Tech: ReRAM, ArraySize: 128})
		if err != nil {
			t.Fatalf("%v: %v", mapper, err)
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 16; trial++ {
			in := map[string]bool{
				"a": rng.Intn(2) == 1, "b": rng.Intn(2) == 1, "c": rng.Intn(2) == 1,
			}
			got, err := c.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("%v trial %d: %s = %v, want %v", mapper, trial, name, got[name], w)
				}
			}
		}
	}
}

func TestCompileCSyntaxError(t *testing.T) {
	if _, err := CompileC("void broken(", Options{}); err == nil {
		t.Fatal("syntax error not reported")
	}
}

func TestCostAndReliability(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: STTMRAM, ArraySize: 256})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := c.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyNS <= 0 || cost.EnergyPJ <= 0 {
		t.Errorf("degenerate cost %+v", cost)
	}
	rel, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if rel.PApp <= 0 || rel.PApp >= 1 {
		t.Errorf("P_app = %g outside (0,1)", rel.PApp)
	}
	if rel.SenseDecisions == 0 {
		t.Error("no sense decisions counted")
	}
}

func TestBuilderFrontend(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("nand", b.Nand(x, y))
	c, err := CompileGraph(b.Graph(), Options{ArraySize: 128, Arrays: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []map[string]bool{
		{"x": true, "y": true}, {"x": true, "y": false},
	} {
		got, err := c.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if got["nand"] != !(in["x"] && in["y"]) {
			t.Fatalf("nand(%v) = %v", in, got["nand"])
		}
	}
}

func TestMultiRowActivationOption(t *testing.T) {
	b := NewBuilder()
	b.DisableCSE = true
	acc := b.Input("v0")
	for i := 1; i < 6; i++ {
		acc = b.And(acc, b.Input(fmt.Sprintf("v%d", i)))
	}
	b.Output("all", acc)
	g := b.Graph()

	plain, err := CompileGraph(g, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := CompileGraph(g, Options{Tech: ReRAM, ArraySize: 128, MultiRowActivation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Program) >= len(plain.Program) {
		t.Errorf("MRA did not shrink the program: %d vs %d", len(fused.Program), len(plain.Program))
	}
	in := make(map[string]bool)
	for i := 0; i < 6; i++ {
		in[fmt.Sprintf("v%d", i)] = true
	}
	got, err := fused.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got["all"] {
		t.Error("fused AND chain computed wrong result")
	}
}

func TestNANDLoweringOption(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.Xor(x, y))
	c, err := CompileGraph(b.Graph(), Options{Tech: STTMRAM, ArraySize: 128, NANDLowering: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(map[string]bool{"x": true, "y": false})
	if err != nil {
		t.Fatal(err)
	}
	if !got["o"] {
		t.Error("lowered XOR wrong")
	}
	// The lowered program must not issue XOR sense reads.
	for _, in := range c.Program {
		for _, op := range in.Ops {
			if op.String() == "XOR" || op.String() == "OR" {
				t.Fatalf("instruction %s kept a non-NAND sense op", in)
			}
		}
	}
}

func TestRunWithFaultsInjects(t *testing.T) {
	// A long XOR chain on (noisier-than-default) STT-MRAM should see at
	// least one injected fault across many seeds.
	b := NewBuilder()
	b.DisableCSE = true
	acc := b.Input("i0")
	for i := 1; i < 32; i++ {
		acc = b.Xor(acc, b.Input(fmt.Sprintf("i%d", i)))
	}
	b.Output("parity", acc)
	c, err := CompileGraph(b.Graph(), Options{Tech: STTMRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[string]bool)
	for i := 0; i < 32; i++ {
		in[fmt.Sprintf("i%d", i)] = i%3 == 0
	}
	total := 0
	for seed := int64(0); seed < 200; seed++ {
		_, n, err := c.RunWithFaults(in, seed)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		t.Error("no faults injected across 200 noisy executions")
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ArraySize != 512 || o.Arrays != 4 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o2 := Options{MultiRowActivation: true}.withDefaults()
	if o2.MRAFraction != 1 {
		t.Errorf("MRA fraction default wrong: %+v", o2)
	}
	if MapperNaive.String() == MapperOptimized.String() {
		t.Error("mapper names collide")
	}
}

func TestCostParallelBoundedBySerial(t *testing.T) {
	// A kernel mapped across several small arrays: the parallel makespan
	// must not exceed the serial sum and must agree on energy.
	b := NewBuilder()
	b.DisableCSE = true
	for k := 0; k < 6; k++ {
		x := b.Input(fmt.Sprintf("a%d", k))
		y := b.Input(fmt.Sprintf("b%d", k))
		acc := b.And(x, y)
		for i := 0; i < 10; i++ {
			acc = b.Xor(acc, y)
		}
		b.Output(fmt.Sprintf("o%d", k), acc)
	}
	c, err := CompileGraph(b.Graph(), Options{Tech: ReRAM, ArraySize: 16, Arrays: 6})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.Cost()
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.CostParallel()
	if err != nil {
		t.Fatal(err)
	}
	if par.LatencyNS > serial.LatencyNS*(1+1e-9) {
		t.Errorf("parallel latency %.1f exceeds serial %.1f", par.LatencyNS, serial.LatencyNS)
	}
	if par.EnergyPJ != serial.EnergyPJ {
		t.Error("timing model changed energy")
	}
}

func TestRunBatchMatchesSequentialRun(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// 131 vectors: two full 64-wide lane groups plus a 3-lane partial word.
	batch := make([]map[string]bool, 131)
	for i := range batch {
		batch[i] = map[string]bool{
			"a": rng.Intn(2) == 1, "b": rng.Intn(2) == 1, "c": rng.Intn(2) == 1,
		}
	}
	for _, parallelism := range []int{1, 4, 0} {
		outs, err := c.RunBatch(batch, parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if len(outs) != len(batch) {
			t.Fatalf("parallelism %d: %d outputs for %d inputs", parallelism, len(outs), len(batch))
		}
		for i, in := range batch {
			want, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, w := range want {
				if outs[i][name] != w {
					t.Fatalf("parallelism %d input %d: %s = %v, want %v",
						parallelism, i, name, outs[i][name], w)
				}
			}
		}
	}
}

func TestRunBatchPropagatesError(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Input 70 is missing a binding; the strict simulator must reject it
	// and RunBatch must surface the failure with that input's index even
	// though it sits in the second lane group.
	batch := make([]map[string]bool, 80)
	for i := range batch {
		batch[i] = map[string]bool{"a": true, "b": true, "c": false}
	}
	batch[70] = map[string]bool{"a": true}
	_, err = c.RunBatch(batch, 2)
	if err == nil {
		t.Fatal("no error for underspecified input")
	}
	if !strings.Contains(err.Error(), "input 70") {
		t.Fatalf("error %q does not name failing batch index 70", err)
	}
}

// TestVerifyCompiledPrograms: the facade verifier must report zero findings
// for both mappers' emitted programs, at any severity — the compile-time
// proof that mapping and merging preserved def-before-use soundness.
func TestVerifyCompiledPrograms(t *testing.T) {
	for _, mapper := range []MapperKind{MapperNaive, MapperOptimized} {
		for _, mra := range []bool{false, true} {
			c, err := CompileC(demoKernel, Options{
				Mapper: mapper, Tech: STTMRAM, ArraySize: 128,
				MultiRowActivation: mra, RecycleRows: mra,
			})
			if err != nil {
				t.Fatalf("%v/mra=%v: %v", mapper, mra, err)
			}
			rep := c.Verify()
			for _, f := range rep.Findings {
				t.Errorf("%v/mra=%v: %v", mapper, mra, f)
			}
			if len(rep.Findings) != 0 {
				t.Fatalf("%v/mra=%v: emitted program has static findings", mapper, mra)
			}
			if got, want := strings.Join(rep.Bindings(), ","), strings.Join(c.Program.Bindings(), ","); got != want {
				t.Fatalf("%v/mra=%v: verifier bindings %q, program bindings %q", mapper, mra, got, want)
			}
		}
	}
}

// TestVerifyEmittedOption: the debug flag gates compilation on the
// verifier; a healthy compile passes through unchanged.
func TestVerifyEmittedOption(t *testing.T) {
	c, err := CompileC(demoKernel, Options{VerifyEmitted: true})
	if err != nil {
		t.Fatalf("verified compile failed: %v", err)
	}
	out, err := c.Run(map[string]bool{"a": true, "b": false, "c": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outputs = %v", out)
	}
}

// TestVerifyEquivalenceOption: the translation validator proves the emitted
// program against the SOURCE kernel through every pipeline configuration —
// plain, MRA-fused, NAND-lowered, and resynthesized compiles included.
func TestVerifyEquivalenceOption(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"naive", Options{Mapper: MapperNaive}},
		{"mra", Options{MultiRowActivation: true}},
		{"nand", Options{NANDLowering: true}},
		{"resynth", Options{Resynthesize: true, ResynthIterations: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.ArraySize = 128
			tc.opts.VerifyEquivalence = true
			c, err := CompileC(demoKernel, tc.opts)
			if err != nil {
				t.Fatalf("equivalence-gated compile failed: %v", err)
			}
			rep, err := c.VerifyEquivalence()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.AllProven() {
				t.Fatalf("not all outputs proven: %v", rep.Err())
			}
			for _, o := range rep.Outputs {
				if o.Method == "" {
					t.Fatalf("output %q missing proof method", o.Name)
				}
			}
		})
	}
}
