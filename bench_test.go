// Benchmark harness: one benchmark per paper artifact (Table 2, Fig. 2b,
// Fig. 6, Fig. 7) plus ablations of the design choices called out in
// DESIGN.md. The benchmarks run the QuickSetup kernels so iteration stays
// fast; `go run sherlock/cmd/sherlock-exp` regenerates the full-scale
// campaign. Custom metrics surface the experiment outputs (latencies,
// P_app, EDP gains) alongside the usual ns/op.
package sherlock_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock"
	"sherlock/internal/aig"
	"sherlock/internal/arraymodel"
	"sherlock/internal/coopt"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/experiments"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/reliability"
	"sherlock/internal/sim"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// ---- Table 2: latency & energy across techs, sizes, mappers, MRA ----

func benchmarkTable2Workload(b *testing.B, w experiments.Workload) {
	r := experiments.NewRunner(experiments.QuickSetup())
	var lastNaive, lastOpt float64
	for i := 0; i < b.N; i++ {
		for _, size := range []int{512, 1024} {
			for _, naive := range []bool{true, false} {
				res, err := r.Map(w, 1.0, false, size, naive)
				if err != nil {
					b.Fatal(err)
				}
				cost, err := experiments.Cost(res, device.STTMRAM, size)
				if err != nil {
					b.Fatal(err)
				}
				if naive {
					lastNaive = cost.LatencyUS()
				} else {
					lastOpt = cost.LatencyUS()
				}
			}
		}
	}
	b.ReportMetric(lastNaive, "naive_us")
	b.ReportMetric(lastOpt, "opt_us")
	if lastOpt > 0 {
		b.ReportMetric(lastNaive/lastOpt, "speedup")
	}
}

func BenchmarkTable2Bitweaving(b *testing.B) { benchmarkTable2Workload(b, experiments.Bitweaving) }
func BenchmarkTable2Sobel(b *testing.B)      { benchmarkTable2Workload(b, experiments.Sobel) }
func BenchmarkTable2AES(b *testing.B)        { benchmarkTable2Workload(b, experiments.AES) }

// BenchmarkTable2Campaign measures the full compile->map->cost grid from a
// cold Runner, sequential vs fanned out over the worker pool (the
// parallelism win scales with cores; on one core the variants tie).
func BenchmarkTable2Campaign(b *testing.B) {
	for _, variant := range []struct {
		name        string
		parallelism int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			var rows []experiments.Table2Row
			for i := 0; i < b.N; i++ {
				s := experiments.QuickSetup()
				s.Parallelism = variant.parallelism
				rows, _ = experiments.Table2(experiments.NewRunner(s))
			}
			b.ReportMetric(float64(len(rows)), "cells")
		})
	}
}

// ---- Fig. 2b: decision-failure statistics ----

func BenchmarkFig2bDecisionFailure(b *testing.B) {
	var rows []experiments.Fig2bRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig2b(device.Technologies())
	}
	worst := 0.0
	for _, r := range rows {
		if r.PDF > worst {
			worst = r.PDF
		}
	}
	b.ReportMetric(worst, "worst_pdf")
}

// ---- Fig. 6: reliability vs latency under the MRA sweep ----

func BenchmarkFig6Sweep(b *testing.B) {
	r := experiments.NewRunner(experiments.QuickSetup())
	var series []experiments.Fig6Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = experiments.Fig6(r, 128)
		if err != nil {
			b.Fatal(err)
		}
	}
	gains := experiments.Fig6Summary(series)
	b.ReportMetric(gains[device.ReRAM], "opt_papp_gain_reram")
	b.ReportMetric(gains[device.STTMRAM], "opt_papp_gain_stt")
}

// ---- Fig. 7: EDP vs the CPU baseline ----

func BenchmarkFig7EDP(b *testing.B) {
	r := experiments.NewRunner(experiments.QuickSetup())
	var rows []experiments.Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig7(r, []int{128, 512})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, row := range rows {
		if row.EDPGain > best {
			best = row.EDPGain
		}
	}
	b.ReportMetric(best, "best_edp_gain")
}

// ---- Component benchmarks ----

func buildQuickAES(b *testing.B) *dfg.Graph {
	b.Helper()
	g, err := aes.Build(aes.Config{Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkMapperNaiveAES(b *testing.B) {
	g := buildQuickAES(b)
	t := layout.Target{Arrays: 4, Rows: 512, Cols: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Naive(g, mapping.Options{Target: t}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapperOptimizedAES(b *testing.B) {
	g := buildQuickAES(b)
	t := layout.Target{Arrays: 4, Rows: 512, Cols: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Optimized(g, mapping.Options{Target: t}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeInstructions isolates the cross-cluster merge pass (level
// scheduling, hazard analysis, and bucket merging) on the largest program
// the quick kernels produce: the unmerged naive AES mapping.
func BenchmarkMergeInstructions(b *testing.B) {
	g := buildQuickAES(b)
	t := layout.Target{Arrays: 4, Rows: 512, Cols: 512}
	res, err := mapping.Naive(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		_, merged = mapping.MergeInstructions(res.Program)
	}
	b.ReportMetric(float64(len(res.Program)), "instr_before")
	b.ReportMetric(float64(len(res.Program)-merged), "instr_after")
}

// buildSyntheticDFG grows a pseudo-random gate-soup DFG far wider than any
// quick kernel, stressing the clusterer and b-level scheduler at a scale
// where quadratic slips would dominate.
func buildSyntheticDFG(b *testing.B, nInputs, nOps int) *dfg.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(97))
	bld := dfg.NewBuilder()
	bld.DisableCSE = true
	vals := make([]dfg.Val, 0, nInputs+nOps)
	for i := 0; i < nInputs; i++ {
		vals = append(vals, bld.Input(fmt.Sprintf("in%d", i)))
	}
	for len(vals) < nInputs+nOps {
		x := vals[rng.Intn(len(vals))]
		y := vals[rng.Intn(len(vals))]
		var v dfg.Val
		switch rng.Intn(4) {
		case 0:
			v = bld.And(x, y)
		case 1:
			v = bld.Or(x, y)
		case 2:
			v = bld.Xor(x, y)
		default:
			v = bld.Not(x)
		}
		if ic, _ := v.IsConst(); ic {
			continue
		}
		vals = append(vals, v)
	}
	g := bld.Graph()
	n := 0
	for _, operand := range g.Operands() {
		if len(g.Consumers(operand)) == 0 && g.Producer(operand) != dfg.NoNode {
			g.MarkOutputNamed(operand, fmt.Sprintf("out%d", n))
			n++
		}
	}
	return g
}

// BenchmarkMapperOptimizedSynthetic maps a 12k-op synthetic DFG — roughly 4x
// the quick AES kernel — through the full optimized pipeline (clustering,
// emission, merging).
func BenchmarkMapperOptimizedSynthetic(b *testing.B) {
	g := buildSyntheticDFG(b, 128, 12000)
	t := layout.Target{Arrays: 8, Rows: 512, Cols: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Optimized(g, mapping.Options{Target: t}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSynthetic100k maps a 100k-op synthetic DFG end to end —
// roughly 8x the 12k benchmark. It exists to catch super-linear scaling in
// the clusterer or scheduler: a quadratic term that hides inside the 12k
// run dominates outright at this size.
func BenchmarkMapperSynthetic100k(b *testing.B) {
	g := buildSyntheticDFG(b, 256, 100000)
	t := layout.Target{Arrays: 16, Rows: 512, Cols: 512} // ~6.6k clusters need >4096 columns
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Optimized(g, mapping.Options{Target: t}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleReadyQueue times the hazard-gated ready-dispatch merger
// alone: forward ready levels, backward deadlines, slack-window fusion and
// bitmap-queue dispatch over a 12k-op synthetic program.
func BenchmarkScheduleReadyQueue(b *testing.B) {
	g := buildSyntheticDFG(b, 128, 12000)
	t := layout.Target{Arrays: 8, Rows: 512, Cols: 512}
	res, err := mapping.Naive(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		_, merged = mapping.MergeInstructions(res.Program)
	}
	b.ReportMetric(float64(len(res.Program)), "instr_before")
	b.ReportMetric(float64(len(res.Program)-merged), "instr_after")
}

func BenchmarkSimulatorBitweaving(b *testing.B) {
	cfg := bitweaving.Config{Bits: 16, Segments: 8}
	g, err := bitweaving.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 1, Rows: 256, Cols: 256}
	res, err := mapping.Optimized(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	values := make([]uint64, cfg.Segments)
	for i := range values {
		values[i] = uint64(i * 7919)
	}
	in, err := bitweaving.Assignments(cfg, values, 100, 60000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(t)
		if err := m.Run(res.Program, in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Program)), "instructions")
}

func BenchmarkSBoxTowerConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := sherlock.NewBuilder()
		var pt, key [16]byte
		_ = pt
		_ = key
		// One S-box instance per iteration.
		var in [8]sherlock.Val
		for j := range in {
			in[j] = bld.Input(fmt.Sprintf("x%d", j))
		}
		_ = aes.TowerSBoxGateCount()
	}
}

func BenchmarkSBoxShannonSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := aig.New(8)
		for bit := 0; bit < 8; bit++ {
			tt := aig.TTFromFunc(8, func(x uint) bool {
				return aes.SBox(byte(x))>>uint(bit)&1 == 1
			})
			g.Synthesize(tt)
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationInstructionMerging isolates the Sec. 3.3.3 merging pass:
// the same clustered program with and without cross-cluster merging.
func BenchmarkAblationInstructionMerging(b *testing.B) {
	g, err := sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128})
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 1, Rows: 128, Cols: 128}
	res, err := mapping.Naive(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	var merged int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, merged = mapping.MergeInstructions(res.Program)
	}
	b.ReportMetric(float64(len(res.Program)), "instr_before")
	b.ReportMetric(float64(len(res.Program)-merged), "instr_after")
}

// BenchmarkAblationEq1 compares the prose-faithful assignment score against
// the paper's literally printed Eq. 1.
func BenchmarkAblationEq1(b *testing.B) {
	g := buildQuickAES(b)
	t := layout.Target{Arrays: 4, Rows: 512, Cols: 512}
	for _, variant := range []struct {
		name  string
		paper bool
	}{{"prose", false}, {"printed", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var last *mapping.Result
			for i := 0; i < b.N; i++ {
				res, err := mapping.Optimized(g, mapping.Options{Target: t, PaperEq1: variant.paper})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.Instructions), "instructions")
			b.ReportMetric(float64(last.Stats.Copies), "copies")
		})
	}
}

// BenchmarkAblationNANDLowering measures the latency/reliability trade of
// Fig. 6b's NAND-based XOR/OR on STT-MRAM.
func BenchmarkAblationNANDLowering(b *testing.B) {
	cfg := bitweaving.Config{Bits: 8, Segments: 4}
	g, err := bitweaving.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		nand bool
	}{{"native", false}, {"nand", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var papp, lat float64
			for i := 0; i < b.N; i++ {
				c, err := sherlock.CompileGraph(g, sherlock.Options{
					Tech:         sherlock.STTMRAM,
					ArraySize:    128,
					Arrays:       4,
					NANDLowering: variant.nand,
				})
				if err != nil {
					b.Fatal(err)
				}
				cost, err := c.Cost()
				if err != nil {
					b.Fatal(err)
				}
				rel, err := c.Reliability()
				if err != nil {
					b.Fatal(err)
				}
				papp, lat = rel.PApp, cost.LatencyUS()
			}
			b.ReportMetric(papp, "papp")
			b.ReportMetric(lat, "latency_us")
		})
	}
}

// BenchmarkAblationMaxRows sweeps the multi-row-activation bound.
func BenchmarkAblationMaxRows(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			var instr int
			for i := 0; i < b.N; i++ {
				fused := g
				if rows > 2 {
					fused, _ = dfg.SubstituteNodes(g, dfg.SubstituteOptions{MaxOperands: rows, Fraction: 1})
				}
				res, err := mapping.Optimized(fused, mapping.Options{Target: layout.Target{Arrays: 1, Rows: 256, Cols: 256}})
				if err != nil {
					b.Fatal(err)
				}
				instr = res.Stats.Instructions
			}
			b.ReportMetric(float64(instr), "instructions")
			p := device.ParamsFor(device.ReRAM)
			if rows <= p.MaxRows {
				b.ReportMetric(p.DecisionFailure(logic.And, max(2, rows)), "and_pdf")
			}
		})
	}
}

// BenchmarkAblationRowRecycling measures the capacity effect of
// liveness-driven row reuse on a column-constrained target.
func BenchmarkAblationRowRecycling(b *testing.B) {
	g, err := sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128})
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 1, Rows: 64, Cols: 512}
	for _, variant := range []struct {
		name    string
		recycle bool
	}{{"off", false}, {"on", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var cols, recycled int
			for i := 0; i < b.N; i++ {
				res, err := mapping.Optimized(g, mapping.Options{Target: t, RecycleRows: variant.recycle})
				if err != nil {
					b.Fatal(err)
				}
				cols, recycled = res.Stats.ColumnsUsed, res.Stats.RecycledRows
			}
			b.ReportMetric(float64(cols), "columns")
			b.ReportMetric(float64(recycled), "recycled_rows")
		})
	}
}

// BenchmarkRunBatch measures facade-level batch simulation: one compiled
// kernel, many independent input vectors through Compiled.RunBatch,
// sequentially and fanned out over the worker pool. vectors_per_sec is the
// headline throughput number.
func BenchmarkRunBatch(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 8, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Arrays:    4,
	})
	if err != nil {
		b.Fatal(err)
	}
	const vectors = 256
	rng := rand.New(rand.NewSource(11))
	batch := make([]map[string]bool, vectors)
	for i := range batch {
		in := make(map[string]bool)
		for _, id := range c.Graph.Inputs() {
			in[c.Graph.Name(id)] = rng.Intn(2) == 1
		}
		batch[i] = in
	}
	for _, variant := range []struct {
		name        string
		parallelism int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.RunBatch(batch, variant.parallelism); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(vectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
		})
	}
}

// BenchmarkRunBatchWords measures the packed-bits facade against the
// map-keyed RunBatch on the same vectors: no per-vector maps on the way in,
// a reused buffer on the way out, so the steady state is allocation-free
// (allocs/op is the point of this benchmark — see ReportAllocs).
func BenchmarkRunBatchWords(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 8, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Arrays:    4,
	})
	if err != nil {
		b.Fatal(err)
	}
	const vectors = 256
	rng := rand.New(rand.NewSource(11))
	batch := make([]map[string]bool, vectors)
	for i := range batch {
		in := make(map[string]bool)
		for _, id := range c.Graph.Inputs() {
			in[c.Graph.Name(id)] = rng.Intn(2) == 1
		}
		batch[i] = in
	}
	names := c.InputNames()
	W := (vectors + 63) / 64
	packed := make([]uint64, len(names)*W)
	for l, vec := range batch {
		for s, name := range names {
			if vec[name] {
				packed[s*W+l/64] |= uint64(1) << uint(l%64)
			}
		}
	}

	b.Run("maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunBatch(batch, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(vectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
	})
	b.Run("words", func(b *testing.B) {
		var out []uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err = c.RunBatchWords(packed, vectors, out, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(vectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
	})
}

// BenchmarkPredecode measures the one-time program -> micro-op decode that
// Compiled.Run/RunBatch and the Monte-Carlo campaigns amortize: full
// validation, offset resolution and instruction fusion in a single pass.
func BenchmarkPredecode(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 8, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 4, Rows: 128, Cols: 128}
	res, err := mapping.Optimized(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ex *sim.Exec
	for i := 0; i < b.N; i++ {
		ex, err = sim.Predecode(res.Program, t)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Program)), "instructions")
	b.ReportMetric(float64(ex.MicroOps()), "micro_ops")
}

// BenchmarkExecLaneBlock measures raw executor throughput on one decoded
// program: the legacy interpreting LaneMachine (64 lanes per pass) against
// ExecMachine lane blocks of 1 and 4 words (64 and 256 lanes per pass).
// vectors_per_sec counts completed lanes.
func BenchmarkExecLaneBlock(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 8, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 4, Rows: 128, Cols: 128}
	res, err := mapping.Optimized(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	ex, err := sim.Predecode(res.Program, t)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))

	b.Run("lanemachine64", func(b *testing.B) {
		words := make(map[string]uint64, len(ex.InputNames()))
		for _, n := range ex.InputNames() {
			words[n] = rng.Uint64()
		}
		m := sim.NewLaneMachine(t, sim.WordLanes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset(sim.WordLanes)
			if err := m.Run(res.Program, words); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sim.WordLanes)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
	})
	for _, blockWords := range []int{1, 4} {
		b.Run(fmt.Sprintf("exec%dx64", blockWords), func(b *testing.B) {
			m := ex.NewMachine(blockWords)
			// An owned input slice survives Reset (which clears the
			// machine's own InputBlock scratch).
			in := make([]uint64, ex.NumSlots()*blockWords)
			for i := range in {
				in[i] = rng.Uint64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset(m.MaxLanes())
				if err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.MaxLanes())*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
		})
	}
}

// BenchmarkMonteCarloValidation runs the fault-injection campaign that
// cross-checks the analytical P_app model, sequentially and sharded over
// the worker pool (identical results either way; the wall-clock win
// scales with cores).
func BenchmarkMonteCarloValidation(b *testing.B) {
	for _, variant := range []struct {
		name        string
		parallelism int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			s := experiments.QuickSetup()
			s.Parallelism = variant.parallelism
			r := experiments.NewRunner(s)
			var mc experiments.MCResult
			var err error
			for i := 0; i < b.N; i++ {
				mc, err = experiments.MonteCarlo(r, experiments.Bitweaving, device.STTMRAM, 128, 1024, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mc.AnalyticalPApp, "papp_model")
			b.ReportMetric(mc.ObservedFaultRate, "papp_observed")
			b.ReportMetric(mc.MaskingFactor(), "masking")
		})
	}
}

// BenchmarkReliabilityAssess isolates the P_app assessment of a mapped
// kernel. "cold" drops the P_DF memo every iteration (the pre-memo cost:
// every class recomputes its lognormal-overlap integral); "warm" is the
// steady state the campaign engine sees.
func BenchmarkReliabilityAssess(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 8})
	if err != nil {
		b.Fatal(err)
	}
	res, err := mapping.Optimized(g, mapping.Options{Target: layout.Target{Arrays: 4, Rows: 256, Cols: 256}})
	if err != nil {
		b.Fatal(err)
	}
	params := device.ParamsFor(device.ReRAM)
	for _, variant := range []struct {
		name string
		cold bool
	}{{"cold", true}, {"warm", false}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if variant.cold {
					device.ResetPDFCache()
				}
				if _, err := reliability.Assess(res.Program, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelTiming compares the conservative serial timing
// against the multi-array overlap model on a kernel spread across arrays.
func BenchmarkAblationParallelTiming(b *testing.B) {
	g, err := aes.Build(aes.Config{Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	// Narrow arrays force the clusters across several of them.
	t := layout.Target{Arrays: 16, Rows: 96, Cols: 24}
	res, err := mapping.Optimized(g, mapping.Options{Target: t})
	if err != nil {
		b.Fatal(err)
	}
	cm := arraymodel.New(arraymodel.Config{Tech: device.STTMRAM, Rows: 96, Cols: 24, DataWidth: 96})
	var serial, par sim.Cost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, err = sim.Measure(res.Program, cm)
		if err != nil {
			b.Fatal(err)
		}
		par, err = sim.MeasureParallel(res.Program, cm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(serial.LatencyNS/1e3, "serial_us")
	b.ReportMetric(par.LatencyNS/1e3, "parallel_us")
	if par.LatencyNS > 0 {
		b.ReportMetric(serial.LatencyNS/par.LatencyNS, "overlap_speedup")
	}
}

// BenchmarkAblationWearLeveling quantifies the endurance effect of FIFO
// row rotation under recycling: same program size, flatter wear.
func BenchmarkAblationWearLeveling(b *testing.B) {
	g, err := bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 4})
	if err != nil {
		b.Fatal(err)
	}
	t := layout.Target{Arrays: 1, Rows: 48, Cols: 64}
	for _, variant := range []struct {
		name  string
		level bool
	}{{"lifo", false}, {"fifo", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var maxWrites int
			for i := 0; i < b.N; i++ {
				res, err := mapping.Optimized(g, mapping.Options{
					Target: t, RecycleRows: true, WearLeveling: variant.level,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := reliability.AssessWear(res.Program)
				if err != nil {
					b.Fatal(err)
				}
				maxWrites = rep.MaxWritesPerCell
			}
			b.ReportMetric(float64(maxWrites), "max_writes_per_cell")
		})
	}
}

// ---- Resynthesis co-optimization: AIG rewrite loop vs Algorithm 2 alone ----

// benchmarkResynth runs the synthesis<->scheduling loop on a quick-setup
// workload and reports the achieved latency against the Algorithm 2
// baseline. The search itself is the measured cost (ns/op); the metrics
// surface what it bought.
func benchmarkResynth(b *testing.B, w experiments.Workload, portfolio [][]coopt.PassKind) {
	r := experiments.NewRunner(experiments.QuickSetup())
	g, err := r.Graph(w, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	const size = 256
	tech := device.STTMRAM
	model := arraymodel.New(arraymodel.DefaultConfig(tech, size))
	params := device.ParamsFor(tech)
	evaluate := func(g *dfg.Graph) (*mapping.Result, error) {
		return mapping.Optimized(g, mapping.Options{
			Target: layout.Target{Arrays: 4, Rows: size, Cols: size},
		})
	}
	base, err := evaluate(g)
	if err != nil {
		b.Fatal(err)
	}
	baseCost, err := sim.Measure(base.Program, model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var optNS float64
	for i := 0; i < b.N; i++ {
		res, err := coopt.Optimize(g, coopt.Config{
			MaxRows:   params.MaxRows,
			Portfolio: portfolio,
			Evaluate:  evaluate,
			Score: func(m *mapping.Result) (coopt.Score, error) {
				return coopt.ScoreMapped(m, model, params)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cost, err := sim.Measure(res.Mapped.Program, model)
		if err != nil {
			b.Fatal(err)
		}
		optNS = cost.LatencyNS
	}
	b.ReportMetric(baseCost.LatencyNS/1e3, "alg2_us")
	b.ReportMetric(optNS/1e3, "coopt_us")
	if optNS > 0 {
		b.ReportMetric(baseCost.LatencyNS/optNS, "speedup")
	}
}

func BenchmarkResynthSobel(b *testing.B) {
	benchmarkResynth(b, experiments.Sobel, nil) // nil = full portfolio
}

func BenchmarkResynthSobelBalanceOnly(b *testing.B) {
	benchmarkResynth(b, experiments.Sobel, coopt.PortfolioBalance())
}

func BenchmarkResynthAES(b *testing.B) {
	benchmarkResynth(b, experiments.AES, nil)
}
