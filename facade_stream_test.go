package sherlock

import (
	"math/bits"
	"math/rand"
	"testing"
)

// streamEdgeLanes are the chunk-edge row counts the streaming pipeline
// must get right: single lane, word boundaries, machine-block boundaries,
// and chunk boundaries on either side.
var streamEdgeLanes = []int{1, 63, 64, 65, 255, 256, 257, 4095, 4096}

// randPackedBatch builds a slot-major packed input block with
// deterministic pseudo-random bits (dead lanes of the last word carry
// garbage on purpose — the pipeline must mask them out of every result).
func randPackedBatch(c *Compiled, lanes int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	W := (lanes + 63) / 64
	in := make([]uint64, len(c.InputNames())*W)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return in
}

// hostCount pops each output of a RunBatchWords block.
func hostCount(out []uint64, numOut, W int) []int64 {
	counts := make([]int64, numOut)
	for o := 0; o < numOut; o++ {
		for _, w := range out[o*W : (o+1)*W] {
			counts[o] += int64(bits.OnesCount64(w))
		}
	}
	return counts
}

// TestRunStreamMatchesBatchWords is the differential anchor: the streamed
// BitmapSink must reproduce RunBatchWords bit for bit at every awkward
// edge, whatever the chunking, sharding, or overlap mode.
func TestRunStreamMatchesBatchWords(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	numOut := len(c.OutputNames())
	cases := []StreamOptions{
		{Parallelism: 1, ChunkLanes: 128},
		{Parallelism: 3, ChunkLanes: 128},
		{Parallelism: 3, ChunkLanes: 128, Serial: true},
		{Parallelism: 2, ChunkLanes: 1024},
		{Parallelism: 2}, // auto chunk width
	}
	for ci, opts := range cases {
		s, err := c.NewStreamer(opts)
		if err != nil {
			t.Fatal(err)
		}
		var sink BitmapSink
		for _, lanes := range streamEdgeLanes {
			in := randPackedBatch(c, lanes, int64(lanes))
			want, err := c.RunBatchWords(in, lanes, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(in, lanes, &sink); err != nil {
				t.Fatalf("case %d lanes %d: %v", ci, lanes, err)
			}
			W := (lanes + 63) / 64
			if len(sink.Out) != numOut*W {
				t.Fatalf("case %d lanes %d: sink has %d words, want %d", ci, lanes, len(sink.Out), numOut*W)
			}
			for i := range want {
				if sink.Out[i] != want[i] {
					t.Fatalf("case %d lanes %d: word %d = %#x, want %#x (output %d)",
						ci, lanes, i, sink.Out[i], want[i], i/W)
				}
			}
		}
		s.Close()
	}
}

// TestRunStreamMatchesScalar cross-checks the stream against the scalar
// per-lane Machine path — the slowest, simplest oracle.
func TestRunStreamMatchesScalar(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	names := c.InputNames()
	outNames := c.OutputNames()
	lanes := 70 // spans a word boundary
	in := randPackedBatch(c, lanes, 99)
	var sink BitmapSink
	if err := c.RunStream(in, lanes, &sink, StreamOptions{Parallelism: 2, ChunkLanes: 64}); err != nil {
		t.Fatal(err)
	}
	W := (lanes + 63) / 64
	for l := 0; l < lanes; l++ {
		iv := make(map[string]bool, len(names))
		for s, n := range names {
			iv[n] = in[s*W+l/64]>>uint(l%64)&1 == 1
		}
		want, err := c.Run(iv)
		if err != nil {
			t.Fatal(err)
		}
		for o, n := range outNames {
			got := sink.Out[o*W+l/64]>>uint(l%64)&1 == 1
			if got != want[n] {
				t.Fatalf("lane %d output %q: stream=%v scalar=%v", l, n, got, want[n])
			}
		}
	}
}

// TestStreamSinks pins every fused reduction against host math over the
// RunBatchWords reference output, at every edge lane count.
func TestStreamSinks(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	numOut := len(c.OutputNames())
	s, err := c.NewStreamer(StreamOptions{Parallelism: 3, ChunkLanes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var (
		count  CountSink
		anyS   AnySink
		allS   AllSink
		sel    SelectSink
		sum    SumBitsSink
		bitmap BitmapSink
	)
	for _, lanes := range streamEdgeLanes {
		in := randPackedBatch(c, lanes, 7*int64(lanes)+1)
		want, err := c.RunBatchWords(in, lanes, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		W := (lanes + 63) / 64
		wantCounts := hostCount(want, numOut, W)

		if err := s.Run(in, lanes, &count); err != nil {
			t.Fatal(err)
		}
		for o, n := range wantCounts {
			if count.Counts[o] != n {
				t.Errorf("lanes %d: CountSink[%d] = %d, want %d", lanes, o, count.Counts[o], n)
			}
		}

		if err := s.Run(in, lanes, &anyS); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(in, lanes, &allS); err != nil {
			t.Fatal(err)
		}
		for o := 0; o < numOut; o++ {
			if got, want := anyS.Any[o], wantCounts[o] > 0; got != want {
				t.Errorf("lanes %d: AnySink[%d] = %v, want %v", lanes, o, got, want)
			}
			if got, want := allS.All[o], wantCounts[o] == int64(lanes); got != want {
				t.Errorf("lanes %d: AllSink[%d] = %v, want %v (count %d)", lanes, o, got, want, wantCounts[o])
			}
		}

		for o := 0; o < numOut; o++ {
			sel.Output = o
			if err := s.Run(in, lanes, &sel); err != nil {
				t.Fatal(err)
			}
			var wantRows []int64
			for l := 0; l < lanes; l++ {
				if want[o*W+l/64]>>uint(l%64)&1 == 1 {
					wantRows = append(wantRows, int64(l))
				}
			}
			if len(sel.Rows) != len(wantRows) {
				t.Fatalf("lanes %d output %d: SelectSink gathered %d rows, want %d",
					lanes, o, len(sel.Rows), len(wantRows))
			}
			for i := range wantRows {
				if sel.Rows[i] != wantRows[i] {
					t.Fatalf("lanes %d output %d: row[%d] = %d, want %d",
						lanes, o, i, sel.Rows[i], wantRows[i])
				}
			}
		}

		if err := s.Run(in, lanes, &sum); err != nil {
			t.Fatal(err)
		}
		var wantSum uint64
		for o := 0; o < numOut; o++ {
			wantSum += uint64(wantCounts[o]) << uint(o)
		}
		if sum.Sum != wantSum {
			t.Errorf("lanes %d: SumBitsSink = %d, want %d", lanes, sum.Sum, wantSum)
		}

		// One streamer serves heterogeneous sinks back to back.
		if err := s.Run(in, lanes, &bitmap); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if bitmap.Out[i] != want[i] {
				t.Fatalf("lanes %d: bitmap word %d diverged after sink reuse", lanes, i)
			}
		}
	}
}

// TestStreamAllSinkLiveLanes: AllSink must not let zero-masked dead lanes
// veto FORALL. An all-ones input makes demoKernel's "lo" output
// (t | ~a) all true; at 65 lanes the final word has 63 dead lanes.
func TestStreamAllSinkLiveLanes(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 64, 65, 255, 257} {
		W := (lanes + 63) / 64
		in := make([]uint64, len(c.InputNames())*W)
		for i := range in {
			in[i] = ^uint64(0)
		}
		var sink AllSink
		if err := c.RunStream(in, lanes, &sink, StreamOptions{Parallelism: 2, ChunkLanes: 64}); err != nil {
			t.Fatal(err)
		}
		// a=b=c=1: t = (a&b)^c = 0; lo = t|~a = 0... all false; hi = t&b = 0.
		// Use the scalar oracle instead of hand-derivation.
		ref, err := c.Run(map[string]bool{"a": true, "b": true, "c": true})
		if err != nil {
			t.Fatal(err)
		}
		for o, n := range c.OutputNames() {
			if sink.All[o] != ref[n] {
				t.Errorf("lanes %d: AllSink[%q] = %v, want %v", lanes, n, sink.All[o], ref[n])
			}
		}
	}
}

// TestRunStreamMillionRows runs the 1e6±1 differential: streamed count and
// bitmap tallies must match RunBatchWords on the same million-row block.
func TestRunStreamMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("million-row differential skipped in -short")
	}
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	numOut := len(c.OutputNames())
	s, err := c.NewStreamer(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, lanes := range []int{1_000_000 - 1, 1_000_000, 1_000_000 + 1} {
		in := randPackedBatch(c, lanes, int64(lanes))
		want, err := c.RunBatchWords(in, lanes, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		W := (lanes + 63) / 64
		wantCounts := hostCount(want, numOut, W)

		var count CountSink
		if err := s.Run(in, lanes, &count); err != nil {
			t.Fatal(err)
		}
		for o := range wantCounts {
			if count.Counts[o] != wantCounts[o] {
				t.Errorf("lanes %d: count[%d] = %d, want %d", lanes, o, count.Counts[o], wantCounts[o])
			}
		}

		var bitmap BitmapSink
		if err := s.Run(in, lanes, &bitmap); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if bitmap.Out[i] != want[i] {
				t.Fatalf("lanes %d: bitmap word %d = %#x, want %#x", lanes, i, bitmap.Out[i], want[i])
			}
		}
	}
}

// TestRunStreamValidation: bad geometry and bad sinks fail cleanly.
func TestRunStreamValidation(t *testing.T) {
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewStreamer(StreamOptions{ChunkLanes: 100}); err == nil {
		t.Error("ChunkLanes not a multiple of 64 should fail")
	}
	if _, err := c.NewStreamer(StreamOptions{ChunkLanes: -64}); err == nil {
		t.Error("negative ChunkLanes should fail")
	}
	s, err := c.NewStreamer(StreamOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sink CountSink
	if err := s.Run(nil, 0, &sink); err == nil {
		t.Error("zero lanes should fail")
	}
	if err := s.Run(make([]uint64, 1), 1024, &sink); err == nil {
		t.Error("short input block should fail")
	}
	sel := &SelectSink{Output: 99}
	in := randPackedBatch(c, 64, 1)
	if err := s.Run(in, 64, sel); err == nil {
		t.Error("out-of-range SelectSink output should fail")
	}
}

// TestStreamerZeroAlloc proves the steady-state 0 allocs/op contract: a
// warmed Streamer + fused sink pair allocates nothing per run.
func TestStreamerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	c, err := CompileC(demoKernel, Options{Tech: ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.NewStreamer(StreamOptions{Parallelism: 2, ChunkLanes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lanes := 4096
	in := randPackedBatch(c, lanes, 3)
	var count CountSink
	// Warm the sink's accumulators.
	if err := s.Run(in, lanes, &count); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.Run(in, lanes, &count); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed RunStream allocates %.1f objects/run, want 0", allocs)
	}
}
