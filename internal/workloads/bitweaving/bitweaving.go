// Package bitweaving generates the BitWeaving-V column-scan workload of the
// paper's evaluation (Sec. 4): the predicate BETWEEN C1 AND C2 evaluated
// over vertically bit-sliced codes (Li & Patel, SIGMOD'13).
//
// The kernel processes the code bits MSB-first, maintaining equality/less/
// greater flags against both constants (Fig. 3a); one DFG instance is
// generated per independent segment of the scanned column, with the
// constant bits shared across segments — the data layout that makes the
// mapping problem interesting.
package bitweaving

import (
	"fmt"

	"sherlock/internal/dfg"
)

// Config sizes the generated kernel.
type Config struct {
	// Bits is the code width w (bits per value).
	Bits int
	// Segments is the number of independent vector segments scanned by
	// one kernel instance.
	Segments int
}

// DefaultConfig matches the evaluation setup: 32-bit codes, 16 independent
// segments (large enough that the kernel spans several CIM columns, where
// the mapping quality matters).
func DefaultConfig() Config { return Config{Bits: 32, Segments: 16} }

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Bits < 1 || c.Bits > 64 {
		return fmt.Errorf("bitweaving: bits %d outside [1,64]", c.Bits)
	}
	if c.Segments < 1 {
		return fmt.Errorf("bitweaving: segments %d < 1", c.Segments)
	}
	return nil
}

// XName returns the input name of bit b (0 = LSB) of segment s's value.
func XName(s, b int) string { return fmt.Sprintf("seg%d_x%d", s, b) }

// C1Name and C2Name return the constant-operand input names.
func C1Name(b int) string { return fmt.Sprintf("c1_%d", b) }

// C2Name returns the input name of bit b of the upper constant.
func C2Name(b int) string { return fmt.Sprintf("c2_%d", b) }

// OutName returns the output name of segment s's BETWEEN flag.
func OutName(s int) string { return fmt.Sprintf("seg%d_between", s) }

// Build generates the DFG: inputs are the per-segment value bits plus the
// shared constant bits; output s is true iff C1 <= x_s <= C2 (unsigned).
func Build(cfg Config) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()
	c1 := make([]dfg.Val, cfg.Bits)
	c2 := make([]dfg.Val, cfg.Bits)
	for i := 0; i < cfg.Bits; i++ {
		c1[i] = b.Input(C1Name(i))
		c2[i] = b.Input(C2Name(i))
	}
	for s := 0; s < cfg.Segments; s++ {
		x := make([]dfg.Val, cfg.Bits)
		for i := 0; i < cfg.Bits; i++ {
			x[i] = b.Input(XName(s, i))
		}
		// Column scan, MSB first: lt1 = (x < C1), gt2 = (x > C2).
		lt1 := b.Const(false)
		eq1 := b.Const(true)
		gt2 := b.Const(false)
		eq2 := b.Const(true)
		for i := cfg.Bits - 1; i >= 0; i-- {
			nx := b.Not(x[i])
			// Against C1: x < C1 when, at the first differing bit,
			// x has 0 and C1 has 1.
			lt1 = b.Or(lt1, b.And(b.And(eq1, nx), c1[i]))
			eq1 = b.And(eq1, b.Xnor(x[i], c1[i]))
			// Against C2: x > C2 when x has 1 and C2 has 0.
			gt2 = b.Or(gt2, b.And(b.And(eq2, x[i]), b.Not(c2[i])))
			eq2 = b.And(eq2, b.Xnor(x[i], c2[i]))
		}
		b.Output(OutName(s), b.And(b.Not(lt1), b.Not(gt2)))
	}
	return b.Graph(), nil
}

// Reference is the scalar golden model: C1 <= x <= C2 over Bits-wide
// unsigned codes.
func Reference(x, c1, c2 uint64, bits int) bool {
	mask := uint64(1)<<uint(bits) - 1
	x, c1, c2 = x&mask, c1&mask, c2&mask
	return c1 <= x && x <= c2
}

// Assignments binds the kernel inputs for the given segment values and
// constants.
func Assignments(cfg Config, values []uint64, c1, c2 uint64) (map[string]bool, error) {
	if len(values) != cfg.Segments {
		return nil, fmt.Errorf("bitweaving: %d values for %d segments", len(values), cfg.Segments)
	}
	in := make(map[string]bool, cfg.Segments*cfg.Bits+2*cfg.Bits)
	for i := 0; i < cfg.Bits; i++ {
		in[C1Name(i)] = c1>>uint(i)&1 == 1
		in[C2Name(i)] = c2>>uint(i)&1 == 1
	}
	for s, v := range values {
		for i := 0; i < cfg.Bits; i++ {
			in[XName(s, i)] = v>>uint(i)&1 == 1
		}
	}
	return in, nil
}
