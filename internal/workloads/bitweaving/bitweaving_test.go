package bitweaving

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sherlock/internal/dfg"
)

func TestBuildValidates(t *testing.T) {
	for _, bad := range []Config{{Bits: 0, Segments: 1}, {Bits: 65, Segments: 1}, {Bits: 8, Segments: 0}} {
		if _, err := Build(bad); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
	g, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if got := len(g.Outputs()); got != cfg.Segments {
		t.Errorf("outputs = %d, want %d", got, cfg.Segments)
	}
	if got := len(g.Inputs()); got != cfg.Segments*cfg.Bits+2*cfg.Bits {
		t.Errorf("inputs = %d", got)
	}
}

func TestKernelMatchesReferenceExhaustiveSmall(t *testing.T) {
	cfg := Config{Bits: 4, Segments: 1}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c1 := uint64(0); c1 < 16; c1++ {
		for c2 := uint64(0); c2 < 16; c2++ {
			for x := uint64(0); x < 16; x++ {
				in, err := Assignments(cfg, []uint64{x}, c1, c2)
				if err != nil {
					t.Fatal(err)
				}
				res, err := dfg.EvaluateByName(g, in)
				if err != nil {
					t.Fatal(err)
				}
				if res[OutName(0)] != Reference(x, c1, c2, 4) {
					t.Fatalf("BETWEEN(%d,%d,%d) = %v", x, c1, c2, res[OutName(0)])
				}
			}
		}
	}
}

func TestKernelMatchesReferenceRandomWide(t *testing.T) {
	cfg := Config{Bits: 16, Segments: 4}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		c1 := uint64(rng.Intn(1 << 16))
		c2 := uint64(rng.Intn(1 << 16))
		vals := make([]uint64, cfg.Segments)
		for i := range vals {
			vals[i] = uint64(rng.Intn(1 << 16))
		}
		in, err := Assignments(cfg, vals, c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dfg.EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		for s, v := range vals {
			if res[OutName(s)] != Reference(v, c1, c2, 16) {
				t.Fatalf("trial %d segment %d: BETWEEN(%d, %d, %d) wrong", trial, s, v, c1, c2)
			}
		}
	}
}

func TestQuickBoundaryValues(t *testing.T) {
	cfg := Config{Bits: 8, Segments: 1}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(c1, c2 uint8) bool {
		// x on the boundaries must match exactly.
		for _, x := range []uint64{uint64(c1), uint64(c2), 0, 255} {
			in, err := Assignments(cfg, []uint64{x}, uint64(c1), uint64(c2))
			if err != nil {
				return false
			}
			res, err := dfg.EvaluateByName(g, in)
			if err != nil {
				return false
			}
			if res[OutName(0)] != Reference(x, uint64(c1), uint64(c2), 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentsRejectsWrongCount(t *testing.T) {
	if _, err := Assignments(Config{Bits: 4, Segments: 2}, []uint64{1}, 0, 3); err == nil {
		t.Error("wrong value count accepted")
	}
}

func TestGraphScalesWithSegments(t *testing.T) {
	g1, _ := Build(Config{Bits: 8, Segments: 1})
	g4, _ := Build(Config{Bits: 8, Segments: 4})
	s1, s4 := g1.ComputeStats(), g4.ComputeStats()
	if s4.Ops < 3*s1.Ops {
		t.Errorf("segments should scale ops: 1 seg = %d, 4 seg = %d", s1.Ops, s4.Ops)
	}
}
