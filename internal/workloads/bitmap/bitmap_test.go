package bitmap

import (
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
	"sherlock/internal/sim"
)

func randomRows(rng *rand.Rand, cfg Config, density float64) [][]bool {
	rows := make([][]bool, cfg.Terms)
	for t := range rows {
		rows[t] = make([]bool, cfg.RowsPerTerm)
		for r := range rows[t] {
			rows[t][r] = rng.Float64() < density
		}
	}
	return rows
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Terms: 0, RowsPerTerm: 1, Queries: 1, TermsPerQuery: 1},
		{Terms: 4, RowsPerTerm: 1, Queries: 1, TermsPerQuery: 3, ExcludedPerQuery: 2},
		{Terms: 4, RowsPerTerm: 0, Queries: 1, TermsPerQuery: 1},
	}
	for _, c := range bad {
		if _, err := Build(c); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestQueryPlanDeterministicAndValid(t *testing.T) {
	cfg := DefaultConfig()
	p1, p2 := cfg.QueryPlan(), cfg.QueryPlan()
	for q := range p1 {
		if len(p1[q].Required) != cfg.TermsPerQuery || len(p1[q].Excluded) != cfg.ExcludedPerQuery {
			t.Fatalf("query %d shape wrong", q)
		}
		for i := range p1[q].Required {
			if p1[q].Required[i] != p2[q].Required[i] {
				t.Fatal("plan not deterministic")
			}
		}
		seen := map[int]bool{}
		for _, tm := range append(append([]int{}, p1[q].Required...), p1[q].Excluded...) {
			if seen[tm] {
				t.Fatalf("query %d repeats term %d", q, tm)
			}
			seen[tm] = true
		}
	}
}

func TestKernelMatchesReference(t *testing.T) {
	cfg := Config{Terms: 10, RowsPerTerm: 2, Queries: 6, TermsPerQuery: 3, ExcludedPerQuery: 1, Seed: 3}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := cfg.QueryPlan()
	rng := rand.New(rand.NewSource(9))
	for _, density := range []float64{0.1, 0.5, 0.9} {
		for trial := 0; trial < 20; trial++ {
			rows := randomRows(rng, cfg, density)
			in, err := Assignments(cfg, rows)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dfg.EvaluateByName(g, in)
			if err != nil {
				t.Fatal(err)
			}
			for q := range plan {
				if res[MatchName(q)] != Reference(cfg, plan[q], rows) {
					t.Fatalf("density %.1f trial %d query %d mismatch", density, trial, q)
				}
			}
		}
	}
}

func TestSharedTermsAreCSEd(t *testing.T) {
	// The per-term OR must exist once, not once per query: the op count
	// stays far below Queries * (RowsPerTerm-1 + TermsPerQuery).
	cfg := Config{Terms: 6, RowsPerTerm: 4, Queries: 20, TermsPerQuery: 3, ExcludedPerQuery: 0, Seed: 1}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	worstCase := cfg.Queries * (cfg.RowsPerTerm - 1 + cfg.TermsPerQuery)
	if st.Ops >= worstCase {
		t.Errorf("no sharing: %d ops (worst case %d)", st.Ops, worstCase)
	}
}

func TestEndToEndOnCIM(t *testing.T) {
	cfg := Config{Terms: 8, RowsPerTerm: 2, Queries: 5, TermsPerQuery: 3, ExcludedPerQuery: 1, Seed: 5}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := layout.Target{Arrays: 1, Rows: 12, Cols: 32}
	plan := cfg.QueryPlan()
	rng := rand.New(rand.NewSource(21))
	for _, naive := range []bool{true, false} {
		var res *mapping.Result
		if naive {
			res, err = mapping.Naive(g, mapping.Options{Target: target})
		} else {
			res, err = mapping.Optimized(g, mapping.Options{Target: target})
		}
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			rows := randomRows(rng, cfg, 0.4)
			in, _ := Assignments(cfg, rows)
			m := sim.NewMachine(target)
			if err := m.Run(res.Program, in); err != nil {
				t.Fatal(err)
			}
			for q := range plan {
				id, ok := g.OperandByName(MatchName(q))
				if !ok {
					t.Fatal("output missing")
				}
				p, err := res.OutputPlace(id)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.ReadOut(p)
				if err != nil {
					t.Fatal(err)
				}
				if got != Reference(cfg, plan[q], rows) {
					t.Fatalf("naive=%v trial %d query %d wrong on CIM", naive, trial, q)
				}
			}
		}
	}
}

func TestAssignmentsReject(t *testing.T) {
	cfg := Config{Terms: 3, RowsPerTerm: 2, Queries: 1, TermsPerQuery: 1, Seed: 1}
	if _, err := Assignments(cfg, [][]bool{{true}}); err == nil {
		t.Error("short matrix accepted")
	}
	if _, err := Assignments(cfg, [][]bool{{true}, {true}, {true}}); err == nil {
		t.Error("narrow rows accepted")
	}
}
