// Package bitmap generates a BitFunnel-style bitmap-index query workload —
// the web-search use case from the paper's introduction. A document corpus
// is indexed by bit-sliced term signatures (each term owns a few "rows";
// a document matches a term when any of its rows is set — higher-rank
// rows trade precision for density, as in BitFunnel). A query batch is a
// set of boolean expressions over shared term bitmaps:
//
//	match(q) = AND_{t in required(q)} OR_r term[t][r]
//	           AND_{t in excluded(q)} NOT (OR_r term[t][r])
//
// Unlike bitweaving (private inputs per segment), queries *share* the term
// bitmaps, creating the cross-cluster operand sharing that stresses the
// mapper's copy insertion.
package bitmap

import (
	"fmt"
	"math/rand"

	"sherlock/internal/dfg"
)

// Config sizes the generated query batch.
type Config struct {
	// Terms is the number of indexed terms (shared inputs).
	Terms int
	// RowsPerTerm is the OR fan-in of one term's signature rows.
	RowsPerTerm int
	// Queries is the number of independent query expressions.
	Queries int
	// TermsPerQuery is how many required terms each query ANDs.
	TermsPerQuery int
	// ExcludedPerQuery is how many negated terms each query carries.
	ExcludedPerQuery int
	// Seed drives the deterministic query-to-term assignment.
	Seed int64
}

// DefaultConfig is a batch of 12 queries over a 24-term index.
func DefaultConfig() Config {
	return Config{Terms: 24, RowsPerTerm: 3, Queries: 12, TermsPerQuery: 4, ExcludedPerQuery: 1, Seed: 7}
}

// Validate rejects impossible shapes.
func (c Config) Validate() error {
	if c.Terms < 1 || c.RowsPerTerm < 1 || c.Queries < 1 {
		return fmt.Errorf("bitmap: degenerate config %+v", c)
	}
	if c.TermsPerQuery < 1 || c.TermsPerQuery+c.ExcludedPerQuery > c.Terms {
		return fmt.Errorf("bitmap: query wants %d+%d terms of %d",
			c.TermsPerQuery, c.ExcludedPerQuery, c.Terms)
	}
	return nil
}

// RowName is the input name of row r of term t.
func RowName(t, r int) string { return fmt.Sprintf("term%d_row%d", t, r) }

// MatchName is the output name of query q's match bit.
func MatchName(q int) string { return fmt.Sprintf("match%d", q) }

// Query describes one generated query's term selection.
type Query struct {
	Required []int
	Excluded []int
}

// Queries returns the deterministic query plan for the config.
func (c Config) QueryPlan() []Query {
	rng := rand.New(rand.NewSource(c.Seed))
	plan := make([]Query, c.Queries)
	for q := range plan {
		perm := rng.Perm(c.Terms)
		plan[q].Required = append([]int(nil), perm[:c.TermsPerQuery]...)
		plan[q].Excluded = append([]int(nil), perm[c.TermsPerQuery:c.TermsPerQuery+c.ExcludedPerQuery]...)
	}
	return plan
}

// Build generates the DFG for the query batch.
func Build(cfg Config) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()
	rows := make([][]dfg.Val, cfg.Terms)
	for t := range rows {
		rows[t] = make([]dfg.Val, cfg.RowsPerTerm)
		for r := range rows[t] {
			rows[t][r] = b.Input(RowName(t, r))
		}
	}
	// The per-term OR is shared across queries through the builder's CSE.
	termHit := func(t int) dfg.Val { return b.OrN(rows[t]...) }

	for q, query := range cfg.QueryPlan() {
		acc := termHit(query.Required[0])
		for _, t := range query.Required[1:] {
			acc = b.And(acc, termHit(t))
		}
		for _, t := range query.Excluded {
			acc = b.And(acc, b.Not(termHit(t)))
		}
		b.Output(MatchName(q), acc)
	}
	return b.Graph(), nil
}

// Reference evaluates one query directly over the term-row bits
// (rows[t][r]) — the golden model.
func Reference(cfg Config, q Query, rows [][]bool) bool {
	hit := func(t int) bool {
		for _, v := range rows[t] {
			if v {
				return true
			}
		}
		return false
	}
	for _, t := range q.Required {
		if !hit(t) {
			return false
		}
	}
	for _, t := range q.Excluded {
		if hit(t) {
			return false
		}
	}
	return true
}

// Assignments binds a term-row bit matrix (rows[t][r]) to the kernel
// inputs.
func Assignments(cfg Config, rows [][]bool) (map[string]bool, error) {
	if len(rows) != cfg.Terms {
		return nil, fmt.Errorf("bitmap: %d term rows, want %d", len(rows), cfg.Terms)
	}
	in := make(map[string]bool, cfg.Terms*cfg.RowsPerTerm)
	for t := range rows {
		if len(rows[t]) != cfg.RowsPerTerm {
			return nil, fmt.Errorf("bitmap: term %d has %d rows, want %d", t, len(rows[t]), cfg.RowsPerTerm)
		}
		for r, v := range rows[t] {
			in[RowName(t, r)] = v
		}
	}
	return in, nil
}
