// Package analytics generates the data-analytics workloads the streaming
// pipeline exists for: bitmap-index query plans (AND/OR/NOT over
// million-row predicate bitmaps, answered by COUNT without materializing
// the match bitmap) and a bit-serial filter+aggregate scan (range
// predicate over a packed value column, SUM of the matching values folded
// from predicate-masked bit-planes). Both come with deterministic packed
// data generators in the facade's slot-major RunBatchWords layout and
// word-level host golden models, so CIM-simulated streaming runs are
// checked bit for bit and tallied against exact references at any row
// count.
package analytics

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"sherlock/internal/dfg"
	"sherlock/internal/symword"
)

// ScanConfig describes a bitmap-index query plan over per-row predicate
// bitmaps ("columns"): match = AND(All) ∧ OR(Any) ∧ ¬OR(None). Empty
// groups drop out of the plan.
type ScanConfig struct {
	// Columns is the number of predicate bitmaps the index holds.
	Columns int
	// All lists columns every matching row must set (AND group).
	All []int
	// Any lists columns of which a matching row must set at least one
	// (OR group).
	Any []int
	// None lists columns a matching row must not set (NOT OR group).
	None []int
}

// DefaultScanConfig is an 8-column plan exercising all three groups.
func DefaultScanConfig() ScanConfig {
	return ScanConfig{Columns: 8, All: []int{0, 1}, Any: []int{2, 3, 4}, None: []int{5}}
}

// Validate rejects out-of-range or degenerate plans.
func (c ScanConfig) Validate() error {
	if c.Columns < 1 {
		return fmt.Errorf("analytics: %d columns", c.Columns)
	}
	if len(c.All)+len(c.Any)+len(c.None) == 0 {
		return fmt.Errorf("analytics: empty query plan")
	}
	for _, g := range [][]int{c.All, c.Any, c.None} {
		for _, col := range g {
			if col < 0 || col >= c.Columns {
				return fmt.Errorf("analytics: column %d outside %d columns", col, c.Columns)
			}
		}
	}
	return nil
}

// ColName is the input name of predicate column c.
func ColName(c int) string { return fmt.Sprintf("col%d", c) }

// MatchName is the plan's single output.
const MatchName = "match"

// BuildScan generates the query-plan DFG. Every column is declared as an
// input (index order) even if unused, so the packed layout is independent
// of the plan.
func BuildScan(cfg ScanConfig) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()
	cols := make([]dfg.Val, cfg.Columns)
	for i := range cols {
		cols[i] = b.Input(ColName(i))
	}
	var acc dfg.Val
	have := false
	and := func(v dfg.Val) {
		if !have {
			acc, have = v, true
		} else {
			acc = b.And(acc, v)
		}
	}
	for _, col := range cfg.All {
		and(cols[col])
	}
	if len(cfg.Any) > 0 {
		vals := make([]dfg.Val, len(cfg.Any))
		for i, col := range cfg.Any {
			vals[i] = cols[col]
		}
		and(b.OrN(vals...))
	}
	if len(cfg.None) > 0 {
		vals := make([]dfg.Val, len(cfg.None))
		for i, col := range cfg.None {
			vals[i] = cols[col]
		}
		and(b.Not(b.OrN(vals...)))
	}
	b.Output(MatchName, acc)
	return b.Graph(), nil
}

// colDensity shapes column c's bit density so plans see realistic
// selectivities: cycle dense (3/4), medium (1/2), sparse (1/4).
func colDensity(c int) int { return c % 3 }

// fillWords fills dst with a column's deterministic pseudo-random bitmap
// words (splitmix-style stream keyed by seed).
func fillWords(dst []uint64, seed uint64, density int) {
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	for i := range dst {
		w := next()
		switch density {
		case 0:
			w |= next() // ~3/4 ones
		case 2:
			w &= next() // ~1/4 ones
		}
		dst[i] = w
	}
}

// slotCol maps an input name back to its column index.
func slotCol(name, prefix string) (int, error) {
	idx, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
	if err != nil || !strings.HasPrefix(name, prefix) {
		return 0, fmt.Errorf("analytics: unexpected input name %q", name)
	}
	return idx, nil
}

// PackedData builds the slot-major packed input block for rows rows in
// the order of names (the compiled program's InputNames) — the layout
// RunBatchWords and RunStream consume directly. Deterministic in
// (names, rows, seed).
func PackedData(names []string, prefix string, rows int, seed int64) ([]uint64, error) {
	W := (rows + 63) / 64
	in := make([]uint64, len(names)*W)
	for s, name := range names {
		col, err := slotCol(name, prefix)
		if err != nil {
			return nil, err
		}
		fillWords(in[s*W:(s+1)*W], uint64(seed)+0x51ed2700*uint64(col)+1, colDensity(col))
	}
	return in, nil
}

// HostCount is the golden model: the exact match count of the plan over a
// PackedData block, computed with host word ops.
func HostCount(cfg ScanConfig, names []string, in []uint64, rows int) (int64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	W := (rows + 63) / 64
	slot := make(map[int]int, len(names)) // column -> slot
	for s, name := range names {
		col, err := slotCol(name, "col")
		if err != nil {
			return 0, err
		}
		slot[col] = s
	}
	var count int64
	for w := 0; w < W; w++ {
		acc := ^uint64(0)
		for _, col := range cfg.All {
			acc &= in[slot[col]*W+w]
		}
		if len(cfg.Any) > 0 {
			var or uint64
			for _, col := range cfg.Any {
				or |= in[slot[col]*W+w]
			}
			acc &= or
		}
		for _, col := range cfg.None {
			acc &^= in[slot[col]*W+w]
		}
		if w == W-1 {
			if rem := rows % 64; rem != 0 {
				acc &= uint64(1)<<uint(rem) - 1
			}
		}
		count += int64(bits.OnesCount64(acc))
	}
	return count, nil
}

// FilterSumConfig describes the bit-serial filter+aggregate scan: each row
// carries a ValueBits-wide unsigned value (bit-plane inputs val0..), the
// predicate is Low <= value < High, and the aggregate is SUM(value) over
// matching rows. The kernel outputs the match bit plus the
// predicate-masked value planes sum0.., which SumBitsSink folds into the
// exact sum with zero materialization.
type FilterSumConfig struct {
	ValueBits int
	Low, High uint64
}

// DefaultFilterSumConfig is an 8-bit value column with a mid-range band.
func DefaultFilterSumConfig() FilterSumConfig {
	return FilterSumConfig{ValueBits: 8, Low: 64, High: 192}
}

// Validate rejects shapes whose predicate folds to a constant (the DFG
// cannot output constants).
func (c FilterSumConfig) Validate() error {
	if c.ValueBits < 1 || c.ValueBits > 32 {
		return fmt.Errorf("analytics: %d value bits", c.ValueBits)
	}
	max := uint64(1) << uint(c.ValueBits)
	if c.Low == 0 || c.Low >= c.High || c.High >= max {
		return fmt.Errorf("analytics: band [%d,%d) must satisfy 0 < low < high < %d", c.Low, c.High, max)
	}
	return nil
}

// ValuePrefix is the input bit-plane name prefix (val0 = LSB).
const ValuePrefix = "val"

// SumPrefix is the masked-plane output name prefix (sum0 = LSB).
const SumPrefix = "sum"

// BuildFilterSum generates the scan DFG: output "match" plus the
// ValueBits masked planes.
func BuildFilterSum(cfg FilterSumConfig) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()
	v := symword.Inputs(b, ValuePrefix, cfg.ValueBits)
	match := b.And(symword.GEConst(b, v, cfg.Low), b.Not(symword.GEConst(b, v, cfg.High)))
	b.Output(MatchName, match)
	for i, bit := range v {
		b.Output(fmt.Sprintf("%s%d", SumPrefix, i), b.And(bit, match))
	}
	return b.Graph(), nil
}

// SumPlanes maps a compiled scan's OutputNames to the SumBitsSink plane
// list: the output indices of sum0..sum{bits-1} in significance order.
// The second result is the index of the match output.
func SumPlanes(outNames []string, bits int) (planes []int, match int, err error) {
	planes = make([]int, bits)
	for i := range planes {
		planes[i] = -1
	}
	match = -1
	for o, name := range outNames {
		if name == MatchName {
			match = o
			continue
		}
		idx, perr := slotCol(name, SumPrefix)
		if perr != nil || idx < 0 || idx >= bits {
			return nil, 0, fmt.Errorf("analytics: unexpected output %q", name)
		}
		planes[idx] = o
	}
	if match < 0 {
		return nil, 0, fmt.Errorf("analytics: no %q output", MatchName)
	}
	for i, o := range planes {
		if o < 0 {
			return nil, 0, fmt.Errorf("analytics: missing output %s%d", SumPrefix, i)
		}
	}
	return planes, match, nil
}

// HostFilterSum is the golden model: exact match count and value sum over
// a PackedData block (value bit-planes in the names' slot order).
func HostFilterSum(cfg FilterSumConfig, names []string, in []uint64, rows int) (count int64, sum uint64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	W := (rows + 63) / 64
	slot := make(map[int]int, len(names))
	for s, name := range names {
		plane, perr := slotCol(name, ValuePrefix)
		if perr != nil {
			return 0, 0, perr
		}
		slot[plane] = s
	}
	for w := 0; w < W; w++ {
		live := ^uint64(0)
		if w == W-1 {
			if rem := rows % 64; rem != 0 {
				live = uint64(1)<<uint(rem) - 1
			}
		}
		for l := 0; l < 64; l++ {
			if live>>uint(l)&1 == 0 {
				continue
			}
			var v uint64
			for plane := 0; plane < cfg.ValueBits; plane++ {
				v |= in[slot[plane]*W+w] >> uint(l) & 1 << uint(plane)
			}
			if v >= cfg.Low && v < cfg.High {
				count++
				sum += v
			}
		}
	}
	return count, sum, nil
}
