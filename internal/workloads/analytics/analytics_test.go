package analytics

import (
	"testing"

	"sherlock"
)

func compileScan(t *testing.T, cfg ScanConfig) *sherlock.Compiled {
	t.Helper()
	g, err := BuildScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScanCountMatchesHost streams the bitmap-index plan through the
// fused COUNT sink and checks the tally against the exact host model at
// chunk-edge row counts.
func TestScanCountMatchesHost(t *testing.T) {
	cfg := DefaultScanConfig()
	c := compileScan(t, cfg)
	names := c.InputNames()
	s, err := c.NewStreamer(sherlock.StreamOptions{Parallelism: 2, ChunkLanes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sink sherlock.CountSink
	for _, rows := range []int{1, 63, 64, 65, 255, 256, 257, 4095, 4096, 20000} {
		in, err := PackedData(names, "col", rows, 42)
		if err != nil {
			t.Fatal(err)
		}
		want, err := HostCount(cfg, names, in, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(in, rows, &sink); err != nil {
			t.Fatal(err)
		}
		if got := sink.Counts[0]; got != want {
			t.Errorf("rows %d: CIM count %d, host %d", rows, got, want)
		}
		// Selectivity sanity: the plan must not be degenerate.
		if rows >= 4096 && (want == 0 || want == int64(rows)) {
			t.Errorf("rows %d: degenerate selectivity %d/%d", rows, want, rows)
		}
	}
}

// TestScanBitmapMatchesBatchWords pins the streamed match bitmap against
// the non-streaming path on the same plan.
func TestScanBitmapMatchesBatchWords(t *testing.T) {
	cfg := DefaultScanConfig()
	c := compileScan(t, cfg)
	names := c.InputNames()
	rows := 5000
	in, err := PackedData(names, "col", rows, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.RunBatchWords(in, rows, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sink sherlock.BitmapSink
	if err := c.RunStream(in, rows, &sink, sherlock.StreamOptions{ChunkLanes: 512}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sink.Out[i] != want[i] {
			t.Fatalf("word %d: stream %#x, batch %#x", i, sink.Out[i], want[i])
		}
	}
}

// TestFilterSumMatchesHost runs the bit-serial filter+aggregate scan:
// fused count (match plane) and fused SUM (masked value planes) must
// equal the exact host model.
func TestFilterSumMatchesHost(t *testing.T) {
	cfg := DefaultFilterSumConfig()
	g, err := BuildFilterSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128})
	if err != nil {
		t.Fatal(err)
	}
	names := c.InputNames()
	planes, match, err := SumPlanes(c.OutputNames(), cfg.ValueBits)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.NewStreamer(sherlock.StreamOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	count := sherlock.CountSink{}
	sum := sherlock.SumBitsSink{Planes: planes}
	for _, rows := range []int{1, 64, 65, 257, 4096, 10000} {
		in, err := PackedData(names, ValuePrefix, rows, 1234)
		if err != nil {
			t.Fatal(err)
		}
		wantCount, wantSum, err := HostFilterSum(cfg, names, in, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(in, rows, &count); err != nil {
			t.Fatal(err)
		}
		if got := count.Counts[match]; got != wantCount {
			t.Errorf("rows %d: CIM match count %d, host %d", rows, got, wantCount)
		}
		if err := s.Run(in, rows, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.Sum != wantSum {
			t.Errorf("rows %d: CIM sum %d, host %d", rows, sum.Sum, wantSum)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []ScanConfig{
		{Columns: 0, All: []int{0}},
		{Columns: 4},
		{Columns: 4, All: []int{4}},
		{Columns: 4, None: []int{-1}},
	}
	for i, cfg := range bad {
		if _, err := BuildScan(cfg); err == nil {
			t.Errorf("scan case %d: want error", i)
		}
	}
	badF := []FilterSumConfig{
		{ValueBits: 0, Low: 1, High: 2},
		{ValueBits: 8, Low: 0, High: 10},   // constant GE(v,0)
		{ValueBits: 8, Low: 10, High: 256}, // High out of range
		{ValueBits: 8, Low: 9, High: 9},
	}
	for i, cfg := range badF {
		if _, err := BuildFilterSum(cfg); err == nil {
			t.Errorf("filter case %d: want error", i)
		}
	}
}
