package sobel

import (
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
)

func randomPatch(rng *rand.Rand, cfg Config) [][]int {
	patch := make([][]int, cfg.TileH+2)
	for y := range patch {
		patch[y] = make([]int, cfg.TileW+2)
		for x := range patch[y] {
			patch[y][x] = rng.Intn(1 << uint(cfg.PixelBits))
		}
	}
	return patch
}

func TestValidate(t *testing.T) {
	for _, bad := range []Config{
		{TileW: 0, TileH: 1, PixelBits: 8, Threshold: 10},
		{TileW: 1, TileH: 1, PixelBits: 0, Threshold: 10},
		{TileW: 1, TileH: 1, PixelBits: 8, Threshold: 99999},
	} {
		if _, err := Build(bad); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestKernelMatchesReference(t *testing.T) {
	cfg := Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		patch := randomPatch(rng, cfg)
		in, err := Assignments(cfg, patch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dfg.EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		for oy := 0; oy < cfg.TileH; oy++ {
			for ox := 0; ox < cfg.TileW; ox++ {
				if res[EdgeName(ox, oy)] != Reference(cfg, patch, ox, oy) {
					t.Fatalf("trial %d: edge(%d,%d) mismatch", trial, ox, oy)
				}
			}
		}
	}
}

func TestExtremePatches(t *testing.T) {
	cfg := Config{TileW: 1, TileH: 1, PixelBits: 8, Threshold: 100}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := [][]int{{7, 7, 7}, {7, 7, 7}, {7, 7, 7}}
	step := [][]int{{0, 255, 255}, {0, 255, 255}, {0, 255, 255}}
	for name, c := range map[string]struct {
		patch [][]int
		want  bool
	}{
		"flat region has no edge":  {flat, false},
		"vertical step is an edge": {step, true},
	} {
		in, err := Assignments(cfg, c.patch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dfg.EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		if res[EdgeName(0, 0)] != c.want {
			t.Errorf("%s: got %v", name, res[EdgeName(0, 0)])
		}
		if Reference(cfg, c.patch, 0, 0) != c.want {
			t.Errorf("%s: reference disagrees", name)
		}
	}
}

func TestLowThresholdAndHighThreshold(t *testing.T) {
	// Threshold 1 fires on any non-flat patch; max-1 threshold almost
	// never fires — exercises comparator edges against the reference.
	rng := rand.New(rand.NewSource(9))
	for _, th := range []uint64{1, 2039} {
		cfg := Config{TileW: 1, TileH: 1, PixelBits: 8, Threshold: th}
		g, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			patch := randomPatch(rng, cfg)
			in, _ := Assignments(cfg, patch)
			res, err := dfg.EvaluateByName(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if res[EdgeName(0, 0)] != Reference(cfg, patch, 0, 0) {
				t.Fatalf("threshold %d trial %d mismatch", th, trial)
			}
		}
	}
}

func TestAssignmentsRejectBadPatch(t *testing.T) {
	cfg := Config{TileW: 1, TileH: 1, PixelBits: 8, Threshold: 100}
	if _, err := Assignments(cfg, [][]int{{1, 2, 3}}); err == nil {
		t.Error("short patch accepted")
	}
	if _, err := Assignments(cfg, [][]int{{1, 2}, {1, 2}, {1, 2}}); err == nil {
		t.Error("narrow patch accepted")
	}
	if _, err := Assignments(cfg, [][]int{{1, 2, 300}, {1, 2, 3}, {1, 2, 3}}); err == nil {
		t.Error("out-of-range pixel accepted")
	}
}

func TestGraphIsPureBulkBitwise(t *testing.T) {
	g, err := Build(Config{TileW: 2, TileH: 2, PixelBits: 4, Threshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if st.Ops < 100 {
		t.Errorf("suspiciously small Sobel DFG: %d ops", st.Ops)
	}
	if st.MaxArity != 2 {
		t.Errorf("builder should emit binary ops, max arity %d", st.MaxArity)
	}
}
