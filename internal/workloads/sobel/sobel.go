// Package sobel generates the bit-sliced Sobel edge-detection workload of
// the paper's evaluation (Joshi et al.-style near-memory formulation): for
// each pixel of an output tile, the 3x3 Sobel gradients Gx and Gy are
// computed with ripple-carry adder networks, |Gx| + |Gy| is thresholded,
// and the edge bit is emitted. The DFG is pure bulk-bitwise logic —
// adders decompose into AND/OR/XOR gates via the symword substrate.
package sobel

import (
	"fmt"

	"sherlock/internal/dfg"
	"sherlock/internal/symword"
)

// Config sizes the generated kernel.
type Config struct {
	// TileW and TileH are the output tile dimensions; the kernel reads a
	// (TileW+2) x (TileH+2) input patch.
	TileW, TileH int
	// PixelBits is the input pixel depth (8 for the paper's setup).
	PixelBits int
	// Threshold on |Gx|+|Gy| deciding an edge.
	Threshold uint64
}

// DefaultConfig matches the evaluation setup: a 4x4 tile of 8-bit pixels.
func DefaultConfig() Config { return Config{TileW: 4, TileH: 4, PixelBits: 8, Threshold: 128} }

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.TileW < 1 || c.TileH < 1 {
		return fmt.Errorf("sobel: tile %dx%d invalid", c.TileW, c.TileH)
	}
	if c.PixelBits < 1 || c.PixelBits > 16 {
		return fmt.Errorf("sobel: pixel depth %d outside [1,16]", c.PixelBits)
	}
	maxMag := uint64(8) << uint(c.PixelBits) // loose bound on |Gx|+|Gy|
	if c.Threshold >= maxMag {
		return fmt.Errorf("sobel: threshold %d can never trigger", c.Threshold)
	}
	return nil
}

// PixName returns the input name of bit b of the patch pixel at (x, y),
// 0 <= x < TileW+2, 0 <= y < TileH+2.
func PixName(x, y, b int) string { return fmt.Sprintf("p%d_%d_b%d", x, y, b) }

// EdgeName returns the output name of the edge bit for output pixel (x, y).
func EdgeName(x, y int) string { return fmt.Sprintf("edge%d_%d", x, y) }

// Build generates the DFG.
func Build(cfg Config) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()
	patchW, patchH := cfg.TileW+2, cfg.TileH+2
	pix := make([][]symword.Word, patchH)
	for y := 0; y < patchH; y++ {
		pix[y] = make([]symword.Word, patchW)
		for x := 0; x < patchW; x++ {
			w := make(symword.Word, cfg.PixelBits)
			for bit := 0; bit < cfg.PixelBits; bit++ {
				w[bit] = b.Input(PixName(x, y, bit))
			}
			pix[y][x] = w
		}
	}

	// weighted = a + 2*mid + c over PixelBits+2 bits (max 4*(2^k-1) fits).
	weighted := func(a, mid, c symword.Word) symword.Word {
		wide := cfg.PixelBits + 2
		s1 := symword.Add(b, symword.ZeroExtend(b, a, wide-1), symword.ShiftLeft(b, mid, 1)[:wide-1]) // wide bits
		return symword.Add(b, s1, symword.ZeroExtend(b, c, wide))[:wide]
	}

	for oy := 0; oy < cfg.TileH; oy++ {
		for ox := 0; ox < cfg.TileW; ox++ {
			// Patch coordinates of the 3x3 neighborhood center.
			cx, cy := ox+1, oy+1
			gxWidth := cfg.PixelBits + 3 // signed
			right := weighted(pix[cy-1][cx+1], pix[cy][cx+1], pix[cy+1][cx+1])
			left := weighted(pix[cy-1][cx-1], pix[cy][cx-1], pix[cy+1][cx-1])
			gx := symword.Sub(b, symword.ZeroExtend(b, right, gxWidth), symword.ZeroExtend(b, left, gxWidth))
			bottom := weighted(pix[cy+1][cx-1], pix[cy+1][cx], pix[cy+1][cx+1])
			top := weighted(pix[cy-1][cx-1], pix[cy-1][cx], pix[cy-1][cx+1])
			gy := symword.Sub(b, symword.ZeroExtend(b, bottom, gxWidth), symword.ZeroExtend(b, top, gxWidth))

			mag := symword.Add(b, symword.Abs(b, gx), symword.Abs(b, gy))
			b.Output(EdgeName(ox, oy), symword.GEConst(b, mag, cfg.Threshold))
		}
	}
	return b.Graph(), nil
}

// Reference computes the edge bit for output pixel (ox, oy) of the patch
// (patch[y][x], row-major) — the scalar golden model.
func Reference(cfg Config, patch [][]int, ox, oy int) bool {
	cx, cy := ox+1, oy+1
	w := func(a, m, c int) int { return a + 2*m + c }
	gx := w(patch[cy-1][cx+1], patch[cy][cx+1], patch[cy+1][cx+1]) -
		w(patch[cy-1][cx-1], patch[cy][cx-1], patch[cy+1][cx-1])
	gy := w(patch[cy+1][cx-1], patch[cy+1][cx], patch[cy+1][cx+1]) -
		w(patch[cy-1][cx-1], patch[cy-1][cx], patch[cy-1][cx+1])
	mag := abs(gx) + abs(gy)
	return uint64(mag) >= cfg.Threshold
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Assignments binds the patch pixels (patch[y][x], sized (TileH+2) x
// (TileW+2)) to the kernel inputs.
func Assignments(cfg Config, patch [][]int) (map[string]bool, error) {
	if len(patch) != cfg.TileH+2 {
		return nil, fmt.Errorf("sobel: patch height %d, want %d", len(patch), cfg.TileH+2)
	}
	in := make(map[string]bool)
	for y := range patch {
		if len(patch[y]) != cfg.TileW+2 {
			return nil, fmt.Errorf("sobel: patch row %d width %d, want %d", y, len(patch[y]), cfg.TileW+2)
		}
		for x, v := range patch[y] {
			if v < 0 || v >= 1<<uint(cfg.PixelBits) {
				return nil, fmt.Errorf("sobel: pixel (%d,%d)=%d outside %d bits", x, y, v, cfg.PixelBits)
			}
			for bit := 0; bit < cfg.PixelBits; bit++ {
				in[PixName(x, y, bit)] = v>>uint(bit)&1 == 1
			}
		}
	}
	return in, nil
}
