// Package aes generates the bit-sliced AES-128 encryption workload of the
// paper's evaluation. Where the paper uses the Usuba bitslicing compiler,
// this package synthesizes the S-box gate network from its truth table with
// the aig substrate (memoized Shannon decomposition, structurally hashed)
// and builds ShiftRows as pure renaming, MixColumns and AddRoundKey as XOR
// networks. The resulting DFG is verified bit-exactly against crypto/aes.
package aes

import (
	"fmt"
	"sync"

	"sherlock/internal/aig"
	"sherlock/internal/dfg"
)

// Config sizes the generated kernel.
type Config struct {
	// Rounds executed (10 = full AES-128; fewer rounds keep the AES
	// structure — final executed round skips MixColumns — and are used
	// for fast tests and small-array experiments).
	Rounds int
	// SBox selects the SubBytes circuit generator.
	SBox SBoxVariant
}

// DefaultConfig is full AES-128 with the tower-field S-box.
func DefaultConfig() Config { return Config{Rounds: NumRounds, SBox: SBoxTowerField} }

// Validate rejects out-of-range round counts.
func (c Config) Validate() error {
	if c.Rounds < 1 || c.Rounds > NumRounds {
		return fmt.Errorf("aes: rounds %d outside [1,%d]", c.Rounds, NumRounds)
	}
	return nil
}

// PTName returns the plaintext input name for bit b of state byte i.
func PTName(i, b int) string { return fmt.Sprintf("pt%d_b%d", i, b) }

// RKName returns the round-key input name for bit b of byte i of round r.
func RKName(r, i, b int) string { return fmt.Sprintf("rk%d_%d_b%d", r, i, b) }

// CTName returns the ciphertext output name for bit b of state byte i.
func CTName(i, b int) string { return fmt.Sprintf("ct%d_b%d", i, b) }

// sboxCircuit builds (once) the shared S-box AIG: 8 inputs, 8 outputs.
var sboxOnce sync.Once
var sboxGraph *aig.Graph
var sboxOuts [8]aig.Lit

func sboxCircuit() (*aig.Graph, [8]aig.Lit) {
	sboxOnce.Do(func() {
		sboxGraph = aig.New(8)
		for bit := 0; bit < 8; bit++ {
			tt := aig.TTFromFunc(8, func(x uint) bool {
				return SBox(byte(x))>>uint(bit)&1 == 1
			})
			sboxOuts[bit] = sboxGraph.Synthesize(tt)
		}
	})
	return sboxGraph, sboxOuts
}

// SBoxGateCount reports the size of the synthesized S-box network (AND
// nodes in the shared AIG), for documentation and stats.
func SBoxGateCount() int {
	g, _ := sboxCircuit()
	return g.NumAnds()
}

type symByte [8]dfg.Val // little-endian bits of one state byte

// Build generates the DFG. Inputs: 128 plaintext bits and 128·(rounds+1)
// round-key bits (the key schedule runs on the host, as in bit-sliced
// software AES); outputs: 128 ciphertext bits.
func Build(cfg Config) (*dfg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := dfg.NewBuilder()

	var state [16]symByte
	for i := 0; i < 16; i++ {
		for bit := 0; bit < 8; bit++ {
			state[i][bit] = b.Input(PTName(i, bit))
		}
	}
	rk := make([][16]symByte, cfg.Rounds+1)
	for r := 0; r <= cfg.Rounds; r++ {
		for i := 0; i < 16; i++ {
			for bit := 0; bit < 8; bit++ {
				rk[r][i][bit] = b.Input(RKName(r, i, bit))
			}
		}
	}

	xorBytes := func(x, y symByte) symByte {
		var out symByte
		for bit := 0; bit < 8; bit++ {
			out[bit] = b.Xor(x[bit], y[bit])
		}
		return out
	}

	// AddRoundKey 0.
	for i := range state {
		state[i] = xorBytes(state[i], rk[0][i])
	}

	var subByte func(x symByte) symByte
	switch cfg.SBox {
	case SBoxSynthesized:
		g, outs := sboxCircuit()
		subByte = func(x symByte) symByte {
			var out symByte
			copy(out[:], g.EmitAll(b, x[:], outs[:]))
			return out
		}
	default: // SBoxTowerField
		subByte = func(x symByte) symByte {
			var in [8]dfg.Val
			copy(in[:], x[:])
			return sboxTowerCircuit(b, in)
		}
	}
	xtime := func(x symByte) symByte {
		// (x<<1) ^ (0x1B if bit7): bit0=x7, bit1=x0^x7, bit2=x1,
		// bit3=x2^x7, bit4=x3^x7, bit5=x4, bit6=x5, bit7=x6.
		hi := x[7]
		return symByte{
			hi,
			b.Xor(x[0], hi),
			x[1],
			b.Xor(x[2], hi),
			b.Xor(x[3], hi),
			x[4],
			x[5],
			x[6],
		}
	}

	for r := 1; r <= cfg.Rounds; r++ {
		// SubBytes.
		for i := range state {
			state[i] = subByte(state[i])
		}
		// ShiftRows: pure renaming.
		var sh [16]symByte
		for i := range sh {
			sh[i] = state[shiftRowsIndex(i)]
		}
		state = sh
		// MixColumns (not in the final executed round).
		if r != cfg.Rounds {
			var mixed [16]symByte
			for c := 0; c < 4; c++ {
				a := [4]symByte{state[4*c], state[4*c+1], state[4*c+2], state[4*c+3]}
				var d [4]symByte
				for i := range d {
					d[i] = xtime(a[i])
				}
				tripled := func(i int) symByte { return xorBytes(d[i], a[i]) }
				mixed[4*c] = xorBytes(xorBytes(d[0], tripled(1)), xorBytes(a[2], a[3]))
				mixed[4*c+1] = xorBytes(xorBytes(a[0], d[1]), xorBytes(tripled(2), a[3]))
				mixed[4*c+2] = xorBytes(xorBytes(a[0], a[1]), xorBytes(d[2], tripled(3)))
				mixed[4*c+3] = xorBytes(xorBytes(tripled(0), a[1]), xorBytes(a[2], d[3]))
			}
			state = mixed
		}
		// AddRoundKey.
		for i := range state {
			state[i] = xorBytes(state[i], rk[r][i])
		}
	}

	for i := 0; i < 16; i++ {
		for bit := 0; bit < 8; bit++ {
			b.Output(CTName(i, bit), state[i][bit])
		}
	}
	return b.Graph(), nil
}

// Assignments binds plaintext and expanded key bits to the kernel inputs.
func Assignments(cfg Config, pt [16]byte, key [16]byte) (map[string]bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rks := ExpandKey(key)
	in := make(map[string]bool, 128*(cfg.Rounds+2))
	for i := 0; i < 16; i++ {
		for bit := 0; bit < 8; bit++ {
			in[PTName(i, bit)] = pt[i]>>uint(bit)&1 == 1
		}
	}
	for r := 0; r <= cfg.Rounds; r++ {
		for i := 0; i < 16; i++ {
			for bit := 0; bit < 8; bit++ {
				in[RKName(r, i, bit)] = rks[r][i]>>uint(bit)&1 == 1
			}
		}
	}
	return in, nil
}

// CiphertextFrom extracts the 16 output bytes from evaluated outputs.
func CiphertextFrom(outs map[string]bool) ([16]byte, error) {
	var ct [16]byte
	for i := 0; i < 16; i++ {
		for bit := 0; bit < 8; bit++ {
			v, ok := outs[CTName(i, bit)]
			if !ok {
				return ct, fmt.Errorf("aes: missing output %s", CTName(i, bit))
			}
			if v {
				ct[i] |= 1 << uint(bit)
			}
		}
	}
	return ct, nil
}
