package aes

import (
	"fmt"
	"testing"

	"sherlock/internal/dfg"
)

func TestGF22FieldAxioms(t *testing.T) {
	// GF(2^2) multiplication: W^2 = W+1, associativity, inverses.
	if mul2(2, 2) != 3 { // W*W = W+1
		t.Errorf("W*W = %d, want 3", mul2(2, 2))
	}
	for a := byte(0); a < 4; a++ {
		for b := byte(0); b < 4; b++ {
			for c := byte(0); c < 4; c++ {
				if mul2(a, mul2(b, c)) != mul2(mul2(a, b), c) {
					t.Fatal("GF(2^2) not associative")
				}
			}
			if mul2(a, b) != mul2(b, a) {
				t.Fatal("GF(2^2) not commutative")
			}
		}
		if a != 0 && mul2(a, sq2(a)) != 1 {
			t.Errorf("a^3 != 1 for a=%d", a)
		}
	}
}

func TestGF24Irreducibility(t *testing.T) {
	// x^2 + x + nu must have no root in GF(2^2).
	for r := byte(0); r < 4; r++ {
		if sq2(r)^r^nu == 0 {
			t.Fatalf("x^2+x+nu has root %d: modulus reducible", r)
		}
	}
	// Every nonzero GF(2^4) element must have an inverse.
	for a := byte(1); a < 16; a++ {
		if mul4(a, inv4(a)) != 1 {
			t.Errorf("inv4(%d) wrong", a)
		}
	}
	if inv4(0) != 0 {
		t.Error("inv4(0) must be 0")
	}
}

func TestGF28TowerField(t *testing.T) {
	towerInit()
	// Lambda's irreducibility over GF(2^4).
	for r := byte(0); r < 16; r++ {
		if sq4(r)^r^lambda == 0 {
			t.Fatalf("lambda=%d reducible (root %d)", lambda, r)
		}
	}
	// Inverses across the whole field.
	for a := 1; a < 256; a++ {
		if mul8(byte(a), inv8(byte(a))) != 1 {
			t.Fatalf("inv8(%#02x) wrong", a)
		}
	}
	if inv8(0) != 0 {
		t.Error("inv8(0) must be 0")
	}
}

func TestIsomorphismIsFieldHomomorphism(t *testing.T) {
	towerInit()
	// phi(ab) == phi(a) phi(b) and phi(a^b) == phi(a)^phi(b) on a sweep.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			pa, pb := applyMatrix(isoM, byte(a)), applyMatrix(isoM, byte(b))
			if applyMatrix(isoM, gmul(byte(a), byte(b))) != mul8(pa, pb) {
				t.Fatalf("phi not multiplicative at (%d,%d)", a, b)
			}
			if applyMatrix(isoM, byte(a)^byte(b)) != pa^pb {
				t.Fatalf("phi not additive at (%d,%d)", a, b)
			}
		}
	}
	if applyMatrix(isoM, 1) != 1 {
		t.Error("phi(1) != 1")
	}
	// M and M^-1 invert each other.
	for a := 0; a < 256; a++ {
		if applyMatrix(isoMInv, applyMatrix(isoM, byte(a))) != byte(a) {
			t.Fatalf("M^-1 M != I at %d", a)
		}
	}
}

func TestSBoxTowerMatchesSBox(t *testing.T) {
	for x := 0; x < 256; x++ {
		if SBoxTower(byte(x)) != SBox(byte(x)) {
			t.Fatalf("SBoxTower(%#02x) = %#02x, want %#02x", x, SBoxTower(byte(x)), SBox(byte(x)))
		}
	}
}

func TestTowerCircuitExhaustive(t *testing.T) {
	b := dfg.NewBuilder()
	var in [8]dfg.Val
	for i := range in {
		in[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	out := sboxTowerCircuit(b, in)
	for i, v := range out {
		b.Output(fmt.Sprintf("y%d", i), v)
	}
	g := b.Graph()
	for x := 0; x < 256; x++ {
		assign := make(map[string]bool, 8)
		for i := 0; i < 8; i++ {
			assign[fmt.Sprintf("x%d", i)] = x>>uint(i)&1 == 1
		}
		res, err := dfg.EvaluateByName(g, assign)
		if err != nil {
			t.Fatal(err)
		}
		var got byte
		for i := 0; i < 8; i++ {
			if res[fmt.Sprintf("y%d", i)] {
				got |= 1 << uint(i)
			}
		}
		if got != SBox(byte(x)) {
			t.Fatalf("circuit S-box(%#02x) = %#02x, want %#02x", x, got, SBox(byte(x)))
		}
	}
}

func TestTowerCircuitIsSmall(t *testing.T) {
	b := dfg.NewBuilder()
	var in [8]dfg.Val
	for i := range in {
		in[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	out := sboxTowerCircuit(b, in)
	for i, v := range out {
		b.Output(fmt.Sprintf("y%d", i), v)
	}
	st := b.Graph().ComputeStats()
	if st.Ops > 250 {
		t.Errorf("tower S-box uses %d ops, expected a compact circuit (<250)", st.Ops)
	}
	t.Logf("tower S-box: %d ops (%v)", st.Ops, dfg.SortedOpCounts(st.ByOp))
}

func TestBuildWithSynthesizedSBoxStillCorrect(t *testing.T) {
	cfg := Config{Rounds: 1, SBox: SBoxSynthesized}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pt, key [16]byte
	for i := range pt {
		pt[i], key[i] = byte(3*i+1), byte(17*i+5)
	}
	in, _ := Assignments(cfg, pt, key)
	outs, err := dfg.EvaluateByName(g, in)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := CiphertextFrom(outs)
	if want := EncryptReference(pt, key, 1); ct != want {
		t.Fatalf("%x != %x", ct, want)
	}
}

func TestVariantStrings(t *testing.T) {
	if SBoxTowerField.String() == SBoxSynthesized.String() {
		t.Error("variant strings collide")
	}
}
