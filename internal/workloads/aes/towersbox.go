package aes

// Composite-field ("tower") construction of the AES S-box circuit, in the
// style of Satoh/Canright: the GF(2^8) inversion is computed in
// GF(((2^2)^2)^2), where it decomposes into a handful of small
// multiplications, at a fraction of the gates a truth-table synthesis
// needs. The basis-change matrices are derived programmatically (root
// search for the AES polynomial in the tower field), not hard-coded, and
// the construction is verified exhaustively against SBox in the tests.
//
// Tower encoding of a byte: bits 0..3 = A0, bits 4..7 = A1 (GF(2^4) pair,
// element A1*x + A0 modulo x^2 + x + lambda); a nibble's bits 0..1 = a0,
// bits 2..3 = a1 (GF(2^2) pair modulo x^2 + x + nu); a 2-bit element's
// bit 1 is the coefficient of W modulo W^2 + W + 1.

import (
	"fmt"
	"sync"

	"sherlock/internal/dfg"
)

// --- software tower arithmetic (for deriving matrices and verification) ---

// mul2 multiplies in GF(2^2).
func mul2(a, b byte) byte {
	a1, a0 := a>>1&1, a&1
	b1, b0 := b>>1&1, b&1
	p1 := a1 & b1
	p0 := a0 & b0
	s := (a1 ^ a0) & (b1 ^ b0)
	return (s^p0)<<1 | (p1 ^ p0)
}

func sq2(a byte) byte { return mul2(a, a) }

// nu is the GF(2^4) modulus constant N (x^2 + x + N over GF(2^2)); W+1 is
// a standard choice whose irreducibility the tests verify.
const nu = 0x3 // W + 1

// mul4 multiplies in GF(2^4) = GF(2^2)[x]/(x^2+x+nu).
func mul4(a, b byte) byte {
	a1, a0 := a>>2&3, a&3
	b1, b0 := b>>2&3, b&3
	p1 := mul2(a1, b1)
	p0 := mul2(a0, b0)
	s := mul2(a1^a0, b1^b0)
	r1 := s ^ p0
	r0 := mul2(p1, nu) ^ p0
	return r1<<2 | r0
}

func sq4(a byte) byte { return mul4(a, a) }

// inv4 inverts in GF(2^4) (0 maps to 0).
func inv4(a byte) byte {
	a1, a0 := a>>2&3, a&3
	delta := mul2(sq2(a1), nu) ^ mul2(a1, a0) ^ sq2(a0)
	dinv := sq2(delta) // GF(2^2): a^-1 = a^2
	r1 := mul2(a1, dinv)
	r0 := mul2(a1^a0, dinv)
	return r1<<2 | r0
}

// lambda is the GF(2^8) modulus constant (x^2 + x + lambda over GF(2^4)),
// found by towerInit's irreducibility search.
var towerOnce sync.Once
var lambda byte
var isoM, isoMInv [8]byte // column-major over GF(2): bit j of M[i] = M[j][i]
var affMInv [8]byte       // AES affine matrix composed with M^-1

// mul8 multiplies in the tower GF(2^8).
func mul8(a, b byte) byte {
	towerInit()
	a1, a0 := a>>4&0xF, a&0xF
	b1, b0 := b>>4&0xF, b&0xF
	p1 := mul4(a1, b1)
	p0 := mul4(a0, b0)
	s := mul4(a1^a0, b1^b0)
	r1 := s ^ p0
	r0 := mul4(p1, lambda) ^ p0
	return r1<<4 | r0
}

// inv8 inverts in the tower GF(2^8).
func inv8(a byte) byte {
	towerInit()
	a1, a0 := a>>4&0xF, a&0xF
	delta := mul4(sq4(a1), lambda) ^ mul4(a1, a0) ^ sq4(a0)
	dinv := inv4(delta)
	r1 := mul4(a1, dinv)
	r0 := mul4(a1^a0, dinv)
	return r1<<4 | r0
}

// applyMatrix multiplies the GF(2) matrix (rows[j] = mask of inputs XORed
// into output bit j) by the byte.
func applyMatrix(m [8]byte, x byte) byte {
	var out byte
	for j := 0; j < 8; j++ {
		if parity(m[j] & x) {
			out |= 1 << uint(j)
		}
	}
	return out
}

func parity(b byte) bool {
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b&1 == 1
}

// towerInit finds lambda, the field isomorphism M (AES polynomial basis ->
// tower basis) and the composed output matrix affine * M^-1.
func towerInit() {
	towerOnce.Do(func() {
		// 1. Find lambda making x^2 + x + lambda irreducible over
		// GF(2^4): no r in GF(2^4) with r^2 + r + lambda == 0.
		foundLambda := false
		for cand := byte(1); cand < 16 && !foundLambda; cand++ {
			ok := true
			for r := byte(0); r < 16; r++ {
				if sq4(r)^r^cand == 0 {
					ok = false
					break
				}
			}
			if ok {
				lambda = cand
				foundLambda = true
			}
		}
		if !foundLambda {
			panic("aes: no irreducible lambda found")
		}

		// 2. Find a root beta of the AES polynomial x^8+x^4+x^3+x+1 in
		// the tower field, then M columns are beta^i.
		towerPow := func(b byte, e int) byte {
			r := byte(0x01)
			for i := 0; i < e; i++ {
				r = towerMulNoInit(r, b)
			}
			return r
		}
		var beta byte
		found := false
		for cand := byte(2); cand != 0; cand++ {
			if towerPow(cand, 8)^towerPow(cand, 4)^towerPow(cand, 3)^cand^1 == 0 {
				beta = cand
				found = true
				break
			}
		}
		if !found {
			panic("aes: AES polynomial has no root in tower field")
		}
		var cols [8]byte
		for i := 0; i < 8; i++ {
			cols[i] = towerPow(beta, i)
		}
		// Convert columns to row masks: row j's bit i = bit j of col i.
		for j := 0; j < 8; j++ {
			var row byte
			for i := 0; i < 8; i++ {
				if cols[i]>>uint(j)&1 == 1 {
					row |= 1 << uint(i)
				}
			}
			isoM[j] = row
		}
		inv, ok := invertGF2(isoM)
		if !ok {
			panic("aes: isomorphism matrix not invertible")
		}
		isoMInv = inv

		// 3. Compose the AES affine matrix with M^-1: y = A*(M^-1 u) ^ 0x63.
		var affine [8]byte
		for j := 0; j < 8; j++ {
			affine[j] = 1<<uint(j) | 1<<uint((j+4)%8) | 1<<uint((j+5)%8) |
				1<<uint((j+6)%8) | 1<<uint((j+7)%8)
		}
		affMInv = matMul(affine, isoMInv)
	})
}

// towerMulNoInit is mul8 without the recursive init (lambda already set
// when called from towerInit).
func towerMulNoInit(a, b byte) byte {
	a1, a0 := a>>4&0xF, a&0xF
	b1, b0 := b>>4&0xF, b&0xF
	p1 := mul4(a1, b1)
	p0 := mul4(a0, b0)
	s := mul4(a1^a0, b1^b0)
	return (s^p0)<<4 | (mul4(p1, lambda) ^ p0)
}

// invertGF2 inverts an 8x8 bit matrix (rows as masks) by Gauss-Jordan.
func invertGF2(m [8]byte) ([8]byte, bool) {
	a := m
	var inv [8]byte
	for i := range inv {
		inv[i] = 1 << uint(i)
	}
	for col := 0; col < 8; col++ {
		pivot := -1
		for r := col; r < 8; r++ {
			if a[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return inv, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := 0; r < 8; r++ {
			if r != col && a[r]>>uint(col)&1 == 1 {
				a[r] ^= a[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return inv, true
}

// matMul composes two GF(2) matrices in row-mask form: (ab)(x) = a(b(x)).
func matMul(a, b [8]byte) [8]byte {
	// Column i of the product is a applied to column i of b.
	var cols [8]byte
	for i := 0; i < 8; i++ {
		var colB byte
		for j := 0; j < 8; j++ {
			if b[j]>>uint(i)&1 == 1 {
				colB |= 1 << uint(j)
			}
		}
		cols[i] = applyMatrix(a, colB)
	}
	var out [8]byte
	for j := 0; j < 8; j++ {
		var row byte
		for i := 0; i < 8; i++ {
			if cols[i]>>uint(j)&1 == 1 {
				row |= 1 << uint(i)
			}
		}
		out[j] = row
	}
	return out
}

// SBoxTower computes the S-box through the tower decomposition in
// software; the tests check it equals SBox for all 256 inputs, which
// validates the derived matrices before they parameterize the circuit.
func SBoxTower(x byte) byte {
	towerInit()
	u := applyMatrix(isoM, x)
	v := inv8(u)
	return applyMatrix(affMInv, v) ^ 0x63
}

// --- symbolic circuit construction over a dfg.Builder ---

type g2s [2]dfg.Val // [0] = low bit, [1] = W coefficient
type g4s [2]g2s     // [0] = a0, [1] = a1
type g8s [2]g4s     // [0] = A0, [1] = A1

func xor2s(b *dfg.Builder, x, y g2s) g2s {
	return g2s{b.Xor(x[0], y[0]), b.Xor(x[1], y[1])}
}

// mul2s is the 3-AND GF(2^2) multiplier.
func mul2s(b *dfg.Builder, x, y g2s) g2s {
	p1 := b.And(x[1], y[1])
	p0 := b.And(x[0], y[0])
	s := b.And(b.Xor(x[1], x[0]), b.Xor(y[1], y[0]))
	return g2s{b.Xor(p1, p0), b.Xor(s, p0)}
}

// sq2s squares (linear): r1 = a1, r0 = a1 ^ a0.
func sq2s(b *dfg.Builder, x g2s) g2s {
	return g2s{b.Xor(x[1], x[0]), x[1]}
}

// mulConst2s multiplies by a GF(2^2) constant via its linear matrix.
func mulConst2s(b *dfg.Builder, c byte, x g2s) g2s {
	// Columns: c*1 and c*W.
	c0, c1 := mul2(c, 1), mul2(c, 2)
	bit := func(j uint) dfg.Val {
		acc := b.Const(false)
		if c0>>j&1 == 1 {
			acc = b.Xor(acc, x[0])
		}
		if c1>>j&1 == 1 {
			acc = b.Xor(acc, x[1])
		}
		return acc
	}
	return g2s{bit(0), bit(1)}
}

func xor4s(b *dfg.Builder, x, y g4s) g4s {
	return g4s{xor2s(b, x[0], y[0]), xor2s(b, x[1], y[1])}
}

// mul4s is the Karatsuba GF(2^4) multiplier (3 GF(2^2) multiplies).
func mul4s(b *dfg.Builder, x, y g4s) g4s {
	p1 := mul2s(b, x[1], y[1])
	p0 := mul2s(b, x[0], y[0])
	s := mul2s(b, xor2s(b, x[1], x[0]), xor2s(b, y[1], y[0]))
	r1 := xor2s(b, s, p0)
	r0 := xor2s(b, mulConst2s(b, nu, p1), p0)
	return g4s{r0, r1}
}

// sq4s squares (linear).
func sq4s(b *dfg.Builder, x g4s) g4s {
	s1 := sq2s(b, x[1])
	s0 := sq2s(b, x[0])
	return g4s{xor2s(b, mulConst2s(b, nu, s1), s0), s1}
}

// mulConst4s multiplies by a GF(2^4) constant (linear matrix over 4 bits).
func mulConst4s(b *dfg.Builder, c byte, x g4s) g4s {
	bits := [4]dfg.Val{x[0][0], x[0][1], x[1][0], x[1][1]}
	var outBits [4]dfg.Val
	for j := 0; j < 4; j++ {
		acc := b.Const(false)
		for i := 0; i < 4; i++ {
			if mul4(c, 1<<uint(i))>>uint(j)&1 == 1 {
				acc = b.Xor(acc, bits[i])
			}
		}
		outBits[j] = acc
	}
	return g4s{{outBits[0], outBits[1]}, {outBits[2], outBits[3]}}
}

// inv4s inverts in GF(2^4): 3 GF(2^2) multiplies plus linear terms.
func inv4s(b *dfg.Builder, x g4s) g4s {
	delta := xor2s(b, xor2s(b, mulConst2s(b, nu, sq2s(b, x[1])), mul2s(b, x[1], x[0])), sq2s(b, x[0]))
	dinv := sq2s(b, delta)
	r1 := mul2s(b, x[1], dinv)
	r0 := mul2s(b, xor2s(b, x[1], x[0]), dinv)
	return g4s{r0, r1}
}

// inv8s inverts in GF(2^8): 3 GF(2^4) multiplies + one GF(2^4) inversion.
func inv8s(b *dfg.Builder, x g8s) g8s {
	towerInit()
	delta := xor4s(b, xor4s(b, mulConst4s(b, lambda, sq4s(b, x[1])), mul4s(b, x[1], x[0])), sq4s(b, x[0]))
	dinv := inv4s(b, delta)
	r1 := mul4s(b, x[1], dinv)
	r0 := mul4s(b, xor4s(b, x[1], x[0]), dinv)
	return g8s{r0, r1}
}

// matrixApplyS applies a GF(2) row-mask matrix to 8 symbolic bits, with an
// optional constant XORed in (NOT on those bits).
func matrixApplyS(b *dfg.Builder, m [8]byte, in [8]dfg.Val, c byte) [8]dfg.Val {
	var out [8]dfg.Val
	for j := 0; j < 8; j++ {
		acc := b.Const(c>>uint(j)&1 == 1)
		for i := 0; i < 8; i++ {
			if m[j]>>uint(i)&1 == 1 {
				acc = b.Xor(acc, in[i])
			}
		}
		out[j] = acc
	}
	return out
}

// sboxTowerCircuit builds the complete S-box circuit over 8 symbolic input
// bits: basis change, tower inversion, inverse basis change fused with the
// AES affine transform.
func sboxTowerCircuit(b *dfg.Builder, in [8]dfg.Val) [8]dfg.Val {
	towerInit()
	t := matrixApplyS(b, isoM, in, 0)
	x := g8s{
		{{t[0], t[1]}, {t[2], t[3]}},
		{{t[4], t[5]}, {t[6], t[7]}},
	}
	v := inv8s(b, x)
	flat := [8]dfg.Val{
		v[0][0][0], v[0][0][1], v[0][1][0], v[0][1][1],
		v[1][0][0], v[1][0][1], v[1][1][0], v[1][1][1],
	}
	return matrixApplyS(b, affMInv, flat, 0x63)
}

// TowerSBoxGateCount reports the op count of one tower-field S-box circuit
// instance (for documentation and comparisons with the synthesized
// variant, whose size SBoxGateCount reports).
func TowerSBoxGateCount() int {
	b := dfg.NewBuilder()
	var in [8]dfg.Val
	for i := range in {
		in[i] = b.Input(fmt.Sprintf("sx%d", i))
	}
	out := sboxTowerCircuit(b, in)
	for i, v := range out {
		b.Output(fmt.Sprintf("sy%d", i), v)
	}
	return b.Graph().ComputeStats().Ops
}

// SBoxVariant selects how SubBytes circuits are generated.
type SBoxVariant int

const (
	// SBoxTowerField is the composite-field construction (default):
	// small circuits, XOR/AND-dominated.
	SBoxTowerField SBoxVariant = iota
	// SBoxSynthesized uses the aig truth-table synthesis (larger AND/NOT
	// networks); kept as an ablation of the front-end's circuit quality.
	SBoxSynthesized
)

func (v SBoxVariant) String() string {
	switch v {
	case SBoxTowerField:
		return "tower-field"
	case SBoxSynthesized:
		return "synthesized"
	}
	return fmt.Sprintf("SBoxVariant(%d)", int(v))
}
