package aes

import (
	stdaes "crypto/aes"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
)

func TestGF256Basics(t *testing.T) {
	if gmul(0x57, 0x83) != 0xC1 { // FIPS-197 worked example
		t.Errorf("gmul(0x57,0x83) = %#x, want 0xC1", gmul(0x57, 0x83))
	}
	if gmul(0x57, 0x13) != 0xFE {
		t.Errorf("gmul(0x57,0x13) = %#x, want 0xFE", gmul(0x57, 0x13))
	}
	for a := 1; a < 256; a++ {
		inv := ginv(byte(a))
		if gmul(byte(a), inv) != 1 {
			t.Fatalf("ginv(%#x) = %#x is not an inverse", a, inv)
		}
	}
	if ginv(0) != 0 {
		t.Error("ginv(0) must be 0")
	}
}

func TestSBoxKnownValues(t *testing.T) {
	// FIPS-197 Table 7 spot checks.
	known := map[byte]byte{
		0x00: 0x63, 0x01: 0x7C, 0x10: 0xCA, 0x53: 0xED,
		0xFF: 0x16, 0x9A: 0xB8, 0xC5: 0xA6,
	}
	for in, want := range known {
		if got := SBox(in); got != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
	// S-box must be a permutation.
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		seen[SBox(byte(i))] = true
	}
	if len(seen) != 256 {
		t.Errorf("S-box covers %d values, want 256", len(seen))
	}
}

func TestExpandKeyFIPSVector(t *testing.T) {
	// FIPS-197 appendix A.1 key expansion for the standard test key.
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	rks := ExpandKey(key)
	// w4 = a0fafe17 (first word of round key 1).
	want1 := [4]byte{0xa0, 0xfa, 0xfe, 0x17}
	for j := 0; j < 4; j++ {
		if rks[1][j] != want1[j] {
			t.Fatalf("round key 1 word 0 byte %d = %#02x, want %#02x", j, rks[1][j], want1[j])
		}
	}
	// w43 ends the schedule: round key 10 = d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
	want10 := [16]byte{0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
		0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6}
	if rks[10] != want10 {
		t.Fatalf("round key 10 = %x, want %x", rks[10], want10)
	}
}

func TestEncryptReferenceMatchesCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var pt, key [16]byte
		rng.Read(pt[:])
		rng.Read(key[:])
		got := EncryptReference(pt, key, NumRounds)
		block, err := stdaes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want [16]byte
		block.Encrypt(want[:], pt[:])
		if got != want {
			t.Fatalf("trial %d: reference %x != crypto/aes %x", trial, got, want)
		}
	}
}

func TestFIPSKnownAnswer(t *testing.T) {
	// FIPS-197 appendix B.
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	if got := EncryptReference(pt, key, NumRounds); got != want {
		t.Fatalf("FIPS KAT failed: %x", got)
	}
}

func TestSBoxCircuitExact(t *testing.T) {
	g, outs := sboxCircuit()
	for x := 0; x < 256; x++ {
		in := make([]bool, 8)
		for bit := 0; bit < 8; bit++ {
			in[bit] = x>>uint(bit)&1 == 1
		}
		var got byte
		for bit := 0; bit < 8; bit++ {
			if g.Eval(outs[bit], in) {
				got |= 1 << uint(bit)
			}
		}
		if got != SBox(byte(x)) {
			t.Fatalf("synthesized S-box(%#02x) = %#02x, want %#02x", x, got, SBox(byte(x)))
		}
	}
	if n := SBoxGateCount(); n < 50 || n > 5000 {
		t.Errorf("S-box gate count %d looks wrong", n)
	}
}

func TestDFGOneRoundMatchesReference(t *testing.T) {
	cfg := Config{Rounds: 1}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		var pt, key [16]byte
		rng.Read(pt[:])
		rng.Read(key[:])
		in, err := Assignments(cfg, pt, key)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := dfg.EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := CiphertextFrom(outs)
		if err != nil {
			t.Fatal(err)
		}
		if want := EncryptReference(pt, key, 1); ct != want {
			t.Fatalf("trial %d: %x != %x", trial, ct, want)
		}
	}
}

func TestDFGTwoRoundsExercisesMixColumns(t *testing.T) {
	cfg := Config{Rounds: 2}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pt, key [16]byte
	for i := range pt {
		pt[i] = byte(i * 7)
		key[i] = byte(255 - i)
	}
	in, _ := Assignments(cfg, pt, key)
	outs, err := dfg.EvaluateByName(g, in)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := CiphertextFrom(outs)
	if want := EncryptReference(pt, key, 2); ct != want {
		t.Fatalf("%x != %x", ct, want)
	}
}

func TestDFGFullAESMatchesCryptoAES(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-round DFG evaluation is slow")
	}
	cfg := DefaultConfig()
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pt, key [16]byte
	copy(pt[:], []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34})
	copy(key[:], []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c})
	in, _ := Assignments(cfg, pt, key)
	outs, err := dfg.EvaluateByName(g, in)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := CiphertextFrom(outs)
	block, _ := stdaes.NewCipher(key[:])
	var want [16]byte
	block.Encrypt(want[:], pt[:])
	if ct != want {
		t.Fatalf("gate-level AES %x != crypto/aes %x", ct, want)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, r := range []int{0, 11, -1} {
		if _, err := Build(Config{Rounds: r}); err == nil {
			t.Errorf("rounds %d accepted", r)
		}
		if _, err := Assignments(Config{Rounds: r}, [16]byte{}, [16]byte{}); err == nil {
			t.Errorf("assignments with rounds %d accepted", r)
		}
	}
}

func TestCiphertextFromMissingOutput(t *testing.T) {
	if _, err := CiphertextFrom(map[string]bool{}); err == nil {
		t.Error("missing outputs accepted")
	}
}
