package aes

// GF(2^8) arithmetic and the AES building blocks, computed from first
// principles (no hard-coded 256-entry tables): the S-box is the affine
// transform of the multiplicative inverse modulo x^8+x^4+x^3+x+1, and the
// key schedule is standard AES-128. Everything is cross-validated against
// crypto/aes in the tests.

// gmul multiplies in GF(2^8) modulo 0x11B (Russian peasant).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// ginv returns the multiplicative inverse (0 maps to 0), via a^254.
func ginv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 = a^(2+4+8+16+32+64+128) * a^2 ... use square-and-multiply.
	result := byte(1)
	base := a
	for _, bit := range []bool{false, true, true, true, true, true, true, true} { // 254 = 0b11111110
		if bit {
			result = gmul(result, base)
		}
		base = gmul(base, base)
	}
	return result
}

// SBox returns S(x).
func SBox(x byte) byte {
	b := ginv(x)
	var out byte
	for i := 0; i < 8; i++ {
		bit := b>>uint(i)&1 ^
			b>>uint((i+4)%8)&1 ^
			b>>uint((i+5)%8)&1 ^
			b>>uint((i+6)%8)&1 ^
			b>>uint((i+7)%8)&1 ^
			0x63>>uint(i)&1
		out |= bit << uint(i)
	}
	return out
}

// NumRounds is the AES-128 round count.
const NumRounds = 10

// ExpandKey computes the AES-128 key schedule: 11 round keys of 16 bytes,
// in the standard column-major state order (byte i of a round key is
// word[i/4] byte i%4).
func ExpandKey(key [16]byte) [NumRounds + 1][16]byte {
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{SBox(t[1]), SBox(t[2]), SBox(t[3]), SBox(t[0])}
			t[0] ^= rcon
			rcon = gmul(rcon, 2)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	var rks [NumRounds + 1][16]byte
	for r := 0; r <= NumRounds; r++ {
		for c := 0; c < 4; c++ {
			copy(rks[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return rks
}

// shiftRowsIndex returns the source byte index feeding state byte i after
// ShiftRows, with the AES column-major layout (i = row + 4*col).
func shiftRowsIndex(i int) int {
	row, col := i%4, i/4
	return row + 4*((col+row)%4)
}

// EncryptReference encrypts one block with the given number of rounds
// (rounds = NumRounds is real AES-128; fewer rounds still apply the final
// round's structure on the last round). It is the byte-level golden model
// the gate-level DFG is verified against.
func EncryptReference(pt [16]byte, key [16]byte, rounds int) [16]byte {
	rks := ExpandKey(key)
	state := pt
	for i := range state {
		state[i] ^= rks[0][i]
	}
	for r := 1; r <= rounds; r++ {
		// SubBytes.
		for i := range state {
			state[i] = SBox(state[i])
		}
		// ShiftRows.
		var sh [16]byte
		for i := range sh {
			sh[i] = state[shiftRowsIndex(i)]
		}
		state = sh
		// MixColumns (skipped in the final executed round, as in AES).
		if r != rounds {
			state = mixColumns(state)
		}
		// AddRoundKey.
		for i := range state {
			state[i] ^= rks[r][i]
		}
	}
	return state
}

func mixColumns(s [16]byte) [16]byte {
	var out [16]byte
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		out[4*c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		out[4*c+1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		out[4*c+2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		out[4*c+3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
	return out
}
