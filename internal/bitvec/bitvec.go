// Package bitvec provides a dense bit-vector type used by the golden
// (reference) implementations of the workloads and by the functional CIM
// simulator. Bulk bitwise kernels operate on vectors of bits laid out one
// element per lane; Vector is the host-side equivalent of one such lane set.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length vector of bits. The zero value is an empty
// vector; use New to create one with a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector whose bit i equals b[i].
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i, true)
		}
	}
	return v
}

// FromUint64 builds an n-bit vector from the low n bits of x, bit 0 being
// the least significant bit of x. n must be at most 64.
func FromUint64(x uint64, n int) *Vector {
	if n > wordBits {
		panic(fmt.Sprintf("bitvec: FromUint64 length %d > 64", n))
	}
	v := New(n)
	if n > 0 {
		v.words[0] = x & maskLow(n)
		return v
	}
	return v
}

func maskLow(n int) uint64 {
	if n >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get reports the value of bit i.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to val.
func (v *Vector) Set(i int, val bool) {
	v.check(i)
	if val {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Uint64 returns the low 64 bits of the vector as an integer, bit 0 least
// significant.
func (v *Vector) Uint64() uint64 {
	if len(v.words) == 0 {
		return 0
	}
	return v.words[0] & maskLow(min(v.n, wordBits))
}

// Words returns how many 64-bit words back the vector.
func (v *Vector) Words() int { return len(v.words) }

// Word returns the i-th backing word (bits 64i .. 64i+63, zero-padded past
// the vector's end). Out-of-range word indices read as zero, so callers can
// iterate lane blocks without bounds bookkeeping.
func (v *Vector) Word(i int) uint64 {
	if i < 0 || i >= len(v.words) {
		return 0
	}
	return v.words[i]
}

// SetWord stores w as the i-th backing word; bits beyond the vector's
// length are dropped. It panics when the word index is outside the vector.
func (v *Vector) SetWord(i int, w uint64) {
	if i < 0 || i >= len(v.words) {
		panic(fmt.Sprintf("bitvec: word index %d out of range [0,%d)", i, len(v.words)))
	}
	v.words[i] = w
	if i == len(v.words)-1 {
		v.trim()
	}
}

// OrWith ORs w into v in place (v |= w). The vectors must have equal
// length. Unlike Or it allocates nothing, which makes it the primitive of
// choice for hot-path set unions (cluster footprints in the mapper).
func (v *Vector) OrWith(w *Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	for i := range v.words {
		v.words[i] |= w.words[i]
	}
}

// CopyFrom overwrites v with w's contents. The vectors must have equal
// length; nothing is allocated.
func (v *Vector) CopyFrom(w *Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	copy(v.words, w.words)
}

// Reset clears every bit without allocating.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// UnionOnesCount returns the popcount of a|b without materializing the
// union. The vectors must have equal length.
func UnionOnesCount(a, b *Vector) int {
	if a.n != b.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a.n, b.n))
	}
	total := 0
	for i := range a.words {
		total += bits.OnesCount64(a.words[i] | b.words[i])
	}
	return total
}

// IntersectOnesCountRange returns the popcount of a&b over the inclusive
// word-index range [lo, hi]. Callers bound the range to where both vectors
// can have bits, turning full-length scans into short ones.
func IntersectOnesCountRange(a, b *Vector, lo, hi int) int {
	total := 0
	bw := b.words[lo : hi+1]
	for i, w := range a.words[lo : hi+1] {
		total += bits.OnesCount64(w & bw[i])
	}
	return total
}

// OrWithRange ors src's words [lo, hi] (inclusive) into v. When src has no
// bits outside the range, the result equals a full OrWith.
func (v *Vector) OrWithRange(src *Vector, lo, hi int) {
	sw := src.words[lo : hi+1]
	vw := v.words[lo : hi+1]
	for i := range vw {
		vw[i] |= sw[i]
	}
}

// OrWithRangeCountNew ors src's words [lo, hi] (inclusive) into v and
// returns how many bits that newly turned on.
func (v *Vector) OrWithRangeCountNew(src *Vector, lo, hi int) int {
	total := 0
	sw := src.words[lo : hi+1]
	vw := v.words[lo : hi+1]
	for i, w := range sw {
		total += bits.OnesCount64(w &^ vw[i])
		vw[i] |= w
	}
	return total
}

// ZeroRange clears words [lo, hi] (inclusive).
func (v *Vector) ZeroRange(lo, hi int) {
	clear(v.words[lo : hi+1])
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Equal reports whether v and w have the same length and contents.
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector MSB-first, e.g. "0b1010" for a 4-bit vector
// with bits 1 and 3 set.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.WriteString("0b")
	for i := v.n - 1; i >= 0; i-- {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// binaryOp applies f word-wise to a and b, which must have equal length.
func binaryOp(a, b *Vector, f func(x, y uint64) uint64) *Vector {
	if a.n != b.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a.n, b.n))
	}
	out := New(a.n)
	for i := range a.words {
		out.words[i] = f(a.words[i], b.words[i])
	}
	out.trim()
	return out
}

func (v *Vector) trim() {
	if len(v.words) == 0 {
		return
	}
	rem := v.n % wordBits
	if rem != 0 {
		v.words[len(v.words)-1] &= maskLow(rem)
	}
}

// And returns a & b element-wise.
func And(a, b *Vector) *Vector { return binaryOp(a, b, func(x, y uint64) uint64 { return x & y }) }

// Or returns a | b element-wise.
func Or(a, b *Vector) *Vector { return binaryOp(a, b, func(x, y uint64) uint64 { return x | y }) }

// Xor returns a ^ b element-wise.
func Xor(a, b *Vector) *Vector { return binaryOp(a, b, func(x, y uint64) uint64 { return x ^ y }) }

// Not returns ^a element-wise.
func Not(a *Vector) *Vector {
	out := New(a.n)
	for i := range a.words {
		out.words[i] = ^a.words[i]
	}
	out.trim()
	return out
}

// Nand returns ^(a & b) element-wise.
func Nand(a, b *Vector) *Vector {
	return binaryOp(a, b, func(x, y uint64) uint64 { return ^(x & y) })
}

// Nor returns ^(a | b) element-wise.
func Nor(a, b *Vector) *Vector {
	return binaryOp(a, b, func(x, y uint64) uint64 { return ^(x | y) })
}

// Xnor returns ^(a ^ b) element-wise.
func Xnor(a, b *Vector) *Vector {
	return binaryOp(a, b, func(x, y uint64) uint64 { return ^(x ^ y) })
}

// AndN folds And over one or more vectors.
func AndN(vs ...*Vector) *Vector { return foldN(And, vs) }

// OrN folds Or over one or more vectors.
func OrN(vs ...*Vector) *Vector { return foldN(Or, vs) }

// XorN folds Xor over one or more vectors.
func XorN(vs ...*Vector) *Vector { return foldN(Xor, vs) }

func foldN(f func(a, b *Vector) *Vector, vs []*Vector) *Vector {
	if len(vs) == 0 {
		panic("bitvec: fold over zero vectors")
	}
	acc := vs[0].Clone()
	for _, v := range vs[1:] {
		acc = f(acc, v)
	}
	return acc
}
