package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d, want 0", v.OnesCount())
	}
}

func TestSetGet(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.OnesCount(); got != len(idx) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	v.Set(63, false)
	if v.Get(63) {
		t.Error("bit 63 still set after clearing")
	}
}

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []struct {
		x uint64
		n int
	}{
		{0, 8}, {0xAB, 8}, {0xFFFF, 16}, {1 << 63, 64}, {0xDEADBEEF, 32},
	}
	for _, c := range cases {
		v := FromUint64(c.x, c.n)
		want := c.x & maskLow(c.n)
		if got := v.Uint64(); got != want {
			t.Errorf("FromUint64(%#x,%d).Uint64() = %#x, want %#x", c.x, c.n, got, want)
		}
	}
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	if v.Uint64() != 0b1101 {
		t.Fatalf("FromBools = %#b, want 0b1101", v.Uint64())
	}
	if v.String() != "0b1101" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestBinaryOps(t *testing.T) {
	a := FromUint64(0b1100, 4)
	b := FromUint64(0b1010, 4)
	cases := []struct {
		name string
		f    func(a, b *Vector) *Vector
		want uint64
	}{
		{"And", And, 0b1000},
		{"Or", Or, 0b1110},
		{"Xor", Xor, 0b0110},
		{"Nand", Nand, 0b0111},
		{"Nor", Nor, 0b0001},
		{"Xnor", Xnor, 0b1001},
	}
	for _, c := range cases {
		if got := c.f(a, b).Uint64(); got != c.want {
			t.Errorf("%s = %#b, want %#b", c.name, got, c.want)
		}
	}
	if got := Not(a).Uint64(); got != 0b0011 {
		t.Errorf("Not = %#b, want 0b0011", got)
	}
}

func TestNotTrimsPadding(t *testing.T) {
	a := New(5)
	n := Not(a)
	if got := n.OnesCount(); got != 5 {
		t.Fatalf("Not(zero 5-bit).OnesCount = %d, want 5 (padding must stay clear)", got)
	}
}

func TestFoldN(t *testing.T) {
	a := FromUint64(0b111, 3)
	b := FromUint64(0b101, 3)
	c := FromUint64(0b100, 3)
	if got := AndN(a, b, c).Uint64(); got != 0b100 {
		t.Errorf("AndN = %#b, want 0b100", got)
	}
	if got := OrN(a, b, c).Uint64(); got != 0b111 {
		t.Errorf("OrN = %#b, want 0b111", got)
	}
	if got := XorN(a, b, c).Uint64(); got != 0b110 {
		t.Errorf("XorN = %#b, want 0b110", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	And(New(3), New(4))
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get out of range did not panic")
		}
	}()
	New(3).Get(3)
}

func TestEqualAndClone(t *testing.T) {
	a := FromUint64(0x5A, 8)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(0, !b.Get(0))
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(9)) {
		t.Fatal("vectors of different length reported equal")
	}
}

// Property: De Morgan — NOT(a AND b) == NOT(a) OR NOT(b).
func TestQuickDeMorgan(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := FromUint64(x, 64), FromUint64(y, 64)
		return Not(And(a, b)).Equal(Or(Not(a), Not(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR is its own inverse — (a XOR b) XOR b == a.
func TestQuickXorInvolution(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := FromUint64(x, 64), FromUint64(y, 64)
		return Xor(Xor(a, b), b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fold equivalences hold on random multi-word vectors.
func TestQuickFoldMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		vs := make([]*Vector, 2+rng.Intn(4))
		for i := range vs {
			vs[i] = New(n)
			for j := 0; j < n; j++ {
				vs[i].Set(j, rng.Intn(2) == 1)
			}
		}
		and, or, xor := AndN(vs...), OrN(vs...), XorN(vs...)
		for j := 0; j < n; j++ {
			wa, wo, wx := true, false, false
			for _, v := range vs {
				wa = wa && v.Get(j)
				wo = wo || v.Get(j)
				wx = wx != v.Get(j)
			}
			if and.Get(j) != wa || or.Get(j) != wo || xor.Get(j) != wx {
				t.Fatalf("trial %d bit %d: fold mismatch", trial, j)
			}
		}
	}
}

// TestWordAccess covers the word-granular view used by the SWAR
// evaluator: Word/SetWord round-trip, out-of-range reads return zero, and
// SetWord on the final partial word drops bits past the vector length.
func TestWordAccess(t *testing.T) {
	v := New(70) // 2 words, final word 6 bits wide
	if v.Words() != 2 {
		t.Fatalf("Words() = %d, want 2", v.Words())
	}
	const pattern = uint64(0xDEADBEEFDEADBEEF)
	v.SetWord(0, pattern)
	v.SetWord(1, ^uint64(0)) // bits 6..63 must be trimmed
	if got := v.Word(1); got != 0x3F {
		t.Fatalf("partial word = %#x, want 0x3f", got)
	}
	if v.Word(0) != pattern {
		t.Fatal("full word round trip failed")
	}
	if v.Word(5) != 0 {
		t.Fatal("out-of-range Word not zero")
	}
	for i := 0; i < 70; i++ {
		want := i < 64 && pattern>>uint(i)&1 == 1 || i >= 64
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v after SetWord, want %v", i, v.Get(i), want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetWord out of range did not panic")
		}
	}()
	v.SetWord(2, 1)
}
