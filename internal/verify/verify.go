// Package verify statically analyzes CIM instruction programs: it proves,
// without executing a single lane, every property the interpreting machines
// (sim.Machine, sim.LaneMachine) and the pre-decoder (sim.Predecode)
// enforce dynamically, plus liveness diagnostics no interpreter can give.
//
// The analysis is an abstract interpretation of the program over a
// two-point definedness lattice (undefined ⊑ defined) per cell and per
// row-buffer bit — the same resolution sim.Predecode performs while
// decoding, kept deliberately independent of it so the two implementations
// check each other (see the differential fuzz in internal/sim). Because
// programs are lane-uniform and branch-free, the lattice is exact, not an
// approximation: a read is def-before-use for every input iff it is
// def-before-use abstractly.
//
// Properties proved (error severity — the program is rejected exactly when
// the interpreter's strict mode would fail it, with identical text):
//
//   - structural instruction invariants (isa.Instruction.Validate), which
//     also discharge merge legality: a merged scouting read activates one
//     shared row set across its column group by construction (single Rows
//     list), carries exactly one sense op per column (op-mux consistency),
//     and unique sorted column/row lists make intra-instruction hazards
//     (two accesses to one cell or buffer bit in the same step) impossible;
//   - array/column/row bounds against the fabric geometry;
//   - def-before-use: every cell read, row-buffer write-back source, and
//     NOT target is dominated by a defining write/read, with shifts moving
//     definedness and killing bits shifted in from outside;
//   - host-input binding order: the first-use order the verifier observes
//     is the canonical slot order (isa.Program.Bindings), exposed for
//     callers to cross-check against sim.Predecode's slot table.
//
// Diagnostics beyond the interpreter (warning/info severity):
//
//   - dead stores: a row-buffer bit loaded or computed, then overwritten or
//     shifted out before anything consumed it;
//   - write-after-write shadows: a cell overwritten before any read saw the
//     first value;
//   - unused operands: a host input loaded into the array but never read by
//     any instruction;
//   - row-buffer liveness: values still sitting unconsumed in a row buffer
//     when the program ends (computed but never written back);
//   - multi-row activations beyond a technology's limit (Options.MaxRows).
package verify

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// Severity grades a finding.
type Severity int

// Severities, most severe first.
const (
	SevError   Severity = iota // the interpreter's strict mode would fail
	SevWarning                 // legal but almost certainly a codegen bug
	SevInfo                    // worth a look, often benign
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic codes. Stable identifiers for filtering and tests.
const (
	CodeBadTarget     = "bad-target"      // degenerate fabric geometry
	CodeInvalidInstr  = "invalid-instr"   // structural invariant broken
	CodeBounds        = "bounds"          // coordinate outside the fabric
	CodeUndefRead     = "undef-read"      // read of a never-written cell
	CodeUndefBufWrite = "undef-buf-write" // write-back from an undefined buffer bit
	CodeUndefNot      = "undef-not"       // NOT of an undefined buffer bit
	CodeUnsupportedOp = "unsupported-op"  // scouting read with a non-foldable op
	CodeDeadStore     = "dead-store"      // buffer value produced but never consumed
	CodeWAWShadow     = "waw-shadow"      // cell overwritten before any read
	CodeUnusedInput   = "unused-input"    // host input never read back
	CodeBufLive       = "buf-liveness"    // buffer value still live at program end
	CodeRowLimit      = "row-limit"       // activation wider than Options.MaxRows
)

// Finding is one diagnostic, anchored to an instruction index (-1 for
// program-level findings).
type Finding struct {
	Instr    int
	Severity Severity
	Code     string
	Msg      string
}

// String renders "instr 3: error[undef-read]: read of undefined cell ...".
func (f Finding) String() string {
	if f.Instr < 0 {
		return fmt.Sprintf("program: %v[%s]: %s", f.Severity, f.Code, f.Msg)
	}
	return fmt.Sprintf("instr %d: %v[%s]: %s", f.Instr, f.Severity, f.Code, f.Msg)
}

// Report is the result of verifying one program.
type Report struct {
	Findings []Finding

	prog     isa.Program
	bindings []string
}

// OK reports whether the program carries no error-severity findings — the
// static equivalent of "the interpreter runs it strict-clean" (given every
// host input is bound; binding completeness is the one property only the
// caller's input map can decide).
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == SevError {
			return false
		}
	}
	return true
}

// Clean reports whether the program carries no error or warning findings.
func (r *Report) Clean() bool {
	for _, f := range r.Findings {
		if f.Severity <= SevWarning {
			return false
		}
	}
	return true
}

// Err returns the first error-severity finding formatted exactly as
// sim.Predecode (and the interpreting machines) would have failed, or nil.
func (r *Report) Err() error {
	for _, f := range r.Findings {
		if f.Severity != SevError {
			continue
		}
		if f.Instr < 0 {
			return errors.New(f.Msg)
		}
		return fmt.Errorf("sim: instruction %d (%s): %s", f.Instr, r.prog[f.Instr], f.Msg)
	}
	return nil
}

// Bindings returns the host-input names in the first-use order the abstract
// interpretation observed — by construction the canonical slot order of
// isa.Program.Bindings and sim.Predecode.
func (r *Report) Bindings() []string { return append([]string(nil), r.bindings...) }

// Instruction returns the instruction a finding anchors to, or a zero
// instruction for program-level findings.
func (r *Report) Instruction(f Finding) isa.Instruction {
	if f.Instr < 0 || f.Instr >= len(r.prog) {
		return isa.Instruction{}
	}
	return r.prog[f.Instr]
}

// Options tunes the optional checks.
type Options struct {
	// MaxRows, when positive, warns on scouting reads activating more
	// simultaneous rows than the technology supports (device.Params.MaxRows).
	MaxRows int
}

// Program verifies p against the fabric geometry t with default options.
func Program(p isa.Program, t layout.Target) *Report {
	return ProgramOpts(p, t, Options{})
}

// ProgramOpts verifies p against t.
func ProgramOpts(p isa.Program, t layout.Target, opts Options) *Report {
	rep := &Report{prog: p}
	if err := t.Validate(); err != nil {
		rep.add(-1, SevError, CodeBadTarget, err.Error())
		return rep
	}
	w := newWalker(p, t, opts, rep)
	for i, in := range p {
		w.step(i, in)
	}
	w.finish()
	return rep
}

func (r *Report) add(instr int, sev Severity, code, msg string) {
	r.Findings = append(r.Findings, Finding{Instr: instr, Severity: sev, Code: code, Msg: msg})
}

// walker is the abstract machine. Cell and buffer state is flat, indexed by
// the program's clamped resource space exactly as sim.Predecode lays its
// definedness arrays out.
type walker struct {
	rep  *Report
	t    layout.Target
	sp   isa.Space
	opts Options

	bufCols int // buffer words per array = t.Cols, full fabric width

	// Definedness lattice (the property Predecode resolves).
	cellDef []bool
	bufDef  []bool

	// Liveness shadow state (the diagnostics Predecode cannot give).
	cellWriter []int32 // last writing instruction, -1 = never written
	cellRead   []bool  // value read since that write
	cellSlot   []int32 // host-input slot the value came from, -1 = computed
	bufProd    []int32 // producing instruction of the buffer value, -1 = none
	bufUsed    []bool  // value consumed since produced

	slots     map[string]int
	slotFirst []int32 // first host write per slot
	slotUsed  []bool
}

func newWalker(p isa.Program, t layout.Target, opts Options, rep *Report) *walker {
	sp := p.ResourceSpace().Clamp(t.Arrays, t.Cols, t.Rows)
	numCells := sp.Arrays * sp.BufCols * sp.Rows
	numBuf := sp.Arrays * t.Cols
	w := &walker{
		rep: rep, t: t, sp: sp, opts: opts,
		bufCols:    t.Cols,
		cellDef:    make([]bool, numCells),
		bufDef:     make([]bool, numBuf),
		cellWriter: make([]int32, numCells),
		cellRead:   make([]bool, numCells),
		cellSlot:   make([]int32, numCells),
		bufProd:    make([]int32, numBuf),
		bufUsed:    make([]bool, numBuf),
		slots:      make(map[string]int),
	}
	for i := range w.cellWriter {
		w.cellWriter[i] = -1
		w.cellSlot[i] = -1
	}
	for i := range w.bufProd {
		w.bufProd[i] = -1
	}
	return w
}

// cellOff mirrors sim.Predecode's flat layout: rows contiguous per column.
func (w *walker) cellOff(a, c, r int) int { return (a*w.sp.BufCols+c)*w.sp.Rows + r }
func (w *walker) bufOff(a, c int) int     { return a*w.bufCols + c }

// checkPlace reproduces the machines' bounds messages verbatim.
func (w *walker) checkPlace(array, col, row int) (string, bool) {
	if array < 0 || array >= w.t.Arrays {
		return fmt.Sprintf("sim: array %d outside target", array), false
	}
	if col < 0 || col >= w.t.Cols {
		return fmt.Sprintf("sim: column %d outside target", col), false
	}
	if row < 0 || row >= w.t.Rows {
		return fmt.Sprintf("sim: row %d outside target", row), false
	}
	return "", true
}

func (w *walker) errf(i int, code, format string, args ...any) {
	w.rep.add(i, SevError, code, fmt.Sprintf(format, args...))
}

// step interprets one instruction abstractly. On an error it records the
// finding and recovers by assuming the intended effect happened (for
// coordinates inside the fabric), so one bug does not cascade into a wall
// of follow-on findings.
func (w *walker) step(i int, in isa.Instruction) {
	if err := in.Validate(); err != nil {
		// A structurally broken instruction cannot be interpreted; skip its
		// effects entirely. Predecode stops here with the same message.
		w.errf(i, CodeInvalidInstr, "%s", err.Error())
		return
	}
	switch in.Kind {
	case isa.KindRead:
		w.stepRead(i, in)
	case isa.KindWrite:
		w.stepWrite(i, in)
	case isa.KindShift:
		w.stepShift(i, in)
	case isa.KindNot:
		w.stepNot(i, in)
	}
}

// stepRead mirrors sim.Predecode.decodeRead: array bound, then every row
// bound, then per column (in order) the column bound, the per-row
// definedness of the sensed cells, and the fold legality of the op.
func (w *walker) stepRead(i int, in isa.Instruction) {
	a := in.Array
	if a >= w.t.Arrays {
		w.errf(i, CodeBounds, "array %d outside target", a)
		return
	}
	rowsOK := true
	for _, r := range in.Rows {
		if msg, ok := w.checkPlace(a, 0, r); !ok {
			w.errf(i, CodeBounds, "%s", msg)
			rowsOK = false
		}
	}
	cim := in.IsCIMRead()
	if cim && w.opts.MaxRows > 0 && len(in.Rows) > w.opts.MaxRows {
		w.rep.add(i, SevWarning, CodeRowLimit, fmt.Sprintf(
			"scouting read activates %d rows; technology limit is %d", len(in.Rows), w.opts.MaxRows))
	}
	for ci, c := range in.Cols {
		if msg, ok := w.checkPlace(a, c, in.Rows[0]); !ok {
			w.errf(i, CodeBounds, "%s", msg)
			continue
		}
		if rowsOK {
			if cim {
				for _, r := range in.Rows {
					if !w.cellDef[w.cellOff(a, c, r)] {
						w.errf(i, CodeUndefRead, "read of undefined cell [%d][%d][%d]", a, c, r)
					}
				}
				op := in.Ops[ci]
				if !foldable(op) {
					w.errf(i, CodeUnsupportedOp, "unsupported CIM op %v", op)
				}
			} else if !w.cellDef[w.cellOff(a, c, in.Rows[0])] {
				w.errf(i, CodeUndefRead, "read of undefined cell [%d][%d][%d]", a, c, in.Rows[0])
			}
			// Effects: the sensed cells are consumed...
			for _, r := range in.Rows {
				off := w.cellOff(a, c, r)
				w.cellDef[off] = true // recovery: assume the read's intent
				w.cellRead[off] = true
				if s := w.cellSlot[off]; s >= 0 {
					w.slotUsed[s] = true
				}
				if !cim {
					break // a plain read senses only Rows[0]
				}
			}
		}
		// ...and the result lands in the row buffer.
		w.produceBuf(i, a, c)
	}
}

// foldable reports whether the executor can fold a scouting-read op — the
// exact set sim's foldKind accepts. Instruction.Validate already restricts
// ops to IsSense, which is the same six; the explicit check keeps the
// verifier honest if the vocabularies ever diverge.
func foldable(op logic.Op) bool {
	switch op {
	case logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor:
		return true
	}
	return false
}

// produceBuf records a new value landing in buffer bit (a,c), reporting the
// previous value as a dead store if nothing ever consumed it.
func (w *walker) produceBuf(i, a, c int) {
	off := w.bufOff(a, c)
	if p := w.bufProd[off]; p >= 0 && !w.bufUsed[off] {
		w.rep.add(int(p), SevWarning, CodeDeadStore, fmt.Sprintf(
			"row-buffer bit [%d][%d] is loaded but never used before instruction %d overwrites it", a, c, i))
	}
	w.bufDef[off] = true
	w.bufProd[off] = int32(i)
	w.bufUsed[off] = false
}

// consumeBuf marks buffer bit (a,c) as used.
func (w *walker) consumeBuf(a, c int) { w.bufUsed[w.bufOff(a, c)] = true }

// stepWrite mirrors sim.Predecode.decodeWrite.
func (w *walker) stepWrite(i int, in isa.Instruction) {
	a, row := in.Array, in.Rows[0]
	if a >= w.t.Arrays {
		w.errf(i, CodeBounds, "array %d outside target", a)
		return
	}
	src := a
	if in.HasSrcArray {
		src = in.SrcArray
		if src >= w.t.Arrays {
			w.errf(i, CodeBounds, "source array %d outside target", src)
			return
		}
	}
	host := in.IsHostWrite()
	for ci, c := range in.Cols {
		if msg, ok := w.checkPlace(a, c, row); !ok {
			w.errf(i, CodeBounds, "%s", msg)
			continue
		}
		slot := int32(-1)
		if host {
			slot = int32(w.slotFor(i, in.Bindings[ci]))
		} else {
			if !w.bufDef[w.bufOff(src, c)] {
				w.errf(i, CodeUndefBufWrite, "write from undefined row-buffer bit [%d][%d]", src, c)
				w.bufDef[w.bufOff(src, c)] = true // recovery
			}
			w.consumeBuf(src, c)
		}
		off := w.cellOff(a, c, row)
		if prev := w.cellWriter[off]; prev >= 0 && !w.cellRead[off] {
			w.rep.add(int(prev), SevWarning, CodeWAWShadow, fmt.Sprintf(
				"cell [%d][%d][%d] is overwritten by instruction %d before any read (write-after-write shadow)",
				a, c, row, i))
		}
		w.cellDef[off] = true
		w.cellWriter[off] = int32(i)
		w.cellRead[off] = false
		w.cellSlot[off] = slot
	}
}

func (w *walker) slotFor(instr int, name string) int {
	if s, ok := w.slots[name]; ok {
		return s
	}
	s := len(w.rep.bindings)
	w.slots[name] = s
	w.rep.bindings = append(w.rep.bindings, name)
	w.slotFirst = append(w.slotFirst, int32(instr))
	w.slotUsed = append(w.slotUsed, false)
	return s
}

// stepShift mirrors sim.Predecode.decodeShift: definedness (and here, the
// liveness shadow state) moves with the data; bits shifted in from outside
// the buffer are undefined again, and live unconsumed bits pushed off the
// edge die as dead stores.
func (w *walker) stepShift(i int, in isa.Instruction) {
	a := in.Array
	if a >= w.t.Arrays {
		w.errf(i, CodeBounds, "array %d outside target", a)
		return
	}
	d := in.ShiftBy
	if !in.Right {
		d = -d
	}
	n := w.bufCols
	base := a * n
	oldDef := append([]bool(nil), w.bufDef[base:base+n]...)
	oldProd := append([]int32(nil), w.bufProd[base:base+n]...)
	oldUsed := append([]bool(nil), w.bufUsed[base:base+n]...)
	// Live unconsumed values whose destination falls outside the buffer.
	for c := 0; c < n; c++ {
		if dst := c + d; dst < 0 || dst >= n {
			if p := oldProd[c]; p >= 0 && !oldUsed[c] {
				w.rep.add(int(p), SevWarning, CodeDeadStore, fmt.Sprintf(
					"row-buffer bit [%d][%d] is loaded but never used before instruction %d shifts it out", a, c, i))
			}
		}
	}
	for c := 0; c < n; c++ {
		if s := c - d; s >= 0 && s < n {
			w.bufDef[base+c] = oldDef[s]
			w.bufProd[base+c] = oldProd[s]
			w.bufUsed[base+c] = oldUsed[s]
		} else {
			w.bufDef[base+c] = false
			w.bufProd[base+c] = -1
			w.bufUsed[base+c] = false
		}
	}
}

// stepNot mirrors sim.Predecode.decodeNot. NOT both consumes the old value
// and produces a new one in place.
func (w *walker) stepNot(i int, in isa.Instruction) {
	a := in.Array
	if a >= w.t.Arrays {
		w.errf(i, CodeBounds, "array %d outside target", a)
		return
	}
	for _, c := range in.Cols {
		if c >= w.bufCols {
			w.errf(i, CodeBounds, "column %d outside target", c)
			continue
		}
		if !w.bufDef[w.bufOff(a, c)] {
			w.errf(i, CodeUndefNot, "NOT of undefined row-buffer bit [%d][%d]", a, c)
		}
		w.consumeBuf(a, c)
		w.produceBuf(i, a, c)
	}
}

// finish emits the end-of-program diagnostics: unused host inputs and
// buffer values that never made it back into a cell. Per-bit events
// aggregate per producing instruction so one forgotten write-back reads as
// one finding, not one per column.
func (w *walker) finish() {
	for s, used := range w.slotUsed {
		if !used {
			w.rep.add(int(w.slotFirst[s]), SevWarning, CodeUnusedInput, fmt.Sprintf(
				"host input %q is loaded but never read by any instruction", w.rep.bindings[s]))
		}
	}
	live := make(map[int32][]string)
	for a := 0; a < w.sp.Arrays; a++ {
		for c := 0; c < w.bufCols; c++ {
			off := w.bufOff(a, c)
			if p := w.bufProd[off]; p >= 0 && !w.bufUsed[off] {
				live[p] = append(live[p], fmt.Sprintf("[%d][%d]", a, c))
			}
		}
	}
	prods := make([]int32, 0, len(live))
	for p := range live { //sherlock:allow rangemap (sorted below)
		prods = append(prods, p)
	}
	sort.Slice(prods, func(i, j int) bool { return prods[i] < prods[j] })
	for _, p := range prods {
		w.rep.add(int(p), SevInfo, CodeBufLive, fmt.Sprintf(
			"row-buffer bit(s) %s hold unconsumed values at program end", strings.Join(live[p], ",")))
	}
}
