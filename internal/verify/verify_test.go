package verify_test

import (
	"strings"
	"testing"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/sim"
	"sherlock/internal/verify"
)

func parse(t *testing.T, text string) isa.Program {
	t.Helper()
	p, err := isa.ParseProgram(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// findings returns the report's findings with the given code.
func findings(r *verify.Report, code string) []verify.Finding {
	var out []verify.Finding
	for _, f := range r.Findings {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

// TestErrorTextMatchesPredecode pins the contract the differential fuzz in
// internal/sim checks at scale: for rejected programs, Report.Err() is the
// byte-identical error sim.Predecode raises.
func TestErrorTextMatchesPredecode(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 8, Cols: 4}
	cases := []struct {
		name string
		prog isa.Program
	}{
		{"undefined read", parse(t, "Read [0][0][0]")},
		{"bad array", parse(t, "Write [5][0][0] <x>")},
		{"bad source array", parse(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [1][0][0] @[9]")},
		{"bad row", parse(t, "Read [0][0][0,99] [AND]")},
		{"bad column", parse(t, "Write [0][99][0] <x>")},
		{"bad not column", parse(t, "Write [0][0][0] <x>\nRead [0][0][0]\nNot [0][99]")},
		{"shift drops bit", parse(t, "Write [0][3][0] <x>\nRead [0][3][0]\nShift [0] R[2]\nWrite [0][3][1]")},
		{"undefined buffer write", parse(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [1][0][0] @[0]\nNot [1][1]")},
		{"undefined not", parse(t, "Not [0][1]")},
		{"undefined cim operand", parse(t, "Write [0][0][0] <x>\nRead [0][0][0,1] [AND]")},
		{"structurally invalid", isa.Program{{Kind: isa.KindRead, Array: 0}}},
		{"plain read with ops", isa.Program{{Kind: isa.KindRead, Array: 0, Cols: []int{0}, Rows: []int{0},
			Ops: nil}, {Kind: isa.KindShift, Array: 0}}},
		{"hostile coordinate", isa.Program{{Kind: isa.KindWrite, Array: 0, Cols: []int{1 << 30},
			Rows: []int{0}, Bindings: []string{"x"}}}},
		{"clean", parse(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := verify.Program(tc.prog, target)
			_, errD := sim.Predecode(tc.prog, target)
			errV := rep.Err()
			if (errD == nil) != (errV == nil) {
				t.Fatalf("predecode err %v, verifier err %v", errD, errV)
			}
			if errD != nil && errD.Error() != errV.Error() {
				t.Fatalf("error text mismatch\npredecode: %v\nverifier:  %v", errD, errV)
			}
			if (errV == nil) != rep.OK() {
				t.Fatalf("OK() = %v with Err() = %v", rep.OK(), errV)
			}
		})
	}
}

// TestBadTargetMatchesPredecode pins the degenerate-geometry path.
func TestBadTargetMatchesPredecode(t *testing.T) {
	prog := parse(t, "Write [0][0][0] <x>")
	bad := layout.Target{Arrays: 0, Rows: 1, Cols: 0}
	rep := verify.Program(prog, bad)
	_, errD := sim.Predecode(prog, bad)
	if errD == nil || rep.Err() == nil || errD.Error() != rep.Err().Error() {
		t.Fatalf("predecode: %v, verifier: %v", errD, rep.Err())
	}
	if len(findings(rep, verify.CodeBadTarget)) != 1 {
		t.Fatalf("want one bad-target finding, got %v", rep.Findings)
	}
}

func TestDeadStoreOnOverwrite(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	// Instruction 1 loads buffer bit [0][0]; instruction 2 overwrites it
	// before anything consumed it.
	prog := parse(t, `
Write [0][0][0] <x>
Read [0][0][0]
Read [0][0][0]
Write [0][0][1]
`)
	rep := verify.Program(prog, target)
	if !rep.OK() {
		t.Fatalf("unexpected errors: %v", rep.Findings)
	}
	ds := findings(rep, verify.CodeDeadStore)
	if len(ds) != 1 || ds[0].Instr != 1 || !strings.Contains(ds[0].Msg, "instruction 2 overwrites") {
		t.Fatalf("dead store findings = %v", ds)
	}
}

func TestDeadStoreOnShiftOut(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, `
Write [0][3][0] <x>
Read [0][3][0]
Shift [0] R[2]
`)
	rep := verify.Program(prog, target)
	if !rep.OK() {
		t.Fatalf("unexpected errors: %v", rep.Findings)
	}
	ds := findings(rep, verify.CodeDeadStore)
	if len(ds) != 1 || ds[0].Instr != 1 || !strings.Contains(ds[0].Msg, "shifts it out") {
		t.Fatalf("dead store findings = %v", ds)
	}
}

func TestWriteAfterWriteShadow(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, `
Write [0][0][0] <x>
Write [0][0][0] <y>
Read [0][0][0]
Write [0][0][1]
`)
	rep := verify.Program(prog, target)
	if !rep.OK() {
		t.Fatalf("unexpected errors: %v", rep.Findings)
	}
	waw := findings(rep, verify.CodeWAWShadow)
	if len(waw) != 1 || waw[0].Instr != 0 || !strings.Contains(waw[0].Msg, "instruction 1") {
		t.Fatalf("waw findings = %v", waw)
	}
	// The shadowed input never reached a read either.
	unused := findings(rep, verify.CodeUnusedInput)
	if len(unused) != 1 || !strings.Contains(unused[0].Msg, `"x"`) {
		t.Fatalf("unused-input findings = %v", unused)
	}
}

func TestRecycledRowIsNotAShadow(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	// The first value IS read before the overwrite — the row-recycling
	// pattern the mapper emits must stay warning-free.
	prog := parse(t, `
Write [0][0][0] <x>
Read [0][0][0]
Write [0][0][1]
Write [0][0][0] <y>
Read [0][0][0]
Write [0][0][2]
`)
	rep := verify.Program(prog, target)
	if ws := findings(rep, verify.CodeWAWShadow); len(ws) != 0 {
		t.Fatalf("recycled row flagged as shadow: %v", ws)
	}
	if !rep.Clean() {
		t.Fatalf("expected clean report, got %v", rep.Findings)
	}
}

func TestUnusedInput(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, "Write [0][0,1][0] <x,y>\nRead [0][0][0]\nWrite [0][0][1]")
	rep := verify.Program(prog, target)
	unused := findings(rep, verify.CodeUnusedInput)
	if len(unused) != 1 || unused[0].Instr != 0 || !strings.Contains(unused[0].Msg, `"y"`) {
		t.Fatalf("unused-input findings = %v", unused)
	}
}

func TestBufferLivenessAtEnd(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, "Write [0][0][0] <x>\nRead [0][0][0]")
	rep := verify.Program(prog, target)
	live := findings(rep, verify.CodeBufLive)
	if len(live) != 1 || live[0].Instr != 1 || live[0].Severity != verify.SevInfo {
		t.Fatalf("buf-liveness findings = %v", live)
	}
	if !rep.Clean() { // info does not spoil Clean
		t.Fatalf("info finding spoiled Clean: %v", rep.Findings)
	}
}

func TestRowActivationLimit(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, `
Write [0][0][0] <a>
Write [0][0][1] <b>
Write [0][0][2] <c>
Read [0][0][0,1,2] [AND]
Write [0][0][3]
`)
	rep := verify.ProgramOpts(prog, target, verify.Options{MaxRows: 2})
	rl := findings(rep, verify.CodeRowLimit)
	if len(rl) != 1 || rl[0].Instr != 3 || !strings.Contains(rl[0].Msg, "activates 3 rows") {
		t.Fatalf("row-limit findings = %v", rl)
	}
	if rep2 := verify.ProgramOpts(prog, target, verify.Options{MaxRows: 3}); len(findings(rep2, verify.CodeRowLimit)) != 0 {
		t.Fatalf("limit 3 should not warn")
	}
}

// TestBindingsFirstUseOrder pins the binding-order contract against both
// the canonical isa order and sim.Predecode's slot table.
func TestBindingsFirstUseOrder(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, `
Write [0][0,1][0] <b,a>
Write [0][0,1][1] <a,c>
Write [0][2][0] <b>
`)
	rep := verify.Program(prog, target)
	want := prog.Bindings()
	got := rep.Bindings()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("verifier bindings %v, isa bindings %v", got, want)
	}
	ex, err := sim.Predecode(prog, target)
	if err != nil {
		t.Fatal(err)
	}
	if slots := ex.InputNames(); strings.Join(slots, ",") != strings.Join(want, ",") {
		t.Fatalf("predecode slots %v, isa bindings %v", slots, want)
	}
}

func TestFindingString(t *testing.T) {
	f := verify.Finding{Instr: 3, Severity: verify.SevError, Code: verify.CodeUndefRead, Msg: "read of undefined cell [0][1][2]"}
	if got := f.String(); got != "instr 3: error[undef-read]: read of undefined cell [0][1][2]" {
		t.Fatalf("String() = %q", got)
	}
	pf := verify.Finding{Instr: -1, Severity: verify.SevWarning, Code: verify.CodeUnusedInput, Msg: "m"}
	if got := pf.String(); got != "program: warning[unused-input]: m" {
		t.Fatalf("String() = %q", got)
	}
}

// TestRecoveryLimitsCascade checks that one undefined read does not drown
// the report: the verifier assumes the read's intent and keeps going, so a
// second, independent bug is still reported.
func TestRecoveryLimitsCascade(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 8, Cols: 4}
	prog := parse(t, `
Read [0][0][0]
Write [0][0][1]
Read [0][1][0]
Write [0][1][1]
`)
	rep := verify.Program(prog, target)
	ur := findings(rep, verify.CodeUndefRead)
	if len(ur) != 2 || ur[0].Instr != 0 || ur[1].Instr != 2 {
		t.Fatalf("undef-read findings = %v", ur)
	}
}
