// Translation validation: prove, per compile, that an emitted isa.Program
// computes the same Boolean function as the kernel DFG it was scheduled
// from. The proof is a symbolic execution of the program over the domain of
// AIG literals — the same abstract walk verify.Program performs over the
// definedness lattice, with every cell and row-buffer bit carrying the
// literal of the Boolean function it holds instead of a single defined bit:
//
//   - a host write binds the cell to the kernel input's literal;
//   - a scouting read folds the activated rows' literals through the
//     canonical And/Or/Xor constructors (inverted senses complement);
//   - copies, cross-array writes and shifts relabel literals (shifted-in
//     bits become undefined again);
//   - NOT complements in place;
//   - the readout cell of each kernel output yields the program-side
//     literal.
//
// Both the program and aig.LiftDFG of the kernel build into one shared
// graph, so a faithful compile discharges by literal equality (the mapper
// reorders fold operands, which the canonical sorted folds absorb); anything
// structurally deeper falls to aig.CheckOutputs' cosimulation, normalized
// rebuild and exhaustive-table stages. A refutation carries a concrete
// counterexample assignment; an unproven verdict is never accepted silently.

package verify

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sherlock/internal/aig"
	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// OutputAt names one kernel output and the cell its final value is read
// from — the readout contract a program does not carry on its own. The
// facade derives these from mapping.Result; golden programs keep them in
// sidecar ".outputs" manifests (see FormatOutputs/ParseOutputs).
type OutputAt struct {
	Name  string
	Place layout.Place
}

// EquivOptions bounds the equivalence decision procedures (see
// aig.EquivOptions; zero values select the defaults there).
type EquivOptions struct {
	MaxSupport int   // exhaustive-proof joint-support cap (default 16)
	SimWords   int   // 64-lane cosimulation words (default 8)
	Seed       int64 // cosimulation seed (default 1)
}

// Mismatch is a concrete refutation of program/kernel equivalence: an input
// assignment on which one output differs.
type Mismatch struct {
	Output     string
	Assignment map[string]bool // full kernel-input assignment
	Want       bool            // kernel value at the assignment
	Got        bool            // program value at the assignment
}

// AssignmentString renders the assignment sorted by input name, "a=1 b=0
// ...", truncated after max entries (0 = everything).
func (m *Mismatch) AssignmentString(max int) string {
	names := make([]string, 0, len(m.Assignment))
	for name := range m.Assignment { //sherlock:allow rangemap (sorted below)
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, name := range names {
		if max > 0 && i == max {
			fmt.Fprintf(&sb, " … (+%d more)", len(names)-max)
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(name)
		sb.WriteByte('=')
		sb.WriteByte('0' + b2u(m.Assignment[name]))
	}
	return sb.String()
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// MismatchError is the error form of a refuted equivalence check.
type MismatchError struct {
	Mismatch Mismatch
}

func (e *MismatchError) Error() string {
	m := &e.Mismatch
	return fmt.Sprintf("verify: program is not equivalent to its kernel: output %q computes %d, kernel computes %d under %s",
		m.Output, b2u(m.Got), b2u(m.Want), m.AssignmentString(16))
}

// UnprovenError reports an output whose equivalence could not be decided
// within the static budget — not a refutation, but never a pass either.
type UnprovenError struct {
	Output string
}

func (e *UnprovenError) Error() string {
	return fmt.Sprintf("verify: equivalence of output %q is unproven within the static budget (joint support exceeds the exhaustive bound); fall back to dynamic checking",
		e.Output)
}

// OutputEquiv is the per-output result of an equivalence check.
type OutputEquiv struct {
	Name    string
	Verdict aig.Verdict
	Method  string    // deciding procedure: strash, cosim, rebuild, table, unproven
	Counter *Mismatch // non-nil exactly when Verdict == VerdictRefuted
}

// EquivReport is the result of one translation-validation run.
type EquivReport struct {
	Outputs []OutputEquiv
	// Nodes is the AND count of the shared AIG holding both the lifted
	// kernel and the symbolically executed program — O(program instructions
	// + kernel ops) for a faithful compile.
	Nodes int
	// Stats reports the prover's rebuild/sweep/table work.
	Stats aig.EquivStats
}

// AllProven reports whether every output discharged as proven.
func (r *EquivReport) AllProven() bool {
	for _, o := range r.Outputs {
		if o.Verdict != aig.VerdictProven {
			return false
		}
	}
	return true
}

// AnyRefuted reports whether some output was disproved outright — as
// opposed to merely left unproven by an exhausted budget.
func (r *EquivReport) AnyRefuted() bool {
	for _, o := range r.Outputs {
		if o.Verdict == aig.VerdictRefuted {
			return true
		}
	}
	return false
}

// Err returns nil when every output proved; otherwise the first refutation
// (*MismatchError) if any exists, else the first unproven (*UnprovenError).
func (r *EquivReport) Err() error {
	var unproven error
	for _, o := range r.Outputs {
		switch o.Verdict {
		case aig.VerdictRefuted:
			return &MismatchError{Mismatch: *o.Counter}
		case aig.VerdictUnproven:
			if unproven == nil {
				unproven = &UnprovenError{Output: o.Name}
			}
		}
	}
	return unproven
}

// Equivalent proves that program p, run on fabric t with the readout
// contract outs, computes kernel. It returns nil exactly when every output
// is statically proven equivalent; a refutation surfaces as *MismatchError
// with a concrete counterexample, an exhausted budget as *UnprovenError, and
// structural problems (invalid program, interface mismatch) as plain errors.
func Equivalent(p isa.Program, t layout.Target, kernel *dfg.Graph, outs []OutputAt) error {
	rep, err := EquivalentOpts(p, t, kernel, outs, EquivOptions{})
	if err != nil {
		return err
	}
	return rep.Err()
}

// EquivalentOpts runs the equivalence check and returns the full per-output
// report. The error return covers structural failures only; consult
// EquivReport.Err for the verdicts.
func EquivalentOpts(p isa.Program, t layout.Target, kernel *dfg.Graph, outs []OutputAt, opt EquivOptions) (*EquivReport, error) {
	// The base verifier is the precondition: bounds, structural invariants
	// and def-before-use must hold before literals can be propagated at all.
	if err := ProgramOpts(p, t, Options{}).Err(); err != nil {
		return nil, fmt.Errorf("verify: program rejected before equivalence checking: %w", err)
	}
	cone, err := aig.LiftDFG(kernel)
	if err != nil {
		return nil, fmt.Errorf("verify: kernel is outside the liftable op set: %w", err)
	}
	inIdx := make(map[string]int, len(cone.InputNames))
	for i, name := range cone.InputNames {
		inIdx[name] = i
	}

	ex := newSymExec(p, t, cone.G, inIdx)
	if err := ex.run(); err != nil {
		return nil, err
	}

	kernLit := make(map[string]aig.Lit, len(cone.Outs))
	for i, name := range cone.OutputNames {
		kernLit[name] = cone.Outs[i]
	}
	progLits := make([]aig.Lit, 0, len(outs))
	kernLits := make([]aig.Lit, 0, len(outs))
	names := make([]string, 0, len(outs))
	seen := make(map[string]bool, len(outs))
	for _, o := range outs {
		want, ok := kernLit[o.Name]
		if !ok {
			return nil, fmt.Errorf("verify: readout names %q, which is not a kernel output", o.Name)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("verify: duplicate readout for output %q", o.Name)
		}
		seen[o.Name] = true
		got, err := ex.cellAt(o.Place)
		if err != nil {
			return nil, fmt.Errorf("verify: output %q: %w", o.Name, err)
		}
		progLits = append(progLits, got)
		kernLits = append(kernLits, want)
		names = append(names, o.Name)
	}
	if len(seen) != len(cone.OutputNames) {
		for _, name := range cone.OutputNames {
			if !seen[name] {
				return nil, fmt.Errorf("verify: kernel output %q has no readout cell", name)
			}
		}
	}

	verdicts, stats := aig.CheckOutputs(cone.G, progLits, kernLits, aig.EquivOptions{
		MaxSupport: opt.MaxSupport,
		SimWords:   opt.SimWords,
		Seed:       opt.Seed,
	})
	rep := &EquivReport{Nodes: cone.G.NumAnds(), Stats: stats}
	for i, v := range verdicts {
		oe := OutputEquiv{Name: names[i], Verdict: v.Verdict, Method: v.Method}
		if v.Verdict == aig.VerdictRefuted {
			assign := make(map[string]bool, len(v.Counter))
			for j, name := range cone.InputNames {
				assign[name] = v.Counter[j]
			}
			oe.Counter = &Mismatch{
				Output:     names[i],
				Assignment: assign,
				Want:       cone.G.Eval(kernLits[i], v.Counter),
				Got:        cone.G.Eval(progLits[i], v.Counter),
			}
		}
		rep.Outputs = append(rep.Outputs, oe)
	}
	return rep, nil
}

// symExec is the literal-domain abstract machine. State layout mirrors the
// definedness walker (and sim.Predecode): flat arrays over the program's
// clamped resource space.
type symExec struct {
	p     isa.Program
	t     layout.Target
	g     *aig.Graph
	inIdx map[string]int
	sp    isa.Space

	bufCols int // full fabric width, as the machines shift it

	cellLit []aig.Lit
	cellDef []bool
	bufLit  []aig.Lit
	bufDef  []bool

	folded []aig.Lit // scratch for CIM folds
}

func newSymExec(p isa.Program, t layout.Target, g *aig.Graph, inIdx map[string]int) *symExec {
	sp := p.ResourceSpace().Clamp(t.Arrays, t.Cols, t.Rows)
	return &symExec{
		p: p, t: t, g: g, inIdx: inIdx, sp: sp,
		bufCols: t.Cols,
		cellLit: make([]aig.Lit, sp.Arrays*sp.BufCols*sp.Rows),
		cellDef: make([]bool, sp.Arrays*sp.BufCols*sp.Rows),
		bufLit:  make([]aig.Lit, sp.Arrays*t.Cols),
		bufDef:  make([]bool, sp.Arrays*t.Cols),
	}
}

func (ex *symExec) cellOff(a, c, r int) int { return (a*ex.sp.BufCols+c)*ex.sp.Rows + r }
func (ex *symExec) bufOff(a, c int) int     { return a*ex.bufCols + c }

// cellAt returns the literal a readout of place would observe.
func (ex *symExec) cellAt(p layout.Place) (aig.Lit, error) {
	if p.Array < 0 || p.Array >= ex.sp.Arrays || p.Col < 0 || p.Col >= ex.sp.BufCols ||
		p.Row < 0 || p.Row >= ex.sp.Rows {
		return 0, fmt.Errorf("readout cell %v was never touched by the program", p)
	}
	off := ex.cellOff(p.Array, p.Col, p.Row)
	if !ex.cellDef[off] {
		return 0, fmt.Errorf("readout cell %v is undefined at program end", p)
	}
	return ex.cellLit[off], nil
}

func (ex *symExec) run() error {
	for i, in := range ex.p {
		var err error
		switch in.Kind {
		case isa.KindRead:
			err = ex.stepRead(in)
		case isa.KindWrite:
			err = ex.stepWrite(in)
		case isa.KindShift:
			ex.stepShift(in)
		case isa.KindNot:
			err = ex.stepNot(in)
		}
		if err != nil {
			return fmt.Errorf("verify: instruction %d (%s): %w", i, in, err)
		}
	}
	return nil
}

// stepRead mirrors sim.Machine.stepRead: each column senses the activated
// rows and folds them through the column's op into the row buffer.
func (ex *symExec) stepRead(in isa.Instruction) error {
	a := in.Array
	cim := in.IsCIMRead()
	for i, c := range in.Cols {
		bits := ex.folded[:0]
		for _, r := range in.Rows {
			off := ex.cellOff(a, c, r)
			if !ex.cellDef[off] {
				return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
			}
			bits = append(bits, ex.cellLit[off])
			if !cim {
				break
			}
		}
		ex.folded = bits[:0]
		var v aig.Lit
		if cim {
			switch op := in.Ops[i]; op {
			case logic.And:
				v = ex.g.AndN(bits)
			case logic.Nand:
				v = ex.g.AndN(bits).Not()
			case logic.Or:
				v = ex.g.OrN(bits)
			case logic.Nor:
				v = ex.g.OrN(bits).Not()
			case logic.Xor:
				v = ex.g.XorN(bits)
			case logic.Xnor:
				v = ex.g.XorN(bits).Not()
			default:
				return fmt.Errorf("unsupported CIM op %v", op)
			}
		} else {
			v = bits[0]
		}
		off := ex.bufOff(a, c)
		ex.bufLit[off] = v
		ex.bufDef[off] = true
	}
	return nil
}

func (ex *symExec) stepWrite(in isa.Instruction) error {
	a, row := in.Array, in.Rows[0]
	src := a
	if in.HasSrcArray {
		src = in.SrcArray
	}
	host := in.IsHostWrite()
	for i, c := range in.Cols {
		var v aig.Lit
		if host {
			idx, ok := ex.inIdx[in.Bindings[i]]
			if !ok {
				return fmt.Errorf("program binds %q, which is not a kernel input", in.Bindings[i])
			}
			v = ex.g.Input(idx)
		} else {
			off := ex.bufOff(src, c)
			if !ex.bufDef[off] {
				return fmt.Errorf("write from undefined row-buffer bit [%d][%d]", src, c)
			}
			v = ex.bufLit[off]
		}
		off := ex.cellOff(a, c, row)
		ex.cellLit[off] = v
		ex.cellDef[off] = true
	}
	return nil
}

// stepShift relabels the array's whole row buffer; bits shifted in from
// outside are undefined, exactly as the machines kill them.
func (ex *symExec) stepShift(in isa.Instruction) {
	a := in.Array
	d := in.ShiftBy
	if !in.Right {
		d = -d
	}
	n := ex.bufCols
	base := a * n
	oldLit := append([]aig.Lit(nil), ex.bufLit[base:base+n]...)
	oldDef := append([]bool(nil), ex.bufDef[base:base+n]...)
	for c := 0; c < n; c++ {
		if s := c - d; s >= 0 && s < n {
			ex.bufLit[base+c] = oldLit[s]
			ex.bufDef[base+c] = oldDef[s]
		} else {
			ex.bufLit[base+c] = aig.Const0
			ex.bufDef[base+c] = false
		}
	}
}

func (ex *symExec) stepNot(in isa.Instruction) error {
	a := in.Array
	for _, c := range in.Cols {
		off := ex.bufOff(a, c)
		if !ex.bufDef[off] {
			return fmt.Errorf("NOT of undefined row-buffer bit [%d][%d]", a, c)
		}
		ex.bufLit[off] = ex.bufLit[off].Not()
	}
	return nil
}

// --- readout manifests ---------------------------------------------------

// FormatOutputs renders the readout contract in the sidecar manifest format
// golden programs are pinned with:
//
//	output <name> [array][col][row]
//
// one line per kernel output, '#' comments and blank lines ignored.
func FormatOutputs(outs []OutputAt) string {
	var sb strings.Builder
	sb.WriteString("# readout manifest: kernel output name -> cell its final value is read from\n")
	for _, o := range outs {
		fmt.Fprintf(&sb, "output %s %s\n", o.Name, o.Place)
	}
	return sb.String()
}

// ParseOutputs parses the FormatOutputs manifest format.
func ParseOutputs(text string) ([]OutputAt, error) {
	var outs []OutputAt
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "output" {
			return nil, fmt.Errorf("verify: outputs manifest line %d: want \"output <name> [a][c][r]\", got %q", ln+1, line)
		}
		place, err := parsePlace(fields[2])
		if err != nil {
			return nil, fmt.Errorf("verify: outputs manifest line %d: %w", ln+1, err)
		}
		outs = append(outs, OutputAt{Name: fields[1], Place: place})
	}
	if len(outs) == 0 {
		return nil, errors.New("verify: outputs manifest names no outputs")
	}
	return outs, nil
}

func parsePlace(s string) (layout.Place, error) {
	orig := s
	var nums [3]int
	for i := 0; i < 3; i++ {
		if len(s) == 0 || s[0] != '[' {
			return layout.Place{}, fmt.Errorf("malformed place %q", orig)
		}
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return layout.Place{}, fmt.Errorf("malformed place %q", orig)
		}
		v, err := strconv.Atoi(s[1:end])
		if err != nil {
			return layout.Place{}, fmt.Errorf("malformed place %q: %v", orig, err)
		}
		nums[i] = v
		s = s[end+1:]
	}
	if s != "" {
		return layout.Place{}, fmt.Errorf("malformed place %q", orig)
	}
	return layout.Place{Array: nums[0], Col: nums[1], Row: nums[2]}, nil
}
