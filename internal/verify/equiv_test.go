package verify

import (
	"errors"
	"strings"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/sim"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// outputsOf derives the readout contract of a finished mapping.
func outputsOf(t *testing.T, res *mapping.Result) []OutputAt {
	t.Helper()
	outs := res.Graph.Outputs()
	specs := make([]OutputAt, len(outs))
	for i, o := range outs {
		p, err := res.OutputPlace(o)
		if err != nil {
			t.Fatalf("OutputPlace: %v", err)
		}
		specs[i] = OutputAt{Name: res.Graph.OutputName(o), Place: p}
	}
	return specs
}

// testKernel exercises every lowering feature: multi-operand folds of all
// six sense ops, NOT, enough asymmetry that no two inputs are
// interchangeable, and four parallel same-shape XORs whose scouting reads
// the scheduler merges into one multi-column instruction.
func testKernel(t *testing.T) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder()
	a, x, y, z := b.Input("a"), b.Input("x"), b.Input("y"), b.Input("z")
	w := b.Input("w")
	b.Output("o1", b.Or(b.And(a, x), b.Not(z)))
	b.Output("o2", b.Xor(b.XorN(a, y, z), b.Nand(x, w)))
	b.Output("o3", b.Nor(b.And(y, w), z))
	ps := b.Inputs("p", 4)
	qs := b.Inputs("q", 4)
	for i := 0; i < 4; i++ {
		b.Output("m"+string(rune('0'+i)), b.Xor(ps[i], qs[i]))
	}
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	return g
}

func mapKernel(t *testing.T, g *dfg.Graph, optimized bool, target layout.Target, mo mapping.Options) *mapping.Result {
	t.Helper()
	mo.Target = target
	var res *mapping.Result
	var err error
	if optimized {
		res, err = mapping.Optimized(g, mo)
	} else {
		res, err = mapping.Naive(g, mo)
	}
	if err != nil {
		t.Fatalf("mapping: %v", err)
	}
	return res
}

func TestEquivalentAcceptsMappedPrograms(t *testing.T) {
	sb, err := sobel.Build(sobel.Config{TileW: 1, TileH: 1, PixelBits: 4, Threshold: 5})
	if err != nil {
		t.Fatalf("sobel: %v", err)
	}
	bw, err := bitweaving.Build(bitweaving.Config{Bits: 4, Segments: 2})
	if err != nil {
		t.Fatalf("bitweaving: %v", err)
	}
	cases := []struct {
		name   string
		g      *dfg.Graph
		target layout.Target
	}{
		{"handmade", testKernel(t), layout.Target{Arrays: 1, Rows: 64, Cols: 64}},
		{"sobel", sb, layout.Target{Arrays: 1, Rows: 128, Cols: 128}},
		{"bitweaving", bw, layout.Target{Arrays: 2, Rows: 64, Cols: 64}},
	}
	for _, tc := range cases {
		for _, optimized := range []bool{false, true} {
			res := mapKernel(t, tc.g, optimized, tc.target, mapping.Options{})
			outs := outputsOf(t, res)
			rep, err := EquivalentOpts(res.Program, tc.target, tc.g, outs, EquivOptions{})
			if err != nil {
				t.Fatalf("%s optimized=%v: %v", tc.name, optimized, err)
			}
			if !rep.AllProven() {
				t.Fatalf("%s optimized=%v: not all outputs proven: %+v", tc.name, optimized, rep.Outputs)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%s optimized=%v: report error: %v", tc.name, optimized, err)
			}
			if rep.Nodes == 0 {
				t.Fatalf("%s optimized=%v: empty shared AIG", tc.name, optimized)
			}
		}
	}
}

// A faithful program must prove by literal equality alone — the O(instrs)
// fast path the canonical folds buy.
func TestEquivalentFaithfulProgramsProveByStrash(t *testing.T) {
	g := testKernel(t)
	target := layout.Target{Arrays: 1, Rows: 64, Cols: 64}
	res := mapKernel(t, g, true, target, mapping.Options{})
	rep, err := EquivalentOpts(res.Program, target, g, outputsOf(t, res), EquivOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outputs {
		if o.Method != "strash" {
			t.Fatalf("output %q proved via %s, want strash (canonical-fold fast path)", o.Name, o.Method)
		}
	}
}

func clone(p isa.Program) isa.Program {
	q := make(isa.Program, len(p))
	for i, in := range p {
		q[i] = in
		q[i].Cols = append([]int(nil), in.Cols...)
		q[i].Rows = append([]int(nil), in.Rows...)
		q[i].Ops = append([]logic.Op(nil), in.Ops...)
		q[i].Bindings = append([]string(nil), in.Bindings...)
	}
	return q
}

// independentWrites finds two adjacent host writes touching disjoint cells
// (such writes always commute — both load fresh values from the host).
func independentWrites(p isa.Program) int {
	for i := 0; i+1 < len(p); i++ {
		a, b := p[i], p[i+1]
		if a.Kind != isa.KindWrite || b.Kind != isa.KindWrite || !a.IsHostWrite() || !b.IsHostWrite() {
			continue
		}
		if a.Array != b.Array || a.Rows[0] != b.Rows[0] {
			return i
		}
		disjoint := true
		for _, ca := range a.Cols {
			for _, cb := range b.Cols {
				if ca == cb {
					disjoint = false
				}
			}
		}
		if disjoint {
			return i
		}
	}
	return -1
}

func findInstr(p isa.Program, pred func(isa.Instruction) bool) int {
	for i, in := range p {
		if pred(in) {
			return i
		}
	}
	return -1
}

// TestEquivalentMutations is the mutation-rejection suite: eight program
// corruptions, one semantics-preserving (accepted), seven
// function-changing (every one rejected). Mirrors the dynamic 600-mutant
// fuzz of internal/sim, but with a static proof instead of execution.
func TestEquivalentMutations(t *testing.T) {
	type ctx struct {
		g      *dfg.Graph
		target layout.Target
		base   isa.Program
		outs   []OutputAt
	}
	g := testKernel(t)
	target := layout.Target{Arrays: 1, Rows: 64, Cols: 64}
	res := mapKernel(t, g, true, target, mapping.Options{})
	hand := ctx{g: g, target: target, base: res.Program, outs: outputsOf(t, res)}

	// The handmade kernel maps without column-alignment shifts; the shift
	// mutation corrupts a sobel tile instead.
	sg, err := sobel.Build(sobel.Config{TileW: 1, TileH: 1, PixelBits: 4, Threshold: 5})
	if err != nil {
		t.Fatalf("sobel: %v", err)
	}
	starget := layout.Target{Arrays: 1, Rows: 128, Cols: 128}
	sres := mapKernel(t, sg, true, starget, mapping.Options{})
	sob := ctx{g: sg, target: starget, base: sres.Program, outs: outputsOf(t, sres)}

	for _, c := range []ctx{hand, sob} {
		if err := Equivalent(c.base, c.target, c.g, c.outs); err != nil {
			t.Fatalf("unmutated program must prove: %v", err)
		}
	}

	mismatches := 0
	checkIn := func(name string, c ctx, mutate func(isa.Program) isa.Program, wantReject bool) {
		t.Helper()
		p := mutate(clone(c.base))
		err := Equivalent(p, c.target, c.g, c.outs)
		if wantReject && err == nil {
			t.Fatalf("%s: function-changing mutation accepted", name)
		}
		if !wantReject && err != nil {
			t.Fatalf("%s: semantics-preserving mutation rejected: %v", name, err)
		}
		var me *MismatchError
		if errors.As(err, &me) {
			mismatches++
			m := me.Mismatch
			// The counterexample must be real: the kernel and the mutated
			// program, both evaluated at the assignment, must reproduce
			// Want and Got.
			kout, kerr := dfg.EvaluateByName(c.g, m.Assignment)
			if kerr != nil {
				t.Fatalf("%s: kernel eval at counterexample: %v", name, kerr)
			}
			if kout[m.Output] != m.Want {
				t.Fatalf("%s: kernel computes %v at the counterexample, report claims %v", name, kout[m.Output], m.Want)
			}
			machine := sim.NewMachine(c.target)
			if rerr := machine.Run(p, m.Assignment); rerr != nil {
				t.Fatalf("%s: mutated program does not execute at the counterexample: %v", name, rerr)
			}
			var place layout.Place
			for _, o := range c.outs {
				if o.Name == m.Output {
					place = o.Place
				}
			}
			got, ok := machine.Cell(place)
			if !ok {
				t.Fatalf("%s: readout cell %v undefined after execution", name, place)
			}
			if got != m.Got {
				t.Fatalf("%s: mutated program computes %v at the counterexample, report claims %v", name, got, m.Got)
			}
		}
	}

	// 1. Swapping adjacent independent instructions preserves the function.
	checkIn("swap-independent", hand, func(p isa.Program) isa.Program {
		i := independentWrites(p)
		if i < 0 {
			t.Fatal("no adjacent independent host writes to swap")
		}
		p[i], p[i+1] = p[i+1], p[i]
		return p
	}, false)

	// 2. Dropping a member from a merged scouting read loses one column's
	// fold.
	checkIn("drop-merge-member", hand, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool {
			return in.IsCIMRead() && len(in.Cols) > 1
		})
		if i < 0 {
			t.Fatal("no merged CIM read to corrupt")
		}
		p[i].Cols = p[i].Cols[:len(p[i].Cols)-1]
		p[i].Ops = p[i].Ops[:len(p[i].Ops)-1]
		return p
	}, true)

	// 3. Retargeting a write-back row parks the value in the wrong cell.
	checkIn("retarget-row", hand, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool {
			return in.Kind == isa.KindWrite && !in.IsHostWrite()
		})
		if i < 0 {
			t.Fatal("no write-back to retarget")
		}
		p[i].Rows[0] = (p[i].Rows[0] + 1) % target.Rows
		return p
	}, true)

	// 4. Flipping a fold op inverts (or replaces) the sensed function.
	checkIn("flip-fold-op", hand, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool { return in.IsCIMRead() })
		if i < 0 {
			t.Fatal("no CIM read to corrupt")
		}
		flip := map[logic.Op]logic.Op{
			logic.And: logic.Or, logic.Or: logic.And,
			logic.Nand: logic.Nor, logic.Nor: logic.Nand,
			logic.Xor: logic.Xnor, logic.Xnor: logic.Xor,
		}
		p[i].Ops[0] = flip[p[i].Ops[0]]
		return p
	}, true)

	// 5. Truncating the program loses the tail of the computation.
	checkIn("truncate", hand, func(p isa.Program) isa.Program {
		return p[:len(p)-1]
	}, true)

	// 6. Dropping a NOT leaves the uninverted value in the buffer.
	checkIn("drop-not", hand, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool { return in.Kind == isa.KindNot })
		if i < 0 {
			t.Fatal("no NOT to drop")
		}
		return append(p[:i], p[i+1:]...)
	}, true)

	// 7. Flipping a shift's direction lands every bit in the wrong column.
	checkIn("flip-shift", sob, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool { return in.Kind == isa.KindShift })
		if i < 0 {
			t.Fatal("no shift to flip")
		}
		p[i].Right = !p[i].Right
		return p
	}, true)

	// 8. Rebinding a host write loads the wrong kernel input.
	checkIn("rebind-input", hand, func(p isa.Program) isa.Program {
		i := findInstr(p, func(in isa.Instruction) bool {
			return in.IsHostWrite() && in.Bindings[0] != "a"
		})
		if i < 0 {
			t.Fatal("no host write to rebind")
		}
		p[i].Bindings[0] = "a"
		return p
	}, true)

	if mismatches == 0 {
		t.Fatal("no mutation produced a concrete counterexample (MismatchError)")
	}
}

// Equivalence against a functionally equal but structurally reassociated
// kernel must still prove (the Balance-candidate case), and shrinking the
// exhaustive budget must degrade to unproven — never to a false verdict.
func TestEquivalentStructurallyDifferentKernel(t *testing.T) {
	build := func(distributed bool) *dfg.Graph {
		b := dfg.NewBuilder()
		a, x, y := b.Input("a"), b.Input("x"), b.Input("y")
		if distributed {
			b.Output("o", b.Or(b.And(a, x), b.And(a, y)))
		} else {
			b.Output("o", b.And(a, b.Or(x, y)))
		}
		return b.Graph()
	}
	factored, distributed := build(false), build(true)
	target := layout.Target{Arrays: 1, Rows: 32, Cols: 32}
	res := mapKernel(t, distributed, true, target, mapping.Options{})
	outs := outputsOf(t, res)

	// Full budget: the sweep proves distribution.
	rep, err := EquivalentOpts(res.Program, target, factored, outs, EquivOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllProven() {
		t.Fatalf("distributed program vs factored kernel not proven: %+v", rep.Outputs)
	}

	// Starved budget: unproven, surfaced as *UnprovenError.
	rep, err = EquivalentOpts(res.Program, target, factored, outs, EquivOptions{MaxSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ue *UnprovenError
	if verr := rep.Err(); !errors.As(verr, &ue) {
		t.Fatalf("starved budget: want *UnprovenError, got %v", verr)
	}
	if ue.Output != "o" {
		t.Fatalf("unproven output %q, want o", ue.Output)
	}
}

func TestEquivalentInterfaceErrors(t *testing.T) {
	g := testKernel(t)
	target := layout.Target{Arrays: 1, Rows: 64, Cols: 64}
	res := mapKernel(t, g, true, target, mapping.Options{})
	outs := outputsOf(t, res)

	if _, err := EquivalentOpts(res.Program, target, g, outs[:1], EquivOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no readout cell") {
		t.Fatalf("missing outputs not rejected: %v", err)
	}
	bad := append([]OutputAt(nil), outs...)
	bad[0].Name = "nonsense"
	if _, err := EquivalentOpts(res.Program, target, g, bad, EquivOptions{}); err == nil ||
		!strings.Contains(err.Error(), "not a kernel output") {
		t.Fatalf("unknown output not rejected: %v", err)
	}
	dup := append(append([]OutputAt(nil), outs...), outs[0])
	if _, err := EquivalentOpts(res.Program, target, g, dup, EquivOptions{}); err == nil ||
		!strings.Contains(err.Error(), "duplicate readout") {
		t.Fatalf("duplicate readout not rejected: %v", err)
	}
	if _, err := EquivalentOpts(isa.Program{}, target, g, outs, EquivOptions{}); err == nil {
		t.Fatal("empty program must fail (undefined readouts)")
	}
}

func TestOutputsManifestRoundTrip(t *testing.T) {
	outs := []OutputAt{
		{Name: "gt", Place: layout.Place{Array: 0, Col: 3, Row: 17}},
		{Name: "sum_b0", Place: layout.Place{Array: 2, Col: 0, Row: 511}},
	}
	text := FormatOutputs(outs)
	back, err := ParseOutputs(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(outs) {
		t.Fatalf("round trip lost entries: %d -> %d", len(outs), len(back))
	}
	for i := range outs {
		if back[i] != outs[i] {
			t.Fatalf("entry %d: %+v != %+v", i, back[i], outs[i])
		}
	}
	for _, bad := range []string{"", "# only comments\n", "output x\n", "output x [1][2]\n", "readout x [1][2][3]\n"} {
		if _, err := ParseOutputs(bad); err == nil {
			t.Fatalf("malformed manifest %q parsed", bad)
		}
	}
}

func TestMismatchRendering(t *testing.T) {
	m := Mismatch{
		Output:     "gt",
		Assignment: map[string]bool{"b": true, "a": false, "c": true},
		Want:       true,
		Got:        false,
	}
	if got, want := m.AssignmentString(0), "a=0 b=1 c=1"; got != want {
		t.Fatalf("AssignmentString = %q, want %q", got, want)
	}
	if got, want := m.AssignmentString(2), "a=0 b=1 … (+1 more)"; got != want {
		t.Fatalf("truncated AssignmentString = %q, want %q", got, want)
	}
	err := &MismatchError{Mismatch: m}
	msg := err.Error()
	for _, frag := range []string{`output "gt"`, "computes 0", "kernel computes 1", "a=0 b=1 c=1"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("MismatchError %q missing %q", msg, frag)
		}
	}
	if ue := (&UnprovenError{Output: "x"}).Error(); !strings.Contains(ue, `"x"`) || !strings.Contains(ue, "unproven") {
		t.Fatalf("UnprovenError rendering: %q", ue)
	}
}

// Concurrent verifications over independently mapped programs must be
// data-race free (CI runs this under -race).
func TestEquivRaceSmoke(t *testing.T) {
	g := testKernel(t)
	target := layout.Target{Arrays: 1, Rows: 64, Cols: 64}
	type job struct {
		p    isa.Program
		outs []OutputAt
	}
	jobs := make([]job, 2)
	for k := range jobs {
		res := mapKernel(t, g, k == 0, target, mapping.Options{})
		jobs[k] = job{p: res.Program, outs: outputsOf(t, res)}
	}
	done := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j job) {
			done <- Equivalent(j.p, target, g, j.outs)
		}(j)
	}
	for range jobs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
