package pool

// Limiter is a counting semaphore bounding concurrent admissions — the
// serving layer's guard against unbounded executor passes when many
// kernels' batch windows flush at once. A nil *Limiter admits everything,
// so callers thread an optional limiter without branching.
type Limiter struct {
	ch chan struct{}
}

// NewLimiter builds a limiter admitting up to n concurrent holders.
// n <= 0 returns nil (unlimited).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	return &Limiter{ch: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free. No-op on a nil limiter.
func (l *Limiter) Acquire() {
	if l != nil {
		l.ch <- struct{}{}
	}
}

// Release frees a slot taken by Acquire. No-op on a nil limiter.
func (l *Limiter) Release() {
	if l != nil {
		<-l.ch
	}
}

// TryAcquire takes a slot without blocking, reporting success. A nil
// limiter always succeeds.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.ch <- struct{}{}:
		return true
	default:
		return false
	}
}
