// Package pool provides the bounded fan-out primitive behind the parallel
// campaign engine: a fixed-size worker group that evaluates n independent
// cells of a grid and preserves deterministic, index-addressed results.
//
// Callers write each cell's result into its own slot of a preallocated
// slice, so the output order is the iteration order regardless of how the
// cells interleave across workers.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run evaluates fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 selects runtime.GOMAXPROCS(0); a single worker degenerates
// to a plain loop with no goroutines. If any fn returns an error, the
// remaining unstarted cells are skipped and the error of the
// lowest-indexed failed cell that completed is returned.
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next cell to claim
		stop atomic.Bool  // set on first error; halts claiming

		mu       sync.Mutex
		errIdx   = n // lowest failed index seen so far
		firstErr error

		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
