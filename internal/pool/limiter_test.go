package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter = NewLimiter(0)
	if l != nil {
		t.Fatal("NewLimiter(0) should be nil (unlimited)")
	}
	l.Acquire() // must not block or panic
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("nil limiter refused an admission")
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	const slots = 3
	const workers = 24
	l := NewLimiter(slots)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Acquire()
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			inFlight.Add(-1)
			l.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("observed %d concurrent holders, limit is %d", p, slots)
	}
	if !l.TryAcquire() {
		t.Fatal("all slots should be free after every worker released")
	}
}

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire on an empty limiter failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no free slot")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after a release")
	}
}
