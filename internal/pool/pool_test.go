package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		if err := Run(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d run %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Run(workers, 20, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestRunStopsAfterError(t *testing.T) {
	// With one worker the failure at cell 3 must prevent every later cell.
	var ran atomic.Int32
	err := Run(1, 100, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d cells after sequential failure, want 4", got)
	}
}
