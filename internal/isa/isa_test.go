package isa

import (
	"strings"
	"testing"

	"sherlock/internal/logic"
)

func mustParse(t *testing.T, line string) Instruction {
	t.Helper()
	in, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return in
}

func TestParsePaperExamples(t *testing.T) {
	// The exact snippets of Fig. 4 (including the stray space).
	w := mustParse(t, "write [0][4,8,12,16][932]")
	if w.Kind != KindWrite || w.Rows[0] != 932 || len(w.Cols) != 4 {
		t.Errorf("write parsed wrong: %+v", w)
	}
	r := mustParse(t, "Read [0][1,5,9, 13][5]")
	if r.Kind != KindRead || r.IsCIMRead() || r.Cols[3] != 13 {
		t.Errorf("plain read parsed wrong: %+v", r)
	}
	s := mustParse(t, "Shift [0] R[3]")
	if s.Kind != KindShift || !s.Right || s.ShiftBy != 3 {
		t.Errorf("shift parsed wrong: %+v", s)
	}
	c := mustParse(t, "Read [0][4,8,12,16][933,934] [XOR,AND,OR,XOR]")
	if !c.IsCIMRead() || len(c.Ops) != 4 || c.Ops[1] != logic.And {
		t.Errorf("CIM read parsed wrong: %+v", c)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Kind: KindWrite, Array: 2, Cols: []int{1, 3}, Rows: []int{10}},
		{Kind: KindWrite, Array: 0, Cols: []int{0, 7}, Rows: []int{4}, Bindings: []string{"x0", "x1"}},
		{Kind: KindWrite, Array: 1, Cols: []int{2}, Rows: []int{6}, HasSrcArray: true, SrcArray: 0},
		{Kind: KindRead, Array: 1, Cols: []int{5}, Rows: []int{9}},
		{Kind: KindRead, Array: 0, Cols: []int{2, 4}, Rows: []int{7, 8, 9}, Ops: []logic.Op{logic.Nand, logic.Xor}},
		{Kind: KindShift, Array: 0, Right: false, ShiftBy: 12},
		{Kind: KindNot, Array: 3, Cols: []int{0, 1, 2}},
	}
	for _, in := range cases {
		if err := in.Validate(); err != nil {
			t.Fatalf("case %v invalid: %v", in, err)
		}
		got, err := Parse(in.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", in.String(), err)
		}
		if got.String() != in.String() {
			t.Errorf("round trip: %q -> %q", in.String(), got.String())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Kind: KindRead}, // no cols/rows
		{Kind: KindRead, Cols: []int{1}, Rows: []int{1, 2}},                                           // CIM read without ops
		{Kind: KindRead, Cols: []int{1}, Rows: []int{3}, Ops: []logic.Op{logic.And}},                  // plain read with ops
		{Kind: KindRead, Cols: []int{1, 2}, Rows: []int{1, 2}, Ops: []logic.Op{logic.Not, logic.And}}, // NOT is not a sense op
		{Kind: KindRead, Cols: []int{2, 1}, Rows: []int{1}},                                           // unsorted cols
		{Kind: KindRead, Cols: []int{1, 1}, Rows: []int{1}},                                           // duplicate cols
		{Kind: KindWrite, Cols: []int{1}, Rows: []int{1, 2}},                                          // two rows
		{Kind: KindWrite, Cols: []int{1, 2}, Rows: []int{1}, Bindings: []string{"x"}},                 // binding count
		{Kind: KindShift, ShiftBy: 0},                                                                 // zero distance
		{Kind: KindShift, ShiftBy: 2, Cols: []int{1}},                                                 // shift with cols
		{Kind: KindNot}, // no cols
		{Kind: KindNot, Cols: []int{1}, Rows: []int{1}},                                              // not with rows
		{Kind: KindRead, Array: -1, Cols: []int{1}, Rows: []int{1}},                                  // negative array
		{Kind: KindWrite, Array: 1, Cols: []int{1}, Rows: []int{1}, HasSrcArray: true, SrcArray: 1},  // own array
		{Kind: KindWrite, Array: 1, Cols: []int{1}, Rows: []int{1}, HasSrcArray: true, SrcArray: -1}, // negative src
		{Kind: KindWrite, Array: 1, Cols: []int{1}, Rows: []int{1}, HasSrcArray: true, SrcArray: 0,
			Bindings: []string{"x"}}, // bus write cannot bind
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"Frob [0][1][2]",
		"Read [0][1]",
		"Read [0][1][2",
		"Read [0][a][2]",
		"Shift [0] X[3]",
		"Read [0][1][2] junk",
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded", line)
		}
	}
}

func TestProgramRoundTripAndStats(t *testing.T) {
	text := `
# load inputs
Write [0][0,1][0] <a,b>
Write [0][0][1] <c>
Read [0][0,1][0,1] [AND,OR]
Write [0][0][2]
Read [0][0][2]
Not [0][0]
Shift [0] R[1]
Write [0][1][3]
`
	p, err := ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.String() != p.String() {
		t.Error("program round trip mismatch")
	}

	st := p.ComputeStats()
	if st.Total != 8 || st.HostWrites != 2 || st.Writes != 2 || st.CIMReads != 1 ||
		st.Reads != 1 || st.Shifts != 1 || st.Nots != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.SenseEvents[SenseClass{Op: logic.And, Rows: 2}] != 1 {
		t.Errorf("sense events wrong: %v", st.SenseEvents)
	}
	if st.MaxRows != 2 {
		t.Errorf("max rows = %d, want 2", st.MaxRows)
	}
}

func TestSenseClassesStableOrder(t *testing.T) {
	p := Program{
		{Kind: KindRead, Cols: []int{0, 1}, Rows: []int{0, 1, 2}, Ops: []logic.Op{logic.Xor, logic.And}},
		{Kind: KindRead, Cols: []int{0}, Rows: []int{0, 1}, Ops: []logic.Op{logic.And}},
	}
	st := p.ComputeStats()
	classes := st.SenseClasses()
	if len(classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(classes))
	}
	for i := 1; i < len(classes); i++ {
		a, b := classes[i-1], classes[i]
		if a.Op > b.Op || (a.Op == b.Op && a.Rows >= b.Rows) {
			t.Fatalf("classes unsorted: %v", classes)
		}
	}
}

func TestParseProgramReportsLine(t *testing.T) {
	_, err := ParseProgram("Read [0][0][0]\nBogus [1]")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v should name line 2", err)
	}
}

// TestBindingsFirstUseOrder pins Bindings() as the canonical input-slot
// order: names appear once each, ordered by first textual use, with
// duplicates and later re-uses collapsed.
func TestBindingsFirstUseOrder(t *testing.T) {
	p, err := ParseProgram(
		"Write [0][0,1][0] <b,a>\nWrite [0][2][1] <c>\nWrite [1][0,1][0] <a,d>")
	if err != nil {
		t.Fatal(err)
	}
	got := p.Bindings()
	want := []string{"b", "a", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Bindings() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bindings() = %v, want %v", got, want)
		}
	}
	if n := Program(nil).Bindings(); len(n) != 0 {
		t.Fatalf("empty program Bindings() = %v", n)
	}
}
