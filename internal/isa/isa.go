// Package isa defines the CIM instruction set of the target system and its
// textual format (paper Fig. 4):
//
//	Write [0][4,8,12,16][932]
//	Read  [0][1,5,9,13][5]
//	Read  [0][4,8,12,16][933,934] [XOR,AND,OR,XOR]
//	Shift [0] R[3]
//
// A Read of one row loads it into the row buffer; a Read of several rows is
// a scouting (CIM) read carrying one logic operation per listed column. A
// Write programs the row buffer into one row at the listed columns. Shift
// rotates the row buffer. Not (our spelling of the row-buffer CMOS
// inversion the paper describes in Sec. 2.1) inverts the row buffer at the
// listed columns.
//
// Host-supplied input data enters through Write instructions with bindings:
// "Write [0][4,8][932] <x0,x1>" loads kernel inputs x0 and x1 from the bus
// into columns 4 and 8 of row 932.
package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sherlock/internal/logic"
)

// Kind discriminates instruction classes.
type Kind int

// Instruction kinds.
const (
	KindRead Kind = iota + 1
	KindWrite
	KindShift
	KindNot
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "Read"
	case KindWrite:
		return "Write"
	case KindShift:
		return "Shift"
	case KindNot:
		return "Not"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Instruction is one operation of the generated code.
type Instruction struct {
	Kind  Kind
	Array int
	Cols  []int // sorted ascending, unique
	Rows  []int // Read: activated rows; Write: single destination row

	// Ops holds the per-column logic operation of a scouting read
	// (len(Ops) == len(Cols)); empty for plain reads.
	Ops []logic.Op

	// Shift parameters.
	Right   bool
	ShiftBy int

	// Bindings names the kernel inputs loaded from the host bus by a
	// host write, one per column; nil for row-buffer write-backs.
	Bindings []string

	// HasSrcArray marks a cross-array write: the data comes from
	// SrcArray's row buffer over the inter-array bus rather than from this
	// array's own buffer. Rendered as a "@[n]" suffix.
	HasSrcArray bool
	SrcArray    int
}

// IsCIMRead reports whether the instruction is a scouting read (performs
// logic and therefore contributes to decision-failure probability).
func (in Instruction) IsCIMRead() bool { return in.Kind == KindRead && len(in.Rows) >= 2 }

// IsHostWrite reports whether the instruction loads input data from the
// host bus.
func (in Instruction) IsHostWrite() bool { return in.Kind == KindWrite && in.Bindings != nil }

// Validate checks the structural invariants of one instruction.
func (in Instruction) Validate() error {
	if in.Array < 0 {
		return fmt.Errorf("isa: negative array id %d", in.Array)
	}
	switch in.Kind {
	case KindRead:
		if len(in.Cols) == 0 || len(in.Rows) == 0 {
			return fmt.Errorf("isa: read needs columns and rows")
		}
		if len(in.Rows) == 1 && len(in.Ops) != 0 {
			return fmt.Errorf("isa: plain read must not carry ops")
		}
		if len(in.Rows) >= 2 {
			if len(in.Ops) != len(in.Cols) {
				return fmt.Errorf("isa: CIM read has %d ops for %d columns", len(in.Ops), len(in.Cols))
			}
			for _, op := range in.Ops {
				if !op.IsSense() {
					return fmt.Errorf("isa: %v is not a sense operation", op)
				}
			}
		}
		if err := checkUniqueSorted("row", in.Rows); err != nil {
			return err
		}
	case KindWrite:
		if len(in.Cols) == 0 || len(in.Rows) != 1 {
			return fmt.Errorf("isa: write needs columns and exactly one row")
		}
		if len(in.Ops) != 0 {
			return fmt.Errorf("isa: write must not carry ops")
		}
		if in.Bindings != nil && len(in.Bindings) != len(in.Cols) {
			return fmt.Errorf("isa: host write has %d bindings for %d columns", len(in.Bindings), len(in.Cols))
		}
		if in.HasSrcArray {
			if in.Bindings != nil {
				return fmt.Errorf("isa: cross-array write cannot also bind host inputs")
			}
			if in.SrcArray < 0 {
				return fmt.Errorf("isa: negative source array %d", in.SrcArray)
			}
			if in.SrcArray == in.Array {
				return fmt.Errorf("isa: cross-array write from own array %d", in.Array)
			}
		}
	case KindShift:
		if in.ShiftBy <= 0 {
			return fmt.Errorf("isa: shift distance %d must be positive", in.ShiftBy)
		}
		if len(in.Cols) != 0 || len(in.Rows) != 0 {
			return fmt.Errorf("isa: shift addresses the whole row buffer")
		}
	case KindNot:
		if len(in.Cols) == 0 {
			return fmt.Errorf("isa: not needs columns")
		}
		if len(in.Rows) != 0 || len(in.Ops) != 0 {
			return fmt.Errorf("isa: not addresses the row buffer only")
		}
	default:
		return fmt.Errorf("isa: invalid kind %v", in.Kind)
	}
	if in.Kind != KindShift {
		if err := checkUniqueSorted("column", in.Cols); err != nil {
			return err
		}
	}
	return nil
}

func checkUniqueSorted(what string, xs []int) error {
	for i, x := range xs {
		if x < 0 {
			return fmt.Errorf("isa: negative %s %d", what, x)
		}
		if i > 0 && xs[i-1] >= x {
			return fmt.Errorf("isa: %s list not sorted/unique at %d", what, x)
		}
	}
	return nil
}

// String renders the instruction in the paper's format.
func (in Instruction) String() string {
	var sb strings.Builder
	switch in.Kind {
	case KindShift:
		dir := "L"
		if in.Right {
			dir = "R"
		}
		fmt.Fprintf(&sb, "Shift [%d] %s[%d]", in.Array, dir, in.ShiftBy)
	case KindNot:
		fmt.Fprintf(&sb, "Not [%d][%s]", in.Array, joinInts(in.Cols))
	case KindRead:
		fmt.Fprintf(&sb, "Read [%d][%s][%s]", in.Array, joinInts(in.Cols), joinInts(in.Rows))
		if len(in.Ops) > 0 {
			names := make([]string, len(in.Ops))
			for i, op := range in.Ops {
				names[i] = op.String()
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(names, ","))
		}
	case KindWrite:
		fmt.Fprintf(&sb, "Write [%d][%s][%d]", in.Array, joinInts(in.Cols), in.Rows[0])
		if in.Bindings != nil {
			fmt.Fprintf(&sb, " <%s>", strings.Join(in.Bindings, ","))
		}
		if in.HasSrcArray {
			fmt.Fprintf(&sb, " @[%d]", in.SrcArray)
		}
	}
	return sb.String()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// Parse decodes one instruction line (as produced by String). Whitespace
// inside bracket lists is tolerated, matching the paper's own examples.
func Parse(line string) (Instruction, error) {
	line = strings.TrimSpace(line)
	fields := strings.SplitN(line, " ", 2)
	if len(fields) != 2 {
		return Instruction{}, fmt.Errorf("isa: malformed instruction %q", line)
	}
	rest := strings.TrimSpace(fields[1])
	var in Instruction
	switch strings.ToLower(fields[0]) {
	case "read":
		in.Kind = KindRead
	case "write":
		in.Kind = KindWrite
	case "shift":
		in.Kind = KindShift
	case "not":
		in.Kind = KindNot
	default:
		return Instruction{}, fmt.Errorf("isa: unknown mnemonic %q", fields[0])
	}

	if in.Kind == KindShift {
		// "[array] R[dist]" or "[array] L[dist]"
		var arr int
		rest2, err := takeBracketInt(rest, &arr)
		if err != nil {
			return Instruction{}, err
		}
		in.Array = arr
		rest2 = strings.TrimSpace(rest2)
		if len(rest2) < 2 {
			return Instruction{}, fmt.Errorf("isa: malformed shift %q", line)
		}
		switch rest2[0] {
		case 'R', 'r':
			in.Right = true
		case 'L', 'l':
			in.Right = false
		default:
			return Instruction{}, fmt.Errorf("isa: bad shift direction %q", rest2)
		}
		var dist int
		if _, err := takeBracketInt(rest2[1:], &dist); err != nil {
			return Instruction{}, err
		}
		in.ShiftBy = dist
		if err := in.Validate(); err != nil {
			return Instruction{}, err
		}
		return in, nil
	}

	groups, trailer, err := bracketGroups(rest)
	if err != nil {
		return Instruction{}, err
	}
	need := map[Kind]int{KindRead: 3, KindWrite: 3, KindNot: 2}[in.Kind]
	hasOps := in.Kind == KindRead && len(groups) == 4
	if len(groups) != need && !hasOps {
		return Instruction{}, fmt.Errorf("isa: %v expects %d bracket groups, got %d", in.Kind, need, len(groups))
	}
	if in.Array, err = parseSingleInt(groups[0]); err != nil {
		return Instruction{}, err
	}
	if in.Cols, err = parseIntList(groups[1]); err != nil {
		return Instruction{}, err
	}
	if in.Kind != KindNot {
		if in.Rows, err = parseIntList(groups[2]); err != nil {
			return Instruction{}, err
		}
	}
	if hasOps {
		for _, name := range splitCSV(groups[3]) {
			op, err := logic.ParseOp(name)
			if err != nil {
				return Instruction{}, err
			}
			in.Ops = append(in.Ops, op)
		}
	}
	if in.Kind == KindWrite && strings.HasPrefix(trailer, "@") {
		var src int
		rest2, err := takeBracketInt(trailer[1:], &src)
		if err != nil {
			return Instruction{}, err
		}
		if strings.TrimSpace(rest2) != "" {
			return Instruction{}, fmt.Errorf("isa: trailing garbage %q", rest2)
		}
		in.HasSrcArray, in.SrcArray = true, src
	} else if in.Kind == KindWrite && strings.HasPrefix(trailer, "<") && strings.HasSuffix(trailer, ">") {
		in.Bindings = splitCSV(trailer[1 : len(trailer)-1])
	} else if trailer != "" {
		return Instruction{}, fmt.Errorf("isa: trailing garbage %q", trailer)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

func takeBracketInt(s string, out *int) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") {
		return "", fmt.Errorf("isa: expected '[' in %q", s)
	}
	end := strings.IndexByte(s, ']')
	if end < 0 {
		return "", fmt.Errorf("isa: unterminated bracket in %q", s)
	}
	v, err := strconv.Atoi(strings.TrimSpace(s[1:end]))
	if err != nil {
		return "", fmt.Errorf("isa: bad integer in %q: %v", s[:end+1], err)
	}
	*out = v
	return s[end+1:], nil
}

// bracketGroups splits "[a][b,c][d] rest" into its bracket contents plus
// any trailer.
func bracketGroups(s string) (groups []string, trailer string, err error) {
	s = strings.TrimSpace(s)
	for strings.HasPrefix(s, "[") {
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return nil, "", fmt.Errorf("isa: unterminated bracket in %q", s)
		}
		groups = append(groups, s[1:end])
		s = strings.TrimSpace(s[end+1:])
	}
	return groups, s, nil
}

func parseSingleInt(s string) (int, error) {
	return strconv.Atoi(strings.TrimSpace(s))
}

func parseIntList(s string) ([]int, error) {
	parts := splitCSV(s)
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("isa: bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func splitCSV(s string) []string {
	raw := strings.Split(s, ",")
	out := make([]string, 0, len(raw))
	for _, p := range raw {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Program is an ordered instruction sequence.
type Program []Instruction

// Validate checks every instruction.
func (p Program) Validate() error {
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instruction %d (%s): %w", i, in, err)
		}
	}
	return nil
}

// String renders the program one instruction per line.
func (p Program) String() string {
	var sb strings.Builder
	for _, in := range p {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseProgram decodes a multi-line program; blank lines and lines starting
// with '#' are skipped.
func ParseProgram(text string) (Program, error) {
	var p Program
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		in, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		p = append(p, in)
	}
	return p, nil
}

// Bindings returns the host-write input names the program consumes, in
// first-use order. This is the canonical slot order for bulk execution:
// sim.Predecode assigns input slots by it, and the facade packs batch
// inputs in it.
func (p Program) Bindings() []string {
	seen := make(map[string]bool)
	var names []string
	for _, in := range p {
		for _, b := range in.Bindings {
			if !seen[b] {
				seen[b] = true
				names = append(names, b)
			}
		}
	}
	return names
}

// Stats summarizes a program for reports and the reliability model.
type Stats struct {
	Total      int
	Reads      int // plain row-buffer loads
	CIMReads   int // scouting reads
	Writes     int // row-buffer write-backs
	HostWrites int
	Shifts     int
	Nots       int
	// SenseEvents counts individual column-level sense decisions per
	// (op, activated-row-count) class; this feeds P_app directly.
	SenseEvents map[SenseClass]int
	MaxRows     int // widest multi-row activation used
}

// SenseClass is one (operation, simultaneous rows) reliability class.
type SenseClass struct {
	Op   logic.Op
	Rows int
}

// ComputeStats tallies the program.
func (p Program) ComputeStats() Stats {
	s := Stats{SenseEvents: make(map[SenseClass]int)}
	s.Total = len(p)
	for _, in := range p {
		switch in.Kind {
		case KindRead:
			if in.IsCIMRead() {
				s.CIMReads++
				if len(in.Rows) > s.MaxRows {
					s.MaxRows = len(in.Rows)
				}
				for _, op := range in.Ops {
					s.SenseEvents[SenseClass{Op: op, Rows: len(in.Rows)}]++
				}
			} else {
				s.Reads++
			}
		case KindWrite:
			if in.IsHostWrite() {
				s.HostWrites++
			} else {
				s.Writes++
			}
		case KindShift:
			s.Shifts++
		case KindNot:
			s.Nots++
		}
	}
	return s
}

// SenseClasses returns the stats' sense classes in a stable order.
func (s Stats) SenseClasses() []SenseClass {
	out := make([]SenseClass, 0, len(s.SenseEvents))
	for c := range s.SenseEvents { //sherlock:allow rangemap (sorted below)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Rows < out[j].Rows
	})
	return out
}
