package isa

import (
	"testing"

	"sherlock/internal/logic"
)

func hasRes(rs []Resource, want Resource) bool {
	for _, r := range rs {
		if r == want {
			return true
		}
	}
	return false
}

func TestAccessesCIMRead(t *testing.T) {
	in := Instruction{Kind: KindRead, Array: 1, Cols: []int{2, 5}, Rows: []int{3, 7},
		Ops: []logic.Op{logic.And, logic.Xor}}
	reads, writes := in.Accesses(8)
	if len(reads) != 4 {
		t.Fatalf("reads = %d, want 4 (2 cols x 2 rows)", len(reads))
	}
	for _, c := range []int{2, 5} {
		for _, r := range []int{3, 7} {
			if !hasRes(reads, CellRes(1, c, r)) {
				t.Errorf("missing cell read (%d,%d)", c, r)
			}
		}
		if !hasRes(writes, BufRes(1, c)) {
			t.Errorf("missing buffer write col %d", c)
		}
	}
	if len(writes) != 2 {
		t.Errorf("writes = %d, want 2", len(writes))
	}
}

func TestAccessesWriteVariants(t *testing.T) {
	// Local write-back reads its own buffer.
	wb := Instruction{Kind: KindWrite, Array: 0, Cols: []int{4}, Rows: []int{9}}
	r, w := wb.Accesses(8)
	if !hasRes(r, BufRes(0, 4)) || !hasRes(w, CellRes(0, 4, 9)) {
		t.Error("write-back access sets wrong")
	}
	// Host write reads nothing.
	hw := Instruction{Kind: KindWrite, Array: 0, Cols: []int{4}, Rows: []int{9}, Bindings: []string{"x"}}
	r, w = hw.Accesses(8)
	if len(r) != 0 || !hasRes(w, CellRes(0, 4, 9)) {
		t.Error("host write access sets wrong")
	}
	// Cross-array write reads the source array's buffer.
	xw := Instruction{Kind: KindWrite, Array: 2, Cols: []int{4}, Rows: []int{9}, HasSrcArray: true, SrcArray: 0}
	r, w = xw.Accesses(8)
	if !hasRes(r, BufRes(0, 4)) || !hasRes(w, CellRes(2, 4, 9)) {
		t.Error("cross-array write access sets wrong")
	}
}

func TestAccessesShiftTouchesWholeBuffer(t *testing.T) {
	sh := Instruction{Kind: KindShift, Array: 1, Right: true, ShiftBy: 2}
	r, w := sh.Accesses(5)
	if len(r) != 5 || len(w) != 5 {
		t.Fatalf("shift touches %d/%d bits, want 5/5", len(r), len(w))
	}
	for c := 0; c < 5; c++ {
		if !hasRes(r, BufRes(1, c)) || !hasRes(w, BufRes(1, c)) {
			t.Errorf("shift misses buffer col %d", c)
		}
	}
}

func TestAccessesNot(t *testing.T) {
	n := Instruction{Kind: KindNot, Array: 0, Cols: []int{1, 3}}
	r, w := n.Accesses(8)
	if len(r) != 2 || len(w) != 2 {
		t.Fatal("NOT should read and write exactly its columns")
	}
	if !hasRes(r, BufRes(0, 3)) || !hasRes(w, BufRes(0, 1)) {
		t.Error("NOT access sets wrong")
	}
}

func TestMaxCol(t *testing.T) {
	p := Program{
		{Kind: KindRead, Cols: []int{0}, Rows: []int{0}},
		{Kind: KindWrite, Cols: []int{17}, Rows: []int{0}},
		{Kind: KindShift, ShiftBy: 3},
	}
	if got := p.MaxCol(); got != 18 {
		t.Errorf("MaxCol = %d, want 18", got)
	}
	if got := (Program{}).MaxCol(); got != 0 {
		t.Errorf("empty MaxCol = %d", got)
	}
}
