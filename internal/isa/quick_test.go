package isa

import (
	"math/rand"
	"sort"
	"testing"

	"sherlock/internal/logic"
)

// randomInstruction builds a random *valid* instruction.
func randomInstruction(rng *rand.Rand) Instruction {
	cols := randomSortedUnique(rng, 1+rng.Intn(5), 64)
	switch rng.Intn(4) {
	case 0: // plain or CIM read
		rows := randomSortedUnique(rng, 1+rng.Intn(4), 128)
		in := Instruction{Kind: KindRead, Array: rng.Intn(4), Cols: cols, Rows: rows}
		if len(rows) >= 2 {
			senses := logic.SenseOps()
			in.Ops = make([]logic.Op, len(cols))
			for i := range in.Ops {
				in.Ops[i] = senses[rng.Intn(len(senses))]
			}
		}
		return in
	case 1: // write (host, local, or cross-array)
		in := Instruction{Kind: KindWrite, Array: rng.Intn(4), Cols: cols, Rows: []int{rng.Intn(128)}}
		switch rng.Intn(3) {
		case 0:
			in.Bindings = make([]string, len(cols))
			for i := range in.Bindings {
				in.Bindings[i] = "v" + string(rune('a'+rng.Intn(26)))
			}
		case 1:
			in.HasSrcArray = true
			in.SrcArray = in.Array + 1
		}
		return in
	case 2:
		return Instruction{Kind: KindShift, Array: rng.Intn(4), Right: rng.Intn(2) == 0, ShiftBy: 1 + rng.Intn(32)}
	default:
		return Instruction{Kind: KindNot, Array: rng.Intn(4), Cols: cols}
	}
}

func randomSortedUnique(rng *rand.Rand, n, max int) []int {
	seen := map[int]bool{}
	for len(seen) < n {
		seen[rng.Intn(max)] = true
	}
	out := make([]int, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Property: every valid instruction round-trips through its textual form.
func TestQuickInstructionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		in := randomInstruction(rng)
		if err := in.Validate(); err != nil {
			t.Fatalf("generator produced invalid instruction: %v", err)
		}
		parsed, err := Parse(in.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", in.String(), err)
		}
		if parsed.String() != in.String() {
			t.Fatalf("round trip: %q -> %q", in.String(), parsed.String())
		}
	}
}

// Property: a program's stats are invariant under print/parse.
func TestQuickProgramStatsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		var p Program
		for i := 0; i < 20; i++ {
			p = append(p, randomInstruction(rng))
		}
		p2, err := ParseProgram(p.String())
		if err != nil {
			t.Fatal(err)
		}
		a, b := p.ComputeStats(), p2.ComputeStats()
		if a.Total != b.Total || a.CIMReads != b.CIMReads || a.HostWrites != b.HostWrites ||
			a.Shifts != b.Shifts || a.Nots != b.Nots || a.MaxRows != b.MaxRows {
			t.Fatalf("stats changed across round trip: %+v vs %+v", a, b)
		}
		for class, n := range a.SenseEvents {
			if b.SenseEvents[class] != n {
				t.Fatalf("sense class %v changed", class)
			}
		}
	}
}

// Property: Accesses never returns a resource outside the instruction's
// own arrays, and every written cell matches the instruction's row/cols.
func TestQuickAccessesWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 300; i++ {
		in := randomInstruction(rng)
		reads, writes := in.Accesses(64)
		valid := map[int]bool{in.Array: true}
		if in.HasSrcArray {
			valid[in.SrcArray] = true
		}
		for _, r := range append(reads, writes...) {
			if !valid[r.Array] {
				t.Fatalf("%s touches foreign array %d", in, r.Array)
			}
		}
		if in.Kind == KindWrite {
			for _, w := range writes {
				if w.Kind != ResCell || w.Row != in.Rows[0] {
					t.Fatalf("%s writes unexpected resource %+v", in, w)
				}
			}
		}
	}
}
