package isa

// Resource-level dependence metadata: which cells and row-buffer bits an
// instruction reads and writes. The instruction merger and the parallel
// timing model both build their hazard analysis on these sets.

// ResKind distinguishes the two storage resources.
type ResKind uint8

// Resource kinds.
const (
	ResCell ResKind = iota // a memory cell (array, col, row)
	ResBuf                 // a row-buffer bit (array, col)
)

// Resource identifies one cell or row-buffer bit.
type Resource struct {
	Kind  ResKind
	Array int
	Col   int
	Row   int // cells only
}

// CellRes builds a cell resource.
func CellRes(array, col, row int) Resource {
	return Resource{Kind: ResCell, Array: array, Col: col, Row: row}
}

// BufRes builds a row-buffer bit resource.
func BufRes(array, col int) Resource {
	return Resource{Kind: ResBuf, Array: array, Col: col}
}

// Accesses returns the resources the instruction reads and writes. Shifts
// conservatively touch every row-buffer bit of their array up to bufCols
// columns (the widest column index in use plus one).
func (in Instruction) Accesses(bufCols int) (reads, writes []Resource) {
	switch in.Kind {
	case KindRead:
		for _, c := range in.Cols {
			for _, r := range in.Rows {
				reads = append(reads, CellRes(in.Array, c, r))
			}
			writes = append(writes, BufRes(in.Array, c))
		}
	case KindWrite:
		src := in.Array
		if in.HasSrcArray {
			src = in.SrcArray
		}
		for _, c := range in.Cols {
			if !in.IsHostWrite() {
				reads = append(reads, BufRes(src, c))
			}
			writes = append(writes, CellRes(in.Array, c, in.Rows[0]))
		}
	case KindShift:
		for c := 0; c < bufCols; c++ {
			reads = append(reads, BufRes(in.Array, c))
			writes = append(writes, BufRes(in.Array, c))
		}
	case KindNot:
		for _, c := range in.Cols {
			reads = append(reads, BufRes(in.Array, c))
			writes = append(writes, BufRes(in.Array, c))
		}
	}
	return reads, writes
}

// MaxCol returns the widest column index used by the program plus one (the
// bufCols bound for Accesses).
func (p Program) MaxCol() int {
	max := 0
	for _, in := range p {
		for _, c := range in.Cols {
			if c+1 > max {
				max = c + 1
			}
		}
	}
	return max
}
