package isa

// Resource-level dependence metadata: which cells and row-buffer bits an
// instruction reads and writes. The instruction merger and the parallel
// timing model both build their hazard analysis on these sets.

// ResKind distinguishes the two storage resources.
type ResKind uint8

// Resource kinds.
const (
	ResCell ResKind = iota // a memory cell (array, col, row)
	ResBuf                 // a row-buffer bit (array, col)
)

// Resource identifies one cell or row-buffer bit.
type Resource struct {
	Kind  ResKind
	Array int
	Col   int
	Row   int // cells only
}

// CellRes builds a cell resource.
func CellRes(array, col, row int) Resource {
	return Resource{Kind: ResCell, Array: array, Col: col, Row: row}
}

// BufRes builds a row-buffer bit resource.
func BufRes(array, col int) Resource {
	return Resource{Kind: ResBuf, Array: array, Col: col}
}

// Accesses returns the resources the instruction reads and writes. Shifts
// conservatively touch every row-buffer bit of their array up to bufCols
// columns (the widest column index in use plus one).
func (in Instruction) Accesses(bufCols int) (reads, writes []Resource) {
	return in.AppendAccesses(bufCols, nil, nil)
}

// AppendAccesses appends the instruction's read and written resources to
// the caller-supplied buffers and returns the extended slices. Hazard
// analysis (the instruction merger's level scheduler and the parallel
// timing model) calls this once per instruction with recycled buffers, so
// the steady state allocates nothing.
func (in Instruction) AppendAccesses(bufCols int, reads, writes []Resource) ([]Resource, []Resource) {
	switch in.Kind {
	case KindRead:
		for _, c := range in.Cols {
			for _, r := range in.Rows {
				reads = append(reads, CellRes(in.Array, c, r))
			}
			writes = append(writes, BufRes(in.Array, c))
		}
	case KindWrite:
		src := in.Array
		if in.HasSrcArray {
			src = in.SrcArray
		}
		for _, c := range in.Cols {
			if !in.IsHostWrite() {
				reads = append(reads, BufRes(src, c))
			}
			writes = append(writes, CellRes(in.Array, c, in.Rows[0]))
		}
	case KindShift:
		for c := 0; c < bufCols; c++ {
			reads = append(reads, BufRes(in.Array, c))
			writes = append(writes, BufRes(in.Array, c))
		}
	case KindNot:
		for _, c := range in.Cols {
			reads = append(reads, BufRes(in.Array, c))
			writes = append(writes, BufRes(in.Array, c))
		}
	}
	return reads, writes
}

// Space is the dense resource-ID universe of one program: every cell and
// row-buffer bit the program can touch maps to one int32 in [0, Size()).
// Hazard state (last writer, last readers) then lives in flat arrays
// indexed by ID instead of map[Resource] hash tables. The bounds come from
// the program itself (widest array/column/row index in use), so the space
// tracks the compact region the mapper actually filled, not the full
// fabric.
type Space struct {
	Arrays  int // widest array index used + 1
	BufCols int // widest column index used + 1 (the Accesses bufCols bound)
	Rows    int // widest row index used + 1
}

// ResourceSpace scans the program once and returns its dense ID space.
func (p Program) ResourceSpace() Space {
	s := Space{}
	for i := range p {
		in := &p[i]
		if in.Array+1 > s.Arrays {
			s.Arrays = in.Array + 1
		}
		if in.HasSrcArray && in.SrcArray+1 > s.Arrays {
			s.Arrays = in.SrcArray + 1
		}
		for _, c := range in.Cols {
			if c+1 > s.BufCols {
				s.BufCols = c + 1
			}
		}
		for _, r := range in.Rows {
			if r+1 > s.Rows {
				s.Rows = r + 1
			}
		}
	}
	return s
}

// Clamp bounds the space to a fabric geometry of the given arrays, columns
// and rows. Consumers that size state from a program-derived space
// (sim.Predecode, the static verifier) clamp first so a hostile coordinate
// cannot inflate allocations; the out-of-bounds coordinate itself still
// fails their bounds checks with the machines' exact error.
func (s Space) Clamp(arrays, cols, rows int) Space {
	if s.Arrays > arrays {
		s.Arrays = arrays
	}
	if s.BufCols > cols {
		s.BufCols = cols
	}
	if s.Rows > rows {
		s.Rows = rows
	}
	return s
}

// Size returns the number of distinct resource IDs: one per row-buffer bit
// plus one per cell.
func (s Space) Size() int { return s.Arrays * s.BufCols * (1 + s.Rows) }

// BufID returns the dense ID of a row-buffer bit.
func (s Space) BufID(array, col int) int32 {
	return int32(array*s.BufCols + col)
}

// CellID returns the dense ID of a cell.
func (s Space) CellID(array, col, row int) int32 {
	return int32(s.Arrays*s.BufCols + (array*s.BufCols+col)*s.Rows + row)
}

// ID interns one Resource into the space (the slow, generic path; hot
// loops use AppendAccessIDs instead).
func (s Space) ID(r Resource) int32 {
	if r.Kind == ResBuf {
		return s.BufID(r.Array, r.Col)
	}
	return s.CellID(r.Array, r.Col, r.Row)
}

// AppendAccessIDs appends the dense IDs of the instruction's read and
// written resources to the caller's buffers, mirroring AppendAccesses. The
// instruction must lie inside the space (true by construction when the
// space came from ResourceSpace on the same program).
func (in Instruction) AppendAccessIDs(s Space, reads, writes []int32) ([]int32, []int32) {
	switch in.Kind {
	case KindRead:
		for _, c := range in.Cols {
			for _, r := range in.Rows {
				reads = append(reads, s.CellID(in.Array, c, r))
			}
			writes = append(writes, s.BufID(in.Array, c))
		}
	case KindWrite:
		src := in.Array
		if in.HasSrcArray {
			src = in.SrcArray
		}
		host := in.IsHostWrite()
		for _, c := range in.Cols {
			if !host {
				reads = append(reads, s.BufID(src, c))
			}
			writes = append(writes, s.CellID(in.Array, c, in.Rows[0]))
		}
	case KindShift:
		for c := 0; c < s.BufCols; c++ {
			id := s.BufID(in.Array, c)
			reads = append(reads, id)
			writes = append(writes, id)
		}
	case KindNot:
		for _, c := range in.Cols {
			id := s.BufID(in.Array, c)
			reads = append(reads, id)
			writes = append(writes, id)
		}
	}
	return reads, writes
}

// MaxCol returns the widest column index used by the program plus one (the
// bufCols bound for Accesses).
func (p Program) MaxCol() int {
	max := 0
	for _, in := range p {
		for _, c := range in.Cols {
			if c+1 > max {
				max = c + 1
			}
		}
	}
	return max
}
