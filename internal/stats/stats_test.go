package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); !almost(got, c.want, 1e-4) {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestNormalTailComplement(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, x := range []float64{-5, 0, 3, 7.5} {
		if got := n.CDF(x) + n.TailAbove(x); !almost(got, 1, 1e-12) {
			t.Errorf("CDF+Tail at %g = %g, want 1", x, got)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0.5}
	sum := 0.0
	dx := 0.001
	for x := -4.0; x <= 6.0; x += dx {
		sum += n.PDF(x) * dx
	}
	if !almost(sum, 1, 1e-3) {
		t.Errorf("PDF integral = %g, want 1", sum)
	}
}

func TestLognormalMoments(t *testing.T) {
	l := LognormalFromMoments(6000, 0.05)
	if !almost(l.Mean(), 6000, 1e-6) {
		t.Errorf("Mean = %g, want 6000", l.Mean())
	}
	if !almost(l.StdDev(), 300, 1e-6) {
		t.Errorf("StdDev = %g, want 300", l.StdDev())
	}
}

func TestQuickLognormalMomentsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := 1 + rng.Float64()*1e6
		rel := rng.Float64() * 0.5
		l := LognormalFromMoments(mean, rel)
		return almost(l.Mean(), mean, mean*1e-9) &&
			almost(l.StdDev(), mean*rel, mean*1e-9+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapSymmetricGaussians(t *testing.T) {
	// Equal sigmas: threshold at midpoint, p = Q(d/2sigma).
	lo := Normal{Mu: 0, Sigma: 1}
	hi := Normal{Mu: 4, Sigma: 1}
	p, th := OverlapProbability(lo, hi)
	if !almost(th, 2, 1e-9) {
		t.Errorf("threshold = %g, want 2", th)
	}
	want := 0.5 * math.Erfc(2/math.Sqrt2)
	if !almost(p, want, 1e-12) {
		t.Errorf("p = %g, want %g", p, want)
	}
}

func TestOverlapArgumentOrderIrrelevant(t *testing.T) {
	a := Normal{Mu: 10, Sigma: 2}
	b := Normal{Mu: 3, Sigma: 0.7}
	p1, _ := OverlapProbability(a, b)
	p2, _ := OverlapProbability(b, a)
	if !almost(p1, p2, 1e-15) {
		t.Errorf("overlap depends on argument order: %g vs %g", p1, p2)
	}
}

func TestOverlapShrinksWithSeparation(t *testing.T) {
	prev := 1.0
	for _, d := range []float64{0.5, 1, 2, 4, 8} {
		p, _ := OverlapProbability(Normal{0, 1}, Normal{d, 1})
		if p >= prev {
			t.Errorf("overlap at separation %g = %g, not below %g", d, p, prev)
		}
		prev = p
	}
}

func TestOverlapGrowsWithVariance(t *testing.T) {
	prev := 0.0
	for _, s := range []float64{0.2, 0.5, 1, 2} {
		p, _ := OverlapProbability(Normal{0, s}, Normal{4, s})
		if p <= prev {
			t.Errorf("overlap at sigma %g = %g, not above %g", s, p, prev)
		}
		prev = p
	}
}

func TestOverlapUnequalSigmasThresholdBetweenMeans(t *testing.T) {
	lo := Normal{Mu: 0, Sigma: 0.5}
	hi := Normal{Mu: 5, Sigma: 2}
	p, th := OverlapProbability(lo, hi)
	if th <= lo.Mu || th >= hi.Mu {
		t.Fatalf("threshold %g not between means", th)
	}
	// The optimal threshold should not be worse than the naive midpoint.
	mid := (lo.Mu + hi.Mu) / 2
	naive := 0.5*lo.TailAbove(mid) + 0.5*hi.CDF(mid)
	if p > naive+1e-12 {
		t.Errorf("optimal overlap %g worse than midpoint %g", p, naive)
	}
}

func TestSumOfIID(t *testing.T) {
	d := SumOfIID(10, 2, 4)
	if !almost(d.Mu, 40, 1e-12) || !almost(d.Sigma, 4, 1e-12) {
		t.Errorf("SumOfIID = %+v, want Mu=40 Sigma=4", d)
	}
	z := SumOfIID(10, 2, 0)
	if z.Mu != 0 || z.Sigma <= 0 {
		t.Errorf("SumOfIID n=0 = %+v, want Mu=0 and positive Sigma", z)
	}
}

func TestAddIndependent(t *testing.T) {
	d := AddIndependent(Normal{1, 3}, Normal{2, 4})
	if !almost(d.Mu, 3, 1e-12) || !almost(d.Sigma, 5, 1e-12) {
		t.Errorf("AddIndependent = %+v, want Mu=3 Sigma=5", d)
	}
}

func TestProbAtLeastOne(t *testing.T) {
	if got := ProbAtLeastOne(nil); got != 0 {
		t.Errorf("empty = %g, want 0", got)
	}
	if got := ProbAtLeastOne([]float64{0.5, 0.5}); !almost(got, 0.75, 1e-12) {
		t.Errorf("two halves = %g, want 0.75", got)
	}
	if got := ProbAtLeastOne([]float64{1.0, 1e-9}); got != 1 {
		t.Errorf("with certain event = %g, want 1", got)
	}
	// Tiny probabilities must not underflow to zero.
	ps := make([]float64, 1000)
	for i := range ps {
		ps[i] = 1e-15
	}
	got := ProbAtLeastOne(ps)
	if !almost(got, 1e-12, 1e-14) {
		t.Errorf("1000 x 1e-15 = %g, want ~1e-12", got)
	}
}

func TestProbAtLeastOneWeightedMatchesExpanded(t *testing.T) {
	ps := []float64{1e-3, 5e-4}
	counts := []int{7, 3}
	var expanded []float64
	for i, p := range ps {
		for j := 0; j < counts[i]; j++ {
			expanded = append(expanded, p)
		}
	}
	a := ProbAtLeastOneWeighted(ps, counts)
	b := ProbAtLeastOne(expanded)
	if !almost(a, b, 1e-15) {
		t.Errorf("weighted %g != expanded %g", a, b)
	}
}

func TestQuickProbAtLeastOneBounds(t *testing.T) {
	f := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, r := range raw {
			ps = append(ps, math.Abs(math.Mod(r, 1)))
		}
		p := ProbAtLeastOne(ps)
		if p < 0 || p > 1 {
			return false
		}
		// Monotonicity: adding an event cannot decrease the probability.
		return ProbAtLeastOne(append(ps, 0.1)) >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnInvalidInputs(t *testing.T) {
	for _, f := range []func(){
		func() { Normal{Mu: 0, Sigma: 0}.PDF(1) },
		func() { Normal{Mu: 0, Sigma: -1}.CDF(1) },
		func() { LognormalFromMoments(-1, 0.1) },
		func() { LognormalFromMoments(1, -0.1) },
		func() { SumOfIID(1, 1, -1) },
		func() { ProbAtLeastOne([]float64{-0.5}) },
		func() { ProbAtLeastOneWeighted([]float64{0.1}, []int{1, 2}) },
		func() { ProbAtLeastOneWeighted([]float64{0.1}, []int{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestProbAtLeastOneWeightedCertainEvent(t *testing.T) {
	if got := ProbAtLeastOneWeighted([]float64{1.0}, []int{3}); got != 1 {
		t.Errorf("certain event = %g, want 1", got)
	}
	if got := ProbAtLeastOneWeighted([]float64{1.0}, []int{0}); got != 0 {
		t.Errorf("certain event with zero count = %g, want 0", got)
	}
}

func TestLognormalVariancePositive(t *testing.T) {
	l := LognormalFromMoments(100, 0.2)
	if l.Variance() <= 0 {
		t.Error("variance must be positive")
	}
	if !almost(l.Variance(), l.StdDev()*l.StdDev(), 1e-9) {
		t.Error("variance/stddev inconsistent")
	}
}
