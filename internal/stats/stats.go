// Package stats implements the small statistical toolkit Sherlock needs to
// model decision failures: normal and lognormal distributions, optimal
// threshold placement between two Gaussians, and their overlap (misclassify)
// probability. It replaces the SPICE + statistical post-processing stage of
// the paper's flow.
package stats

import (
	"fmt"
	"math"
)

// Normal is a Gaussian distribution N(Mu, Sigma^2).
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		panic(fmt.Sprintf("stats: non-positive sigma %g", n.Sigma))
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		panic(fmt.Sprintf("stats: non-positive sigma %g", n.Sigma))
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// TailAbove returns P(X > x).
func (n Normal) TailAbove(x float64) float64 {
	return 0.5 * math.Erfc((x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Lognormal is a distribution whose logarithm is N(MuLog, SigmaLog^2).
// NVM cell resistances under process variation are commonly modeled as
// lognormal.
type Lognormal struct {
	MuLog    float64
	SigmaLog float64
}

// LognormalFromMoments builds a lognormal with the given linear-domain mean
// and relative standard deviation (sigma/mean).
func LognormalFromMoments(mean, relSD float64) Lognormal {
	if mean <= 0 || relSD < 0 {
		panic(fmt.Sprintf("stats: invalid lognormal moments mean=%g relSD=%g", mean, relSD))
	}
	v := relSD * relSD // variance / mean^2
	sigma2 := math.Log(1 + v)
	return Lognormal{
		MuLog:    math.Log(mean) - sigma2/2,
		SigmaLog: math.Sqrt(sigma2),
	}
}

// Mean returns the linear-domain mean.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2)
}

// Variance returns the linear-domain variance.
func (l Lognormal) Variance() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return (math.Exp(s2) - 1) * math.Exp(2*l.MuLog+s2)
}

// StdDev returns the linear-domain standard deviation.
func (l Lognormal) StdDev() float64 { return math.Sqrt(l.Variance()) }

// OverlapProbability returns the Bayes-optimal misclassification probability
// when distinguishing two Gaussian classes with equal priors, along with the
// decision threshold used. lo must have the smaller mean. The threshold is
// placed where the two densities cross (restricted to the interval between
// the means, which is the relevant root); the returned probability is
//
//	0.5 * P(lo > t) + 0.5 * P(hi < t).
func OverlapProbability(lo, hi Normal) (p, threshold float64) {
	if lo.Mu > hi.Mu {
		lo, hi = hi, lo
	}
	threshold = gaussianCrossing(lo, hi)
	p = 0.5*lo.TailAbove(threshold) + 0.5*hi.CDF(threshold)
	return p, threshold
}

// gaussianCrossing finds the density crossing point between the two means.
// For equal sigmas this is the midpoint; otherwise it solves the quadratic
// from equating the two log-densities.
func gaussianCrossing(lo, hi Normal) float64 {
	s1, s2 := lo.Sigma, hi.Sigma
	if math.Abs(s1-s2) < 1e-15*(s1+s2) {
		return (lo.Mu + hi.Mu) / 2
	}
	// log f1 = log f2:
	// (x-m1)^2/s1^2 - (x-m2)^2/s2^2 = 2 ln(s2/s1)
	a := 1/(s1*s1) - 1/(s2*s2)
	b := -2 * (lo.Mu/(s1*s1) - hi.Mu/(s2*s2))
	c := lo.Mu*lo.Mu/(s1*s1) - hi.Mu*hi.Mu/(s2*s2) - 2*math.Log(s2/s1)
	disc := b*b - 4*a*c
	if disc < 0 {
		return (lo.Mu + hi.Mu) / 2
	}
	r := math.Sqrt(disc)
	x1 := (-b + r) / (2 * a)
	x2 := (-b - r) / (2 * a)
	// Pick the root lying between the means; fall back to midpoint.
	if lo.Mu <= x1 && x1 <= hi.Mu {
		return x1
	}
	if lo.Mu <= x2 && x2 <= hi.Mu {
		return x2
	}
	return (lo.Mu + hi.Mu) / 2
}

// SumOfIID returns the distribution of the sum of n independent draws with
// the given per-draw mean and standard deviation, using the normal
// approximation (exact for normals; CLT otherwise).
func SumOfIID(mean, sd float64, n int) Normal {
	if n < 0 {
		panic(fmt.Sprintf("stats: negative count %d", n))
	}
	if n == 0 {
		// A degenerate zero contribution: keep a tiny sigma so PDF/CDF
		// remain well defined for callers that add distributions.
		return Normal{Mu: 0, Sigma: 1e-300}
	}
	return Normal{Mu: float64(n) * mean, Sigma: sd * math.Sqrt(float64(n))}
}

// AddIndependent returns the distribution of the sum of two independent
// (approximately) normal variables.
func AddIndependent(a, b Normal) Normal {
	return Normal{Mu: a.Mu + b.Mu, Sigma: math.Hypot(a.Sigma, b.Sigma)}
}

// ProbAtLeastOne returns 1 - prod(1-p_i) computed in a numerically stable
// way via log1p, suitable for very small per-event probabilities. Any p_i
// >= 1 makes the result 1.
func ProbAtLeastOne(ps []float64) float64 {
	sumLog := 0.0
	for _, p := range ps {
		if p >= 1 {
			return 1
		}
		if p < 0 {
			panic(fmt.Sprintf("stats: negative probability %g", p))
		}
		sumLog += math.Log1p(-p)
	}
	return -math.Expm1(sumLog)
}

// ProbAtLeastOneWeighted computes 1 - prod_i (1-p_i)^n_i for event classes
// with multiplicities, stable for tiny p and large n.
func ProbAtLeastOneWeighted(ps []float64, counts []int) float64 {
	if len(ps) != len(counts) {
		panic("stats: ps/counts length mismatch")
	}
	sumLog := 0.0
	for i, p := range ps {
		if counts[i] < 0 {
			panic(fmt.Sprintf("stats: negative count %d", counts[i]))
		}
		if p < 0 {
			panic(fmt.Sprintf("stats: negative probability %g", p))
		}
		if counts[i] == 0 {
			continue // zero occurrences contribute nothing (even at p=1)
		}
		if p >= 1 {
			return 1
		}
		sumLog += float64(counts[i]) * math.Log1p(-p)
	}
	return -math.Expm1(sumLog)
}
