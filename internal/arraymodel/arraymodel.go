// Package arraymodel provides the array-level latency and energy model of
// the target CIM macro — the role NVSim [13] plays in the paper's toolchain.
//
// The model is analytical: word-line/bit-line RC delays scale linearly with
// the array dimension, the decoder logarithmically, and sensing and write
// pulses are technology properties. Energies decompose into a per-activation
// row overhead (decoder + word-line charging, scaling with the array
// dimension) plus per-active-column cell and sense-amplifier energy. The
// constants are calibrated to land in the latency/energy ranges NVSim
// reports for the Table 1 configurations; the scaling *shape* across array
// sizes and technologies is what the experiments rely on.
package arraymodel

import (
	"fmt"
	"math"

	"sherlock/internal/device"
	"sherlock/internal/layout"
)

// Config describes one CIM array configuration (a Table 1 row).
type Config struct {
	Tech device.Technology
	Rows int // m
	Cols int // n
	// DataWidth is the macro's SIMD lane count (bits processed per
	// instruction slot); Table 1 pairs a squared array of dim N with a
	// data width of 4N.
	DataWidth int
}

// DefaultConfig returns the Table 1 configuration for a squared array of
// dimension n (128, 256, 512 or 1024): data width 4n.
func DefaultConfig(tech device.Technology, n int) Config {
	return Config{Tech: tech, Rows: n, Cols: n, DataWidth: 4 * n}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Rows < 2 || c.Cols < 1 {
		return fmt.Errorf("arraymodel: invalid dimensions %dx%d", c.Rows, c.Cols)
	}
	if c.DataWidth < 1 {
		return fmt.Errorf("arraymodel: invalid data width %d", c.DataWidth)
	}
	return nil
}

// Target returns the addressable fabric of `arrays` such macros — the
// geometry bound the mapper, the simulators, and the static verifier all
// check program coordinates against.
func (c Config) Target(arrays int) layout.Target {
	return layout.Target{Arrays: arrays, Rows: c.Rows, Cols: c.Cols}
}

// Technology-dependent timing/energy primitives. Values are representative
// of published device characteristics: STT-MRAM switches in a few ns at
// moderate energy, filamentary ReRAM needs tens-of-ns SET/RESET pulses, PCM
// crystallization is slowest. Sense time follows the conductance margin.
type techCosts struct {
	sensePulseNS float64 // base sense-amplifier resolution time
	writePulseNS float64 // programming pulse
	cellReadPJ   float64 // per activated cell per read
	cellWritePJ  float64 // per written cell
	saPJ         float64 // per sense amplifier firing
}

func costsFor(t device.Technology) techCosts {
	switch t {
	case device.STTMRAM:
		return techCosts{sensePulseNS: 1.0, writePulseNS: 4.0, cellReadPJ: 0.010, cellWritePJ: 0.25, saPJ: 0.012}
	case device.ReRAM:
		return techCosts{sensePulseNS: 2.0, writePulseNS: 42.0, cellReadPJ: 0.030, cellWritePJ: 1.10, saPJ: 0.015}
	case device.PCM:
		return techCosts{sensePulseNS: 2.5, writePulseNS: 120.0, cellReadPJ: 0.030, cellWritePJ: 6.0, saPJ: 0.015}
	}
	panic(fmt.Sprintf("arraymodel: unknown technology %v", t))
}

// Array-geometry scaling constants.
const (
	decodeNSPerLevel = 0.15  // decoder delay per address level (log2 N)
	wireNSPerCell    = 0.004 // word-/bit-line RC per cell along the line
	rowOverheadPJ    = 0.002 // decoder + word-line charge per cell on the row
	shiftNSPerStage  = 0.20  // row-buffer barrel shifter per stage (log2 d)
	shiftPJPerCol    = 0.004 // per column latched through the shifter
	bufferNotNS      = 0.30  // row-buffer CMOS inversion
	bufferNotPJ      = 0.002 // per column inverted
	busNSPerWord     = 1.5   // host <-> array bus transfer per data word
	busPJPerCol      = 0.80  // host bus energy per transferred column bit
)

// CostModel computes per-instruction latency and energy for one array
// configuration.
type CostModel struct {
	cfg   Config
	costs techCosts
}

// New builds a cost model, panicking on invalid configurations (they are
// programmer errors, not runtime conditions).
func New(cfg Config) *CostModel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CostModel{cfg: cfg, costs: costsFor(cfg.Tech)}
}

// Config returns the configuration the model was built for.
func (m *CostModel) Config() Config { return m.cfg }

func (m *CostModel) decodeNS() float64 {
	return decodeNSPerLevel * math.Log2(float64(m.cfg.Rows))
}

func (m *CostModel) wireNS() float64 {
	// One word-line traversal plus one bit-line traversal.
	return wireNSPerCell * float64(m.cfg.Cols+m.cfg.Rows) / 2
}

// ReadNS returns the latency of a (scouting) read activating rows
// simultaneous word lines (1 = plain row-buffer load). Multi-row activation
// adds a small margin-recovery term per extra row: the shrinking sense
// margin needs longer integration.
func (m *CostModel) ReadNS(rows int) float64 {
	if rows < 1 {
		panic(fmt.Sprintf("arraymodel: read with %d rows", rows))
	}
	sense := m.costs.sensePulseNS * (1 + 0.15*float64(rows-1))
	return m.decodeNS() + m.wireNS() + sense
}

// WriteNS returns the latency of writing the row buffer back into one row.
func (m *CostModel) WriteNS() float64 {
	return m.decodeNS() + m.wireNS() + m.costs.writePulseNS
}

// HostWriteNS returns the latency of loading input data from the host bus
// into a row (bus transfer plus programming).
func (m *CostModel) HostWriteNS() float64 {
	return busNSPerWord + m.WriteNS()
}

// ShiftNS returns the latency of rotating the row buffer by dist columns
// through a barrel shifter.
func (m *CostModel) ShiftNS(dist int) float64 {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(dist + 1)))
	return shiftNSPerStage * stages
}

// NotNS returns the latency of the row-buffer CMOS inversion.
func (m *CostModel) NotNS() float64 { return bufferNotNS }

// ReadEnergyPJ returns the energy of a (scouting) read touching activeCols
// columns with rows simultaneously activated word lines.
func (m *CostModel) ReadEnergyPJ(activeCols, rows int) float64 {
	if activeCols < 1 || rows < 1 {
		panic(fmt.Sprintf("arraymodel: read energy with cols=%d rows=%d", activeCols, rows))
	}
	rowOvh := rowOverheadPJ * float64(m.cfg.Cols) * float64(rows)
	cells := m.costs.cellReadPJ * float64(activeCols*rows)
	sas := m.costs.saPJ * float64(activeCols)
	return rowOvh + cells + sas
}

// WriteEnergyPJ returns the energy of programming activeCols cells of one
// row from the row buffer.
func (m *CostModel) WriteEnergyPJ(activeCols int) float64 {
	if activeCols < 1 {
		panic(fmt.Sprintf("arraymodel: write energy with cols=%d", activeCols))
	}
	rowOvh := rowOverheadPJ * float64(m.cfg.Cols)
	return rowOvh + m.costs.cellWritePJ*float64(activeCols)
}

// HostWriteEnergyPJ adds the host-bus transfer energy to a write.
func (m *CostModel) HostWriteEnergyPJ(activeCols int) float64 {
	return busPJPerCol*float64(activeCols) + m.WriteEnergyPJ(activeCols)
}

// ShiftEnergyPJ returns the energy of a row-buffer rotation by dist.
func (m *CostModel) ShiftEnergyPJ(dist int) float64 {
	if dist == 0 {
		return 0
	}
	return shiftPJPerCol * float64(m.cfg.Cols)
}

// NotEnergyPJ returns the energy of inverting activeCols row-buffer bits.
func (m *CostModel) NotEnergyPJ(activeCols int) float64 {
	return bufferNotPJ * float64(activeCols)
}
