package arraymodel

import "sherlock/internal/device"

// Area model — the third quantity NVSim reports alongside latency and
// energy. Cell areas follow the standard F^2 methodology (F = feature
// size): crosspoint ReRAM/PCM cells reach 4F^2, one-transistor STT-MRAM
// cells are transistor-limited; periphery (decoders, sense amplifiers, row
// buffer, drivers) is charged per row and per column.

// Feature size of the Table 1 process (22FDX), in micrometers.
const featureUM = 0.022

type areaCosts struct {
	cellF2 float64 // cell footprint in F^2
}

func areaFor(t device.Technology) areaCosts {
	switch t {
	case device.STTMRAM:
		return areaCosts{cellF2: 30} // 1T-1MTJ, access-transistor limited
	case device.ReRAM:
		return areaCosts{cellF2: 4} // crosspoint
	case device.PCM:
		return areaCosts{cellF2: 4}
	}
	panic("arraymodel: unknown technology")
}

// Periphery constants, in square micrometers.
const (
	rowPeripheryUM2  = 1.1 // wordline driver + decoder slice per row
	colPeripheryUM2  = 2.4 // sense amplifier + reference mux + buffer cell per column
	basePeripheryUM2 = 120 // controller, charge pumps, IO per array
)

// CellAreaUM2 returns one cell's footprint.
func (m *CostModel) CellAreaUM2() float64 {
	return areaFor(m.cfg.Tech).cellF2 * featureUM * featureUM
}

// ArrayAreaUM2 returns the full array's silicon area: the cell matrix plus
// row/column periphery. CIM-capable columns carry the per-column reference
// multiplexer that enables per-column operation selection (Sec. 2.1).
func (m *CostModel) ArrayAreaUM2() float64 {
	matrix := m.CellAreaUM2() * float64(m.cfg.Rows) * float64(m.cfg.Cols)
	periphery := rowPeripheryUM2*float64(m.cfg.Rows) +
		colPeripheryUM2*float64(m.cfg.Cols) +
		basePeripheryUM2
	return matrix + periphery
}

// AreaEfficiency returns the cell matrix's share of the total area (how
// much silicon actually stores/computes).
func (m *CostModel) AreaEfficiency() float64 {
	matrix := m.CellAreaUM2() * float64(m.cfg.Rows) * float64(m.cfg.Cols)
	return matrix / m.ArrayAreaUM2()
}
