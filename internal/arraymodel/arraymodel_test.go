package arraymodel

import (
	"testing"

	"sherlock/internal/device"
)

func TestDefaultConfigTable1(t *testing.T) {
	// Table 1 pairs: 128{512} 256{1024} 512{2048} 1024{4096}.
	for _, n := range []int{128, 256, 512, 1024} {
		c := DefaultConfig(device.ReRAM, n)
		if c.DataWidth != 4*n {
			t.Errorf("data width for %d = %d, want %d", n, c.DataWidth, 4*n)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", n, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Tech: device.ReRAM, Rows: 1, Cols: 8, DataWidth: 8},
		{Tech: device.ReRAM, Rows: 8, Cols: 0, DataWidth: 8},
		{Tech: device.ReRAM, Rows: 8, Cols: 8, DataWidth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestLatencyShapes(t *testing.T) {
	m := New(DefaultConfig(device.STTMRAM, 512))
	if m.WriteNS() <= m.ReadNS(1) {
		t.Error("NVM write must be slower than read")
	}
	if m.ReadNS(4) <= m.ReadNS(2) {
		t.Error("more activated rows must cost sense time")
	}
	if m.ShiftNS(0) != 0 {
		t.Error("zero shift should be free")
	}
	if m.ShiftNS(16) <= m.ShiftNS(1) {
		t.Error("longer shifts need more barrel stages")
	}
	if m.ShiftNS(-4) != m.ShiftNS(4) {
		t.Error("shift latency must be direction-symmetric")
	}
	if m.HostWriteNS() <= m.WriteNS() {
		t.Error("host write includes bus time")
	}
}

func TestLatencyScalesWithArraySize(t *testing.T) {
	small := New(DefaultConfig(device.ReRAM, 128))
	large := New(DefaultConfig(device.ReRAM, 1024))
	if large.ReadNS(2) <= small.ReadNS(2) {
		t.Error("bigger arrays have longer lines: read latency must grow")
	}
	if large.WriteNS() <= small.WriteNS() {
		t.Error("bigger arrays have longer lines: write latency must grow")
	}
}

func TestTechnologyLatencyOrdering(t *testing.T) {
	stt := New(DefaultConfig(device.STTMRAM, 512))
	rer := New(DefaultConfig(device.ReRAM, 512))
	pcm := New(DefaultConfig(device.PCM, 512))
	if !(stt.WriteNS() < rer.WriteNS() && rer.WriteNS() < pcm.WriteNS()) {
		t.Errorf("write latency ordering broken: STT %.1f ReRAM %.1f PCM %.1f",
			stt.WriteNS(), rer.WriteNS(), pcm.WriteNS())
	}
	// The AES rows of Table 2 show ReRAM roughly an order of magnitude
	// slower than STT-MRAM on write-heavy kernels.
	ratio := rer.WriteNS() / stt.WriteNS()
	if ratio < 4 || ratio > 20 {
		t.Errorf("ReRAM/STT write ratio = %.1f, want within [4,20]", ratio)
	}
}

func TestEnergyShapes(t *testing.T) {
	m := New(DefaultConfig(device.ReRAM, 512))
	if m.WriteEnergyPJ(16) <= m.ReadEnergyPJ(16, 1) {
		t.Error("NVM write energy must exceed read energy")
	}
	if m.ReadEnergyPJ(32, 2) <= m.ReadEnergyPJ(16, 2) {
		t.Error("energy must grow with active columns")
	}
	if m.ReadEnergyPJ(16, 4) <= m.ReadEnergyPJ(16, 2) {
		t.Error("energy must grow with activated rows")
	}
	if m.HostWriteEnergyPJ(16) <= m.WriteEnergyPJ(16) {
		t.Error("host write includes bus energy")
	}
	if m.ShiftEnergyPJ(0) != 0 {
		t.Error("zero shift consumes no energy")
	}
	if m.NotEnergyPJ(8) <= 0 {
		t.Error("NOT energy must be positive")
	}
}

func TestPanicsOnInvalidArguments(t *testing.T) {
	m := New(DefaultConfig(device.STTMRAM, 128))
	for _, f := range []func(){
		func() { m.ReadNS(0) },
		func() { m.ReadEnergyPJ(0, 1) },
		func() { m.ReadEnergyPJ(4, 0) },
		func() { m.WriteEnergyPJ(0) },
		func() { New(Config{Tech: device.ReRAM, Rows: 0, Cols: 0, DataWidth: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMagnitudePlausibility(t *testing.T) {
	// Reads a few ns, writes tens of ns, per-instruction energies in the
	// pJ..nJ range — the NVSim ballpark for these geometries.
	m := New(DefaultConfig(device.ReRAM, 1024))
	if r := m.ReadNS(2); r < 1 || r > 20 {
		t.Errorf("ReRAM 1024 scouting read = %.2f ns, want 1..20", r)
	}
	if w := m.WriteNS(); w < 20 || w > 100 {
		t.Errorf("ReRAM 1024 write = %.2f ns, want 20..100", w)
	}
	if e := m.WriteEnergyPJ(512); e < 10 || e > 10000 {
		t.Errorf("ReRAM 1024 write energy = %.2f pJ, want 10..10000", e)
	}
}

func TestAreaModel(t *testing.T) {
	re := New(DefaultConfig(device.ReRAM, 512))
	stt := New(DefaultConfig(device.STTMRAM, 512))
	if stt.CellAreaUM2() <= re.CellAreaUM2() {
		t.Error("1T-1MTJ STT-MRAM cells must be larger than crosspoint ReRAM cells")
	}
	if re.ArrayAreaUM2() <= 0 {
		t.Fatal("non-positive array area")
	}
	// Bigger arrays amortize periphery: efficiency must grow with size.
	small := New(DefaultConfig(device.ReRAM, 128))
	if re.AreaEfficiency() <= small.AreaEfficiency() {
		t.Errorf("area efficiency should grow with array size: %f vs %f",
			re.AreaEfficiency(), small.AreaEfficiency())
	}
	if eff := re.AreaEfficiency(); eff <= 0 || eff >= 1 {
		t.Errorf("efficiency %f outside (0,1)", eff)
	}
	// Sanity of magnitude: a 512x512 crosspoint array at 22 nm is well
	// under a square millimeter.
	if a := re.ArrayAreaUM2(); a > 1e6 {
		t.Errorf("512x512 ReRAM array area %f um^2 implausibly large", a)
	}
}
