package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoSingleflight hammers one Memo from 64 goroutines over 8
// overlapping keys and asserts every key was built exactly once while all
// requesters observed the same value.
func TestMemoSingleflight(t *testing.T) {
	m := New[int, string](Config[string]{})
	var builds [8]atomic.Int64
	const goroutines = 64
	const rounds = 50

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := (g + i) % len(builds)
				v, err := m.Do(key, func() (string, error) {
					builds[key].Add(1)
					return fmt.Sprintf("value-%d", key), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if want := fmt.Sprintf("value-%d", key); v != want {
					errs <- fmt.Errorf("key %d: got %q, want %q", key, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for k := range builds {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want exactly 1", k, n)
		}
	}
	st := m.Stats()
	if st.Misses != int64(len(builds)) {
		t.Errorf("misses = %d, want %d", st.Misses, len(builds))
	}
	if st.Hits+st.Coalesced != goroutines*rounds-int64(len(builds)) {
		t.Errorf("hits(%d)+coalesced(%d) != %d", st.Hits, st.Coalesced, goroutines*rounds-len(builds))
	}
	if st.Entries != int64(len(builds)) || st.Inflight != 0 {
		t.Errorf("entries=%d inflight=%d, want %d and 0", st.Entries, st.Inflight, len(builds))
	}
}

func TestMemoCachesErrors(t *testing.T) {
	m := New[string, int](Config[int]{})
	boom := errors.New("boom")
	var builds int
	for i := 0; i < 3; i++ {
		_, err := m.Do("bad", func() (int, error) { builds++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want %v", i, err, boom)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build ran %d times, want 1 (errors are content-addressed too)", builds)
	}
}

func TestMemoLRUEntries(t *testing.T) {
	m := New[int, int](Config[int]{MaxEntries: 2})
	for k := 0; k < 3; k++ {
		if _, err := m.Do(k, func() (int, error) { return k * 10, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Key 0 is the LRU victim; keys 1 and 2 remain.
	if _, ok := m.Lookup(0); ok {
		t.Error("key 0 should have been evicted")
	}
	for _, k := range []int{1, 2} {
		if v, ok := m.Lookup(k); !ok || v != k*10 {
			t.Errorf("key %d: got (%d,%v), want (%d,true)", k, v, ok, k*10)
		}
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("evictions=%d entries=%d, want 1 and 2", st.Evictions, st.Entries)
	}
	// A rebuilt evicted key runs the build again.
	var rebuilt bool
	if _, err := m.Do(0, func() (int, error) { rebuilt = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Error("evicted key did not rebuild")
	}
}

func TestMemoLRUBytes(t *testing.T) {
	m := New[int, []byte](Config[[]byte]{
		MaxBytes: 100,
		SizeOf:   func(b []byte) int64 { return int64(len(b)) },
	})
	for k := 0; k < 4; k++ {
		m.Do(k, func() ([]byte, error) { return make([]byte, 40), nil })
	}
	st := m.Stats()
	if st.Bytes > 100 {
		t.Errorf("bytes = %d, want <= 100", st.Bytes)
	}
	if st.Entries != 2 || st.Evictions != 2 {
		t.Errorf("entries=%d evictions=%d, want 2 and 2", st.Entries, st.Evictions)
	}
	// One oversized value still caches (never evict down to empty).
	m2 := New[int, []byte](Config[[]byte]{
		MaxBytes: 10,
		SizeOf:   func(b []byte) int64 { return int64(len(b)) },
	})
	m2.Do(0, func() ([]byte, error) { return make([]byte, 50), nil })
	if _, ok := m2.Lookup(0); !ok {
		t.Error("single oversized entry must be retained")
	}
}

// TestMemoRecencyOrder pins that touching an entry protects it from
// eviction: with capacity 2, touching key 0 before inserting key 2 makes
// key 1 the victim.
func TestMemoRecencyOrder(t *testing.T) {
	m := New[int, int](Config[int]{MaxEntries: 2})
	m.Do(0, func() (int, error) { return 0, nil })
	m.Do(1, func() (int, error) { return 1, nil })
	m.Do(0, func() (int, error) { t.Error("key 0 rebuilt"); return 0, nil }) // touch
	m.Do(2, func() (int, error) { return 2, nil })
	if _, ok := m.Lookup(1); ok {
		t.Error("key 1 should have been the LRU victim")
	}
	if _, ok := m.Lookup(0); !ok {
		t.Error("recently touched key 0 was evicted")
	}
}

func TestMemoForget(t *testing.T) {
	m := New[int, int](Config[int]{})
	m.Do(7, func() (int, error) { return 7, nil })
	if !m.Forget(7) {
		t.Fatal("Forget(7) = false, want true")
	}
	if m.Forget(7) {
		t.Fatal("second Forget(7) = true, want false")
	}
	var rebuilt bool
	m.Do(7, func() (int, error) { rebuilt = true; return 7, nil })
	if !rebuilt {
		t.Error("forgotten key did not rebuild")
	}
}

// TestMemoReentrantDo pins that a build may call Do for a different key
// (the experiments.Runner builds transformed graphs from memoized base
// graphs this way).
func TestMemoReentrantDo(t *testing.T) {
	m := New[int, int](Config[int]{})
	v, err := m.Do(1, func() (int, error) {
		base, err := m.Do(0, func() (int, error) { return 40, nil })
		return base + 2, err
	})
	if err != nil || v != 42 {
		t.Fatalf("got (%d,%v), want (42,nil)", v, err)
	}
}
