// Package memo provides the singleflight memoization primitive behind the
// compile-once serve-many architecture: a concurrency-safe, generically
// keyed cache where the first requester of a key builds the value while
// every concurrent requester of the same key blocks on that one build, so
// an expensive computation (a graph build, a mapping, a full compile
// pipeline) runs at most once per unique key per process.
//
// A Memo is optionally bounded: MaxEntries and MaxBytes turn it into an
// LRU — completed entries are tracked in recency order and the
// least-recently-used are dropped when either budget is exceeded. Values
// are immutable from the cache's point of view, so eviction only removes
// the cache's reference: callers already holding a value (including ones
// mid-execution on it) are unaffected, and a later request for the evicted
// key simply rebuilds.
//
// The experiments.Runner and the serve.Registry are both built on this
// type; they were previously two hand-rolled copies of the same pattern.
package memo

import (
	"container/list"
	"sync"
)

// Config bounds a Memo. The zero value is an unbounded cache.
type Config[V any] struct {
	// MaxEntries caps the number of completed entries kept (0 = unbounded).
	MaxEntries int
	// MaxBytes caps the sum of SizeOf over completed entries (0 = unbounded;
	// ignored when SizeOf is nil).
	MaxBytes int64
	// SizeOf estimates a completed value's retained size for the MaxBytes
	// budget. nil sizes every entry as 0.
	SizeOf func(V) int64
}

// Stats is a point-in-time snapshot of a Memo's counters.
type Stats struct {
	Hits      int64 // completed entry found
	Misses    int64 // no entry: this requester ran the build
	Coalesced int64 // entry found mid-build: requester blocked on it (singleflight)
	Evictions int64 // completed entries dropped by the LRU budgets
	Inflight  int64 // builds running right now
	Entries   int64 // completed entries currently held
	Bytes     int64 // SizeOf sum over completed entries
}

// entry is one memoization slot. done/val/err/size are written exactly once
// under the owning Memo's lock before any waiter can observe done==true;
// the once gate serializes build with all waiters.
type entry[V any] struct {
	once sync.Once
	val  V
	err  error
	done bool
	size int64
	elem *list.Element // LRU position; nil until completed (or after eviction)
}

// Memo is the cache. The zero value is not usable; call New.
type Memo[K comparable, V any] struct {
	cfg Config[V]

	mu      sync.Mutex
	entries map[K]*entry[V]
	lru     *list.List // of K, front = most recently used
	stats   Stats
}

// New builds a Memo with the given bounds.
func New[K comparable, V any](cfg Config[V]) *Memo[K, V] {
	return &Memo[K, V]{
		cfg:     cfg,
		entries: make(map[K]*entry[V]),
		lru:     list.New(),
	}
}

// Do returns the memoized value for key, building it with build on the
// first request. Concurrent requesters of the same key block until the one
// build finishes and then share its result (value or error — errors are
// cached too: with content-addressed keys the same input deterministically
// fails the same way). build runs outside the Memo's lock, so builds of
// distinct keys proceed in parallel and build may reentrantly call Do for a
// different key.
func (m *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if ok {
		if e.done {
			m.stats.Hits++
			if e.elem != nil {
				m.lru.MoveToFront(e.elem)
			}
		} else {
			m.stats.Coalesced++
		}
	} else {
		e = new(entry[V])
		m.entries[key] = e
		m.stats.Misses++
	}
	m.mu.Unlock()

	e.once.Do(func() {
		m.mu.Lock()
		m.stats.Inflight++
		m.mu.Unlock()
		val, err := build()
		m.mu.Lock()
		e.val, e.err = val, err
		if m.cfg.SizeOf != nil && err == nil {
			e.size = m.cfg.SizeOf(val)
		}
		e.done = true
		m.stats.Inflight--
		// The entry may have raced with an eviction-then-reinsert only if it
		// was removed from the map; completion of a removed entry must not
		// re-enter the LRU. Still mapped entries join at the front.
		if m.entries[key] == e {
			e.elem = m.lru.PushFront(key)
			m.stats.Entries++
			m.stats.Bytes += e.size
			m.evictLocked()
		}
		m.mu.Unlock()
	})
	return e.val, e.err
}

// Lookup returns the completed value for key without building. In-flight
// builds do not count: Lookup never blocks.
func (m *Memo[K, V]) Lookup(key K) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok || !e.done || e.err != nil {
		var zero V
		return zero, false
	}
	m.stats.Hits++
	if e.elem != nil {
		m.lru.MoveToFront(e.elem)
	}
	return e.val, true
}

// Forget drops the entry for key if present and completed, returning
// whether anything was removed. In-flight builds are left alone (their
// requesters still share one build; the completed value just won't be
// retained if Forget won the race — it will, because Forget only removes
// completed entries).
func (m *Memo[K, V]) Forget(key K) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok || !e.done {
		return false
	}
	m.removeLocked(key, e)
	return true
}

// Stats returns a snapshot of the counters.
func (m *Memo[K, V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// evictLocked enforces the budgets, dropping least-recently-used completed
// entries. Callers hold m.mu.
func (m *Memo[K, V]) evictLocked() {
	for m.overBudgetLocked() {
		back := m.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(K)
		e := m.entries[key]
		m.removeLocked(key, e)
		m.stats.Evictions++
	}
}

func (m *Memo[K, V]) overBudgetLocked() bool {
	if m.cfg.MaxEntries > 0 && m.lru.Len() > m.cfg.MaxEntries {
		return true
	}
	if m.cfg.MaxBytes > 0 && m.stats.Bytes > m.cfg.MaxBytes && m.lru.Len() > 1 {
		// Keep at least one entry even when a single value exceeds the byte
		// budget: an always-empty cache would silently disable singleflight
		// for the very programs that are most expensive to rebuild.
		return true
	}
	return false
}

func (m *Memo[K, V]) removeLocked(key K, e *entry[V]) {
	delete(m.entries, key)
	if e.elem != nil {
		m.lru.Remove(e.elem)
		e.elem = nil
	}
	m.stats.Entries--
	m.stats.Bytes -= e.size
}
