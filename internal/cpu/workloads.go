package cpu

// Trace generators for the three evaluation kernels running on the
// baseline CPU. Each walks the kernel's natural data layout and replays
// its loads, stores and ALU operations through the cost model — the same
// role the gem5 CPU runs play in the paper's Fig. 7.

// Address-space bases keeping the streams apart.
const (
	baseData   = 0x1000_0000
	baseAux    = 0x2000_0000
	baseTables = 0x3000_0000
	baseOut    = 0x4000_0000
)

// RunBitweaving scans `values` codes of `bits` bits with BitWeaving-V: the
// codes are stored vertically (one 64-lane machine word per code bit), and
// the BETWEEN predicate updates four mask registers per bit per word.
func RunBitweaving(h Hierarchy, values, bits int) Cost {
	m := NewModel(h)
	words := (values + 63) / 64
	for w := 0; w < words; w++ {
		for b := 0; b < bits; b++ {
			// Vertical layout: bit plane b is a contiguous word array.
			m.Load(uint64(baseData + (b*words+w)*8))
			// lt/eq1/gt/eq2 updates: ~8 register ops per bit.
			m.ALU(8)
		}
		m.Store(uint64(baseOut + w*8)) // result bit-vector word
	}
	return m.Finish()
}

// RunSobel runs byte-wise Sobel over a width x height 8-bit image,
// streaming row-major with a 3x3 neighborhood per output pixel.
func RunSobel(h Hierarchy, width, height int) Cost {
	m := NewModel(h)
	for y := 1; y < height-1; y++ {
		for x := 1; x < width-1; x++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					m.Load(uint64(baseData + (y+dy)*width + (x + dx)))
				}
			}
			// Gx, Gy accumulation, abs, add, threshold: ~16 ops.
			m.ALU(16)
			m.Store(uint64(baseOut + y*width + x))
		}
	}
	return m.Finish()
}

// RunGateNetwork models one 64-lane bit-sliced pass over an arbitrary
// gate network on the baseline core: each of `gates` gates is two slice
// loads, one ALU op and one slice store over a working set of `operands`
// slice words, with the same strided operand probe RunAES uses (a gate
// mostly reads recent intermediates but regularly reaches back). This is
// the generic per-kernel cost the serving layer's TDO-CIM-style router
// compares against the measured CIM pass latency: any compiled DFG
// summarizes to (gates, operands) without a hand-written trace.
func RunGateNetwork(h Hierarchy, gates, operands int) Cost {
	m := NewModel(h)
	if operands < 1 {
		operands = 1
	}
	for gate := 0; gate < gates; gate++ {
		a := (gate*2 + 17) % operands
		b := (gate*7 + 101) % operands
		out := gate % operands
		m.Load(uint64(baseTables + a*8))
		m.Load(uint64(baseTables + b*8))
		m.ALU(1)
		m.Store(uint64(baseTables + out*8))
	}
	return m.Finish()
}

// RunBitmapScan scans a bitmap-index query plan (AND/OR/NOT over
// `columns` predicate bitmaps, popcount-accumulated COUNT) across `rows`
// rows on the baseline core: the word-at-a-time loop a tuned analytics
// engine runs — one load per column word, one ALU op to fold it, plus a
// popcount-accumulate per result word. The column bitmaps stream from
// DRAM at million-row scale, which is exactly the bulk-bitwise traffic
// CIM keeps in the array.
func RunBitmapScan(h Hierarchy, rows, columns int) Cost {
	m := NewModel(h)
	words := (rows + 63) / 64
	for w := 0; w < words; w++ {
		for c := 0; c < columns; c++ {
			m.Load(uint64(baseData + (c*words+w)*8))
			m.ALU(1) // fold into the match accumulator
		}
		m.ALU(2) // popcount + count accumulate
	}
	return m.Finish()
}

// RunFilterAgg runs the bit-serial filter+aggregate scan on the baseline
// core: `rows` values stored as `valueBits` vertical bit-planes, a range
// predicate folded word-at-a-time over the planes (~2 ALU ops per plane
// word: borrow-chain update per BitWeaving-style comparison), then a
// masked popcount per plane to accumulate SUM.
func RunFilterAgg(h Hierarchy, rows, valueBits int) Cost {
	m := NewModel(h)
	words := (rows + 63) / 64
	for w := 0; w < words; w++ {
		for b := 0; b < valueBits; b++ {
			m.Load(uint64(baseData + (b*words+w)*8))
			m.ALU(2) // predicate borrow-chain update
		}
		for b := 0; b < valueBits; b++ {
			// Masked popcount per plane: the plane word is still L1-hot.
			m.Load(uint64(baseData + (b*words+w)*8))
			m.ALU(3) // mask, popcount, weighted accumulate
		}
	}
	return m.Finish()
}

// RunAES encrypts `blocks` 16-byte blocks with *bit-sliced* software
// AES-128 — the same kernel form the CIM side executes (the paper's flow
// compiles the Usuba bit-sliced implementation for both targets). The CPU
// packs 64 blocks per machine word; each gate of the `gates`-gate network
// is two slice loads, one ALU op and one slice store over a working set of
// `operands` slice words, which for real AES exceeds the L2 and produces
// the memory-bound behaviour CIM sidesteps.
func RunAES(h Hierarchy, blocks, gates, operands int) Cost {
	m := NewModel(h)
	if operands < 1 {
		operands = 1
	}
	batches := (blocks + 63) / 64
	for batch := 0; batch < batches; batch++ {
		// Transpose plaintext into slice form: 128 slice words touched.
		for i := 0; i < 128; i++ {
			m.Load(uint64(baseData + (batch*128+i)*8))
			m.Store(uint64(baseAux + i*8))
			m.ALU(4) // shuffle/interleave steps, amortized
		}
		// Gate network over the slice arrays. Operand indices follow the
		// DFG's creation order: a gate reads recent intermediates most of
		// the time but regularly reaches back (inputs, round keys,
		// ShiftRows renaming), which the strided probe models.
		for gate := 0; gate < gates; gate++ {
			a := (gate*2 + 17) % operands
			b := (gate*7 + 101) % operands
			out := gate % operands
			m.Load(uint64(baseTables + a*8))
			m.Load(uint64(baseTables + b*8))
			m.ALU(1)
			m.Store(uint64(baseTables + out*8))
		}
		// Transpose ciphertext back out.
		for i := 0; i < 128; i++ {
			m.Load(uint64(baseAux + i*8))
			m.Store(uint64(baseOut + (batch*128+i)*8))
			m.ALU(4)
		}
	}
	return m.Finish()
}
