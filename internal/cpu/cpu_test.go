package cpu

import "testing"

func smallCache() CacheConfig {
	return CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 2}
}

func TestCacheConfigValidate(t *testing.T) {
	if err := smallCache().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2}, // not divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(smallCache())
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) {
		t.Error("warm access missed")
	}
	if !c.Access(0x100 + 8) {
		t.Error("same-line access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1024 B, 64 B lines, 2 ways -> 8 sets. Three lines mapping to the
	// same set: the least recently used must be evicted.
	c := NewCache(smallCache())
	setStride := uint64(8 * 64) // same set every 512 bytes
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestCacheCapacityStreaming(t *testing.T) {
	// Streaming through 4x the capacity must miss on every new line.
	c := NewCache(smallCache())
	misses := 0
	for addr := uint64(0); addr < 4096; addr += 64 {
		if !c.Access(addr) {
			misses++
		}
	}
	if misses != 64 {
		t.Errorf("streaming misses = %d, want 64", misses)
	}
}

func TestModelAccounting(t *testing.T) {
	m := NewModel(DefaultHierarchy())
	m.Load(0x1000)
	m.Store(0x1008)
	m.ALU(10)
	cost := m.Finish()
	if cost.Loads != 1 || cost.Stores != 1 || cost.ALUOps != 10 {
		t.Errorf("counts: %+v", cost)
	}
	if cost.Cycles <= 0 || cost.EnergyPJ <= 0 || cost.LatencyNS <= 0 {
		t.Error("non-positive totals")
	}
	if cost.EDP() != cost.EnergyPJ*cost.LatencyNS {
		t.Error("EDP definition drifted")
	}
	// At 1 GHz, latency in ns equals cycles.
	if cost.LatencyNS != cost.Cycles {
		t.Errorf("latency %f != cycles %f at 1 GHz", cost.LatencyNS, cost.Cycles)
	}
}

func TestMissesCostMoreThanHits(t *testing.T) {
	h := DefaultHierarchy()
	hot := NewModel(h)
	for i := 0; i < 1000; i++ {
		hot.Load(0x1000) // same line: hits after first
	}
	cold := NewModel(h)
	for i := 0; i < 1000; i++ {
		cold.Load(uint64(0x1000 + i*4096)) // new line every time
	}
	ch, cc := hot.Finish(), cold.Finish()
	if cc.Cycles <= ch.Cycles*2 {
		t.Errorf("DRAM-bound run (%f cyc) not clearly slower than cache-hot (%f cyc)", cc.Cycles, ch.Cycles)
	}
	if cc.EnergyPJ <= ch.EnergyPJ {
		t.Error("DRAM-bound run must burn more energy")
	}
	if cc.L1DMisses < 900 {
		t.Errorf("expected ~1000 L1D misses, got %d", cc.L1DMisses)
	}
}

func TestWorkloadsScaleWithSize(t *testing.T) {
	h := DefaultHierarchy()
	small := RunBitweaving(h, 64*100, 16)
	large := RunBitweaving(h, 64*1000, 16)
	if large.Cycles < 8*small.Cycles {
		t.Errorf("bitweaving did not scale: %f vs %f", small.Cycles, large.Cycles)
	}
	s1 := RunSobel(h, 66, 66)
	s2 := RunSobel(h, 130, 130)
	if s2.Cycles <= s1.Cycles {
		t.Error("sobel did not scale")
	}
	a1 := RunAES(h, 64, 30000, 32000)
	a2 := RunAES(h, 256, 30000, 32000)
	if a2.Cycles <= a1.Cycles {
		t.Error("AES did not scale")
	}
	b1 := RunBitmapScan(h, 64*1000, 8)
	b2 := RunBitmapScan(h, 64*10000, 8)
	if b2.Cycles < 8*b1.Cycles {
		t.Errorf("bitmap scan did not scale: %f vs %f", b1.Cycles, b2.Cycles)
	}
	f1 := RunFilterAgg(h, 64*1000, 8)
	f2 := RunFilterAgg(h, 64*10000, 8)
	if f2.Cycles < 8*f1.Cycles {
		t.Errorf("filter+agg did not scale: %f vs %f", f1.Cycles, f2.Cycles)
	}
	// The second plane pass of filter+agg re-touches L1-hot words, so it
	// must cost less than two independent column scans of the same size.
	two := RunBitmapScan(h, 64*10000, 16)
	if f2.Cycles >= two.Cycles {
		t.Errorf("filter+agg (%f cycles) should beat two cold scans (%f)", f2.Cycles, two.Cycles)
	}
}

func TestWorkloadCharacteristics(t *testing.T) {
	h := DefaultHierarchy()
	// Bitweaving streams bit planes bigger than L2: many DRAM misses.
	bw := RunBitweaving(h, 64*8192, 16) // 16 planes x 64 KiB = 1 MiB
	if bw.L2Misses == 0 {
		t.Error("large bitweaving scan should spill past L2")
	}
	// Bit-sliced AES streams slice arrays far larger than L1: the hit
	// rate must be visibly below the cache-resident kernels'.
	aes := RunAES(h, 128, 34000, 35000)
	hitRate := float64(aes.L1DHits) / float64(aes.L1DHits+aes.L1DMisses)
	if hitRate > 0.995 {
		t.Errorf("bit-sliced AES L1 hit rate %.4f, want memory-bound behaviour", hitRate)
	}
	if aes.L2Misses == 0 {
		t.Error("bit-sliced AES should spill past L2 (280 KiB of slices)")
	}
	// Sobel has strong spatial reuse: hit rate well above streaming.
	so := RunSobel(h, 258, 258)
	soRate := float64(so.L1DHits) / float64(so.L1DHits+so.L1DMisses)
	if soRate < 0.9 {
		t.Errorf("sobel L1 hit rate %.2f, want >0.9 from 3x3 reuse", soRate)
	}
}

func TestNewModelPanicsOnBadTiming(t *testing.T) {
	h := DefaultHierarchy()
	h.ClockGHz = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewModel(h)
}
