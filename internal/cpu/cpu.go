package cpu

import "fmt"

// Hierarchy is the Table 1 system configuration.
type Hierarchy struct {
	L1I, L1D, L2 CacheConfig
	ClockGHz     float64
	DRAMNS       float64 // miss-to-DRAM latency
}

// DefaultHierarchy returns the paper's setup: in-order core at 1 GHz,
// L1I/L1D/L2 = 16/64/256 KiB at 2/2/20 cycles.
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		L1I:      CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, LatencyCycles: 2},
		L1D:      CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 2},
		L2:       CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 20},
		ClockGHz: 1.0,
		DRAMNS:   100,
	}
}

// Per-event energy constants (pJ), representative of a small in-order core
// in a recent process node.
const (
	aluPJ       = 1.2   // one ALU operation including register file
	fetchPJ     = 1.0   // amortized fetch/decode per instruction (L1I hit)
	l1PJ        = 6.0   // L1 data access
	l2PJ        = 22.0  // L2 access
	dramPJ      = 2600  // DRAM line fetch (64 B)
	staticPJCyc = 120.0 // core + caches: clock tree, leakage, pipeline (~0.12 W at 1 GHz)
)

// Model is a trace-driven in-order CPU cost model. Feed it the kernel's
// dynamic event stream (loads, stores, ALU ops); it accumulates cycles and
// energy through the cache hierarchy.
type Model struct {
	h        Hierarchy
	l1i, l1d *Cache
	l2       *Cache

	cycles float64
	energy float64

	loads, stores, alu int64
	pc                 uint64
}

// NewModel builds a fresh model over the hierarchy.
func NewModel(h Hierarchy) *Model {
	if h.ClockGHz <= 0 || h.DRAMNS <= 0 {
		panic(fmt.Sprintf("cpu: invalid hierarchy timing %+v", h))
	}
	return &Model{
		h:   h,
		l1i: NewCache(h.L1I),
		l1d: NewCache(h.L1D),
		l2:  NewCache(h.L2),
	}
}

// fetch models instruction delivery: a sequential PC stream through L1I.
// Hot loops hit; each executed instruction advances the PC by 4 bytes and
// wraps within the kernel's code footprint.
func (m *Model) fetch() {
	const codeBytes = 4 << 10    // bulk-bitwise kernels are small
	addr := uint64(1)<<40 | m.pc // code segment distinct from data
	m.pc = (m.pc + 4) % codeBytes
	if !m.l1i.Access(addr) {
		m.missPath(addr)
	}
	m.energy += fetchPJ
}

// missPath charges an L1 miss through L2 and possibly DRAM.
func (m *Model) missPath(addr uint64) {
	m.cycles += float64(m.h.L2.LatencyCycles)
	m.energy += l2PJ
	if !m.l2.Access(addr) {
		m.cycles += m.h.DRAMNS * m.h.ClockGHz
		m.energy += dramPJ
	}
}

// Load models one data load of any width up to a cache line.
func (m *Model) Load(addr uint64) {
	m.loads++
	m.fetch()
	m.cycles += float64(m.h.L1D.LatencyCycles)
	m.energy += l1PJ
	if !m.l1d.Access(addr) {
		m.missPath(addr)
	}
}

// Store models one data store.
func (m *Model) Store(addr uint64) {
	m.stores++
	m.fetch()
	m.cycles += float64(m.h.L1D.LatencyCycles)
	m.energy += l1PJ
	if !m.l1d.Access(addr) {
		m.missPath(addr)
	}
}

// ALU models n register-to-register operations (1 cycle each, in order).
func (m *Model) ALU(n int) {
	for i := 0; i < n; i++ {
		m.fetch()
	}
	m.alu += int64(n)
	m.cycles += float64(n)
	m.energy += aluPJ * float64(n)
}

// Cost is the accumulated execution cost.
type Cost struct {
	Cycles    float64
	LatencyNS float64
	EnergyPJ  float64
	Loads     int64
	Stores    int64
	ALUOps    int64
	L1DHits   int64
	L1DMisses int64
	L2Misses  int64
}

// EDP returns the energy-delay product in pJ·ns.
func (c Cost) EDP() float64 { return c.EnergyPJ * c.LatencyNS }

// Finish adds static energy and returns the totals.
func (m *Model) Finish() Cost {
	energy := m.energy + staticPJCyc*m.cycles
	return Cost{
		Cycles:    m.cycles,
		LatencyNS: m.cycles / m.h.ClockGHz,
		EnergyPJ:  energy,
		Loads:     m.loads,
		Stores:    m.stores,
		ALUOps:    m.alu,
		L1DHits:   m.l1d.Hits(),
		L1DMisses: m.l1d.Misses(),
		L2Misses:  m.l2.Misses(),
	}
}
