// Package cpu models the baseline system of the paper's Fig. 7 comparison:
// an in-order X86-class core at 1 GHz with the Table 1 cache hierarchy
// (L1I/L1D/L2 of 16/64/256 KiB at 2/2/20 cycles), backed by DRAM. It
// replaces the gem5 CPU simulation with a trace-driven model: workload
// kernels generate their memory access streams, a set-associative LRU
// cache hierarchy classifies them, and cycle/energy costs accumulate.
package cpu

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes     int
	LineBytes     int
	Ways          int
	LatencyCycles int
}

// Validate rejects impossible geometries.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 || c.LatencyCycles < 0 {
		return fmt.Errorf("cpu: invalid cache config %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cpu: size %d not divisible by line*ways", c.SizeBytes)
	}
	return nil
}

// Cache is a set-associative LRU cache over 64-bit byte addresses.
type Cache struct {
	cfg    CacheConfig
	sets   int
	tags   [][]uint64 // [set][way], most recently used first
	valid  [][]bool
	hits   int64
	misses int64
}

// NewCache builds an empty cache; it panics on invalid configs (these are
// programmer errors in experiment setup).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
	}
	return c
}

// Access looks up the address, updating LRU state and filling on miss.
// It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.cfg.LineBytes)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	ways := c.tags[set]
	vals := c.valid[set]
	for w := 0; w < c.cfg.Ways; w++ {
		if vals[w] && ways[w] == tag {
			// Move to MRU position.
			copy(ways[1:w+1], ways[:w])
			copy(vals[1:w+1], vals[:w])
			ways[0], vals[0] = tag, true
			c.hits++
			return true
		}
	}
	// Miss: evict LRU (last way).
	copy(ways[1:], ways[:c.cfg.Ways-1])
	copy(vals[1:], vals[:c.cfg.Ways-1])
	ways[0], vals[0] = tag, true
	c.misses++
	return false
}

// Hits and Misses report access counts.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports the number of missed accesses.
func (c *Cache) Misses() int64 { return c.misses }
