// Package logic defines the bulk-bitwise operation vocabulary shared by the
// DFG, the instruction set, the device reliability model, and the simulator.
//
// The target system (Sec. 2.1 of the paper) evaluates column-wise logic via
// scouting reads: (N)AND, (N)OR and X(N)OR are sensed by comparing the
// bit-line resistance of simultaneously activated rows against one or more
// reference resistances. NOT and COPY are implemented in the row buffer /
// by row cloning with CMOS circuitry and never touch a sense reference.
package logic

import "fmt"

// Op identifies a logic operation.
type Op int

// The operation vocabulary. Zero value is Invalid so that accidentally
// uninitialized ops are caught by Valid().
const (
	Invalid Op = iota
	And
	Or
	Xor
	Nand
	Nor
	Xnor
	Not  // row-buffer inversion, single operand
	Copy // row clone, single operand
)

var opNames = map[Op]string{
	And:  "AND",
	Or:   "OR",
	Xor:  "XOR",
	Nand: "NAND",
	Nor:  "NOR",
	Xnor: "XNOR",
	Not:  "NOT",
	Copy: "COPY",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, s := range opNames {
		m[s] = op
	}
	return m
}()

// String returns the canonical upper-case mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp converts a mnemonic (as printed by String) back to an Op.
func ParseOp(s string) (Op, error) {
	if op, ok := opByName[s]; ok {
		return op, nil
	}
	return Invalid, fmt.Errorf("logic: unknown operation %q", s)
}

// Valid reports whether o is one of the defined operations.
func (o Op) Valid() bool { _, ok := opNames[o]; return ok }

// IsSense reports whether o is realized by a scouting read (multi-row
// activation and sense-amplifier decision), i.e. whether it contributes to
// decision-failure probability. NOT and COPY are CMOS row-buffer operations.
func (o Op) IsSense() bool {
	switch o {
	case And, Or, Xor, Nand, Nor, Xnor:
		return true
	}
	return false
}

// IsUnary reports whether o takes exactly one operand.
func (o Op) IsUnary() bool { return o == Not || o == Copy }

// Associative reports whether chains of o can be flattened into a single
// multi-operand node (the node-substitution transform of Sec. 3.3.3).
// AND/OR extend trivially; XOR extends to multi-input parity, which the
// array senses with multiple references. The inverting forms do not compose
// by flattening (NAND(NAND(a,b),c) != NAND(a,b,c)).
func (o Op) Associative() bool {
	switch o {
	case And, Or, Xor:
		return true
	}
	return false
}

// Inverse returns the complementary operation (AND<->NAND etc.) and whether
// one exists.
func (o Op) Inverse() (Op, bool) {
	switch o {
	case And:
		return Nand, true
	case Nand:
		return And, true
	case Or:
		return Nor, true
	case Nor:
		return Or, true
	case Xor:
		return Xnor, true
	case Xnor:
		return Xor, true
	case Not:
		return Copy, true
	case Copy:
		return Not, true
	}
	return Invalid, false
}

// Eval computes o over the given operand bits. It panics on arity
// violations: unary ops require exactly one operand, sense ops at least two.
func (o Op) Eval(bits ...bool) bool {
	switch o {
	case Not:
		requireArity(o, len(bits), 1)
		return !bits[0]
	case Copy:
		requireArity(o, len(bits), 1)
		return bits[0]
	}
	if len(bits) < 2 {
		panic(fmt.Sprintf("logic: %v requires at least 2 operands, got %d", o, len(bits)))
	}
	switch o {
	case And, Nand:
		acc := true
		for _, b := range bits {
			acc = acc && b
		}
		return acc != (o == Nand)
	case Or, Nor:
		acc := false
		for _, b := range bits {
			acc = acc || b
		}
		return acc != (o == Nor)
	case Xor, Xnor:
		acc := false
		for _, b := range bits {
			acc = acc != b
		}
		return acc != (o == Xnor)
	}
	panic(fmt.Sprintf("logic: Eval of invalid op %v", o))
}

// EvalWords is the SWAR form of Eval: bit l of the result is o applied to
// bit l of every operand word, so one call evaluates 64 independent lanes.
// Arity rules match Eval. Callers holding fewer than 64 live lanes mask the
// result themselves (the inverting forms set the dead high bits).
func (o Op) EvalWords(words ...uint64) uint64 {
	switch o {
	case Not:
		requireArity(o, len(words), 1)
		return ^words[0]
	case Copy:
		requireArity(o, len(words), 1)
		return words[0]
	}
	if len(words) < 2 {
		panic(fmt.Sprintf("logic: %v requires at least 2 operands, got %d", o, len(words)))
	}
	var acc uint64
	switch o {
	case And, Nand:
		acc = ^uint64(0)
		for _, w := range words {
			acc &= w
		}
		if o == Nand {
			acc = ^acc
		}
		return acc
	case Or, Nor:
		for _, w := range words {
			acc |= w
		}
		if o == Nor {
			acc = ^acc
		}
		return acc
	case Xor, Xnor:
		for _, w := range words {
			acc ^= w
		}
		if o == Xnor {
			acc = ^acc
		}
		return acc
	}
	panic(fmt.Sprintf("logic: EvalWords of invalid op %v", o))
}

func requireArity(o Op, got, want int) {
	if got != want {
		panic(fmt.Sprintf("logic: %v requires exactly %d operand, got %d", o, want, got))
	}
}

// SenseOps lists every operation realized through scouting reads, in a
// stable order (useful for tables and sweeps).
func SenseOps() []Op { return []Op{And, Nand, Or, Nor, Xor, Xnor} }
