package logic

import (
	"testing"
	"testing/quick"
)

func TestStringParseRoundTrip(t *testing.T) {
	for _, op := range []Op{And, Or, Xor, Nand, Nor, Xnor, Not, Copy} {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%v): %v", op, err)
		}
		if got != op {
			t.Errorf("round trip %v -> %v", op, got)
		}
	}
	if _, err := ParseOp("FROB"); err == nil {
		t.Error("ParseOp accepted unknown mnemonic")
	}
	if Invalid.Valid() {
		t.Error("Invalid reported Valid")
	}
}

func TestEvalTruthTables(t *testing.T) {
	cases := []struct {
		op   Op
		a, b bool
		want bool
	}{
		{And, true, true, true}, {And, true, false, false},
		{Or, false, false, false}, {Or, true, false, true},
		{Xor, true, true, false}, {Xor, true, false, true},
		{Nand, true, true, false}, {Nand, false, false, true},
		{Nor, false, false, true}, {Nor, true, false, false},
		{Xnor, true, true, true}, {Xnor, true, false, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if Not.Eval(true) || !Not.Eval(false) {
		t.Error("NOT truth table wrong")
	}
	if !Copy.Eval(true) || Copy.Eval(false) {
		t.Error("COPY truth table wrong")
	}
}

func TestEvalMultiOperand(t *testing.T) {
	if And.Eval(true, true, true, false) {
		t.Error("AND4 with a zero returned true")
	}
	if !Or.Eval(false, false, true, false) {
		t.Error("OR4 with a one returned false")
	}
	if !Xor.Eval(true, true, true) {
		t.Error("XOR3 parity of three ones should be true")
	}
	if Xor.Eval(true, true, true, true) {
		t.Error("XOR4 parity of four ones should be false")
	}
}

func TestEvalArityPanics(t *testing.T) {
	for _, c := range []struct {
		op   Op
		bits []bool
	}{
		{Not, []bool{true, false}},
		{Copy, nil},
		{And, []bool{true}},
		{Invalid, []bool{true, false}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.Eval(%v) did not panic", c.op, c.bits)
				}
			}()
			c.op.Eval(c.bits...)
		}()
	}
}

func TestInverse(t *testing.T) {
	for _, op := range []Op{And, Or, Xor, Nand, Nor, Xnor, Not, Copy} {
		inv, ok := op.Inverse()
		if !ok {
			t.Fatalf("%v has no inverse", op)
		}
		back, ok := inv.Inverse()
		if !ok || back != op {
			t.Errorf("inverse of inverse of %v = %v", op, back)
		}
	}
	if _, ok := Invalid.Inverse(); ok {
		t.Error("Invalid has an inverse")
	}
}

// Property: an op and its inverse always disagree.
func TestQuickInversePairsDisagree(t *testing.T) {
	f := func(a, b, c bool) bool {
		for _, op := range []Op{And, Or, Xor} {
			inv, _ := op.Inverse()
			if op.Eval(a, b, c) == inv.Eval(a, b, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: associative ops flatten correctly, the basis for the
// node-substitution transform.
func TestQuickAssociativeFlattening(t *testing.T) {
	f := func(a, b, c, d bool) bool {
		for _, op := range []Op{And, Or, Xor} {
			if !op.Associative() {
				return false
			}
			nested := op.Eval(op.Eval(a, b), c, d)
			flat := op.Eval(a, b, c, d)
			if nested != flat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSenseClassification(t *testing.T) {
	for _, op := range SenseOps() {
		if !op.IsSense() {
			t.Errorf("%v should be a sense op", op)
		}
	}
	for _, op := range []Op{Not, Copy} {
		if op.IsSense() {
			t.Errorf("%v should not be a sense op", op)
		}
		if !op.IsUnary() {
			t.Errorf("%v should be unary", op)
		}
	}
	if Nand.Associative() {
		t.Error("NAND must not be flattenable")
	}
}

// TestEvalWordsMatchesEval checks the word-wide fold against the scalar
// truth table on every bit position: packing random operand bits into
// words and evaluating once must equal 64 scalar evaluations.
func TestEvalWordsMatchesEval(t *testing.T) {
	f := func(a, b, c uint64) bool {
		for _, op := range SenseOps() {
			w := op.EvalWords(a, b, c)
			for l := 0; l < 64; l++ {
				sa, sb, sc := a>>uint(l)&1 == 1, b>>uint(l)&1 == 1, c>>uint(l)&1 == 1
				if w>>uint(l)&1 == 1 != op.Eval(sa, sb, sc) {
					return false
				}
			}
		}
		if Not.EvalWords(a) != ^a || Copy.EvalWords(a) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalWordsArityPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"sense op with one operand", func() { And.EvalWords(1) }},
		{"unary op with two operands", func() { Not.EvalWords(1, 2) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
