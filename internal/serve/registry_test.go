package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sherlock"
)

func TestKeyDeterminismAndSeparation(t *testing.T) {
	opts := testOptions()
	k1 := KeySource(kMux, opts)
	k2 := KeySource(kMux, opts)
	if k1 != k2 {
		t.Fatal("same source and options hashed to different keys")
	}
	if KeySource(kStage, opts) == k1 {
		t.Fatal("different sources hashed to the same key")
	}
	bigger := opts
	bigger.ArraySize = 256
	if KeySource(kMux, bigger) == k1 {
		t.Fatal("different array geometry hashed to the same key")
	}
	naive := opts
	naive.Mapper = sherlock.MapperNaive
	if KeySource(kMux, naive) == k1 {
		t.Fatal("different mapper hashed to the same key")
	}

	// Normalization: spelled-out defaults and zero-value defaults are the
	// same program.
	zero := sherlock.Options{Tech: sherlock.ReRAM}
	explicit := sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 512, Arrays: 4}
	if KeySource(kMux, zero) != KeySource(kMux, explicit) {
		t.Fatal("normalized options hashed differently from explicit defaults")
	}

	if _, err := ParseKey(k1.String()); err != nil {
		t.Fatalf("round-tripping key text: %v", err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

func TestKeyGraphMatchesUse(t *testing.T) {
	build := func() *sherlock.Graph {
		b := sherlock.NewBuilder()
		x := b.Input("a")
		y := b.Input("b")
		b.Output("out", b.Xor(b.And(x, y), b.Or(x, y)))
		return b.Graph()
	}
	opts := testOptions()
	if KeyGraph(build(), opts) != KeyGraph(build(), opts) {
		t.Fatal("identical graphs hashed to different keys")
	}
	b := sherlock.NewBuilder()
	b.Output("out", b.Xor(b.Input("a"), b.Input("b")))
	if KeyGraph(b.Graph(), opts) == KeyGraph(build(), opts) {
		t.Fatal("different graphs hashed to the same key")
	}
}

// TestRegistrySingleflightHammer drives 64 goroutines at the registry with
// heavily overlapping keys and asserts each unique program compiled exactly
// once (misses == unique keys, everything else a hit or a coalesced wait),
// with every requester receiving the same resident entry.
func TestRegistrySingleflightHammer(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	kernels := testKernels()
	opts := testOptions()

	const goroutines = 64
	const perG = 8
	entries := make([][]*Entry, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			for i := 0; i < perG; i++ {
				src := kernels[rng.Intn(len(kernels))]
				e, err := reg.CompileC(src, opts)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", gi, err)
					return
				}
				entries[gi] = append(entries[gi], e)
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every goroutine that asked for a kernel must hold the same *Entry —
	// singleflight means one compile's result is shared, never duplicated.
	byKey := make(map[Key]*Entry)
	total := 0
	for _, got := range entries {
		total += len(got)
		for _, e := range got {
			if prev, ok := byKey[e.Key]; ok && prev != e {
				t.Fatalf("key %s resolved to two distinct entries", e.Key)
			}
			byKey[e.Key] = e
		}
	}
	st := reg.Stats()
	if int(st.Misses) != len(byKey) {
		t.Fatalf("misses = %d, want exactly one compile per unique key (%d)", st.Misses, len(byKey))
	}
	if got := int(st.Hits + st.Coalesced + st.Misses); got != total {
		t.Fatalf("hits+coalesced+misses = %d, want %d requests", got, total)
	}
	if int(st.Entries) != len(byKey) {
		t.Fatalf("resident entries = %d, want %d", st.Entries, len(byKey))
	}
}

// TestRegistryHitMissDeterminism pins that the hit path, the miss path,
// and a recompile after eviction all produce bit-identical outputs.
func TestRegistryHitMissDeterminism(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	opts := testOptions()
	rng := rand.New(rand.NewSource(7))

	miss, err := reg.CompileC(kStage, opts)
	if err != nil {
		t.Fatal(err)
	}
	batch := randBatch(rng, miss.InputNames, 100)
	in, lanes := packWords(miss.InputNames, batch)
	want, err := miss.Compiled.RunBatchWords(in, lanes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	hit, err := reg.CompileC(kStage, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit != miss {
		t.Fatal("hit returned a different entry than the original compile")
	}
	got, err := hit.Compiled.RunBatchWords(in, lanes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "hit path", got, want)

	if !reg.Forget(miss.Key) {
		t.Fatal("Forget missed a resident key")
	}
	if _, ok := reg.Lookup(miss.Key); ok {
		t.Fatal("key still resident after Forget")
	}
	again, err := reg.CompileC(kStage, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again == miss {
		t.Fatal("recompile after eviction returned the evicted pointer without compiling")
	}
	got2, err := again.Compiled.RunBatchWords(in, lanes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "recompile path", got2, want)
}

// TestRegistryEvictionDuringExecution keeps one goroutine executing an
// entry while churning the registry hard enough to evict it many times
// over: entries are immutable, so the in-flight executions must keep
// producing correct outputs throughout.
func TestRegistryEvictionDuringExecution(t *testing.T) {
	reg := NewRegistry(RegistryConfig{MaxPrograms: 1})
	opts := testOptions()
	victim, err := reg.CompileC(kMaj, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	batch := randBatch(rng, victim.InputNames, 130)
	in, lanes := packWords(victim.InputNames, batch)
	want, err := victim.Compiled.RunBatchWords(in, lanes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	execErr := make(chan error, 1)
	go func() {
		defer close(execErr)
		var out []uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			out, err = victim.Compiled.RunBatchWords(in, lanes, out, 0)
			if err != nil {
				execErr <- err
				return
			}
			for i := range out {
				if out[i] != want[i] {
					execErr <- fmt.Errorf("in-flight output diverged at word %d after eviction", i)
					return
				}
			}
		}
	}()

	// Churn: each distinct kernel compile evicts the previous resident.
	// kMaj itself stays out of the churn set so the victim's key cannot
	// come back.
	kernels := []string{kMux, kStage, kParity}
	for round := 0; round < 6; round++ {
		for _, src := range kernels {
			if _, err := reg.CompileC(src, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	if err := <-execErr; err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Entries != 1 {
		t.Fatalf("MaxPrograms=1 registry holds %d entries", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	if _, ok := reg.Lookup(victim.Key); ok {
		t.Fatal("victim still resident after churn past capacity")
	}
}

func TestRegistryErrorCached(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	const bad = `void broken(word a, word *out) { *out = a & ; }`
	if _, err := reg.CompileC(bad, testOptions()); err == nil {
		t.Fatal("compile of malformed kernel succeeded")
	}
	if _, err := reg.CompileC(bad, testOptions()); err == nil {
		t.Fatal("cached error path returned success")
	}
	st := reg.Stats()
	if st.Misses != 1 {
		t.Fatalf("failed compile ran %d times, want the error cached after 1", st.Misses)
	}
}
