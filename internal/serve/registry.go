package serve

import (
	"sync"

	"sherlock"
	"sherlock/internal/cpu"
	"sherlock/internal/dfg"
	"sherlock/internal/memo"
)

// laneCap is the lane capacity of one pooled executor pass
// (sim.DefaultBlockWords * 64); the coalescer's default flush threshold
// and the router's CIM amortization unit.
const laneCap = 256

// RegistryConfig bounds the registry.
type RegistryConfig struct {
	// MaxPrograms caps how many compiled programs stay resident
	// (0 = unbounded).
	MaxPrograms int
	// MaxBytes caps the estimated retained size of resident programs
	// (0 = unbounded). Estimates count instruction streams and decoded
	// executors, not exact heap bytes.
	MaxBytes int64
}

// Registry is the content-addressed compile cache: Key → *Entry with
// singleflight population (concurrent requesters of one key share a single
// compile) and LRU + size-bounded eviction. Entries are immutable once
// built; eviction drops only the registry's reference, so an evicted
// program that is still executing somewhere finishes unharmed and a later
// request simply recompiles.
type Registry struct {
	memo *memo.Memo[Key, *Entry]
}

// NewRegistry builds a registry with the given bounds.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{
		memo: memo.New[Key, *Entry](memo.Config[*Entry]{
			MaxEntries: cfg.MaxPrograms,
			MaxBytes:   cfg.MaxBytes,
			SizeOf:     func(e *Entry) int64 { return e.sizeEstimate },
		}),
	}
}

// CompileC resolves (source, options) through the registry: a content hit
// returns the resident program without touching the compile pipeline; a
// miss compiles once, however many requesters are waiting on the key.
func (r *Registry) CompileC(src string, opts sherlock.Options) (*Entry, error) {
	key := KeySource(src, opts)
	return r.memo.Do(key, func() (*Entry, error) {
		c, err := sherlock.CompileC(src, opts)
		if err != nil {
			return nil, err
		}
		return newEntry(key, c), nil
	})
}

// CompileGraph is CompileC for programmatically built DFGs.
func (r *Registry) CompileGraph(g *sherlock.Graph, opts sherlock.Options) (*Entry, error) {
	key := KeyGraph(g, opts)
	return r.memo.Do(key, func() (*Entry, error) {
		c, err := sherlock.CompileGraph(g, opts)
		if err != nil {
			return nil, err
		}
		return newEntry(key, c), nil
	})
}

// Lookup returns the resident entry for a key without compiling anything
// (the serve-by-key path: callers that compiled earlier hold the Key).
func (r *Registry) Lookup(key Key) (*Entry, bool) {
	return r.memo.Lookup(key)
}

// Forget drops a key if resident.
func (r *Registry) Forget(key Key) bool { return r.memo.Forget(key) }

// Stats snapshots the registry counters (hits, misses, singleflight
// coalescing, evictions, residency).
func (r *Registry) Stats() memo.Stats { return r.memo.Stats() }

// Entry is one resident compiled program plus the serving metadata that
// every request would otherwise recompute: resolved input/output orders,
// the CPU-backend input wiring, and the router's per-entry cost estimates.
// All fields are immutable after construction; Entry is safe for
// unbounded concurrent use.
type Entry struct {
	Key      Key
	Compiled *sherlock.Compiled

	// InputNames is the packed-block slot order (program binding order);
	// OutputNames the readout row order. Read-only.
	InputNames  []string
	OutputNames []string

	sizeEstimate int64

	// graphInSlots wires the CPU backend: packed-block slot index of each
	// dfg input, in Graph.Inputs() order. cpuOK is false when some graph
	// input has no binding slot (the mapper folded it away), in which case
	// only the CIM backend can serve the entry.
	graphInSlots []int
	cpuOK        bool

	// Lazily measured routing costs (see router.go).
	routeOnce sync.Once
	route     routeCosts
	routeErr  error

	evals sync.Pool // *dfg.WordEvaluator for the CPU backend

	// The entry's coalescer rides along with it: when the registry evicts
	// the entry, the queue goes too (after any in-flight flush completes —
	// both only reference immutable state). Built by the owning Service.
	coalOnce sync.Once
	coal     *Coalescer
}

func newEntry(key Key, c *sherlock.Compiled) *Entry {
	e := &Entry{
		Key:         key,
		Compiled:    c,
		InputNames:  c.InputNames(),
		OutputNames: c.OutputNames(),
	}
	slot := make(map[string]int, len(e.InputNames))
	for i, name := range e.InputNames {
		slot[name] = i
	}
	ins := c.Graph.Inputs()
	e.graphInSlots = make([]int, len(ins))
	e.cpuOK = true
	for i, in := range ins {
		s, ok := slot[c.Graph.Name(in)]
		if !ok {
			e.cpuOK = false
			s = -1
		}
		e.graphInSlots[i] = s
	}
	e.sizeEstimate = estimateSize(c)
	return e
}

// Instructions returns the emitted program length (a stable size metric
// for responses and logs).
func (e *Entry) Instructions() int { return len(e.Compiled.Program) }

// estimateSize approximates an entry's retained footprint for the
// MaxBytes budget: the instruction stream (header + cols/rows/ops slices)
// plus a matching allowance for the pre-decoded executor, which scales
// with the same totals.
func estimateSize(c *sherlock.Compiled) int64 {
	const instrHeader = 96 // struct + slice headers, rounded up
	size := int64(len(c.Program)) * instrHeader
	for i := range c.Program {
		in := &c.Program[i]
		size += int64(len(in.Cols)+len(in.Rows))*8 + int64(len(in.Ops))
		for _, b := range in.Bindings {
			size += int64(len(b)) + 16
		}
	}
	// Decoded micro-ops mirror the instruction stream's shape.
	return 2 * size
}

// evaluator borrows a pooled golden-model word evaluator (CPU backend).
func (e *Entry) evaluator() *dfg.WordEvaluator {
	if v := e.evals.Get(); v != nil {
		return v.(*dfg.WordEvaluator)
	}
	return dfg.NewWordEvaluator(e.Compiled.Graph)
}

// hierarchyFor keeps the router's CPU model parameters in one place.
func hierarchyFor(h cpu.Hierarchy) cpu.Hierarchy {
	if h.ClockGHz == 0 {
		return cpu.DefaultHierarchy()
	}
	return h
}
