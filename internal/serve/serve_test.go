package serve

// Shared test kernels and packing helpers. The four kernels are distinct
// programs (different sources → different content addresses) small enough
// to compile in milliseconds, which is what the mixed-traffic tests and
// the load generator want.

import (
	"math/rand"
	"testing"

	"sherlock"
)

const (
	kMux    = `void mux(word s, word a, word b, word *out) { *out = (s & a) | (~s & b); }`
	kStage  = `void stage(word v, word m, word cin, word *sum, word *cout) { word x = v & m; *sum = x ^ cin; *cout = x & cin; }`
	kParity = `void par(word a, word b, word c, word d, word *p) { *p = (a ^ b) ^ (c ^ d); }`
	kMaj    = `void maj(word a, word b, word c, word *out) { *out = (a & b) | (b & c) | (a & c); }`
)

func testKernels() []string { return []string{kMux, kStage, kParity, kMaj} }

func testOptions() sherlock.Options {
	return sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128, Mapper: sherlock.MapperOptimized}
}

// randBatch builds n random input vectors for the entry's bindings.
func randBatch(rng *rand.Rand, names []string, n int) []map[string]bool {
	batch := make([]map[string]bool, n)
	for i := range batch {
		vec := make(map[string]bool, len(names))
		for _, name := range names {
			vec[name] = rng.Intn(2) == 1
		}
		batch[i] = vec
	}
	return batch
}

// packWords packs a map batch into the slot-major RunBatchWords layout.
func packWords(names []string, batch []map[string]bool) ([]uint64, int) {
	lanes := len(batch)
	W := laneWords(lanes)
	in := make([]uint64, len(names)*W)
	for l, vec := range batch {
		for s, name := range names {
			if vec[name] {
				in[s*W+l/64] |= uint64(1) << uint(l%64)
			}
		}
	}
	return in, lanes
}

// wordsEqual compares two packed output blocks lane-for-lane.
func checkWordsEqual(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d words, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: word %d: got %#x, want %#x", label, i, got[i], want[i])
		}
	}
}

func mustCompile(t testing.TB, src string) *Entry {
	t.Helper()
	reg := NewRegistry(RegistryConfig{})
	e, err := reg.CompileC(src, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}
