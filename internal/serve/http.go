package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"sherlock"
)

// The HTTP front door. Endpoints (all JSON):
//
//	POST /v1/compile  {source, options}            → {key, cached, instructions, inputs, outputs}
//	POST /v1/run      {key | source+options, batch[, backend]}
//	                                               → {backend, outputs}
//	GET  /v1/stats                                 → service counters
//	GET  /healthz                                  → "ok"
//
// A run request may carry either the key of an earlier compile (the
// steady-state shape: clients compile once, then stream run calls against
// the content address) or an inline source+options, which compiles through
// the registry first — identical sources dedupe to the same program.

// wireOptions is the JSON form of sherlock.Options.
type wireOptions struct {
	Tech               string  `json:"tech,omitempty"`
	ArraySize          int     `json:"arraySize,omitempty"`
	Arrays             int     `json:"arrays,omitempty"`
	Mapper             string  `json:"mapper,omitempty"`
	MultiRowActivation bool    `json:"multiRowActivation,omitempty"`
	MRAFraction        float64 `json:"mraFraction,omitempty"`
	NANDLowering       bool    `json:"nandLowering,omitempty"`
	RecycleRows        bool    `json:"recycleRows,omitempty"`
	WearLeveling       bool    `json:"wearLeveling,omitempty"`
	VerifyEmitted      bool    `json:"verifyEmitted,omitempty"`
}

func (w wireOptions) toOptions() (sherlock.Options, error) {
	opts := sherlock.Options{
		ArraySize:          w.ArraySize,
		Arrays:             w.Arrays,
		MultiRowActivation: w.MultiRowActivation,
		MRAFraction:        w.MRAFraction,
		NANDLowering:       w.NANDLowering,
		RecycleRows:        w.RecycleRows,
		WearLeveling:       w.WearLeveling,
		VerifyEmitted:      w.VerifyEmitted,
	}
	switch strings.ToLower(w.Tech) {
	case "", "sttmram", "stt-mram", "stt":
		opts.Tech = sherlock.STTMRAM
	case "reram":
		opts.Tech = sherlock.ReRAM
	case "pcm":
		opts.Tech = sherlock.PCM
	default:
		return opts, fmt.Errorf("unknown tech %q (want sttmram, reram or pcm)", w.Tech)
	}
	switch strings.ToLower(w.Mapper) {
	case "", "optimized", "opt":
		opts.Mapper = sherlock.MapperOptimized
	case "naive":
		opts.Mapper = sherlock.MapperNaive
	default:
		return opts, fmt.Errorf("unknown mapper %q (want naive or optimized)", w.Mapper)
	}
	return opts, nil
}

type compileRequest struct {
	Source  string      `json:"source"`
	Options wireOptions `json:"options"`
}

type compileResponse struct {
	Key          string   `json:"key"`
	Cached       bool     `json:"cached"`
	Instructions int      `json:"instructions"`
	Inputs       []string `json:"inputs"`
	Outputs      []string `json:"outputs"`
}

type runRequest struct {
	Key     string            `json:"key,omitempty"`
	Source  string            `json:"source,omitempty"`
	Options wireOptions       `json:"options"`
	Backend string            `json:"backend,omitempty"`
	Batch   []map[string]bool `json:"batch"`
}

type runResponse struct {
	Key     string            `json:"key"`
	Backend string            `json:"backend"`
	Outputs []map[string]bool `json:"outputs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler wires the service's HTTP surface.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		var req compileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Source == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing source"))
			return
		}
		opts, err := req.Options.toOptions()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		_, cached := s.Lookup(KeySource(req.Source, opts))
		e, err := s.CompileC(req.Source, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, compileResponse{
			Key:          e.Key.String(),
			Cached:       cached,
			Instructions: e.Instructions(),
			Inputs:       e.InputNames,
			Outputs:      e.OutputNames,
		})
	})

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		force, err := ParseBackend(req.Backend)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var e *Entry
		switch {
		case req.Key != "":
			key, err := ParseKey(req.Key)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			var ok bool
			if e, ok = s.Lookup(key); !ok {
				writeError(w, http.StatusNotFound,
					fmt.Errorf("unknown key %s (evicted or never compiled here — re-send source)", req.Key))
				return
			}
		case req.Source != "":
			opts, err := req.Options.toOptions()
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if e, err = s.CompileC(req.Source, opts); err != nil {
				writeError(w, http.StatusUnprocessableEntity, err)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, errors.New("need key or source"))
			return
		}
		if len(req.Batch) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("empty batch"))
			return
		}
		outs, backend, err := s.Run(e, req.Batch, force)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, runResponse{
			Key:     e.Key.String(),
			Backend: backend.String(),
			Outputs: outs,
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
