package serve

import (
	"math/rand"
	"testing"

	"sherlock/internal/cpu"
)

// TestRouterAutoCrossover pins the TDO-CIM-shaped decision surface: a small
// kernel at a handful of lanes is cheaper on the host (one bit-sliced pass
// beats an array pass), but at a full 256-lane pass the array amortizes one
// pass over 4x the lanes the CPU packs per slice, and CIM wins.
func TestRouterAutoCrossover(t *testing.T) {
	r := NewRouter(cpu.Hierarchy{})
	e := mustCompile(t, kMux)
	small, err := r.Route(e, 8, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if small.Backend != BackendCPU {
		t.Fatalf("8 lanes of a 4-gate kernel routed to %s (cim %.0fns, cpu %.0fns)",
			small.Backend, small.CIMNS, small.CPUNS)
	}
	full, err := r.Route(e, 256, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if full.Backend != BackendCIM {
		t.Fatalf("a full 256-lane pass routed to %s (cim %.0fns, cpu %.0fns)",
			full.Backend, full.CIMNS, full.CPUNS)
	}
	// Cost scaling: CIM is per-pass (ceil lanes/256), CPU per lane word.
	two, err := r.Route(e, 257, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if two.CIMNS != 2*full.CIMNS {
		t.Fatalf("257 lanes cost %.0fns CIM, want two passes = %.0fns", two.CIMNS, 2*full.CIMNS)
	}
	if small.CPUNS*5 != r1(t, r, e, 300).CPUNS {
		t.Fatalf("300 lanes cost %.0fns CPU, want 5 slices = %.0fns",
			r1(t, r, e, 300).CPUNS, small.CPUNS*5)
	}
}

func r1(t *testing.T, r *Router, e *Entry, lanes int) Decision {
	t.Helper()
	d, err := r.Route(e, lanes, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouterForcedModes(t *testing.T) {
	r := NewRouter(cpu.Hierarchy{})
	e := mustCompile(t, kMux)
	if d := mustRoute(t, r, e, 8, BackendCIM); d.Backend != BackendCIM {
		t.Fatalf("forced CIM routed to %s", d.Backend)
	}
	if d := mustRoute(t, r, e, 256, BackendCPU); d.Backend != BackendCPU {
		t.Fatalf("forced CPU routed to %s", d.Backend)
	}
}

func mustRoute(t *testing.T, r *Router, e *Entry, lanes int, force Backend) Decision {
	t.Helper()
	d, err := r.Route(e, lanes, force)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRouterCPUFallback: an entry the CPU backend cannot serve (a graph
// input without a binding slot) routes to CIM even when CPU is forced, and
// runCPU refuses it outright.
func TestRouterCPUFallback(t *testing.T) {
	r := NewRouter(cpu.Hierarchy{})
	e := mustCompile(t, kMux)
	e.cpuOK = false
	if d := mustRoute(t, r, e, 8, BackendCPU); d.Backend != BackendCIM {
		t.Fatalf("forced CPU on a CIM-only entry routed to %s, want the CIM fallback", d.Backend)
	}
	if _, err := runCPU(e, make([]uint64, len(e.InputNames)), 8, nil); err == nil {
		t.Fatal("runCPU served a CIM-only entry")
	}
}

// TestCPUBackendBitIdentical is the cross-backend differential: the host
// bit-sliced evaluation must produce exactly the packed block the CIM
// executor produces, dead lanes included.
func TestCPUBackendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, src := range testKernels() {
		e := mustCompile(t, src)
		for _, lanes := range []int{1, 63, 64, 65, 100} {
			batch := randBatch(rng, e.InputNames, lanes)
			in, _ := packWords(e.InputNames, batch)
			want, err := e.Compiled.RunBatchWords(in, lanes, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := runCPU(e, in, lanes, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkWordsEqual(t, "cpu vs cim", got, want)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{"": BackendAuto, "auto": BackendAuto, "cim": BackendCIM, "cpu": BackendCPU} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBackend("gpu"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
}
