package serve

import (
	"fmt"
	"sync"
	"time"

	"sherlock"
	"sherlock/internal/pool"
)

// Coalescer is the admission queue in front of one compiled program: small
// concurrent requests accumulate in a bounded batch window and execute as
// one merged lane block, so a million 8-to-32-vector calls amortize into
// full 256-lane executor passes instead of fragmenting into under-filled
// ones. A batch flushes when the pending lane count reaches MaxBatchLanes
// (size trigger) or when the window timer expires after the first pending
// request (time trigger), whichever comes first. Requests larger than the
// batch threshold bypass the queue entirely — they already fill their own
// passes; bulk requests at or above StreamMinLanes skip batching AND
// buffering and run through the facade's chunked streaming pipeline
// (Compiled.RunStream machinery), whose per-shard machine pipelines beat
// a single materializing RunBatchWords pass on large blocks.
//
// Merging is bit-exact: each caller's lanes pack contiguously (bit-shifted,
// not word-aligned) into the merged block and demux back out, so outputs
// are bit-identical to the caller running its request alone, whatever the
// batch composition — the differential tests pin this at every word edge.
type Coalescer struct {
	c      *sherlock.Compiled
	numIn  int
	numOut int

	maxLanes    int
	streamMin   int
	window      time.Duration
	parallelism int
	limiter     *pool.Limiter

	streamer     *sherlock.Streamer // under mu; nil until first bulk request
	streamClosed bool               // under mu; Close or failed setup

	mu           sync.Mutex
	pending      []*pendingReq
	pendingLanes int
	gen          uint64 // batch generation: a timer only flushes its own
	timer        *time.Timer
	stats        CoalescerStats

	scratch sync.Pool // *flushScratch
}

// CoalescerStats counts one coalescer's traffic.
type CoalescerStats struct {
	Requests     int64 // admitted requests
	Lanes        int64 // admitted lanes (vectors)
	Flushes      int64 // merged batches executed
	SizeFlushes  int64 // flushed by the lane threshold
	TimerFlushes int64 // flushed by the window timer
	DirectRuns   int64 // oversized requests that bypassed the queue
	StreamRuns   int64 // bulk requests served by the streaming pipeline
	MaxBatch     int64 // largest merged batch, in lanes
}

type pendingReq struct {
	in    []uint64 // caller's slot-major block, stride laneWords(lanes)
	lanes int
	out   []uint64 // filled before done is signalled
	done  chan error
}

type flushScratch struct {
	in  []uint64
	out []uint64
}

// CoalescerConfig parameterizes NewCoalescer.
type CoalescerConfig struct {
	// MaxBatchLanes is the size flush trigger (default laneCap = 256, one
	// full executor pass).
	MaxBatchLanes int
	// Window bounds how long the first request of a batch may wait for
	// company (default 200µs). Zero selects the default; a negative window
	// disables the timer — batches then flush only on size or Flush(),
	// which is what the deterministic tests use.
	Window time.Duration
	// Parallelism is handed to RunBatchWords for multi-group batches.
	Parallelism int
	// Limiter, when non-nil, bounds concurrent executor passes across all
	// coalescers sharing it.
	Limiter *pool.Limiter
	// StreamMinLanes is the bulk-request threshold: direct requests of at
	// least this many lanes run through the chunked streaming pipeline
	// instead of one materializing RunBatchWords pass. 0 selects the
	// default (DefaultStreamMinLanes); negative disables streaming.
	StreamMinLanes int
}

// DefaultStreamMinLanes is the default streaming threshold: 16 full
// 256-lane executor passes, where pipeline overlap clearly pays for the
// chunk bookkeeping.
const DefaultStreamMinLanes = 4096

// NewCoalescer builds a coalescer over a compiled program.
func NewCoalescer(c *sherlock.Compiled, cfg CoalescerConfig) *Coalescer {
	if cfg.MaxBatchLanes <= 0 {
		cfg.MaxBatchLanes = laneCap
	}
	if cfg.Window == 0 {
		cfg.Window = 200 * time.Microsecond
	}
	if cfg.StreamMinLanes == 0 {
		cfg.StreamMinLanes = DefaultStreamMinLanes
	}
	return &Coalescer{
		c:           c,
		numIn:       len(c.InputNames()),
		numOut:      len(c.OutputNames()),
		maxLanes:    cfg.MaxBatchLanes,
		streamMin:   cfg.StreamMinLanes,
		window:      cfg.Window,
		parallelism: cfg.Parallelism,
		limiter:     cfg.Limiter,
	}
}

// Close releases the streaming pipeline's goroutines, if one was built.
// The coalescer itself remains usable — later bulk requests fall back to
// the batch path.
func (q *Coalescer) Close() {
	q.mu.Lock()
	s := q.streamer
	q.streamer, q.streamClosed = nil, true
	q.mu.Unlock()
	if s != nil {
		s.Close() // waits out any in-flight streamed run
	}
}

// streamerFor lazily builds the shared streaming pipeline. A nil return
// means streaming is unavailable (closed, or setup failed) and the caller
// should use the batch path.
func (q *Coalescer) streamerFor() *sherlock.Streamer {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.streamClosed {
		return nil
	}
	if q.streamer == nil {
		s, err := q.c.NewStreamer(sherlock.StreamOptions{Parallelism: q.parallelism})
		if err != nil {
			q.streamClosed = true
			return nil
		}
		q.streamer = s
	}
	return q.streamer
}

// Submit runs lanes packed input vectors (RunBatchWords layout, stride
// laneWords(lanes)) through the shared batch pipeline and blocks until the
// result is in: out (allocated if too small) holds the caller's own
// outputs, demuxed from whatever merged pass served them. Malformed
// requests fail here, before joining a batch — admission is where errors
// are attributed to the caller that caused them.
func (q *Coalescer) Submit(in []uint64, lanes int, out []uint64) ([]uint64, error) {
	if lanes <= 0 {
		return nil, fmt.Errorf("serve: submit of %d lanes", lanes)
	}
	W := laneWords(lanes)
	if len(in) < q.numIn*W {
		return nil, fmt.Errorf("serve: input block has %d words, need %d (%d inputs x %d lane words)",
			len(in), q.numIn*W, q.numIn, W)
	}
	need := q.numOut * W
	if cap(out) < need {
		out = make([]uint64, need)
	} else {
		out = out[:need]
	}

	if lanes >= q.maxLanes {
		// Already fills its own pass(es): run directly, no window latency.
		q.mu.Lock()
		q.stats.Requests++
		q.stats.Lanes += int64(lanes)
		q.stats.DirectRuns++
		q.mu.Unlock()
		return q.runDirect(in, lanes, out)
	}

	req := &pendingReq{in: in, lanes: lanes, out: out, done: make(chan error, 1)}
	q.mu.Lock()
	q.stats.Requests++
	q.stats.Lanes += int64(lanes)
	q.pending = append(q.pending, req)
	q.pendingLanes += lanes
	if q.pendingLanes >= q.maxLanes {
		batch, lanes := q.takeLocked()
		q.stats.SizeFlushes++
		q.mu.Unlock()
		q.flushBatch(batch, lanes)
	} else {
		if len(q.pending) == 1 && q.window > 0 {
			gen := q.gen
			q.timer = time.AfterFunc(q.window, func() { q.flushGen(gen) })
		}
		q.mu.Unlock()
	}
	if err := <-req.done; err != nil {
		return nil, err
	}
	return req.out, nil
}

// PendingLanes reports the lanes currently waiting in the window (tests
// and load probes).
func (q *Coalescer) PendingLanes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pendingLanes
}

// Stats snapshots the coalescer's counters.
func (q *Coalescer) Stats() CoalescerStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Flush forces the current batch out immediately (shutdown, tests).
func (q *Coalescer) Flush() {
	q.mu.Lock()
	batch, lanes := q.takeLocked()
	q.mu.Unlock()
	q.flushBatch(batch, lanes)
}

// flushGen is the timer path: it flushes only if the batch it was armed
// for is still the current one (a size flush in between bumped the
// generation and took the batch with it).
func (q *Coalescer) flushGen(gen uint64) {
	q.mu.Lock()
	if q.gen != gen {
		q.mu.Unlock()
		return
	}
	batch, lanes := q.takeLocked()
	if batch != nil {
		q.stats.TimerFlushes++
	}
	q.mu.Unlock()
	q.flushBatch(batch, lanes)
}

// takeLocked claims the pending batch. Callers hold q.mu.
func (q *Coalescer) takeLocked() ([]*pendingReq, int) {
	batch, lanes := q.pending, q.pendingLanes
	if lanes > int(q.stats.MaxBatch) {
		q.stats.MaxBatch = int64(lanes)
	}
	q.pending, q.pendingLanes = nil, 0
	q.gen++
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	if batch != nil {
		q.stats.Flushes++
	}
	return batch, lanes
}

// flushBatch merges the batch into one packed block, executes it, and
// demuxes each caller's lanes back into its own buffer.
func (q *Coalescer) flushBatch(batch []*pendingReq, total int) {
	if len(batch) == 0 {
		return
	}
	W := laneWords(total)
	s, _ := q.scratch.Get().(*flushScratch)
	if s == nil {
		s = &flushScratch{}
	}
	if cap(s.in) < q.numIn*W {
		s.in = make([]uint64, q.numIn*W)
	}
	in := s.in[:q.numIn*W]
	clear(in)

	off := 0
	for _, req := range batch {
		reqW := laneWords(req.lanes)
		for slot := 0; slot < q.numIn; slot++ {
			orShifted(in[slot*W:(slot+1)*W], off, req.in[slot*reqW:slot*reqW+reqW], req.lanes)
		}
		off += req.lanes
	}

	q.limiter.Acquire()
	out, err := q.c.RunBatchWords(in, total, s.out, q.parallelism)
	q.limiter.Release()
	if err != nil {
		// Admission already screened per-caller mistakes; what reaches here
		// is a program-wide failure, which every waiter must see.
		for _, req := range batch {
			req.done <- err
		}
		q.scratch.Put(s)
		return
	}
	s.out = out

	off = 0
	for _, req := range batch {
		reqW := laneWords(req.lanes)
		for o := 0; o < q.numOut; o++ {
			extractShifted(req.out[o*reqW:o*reqW+reqW], out[o*W:(o+1)*W], off, req.lanes)
		}
		off += req.lanes
		req.done <- nil
	}
	q.scratch.Put(s)
}

// runDirect executes an oversized request without merging. Bulk requests
// (>= StreamMinLanes) go through the chunked streaming pipeline with a
// bitmap sink writing straight into the caller's buffer — bit-identical
// to the batch path, pinned by the serve differential tests. If the
// pipeline is unavailable (closed mid-shutdown, setup failure), the
// request falls back to one materializing RunBatchWords pass.
func (q *Coalescer) runDirect(in []uint64, lanes int, out []uint64) ([]uint64, error) {
	if q.streamMin > 0 && lanes >= q.streamMin {
		if s := q.streamerFor(); s != nil {
			sink := sherlock.BitmapSink{Out: out}
			q.limiter.Acquire()
			err := s.Run(in, lanes, &sink)
			q.limiter.Release()
			if err == nil {
				q.mu.Lock()
				q.stats.StreamRuns++
				q.mu.Unlock()
				return sink.Out, nil
			}
			// Closed under us: fall through to the batch path.
		}
	}
	q.limiter.Acquire()
	defer q.limiter.Release()
	return q.c.RunBatchWords(in, lanes, out, q.parallelism)
}

// laneWords is W, the word stride of a packed block of `lanes` lanes.
func laneWords(lanes int) int { return (lanes + 63) / 64 }

// orShifted ORs the low `lanes` bits of src into dst starting at bit
// offset bitOff. Bits of src's last word beyond `lanes` are garbage by
// contract and are masked off so they cannot leak into a neighbouring
// request's lanes.
func orShifted(dst []uint64, bitOff int, src []uint64, lanes int) {
	n := laneWords(lanes)
	rem := lanes % 64
	for i := 0; i < n; i++ {
		w := src[i]
		if i == n-1 && rem != 0 {
			w &= uint64(1)<<uint(rem) - 1
		}
		pos := bitOff + i*64
		lo, sh := pos/64, uint(pos%64)
		dst[lo] |= w << sh
		if sh != 0 && lo+1 < len(dst) {
			dst[lo+1] |= w >> (64 - sh)
		}
	}
}

// extractShifted copies `lanes` bits starting at bit offset bitOff of src
// into dst's low bits, masking dst's final word to the live lanes.
func extractShifted(dst []uint64, src []uint64, bitOff, lanes int) {
	n := laneWords(lanes)
	base, sh := bitOff/64, uint(bitOff%64)
	for i := 0; i < n; i++ {
		w := src[base+i] >> sh
		if sh != 0 && base+i+1 < len(src) {
			w |= src[base+i+1] << (64 - sh)
		}
		dst[i] = w
	}
	if rem := lanes % 64; rem != 0 {
		dst[n-1] &= uint64(1)<<uint(rem) - 1
	}
}
