package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// splitLanes deterministically splits total lanes into request-sized chunks
// (1..maxChunk), covering ragged word boundaries.
func splitLanes(rng *rand.Rand, total, maxChunk int) []int {
	var chunks []int
	for total > 0 {
		n := 1 + rng.Intn(maxChunk)
		if n > total {
			n = total
		}
		chunks = append(chunks, n)
		total -= n
	}
	return chunks
}

// TestCoalesceBitIdenticalAtWindowEdges is the differential test the issue
// asks for: at every interesting pending-lane count (word edges and the
// full-pass boundary), concurrent requests merged through the coalescer
// must return exactly the bits each caller would get running alone.
func TestCoalesceBitIdenticalAtWindowEdges(t *testing.T) {
	e := mustCompile(t, kStage)
	for _, total := range []int{1, 63, 64, 65, 255, 256} {
		t.Run(fmt.Sprintf("lanes=%d", total), func(t *testing.T) {
			// Timer disabled, size trigger out of reach: the batch flushes
			// only when we say so, making composition deterministic.
			q := NewCoalescer(e.Compiled, CoalescerConfig{MaxBatchLanes: 4096, Window: -1})
			rng := rand.New(rand.NewSource(int64(total)))
			chunks := splitLanes(rng, total, 32)

			type result struct {
				got, want []uint64
				err       error
			}
			results := make([]result, len(chunks))
			var wg sync.WaitGroup
			for ci, lanes := range chunks {
				batch := randBatch(rng, e.InputNames, lanes)
				in, _ := packWords(e.InputNames, batch)
				want, err := e.Compiled.RunBatchWords(in, lanes, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				results[ci].want = want
				wg.Add(1)
				go func(ci, lanes int, in []uint64) {
					defer wg.Done()
					results[ci].got, results[ci].err = q.Submit(in, lanes, nil)
				}(ci, lanes, in)
			}

			// Wait until every request joined the window, then flush once.
			for q.PendingLanes() < total {
				time.Sleep(50 * time.Microsecond)
			}
			q.Flush()
			wg.Wait()

			for ci := range results {
				if results[ci].err != nil {
					t.Fatalf("chunk %d: %v", ci, results[ci].err)
				}
				checkWordsEqual(t, fmt.Sprintf("chunk %d (%d lanes)", ci, chunks[ci]),
					results[ci].got, results[ci].want)
			}
			st := q.Stats()
			if st.Flushes != 1 {
				t.Fatalf("flushes = %d, want the whole composition in 1 merged pass", st.Flushes)
			}
			if st.MaxBatch != int64(total) {
				t.Fatalf("max batch = %d lanes, want %d", st.MaxBatch, total)
			}
			if int(st.Requests) != len(chunks) || st.Lanes != int64(total) {
				t.Fatalf("stats admitted %d requests / %d lanes, want %d / %d",
					st.Requests, st.Lanes, len(chunks), total)
			}
		})
	}
}

// TestCoalesceSizeTrigger fills the window to exactly the lane threshold
// and expects an automatic flush with no timer involved.
func TestCoalesceSizeTrigger(t *testing.T) {
	e := mustCompile(t, kMux)
	q := NewCoalescer(e.Compiled, CoalescerConfig{MaxBatchLanes: 256, Window: -1})
	rng := rand.New(rand.NewSource(3))

	const requests = 8 // 8 x 32 lanes = 256 = threshold
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		batch := randBatch(rng, e.InputNames, 32)
		in, _ := packWords(e.InputNames, batch)
		want, err := e.Compiled.RunBatchWords(in, 32, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(in, want []uint64) {
			defer wg.Done()
			got, err := q.Submit(in, 32, nil)
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Errorf("coalesced output diverged at word %d", i)
					return
				}
			}
		}(in, want)
	}
	wg.Wait() // the 8th submission must flush the batch by itself
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.SizeFlushes == 0 {
		t.Fatal("no size-triggered flush at the lane threshold")
	}
	if st.TimerFlushes != 0 {
		t.Fatalf("timer flushed %d times with the timer disabled", st.TimerFlushes)
	}
	if st.Lanes != 256 {
		t.Fatalf("admitted %d lanes, want 256", st.Lanes)
	}
}

// TestCoalesceTimerFlush submits one lonely request and relies on the
// window timer to push it out.
func TestCoalesceTimerFlush(t *testing.T) {
	e := mustCompile(t, kParity)
	q := NewCoalescer(e.Compiled, CoalescerConfig{Window: time.Millisecond})
	rng := rand.New(rand.NewSource(5))
	batch := randBatch(rng, e.InputNames, 8)
	in, _ := packWords(e.InputNames, batch)
	want, err := e.Compiled.RunBatchWords(in, 8, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Submit(in, 8, nil) // blocks until the timer fires
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "timer-flushed request", got, want)
	st := q.Stats()
	if st.TimerFlushes != 1 {
		t.Fatalf("timer flushes = %d, want 1", st.TimerFlushes)
	}
}

// TestCoalesceDirectBypass pins that a request at or above the batch
// threshold skips the window entirely.
func TestCoalesceDirectBypass(t *testing.T) {
	e := mustCompile(t, kMaj)
	q := NewCoalescer(e.Compiled, CoalescerConfig{MaxBatchLanes: 64, Window: -1})
	rng := rand.New(rand.NewSource(9))
	batch := randBatch(rng, e.InputNames, 100)
	in, _ := packWords(e.InputNames, batch)
	want, err := e.Compiled.RunBatchWords(in, 100, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Submit(in, 100, nil) // 100 >= 64: must not wait for a flush
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "direct run", got, want)
	st := q.Stats()
	if st.DirectRuns != 1 || st.Flushes != 0 {
		t.Fatalf("direct runs = %d, flushes = %d; want 1 bypass and no merged batch",
			st.DirectRuns, st.Flushes)
	}
}

// TestCoalesceAdmissionErrors pins that malformed requests fail at
// admission, before joining a batch.
func TestCoalesceAdmissionErrors(t *testing.T) {
	e := mustCompile(t, kMux)
	q := NewCoalescer(e.Compiled, CoalescerConfig{Window: -1})
	if _, err := q.Submit(nil, 0, nil); err == nil {
		t.Fatal("zero-lane submit admitted")
	}
	if _, err := q.Submit(make([]uint64, 1), 8, nil); err == nil {
		t.Fatal("short input block admitted")
	}
	if q.PendingLanes() != 0 {
		t.Fatal("rejected requests left lanes pending")
	}
}

// TestOrExtractShiftedFuzz drives the bit-packing helpers against a naive
// bit-at-a-time model across ragged offsets and lengths.
func TestOrExtractShiftedFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	getBit := func(ws []uint64, i int) uint64 { return ws[i/64] >> uint(i%64) & 1 }
	for iter := 0; iter < 2000; iter++ {
		lanes := 1 + rng.Intn(130)
		bitOff := rng.Intn(200)
		total := bitOff + lanes + rng.Intn(70)
		W := laneWords(total)

		src := make([]uint64, laneWords(lanes))
		for i := range src {
			src[i] = rng.Uint64() // includes garbage above `lanes`
		}
		dst := make([]uint64, W)
		orShifted(dst, bitOff, src, lanes)
		for i := 0; i < total; i++ {
			want := uint64(0)
			if i >= bitOff && i < bitOff+lanes {
				want = getBit(src, i-bitOff)
			}
			if getBit(dst, i) != want {
				t.Fatalf("iter %d: orShifted bit %d = %d, want %d (off %d, lanes %d)",
					iter, i, getBit(dst, i), want, bitOff, lanes)
			}
		}

		back := make([]uint64, laneWords(lanes))
		extractShifted(back, dst, bitOff, lanes)
		for i := 0; i < len(back)*64; i++ {
			want := uint64(0)
			if i < lanes {
				want = getBit(src, i)
			}
			if getBit(back, i) != want {
				t.Fatalf("iter %d: extractShifted bit %d = %d, want %d (off %d, lanes %d)",
					iter, i, getBit(back, i), want, bitOff, lanes)
			}
		}
	}
}
