package serve

// Serving-layer benchmarks: what compile-once serve-many buys.
//
//   - BenchmarkRegistryAES: cold pipeline compile vs registry hit on the
//     quick (2-round) AES kernel, the PR's >=100x acceptance target. The
//     bykey variant is the steady-state serve path (clients hold the
//     content address); rehash pays graph re-fingerprinting on every call.
//   - BenchmarkServeMixedLoad: the load generator — concurrent callers
//     issuing small (<=32-vector) requests across 4 distinct kernels,
//     naive per-caller RunBatch vs the coalescing service, >=3x aggregate
//     vectors/sec acceptance target.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"sherlock"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
)

func quickAES(b *testing.B) (*sherlock.Graph, sherlock.Options) {
	b.Helper()
	g, err := aes.Build(aes.Config{Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	return g, sherlock.Options{
		Tech:      sherlock.STTMRAM,
		ArraySize: 512,
		Arrays:    4,
		Mapper:    sherlock.MapperOptimized,
	}
}

func BenchmarkRegistryAES(b *testing.B) {
	g, opts := quickAES(b)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sherlock.CompileGraph(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit-bykey", func(b *testing.B) {
		reg := NewRegistry(RegistryConfig{})
		warm, err := reg.CompileGraph(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		key := warm.Key
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, ok := reg.Lookup(key)
			if !ok || e != warm {
				b.Fatal("lost the resident entry")
			}
		}
	})
	b.Run("hit-rehash", func(b *testing.B) {
		reg := NewRegistry(RegistryConfig{})
		warm, err := reg.CompileGraph(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := reg.CompileGraph(g, opts)
			if err != nil || e != warm {
				b.Fatal("rehash missed the resident entry")
			}
		}
	})
}

// benchCallers is the load generator's concurrency: enough callers that
// the coalescer's 256-lane batches fill from 32-lane requests even with
// the traffic spread over four kernels.
const benchCallers = 64

// benchRounds is how many requests each caller issues per measured wave.
const benchRounds = 8

// benchEntries compiles the load generator's kernel mix through the given
// registry: four distinct bitweaving scan programs (hundreds of
// instructions each), the "many small queries against a warm kernel set"
// shape the serving layer is built for.
func benchEntries(b *testing.B, reg *Registry) []*Entry {
	b.Helper()
	entries := make([]*Entry, 0, 4)
	for _, segments := range []int{2, 3, 4, 5} {
		g, err := bitweaving.Build(bitweaving.Config{Bits: 8, Segments: segments})
		if err != nil {
			b.Fatal(err)
		}
		e, err := reg.CompileGraph(g, testOptions())
		if err != nil {
			b.Fatal(err)
		}
		entries = append(entries, e)
	}
	return entries
}

// benchTraffic precomputes each caller's request stream — map-keyed and
// packed forms of the same vectors — so the measured loop does no RNG or
// input-building work.
type benchReq struct {
	entry  int
	batch  []map[string]bool
	packed []uint64
}

func benchTraffic(b *testing.B, entries []*Entry) [][]benchReq {
	b.Helper()
	traffic := make([][]benchReq, benchCallers)
	for caller := range traffic {
		rng := rand.New(rand.NewSource(int64(1000 + caller)))
		reqs := make([]benchReq, benchRounds)
		for i := range reqs {
			ei := (caller + i) % len(entries)
			batch := randBatch(rng, entries[ei].InputNames, 32)
			packed, _ := packWords(entries[ei].InputNames, batch)
			reqs[i] = benchReq{entry: ei, batch: batch, packed: packed}
		}
		traffic[caller] = reqs
	}
	return traffic
}

// runWave fans one wave of traffic (benchCallers x benchRounds requests)
// out and waits for it; each caller runs its stream sequentially, like a
// client that needs each answer before the next question.
func runWave(b *testing.B, traffic [][]benchReq, do func(caller int, req benchReq) error) {
	b.Helper()
	var wg sync.WaitGroup
	for caller := 0; caller < benchCallers; caller++ {
		wg.Add(1)
		go func(caller int) {
			defer wg.Done()
			for _, req := range traffic[caller] {
				if err := do(caller, req); err != nil {
					b.Error(err)
					return
				}
			}
		}(caller)
	}
	wg.Wait()
}

func BenchmarkServeMixedLoad(b *testing.B) {
	const vectorsPerWave = benchCallers * benchRounds * 32

	b.Run("naive", func(b *testing.B) {
		// Baseline: every caller drives its own RunBatch — per-vector map
		// decode plus a whole executor pass per 32-lane request.
		entries := benchEntries(b, NewRegistry(RegistryConfig{}))
		traffic := benchTraffic(b, entries)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runWave(b, traffic, func(caller int, req benchReq) error {
				_, err := entries[req.entry].Compiled.RunBatch(req.batch, 1)
				return err
			})
		}
		b.ReportMetric(float64(vectorsPerWave)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
	})

	b.Run("coalesced-maps", func(b *testing.B) {
		// The HTTP shape: map-keyed requests through the service. Batches
		// merge, but every caller still pays the per-vector map tax at
		// admission and demux — the reason the packed facade exists.
		svc := NewService(Config{Backend: BackendCIM, Window: 5 * time.Millisecond})
		entries := benchEntries(b, svc.Registry())
		traffic := benchTraffic(b, entries)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runWave(b, traffic, func(caller int, req benchReq) error {
				_, _, err := svc.Run(entries[req.entry], req.batch, BackendAuto)
				return err
			})
			svc.Drain() // release stragglers parked in a window
		}
		b.ReportMetric(float64(vectorsPerWave)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
	})

	b.Run("coalesced", func(b *testing.B) {
		// The serving fast path: packed requests (RunBatchWords layout)
		// through the batch window, output buffers reused per caller. On a
		// saturated machine a long window lets the size trigger fill every
		// pass, with the timer only as a straggler backstop.
		svc := NewService(Config{Backend: BackendCIM, Window: 5 * time.Millisecond})
		entries := benchEntries(b, svc.Registry())
		traffic := benchTraffic(b, entries)
		outs := make([][]uint64, benchCallers)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runWave(b, traffic, func(caller int, req benchReq) error {
				out, _, err := svc.RunWords(entries[req.entry], req.packed, 32, outs[caller], BackendAuto)
				outs[caller] = out
				return err
			})
			svc.Drain()
		}
		b.ReportMetric(float64(vectorsPerWave)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
		if b.N > 1 {
			st := svc.Stats()
			b.ReportMetric(float64(st.Coalesce.Lanes)/float64(max64(st.Coalesce.Flushes+st.Coalesce.DirectRuns, 1)), "lanes_per_pass")
		}
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkCoalescerSubmit measures the merge machinery itself: packed
// submissions through a full window, no maps involved.
func BenchmarkCoalescerSubmit(b *testing.B) {
	e := mustCompile(b, kStage)
	rng := rand.New(rand.NewSource(77))
	const lanes = 32
	const callers = 8 // 8 x 32 = 256: every wave is one size-triggered pass
	ins := make([][]uint64, callers)
	for c := range ins {
		batch := randBatch(rng, e.InputNames, lanes)
		ins[c], _ = packWords(e.InputNames, batch)
	}
	q := NewCoalescer(e.Compiled, CoalescerConfig{Window: -1})
	outs := make([][]uint64, callers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var err error
				outs[c], err = q.Submit(ins[c], lanes, outs[c])
				if err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(callers*lanes)*float64(b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
}
