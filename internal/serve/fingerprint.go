// Package serve is the compile-once serve-many layer: a content-addressed
// compile registry (the expensive map → schedule → merge → predecode
// pipeline runs at most once per unique program per process), a coalescing
// batch executor that merges concurrent callers' small requests into full
// 256-lane executor passes, and a TDO-CIM-style cost-model router that
// dispatches each request to the CIM simulator or the internal/cpu host
// baseline, whichever the latency model says wins. cmd/sherlock-serve puts
// an HTTP front door on it.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"sherlock"
	"sherlock/internal/dfg"
)

// Key is the content address of a compiled program: a SHA-256 over the
// canonical encoding of (kernel source or DFG structure, normalized
// Options). Identical compile requests — whatever process, whenever — map
// to the same Key, which is what lets the registry serve every repeat from
// cache.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the wire form).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex wire form.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("serve: malformed key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// keySchema versions the canonical encoding: bump it whenever the encoding
// below (or the meaning of an Options field) changes, so stale addresses
// can never alias new programs.
const keySchema = 1

// KeySource addresses a C-subset kernel compile: the key of
// (source text, normalized options). The source is hashed as written —
// formatting differences produce distinct keys, which is the conservative
// direction for a cache.
func KeySource(src string, opts sherlock.Options) Key {
	h := sha256.New()
	writeHeader(h, "c-src")
	writeOptions(h, opts)
	writeUint(h, uint64(len(src)))
	h.Write([]byte(src))
	return sum(h)
}

// KeyGraph addresses a programmatic DFG compile: the key of the graph's
// structural walk (inputs, ops in topological order with operand wiring,
// named outputs) and the normalized options. Graphs built by the same
// construction sequence hash identically; structurally equal graphs built
// in different orders may not — content addressing is per construction,
// not per isomorphism class, and the conservative direction is again extra
// misses, never false hits.
func KeyGraph(g *sherlock.Graph, opts sherlock.Options) Key {
	h := sha256.New()
	writeHeader(h, "dfg")
	writeOptions(h, opts)
	writeGraph(h, g)
	return sum(h)
}

func writeHeader(h hash.Hash, kind string) {
	writeUint(h, keySchema)
	writeStr(h, kind)
}

// writeOptions encodes every compilation-relevant Options field explicitly.
// The normalized form is hashed so that a zero field and its default
// resolve to the same address.
func writeOptions(h hash.Hash, opts sherlock.Options) {
	o := opts.Normalized()
	writeUint(h, uint64(o.Tech))
	writeUint(h, uint64(o.ArraySize))
	writeUint(h, uint64(o.Arrays))
	writeUint(h, uint64(o.Mapper))
	writeBool(h, o.MultiRowActivation)
	writeUint(h, math.Float64bits(o.MRAFraction))
	writeBool(h, o.NANDLowering)
	writeBool(h, o.RecycleRows)
	writeBool(h, o.WearLeveling)
	writeBool(h, o.VerifyEmitted)
}

func writeGraph(h hash.Hash, g *dfg.Graph) {
	ins := g.Inputs()
	writeUint(h, uint64(len(ins)))
	for _, in := range ins {
		writeUint(h, uint64(in))
		writeStr(h, g.Name(in))
	}
	ops := g.OpNodes()
	writeUint(h, uint64(len(ops)))
	var buf []dfg.NodeID
	for _, op := range ops {
		writeUint(h, uint64(op))
		writeUint(h, uint64(g.OpType(op)))
		writeUint(h, uint64(g.OpOutput(op)))
		buf = g.AppendOpInputs(op, buf[:0])
		writeUint(h, uint64(len(buf)))
		for _, in := range buf {
			writeUint(h, uint64(in))
		}
	}
	outs := g.Outputs()
	writeUint(h, uint64(len(outs)))
	for _, out := range outs {
		writeUint(h, uint64(out))
		writeStr(h, g.OutputName(out))
	}
}

func writeUint(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func writeBool(h hash.Hash, v bool) {
	if v {
		writeUint(h, 1)
	} else {
		writeUint(h, 0)
	}
}

// writeStr length-prefixes, keeping adjacent strings from aliasing.
func writeStr(h hash.Hash, s string) {
	writeUint(h, uint64(len(s)))
	h.Write([]byte(s))
}

func sum(h hash.Hash) Key {
	var k Key
	h.Sum(k[:0])
	return k
}
