package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sherlock"
)

// TestServiceRunMatchesRunBatch drives the full service path (admission →
// routing → coalescing → demux) against sherlock.RunBatch on every backend.
func TestServiceRunMatchesRunBatch(t *testing.T) {
	for _, force := range []Backend{BackendAuto, BackendCIM, BackendCPU} {
		t.Run(force.String(), func(t *testing.T) {
			svc := NewService(Config{Window: -1, Backend: force})
			rng := rand.New(rand.NewSource(17))
			for _, src := range testKernels() {
				e, err := svc.CompileC(src, testOptions())
				if err != nil {
					t.Fatal(err)
				}
				batch := randBatch(rng, e.InputNames, 77)
				want, err := e.Compiled.RunBatch(batch, 0)
				if err != nil {
					t.Fatal(err)
				}
				// 77 lanes with the default 256-lane threshold would sit in a
				// disabled window forever; flush from the side.
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						select {
						case <-done:
							return
						default:
							svc.Drain()
						}
					}
				}()
				outs, _, err := svc.Run(e, batch, BackendAuto)
				done <- struct{}{}
				if err != nil {
					t.Fatal(err)
				}
				if len(outs) != len(want) {
					t.Fatalf("%d output vectors, want %d", len(outs), len(want))
				}
				for i := range outs {
					for name, v := range want[i] {
						if outs[i][name] != v {
							t.Fatalf("vector %d output %q = %v, want %v", i, name, outs[i][name], v)
						}
					}
				}
			}
		})
	}
}

// TestServiceErrorAttribution floods one kernel's window with good callers
// and a bad one: the bad caller (missing binding) must fail alone at
// admission and every good caller must still get its exact outputs.
func TestServiceErrorAttribution(t *testing.T) {
	svc := NewService(Config{Window: -1, MaxBatchLanes: 256})
	e, err := svc.CompileC(kStage, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))

	const good = 8 // 8 x 32 = 256 lanes: the good callers alone fill a batch
	type result struct {
		outs []map[string]bool
		want []map[string]bool
		err  error
	}
	results := make([]result, good)
	var wg sync.WaitGroup
	var badErr error
	var badWg sync.WaitGroup
	badWg.Add(1)
	go func() {
		defer badWg.Done()
		bad := randBatch(rng, e.InputNames, 32)
		for i := range bad {
			delete(bad[i], e.InputNames[0])
		}
		_, _, badErr = svc.Run(e, bad, BackendCIM)
	}()
	badWg.Wait() // admission rejects it synchronously — no batch involved

	for ci := 0; ci < good; ci++ {
		batch := randBatch(rng, e.InputNames, 32)
		want, err := e.Compiled.RunBatch(batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		results[ci].want = want
		wg.Add(1)
		go func(ci int, batch []map[string]bool) {
			defer wg.Done()
			results[ci].outs, _, results[ci].err = svc.Run(e, batch, BackendCIM)
		}(ci, batch)
	}
	wg.Wait()

	if badErr == nil {
		t.Fatal("caller with an unbound input succeeded")
	}
	for ci := range results {
		if results[ci].err != nil {
			t.Fatalf("good caller %d caught the bad caller's error: %v", ci, results[ci].err)
		}
		for i := range results[ci].want {
			for name, v := range results[ci].want[i] {
				if results[ci].outs[i][name] != v {
					t.Fatalf("good caller %d vector %d output %q corrupted", ci, i, name)
				}
			}
		}
	}
}

// TestServiceStats sanity-checks the counter surface after mixed traffic.
func TestServiceStats(t *testing.T) {
	svc := NewService(Config{Window: -1, MaxBatchLanes: 64})
	rng := rand.New(rand.NewSource(29))
	var wantVectors int64
	for _, src := range testKernels() {
		e, err := svc.CompileC(src, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.CompileC(src, testOptions()); err != nil { // hit
			t.Fatal(err)
		}
		batch := randBatch(rng, e.InputNames, 64) // exactly one size flush on CIM
		wantVectors += 64
		if _, _, err := svc.Run(e, batch, BackendCIM); err != nil {
			t.Fatal(err)
		}
		small := randBatch(rng, e.InputNames, 4)
		wantVectors += 4
		if _, _, err := svc.Run(e, small, BackendCPU); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Registry.Misses != 4 || st.Registry.Hits != 4 {
		t.Fatalf("registry hits/misses = %d/%d, want 4/4", st.Registry.Hits, st.Registry.Misses)
	}
	if st.Vectors != wantVectors {
		t.Fatalf("vectors = %d, want %d", st.Vectors, wantVectors)
	}
	if st.CIMRequests != 4 || st.CPURequests != 4 {
		t.Fatalf("cim/cpu requests = %d/%d, want 4/4", st.CIMRequests, st.CPURequests)
	}
	if st.Queues != 4 {
		t.Fatalf("coalescers built = %d, want one per kernel", st.Queues)
	}
	if st.Coalesce.DirectRuns != 4 {
		t.Fatalf("direct runs = %d, want each 64-lane request to bypass its 64-lane window", st.Coalesce.DirectRuns)
	}
}

// TestServiceMixedKernelsConcurrent hammers all four kernels concurrently
// through one service with a live timer window — the closest test to
// production traffic, run under -race in CI.
func TestServiceMixedKernelsConcurrent(t *testing.T) {
	svc := NewService(Config{}) // defaults: 200µs window, 256-lane batches
	opts := testOptions()
	type kernel struct {
		e *Entry
		c *sherlock.Compiled
	}
	kernels := make([]kernel, 0, 4)
	for _, src := range testKernels() {
		e, err := svc.CompileC(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, kernel{e, e.Compiled})
	}

	const goroutines = 16
	const perG = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + gi)))
			for i := 0; i < perG; i++ {
				k := kernels[rng.Intn(len(kernels))]
				lanes := 1 + rng.Intn(32)
				batch := randBatch(rng, k.e.InputNames, lanes)
				want, err := k.c.RunBatch(batch, 0)
				if err != nil {
					errs <- err
					return
				}
				outs, _, err := svc.Run(k.e, batch, BackendAuto)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", gi, err)
					return
				}
				for v := range want {
					for name, val := range want[v] {
						if outs[v][name] != val {
							errs <- fmt.Errorf("goroutine %d: vector %d output %q diverged", gi, v, name)
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Vectors == 0 || st.Registry.Misses != 4 {
		t.Fatalf("stats after hammer: %+v", st)
	}
}
