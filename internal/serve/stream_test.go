package serve

import (
	"math/rand"
	"testing"
)

// TestCoalesceStreamBulk pins the streaming direct path: a request at or
// above StreamMinLanes is served by the chunked pipeline, counted in
// StreamRuns, and bit-identical to RunBatchWords — including the awkward
// lane counts around chunk edges.
func TestCoalesceStreamBulk(t *testing.T) {
	e := mustCompile(t, kStage)
	q := NewCoalescer(e.Compiled, CoalescerConfig{
		MaxBatchLanes: 64, Window: -1, StreamMinLanes: 512,
	})
	defer q.Close()
	rng := rand.New(rand.NewSource(11))
	var streamed int64
	for _, lanes := range []int{512, 513, 1023, 4096, 4097} {
		batch := randBatch(rng, e.InputNames, lanes)
		in, _ := packWords(e.InputNames, batch)
		want, err := e.Compiled.RunBatchWords(in, lanes, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Submit(in, lanes, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkWordsEqual(t, "streamed bulk run", got, want)
		streamed++
		st := q.Stats()
		if st.StreamRuns != streamed {
			t.Fatalf("lanes %d: StreamRuns = %d, want %d", lanes, st.StreamRuns, streamed)
		}
		if st.DirectRuns != streamed {
			t.Fatalf("lanes %d: DirectRuns = %d, want %d", lanes, st.DirectRuns, streamed)
		}
	}

	// Below the threshold but above the batch cap: direct, not streamed.
	batch := randBatch(rng, e.InputNames, 100)
	in, _ := packWords(e.InputNames, batch)
	if _, err := q.Submit(in, 100, nil); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.StreamRuns != streamed {
		t.Fatalf("sub-threshold request streamed: StreamRuns = %d, want %d", st.StreamRuns, streamed)
	}
}

// TestCoalesceStreamDisabled: a negative threshold keeps every bulk
// request on the materializing batch path.
func TestCoalesceStreamDisabled(t *testing.T) {
	e := mustCompile(t, kMaj)
	q := NewCoalescer(e.Compiled, CoalescerConfig{
		MaxBatchLanes: 64, Window: -1, StreamMinLanes: -1,
	})
	defer q.Close()
	rng := rand.New(rand.NewSource(12))
	batch := randBatch(rng, e.InputNames, 8192)
	in, _ := packWords(e.InputNames, batch)
	want, err := e.Compiled.RunBatchWords(in, 8192, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Submit(in, 8192, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "stream-disabled bulk run", got, want)
	if st := q.Stats(); st.StreamRuns != 0 {
		t.Fatalf("StreamRuns = %d with streaming disabled", st.StreamRuns)
	}
}

// TestCoalesceStreamAfterClose: Close releases the pipeline; later bulk
// requests still succeed (batch-path fallback), and Close is idempotent.
func TestCoalesceStreamAfterClose(t *testing.T) {
	e := mustCompile(t, kParity)
	q := NewCoalescer(e.Compiled, CoalescerConfig{
		MaxBatchLanes: 64, Window: -1, StreamMinLanes: 256,
	})
	rng := rand.New(rand.NewSource(13))
	batch := randBatch(rng, e.InputNames, 1024)
	in, _ := packWords(e.InputNames, batch)
	if _, err := q.Submit(in, 1024, nil); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close()
	want, err := e.Compiled.RunBatchWords(in, 1024, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Submit(in, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "post-close bulk run", got, want)
	if st := q.Stats(); st.StreamRuns != 1 {
		t.Fatalf("StreamRuns = %d after Close, want 1 (pre-close only)", st.StreamRuns)
	}
}

// TestServiceStreamConfig: the service passes the threshold through and
// sums StreamRuns; Close shuts the pipelines down service-wide.
func TestServiceStreamConfig(t *testing.T) {
	s := NewService(Config{Window: -1, StreamMinLanes: 512, Backend: BackendCIM})
	e, err := s.CompileC(kMux, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	batch := randBatch(rng, e.InputNames, 2000)
	in, _ := packWords(e.InputNames, batch)
	want, err := e.Compiled.RunBatchWords(in, 2000, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.RunWords(e, in, 2000, nil, BackendCIM)
	if err != nil {
		t.Fatal(err)
	}
	checkWordsEqual(t, "service streamed run", got, want)
	if st := s.Stats(); st.Coalesce.StreamRuns != 1 {
		t.Fatalf("service StreamRuns = %d, want 1", st.Coalesce.StreamRuns)
	}
	s.Close()
}
