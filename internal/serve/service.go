package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sherlock"
	"sherlock/internal/cpu"
	"sherlock/internal/memo"
	"sherlock/internal/pool"
)

// Config parameterizes a Service. The zero value serves with sensible
// defaults: unbounded registry, 200µs batch window, 256-lane batches,
// auto routing, GOMAXPROCS-bounded concurrent passes.
type Config struct {
	// Registry bounds the compile cache.
	Registry RegistryConfig
	// Window is the coalescing batch window (see CoalescerConfig.Window:
	// 0 selects the 200µs default, negative disables the timer).
	Window time.Duration
	// MaxBatchLanes is the size flush trigger (default 256 = one pass).
	MaxBatchLanes int
	// Parallelism bounds each merged batch's worker fan-out (RunBatchWords).
	Parallelism int
	// MaxConcurrentPasses bounds executor passes in flight across all
	// kernels (0 = unlimited).
	MaxConcurrentPasses int
	// StreamMinLanes is the bulk-request streaming threshold (see
	// CoalescerConfig.StreamMinLanes: 0 selects DefaultStreamMinLanes,
	// negative disables the streaming path).
	StreamMinLanes int
	// Backend pins routing for every request (BackendAuto = per-request
	// cost-model decision).
	Backend Backend
	// CPU is the host hierarchy the router models (zero = Table 1 default).
	CPU cpu.Hierarchy
}

// Service is the serving architecture's root object: registry + per-entry
// coalescers + router, safe for unbounded concurrent use.
type Service struct {
	cfg     Config
	reg     *Registry
	router  *Router
	limiter *pool.Limiter

	mu          sync.Mutex
	coalescers  []*Coalescer // every queue ever built, for Drain and Stats
	cimRequests atomic.Int64
	cpuRequests atomic.Int64
	vectors     atomic.Int64
}

// NewService builds a service.
func NewService(cfg Config) *Service {
	return &Service{
		cfg:     cfg,
		reg:     NewRegistry(cfg.Registry),
		router:  NewRouter(cfg.CPU),
		limiter: pool.NewLimiter(cfg.MaxConcurrentPasses),
	}
}

// Registry exposes the underlying compile cache.
func (s *Service) Registry() *Registry { return s.reg }

// CompileC compiles (or re-serves) a C-subset kernel through the registry.
func (s *Service) CompileC(src string, opts sherlock.Options) (*Entry, error) {
	return s.reg.CompileC(src, opts)
}

// CompileGraph compiles (or re-serves) a DFG through the registry.
func (s *Service) CompileGraph(g *sherlock.Graph, opts sherlock.Options) (*Entry, error) {
	return s.reg.CompileGraph(g, opts)
}

// Lookup resolves a previously compiled key.
func (s *Service) Lookup(key Key) (*Entry, bool) { return s.reg.Lookup(key) }

// RunWords serves one packed request (RunBatchWords layout): the router
// picks a backend, CIM requests join the entry's batch window, CPU
// requests evaluate bit-sliced on the host model. Returns the filled
// output block and the backend that served it.
func (s *Service) RunWords(e *Entry, in []uint64, lanes int, out []uint64, force Backend) ([]uint64, Backend, error) {
	if force == BackendAuto {
		force = s.cfg.Backend
	}
	d, err := s.router.Route(e, lanes, force)
	if err != nil {
		return nil, 0, err
	}
	s.vectors.Add(int64(lanes))
	if d.Backend == BackendCPU {
		s.cpuRequests.Add(1)
		out, err = runCPU(e, in, lanes, out)
		return out, BackendCPU, err
	}
	s.cimRequests.Add(1)
	out, err = s.coalescerFor(e).Submit(in, lanes, out)
	return out, BackendCIM, err
}

// Run serves one map-keyed batch (the HTTP front door's shape): inputs are
// validated against the entry's binding names here, at admission, so a
// caller's missing binding fails that caller alone and never poisons a
// shared batch.
func (s *Service) Run(e *Entry, batch []map[string]bool, force Backend) ([]map[string]bool, Backend, error) {
	lanes := len(batch)
	if lanes == 0 {
		return nil, BackendCIM, nil
	}
	W := laneWords(lanes)
	in := make([]uint64, len(e.InputNames)*W)
	for l, vec := range batch {
		for slot, name := range e.InputNames {
			v, ok := vec[name]
			if !ok {
				return nil, 0, fmt.Errorf("serve: vector %d: unbound input %q", l, name)
			}
			if v {
				in[slot*W+l/64] |= uint64(1) << uint(l%64)
			}
		}
	}
	out, backend, err := s.RunWords(e, in, lanes, nil, force)
	if err != nil {
		return nil, backend, err
	}
	outs := make([]map[string]bool, lanes)
	for l := range outs {
		m := make(map[string]bool, len(e.OutputNames))
		for o, name := range e.OutputNames {
			m[name] = out[o*W+l/64]>>uint(l%64)&1 == 1
		}
		outs[l] = m
	}
	return outs, backend, nil
}

// Route exposes the router's verdict for a hypothetical request (the
// stats/debug surface).
func (s *Service) Route(e *Entry, lanes int) (Decision, error) {
	force := s.cfg.Backend
	return s.router.Route(e, lanes, force)
}

// coalescerFor returns the entry's batch queue, building and registering
// it (for Drain and Stats) exactly once.
func (s *Service) coalescerFor(e *Entry) *Coalescer {
	e.coalOnce.Do(func() {
		e.coal = NewCoalescer(e.Compiled, CoalescerConfig{
			MaxBatchLanes:  s.cfg.MaxBatchLanes,
			Window:         s.cfg.Window,
			Parallelism:    s.cfg.Parallelism,
			Limiter:        s.limiter,
			StreamMinLanes: s.cfg.StreamMinLanes,
		})
		s.mu.Lock()
		s.coalescers = append(s.coalescers, e.coal)
		s.mu.Unlock()
	})
	return e.coal
}

// Drain flushes every batch window (shutdown path: no request waits out a
// timer that may never fire again).
func (s *Service) Drain() {
	s.mu.Lock()
	qs := append([]*Coalescer(nil), s.coalescers...)
	s.mu.Unlock()
	for _, q := range qs {
		q.Flush()
	}
}

// Close drains every batch window and releases the streaming pipelines.
// The service remains usable; later bulk requests use the batch path.
func (s *Service) Close() {
	s.Drain()
	s.mu.Lock()
	qs := append([]*Coalescer(nil), s.coalescers...)
	s.mu.Unlock()
	for _, q := range qs {
		q.Close()
	}
}

// Stats is the service-wide counter snapshot.
type Stats struct {
	Registry    memo.Stats
	Coalesce    CoalescerStats // summed over all kernels' queues
	Queues      int            // coalescers built
	CIMRequests int64
	CPURequests int64
	Vectors     int64
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Registry:    s.reg.Stats(),
		CIMRequests: s.cimRequests.Load(),
		CPURequests: s.cpuRequests.Load(),
		Vectors:     s.vectors.Load(),
	}
	s.mu.Lock()
	qs := append([]*Coalescer(nil), s.coalescers...)
	s.mu.Unlock()
	st.Queues = len(qs)
	for _, q := range qs {
		cs := q.Stats()
		st.Coalesce.Requests += cs.Requests
		st.Coalesce.Lanes += cs.Lanes
		st.Coalesce.Flushes += cs.Flushes
		st.Coalesce.SizeFlushes += cs.SizeFlushes
		st.Coalesce.TimerFlushes += cs.TimerFlushes
		st.Coalesce.DirectRuns += cs.DirectRuns
		st.Coalesce.StreamRuns += cs.StreamRuns
		if cs.MaxBatch > st.Coalesce.MaxBatch {
			st.Coalesce.MaxBatch = cs.MaxBatch
		}
	}
	return st
}
