package serve

import (
	"fmt"

	"sherlock/internal/cpu"
)

// Backend identifies where a request executes.
type Backend int

const (
	// BackendAuto lets the cost model decide per request.
	BackendAuto Backend = iota
	// BackendCIM executes on the simulated NVM array (the coalescing
	// ExecMachine pipeline).
	BackendCIM
	// BackendCPU executes on the host baseline: the bit-sliced golden-model
	// evaluation, costed by the internal/cpu hierarchy model.
	BackendCPU
)

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendCIM:
		return "cim"
	case BackendCPU:
		return "cpu"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses the wire/flag form.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "cim":
		return BackendCIM, nil
	case "cpu":
		return BackendCPU, nil
	}
	return 0, fmt.Errorf("serve: unknown backend %q (want auto, cim or cpu)", s)
}

// routeCosts are an entry's measured per-unit latencies, computed once.
type routeCosts struct {
	// cimPassNS is the simulated array latency of one program pass, which
	// serves up to laneCap lanes regardless of fill.
	cimPassNS float64
	// cpuSliceNS is the modeled host latency of one 64-lane bit-sliced
	// evaluation of the kernel on the Table 1 in-order core.
	cpuSliceNS float64
}

// Router implements TDO-CIM-style transparent offload: per request, the
// entry's measured CIM pass latency and modeled CPU slice latency scale to
// the request's lane count, and the cheaper backend wins. The estimates
// deliberately compare device-model time (what the paper's Fig. 7 compares),
// not wall-clock simulation time: the service is a faithful stand-in for
// the hardware deployment it models.
type Router struct {
	h cpu.Hierarchy
}

// NewRouter builds a router using the given CPU hierarchy (zero value
// selects cpu.DefaultHierarchy).
func NewRouter(h cpu.Hierarchy) *Router {
	return &Router{h: hierarchyFor(h)}
}

// costs resolves an entry's routing costs, measuring on first use: the CIM
// side from the compiled technology's array model, the CPU side from a
// gate-network trace through the cache-hierarchy model.
func (r *Router) costs(e *Entry) (routeCosts, error) {
	e.routeOnce.Do(func() {
		cimCost, err := e.Compiled.Cost()
		if err != nil {
			e.routeErr = fmt.Errorf("serve: measuring CIM cost: %w", err)
			return
		}
		g := e.Compiled.Graph
		operands := g.NumNodes() - g.NumOps()
		cpuCost := cpu.RunGateNetwork(r.h, g.NumOps(), operands)
		e.route = routeCosts{
			cimPassNS:  cimCost.LatencyNS,
			cpuSliceNS: cpuCost.LatencyNS,
		}
	})
	return e.route, e.routeErr
}

// Decision is one routing verdict with the estimates that produced it.
type Decision struct {
	Backend Backend
	CIMNS   float64 // estimated CIM latency for this request
	CPUNS   float64 // estimated CPU latency for this request
}

// Route decides where a lanes-wide request on e executes. force pins the
// backend (BackendAuto means decide); a forced CPU on an entry the CPU
// backend cannot serve (graph inputs without binding slots) falls back to
// CIM rather than failing.
func (r *Router) Route(e *Entry, lanes int, force Backend) (Decision, error) {
	rc, err := r.costs(e)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{
		CIMNS: rc.cimPassNS * float64((lanes+laneCap-1)/laneCap),
		CPUNS: rc.cpuSliceNS * float64(laneWords(lanes)),
	}
	switch {
	case force == BackendCIM || !e.cpuOK:
		d.Backend = BackendCIM
	case force == BackendCPU:
		d.Backend = BackendCPU
	case d.CPUNS < d.CIMNS:
		d.Backend = BackendCPU
	default:
		d.Backend = BackendCIM
	}
	return d, nil
}

// runCPU executes a packed request on the host backend: one golden-model
// word evaluation per lane word, wired through the entry's slot map.
// Outputs land in the same output-major layout RunBatchWords produces,
// dead lanes masked to zero — bit-identical to the CIM path by the
// simulator's own differential tests.
func runCPU(e *Entry, in []uint64, lanes int, out []uint64) ([]uint64, error) {
	if !e.cpuOK {
		return nil, fmt.Errorf("serve: entry %s cannot run on the CPU backend", e.Key)
	}
	W := laneWords(lanes)
	if len(in) < len(e.InputNames)*W {
		return nil, fmt.Errorf("serve: input block has %d words, need %d", len(in), len(e.InputNames)*W)
	}
	need := len(e.OutputNames) * W
	if cap(out) < need {
		out = make([]uint64, need)
	} else {
		out = out[:need]
	}
	ev := e.evaluator()
	defer e.evals.Put(ev)
	inWords := make([]uint64, len(e.graphInSlots))
	for w := 0; w < W; w++ {
		for gi, slot := range e.graphInSlots {
			inWords[gi] = in[slot*W+w]
		}
		res := ev.Eval(inWords)
		mask := ^uint64(0)
		if rem := lanes - w*64; rem < 64 {
			mask = uint64(1)<<uint(rem) - 1
		}
		for o := range e.OutputNames {
			out[o*W+w] = res[o] & mask
		}
	}
	return out, nil
}
