package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return r.StatusCode
}

// TestHTTPRoundTrip compiles a kernel over the wire, runs it by key and by
// inline source, and checks the outputs against the library's own answer.
func TestHTTPRoundTrip(t *testing.T) {
	svc := NewService(Config{Window: -1, MaxBatchLanes: 1}) // every run flushes itself
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	wopts := wireOptions{Tech: "reram", ArraySize: 128}
	var comp compileResponse
	if code := postJSON(t, srv, "/v1/compile", compileRequest{Source: kMux, Options: wopts}, &comp); code != http.StatusOK {
		t.Fatalf("compile returned %d", code)
	}
	if comp.Cached {
		t.Fatal("first compile reported cached")
	}
	if comp.Instructions == 0 || len(comp.Inputs) != 3 || len(comp.Outputs) != 1 {
		t.Fatalf("compile response looks wrong: %+v", comp)
	}
	var again compileResponse
	postJSON(t, srv, "/v1/compile", compileRequest{Source: kMux, Options: wopts}, &again)
	if !again.Cached || again.Key != comp.Key {
		t.Fatalf("recompile: cached=%v key match=%v", again.Cached, again.Key == comp.Key)
	}

	// Golden answer straight from the library.
	opts, err := wopts.toOptions()
	if err != nil {
		t.Fatal(err)
	}
	e, err := svc.CompileC(kMux, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	batch := randBatch(rng, e.InputNames, 20)
	want, err := e.Compiled.RunBatch(batch, 0)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string, req runRequest) {
		t.Helper()
		var run runResponse
		if code := postJSON(t, srv, "/v1/run", req, &run); code != http.StatusOK {
			t.Fatalf("%s: run returned %d", label, code)
		}
		if run.Key != comp.Key {
			t.Fatalf("%s: run key %s, want %s", label, run.Key, comp.Key)
		}
		if len(run.Outputs) != len(want) {
			t.Fatalf("%s: %d outputs, want %d", label, len(run.Outputs), len(want))
		}
		for i := range want {
			for name, v := range want[i] {
				if run.Outputs[i][name] != v {
					t.Fatalf("%s: vector %d output %q = %v, want %v", label, i, name, run.Outputs[i][name], v)
				}
			}
		}
	}
	check("by key", runRequest{Key: comp.Key, Batch: batch})
	check("by source", runRequest{Source: kMux, Options: wopts, Batch: batch})
	check("forced cpu", runRequest{Key: comp.Key, Batch: batch, Backend: "cpu"})
	check("forced cim", runRequest{Key: comp.Key, Batch: batch, Backend: "cim"})

	var st Stats
	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Vectors == 0 || st.Registry.Misses != 1 {
		t.Fatalf("stats after traffic: %+v", st)
	}
}

// TestHTTPErrors pins the failure modes: bad JSON, bad options, compile
// errors, unknown keys, empty batches, unbound inputs.
func TestHTTPErrors(t *testing.T) {
	svc := NewService(Config{Window: -1, MaxBatchLanes: 1})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	post := func(path, body string) int {
		t.Helper()
		r, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if code := post("/v1/compile", "{"); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON: %d", code)
	}
	if code := post("/v1/compile", `{"source":""}`); code != http.StatusBadRequest {
		t.Fatalf("missing source: %d", code)
	}
	if code := post("/v1/compile", `{"source":"void f(word a){}","options":{"tech":"dram"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown tech: %d", code)
	}
	if code := post("/v1/compile", `{"source":"void broken(word a, word *o){ *o = a & ; }"}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed kernel: %d", code)
	}
	if code := post("/v1/run", `{"batch":[{"a":true}]}`); code != http.StatusBadRequest {
		t.Fatalf("run without key or source: %d", code)
	}
	missing := Key{}.String()
	if code := post("/v1/run", `{"key":"`+missing+`","batch":[{"a":true}]}`); code != http.StatusNotFound {
		t.Fatalf("unknown key: %d", code)
	}
	if code := post("/v1/run", `{"key":"nothex","batch":[{"a":true}]}`); code != http.StatusBadRequest {
		t.Fatalf("malformed key: %d", code)
	}
	if code := post("/v1/run", `{"source":"`+kMux+`","options":{"tech":"reram","arraySize":128}}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if code := post("/v1/run", `{"source":"`+kMux+`","options":{"tech":"reram","arraySize":128},"batch":[{"s":true}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("unbound inputs: %d", code)
	}

	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
}
