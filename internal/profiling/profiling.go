// Package profiling wires the standard pprof endpoints into the command-line
// tools. Both sherlock-exp and sherlock-sim expose -cpuprofile/-memprofile so
// compiler and simulator hot spots can be inspected with `go tool pprof`
// without recompiling:
//
//	sherlock-exp -quick -exp table2 -cpuprofile cpu.out -memprofile mem.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (no-op when empty) and returns a
// stop function the caller must invoke before exit; the stop function also
// writes the heap profile to memPath (no-op when empty).
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
