package cparser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sherlock/internal/dfg"
)

// randomExpr builds a random expression tree over the variables, returning
// both its C source and a direct evaluator — a differential oracle for the
// whole lexer/parser/lowering pipeline.
type exprGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *exprGen) gen(depth int) (string, func(env map[string]bool) bool) {
	if depth == 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			return "0", func(map[string]bool) bool { return false }
		case 1:
			return "1", func(map[string]bool) bool { return true }
		default:
			v := g.vars[g.rng.Intn(len(g.vars))]
			return v, func(env map[string]bool) bool { return env[v] }
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		s, f := g.gen(depth - 1)
		return "~" + wrap(s), func(env map[string]bool) bool { return !f(env) }
	case 1:
		l, fl := g.gen(depth - 1)
		r, fr := g.gen(depth - 1)
		return wrap(l) + " & " + wrap(r), func(env map[string]bool) bool { return fl(env) && fr(env) }
	case 2:
		l, fl := g.gen(depth - 1)
		r, fr := g.gen(depth - 1)
		return wrap(l) + " | " + wrap(r), func(env map[string]bool) bool { return fl(env) || fr(env) }
	default:
		l, fl := g.gen(depth - 1)
		r, fr := g.gen(depth - 1)
		return wrap(l) + " ^ " + wrap(r), func(env map[string]bool) bool { return fl(env) != fr(env) }
	}
}

func wrap(s string) string {
	if strings.ContainsAny(s, " ~") {
		return "(" + s + ")"
	}
	return s
}

func TestFuzzRandomExpressionsMatchOracle(t *testing.T) {
	vars := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 60; seed++ {
		g := &exprGen{rng: rand.New(rand.NewSource(seed)), vars: vars}
		exprSrc, oracle := g.gen(4)
		src := fmt.Sprintf("void k(word a, word b, word c, word d, word *o) { *o = %s; }", exprSrc)
		compiled, err := Compile(src)
		if err != nil {
			// Constant outputs are legitimately rejected; everything else
			// must compile.
			if strings.Contains(err.Error(), "constant") {
				continue
			}
			t.Fatalf("seed %d: %q: %v", seed, exprSrc, err)
		}
		for trial := 0; trial < 8; trial++ {
			env := map[string]bool{}
			for _, v := range vars {
				env[v] = g.rng.Intn(2) == 1
			}
			res, err := dfg.EvaluateByName(compiled.Graph, env)
			if err != nil {
				t.Fatal(err)
			}
			if res["o"] != oracle(env) {
				t.Fatalf("seed %d: %q diverges at %v: got %v", seed, exprSrc, env, res["o"])
			}
		}
	}
}

func TestFuzzRandomLoopKernels(t *testing.T) {
	// Random reduction loops over arrays must match a direct fold.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		n := 2 + rng.Intn(6)
		op := []string{"&", "|", "^"}[rng.Intn(3)]
		src := fmt.Sprintf(`void k(word x[%d], word *o) {
			word acc = x[0];
			for (i = 1; i < %d; i++) { acc = acc %s x[i]; }
			*o = acc;
		}`, n, n, op)
		compiled, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for trial := 0; trial < 8; trial++ {
			env := map[string]bool{}
			bits := make([]bool, n)
			for i := range bits {
				bits[i] = rng.Intn(2) == 1
				env[fmt.Sprintf("x[%d]", i)] = bits[i]
			}
			want := bits[0]
			for _, b := range bits[1:] {
				switch op {
				case "&":
					want = want && b
				case "|":
					want = want || b
				default:
					want = want != b
				}
			}
			res, err := dfg.EvaluateByName(compiled.Graph, env)
			if err != nil {
				t.Fatal(err)
			}
			if res["o"] != want {
				t.Fatalf("seed %d op %s: diverges", seed, op)
			}
		}
	}
}
