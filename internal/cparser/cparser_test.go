package cparser

import (
	"strings"
	"testing"

	"sherlock/internal/dfg"
)

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := c.Graph.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return c
}

func TestSimpleKernel(t *testing.T) {
	c := mustCompile(t, `
		void k(word a, word b, word *out) {
			word t = a & ~b;
			*out = t ^ (a | b);
		}`)
	if c.KernelName != "k" {
		t.Errorf("name = %q", c.KernelName)
	}
	if len(c.InputNames) != 2 || len(c.OutputNames) != 1 {
		t.Errorf("signature: %v -> %v", c.InputNames, c.OutputNames)
	}
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false},
		{true, false, true}, // (1&~0)^(1|0) = 1^1 = 0... recompute below
		{false, true, true},
		{true, true, true},
	} {
		res, err := dfg.EvaluateByName(c.Graph, map[string]bool{"a": tc.a, "b": tc.b})
		if err != nil {
			t.Fatal(err)
		}
		want := (tc.a && !tc.b) != (tc.a || tc.b)
		if res["out"] != want {
			t.Errorf("k(%v,%v) = %v, want %v", tc.a, tc.b, res["out"], want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	// a ^ b & c must parse as a ^ (b & c).
	c := mustCompile(t, `void k(word a, word b, word c, word *o) { *o = a ^ b & c; }`)
	res, err := dfg.EvaluateByName(c.Graph, map[string]bool{"a": true, "b": true, "c": false})
	if err != nil {
		t.Fatal(err)
	}
	if res["o"] != (true != (true && false)) {
		t.Error("precedence wrong: a ^ b & c")
	}
	// a | b ^ c must parse as a | (b ^ c).
	c2 := mustCompile(t, `void k(word a, word b, word c, word *o) { *o = a | b ^ c; }`)
	res2, _ := dfg.EvaluateByName(c2.Graph, map[string]bool{"a": false, "b": true, "c": true})
	if res2["o"] != (false || (true != true)) {
		t.Error("precedence wrong: a | b ^ c")
	}
}

func TestForLoopUnrolling(t *testing.T) {
	// Parity over an array via an unrolled loop.
	c := mustCompile(t, `
		void parity(word x[4], word *out) {
			word acc = x[0];
			for (i = 1; i < 4; i = i + 1) {
				acc = acc ^ x[i];
			}
			*out = acc;
		}`)
	if len(c.InputNames) != 4 {
		t.Fatalf("inputs = %v", c.InputNames)
	}
	for v := 0; v < 16; v++ {
		in := map[string]bool{}
		parity := false
		for i := 0; i < 4; i++ {
			bit := v>>uint(i)&1 == 1
			in[c.InputNames[i]] = bit
			parity = parity != bit
		}
		res, err := dfg.EvaluateByName(c.Graph, in)
		if err != nil {
			t.Fatal(err)
		}
		if res["out"] != parity {
			t.Fatalf("parity(%04b) = %v", v, res["out"])
		}
	}
}

func TestLoopVariants(t *testing.T) {
	for _, inc := range []string{"i++", "i += 1", "i = i + 1"} {
		src := `void k(word x[3], word *o) {
			word t = 0;
			for (i = 0; i <= 2; ` + inc + `) { t = t | x[i]; }
			*o = t;
		}`
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("increment %q: %v", inc, err)
		}
		res, err := dfg.EvaluateByName(c.Graph, map[string]bool{
			"x[0]": false, "x[1]": true, "x[2]": false,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res["o"] {
			t.Errorf("increment %q: OR-reduce wrong", inc)
		}
	}
}

func TestIndexArithmeticAndOutputArrays(t *testing.T) {
	c := mustCompile(t, `
		void shiftxor(word x[5], word *out[3]) {
			for (i = 0; i < 3; i++) {
				out[i] = x[i] ^ x[i+2];
			}
		}`)
	if len(c.OutputNames) != 3 {
		t.Fatalf("outputs = %v", c.OutputNames)
	}
	in := map[string]bool{"x[0]": true, "x[1]": false, "x[2]": true, "x[3]": true, "x[4]": false}
	res, err := dfg.EvaluateByName(c.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true != true, false != true, true != false}
	for i, w := range want {
		if res[c.OutputNames[i]] != w {
			t.Errorf("out[%d] = %v, want %v", i, res[c.OutputNames[i]], w)
		}
	}
}

func TestCompoundAssignment(t *testing.T) {
	c := mustCompile(t, `
		void k(word a, word b, word *o) {
			word t = a;
			t &= b;
			t ^= a;
			t |= b;
			*o = t;
		}`)
	res, err := dfg.EvaluateByName(c.Graph, map[string]bool{"a": true, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	tv := true && false
	tv = tv != true
	tv = tv || false
	if res["o"] != tv {
		t.Error("compound assignment chain wrong")
	}
}

func TestBitweavingStyleKernel(t *testing.T) {
	// The Fig. 3a shape: a BETWEEN predicate over bit-sliced columns.
	c := mustCompile(t, `
		// BETWEEN C1 AND C2, MSB-first column scan
		void between(word x[4], word c1[4], word c2[4], word *hit) {
			word lt = 0;
			word eq1 = 1;
			word gt = 0;
			word eq2 = 1;
			for (i = 0; i < 4; i++) {
				word xi = x[3-i];
				lt = lt | (eq1 & ~xi & c1[3-i]);
				eq1 = eq1 & ~(xi ^ c1[3-i]);
				gt = gt | (eq2 & xi & ~c2[3-i]);
				eq2 = eq2 & ~(xi ^ c2[3-i]);
			}
			*hit = ~lt & ~gt;
		}`)
	_ = c
}

func TestCommentsAreSkipped(t *testing.T) {
	mustCompile(t, `
		/* block
		   comment */
		void k(word a, word *o) { // line comment
			*o = ~a; /* inline */
		}`)
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"no outputs":           `void k(word a) { word t = a; }`,
		"undeclared var":       `void k(word a, word *o) { *o = zz; }`,
		"use before assign":    `void k(word a, word *o) { word t; *o = t; }`,
		"redeclaration":        `void k(word a, word *o) { word a = a; *o = a; }`,
		"read output":          `void k(word a, word *o) { *o = a; word t = o; *o = t; }`,
		"store to input":       `void k(word a, word *o) { *a = a; *o = a; }`,
		"output never set":     `void k(word a, word *o, word *p) { *o = a; }`,
		"array without index":  `void k(word x[3], word *o) { *o = x; }`,
		"index out of range":   `void k(word x[3], word *o) { *o = x[5]; }`,
		"stray loop var":       `void k(word x[3], word *o) { *o = x[i]; }`,
		"bad literal":          `void k(word a, word *o) { *o = a & 2; }`,
		"unterminated comment": `void k(word a, word *o) { /* ... `,
		"non-unit step":        `void k(word x[4], word *o) { word t = 0; for (i = 0; i < 4; i += 2) { t = t ^ x[i]; } *o = t; }`,
		"bad character":        `void k(word a, word *o) { *o = a @ a; }`,
		"constant output":      `void k(word a, word *o) { *o = a ^ a; }`,
		"trailing tokens":      `void k(word a, word *o) { *o = a; } extra`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

func TestLoopBoundSanity(t *testing.T) {
	_, err := Compile(`void k(word a, word *o) {
		word t = a;
		for (i = 0; i < 100000; i++) { t = t & a; }
		*o = t;
	}`)
	if err == nil || !strings.Contains(err.Error(), "unroll") {
		t.Errorf("huge loop accepted: %v", err)
	}
}

func TestNestedLoops(t *testing.T) {
	c := mustCompile(t, `
		void k(word x[6], word *o) {
			word t = 0;
			for (i = 0; i < 2; i++) {
				for (j = 0; j < 3; j++) {
					t = t ^ x[i+j];
				}
			}
			*o = t;
		}`)
	// t = x0^x1^x2 ^ x1^x2^x3 = x0 ^ x3.
	in := map[string]bool{"x[0]": true, "x[1]": true, "x[2]": false, "x[3]": false, "x[4]": false, "x[5]": false}
	res, err := dfg.EvaluateByName(c.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if res["o"] != true {
		t.Error("nested loop unrolling wrong")
	}
}
