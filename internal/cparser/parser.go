package cparser

import (
	"fmt"
	"strconv"
)

// AST node types for the supported C subset.

type expr interface{ exprNode() }

// varRef is a scalar or indexed reference: name, or name[index].
type varRef struct {
	name  string
	index *indexExpr // nil for scalars
}

// indexExpr is a loop-variable-affine index: a signed sum of loop
// variables plus a constant offset (e.g. i+j-1, 3-i, 7).
type indexExpr struct {
	terms  []indexTerm
	offset int
}

type indexTerm struct {
	loopVar string
	coeff   int // +1 or -1
}

type unaryExpr struct{ x expr } // operator ~

type binExpr struct {
	op   byte // '&', '|', '^'
	l, r expr
}

type litExpr struct{ val bool } // 0 or 1

func (*varRef) exprNode()    {}
func (*unaryExpr) exprNode() {}
func (*binExpr) exprNode()   {}
func (*litExpr) exprNode()   {}

type stmt interface{ stmtNode() }

// declStmt declares (and optionally initializes) a local word.
type declStmt struct {
	name string
	init expr // may be nil
}

// assignStmt writes a scalar, an array element, or an output (*name).
type assignStmt struct {
	target varRef
	deref  bool // *name = ... (output store)
	compOp byte // 0 for '=', else '&', '|', '^' for &=, |=, ^=
	rhs    expr
}

// forStmt is a constant-trip-count loop, fully unrolled by the lowering.
type forStmt struct {
	loopVar   string
	from, to  int
	inclusive bool
	body      []stmt
}

func (*declStmt) stmtNode()   {}
func (*assignStmt) stmtNode() {}
func (*forStmt) stmtNode()    {}

// param is one kernel parameter.
type param struct {
	name     string
	isOutput bool
	size     int // 0 = scalar, else array length
}

// kernel is a parsed kernel function.
type kernel struct {
	name   string
	params []param
	body   []stmt
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("cparser: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if p.cur().text != text {
		return p.errorf("expected %q, got %q", text, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) expectNumber() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected number, got %q", p.cur().text)
	}
	v, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, p.errorf("bad number: %v", err)
	}
	return v, nil
}

// parseKernel parses "void name(params) { body }".
func parseKernel(src string) (*kernel, error) {
	l, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: l.tokens}
	if err := p.expect("void"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	k := &kernel{name: name}
	for p.cur().text != ")" {
		if len(k.params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pr, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		k.params = append(k.params, pr)
	}
	p.pos++ // ')'
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unexpected end of input in body")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		k.body = append(k.body, s)
	}
	p.pos++ // '}'
	if p.cur().kind != tokEOF {
		return nil, p.errorf("trailing tokens after kernel body")
	}
	return k, nil
}

// parseParam parses "word name", "word name[N]", "word *name", or
// "word *name[N]".
func (p *parser) parseParam() (param, error) {
	if err := p.expect("word"); err != nil {
		return param{}, err
	}
	var pr param
	if p.cur().text == "*" {
		pr.isOutput = true
		p.pos++
	}
	name, err := p.expectIdent()
	if err != nil {
		return param{}, err
	}
	pr.name = name
	if p.cur().text == "[" {
		p.pos++
		n, err := p.expectNumber()
		if err != nil {
			return param{}, err
		}
		if n < 1 {
			return param{}, p.errorf("array size %d must be positive", n)
		}
		pr.size = n
		if err := p.expect("]"); err != nil {
			return param{}, err
		}
	}
	return pr, nil
}

func (p *parser) parseStmt() (stmt, error) {
	switch {
	case p.cur().text == "word":
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &declStmt{name: name}
		if p.cur().text == "=" {
			p.pos++
			d.init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return d, p.expect(";")
	case p.cur().text == "for":
		return p.parseFor()
	case p.cur().text == "*":
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		a := &assignStmt{target: varRef{name: name}, deref: true}
		if p.cur().text == "[" {
			idx, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			a.target.index = idx
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		if a.rhs, err = p.parseExpr(); err != nil {
			return nil, err
		}
		return a, p.expect(";")
	default:
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		a := &assignStmt{target: varRef{name: name}}
		if p.cur().text == "[" {
			idx, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			a.target.index = idx
		}
		switch p.cur().text {
		case "=":
			p.pos++
		case "&=", "|=", "^=":
			a.compOp = p.next().text[0]
		default:
			return nil, p.errorf("expected assignment, got %q", p.cur().text)
		}
		if a.rhs, err = p.parseExpr(); err != nil {
			return nil, err
		}
		return a, p.expect(";")
	}
}

// parseFor parses "for (i = A; i < B; i = i + 1) { body }" with the
// standard increment spellings (i++, i += 1, i = i + 1) and < or <= bounds.
func (p *parser) parseFor() (stmt, error) {
	p.pos++ // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	loopVar, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	from, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if v, err2 := p.expectIdent(); err2 != nil || v != loopVar {
		return nil, p.errorf("loop condition must test %q", loopVar)
	}
	inclusive := false
	switch p.cur().text {
	case "<":
	case "<=":
		inclusive = true
	default:
		return nil, p.errorf("loop condition must use < or <=")
	}
	p.pos++
	to, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	// Increment: i++, i += 1, or i = i + 1.
	if v, err2 := p.expectIdent(); err2 != nil || v != loopVar {
		return nil, p.errorf("loop increment must update %q", loopVar)
	}
	switch p.cur().text {
	case "++":
		p.pos++
	case "+=":
		p.pos++
		if n, err2 := p.expectNumber(); err2 != nil || n != 1 {
			return nil, p.errorf("only unit loop increments are supported")
		}
	case "=":
		p.pos++
		if v, err2 := p.expectIdent(); err2 != nil || v != loopVar {
			return nil, p.errorf("loop increment must be %s = %s + 1", loopVar, loopVar)
		}
		if err := p.expect("+"); err != nil {
			return nil, err
		}
		if n, err2 := p.expectNumber(); err2 != nil || n != 1 {
			return nil, p.errorf("only unit loop increments are supported")
		}
	default:
		return nil, p.errorf("unsupported loop increment %q", p.cur().text)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	f := &forStmt{loopVar: loopVar, from: from, to: to, inclusive: inclusive}
	for p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unexpected end of input in loop body")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.body = append(f.body, s)
	}
	p.pos++ // '}'
	return f, nil
}

// parseIndex parses "[i]", "[i+2]", "[i-1]", or "[3]". The leading '[' is
// current.
func (p *parser) parseIndex() (*indexExpr, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	idx := &indexExpr{}
	sign := 1
	for {
		switch p.cur().kind {
		case tokNumber:
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			idx.offset += sign * n
		case tokIdent:
			idx.terms = append(idx.terms, indexTerm{loopVar: p.next().text, coeff: sign})
		default:
			return nil, p.errorf("bad array index %q", p.cur().text)
		}
		switch p.cur().text {
		case "+":
			sign = 1
		case "-":
			sign = -1
		default:
			return idx, p.expect("]")
		}
		p.pos++
	}
}

// Expression precedence (C): | lowest, then ^, then &, then unary ~.

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "|" {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: '|', l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseXor() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "^" {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: '^', l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "&" {
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: '&', l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.cur().text == "~" {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	switch {
	case p.cur().text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.cur().kind == tokNumber:
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if n != 0 && n != 1 {
			return nil, p.errorf("only the literals 0 and 1 are valid word expressions")
		}
		return &litExpr{val: n == 1}, nil
	case p.cur().kind == tokIdent:
		name := p.next().text
		v := &varRef{name: name}
		if p.cur().text == "[" {
			idx, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			v.index = idx
		}
		return v, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", p.cur().text)
	}
}
