package cparser

import (
	"fmt"

	"sherlock/internal/dfg"
)

// Compiled is the front-end result: the DFG plus the kernel's signature.
type Compiled struct {
	Graph      *dfg.Graph
	KernelName string
	// InputNames and OutputNames follow parameter order; array parameters
	// expand to name[i] entries.
	InputNames  []string
	OutputNames []string
}

// Compile parses a kernel and lowers it (loops fully unrolled) to a DFG.
func Compile(src string) (*Compiled, error) {
	k, err := parseKernel(src)
	if err != nil {
		return nil, err
	}
	return lower(k)
}

// value environment entry: a scalar val or an array of vals.
type binding struct {
	isArray bool
	scalar  dfg.Val
	arr     []dfg.Val
	arrSet  []bool // per-slot assignment tracking for output arrays
	defined bool   // scalars only: assigned at least once
}

type lowerer struct {
	b       *dfg.Builder
	k       *kernel
	vals    map[string]*binding // word variables and input params
	outputs map[string]*binding // output params (assign-only)
	loops   map[string]int      // active loop variables
	scopes  []map[string]bool   // declaration sets of open loop bodies
	res     *Compiled
}

func lower(k *kernel) (*Compiled, error) {
	lo := &lowerer{
		b:       dfg.NewBuilder(),
		k:       k,
		vals:    make(map[string]*binding),
		outputs: make(map[string]*binding),
		loops:   make(map[string]int),
		res:     &Compiled{KernelName: k.name},
	}
	seen := make(map[string]bool)
	for _, pr := range k.params {
		if seen[pr.name] {
			return nil, fmt.Errorf("cparser: duplicate parameter %q", pr.name)
		}
		seen[pr.name] = true
		switch {
		case pr.isOutput && pr.size == 0:
			lo.outputs[pr.name] = &binding{}
			lo.res.OutputNames = append(lo.res.OutputNames, pr.name)
		case pr.isOutput:
			lo.outputs[pr.name] = &binding{isArray: true, arr: make([]dfg.Val, pr.size), arrSet: make([]bool, pr.size)}
			for i := 0; i < pr.size; i++ {
				lo.res.OutputNames = append(lo.res.OutputNames, arrName(pr.name, i))
			}
		case pr.size == 0:
			lo.vals[pr.name] = &binding{scalar: lo.b.Input(pr.name), defined: true}
			lo.res.InputNames = append(lo.res.InputNames, pr.name)
		default:
			arr := make([]dfg.Val, pr.size)
			for i := range arr {
				arr[i] = lo.b.Input(arrName(pr.name, i))
				lo.res.InputNames = append(lo.res.InputNames, arrName(pr.name, i))
			}
			lo.vals[pr.name] = &binding{isArray: true, arr: arr, defined: true}
		}
	}
	if len(lo.outputs) == 0 {
		return nil, fmt.Errorf("cparser: kernel %q has no output parameters", k.name)
	}
	if err := lo.stmts(k.body); err != nil {
		return nil, err
	}
	// Mark outputs; every output slot must have been stored.
	for _, pr := range k.params {
		if !pr.isOutput {
			continue
		}
		ob := lo.outputs[pr.name]
		if !ob.isArray {
			if !ob.defined {
				return nil, fmt.Errorf("cparser: output %q never assigned", pr.name)
			}
			if err := lo.markOutput(pr.name, ob.scalar); err != nil {
				return nil, err
			}
			continue
		}
		for i, v := range ob.arr {
			if !ob.arrSet[i] {
				return nil, fmt.Errorf("cparser: output %q[%d] never assigned", pr.name, i)
			}
			if err := lo.markOutput(arrName(pr.name, i), v); err != nil {
				return nil, err
			}
		}
	}
	lo.res.Graph = lo.b.Graph()
	return lo.res, nil
}

func (lo *lowerer) markOutput(name string, v dfg.Val) error {
	if c, _ := v.IsConst(); c {
		return fmt.Errorf("cparser: output %q is a compile-time constant; nothing to compute", name)
	}
	lo.b.Output(name, v)
	return nil
}

func arrName(base string, i int) string { return fmt.Sprintf("%s[%d]", base, i) }

func (lo *lowerer) stmts(list []stmt) error {
	for _, s := range list {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s stmt) error {
	switch s := s.(type) {
	case *declStmt:
		if _, exists := lo.vals[s.name]; exists {
			return fmt.Errorf("cparser: redeclaration of %q", s.name)
		}
		if _, exists := lo.outputs[s.name]; exists {
			return fmt.Errorf("cparser: %q shadows an output parameter", s.name)
		}
		bd := &binding{}
		if s.init != nil {
			v, err := lo.expr(s.init)
			if err != nil {
				return err
			}
			bd.scalar, bd.defined = v, true
		}
		lo.vals[s.name] = bd
		if len(lo.scopes) > 0 {
			lo.scopes[len(lo.scopes)-1][s.name] = true
		}
		return nil
	case *assignStmt:
		return lo.assign(s)
	case *forStmt:
		if _, active := lo.loops[s.loopVar]; active {
			return fmt.Errorf("cparser: nested reuse of loop variable %q", s.loopVar)
		}
		hi := s.to
		if s.inclusive {
			hi++
		}
		if hi-s.from > 1<<16 {
			return fmt.Errorf("cparser: loop over %q unrolls to %d iterations", s.loopVar, hi-s.from)
		}
		for i := s.from; i < hi; i++ {
			lo.loops[s.loopVar] = i
			// Each unrolled iteration opens a fresh block scope: locals
			// declared inside the body vanish at the iteration's end.
			declared := make(map[string]bool)
			lo.scopes = append(lo.scopes, declared)
			if err := lo.stmts(s.body); err != nil {
				return err
			}
			lo.scopes = lo.scopes[:len(lo.scopes)-1]
			for name := range declared {
				delete(lo.vals, name)
			}
		}
		delete(lo.loops, s.loopVar)
		return nil
	}
	return fmt.Errorf("cparser: unknown statement %T", s)
}

func (lo *lowerer) assign(a *assignStmt) error {
	rhs, err := lo.expr(a.rhs)
	if err != nil {
		return err
	}
	if a.deref || func() bool { _, ok := lo.outputs[a.target.name]; return ok }() {
		ob, ok := lo.outputs[a.target.name]
		if !ok {
			return fmt.Errorf("cparser: store through %q, which is not an output", a.target.name)
		}
		if a.compOp != 0 {
			return fmt.Errorf("cparser: compound assignment to output %q unsupported", a.target.name)
		}
		if ob.isArray {
			if a.target.index == nil {
				return fmt.Errorf("cparser: output array %q needs an index", a.target.name)
			}
			i, err := lo.resolveIndex(a.target.index, len(ob.arr), a.target.name)
			if err != nil {
				return err
			}
			ob.arr[i] = rhs
			ob.arrSet[i] = true
			return nil
		}
		if a.target.index != nil {
			return fmt.Errorf("cparser: output %q is scalar", a.target.name)
		}
		ob.scalar, ob.defined = rhs, true
		return nil
	}

	bd, ok := lo.vals[a.target.name]
	if !ok {
		return fmt.Errorf("cparser: assignment to undeclared %q", a.target.name)
	}
	apply := func(old dfg.Val) dfg.Val {
		switch a.compOp {
		case '&':
			return lo.b.And(old, rhs)
		case '|':
			return lo.b.Or(old, rhs)
		case '^':
			return lo.b.Xor(old, rhs)
		}
		return rhs
	}
	if bd.isArray {
		if a.target.index == nil {
			return fmt.Errorf("cparser: array %q needs an index", a.target.name)
		}
		i, err := lo.resolveIndex(a.target.index, len(bd.arr), a.target.name)
		if err != nil {
			return err
		}
		bd.arr[i] = apply(bd.arr[i])
		return nil
	}
	if a.target.index != nil {
		return fmt.Errorf("cparser: %q is not an array", a.target.name)
	}
	if a.compOp != 0 && !bd.defined {
		return fmt.Errorf("cparser: compound assignment to unassigned %q", a.target.name)
	}
	bd.scalar = apply(bd.scalar)
	bd.defined = true
	return nil
}

func (lo *lowerer) resolveIndex(idx *indexExpr, size int, what string) (int, error) {
	i := idx.offset
	for _, term := range idx.terms {
		v, ok := lo.loops[term.loopVar]
		if !ok {
			return 0, fmt.Errorf("cparser: index variable %q is not an active loop variable", term.loopVar)
		}
		i += term.coeff * v
	}
	if i < 0 || i >= size {
		return 0, fmt.Errorf("cparser: index %d out of range for %q (size %d)", i, what, size)
	}
	return i, nil
}

func (lo *lowerer) expr(e expr) (dfg.Val, error) {
	switch e := e.(type) {
	case *litExpr:
		return lo.b.Const(e.val), nil
	case *unaryExpr:
		v, err := lo.expr(e.x)
		if err != nil {
			return dfg.Val{}, err
		}
		return lo.b.Not(v), nil
	case *binExpr:
		l, err := lo.expr(e.l)
		if err != nil {
			return dfg.Val{}, err
		}
		r, err := lo.expr(e.r)
		if err != nil {
			return dfg.Val{}, err
		}
		switch e.op {
		case '&':
			return lo.b.And(l, r), nil
		case '|':
			return lo.b.Or(l, r), nil
		case '^':
			return lo.b.Xor(l, r), nil
		}
		return dfg.Val{}, fmt.Errorf("cparser: unknown operator %q", e.op)
	case *varRef:
		if _, isOut := lo.outputs[e.name]; isOut {
			return dfg.Val{}, fmt.Errorf("cparser: output %q cannot be read", e.name)
		}
		bd, ok := lo.vals[e.name]
		if !ok {
			return dfg.Val{}, fmt.Errorf("cparser: use of undeclared %q", e.name)
		}
		if bd.isArray {
			if e.index == nil {
				return dfg.Val{}, fmt.Errorf("cparser: array %q needs an index", e.name)
			}
			i, err := lo.resolveIndex(e.index, len(bd.arr), e.name)
			if err != nil {
				return dfg.Val{}, err
			}
			return bd.arr[i], nil
		}
		if e.index != nil {
			return dfg.Val{}, fmt.Errorf("cparser: %q is not an array", e.name)
		}
		if !bd.defined {
			return dfg.Val{}, fmt.Errorf("cparser: use of %q before assignment", e.name)
		}
		return bd.scalar, nil
	}
	return dfg.Val{}, fmt.Errorf("cparser: unknown expression %T", e)
}
