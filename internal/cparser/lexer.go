// Package cparser implements Sherlock's front-end: a small C-subset parser
// that turns bulk-bitwise kernels into DFGs — the role pycparser plays in
// the paper's flow (Sec. 3.1).
//
// Supported subset (enough to express kernels like Fig. 3a):
//
//	void kernel(word x, word c1, word *out) {
//	    word t = x & ~c1;
//	    for (i = 0; i < 4; i = i + 1) {
//	        t = t ^ c1;
//	    }
//	    *out = t;
//	}
//
// Types: a single bit-vector type "word" (one DFG operand per value).
// Parameters: value parameters are kernel inputs, pointer parameters are
// kernel outputs. Statements: declarations with initializers, assignments,
// output stores, and constant-bound for loops (fully unrolled). Arrays of
// words with constant or i±const indices are supported inside loops.
// Expressions: & | ^ ~ and parentheses, plus the literals 0 and 1.
package cparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single/compound punctuation, in text
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src    string
	tokens []token
}

func lex(src string) (*lexer, error) {
	l := &lexer{src: src}
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("cparser: line %d: unterminated comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			l.tokens = append(l.tokens, token{tokIdent, src[i:j], i, line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			l.tokens = append(l.tokens, token{tokNumber, src[i:j], i, line})
			i = j
		default:
			// Compound operators first.
			for _, op := range []string{"<=", ">=", "==", "!=", "++", "+=", "-=", "&=", "|=", "^="} {
				if strings.HasPrefix(src[i:], op) {
					l.tokens = append(l.tokens, token{tokPunct, op, i, line})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', '{', '}', '[', ']', ';', ',', '=', '&', '|', '^', '~', '*', '<', '>', '+', '-':
				l.tokens = append(l.tokens, token{tokPunct, string(c), i, line})
				i++
			default:
				return nil, fmt.Errorf("cparser: line %d: unexpected character %q", line, c)
			}
		next:
		}
	}
	l.tokens = append(l.tokens, token{tokEOF, "", len(src), line})
	return l, nil
}
