package experiments

import (
	"strings"
	"testing"

	"sherlock/internal/device"
)

// quickRunner is shared across tests in this package; experiments memoize
// heavily, so reusing one runner keeps the suite fast.
var quickRunner = NewRunner(QuickSetup())

func TestTable2GridComplete(t *testing.T) {
	rows, err := Table2(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	s := quickRunner.Setup()
	want := len(s.Techs) * len(Workloads()) * len(s.ArraySizes) * 2 * 2
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.LatencyUS <= 0 || r.EnergyUJ <= 0 || r.Instructions <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	find := func(tech device.Technology, w Workload, size int, opt, multi bool) Table2Row {
		for _, r := range rows {
			if r.Tech == tech && r.Workload == w && r.ArraySize == size &&
				r.Optimized == opt && r.MultiRow == multi {
				return r
			}
		}
		t.Fatalf("row not found")
		return Table2Row{}
	}
	// The optimized mapper must not be worse than naive on latency for the
	// large multi-column kernels (AES, Sobel).
	for _, w := range []Workload{Sobel, AES} {
		for _, size := range quickRunner.Setup().ArraySizes {
			n := find(device.ReRAM, w, size, false, false)
			o := find(device.ReRAM, w, size, true, false)
			if o.LatencyUS > n.LatencyUS {
				t.Errorf("%v@%d: opt latency %.1f > naive %.1f", w, size, o.LatencyUS, n.LatencyUS)
			}
			if o.Instructions >= n.Instructions {
				t.Errorf("%v@%d: opt instructions %d >= naive %d", w, size, o.Instructions, n.Instructions)
			}
		}
	}
	// MRA >= 2 lowers naive latency (paper: ~1.28x average).
	for _, w := range Workloads() {
		base := find(device.STTMRAM, w, 512, false, false)
		multi := find(device.STTMRAM, w, 512, false, true)
		if multi.LatencyUS > base.LatencyUS*1.01 {
			t.Errorf("%v: naive MRA>=2 latency %.2f worse than MRA=2 %.2f", w, multi.LatencyUS, base.LatencyUS)
		}
	}
	// STT-MRAM is faster than ReRAM on write-heavy kernels (AES).
	re := find(device.ReRAM, AES, 512, false, false)
	stt := find(device.STTMRAM, AES, 512, false, false)
	if stt.LatencyUS >= re.LatencyUS {
		t.Errorf("STT-MRAM AES latency %.1f >= ReRAM %.1f", stt.LatencyUS, re.LatencyUS)
	}
}

func TestSummarizeRatios(t *testing.T) {
	rows, err := Table2(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rows)
	if s.GeomeanLatencyGain < 1 {
		t.Errorf("opt latency gain %.2f < 1", s.GeomeanLatencyGain)
	}
	if s.GeomeanEnergyGain < 1 {
		t.Errorf("opt energy gain %.2f < 1", s.GeomeanEnergyGain)
	}
	if s.NaiveMRALatencyGain < 1 {
		t.Errorf("MRA latency gain %.2f < 1", s.NaiveMRALatencyGain)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	rows, err := Table2(quickRunner)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable2(rows)
	for _, want := range []string{"Bitweaving", "AES", "ReRAM", "naive", ">=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q", want)
		}
	}
	f2 := RenderFig2b(Fig2b(device.Technologies()))
	for _, want := range []string{"STT-MRAM", "AND", "P_DF"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Fig 2b render missing %q", want)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	rows := Fig2b([]device.Technology{device.STTMRAM, device.ReRAM})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.PDF <= 0 || r.PDF >= 1 || r.MarginZ <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestFig6SweepShape(t *testing.T) {
	series, err := Fig6(quickRunner, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 { // 2 techs x 2 mappers
		t.Fatalf("series = %d, want 4", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 5 {
			t.Fatalf("points = %d, want 5", len(s.Points))
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		// Allowing all fusions must reduce latency and raise (or keep)
		// P_app relative to none.
		if last.LatencyNS >= first.LatencyNS {
			t.Errorf("%v opt=%v: latency did not improve across sweep", s.Tech, s.Optimized)
		}
		if last.PApp < first.PApp {
			t.Errorf("%v opt=%v: P_app decreased with more MRA", s.Tech, s.Optimized)
		}
		if last.AchievedMRAPercent <= 0 {
			t.Errorf("%v opt=%v: no multi-operand ops at full fraction", s.Tech, s.Optimized)
		}
	}
	out := RenderFig6(series)
	if !strings.Contains(out, "NAND-based") {
		t.Error("render missing STT-MRAM NAND variant marker")
	}
	// ReRAM stays usable (paper: < 1e-4 is highly reliable); STT-MRAM
	// lands around 1e-2 (tolerant applications only).
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		if s.Tech == device.ReRAM && last.PApp > 1e-2 {
			t.Errorf("ReRAM P_app %.2e implausibly high", last.PApp)
		}
		if s.Tech == device.STTMRAM && (last.PApp < 1e-4 || last.PApp > 0.9) {
			t.Errorf("STT-MRAM P_app %.2e outside the paper's band", last.PApp)
		}
	}
}

func TestFig6CostAwareHelpsReRAM(t *testing.T) {
	series, err := Fig6(quickRunner, 128)
	if err != nil {
		t.Fatal(err)
	}
	gains := Fig6Summary(series)
	if gains[device.ReRAM] < 1 {
		t.Errorf("opt P_app gain on ReRAM = %.2f, want >= 1", gains[device.ReRAM])
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(quickRunner, []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Workloads())*2*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sttBeatsReRAM, anyBigGain bool
	byKey := make(map[string]Fig7Row)
	for _, r := range rows {
		if r.CIMEDP <= 0 || r.CPUEDP <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byKey[r.Workload.String()+r.Tech.String()+string(rune(r.ArraySize))] = r
		if r.EDPGain > 20 {
			anyBigGain = true
		}
	}
	for _, w := range Workloads() {
		for _, size := range []int{128, 512} {
			re := byKey[w.String()+device.ReRAM.String()+string(rune(size))]
			stt := byKey[w.String()+device.STTMRAM.String()+string(rune(size))]
			if stt.CIMEDP < re.CIMEDP {
				sttBeatsReRAM = true
			}
		}
	}
	if !sttBeatsReRAM {
		t.Error("STT-MRAM never beats ReRAM on EDP (paper: ~10x)")
	}
	if !anyBigGain {
		t.Error("no configuration shows a large EDP gain over the CPU")
	}
	if out := RenderFig7(rows); !strings.Contains(out, "Gain") {
		t.Error("Fig 7 render malformed")
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(QuickSetup())
	a, err := r.Map(Bitweaving, 0, false, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Map(Bitweaving, 0, false, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Map not memoized")
	}
	g1, _ := r.Graph(Bitweaving, 1, false)
	g2, _ := r.GraphCostAware(Bitweaving, 1, false, device.ReRAM)
	if g1 == g2 {
		t.Error("cost-aware graph shares cache slot with blind graph")
	}
}

func TestMonteCarloValidatesAnalyticalModel(t *testing.T) {
	// On STT-MRAM the bitweaving kernel has a large P_app, so a modest
	// run count gives a tight estimate: the observed fault rate must
	// track the closed-form P_app, and masking keeps the output error
	// rate at or below it.
	mc, err := MonteCarlo(quickRunner, Bitweaving, device.STTMRAM, 128, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mc.AnalyticalPApp < 0.01 {
		t.Fatalf("P_app %.3e too small for a statistical test", mc.AnalyticalPApp)
	}
	lo, hi := mc.AnalyticalPApp*0.7, mc.AnalyticalPApp*1.3+0.05
	if mc.ObservedFaultRate < lo || mc.ObservedFaultRate > hi {
		t.Errorf("observed fault rate %.3f outside [%.3f, %.3f] around analytical %.3f",
			mc.ObservedFaultRate, lo, hi, mc.AnalyticalPApp)
	}
	if mc.ObservedErrorRate > mc.ObservedFaultRate {
		t.Errorf("output error rate %.3f exceeds fault rate %.3f", mc.ObservedErrorRate, mc.ObservedFaultRate)
	}
	if mc.FaultsInjected == 0 {
		t.Error("no faults injected")
	}
	if out := RenderMC([]MCResult{mc}); !strings.Contains(out, "masking") {
		t.Error("render malformed")
	}
}

func TestMonteCarloReRAMIsQuiet(t *testing.T) {
	// ReRAM's P_app is tiny: hundreds of runs should see (almost) no
	// faults.
	mc, err := MonteCarlo(quickRunner, Bitweaving, device.ReRAM, 128, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mc.ObservedFaultRate > 0.1 {
		t.Errorf("ReRAM observed fault rate %.3f implausibly high (P_app %.3e)",
			mc.ObservedFaultRate, mc.AnalyticalPApp)
	}
}
