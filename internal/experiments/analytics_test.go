package experiments

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic injected clock: each call advances one
// millisecond, so timing math exercises without wall time.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// TestAnalyticsDeterministicTallies runs the campaign small with a fake
// clock: the plans must produce exact host-verified tallies (Analytics
// itself errors on any CIM/host divergence) and identical counts across
// repeat runs and parallelism settings.
func TestAnalyticsDeterministicTallies(t *testing.T) {
	cfg := AnalyticsConfig{Rows: 10_000, Seed: 42, Parallelism: 1}
	a, err := Analytics(cfg, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 {
		t.Fatalf("got %d rows, want 2", len(a))
	}
	cfg.Parallelism = 3
	b, err := Analytics(cfg, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Sum != b[i].Sum {
			t.Errorf("row %d: tallies differ across parallelism: %d/%d vs %d/%d",
				i, a[i].Count, a[i].Sum, b[i].Count, b[i].Sum)
		}
		if a[i].Count <= 0 || a[i].Count >= int64(cfg.Rows) {
			t.Errorf("row %d: degenerate selectivity %d/%d", i, a[i].Count, cfg.Rows)
		}
	}
	if a[1].Sum == 0 {
		t.Error("filter+SUM plan produced a zero sum")
	}

	out := RenderAnalytics(a)
	if out != RenderAnalytics(b) {
		t.Error("deterministic render differs across parallelism")
	}
	for _, want := range []string{"bitmap-index COUNT", "filter+SUM", "10000 rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	timing := RenderAnalyticsTiming(a)
	for _, want := range []string{"stream rows/s", "cpu rows/s", "spdup"} {
		if !strings.Contains(timing, want) {
			t.Errorf("timing render missing %q:\n%s", want, timing)
		}
	}
}

func TestAnalyticsRejectsBadConfig(t *testing.T) {
	if _, err := Analytics(AnalyticsConfig{Rows: 0}, fakeClock()); err == nil {
		t.Error("zero rows should fail")
	}
}
