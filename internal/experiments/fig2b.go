package experiments

import (
	"fmt"
	"strings"

	"sherlock/internal/device"
	"sherlock/internal/logic"
)

// Fig2bRow is one decision-failure data point: a technology, sense
// operation and activated-row count, with the failure probability and
// sense margin of the composite distributions (the overlap of Fig. 2b).
type Fig2bRow struct {
	Tech    device.Technology
	Op      logic.Op
	Rows    int
	PDF     float64
	MarginZ float64 // separation in combined standard deviations
}

// Fig2b tabulates P_DF across technologies, operations and row counts —
// the quantitative content of the paper's Fig. 2b.
func Fig2b(techs []device.Technology) []Fig2bRow {
	var rows []Fig2bRow
	for _, tech := range techs {
		p := device.ParamsFor(tech)
		for _, op := range []logic.Op{logic.And, logic.Or, logic.Xor} {
			for k := 2; k <= p.MaxRows; k++ {
				rows = append(rows, Fig2bRow{
					Tech:    tech,
					Op:      op,
					Rows:    k,
					PDF:     p.DecisionFailure(op, k),
					MarginZ: p.SenseMargin(op, k),
				})
			}
		}
	}
	return rows
}

// RenderFig2b prints the decision-failure table.
func RenderFig2b(rows []Fig2bRow) string {
	var sb strings.Builder
	sb.WriteString("Fig. 2b: decision failure vs simultaneously activated rows\n")
	sb.WriteString(fmt.Sprintf("%-10s %-5s %-5s %12s %10s\n", "Tech", "Op", "Rows", "P_DF", "margin(z)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %-5s %-5d %12.3e %10.2f\n",
			r.Tech, r.Op, r.Rows, r.PDF, r.MarginZ))
	}
	return sb.String()
}
