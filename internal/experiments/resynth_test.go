package experiments

import (
	"strings"
	"testing"

	"sherlock/internal/device"
)

func TestResynthAblationShape(t *testing.T) {
	r := NewRunner(QuickSetup())
	rows, err := Resynth(r, device.STTMRAM, 128)
	if err != nil {
		t.Fatal(err)
	}
	workloads := ResynthWorkloads()
	variants := []ResynthVariant{ResynthOff, ResynthBalance, ResynthFull}
	if len(rows) != len(workloads)*len(variants) {
		t.Fatalf("got %d rows, want %d", len(rows), len(workloads)*len(variants))
	}
	i := 0
	for _, w := range workloads {
		var baseLatency float64
		for _, v := range variants {
			row := rows[i]
			i++
			if row.Workload != w || row.Variant != v {
				t.Fatalf("row %d is (%v, %v), want (%v, %v)", i-1, row.Workload, row.Variant, w, v)
			}
			if row.LatencyUS <= 0 || row.EnergyUJ <= 0 || row.Instructions <= 0 {
				t.Fatalf("row %d has non-positive cost: %+v", i-1, row)
			}
			switch v {
			case ResynthOff:
				baseLatency = row.LatencyUS
				if row.Speedup != 1 {
					t.Fatalf("baseline speedup = %v, want 1", row.Speedup)
				}
			default:
				// The optimizer keeps the baseline whenever no candidate
				// beats it, so resynthesis is never a slowdown.
				if row.LatencyUS > baseLatency {
					t.Fatalf("%v %v is slower than its baseline: %.3f > %.3f us",
						w, v, row.LatencyUS, baseLatency)
				}
				if row.Speedup < 1 {
					t.Fatalf("%v %v speedup %.3f < 1", w, v, row.Speedup)
				}
			}
		}
	}
	table := RenderResynth(rows)
	for _, want := range []string{"workload", "baseline", "balance", "full", "speedup"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}
}
