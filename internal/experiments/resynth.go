package experiments

import (
	"fmt"
	"strings"

	"sherlock/internal/arraymodel"
	"sherlock/internal/coopt"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
)

// ResynthVariant selects how much of the co-optimization portfolio a
// Resynth ablation row may use.
type ResynthVariant int

const (
	// ResynthOff is the plain Algorithm 2 baseline (no resynthesis).
	ResynthOff ResynthVariant = iota
	// ResynthBalance restricts the portfolio to round-trip + balance.
	ResynthBalance
	// ResynthFull runs the complete pass portfolio.
	ResynthFull
)

func (v ResynthVariant) String() string {
	switch v {
	case ResynthOff:
		return "baseline"
	case ResynthBalance:
		return "balance"
	case ResynthFull:
		return "full"
	default:
		return fmt.Sprintf("ResynthVariant(%d)", int(v))
	}
}

// ResynthRow is one ablation cell: a workload compiled by Algorithm 2 with
// a given slice of the resynthesis portfolio.
type ResynthRow struct {
	Workload Workload
	Variant  ResynthVariant

	LatencyUS    float64
	EnergyUJ     float64
	Instructions int
	AndsBefore   int // lifted AIG size (0 for the baseline row)
	AndsAfter    int
	Evaluations  int
	Improved     bool
	Speedup      float64 // baseline latency / this latency
}

// ResynthWorkloads are the kernels the co-optimization ablation sweeps:
// the paper's latency-critical image kernel and its crypto kernel.
func ResynthWorkloads() []Workload { return []Workload{Sobel, AES} }

// Resynth runs the synthesis↔scheduling ablation on one technology and
// array size: for each workload, Algorithm 2 alone, then co-optimization
// with the balance-only portfolio, then with the full portfolio. Rows for
// one workload share the baseline, so speedups are directly comparable.
func Resynth(r *Runner, tech device.Technology, arraySize int) ([]ResynthRow, error) {
	model := arraymodel.New(arraymodel.DefaultConfig(tech, arraySize))
	params := device.ParamsFor(tech)
	workloads := ResynthWorkloads()
	variants := []ResynthVariant{ResynthOff, ResynthBalance, ResynthFull}

	rows := make([]ResynthRow, 0, len(workloads)*len(variants))
	for _, w := range workloads {
		g, err := r.Graph(w, 0, false)
		if err != nil {
			return nil, err
		}
		evaluate := func(g *dfg.Graph) (*mapping.Result, error) {
			return mapping.Optimized(g, mapping.Options{
				Target: layout.Target{
					Arrays: r.setup.Arrays,
					Rows:   arraySize,
					Cols:   arraySize,
				},
			})
		}
		var baseLatency float64
		for _, v := range variants {
			var res *mapping.Result
			var stats coopt.Stats
			if v == ResynthOff {
				if res, err = evaluate(g); err != nil {
					return nil, err
				}
			} else {
				portfolio := coopt.DefaultPortfolio()
				if v == ResynthBalance {
					portfolio = coopt.PortfolioBalance()
				}
				opt, err := coopt.Optimize(g, coopt.Config{
					MaxRows:   params.MaxRows,
					Workers:   r.Workers(),
					Portfolio: portfolio,
					Evaluate:  evaluate,
					Score: func(m *mapping.Result) (coopt.Score, error) {
						return coopt.ScoreMapped(m, model, params)
					},
				})
				if err != nil {
					return nil, err
				}
				res, stats = opt.Mapped, opt.Stats
			}
			cost, err := Cost(res, tech, arraySize)
			if err != nil {
				return nil, err
			}
			row := ResynthRow{
				Workload:     w,
				Variant:      v,
				LatencyUS:    cost.LatencyUS(),
				EnergyUJ:     cost.EnergyUJ(),
				Instructions: res.Stats.Instructions,
				AndsBefore:   stats.AndsBefore,
				AndsAfter:    stats.AndsAfter,
				Evaluations:  stats.Evaluations,
				Improved:     stats.Improved,
			}
			if v == ResynthOff {
				baseLatency = row.LatencyUS
			}
			if row.LatencyUS > 0 {
				row.Speedup = baseLatency / row.LatencyUS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderResynth prints the ablation table.
func RenderResynth(rows []ResynthRow) string {
	var sb strings.Builder
	sb.WriteString("Resynthesis ablation: Algorithm 2 alone vs synthesis<->scheduling co-optimization\n")
	sb.WriteString(fmt.Sprintf("%-10s %-9s %12s %11s %7s %7s %7s %9s\n",
		"workload", "variant", "latency_us", "energy_uJ", "instrs", "ANDs", "evals", "speedup"))
	for _, r := range rows {
		ands := "-"
		if r.Variant != ResynthOff {
			ands = fmt.Sprintf("%d", r.AndsAfter)
		}
		sb.WriteString(fmt.Sprintf("%-10v %-9v %12.2f %11.3f %7d %7s %7d %8.3fx\n",
			r.Workload, r.Variant, r.LatencyUS, r.EnergyUJ, r.Instructions,
			ands, r.Evaluations, r.Speedup))
	}
	return sb.String()
}
