package experiments

import (
	"fmt"
	"math"
	"strings"

	"sherlock/internal/device"
)

// Table2Row is one cell group of the paper's Table 2: a (technology,
// workload, array size, mapper, MRA) configuration with its measured
// latency and energy.
type Table2Row struct {
	Tech      device.Technology
	Workload  Workload
	ArraySize int
	Optimized bool
	MultiRow  bool // false = MRA exactly 2, true = MRA >= 2 (fused DAG)

	LatencyUS    float64
	EnergyUJ     float64
	Instructions int
	Copies       int
	ColumnsUsed  int
}

// Table2 regenerates the full grid. Every cell of the
// (tech x workload x size x mapper x MRA) product is independent, so cells
// fan out over the campaign's worker pool and land at their precomputed
// index — the returned slice is in paper order for any parallelism.
func Table2(r *Runner) ([]Table2Row, error) {
	type cell struct {
		tech      device.Technology
		w         Workload
		size      int
		optimized bool
		multiRow  bool
	}
	var cells []cell
	for _, tech := range r.Setup().Techs {
		for _, w := range Workloads() {
			for _, size := range r.Setup().ArraySizes {
				for _, optimized := range []bool{false, true} {
					for _, multiRow := range []bool{false, true} {
						cells = append(cells, cell{tech, w, size, optimized, multiRow})
					}
				}
			}
		}
	}
	rows := make([]Table2Row, len(cells))
	err := r.runCells(len(cells), func(i int) error {
		c := cells[i]
		frac := 0.0
		if c.multiRow {
			frac = 1.0
		}
		res, err := r.Map(c.w, frac, false, c.size, !c.optimized)
		if err != nil {
			return err
		}
		cost, err := Cost(res, c.tech, c.size)
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			Tech:         c.tech,
			Workload:     c.w,
			ArraySize:    c.size,
			Optimized:    c.optimized,
			MultiRow:     c.multiRow,
			LatencyUS:    cost.LatencyUS(),
			EnergyUJ:     cost.EnergyUJ(),
			Instructions: res.Stats.Instructions,
			Copies:       res.Stats.Copies,
			ColumnsUsed:  res.Stats.ColumnsUsed,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable2 prints the grid in the layout of the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: latency and energy across memory sizes and optimizations\n")
	sb.WriteString(fmt.Sprintf("%-10s %-11s %-6s %-7s %-6s %14s %14s %10s\n",
		"Tech", "Benchmark", "Array", "Mapper", "MRA", "Latency(us)", "Energy(uJ)", "Instr"))
	for _, row := range rows {
		mapper := "naive"
		if row.Optimized {
			mapper = "opt"
		}
		mra := "2"
		if row.MultiRow {
			mra = ">=2"
		}
		sb.WriteString(fmt.Sprintf("%-10s %-11s %-6d %-7s %-6s %14.3f %14.3f %10d\n",
			row.Tech, row.Workload, row.ArraySize, mapper, mra,
			row.LatencyUS, row.EnergyUJ, row.Instructions))
	}
	return sb.String()
}

// Table2Summary computes the headline ratios the paper reports: the
// optimized mapper's latency and energy gains over naive, and the MRA >= 2
// latency gain for the naive mapper.
type Table2Summary struct {
	// GeomeanLatencyGain and GeomeanEnergyGain of opt over naive across
	// all (tech, workload, size, MRA) cells.
	GeomeanLatencyGain float64
	GeomeanEnergyGain  float64
	// NaiveMRALatencyGain: naive MRA>=2 vs naive MRA=2 (paper: ~1.28x).
	NaiveMRALatencyGain float64
}

// Summarize reduces the rows to the headline ratios.
func Summarize(rows []Table2Row) Table2Summary {
	type cfg struct {
		tech      device.Technology
		w         Workload
		size      int
		multi     bool
		optimized bool
	}
	byCfg := make(map[cfg]Table2Row)
	for _, r := range rows {
		byCfg[cfg{r.Tech, r.Workload, r.ArraySize, r.MultiRow, r.Optimized}] = r
	}
	var s Table2Summary
	latProd, enProd, n := 1.0, 1.0, 0
	mraProd, m := 1.0, 0
	// Iterate the input slice, not byCfg: the products below are
	// floating-point and therefore order-sensitive in their last bits, and
	// map iteration order would make the published summary wobble per run.
	seen := make(map[cfg]bool)
	for _, r := range rows {
		key := cfg{r.Tech, r.Workload, r.ArraySize, r.MultiRow, r.Optimized}
		if key.optimized || seen[key] {
			continue
		}
		seen[key] = true
		naive := byCfg[key]
		optKey := key
		optKey.optimized = true
		opt, ok := byCfg[optKey]
		if !ok {
			continue
		}
		latProd *= naive.LatencyUS / opt.LatencyUS
		enProd *= naive.EnergyUJ / opt.EnergyUJ
		n++
		if key.multi {
			baseKey := key
			baseKey.multi = false
			if base, ok := byCfg[baseKey]; ok {
				mraProd *= base.LatencyUS / naive.LatencyUS
				m++
			}
		}
	}
	if n > 0 {
		s.GeomeanLatencyGain = math.Pow(latProd, 1/float64(n))
		s.GeomeanEnergyGain = math.Pow(enProd, 1/float64(n))
	}
	if m > 0 {
		s.NaiveMRALatencyGain = math.Pow(mraProd, 1/float64(m))
	}
	return s
}
