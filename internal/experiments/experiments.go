// Package experiments regenerates the paper's evaluation artifacts:
// Table 2 (latency/energy across technologies, array sizes, mappers and
// multi-row-activation settings), Fig. 2b (decision-failure statistics),
// Fig. 6 (reliability vs latency under the MRA sweep) and Fig. 7 (EDP vs
// the CPU baseline).
//
// The SIMD ("bulk") dimension: a mapped program computes one bit-slice per
// lane; the macro drives Lanes(n) lane slices from one instruction stream
// (Table 1 pairs an n x n array with a 4n data width). Latency is
// lane-independent, energy scales with the lane count, and reliability is
// reported per lane (per result), matching Fig. 6's magnitudes.
//
// Campaigns run on a parallel engine: independent grid cells fan out over
// a bounded worker pool (Setup.Parallelism) and land at precomputed
// indices, Monte-Carlo trials shard into fixed seeded streams, and the
// Runner memoizes singleflight-style — results are deterministic and
// byte-identical for every worker count.
package experiments

import (
	"fmt"
	"runtime"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/memo"
	"sherlock/internal/pool"
	"sherlock/internal/sim"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// Workload enumerates the evaluation kernels.
type Workload int

// The paper's three benchmarks.
const (
	Bitweaving Workload = iota
	Sobel
	AES
)

// Workloads lists the benchmarks in the paper's presentation order.
func Workloads() []Workload { return []Workload{Bitweaving, Sobel, AES} }

func (w Workload) String() string {
	switch w {
	case Bitweaving:
		return "Bitweaving"
	case Sobel:
		return "Sobel"
	case AES:
		return "AES"
	}
	return fmt.Sprintf("Workload(%d)", int(w))
}

// Setup parameterizes one experiment campaign.
type Setup struct {
	Techs      []device.Technology
	ArraySizes []int // squared array dimensions (Table 1: 128..1024)
	Arrays     int   // arrays available to the mapper per target
	MaxRows    int   // arity bound for MRA >= 2 node substitution

	// Parallelism bounds the worker pool that fans out independent grid
	// cells (Table 2, Fig. 6, Fig. 7, Monte-Carlo shards). 0 selects
	// runtime.GOMAXPROCS(0); 1 is fully sequential. Results are
	// deterministic and identical for every setting (cells are
	// index-addressed and Monte-Carlo streams are sharded by seed, not by
	// worker).
	Parallelism int

	BW    bitweaving.Config
	Sobel sobel.Config
	AES   aes.Config
}

// DefaultSetup is the full-scale campaign (complete AES-128).
func DefaultSetup() Setup {
	return Setup{
		Techs:      []device.Technology{device.ReRAM, device.STTMRAM},
		ArraySizes: []int{1024, 512},
		Arrays:     4,
		MaxRows:    4,
		BW:         bitweaving.DefaultConfig(),
		Sobel:      sobel.DefaultConfig(),
		AES:        aes.DefaultConfig(),
	}
}

// QuickSetup shrinks the kernels (2-round AES, smaller tiles) so tests and
// benchmarks iterate fast while exercising identical code paths.
func QuickSetup() Setup {
	s := DefaultSetup()
	s.BW = bitweaving.Config{Bits: 8, Segments: 4}
	s.Sobel = sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128}
	s.AES = aes.Config{Rounds: 2}
	return s
}

// Lanes returns the SIMD width for an array dimension (Table 1: 4n).
func Lanes(arraySize int) int { return 4 * arraySize }

// Runner memoizes built graphs and mappings across experiments (the same
// program is costed under several technologies). It is safe for concurrent
// use: memoization rides on memo.Memo (the same singleflight cache behind
// internal/serve's program registry) — the first goroutine to request a key
// builds it while later requesters block on the same entry, so no graph or
// mapping is ever computed twice. Campaign caches are unbounded: a campaign
// revisits every cell it builds.
type Runner struct {
	setup  Setup
	graphs *memo.Memo[graphKey, *dfg.Graph]
	mapped *memo.Memo[mapKey, *mapping.Result]
	execs  *memo.Memo[*mapping.Result, *sim.Exec]
}

// NewRunner builds a Runner for the setup.
func NewRunner(s Setup) *Runner {
	return &Runner{
		setup:  s,
		graphs: memo.New[graphKey, *dfg.Graph](memo.Config[*dfg.Graph]{}),
		mapped: memo.New[mapKey, *mapping.Result](memo.Config[*mapping.Result]{}),
		execs:  memo.New[*mapping.Result, *sim.Exec](memo.Config[*sim.Exec]{}),
	}
}

// Exec returns the pre-decoded micro-op executor of a mapped program
// (sim.Predecode), memoized per mapping: Monte-Carlo campaigns and repeated
// grid cells decode each program once and share the immutable Exec across
// workers.
func (r *Runner) Exec(res *mapping.Result) (*sim.Exec, error) {
	return r.execs.Do(res, func() (*sim.Exec, error) {
		return sim.Predecode(res.Program, res.Layout.Target())
	})
}

// Setup returns the campaign parameters.
func (r *Runner) Setup() Setup { return r.setup }

// Workers resolves the setup's Parallelism to a concrete worker count.
func (r *Runner) Workers() int {
	if r.setup.Parallelism > 0 {
		return r.setup.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runCells evaluates fn over n independent grid cells on the campaign's
// worker pool. Callers store each cell's result at its own index, keeping
// the output in deterministic paper order whatever the interleaving.
func (r *Runner) runCells(n int, fn func(i int) error) error {
	return pool.Run(r.Workers(), n, fn)
}

type graphKey struct {
	w    Workload
	frac int // substitution fraction in percent (0 = MRA 2 only)
	nand bool
	// costTech+1 when the fusion selection is ranked by that technology's
	// decision-failure cost (the optimized flow of Fig. 6); 0 = seeded
	// random order (the mapping-blind baseline).
	costTech int
}

type mapKey struct {
	g     graphKey
	size  int
	naive bool
}

// Graph returns the workload DFG after the requested transformations:
// substFraction of the node-substitution opportunities applied (Sec. 3.3.3)
// and, optionally, NAND lowering (Fig. 6b's STT-MRAM variant).
func (r *Runner) Graph(w Workload, substFraction float64, nand bool) (*dfg.Graph, error) {
	return r.graph(graphKey{w: w, frac: fracPct(substFraction), nand: nand})
}

// GraphCostAware is Graph with the fusion candidates ranked by the given
// technology's decision-failure cost instead of the blind seeded order.
func (r *Runner) GraphCostAware(w Workload, substFraction float64, nand bool, tech device.Technology) (*dfg.Graph, error) {
	return r.graph(graphKey{w: w, frac: fracPct(substFraction), nand: nand, costTech: int(tech) + 1})
}

func fracPct(f float64) int { return int(f*100 + 0.5) }

func (r *Runner) graph(key graphKey) (*dfg.Graph, error) {
	// The build runs outside the cache lock: other keys proceed in parallel,
	// and duplicate requesters of this key block on the same entry instead
	// of redoing the work. A base-graph key (frac < 0) may be built
	// reentrantly from a transformed key's builder — distinct entries, no
	// deadlock (memo.Do is reentrant across keys).
	return r.graphs.Do(key, func() (*dfg.Graph, error) { return r.buildGraph(key) })
}

func (r *Runner) buildGraph(key graphKey) (*dfg.Graph, error) {
	if key.frac < 0 {
		return buildWorkload(key.w, r.setup)
	}
	base, err := r.graph(graphKey{w: key.w, frac: -1})
	if err != nil {
		return nil, err
	}
	g := base
	if key.frac > 0 {
		opts := dfg.SubstituteOptions{
			MaxOperands: r.setup.MaxRows,
			Fraction:    float64(key.frac) / 100,
			Seed:        1,
		}
		if key.costTech > 0 {
			params := device.ParamsFor(device.Technology(key.costTech - 1))
			nand := key.nand
			opts.CostOf = func(op logic.Op, fusedArity int) float64 {
				if fusedArity > params.MaxRows {
					fusedArity = params.MaxRows
				}
				if nand {
					// The kernel is NAND-lowered after fusion: ORs become
					// wide NANDs; fused XORs are re-expanded to binary
					// trees, so their fusion buys nothing — deprioritize.
					switch op {
					case logic.Or, logic.Nor:
						op = logic.Nand
					case logic.Xor, logic.Xnor:
						return 1
					}
				}
				if !op.IsSense() {
					return 0
				}
				return params.DecisionFailure(op, fusedArity)
			}
		}
		g, _ = dfg.SubstituteNodes(g, opts)
	}
	if key.nand {
		g, _ = dfg.LowerToNAND(g)
	}
	return g, nil
}

func buildWorkload(w Workload, s Setup) (*dfg.Graph, error) {
	switch w {
	case Bitweaving:
		return bitweaving.Build(s.BW)
	case Sobel:
		return sobel.Build(s.Sobel)
	case AES:
		return aes.Build(s.AES)
	}
	return nil, fmt.Errorf("experiments: unknown workload %v", w)
}

// Map compiles the (transformed) workload onto an arraySize x arraySize
// target with the selected mapper, memoizing the result.
func (r *Runner) Map(w Workload, substFraction float64, nand bool, arraySize int, naive bool) (*mapping.Result, error) {
	return r.mapGraph(graphKey{w: w, frac: fracPct(substFraction), nand: nand}, arraySize, naive)
}

// MapCostAware is Map over a cost-aware-fused graph (see GraphCostAware).
func (r *Runner) MapCostAware(w Workload, substFraction float64, nand bool, tech device.Technology, arraySize int, naive bool) (*mapping.Result, error) {
	return r.mapGraph(graphKey{w: w, frac: fracPct(substFraction), nand: nand, costTech: int(tech) + 1}, arraySize, naive)
}

func (r *Runner) mapGraph(gk graphKey, arraySize int, naive bool) (*mapping.Result, error) {
	key := mapKey{g: gk, size: arraySize, naive: naive}
	return r.mapped.Do(key, func() (*mapping.Result, error) {
		return r.buildMapping(gk, arraySize, naive)
	})
}

func (r *Runner) buildMapping(gk graphKey, arraySize int, naive bool) (*mapping.Result, error) {
	g, err := r.graph(gk)
	if err != nil {
		return nil, err
	}
	opts := mapping.Options{Target: layout.Target{
		Arrays: r.setup.Arrays,
		Rows:   arraySize,
		Cols:   arraySize,
	}}
	var res *mapping.Result
	if naive {
		res, err = mapping.Naive(g, opts)
	} else {
		res, err = mapping.Optimized(g, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %v (size %d, naive=%v): %w", gk.w, arraySize, naive, err)
	}
	return res, nil
}

// Cost measures a mapped program under one technology's array model,
// scaling energy by the lane count.
func Cost(res *mapping.Result, tech device.Technology, arraySize int) (sim.Cost, error) {
	cm := arraymodel.New(arraymodel.DefaultConfig(tech, arraySize))
	c, err := sim.Measure(res.Program, cm)
	if err != nil {
		return sim.Cost{}, err
	}
	return c.ScaleEnergy(float64(Lanes(arraySize))), nil
}
