// Package experiments regenerates the paper's evaluation artifacts:
// Table 2 (latency/energy across technologies, array sizes, mappers and
// multi-row-activation settings), Fig. 2b (decision-failure statistics),
// Fig. 6 (reliability vs latency under the MRA sweep) and Fig. 7 (EDP vs
// the CPU baseline).
//
// The SIMD ("bulk") dimension: a mapped program computes one bit-slice per
// lane; the macro drives Lanes(n) lane slices from one instruction stream
// (Table 1 pairs an n x n array with a 4n data width). Latency is
// lane-independent, energy scales with the lane count, and reliability is
// reported per lane (per result), matching Fig. 6's magnitudes.
package experiments

import (
	"fmt"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/sim"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// Workload enumerates the evaluation kernels.
type Workload int

// The paper's three benchmarks.
const (
	Bitweaving Workload = iota
	Sobel
	AES
)

// Workloads lists the benchmarks in the paper's presentation order.
func Workloads() []Workload { return []Workload{Bitweaving, Sobel, AES} }

func (w Workload) String() string {
	switch w {
	case Bitweaving:
		return "Bitweaving"
	case Sobel:
		return "Sobel"
	case AES:
		return "AES"
	}
	return fmt.Sprintf("Workload(%d)", int(w))
}

// Setup parameterizes one experiment campaign.
type Setup struct {
	Techs      []device.Technology
	ArraySizes []int // squared array dimensions (Table 1: 128..1024)
	Arrays     int   // arrays available to the mapper per target
	MaxRows    int   // arity bound for MRA >= 2 node substitution

	BW    bitweaving.Config
	Sobel sobel.Config
	AES   aes.Config
}

// DefaultSetup is the full-scale campaign (complete AES-128).
func DefaultSetup() Setup {
	return Setup{
		Techs:      []device.Technology{device.ReRAM, device.STTMRAM},
		ArraySizes: []int{1024, 512},
		Arrays:     4,
		MaxRows:    4,
		BW:         bitweaving.DefaultConfig(),
		Sobel:      sobel.DefaultConfig(),
		AES:        aes.DefaultConfig(),
	}
}

// QuickSetup shrinks the kernels (2-round AES, smaller tiles) so tests and
// benchmarks iterate fast while exercising identical code paths.
func QuickSetup() Setup {
	s := DefaultSetup()
	s.BW = bitweaving.Config{Bits: 8, Segments: 4}
	s.Sobel = sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128}
	s.AES = aes.Config{Rounds: 2}
	return s
}

// Lanes returns the SIMD width for an array dimension (Table 1: 4n).
func Lanes(arraySize int) int { return 4 * arraySize }

// Runner memoizes built graphs and mappings across experiments (the same
// program is costed under several technologies).
type Runner struct {
	setup  Setup
	graphs map[graphKey]*dfg.Graph
	mapped map[mapKey]*mapping.Result
}

// NewRunner builds a Runner for the setup.
func NewRunner(s Setup) *Runner {
	return &Runner{
		setup:  s,
		graphs: make(map[graphKey]*dfg.Graph),
		mapped: make(map[mapKey]*mapping.Result),
	}
}

// Setup returns the campaign parameters.
func (r *Runner) Setup() Setup { return r.setup }

type graphKey struct {
	w    Workload
	frac int // substitution fraction in percent (0 = MRA 2 only)
	nand bool
	// costTech+1 when the fusion selection is ranked by that technology's
	// decision-failure cost (the optimized flow of Fig. 6); 0 = seeded
	// random order (the mapping-blind baseline).
	costTech int
}

type mapKey struct {
	g     graphKey
	size  int
	naive bool
}

// Graph returns the workload DFG after the requested transformations:
// substFraction of the node-substitution opportunities applied (Sec. 3.3.3)
// and, optionally, NAND lowering (Fig. 6b's STT-MRAM variant).
func (r *Runner) Graph(w Workload, substFraction float64, nand bool) (*dfg.Graph, error) {
	return r.graph(graphKey{w: w, frac: fracPct(substFraction), nand: nand})
}

// GraphCostAware is Graph with the fusion candidates ranked by the given
// technology's decision-failure cost instead of the blind seeded order.
func (r *Runner) GraphCostAware(w Workload, substFraction float64, nand bool, tech device.Technology) (*dfg.Graph, error) {
	return r.graph(graphKey{w: w, frac: fracPct(substFraction), nand: nand, costTech: int(tech) + 1})
}

func fracPct(f float64) int { return int(f*100 + 0.5) }

func (r *Runner) graph(key graphKey) (*dfg.Graph, error) {
	if g, ok := r.graphs[key]; ok {
		return g, nil
	}
	base, err := r.buildBase(key.w)
	if err != nil {
		return nil, err
	}
	g := base
	if key.frac > 0 {
		opts := dfg.SubstituteOptions{
			MaxOperands: r.setup.MaxRows,
			Fraction:    float64(key.frac) / 100,
			Seed:        1,
		}
		if key.costTech > 0 {
			params := device.ParamsFor(device.Technology(key.costTech - 1))
			nand := key.nand
			opts.CostOf = func(op logic.Op, fusedArity int) float64 {
				if fusedArity > params.MaxRows {
					fusedArity = params.MaxRows
				}
				if nand {
					// The kernel is NAND-lowered after fusion: ORs become
					// wide NANDs; fused XORs are re-expanded to binary
					// trees, so their fusion buys nothing — deprioritize.
					switch op {
					case logic.Or, logic.Nor:
						op = logic.Nand
					case logic.Xor, logic.Xnor:
						return 1
					}
				}
				if !op.IsSense() {
					return 0
				}
				return params.DecisionFailure(op, fusedArity)
			}
		}
		g, _ = dfg.SubstituteNodes(g, opts)
	}
	if key.nand {
		g, _ = dfg.LowerToNAND(g)
	}
	r.graphs[key] = g
	return g, nil
}

func (r *Runner) buildBase(w Workload) (*dfg.Graph, error) {
	key := graphKey{w: w, frac: -1}
	if g, ok := r.graphs[key]; ok {
		return g, nil
	}
	var g *dfg.Graph
	var err error
	switch w {
	case Bitweaving:
		g, err = bitweaving.Build(r.setup.BW)
	case Sobel:
		g, err = sobel.Build(r.setup.Sobel)
	case AES:
		g, err = aes.Build(r.setup.AES)
	default:
		err = fmt.Errorf("experiments: unknown workload %v", w)
	}
	if err != nil {
		return nil, err
	}
	r.graphs[key] = g
	return g, nil
}

// Map compiles the (transformed) workload onto an arraySize x arraySize
// target with the selected mapper, memoizing the result.
func (r *Runner) Map(w Workload, substFraction float64, nand bool, arraySize int, naive bool) (*mapping.Result, error) {
	return r.mapGraph(graphKey{w: w, frac: fracPct(substFraction), nand: nand}, arraySize, naive)
}

// MapCostAware is Map over a cost-aware-fused graph (see GraphCostAware).
func (r *Runner) MapCostAware(w Workload, substFraction float64, nand bool, tech device.Technology, arraySize int, naive bool) (*mapping.Result, error) {
	return r.mapGraph(graphKey{w: w, frac: fracPct(substFraction), nand: nand, costTech: int(tech) + 1}, arraySize, naive)
}

func (r *Runner) mapGraph(gk graphKey, arraySize int, naive bool) (*mapping.Result, error) {
	key := mapKey{g: gk, size: arraySize, naive: naive}
	if res, ok := r.mapped[key]; ok {
		return res, nil
	}
	g, err := r.graph(gk)
	if err != nil {
		return nil, err
	}
	opts := mapping.Options{Target: layout.Target{
		Arrays: r.setup.Arrays,
		Rows:   arraySize,
		Cols:   arraySize,
	}}
	var res *mapping.Result
	if naive {
		res, err = mapping.Naive(g, opts)
	} else {
		res, err = mapping.Optimized(g, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %v (size %d, naive=%v): %w", gk.w, arraySize, naive, err)
	}
	r.mapped[key] = res
	return res, nil
}

// Cost measures a mapped program under one technology's array model,
// scaling energy by the lane count.
func Cost(res *mapping.Result, tech device.Technology, arraySize int) (sim.Cost, error) {
	cm := arraymodel.New(arraymodel.DefaultConfig(tech, arraySize))
	c, err := sim.Measure(res.Program, cm)
	if err != nil {
		return sim.Cost{}, err
	}
	return c.ScaleEnergy(float64(Lanes(arraySize))), nil
}
