package experiments

import (
	"reflect"
	"sync"
	"testing"

	"sherlock/internal/device"
)

// runnerWith returns a fresh quick-setup runner at the given parallelism.
func runnerWith(parallelism int) *Runner {
	s := QuickSetup()
	s.Parallelism = parallelism
	return NewRunner(s)
}

// TestParallelCampaignDeterminism asserts the engine's core contract:
// sequential and parallel campaigns produce identical result slices —
// same order, same values — for identical setups and seeds.
func TestParallelCampaignDeterminism(t *testing.T) {
	seq := runnerWith(1)
	par := runnerWith(8)

	t2Seq, err := Table2(seq)
	if err != nil {
		t.Fatal(err)
	}
	t2Par, err := Table2(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t2Seq, t2Par) {
		t.Error("Table2: parallel rows differ from sequential")
	}

	f6Seq, err := Fig6(seq, 128)
	if err != nil {
		t.Fatal(err)
	}
	f6Par, err := Fig6(par, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f6Seq, f6Par) {
		t.Error("Fig6: parallel series differ from sequential")
	}

	f7Seq, err := Fig7(seq, []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	f7Par, err := Fig7(par, []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f7Seq, f7Par) {
		t.Error("Fig7: parallel rows differ from sequential")
	}

	mcSeq, err := MonteCarlo(seq, Bitweaving, device.STTMRAM, 128, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	mcPar, err := MonteCarlo(par, Bitweaving, device.STTMRAM, 128, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mcSeq, mcPar) {
		t.Errorf("MonteCarlo: parallel result %+v differs from sequential %+v", mcPar, mcSeq)
	}
}

// TestMonteCarloShardSplit covers run counts that do not divide evenly
// into shards, including fewer runs than shards.
func TestMonteCarloShardSplit(t *testing.T) {
	r := runnerWith(4)
	for _, runs := range []int{1, 3, mcShards - 1, mcShards, mcShards + 5} {
		mc, err := MonteCarlo(r, Bitweaving, device.STTMRAM, 128, runs, 7)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Runs != runs {
			t.Errorf("runs = %d, want %d", mc.Runs, runs)
		}
		if mc.ObservedFaultRate < 0 || mc.ObservedFaultRate > 1 {
			t.Errorf("runs=%d: fault rate %f out of range", runs, mc.ObservedFaultRate)
		}
	}
}

// TestRunnerConcurrentAccess hammers one shared Runner from many
// goroutines mixing all memoized entry points; `go test -race` turns any
// latent race in Graph/Map into a failure. It also checks the
// singleflight contract: every goroutine observes the same memoized
// pointer per key.
func TestRunnerConcurrentAccess(t *testing.T) {
	r := NewRunner(QuickSetup())
	const goroutines = 16

	type got struct {
		graphBlind, graphCost uintptr
		mapNaive, mapOpt      uintptr
	}
	results := make([]got, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g1, err := r.Graph(Bitweaving, 1, false)
			if err != nil {
				t.Error(err)
				return
			}
			g2, err := r.GraphCostAware(Bitweaving, 1, false, device.ReRAM)
			if err != nil {
				t.Error(err)
				return
			}
			m1, err := r.Map(Bitweaving, 1, false, 128, true)
			if err != nil {
				t.Error(err)
				return
			}
			m2, err := r.MapCostAware(Bitweaving, 1, false, device.ReRAM, 128, false)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = got{
				graphBlind: reflect.ValueOf(g1).Pointer(),
				graphCost:  reflect.ValueOf(g2).Pointer(),
				mapNaive:   reflect.ValueOf(m1).Pointer(),
				mapOpt:     reflect.ValueOf(m2).Pointer(),
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw different memoized objects than goroutine 0", i)
		}
	}
	if results[0].graphBlind == results[0].graphCost {
		t.Error("cost-aware graph shares cache slot with blind graph")
	}
}

// TestWorkersResolution pins the Parallelism -> worker-count mapping.
func TestWorkersResolution(t *testing.T) {
	if w := runnerWith(3).Workers(); w != 3 {
		t.Errorf("Workers() = %d, want 3", w)
	}
	if w := runnerWith(0).Workers(); w < 1 {
		t.Errorf("Workers() = %d, want >= 1", w)
	}
}
