package experiments

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"sherlock"
	"sherlock/internal/cpu"
	"sherlock/internal/workloads/analytics"
)

// AnalyticsConfig sizes the million-row analytics campaign: the streaming
// pipeline's headline workloads measured end to end against the
// non-streaming batch path and the baseline-CPU cost model.
type AnalyticsConfig struct {
	// Rows is the table size (row = lane).
	Rows int
	// Seed drives the deterministic packed data generators.
	Seed int64
	// Parallelism is the streaming shard count / batch-path worker count
	// (0 = all cores).
	Parallelism int
}

// DefaultAnalyticsConfig is the million-row campaign.
func DefaultAnalyticsConfig() AnalyticsConfig {
	return AnalyticsConfig{Rows: 1_000_000, Seed: 42}
}

// AnalyticsRow is one plan's end-to-end result. Count/Sum are
// deterministic in the config; the rows/sec figures are wall-clock
// measurements and belong on stderr, not in diffed stdout.
type AnalyticsRow struct {
	Plan string
	Rows int

	Count int64
	Sum   uint64 // 0 for pure COUNT plans

	StreamRowsPerSec float64 // RunStream + fused sink
	BatchRowsPerSec  float64 // RunBatchWords + host reduce
	CPURowsPerSec    float64 // internal/cpu modeled word-at-a-time scan
	Speedup          float64 // stream vs batch
}

// Analytics runs the data-analytics campaign: a bitmap-index COUNT plan
// and a bit-serial filter+SUM scan over cfg.Rows rows, each executed
// three ways — streamed through the fused reduction sinks, through one
// materializing RunBatchWords pass with host-side reduction, and on the
// modeled baseline CPU. Results are cross-checked against the exact host
// golden models before any timing is trusted. The clock is injected so
// the package stays free of ambient time sources.
func Analytics(cfg AnalyticsConfig, now func() time.Time) ([]AnalyticsRow, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("analytics: %d rows", cfg.Rows)
	}
	var rows []AnalyticsRow

	scan, err := analyticsScan(cfg, now)
	if err != nil {
		return nil, fmt.Errorf("bitmap scan: %w", err)
	}
	rows = append(rows, scan)

	fsum, err := analyticsFilterSum(cfg, now)
	if err != nil {
		return nil, fmt.Errorf("filter+sum: %w", err)
	}
	return append(rows, fsum), nil
}

func analyticsScan(cfg AnalyticsConfig, now func() time.Time) (AnalyticsRow, error) {
	plan := analytics.DefaultScanConfig()
	g, err := analytics.BuildScan(plan)
	if err != nil {
		return AnalyticsRow{}, err
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128})
	if err != nil {
		return AnalyticsRow{}, err
	}
	names := c.InputNames()
	in, err := analytics.PackedData(names, "col", cfg.Rows, cfg.Seed)
	if err != nil {
		return AnalyticsRow{}, err
	}
	want, err := analytics.HostCount(plan, names, in, cfg.Rows)
	if err != nil {
		return AnalyticsRow{}, err
	}

	s, err := c.NewStreamer(sherlock.StreamOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return AnalyticsRow{}, err
	}
	defer s.Close()
	var sink sherlock.CountSink
	streamSec, err := timeRun(now, func() error { return s.Run(in, cfg.Rows, &sink) })
	if err != nil {
		return AnalyticsRow{}, err
	}
	if sink.Counts[0] != want {
		return AnalyticsRow{}, fmt.Errorf("streamed count %d != host %d", sink.Counts[0], want)
	}

	var out []uint64
	batchSec, err := timeRun(now, func() error {
		var err error
		out, err = c.RunBatchWords(in, cfg.Rows, out, cfg.Parallelism)
		return err
	})
	if err != nil {
		return AnalyticsRow{}, err
	}
	W := (cfg.Rows + 63) / 64
	if got := hostPop(out[:W]); got != want {
		return AnalyticsRow{}, fmt.Errorf("batch count %d != host %d", got, want)
	}

	cpuCost := cpu.RunBitmapScan(cpu.DefaultHierarchy(), cfg.Rows, plan.Columns)
	return AnalyticsRow{
		Plan:             "bitmap-index COUNT",
		Rows:             cfg.Rows,
		Count:            want,
		StreamRowsPerSec: rate(cfg.Rows, streamSec),
		BatchRowsPerSec:  rate(cfg.Rows, batchSec),
		CPURowsPerSec:    rate(cfg.Rows, cpuCost.LatencyNS*1e-9),
		Speedup:          batchSec / streamSec,
	}, nil
}

func analyticsFilterSum(cfg AnalyticsConfig, now func() time.Time) (AnalyticsRow, error) {
	plan := analytics.DefaultFilterSumConfig()
	g, err := analytics.BuildFilterSum(plan)
	if err != nil {
		return AnalyticsRow{}, err
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128})
	if err != nil {
		return AnalyticsRow{}, err
	}
	names := c.InputNames()
	outNames := c.OutputNames()
	planes, match, err := analytics.SumPlanes(outNames, plan.ValueBits)
	if err != nil {
		return AnalyticsRow{}, err
	}
	in, err := analytics.PackedData(names, analytics.ValuePrefix, cfg.Rows, cfg.Seed+1)
	if err != nil {
		return AnalyticsRow{}, err
	}
	wantCount, wantSum, err := analytics.HostFilterSum(plan, names, in, cfg.Rows)
	if err != nil {
		return AnalyticsRow{}, err
	}

	s, err := c.NewStreamer(sherlock.StreamOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return AnalyticsRow{}, err
	}
	defer s.Close()
	sink := sherlock.SumBitsSink{Planes: planes}
	streamSec, err := timeRun(now, func() error { return s.Run(in, cfg.Rows, &sink) })
	if err != nil {
		return AnalyticsRow{}, err
	}
	if sink.Sum != wantSum {
		return AnalyticsRow{}, fmt.Errorf("streamed sum %d != host %d", sink.Sum, wantSum)
	}

	var out []uint64
	batchSec, err := timeRun(now, func() error {
		var err error
		out, err = c.RunBatchWords(in, cfg.Rows, out, cfg.Parallelism)
		return err
	})
	if err != nil {
		return AnalyticsRow{}, err
	}
	W := (cfg.Rows + 63) / 64
	var gotSum uint64
	for i, o := range planes {
		gotSum += uint64(hostPop(out[o*W:(o+1)*W])) << uint(i)
	}
	gotCount := hostPop(out[match*W : (match+1)*W])
	if gotSum != wantSum || gotCount != wantCount {
		return AnalyticsRow{}, fmt.Errorf("batch count/sum %d/%d != host %d/%d",
			gotCount, gotSum, wantCount, wantSum)
	}

	cpuCost := cpu.RunFilterAgg(cpu.DefaultHierarchy(), cfg.Rows, plan.ValueBits)
	return AnalyticsRow{
		Plan:             "filter+SUM (bit-serial)",
		Rows:             cfg.Rows,
		Count:            wantCount,
		Sum:              wantSum,
		StreamRowsPerSec: rate(cfg.Rows, streamSec),
		BatchRowsPerSec:  rate(cfg.Rows, batchSec),
		CPURowsPerSec:    rate(cfg.Rows, cpuCost.LatencyNS*1e-9),
		Speedup:          batchSec / streamSec,
	}, nil
}

func timeRun(now func() time.Time, f func() error) (float64, error) {
	t0 := now()
	if err := f(); err != nil {
		return 0, err
	}
	sec := now().Sub(t0).Seconds()
	if sec <= 0 {
		sec = 1e-9 // degenerate injected clocks must not divide by zero
	}
	return sec, nil
}

func hostPop(words []uint64) int64 {
	var n int64
	for _, w := range words {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

func rate(rows int, sec float64) float64 { return float64(rows) / sec }

// RenderAnalytics prints the deterministic tally table — byte-identical
// across runs and parallelism settings (timing belongs on stderr via
// RenderAnalyticsTiming).
func RenderAnalytics(rows []AnalyticsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analytics: streamed plans over %d rows\n", rowsOf(rows))
	fmt.Fprintf(&b, "%-26s %12s %16s\n", "plan", "COUNT", "SUM")
	for _, r := range rows {
		sum := "-"
		if r.Sum != 0 {
			sum = fmt.Sprintf("%d", r.Sum)
		}
		fmt.Fprintf(&b, "%-26s %12d %16s\n", r.Plan, r.Count, sum)
	}
	return b.String()
}

// RenderAnalyticsTiming prints the wall-clock throughput comparison (for
// stderr: the numbers vary run to run).
func RenderAnalyticsTiming(rows []AnalyticsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %14s %14s %14s %9s\n",
		"plan", "stream rows/s", "batch rows/s", "cpu rows/s", "spdup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %14.3g %14.3g %14.3g %8.2fx\n",
			r.Plan, r.StreamRowsPerSec, r.BatchRowsPerSec, r.CPURowsPerSec, r.Speedup)
	}
	return b.String()
}

func rowsOf(rows []AnalyticsRow) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Rows
}
