package experiments

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/reliability"
	"sherlock/internal/sim"
)

// MCResult validates the analytical reliability model by Monte-Carlo
// simulation: the mapped program runs many times with fault injection
// (every sense decision flips with its P_DF), and the observed rate of
// runs with at least one fault is compared against the closed-form P_app.
// The output-corruption rate is also measured; it is lower than P_app
// because logical masking absorbs part of the injected faults (e.g. a
// flipped operand of an AND whose other input is 0).
type MCResult struct {
	Tech     device.Technology
	Workload Workload
	Runs     int

	AnalyticalPApp float64
	// ObservedFaultRate is the fraction of runs with >= 1 injected fault;
	// it estimates exactly the event P_app models.
	ObservedFaultRate float64
	// ObservedErrorRate is the fraction of runs whose outputs differ from
	// the golden DFG evaluation.
	ObservedErrorRate float64
	FaultsInjected    int
}

// MaskingFactor is the share of faulty runs whose outputs still came out
// right.
func (m MCResult) MaskingFactor() float64 {
	if m.ObservedFaultRate == 0 {
		return 0
	}
	return 1 - m.ObservedErrorRate/m.ObservedFaultRate
}

// mcShards fixes how many independent random streams a Monte-Carlo
// campaign splits into. The count is a constant — NOT the worker count —
// so the drawn samples, and therefore the merged result, are identical for
// every Parallelism setting. Shard s seeds its stream with seed+s.
const mcShards = 16

// mcCounts accumulates one shard's tallies; shards merge by summation,
// which is order-independent.
type mcCounts struct {
	faultRuns int
	errorRuns int
	faults    int
}

// MonteCarlo runs the fault-injection campaign for a workload on one
// technology (NAND-lowered on STT-MRAM, as in Fig. 6) with fresh random
// inputs every run. The runs are sharded into mcShards deterministic
// random streams that execute on the campaign's worker pool, and each
// shard packs its runs 64-per-word onto the SWAR lane machine (one
// program pass per 64 runs); shards own fixed lane ranges, so for a given
// seed and run count the result is byte-identical whatever Parallelism is.
func MonteCarlo(r *Runner, w Workload, tech device.Technology, arraySize, runs int, seed int64) (MCResult, error) {
	nand := tech == device.STTMRAM
	res, err := r.Map(w, 1.0, nand, arraySize, false)
	if err != nil {
		return MCResult{}, err
	}
	g, err := r.Graph(w, 1.0, nand)
	if err != nil {
		return MCResult{}, err
	}
	params := device.ParamsFor(tech)
	rep, err := reliability.Assess(res.Program, params)
	if err != nil {
		return MCResult{}, err
	}
	ex, err := r.Exec(res)
	if err != nil {
		return MCResult{}, err
	}
	// Per-shard invariants, hoisted: output places, the golden-input order
	// (g.Inputs() order, matching the RNG draw order of every prior
	// version), and each graph input's executor slot (-1 when the mapped
	// program never consumes it).
	outputs := g.Outputs()
	places := make([]layout.Place, len(outputs))
	for i, o := range outputs {
		p, err := res.OutputPlace(o)
		if err != nil {
			return MCResult{}, err
		}
		places[i] = p
	}
	names := g.InputNames()
	slots := make([]int, len(names))
	for i, nm := range names {
		s, ok := ex.Slot(nm)
		if !ok {
			s = -1
		}
		slots[i] = s
	}

	shards := mcShards
	if runs < shards {
		shards = runs
	}
	counts := make([]mcCounts, shards)
	err = r.runCells(shards, func(s int) error {
		// Even split; the first runs%shards shards take one extra run.
		shardRuns := runs / shards
		if s < runs%shards {
			shardRuns++
		}
		c, err := mcShard(ex, g, places, slots, params, rand.New(rand.NewSource(seed+int64(s))), shardRuns)
		if err != nil {
			return err
		}
		counts[s] = c
		return nil
	})
	if err != nil {
		return MCResult{}, err
	}

	out := MCResult{Tech: tech, Workload: w, Runs: runs, AnalyticalPApp: rep.PApp}
	for _, c := range counts {
		out.ObservedFaultRate += float64(c.faultRuns)
		out.ObservedErrorRate += float64(c.errorRuns)
		out.FaultsInjected += c.faults
	}
	out.ObservedFaultRate /= float64(runs)
	out.ObservedErrorRate /= float64(runs)
	return out, nil
}

// mcShard executes one shard's fault-injected runs word-parallel on a
// private pre-decoded executor and RNG stream: up to sim.WordLanes (64)
// runs pack into the bit-lanes of one micro-op pass over the shared Exec,
// fault injection draws from the geometric-skip sampler (one RNG
// consultation per expected flip instead of one per sense decision), and
// the golden reference evaluates lane-wise through an allocation-free
// dfg.WordEvaluator. The group size stays at 64 runs and inputs draw
// run-major in g.Inputs() order with one Int63 per group — the exact RNG
// consumption of the LaneMachine-era shards, so tallies are byte-identical
// to them and deterministic whatever the campaign's worker count.
func mcShard(ex *sim.Exec, g *dfg.Graph, places []layout.Place, slots []int, params device.Params, rng *rand.Rand, runs int) (mcCounts, error) {
	var c mcCounts
	ev := dfg.NewWordEvaluator(g)
	m := ex.NewMachine(1)
	in := m.InputBlock()
	goldenIn := make([]uint64, len(slots))
	for start := 0; start < runs; start += sim.WordLanes {
		n := min(sim.WordLanes, runs-start)
		// Lane l is run start+l; inputs draw run-major, matching the
		// scalar path's per-run draw order. Reset clears the input block.
		m.Reset(n)
		clear(goldenIn)
		for l := 0; l < n; l++ {
			for i, s := range slots {
				if rng.Intn(2) == 1 {
					goldenIn[i] |= uint64(1) << uint(l)
					if s >= 0 {
						in[s] |= uint64(1) << uint(l)
					}
				}
			}
		}
		golden := ev.Eval(goldenIn)
		m.EnableFaultInjection(params, rng.Int63())
		if err := m.Run(in); err != nil {
			return mcCounts{}, err
		}
		for l := 0; l < n; l++ {
			if f := m.FaultCount(l); f > 0 {
				c.faultRuns++
				c.faults += f
			}
		}
		var errMask uint64
		mask := m.MaskWord(0)
		for oi, p := range places {
			w, err := m.ReadOutWord(p, 0)
			if err != nil {
				return mcCounts{}, err
			}
			errMask |= (w ^ golden[oi]) & mask
		}
		c.errorRuns += bits.OnesCount64(errMask)
	}
	return c, nil
}

// RenderMC prints the validation rows.
func RenderMC(rows []MCResult) string {
	var sb strings.Builder
	sb.WriteString("Monte-Carlo validation of the analytical P_app model\n")
	sb.WriteString(fmt.Sprintf("%-10s %-11s %6s %12s %12s %12s %9s\n",
		"Tech", "Benchmark", "Runs", "P_app", "P(fault)", "P(error)", "masking"))
	for _, m := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %-11s %6d %12.3e %12.3e %12.3e %8.1f%%\n",
			m.Tech, m.Workload, m.Runs, m.AnalyticalPApp,
			m.ObservedFaultRate, m.ObservedErrorRate, 100*m.MaskingFactor()))
	}
	return sb.String()
}
