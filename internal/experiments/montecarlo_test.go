package experiments

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/mapping"
	"sherlock/internal/sim"
)

// TestMonteCarloVectorizedDeterminism pins the SWAR campaign's determinism
// contract: shards own fixed seed streams and fixed lane ranges, so one
// seed produces byte-identical results — same fault counts, same observed
// rates — at every Parallelism. The run count is chosen so shards get
// uneven shares and the last lane block of each shard is a partial word.
func TestMonteCarloVectorizedDeterminism(t *testing.T) {
	const runs = 333
	var base MCResult
	for i, parallelism := range []int{1, 4, 16} {
		mc, err := MonteCarlo(runnerWith(parallelism), Bitweaving, device.STTMRAM, 128, runs, 99)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = mc
			if mc.FaultsInjected == 0 {
				t.Log("no faults at this P_DF; determinism still checked")
			}
			continue
		}
		if !reflect.DeepEqual(mc, base) {
			t.Errorf("Parallelism %d: %+v differs from Parallelism 1: %+v", parallelism, mc, base)
		}
	}
}

// legacyMCShard is the LaneMachine-era shard, reimplemented verbatim:
// interpreting SWAR passes over the program with map-keyed inputs and
// dfg.EvaluateWords goldens. It defines the tally semantics the pre-decoded
// executor path must reproduce bit for bit.
func legacyMCShard(t *testing.T, res *mapping.Result, g *dfg.Graph, params device.Params, rng *rand.Rand, runs int) mcCounts {
	t.Helper()
	var c mcCounts
	names := g.InputNames()
	var m *sim.LaneMachine
	words := make(map[string]uint64, len(names))
	for start := 0; start < runs; start += sim.WordLanes {
		n := sim.WordLanes
		if start+n > runs {
			n = runs - start
		}
		for _, nm := range names {
			words[nm] = 0
		}
		for l := 0; l < n; l++ {
			for _, nm := range names {
				if rng.Intn(2) == 1 {
					words[nm] |= uint64(1) << uint(l)
				}
			}
		}
		golden, err := dfg.EvaluateWords(g, words)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			m = sim.NewLaneMachine(res.Layout.Target(), n)
		} else {
			m.Reset(n)
		}
		m.EnableFaultInjection(params, rng.Int63())
		if err := m.Run(res.Program, words); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < n; l++ {
			if f := m.FaultCount(l); f > 0 {
				c.faultRuns++
				c.faults += f
			}
		}
		var errMask uint64
		for _, o := range g.Outputs() {
			p, err := res.OutputPlace(o)
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.ReadOutWord(p)
			if err != nil {
				t.Fatal(err)
			}
			errMask |= (w ^ golden[g.OutputName(o)]) & m.Mask()
		}
		c.errorRuns += bits.OnesCount64(errMask)
	}
	return c
}

// TestMonteCarloMatchesLegacyLaneShards pins the executor-backed campaign
// to the interpreting LaneMachine implementation it replaced: same seed,
// same shard split, byte-identical tallies. The RNG contract (inputs drawn
// run-major in g.Inputs() order, one Int63 per 64-run group, geometric-skip
// flips per column) is observable history — results published from earlier
// versions must reproduce.
func TestMonteCarloMatchesLegacyLaneShards(t *testing.T) {
	const (
		runs = 333
		seed = int64(99)
		size = 128
	)
	r := runnerWith(4)
	got, err := MonteCarlo(r, Bitweaving, device.STTMRAM, size, runs, seed)
	if err != nil {
		t.Fatal(err)
	}

	res, err := r.Map(Bitweaving, 1.0, true, size, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph(Bitweaving, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	params := device.ParamsFor(device.STTMRAM)
	shards := mcShards
	if runs < shards {
		shards = runs
	}
	var want mcCounts
	for s := 0; s < shards; s++ {
		shardRuns := runs / shards
		if s < runs%shards {
			shardRuns++
		}
		c := legacyMCShard(t, res, g, params, rand.New(rand.NewSource(seed+int64(s))), shardRuns)
		want.faultRuns += c.faultRuns
		want.errorRuns += c.errorRuns
		want.faults += c.faults
	}
	if want.faults == 0 {
		t.Log("no faults at this P_DF; identity still checked")
	}
	if got.FaultsInjected != want.faults {
		t.Errorf("FaultsInjected = %d, legacy shards injected %d", got.FaultsInjected, want.faults)
	}
	if wantRate := float64(want.faultRuns) / runs; got.ObservedFaultRate != wantRate {
		t.Errorf("ObservedFaultRate = %v, legacy %v", got.ObservedFaultRate, wantRate)
	}
	if wantRate := float64(want.errorRuns) / runs; got.ObservedErrorRate != wantRate {
		t.Errorf("ObservedErrorRate = %v, legacy %v", got.ObservedErrorRate, wantRate)
	}
}

// TestMonteCarloRepeatable asserts re-running the same campaign on the
// same runner gives the same result (lane machines and RNG streams are
// per-call, never reused across campaigns).
func TestMonteCarloRepeatable(t *testing.T) {
	r := runnerWith(4)
	a, err := MonteCarlo(r, Bitweaving, device.STTMRAM, 128, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(r, Bitweaving, device.STTMRAM, 128, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("second campaign %+v differs from first %+v", b, a)
	}
}
