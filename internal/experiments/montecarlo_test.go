package experiments

import (
	"reflect"
	"testing"

	"sherlock/internal/device"
)

// TestMonteCarloVectorizedDeterminism pins the SWAR campaign's determinism
// contract: shards own fixed seed streams and fixed lane ranges, so one
// seed produces byte-identical results — same fault counts, same observed
// rates — at every Parallelism. The run count is chosen so shards get
// uneven shares and the last lane block of each shard is a partial word.
func TestMonteCarloVectorizedDeterminism(t *testing.T) {
	const runs = 333
	var base MCResult
	for i, parallelism := range []int{1, 4, 16} {
		mc, err := MonteCarlo(runnerWith(parallelism), Bitweaving, device.STTMRAM, 128, runs, 99)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = mc
			if mc.FaultsInjected == 0 {
				t.Log("no faults at this P_DF; determinism still checked")
			}
			continue
		}
		if !reflect.DeepEqual(mc, base) {
			t.Errorf("Parallelism %d: %+v differs from Parallelism 1: %+v", parallelism, mc, base)
		}
	}
}

// TestMonteCarloRepeatable asserts re-running the same campaign on the
// same runner gives the same result (lane machines and RNG streams are
// per-call, never reused across campaigns).
func TestMonteCarloRepeatable(t *testing.T) {
	r := runnerWith(4)
	a, err := MonteCarlo(r, Bitweaving, device.STTMRAM, 128, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(r, Bitweaving, device.STTMRAM, 128, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("second campaign %+v differs from first %+v", b, a)
	}
}
