package experiments

import (
	"fmt"
	"strings"

	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/mapping"
	"sherlock/internal/reliability"
)

// Fig6Series is one curve of Fig. 6: a (technology, mapper) pair swept over
// the allowed fraction of >2-operand fusions. On STT-MRAM the kernel is
// NAND-lowered first (Fig. 6b); on ReRAM the native XOR/OR reads are kept
// (Fig. 6a).
type Fig6Series struct {
	Tech      device.Technology
	Optimized bool
	Workload  Workload
	Points    []reliability.Point
}

// Fig6 sweeps the MRA fraction for the bitweaving kernel (the paper's
// Fig. 6 subject) on the given array size. Every (series, fraction) point
// is independent and fans out over the campaign's worker pool; points land
// at their precomputed (series, index) slot, so the curves come back in
// paper order for any parallelism.
func Fig6(r *Runner, arraySize int) ([]Fig6Series, error) {
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	var out []Fig6Series
	for _, tech := range r.Setup().Techs {
		for _, optimized := range []bool{false, true} {
			out = append(out, Fig6Series{
				Tech:      tech,
				Optimized: optimized,
				Workload:  Bitweaving,
				Points:    make([]reliability.Point, len(fractions)),
			})
		}
	}
	n := len(out) * len(fractions)
	err := r.runCells(n, func(i int) error {
		series := &out[i/len(fractions)]
		frac := fractions[i%len(fractions)]
		tech := series.Tech
		params := device.ParamsFor(tech)
		nand := tech == device.STTMRAM
		// The optimized flow chooses *which* fusions to apply with the
		// technology's decision-failure cost in the loop (Sec. 4.2); the
		// naive flow fuses blindly.
		var res *mapping.Result
		var g *dfg.Graph
		var err error
		if series.Optimized {
			res, err = r.MapCostAware(Bitweaving, frac, nand, tech, arraySize, false)
			if err == nil {
				g, err = r.GraphCostAware(Bitweaving, frac, nand, tech)
			}
		} else {
			res, err = r.Map(Bitweaving, frac, nand, arraySize, true)
			if err == nil {
				g, err = r.Graph(Bitweaving, frac, nand)
			}
		}
		if err != nil {
			return err
		}
		cost, err := Cost(res, tech, arraySize)
		if err != nil {
			return err
		}
		rep, err := reliability.Assess(res.Program, params)
		if err != nil {
			return err
		}
		st := g.ComputeStats()
		achieved := 0.0
		if st.Ops > 0 {
			achieved = 100 * float64(st.OpsWithArityOver2) / float64(st.Ops)
		}
		series.Points[i%len(fractions)] = reliability.Point{
			AllowedFraction:    frac,
			AchievedMRAPercent: achieved,
			LatencyNS:          cost.LatencyNS,
			EnergyPJ:           cost.EnergyPJ,
			PApp:               rep.PApp,
			Instructions:       res.Stats.Instructions,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFig6 prints the sweep curves.
func RenderFig6(series []Fig6Series) string {
	var sb strings.Builder
	sb.WriteString("Fig. 6: reliability vs latency under the allowed MRA(>2) fraction\n")
	for _, s := range series {
		mapper := "naive"
		if s.Optimized {
			mapper = "opt"
		}
		variant := ""
		if s.Tech == device.STTMRAM {
			variant = " (NAND-based XOR/OR)"
		}
		sb.WriteString(fmt.Sprintf("-- %s / %s / %s%s\n", s.Tech, s.Workload, mapper, variant))
		sb.WriteString(fmt.Sprintf("   %-9s %-9s %14s %12s\n", "allowed", "MRA>2(%)", "latency(ns)", "P_app"))
		for _, p := range s.Points {
			sb.WriteString(fmt.Sprintf("   %-9.2f %-9.1f %14.1f %12.3e\n",
				p.AllowedFraction, p.AchievedMRAPercent, p.LatencyNS, p.PApp))
		}
	}
	return sb.String()
}

// Fig6Summary reports the paper's headline reliability claim: the average
// P_app improvement of opt over naive per technology.
func Fig6Summary(series []Fig6Series) map[device.Technology]float64 {
	type key struct {
		tech device.Technology
		opt  bool
	}
	byKey := make(map[key]Fig6Series)
	for _, s := range series {
		byKey[key{s.Tech, s.Optimized}] = s
	}
	out := make(map[device.Technology]float64)
	// Each output entry depends only on its own (tech, opt) pair, so the
	// iteration order cannot reach the result.
	//sherlock:allow rangemap
	for k, naive := range byKey {
		if k.opt {
			continue
		}
		opt, ok := byKey[key{k.tech, true}]
		if !ok || len(opt.Points) != len(naive.Points) {
			continue
		}
		prod, n := 1.0, 0
		for i := range naive.Points {
			if opt.Points[i].PApp > 0 && naive.Points[i].PApp > 0 {
				prod *= naive.Points[i].PApp / opt.Points[i].PApp
				n++
			}
		}
		if n > 0 {
			out[k.tech] = powf(prod, 1/float64(n))
		}
	}
	return out
}
