package experiments

import (
	"fmt"
	"math"
	"strings"

	"sherlock/internal/cpu"
	"sherlock/internal/device"
)

func powf(x, e float64) float64 { return math.Pow(x, e) }

// Fig7Row compares one CIM configuration's energy-delay product against
// the CPU baseline running the same amount of work.
type Fig7Row struct {
	Workload  Workload
	Tech      device.Technology
	ArraySize int

	Elements int // work items processed by one CIM program execution

	CIMEDP  float64 // pJ*ns
	CPUEDP  float64
	EDPGain float64 // CPUEDP / CIMEDP
}

// Fig7 runs the optimized (MRA >= 2) CIM configurations against the CPU
// model. Work normalization: one CIM execution processes Lanes(n)
// SIMD lanes; each lane is one work item per kernel instance (a scanned
// value for bitweaving, an output pixel for Sobel, an encrypted block for
// AES).
// Like the other grids, the (workload, tech, size) cells are independent:
// they fan out over the campaign's worker pool and land at their
// precomputed index, keeping paper order for any parallelism.
func Fig7(r *Runner, sizes []int) ([]Fig7Row, error) {
	h := cpu.DefaultHierarchy()
	type cell struct {
		w    Workload
		tech device.Technology
		size int
	}
	var cells []cell
	for _, w := range Workloads() {
		for _, tech := range r.Setup().Techs {
			for _, size := range sizes {
				cells = append(cells, cell{w, tech, size})
			}
		}
	}
	rows := make([]Fig7Row, len(cells))
	err := r.runCells(len(cells), func(i int) error {
		w, tech, size := cells[i].w, cells[i].tech, cells[i].size
		res, err := r.Map(w, 1.0, false, size, false)
		if err != nil {
			return err
		}
		cost, err := Cost(res, tech, size)
		if err != nil {
			return err
		}
		lanes := Lanes(size)
		var elements int
		var cpuCost cpu.Cost
		switch w {
		case Bitweaving:
			elements = r.Setup().BW.Segments * lanes
			cpuCost = cpu.RunBitweaving(h, elements, r.Setup().BW.Bits)
		case Sobel:
			elements = r.Setup().Sobel.TileW * r.Setup().Sobel.TileH * lanes
			dim := int(math.Sqrt(float64(elements))) + 3
			cpuCost = cpu.RunSobel(h, dim, dim)
		case AES:
			elements = lanes
			st := res.Graph.ComputeStats()
			cpuCost = cpu.RunAES(h, elements, st.Ops, st.Operands)
		}
		row := Fig7Row{
			Workload:  w,
			Tech:      tech,
			ArraySize: size,
			Elements:  elements,
			CIMEDP:    cost.EDP(),
			CPUEDP:    cpuCost.EDP(),
		}
		if row.CIMEDP > 0 {
			row.EDPGain = row.CPUEDP / row.CIMEDP
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig7 prints the EDP comparison.
func RenderFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 7: energy-delay product vs CPU baseline (optimized mapping, MRA>=2)\n")
	sb.WriteString(fmt.Sprintf("%-11s %-10s %-6s %10s %14s %14s %10s\n",
		"Benchmark", "Tech", "Array", "Elements", "CIM EDP", "CPU EDP", "Gain"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %-10s %-6d %10d %14.3e %14.3e %9.1fx\n",
			r.Workload, r.Tech, r.ArraySize, r.Elements, r.CIMEDP, r.CPUEDP, r.EDPGain))
	}
	return sb.String()
}
