// Package device models the NVM cell technologies and the decision-failure
// statistics of scouting-logic sensing (Sec. 2.2, Fig. 2 of the paper).
//
// It replaces the paper's SPICE-simulation stage: instead of transistor-level
// simulation of each cell, resistive states are modeled as lognormal
// distributions (the standard process-variation model for memristive
// devices), and the bit-line of a k-row scouting read is the sum of k cell
// conductances. The probability of decision failure P_DF for an operation is
// the Bayes error of separating the two *nearest* composite-conductance
// states with the sense amplifier's reference — the overlap region of
// Fig. 2(b).
package device

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sherlock/internal/logic"
	"sherlock/internal/stats"
)

// Technology enumerates the supported NVM cell technologies.
type Technology int

// Supported technologies. STTMRAM and ReRAM are the paper's evaluation
// targets; PCM is included for the wider-gap design point mentioned in the
// introduction.
const (
	STTMRAM Technology = iota
	ReRAM
	PCM
)

// Technologies lists all supported technologies in display order.
func Technologies() []Technology { return []Technology{ReRAM, STTMRAM, PCM} }

func (t Technology) String() string {
	switch t {
	case STTMRAM:
		return "STT-MRAM"
	case ReRAM:
		return "ReRAM"
	case PCM:
		return "PCM"
	}
	return fmt.Sprintf("Technology(%d)", int(t))
}

// ParseTechnology resolves a technology by (case-sensitive) display name.
func ParseTechnology(s string) (Technology, error) {
	for _, t := range Technologies() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("device: unknown technology %q", s)
}

// Params characterizes one technology's cells and sensing path.
// Resistances are in ohms; the paper's bit convention is kept throughout:
// HRS stores '1', LRS stores '0'.
type Params struct {
	Tech Technology

	RLRS float64 // low-resistance ('0') state mean resistance
	RHRS float64 // high-resistance ('1') state mean resistance

	// Relative (sigma/mean) process variation of each state's resistance.
	RelSDLRS float64
	RelSDHRS float64

	// CmpNoiseFrac models sense-amplifier comparator offset and reference
	// imperfection as additional conductance noise, expressed as a
	// fraction of the LRS conductance.
	CmpNoiseFrac float64

	// MaxRows is the largest simultaneous multi-row activation the
	// technology's sensing path supports.
	MaxRows int

	// ReadVoltage is the bit-line read voltage (volts), used by the energy
	// model.
	ReadVoltage float64
}

// STT-MRAM cell geometry from Table 1 of the paper: an MgO-barrier MTJ with
// 20 nm radius, resistance-area product 7.5 Ω·µm², and 150 % nominal TMR.
const (
	sttRadiusUM = 0.020 // 20 nm in µm
	sttRAProd   = 7.5   // Ω·µm²
	sttTMR      = 1.50
)

// ParamsFor returns the calibrated parameters of a technology.
func ParamsFor(t Technology) Params {
	switch t {
	case STTMRAM:
		area := math.Pi * sttRadiusUM * sttRadiusUM // µm²
		rp := sttRAProd / area                      // parallel = LRS
		return Params{
			Tech:         STTMRAM,
			RLRS:         rp,
			RHRS:         rp * (1 + sttTMR),
			RelSDLRS:     0.08,
			RelSDHRS:     0.12,
			CmpNoiseFrac: 0.01,
			MaxRows:      4,
			ReadVoltage:  0.1,
		}
	case ReRAM:
		// JART VCM v1b-style filamentary cell (Table 1): the oxygen-vacancy
		// concentration ratio between LRS and HRS (3 vs 0.009 · 10^26 m^-3)
		// yields a two-orders-of-magnitude resistance window; HRS is the
		// unstable state (Wiefels et al.), hence its larger spread.
		return Params{
			Tech:         ReRAM,
			RLRS:         10e3,
			RHRS:         1.0e6,
			RelSDLRS:     0.06,
			RelSDHRS:     0.40,
			CmpNoiseFrac: 0.01,
			MaxRows:      8,
			ReadVoltage:  0.2,
		}
	case PCM:
		return Params{
			Tech:         PCM,
			RLRS:         20e3,
			RHRS:         20e6,
			RelSDLRS:     0.10,
			RelSDHRS:     0.50,
			CmpNoiseFrac: 0.01,
			MaxRows:      8,
			ReadVoltage:  0.2,
		}
	}
	panic(fmt.Sprintf("device: unknown technology %v", t))
}

// GLRS returns the mean LRS conductance (siemens).
func (p Params) GLRS() float64 { return 1 / p.RLRS }

// GHRS returns the mean HRS conductance (siemens).
func (p Params) GHRS() float64 { return 1 / p.RHRS }

// conductance spreads; to first order relSD(G) = relSD(R) for small spreads,
// which is accurate to within the model's fidelity.
func (p Params) sigmaGLRS() float64 { return p.GLRS() * p.RelSDLRS }
func (p Params) sigmaGHRS() float64 { return p.GHRS() * p.RelSDHRS }

// Composite returns the distribution of the total bit-line conductance when
// ones cells in HRS ('1') and zeros cells in LRS ('0') are activated
// together, including comparator noise.
func (p Params) Composite(ones, zeros int) stats.Normal {
	if ones < 0 || zeros < 0 {
		panic(fmt.Sprintf("device: negative cell count (%d,%d)", ones, zeros))
	}
	h := stats.SumOfIID(p.GHRS(), p.sigmaGHRS(), ones)
	l := stats.SumOfIID(p.GLRS(), p.sigmaGLRS(), zeros)
	d := stats.AddIndependent(h, l)
	cmp := stats.Normal{Mu: 0, Sigma: p.CmpNoiseFrac * p.GLRS()}
	return stats.AddIndependent(d, cmp)
}

// boundary returns the misclassification probability of separating the
// composite states with a and b HRS cells out of k activated rows.
func (p Params) boundary(k, a, b int) float64 {
	pa := p.Composite(a, k-a)
	pb := p.Composite(b, k-b)
	pf, _ := stats.OverlapProbability(pa, pb)
	return pf
}

// DecisionFailure returns P_DF for a scouting read realizing op over k
// simultaneously activated rows. Non-sense operations (NOT, COPY) are CMOS
// row-buffer operations and never fail in this model.
//
// The relevant boundaries follow from the paper's bit convention
// (HRS = '1'):
//
//   - AND/NAND distinguish "all k ones" from "k-1 ones": the state with one
//     LRS cell has a much higher bit-line conductance, a wide margin.
//   - OR/NOR distinguish "all k zeros" from "one one": both states are
//     dominated by LRS conductances whose variances accumulate with k, so
//     the margin degrades quickly with row count.
//   - XOR/XNOR need window sensing: the parity decision must separate every
//     adjacent pair of composite levels, so P_DF is the probability that
//     any of the k boundaries misfires.
//
// The result is memoized per (parameter set, op, row count): the overlap
// integrals behind each class are pure functions of the calibrated
// parameters, and hot paths (reliability.Assess, the fault-injecting
// simulator, cost-aware fusion ranking) ask for the same few classes
// millions of times. The cache is safe for concurrent use.
func (p Params) DecisionFailure(op logic.Op, k int) float64 {
	if !op.IsSense() {
		return 0
	}
	if k < 2 {
		panic(fmt.Sprintf("device: sense op %v with %d rows", op, k))
	}
	if k > p.MaxRows {
		panic(fmt.Sprintf("device: %d rows exceeds %v limit %d", k, p.Tech, p.MaxRows))
	}
	key := pdfKey{params: p, op: op, rows: k}
	cache := pdfCache.Load()
	if v, ok := cache.Load(key); ok {
		return v.(float64)
	}
	v := p.decisionFailure(op, k)
	cache.Store(key, v)
	return v
}

// pdfKey identifies one memoized decision-failure class. Params is a flat
// comparable struct, so custom parameter sets get their own cache entries
// and never alias the calibrated technologies.
type pdfKey struct {
	params Params
	op     logic.Op
	rows   int
}

var pdfCache = func() *atomic.Pointer[sync.Map] {
	p := new(atomic.Pointer[sync.Map])
	p.Store(new(sync.Map))
	return p
}()

// PDFCacheSize reports how many decision-failure classes are currently
// memoized (test and benchmark introspection).
func PDFCacheSize() int {
	n := 0
	pdfCache.Load().Range(func(_, _ any) bool { n++; return true })
	return n
}

// ResetPDFCache drops all memoized decision-failure classes so cold-path
// costs can be measured.
func ResetPDFCache() { pdfCache.Store(new(sync.Map)) }

func (p Params) decisionFailure(op logic.Op, k int) float64 {
	switch op {
	case logic.And, logic.Nand:
		return p.boundary(k, k, k-1)
	case logic.Or, logic.Nor:
		return p.boundary(k, 0, 1)
	case logic.Xor, logic.Xnor:
		ps := make([]float64, 0, k)
		for ones := 0; ones < k; ones++ {
			ps = append(ps, p.boundary(k, ones, ones+1))
		}
		return stats.ProbAtLeastOne(ps)
	}
	panic(fmt.Sprintf("device: unreachable op %v", op))
}

// SenseMargin returns the separation (in combined standard deviations) of
// the two nearest composite states for op at k rows — the z-score view of
// Fig. 2(b). Larger is more reliable.
func (p Params) SenseMargin(op logic.Op, k int) float64 {
	var a, b int
	switch op {
	case logic.And, logic.Nand:
		a, b = k, k-1
	case logic.Or, logic.Nor:
		a, b = 0, 1
	case logic.Xor, logic.Xnor:
		// Worst adjacent pair.
		worst := math.Inf(1)
		for ones := 0; ones < k; ones++ {
			da := p.Composite(ones, k-ones)
			db := p.Composite(ones+1, k-ones-1)
			z := math.Abs(da.Mu-db.Mu) / (da.Sigma + db.Sigma)
			if z < worst {
				worst = z
			}
		}
		return worst
	default:
		panic(fmt.Sprintf("device: SenseMargin of non-sense op %v", op))
	}
	da := p.Composite(a, k-a)
	db := p.Composite(b, k-b)
	return math.Abs(da.Mu-db.Mu) / (da.Sigma + db.Sigma)
}

// ResistanceWindow returns RHRS/RLRS, the technology's nominal resistance
// ratio (the "gap" driving reliability in Sec. 2.2).
func (p Params) ResistanceWindow() float64 { return p.RHRS / p.RLRS }
