package device

import (
	"math"
	"sync"
	"testing"

	"sherlock/internal/logic"
)

func TestParamsForDerivedResistances(t *testing.T) {
	p := ParamsFor(STTMRAM)
	// RA = 7.5 Ω·µm² over a 20 nm-radius MTJ: R_P ≈ 5968 Ω, TMR 150 %.
	if math.Abs(p.RLRS-5968) > 10 {
		t.Errorf("STT-MRAM RLRS = %.0f, want ~5968", p.RLRS)
	}
	if math.Abs(p.RHRS/p.RLRS-2.5) > 1e-9 {
		t.Errorf("STT-MRAM window = %.3f, want 2.5", p.RHRS/p.RLRS)
	}
	r := ParamsFor(ReRAM)
	if r.ResistanceWindow() < 50 {
		t.Errorf("ReRAM window = %.1f, want a wide (>50x) gap", r.ResistanceWindow())
	}
	c := ParamsFor(PCM)
	if c.ResistanceWindow() <= r.ResistanceWindow() {
		t.Errorf("PCM window %.0f should exceed ReRAM %.0f", c.ResistanceWindow(), r.ResistanceWindow())
	}
}

func TestTechnologyStringParse(t *testing.T) {
	for _, tech := range Technologies() {
		got, err := ParseTechnology(tech.String())
		if err != nil || got != tech {
			t.Errorf("round trip %v failed: %v %v", tech, got, err)
		}
	}
	if _, err := ParseTechnology("FRAM"); err == nil {
		t.Error("unknown technology accepted")
	}
}

func TestCompositeMoments(t *testing.T) {
	p := ParamsFor(STTMRAM)
	d := p.Composite(2, 0)
	if math.Abs(d.Mu-2*p.GHRS()) > 1e-12 {
		t.Errorf("2xHRS mean = %g, want %g", d.Mu, 2*p.GHRS())
	}
	d2 := p.Composite(1, 1)
	if d2.Mu <= d.Mu {
		t.Error("adding an LRS cell must raise total conductance")
	}
	// Variance grows with cell count.
	if p.Composite(4, 0).Sigma <= p.Composite(2, 0).Sigma {
		t.Error("sigma must grow with activated rows")
	}
}

func TestDecisionFailureNonSenseOpsAreFree(t *testing.T) {
	p := ParamsFor(STTMRAM)
	if got := p.DecisionFailure(logic.Not, 1); got != 0 {
		t.Errorf("NOT P_DF = %g, want 0", got)
	}
	if got := p.DecisionFailure(logic.Copy, 1); got != 0 {
		t.Errorf("COPY P_DF = %g, want 0", got)
	}
}

func TestDecisionFailureGrowsWithRows(t *testing.T) {
	// The paper's key claim (Fig. 2b): more activated rows -> higher P_DF.
	for _, tech := range Technologies() {
		p := ParamsFor(tech)
		for _, op := range []logic.Op{logic.And, logic.Or, logic.Xor} {
			prev := 0.0
			for k := 2; k <= p.MaxRows; k++ {
				pdf := p.DecisionFailure(op, k)
				if pdf <= 0 || pdf >= 1 {
					t.Fatalf("%v %v k=%d: P_DF = %g out of (0,1)", tech, op, k, pdf)
				}
				if pdf < prev {
					t.Errorf("%v %v: P_DF(k=%d)=%.3g < P_DF(k=%d)=%.3g", tech, op, k, pdf, k-1, prev)
				}
				prev = pdf
			}
		}
	}
}

func TestReRAMMoreReliableThanSTTMRAM(t *testing.T) {
	// Wider LRS/HRS gap -> lower P_DF (Sec. 2.2).
	re, stt := ParamsFor(ReRAM), ParamsFor(STTMRAM)
	for _, op := range []logic.Op{logic.And, logic.Or, logic.Xor} {
		for k := 2; k <= 4; k++ {
			pr, ps := re.DecisionFailure(op, k), stt.DecisionFailure(op, k)
			if pr >= ps {
				t.Errorf("%v k=%d: ReRAM P_DF %.3g >= STT-MRAM %.3g", op, k, pr, ps)
			}
		}
	}
}

func TestSTTMRAMOrXorMuchWorseThanAnd(t *testing.T) {
	// This asymmetry motivates the NAND-based lowering of Fig. 6b.
	p := ParamsFor(STTMRAM)
	and := p.DecisionFailure(logic.And, 2)
	or := p.DecisionFailure(logic.Or, 2)
	xor := p.DecisionFailure(logic.Xor, 2)
	if or < 5*and {
		t.Errorf("STT-MRAM OR P_DF %.3g not clearly worse than AND %.3g", or, and)
	}
	if xor < or {
		t.Errorf("STT-MRAM XOR P_DF %.3g should be at least OR's %.3g", xor, or)
	}
}

func TestInverseOpsShareFailureRates(t *testing.T) {
	p := ParamsFor(ReRAM)
	for k := 2; k <= 4; k++ {
		if p.DecisionFailure(logic.And, k) != p.DecisionFailure(logic.Nand, k) {
			t.Errorf("AND vs NAND P_DF differ at k=%d", k)
		}
		if p.DecisionFailure(logic.Or, k) != p.DecisionFailure(logic.Nor, k) {
			t.Errorf("OR vs NOR P_DF differ at k=%d", k)
		}
		if p.DecisionFailure(logic.Xor, k) != p.DecisionFailure(logic.Xnor, k) {
			t.Errorf("XOR vs XNOR P_DF differ at k=%d", k)
		}
	}
}

func TestDecisionFailureMagnitudes(t *testing.T) {
	// Calibration targets from Sec. 4.2: ReRAM applications stay below
	// P_app 1e-4 (so per-op well under 1e-6 for AND-class), while
	// STT-MRAM lands around P_app 1e-2 for NAND-lowered kernels with
	// tens of ops (per-op around 1e-5..1e-3).
	re := ParamsFor(ReRAM).DecisionFailure(logic.And, 2)
	if re > 1e-7 {
		t.Errorf("ReRAM AND2 P_DF = %.3g, want < 1e-7", re)
	}
	stt := ParamsFor(STTMRAM).DecisionFailure(logic.Nand, 2)
	if stt < 1e-6 || stt > 1e-2 {
		t.Errorf("STT-MRAM NAND2 P_DF = %.3g, want within [1e-6, 1e-2]", stt)
	}
}

func TestSenseMarginConsistency(t *testing.T) {
	p := ParamsFor(STTMRAM)
	for _, op := range []logic.Op{logic.And, logic.Or, logic.Xor} {
		m2, m4 := p.SenseMargin(op, 2), p.SenseMargin(op, 4)
		if m2 <= 0 || m4 <= 0 {
			t.Fatalf("%v margins not positive: %g %g", op, m2, m4)
		}
		if m4 >= m2 {
			t.Errorf("%v margin should shrink with rows: k2=%.2f k4=%.2f", op, m2, m4)
		}
	}
	if p.SenseMargin(logic.Or, 2) >= p.SenseMargin(logic.And, 2) {
		t.Error("OR margin should be narrower than AND margin on STT-MRAM")
	}
}

func TestDecisionFailurePanics(t *testing.T) {
	p := ParamsFor(STTMRAM)
	for _, f := range []func(){
		func() { p.DecisionFailure(logic.And, 1) },
		func() { p.DecisionFailure(logic.And, p.MaxRows+1) },
		func() { p.Composite(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDecisionFailureMemo(t *testing.T) {
	ResetPDFCache()
	p := ParamsFor(ReRAM)
	cold := p.DecisionFailure(logic.Xor, 4)
	if PDFCacheSize() != 1 {
		t.Fatalf("cache size = %d after one class, want 1", PDFCacheSize())
	}
	if warm := p.DecisionFailure(logic.Xor, 4); warm != cold {
		t.Fatalf("memoized value %g != computed %g", warm, cold)
	}
	// A custom parameter set must not alias the calibrated entry.
	q := p
	q.RelSDHRS *= 2
	if v := q.DecisionFailure(logic.Xor, 4); v == cold {
		t.Error("custom params hit the calibrated cache entry")
	}
	if PDFCacheSize() != 2 {
		t.Errorf("cache size = %d, want 2", PDFCacheSize())
	}
	ResetPDFCache()
	if PDFCacheSize() != 0 {
		t.Errorf("cache size = %d after reset, want 0", PDFCacheSize())
	}
	if again := p.DecisionFailure(logic.Xor, 4); again != cold {
		t.Errorf("recomputed value %g != original %g", again, cold)
	}
}

func TestDecisionFailureMemoConcurrent(t *testing.T) {
	// Many goroutines hitting the same classes; `go test -race` flags any
	// unsynchronized cache access, and every caller must see one value.
	ResetPDFCache()
	p := ParamsFor(STTMRAM)
	want := p.DecisionFailure(logic.And, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if got := p.DecisionFailure(logic.And, 4); got != want {
					t.Errorf("concurrent P_DF %g != %g", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
