package layout

import (
	"testing"

	"sherlock/internal/dfg"
)

func target() Target { return Target{Arrays: 2, Rows: 4, Cols: 3} }

func TestTargetValidate(t *testing.T) {
	if err := target().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Target{{0, 4, 4}, {1, 1, 4}, {1, 4, 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
	if got := target().Cells(); got != 24 {
		t.Errorf("Cells = %d, want 24", got)
	}
}

func TestAllocSequentialRows(t *testing.T) {
	l := New(target())
	c := ColumnRef{Array: 0, Col: 1}
	for i := 0; i < 4; i++ {
		p, err := l.Alloc(dfg.NodeID(i), c)
		if err != nil {
			t.Fatal(err)
		}
		if p.Row != i || p.Col != 1 || p.Array != 0 {
			t.Errorf("alloc %d at %v", i, p)
		}
	}
	if _, err := l.Alloc(dfg.NodeID(9), c); err == nil {
		t.Error("overfull column accepted")
	}
	if l.FreeRows(c) != 0 {
		t.Errorf("FreeRows = %d, want 0", l.FreeRows(c))
	}
}

func TestAllocRejectsBadColumn(t *testing.T) {
	l := New(target())
	for _, c := range []ColumnRef{{Array: 2, Col: 0}, {Array: 0, Col: 3}, {Array: -1, Col: 0}} {
		if _, err := l.Alloc(1, c); err == nil {
			t.Errorf("accepted column %v", c)
		}
		if l.FreeRows(c) != 0 {
			t.Errorf("FreeRows(%v) nonzero for invalid column", c)
		}
	}
}

func TestHomeAndDuplicates(t *testing.T) {
	l := New(target())
	n := dfg.NodeID(7)
	p1, _ := l.Alloc(n, ColumnRef{0, 0})
	p2, _ := l.Alloc(n, ColumnRef{0, 2})
	home, ok := l.Home(n)
	if !ok || home != p1 {
		t.Errorf("home = %v, want %v", home, p1)
	}
	if got := len(l.Places(n)); got != 2 {
		t.Errorf("places = %d, want 2", got)
	}
	if got, ok := l.InColumn(n, ColumnRef{0, 2}); !ok || got != p2 {
		t.Errorf("InColumn = %v %v", got, ok)
	}
	if _, ok := l.InColumn(n, ColumnRef{1, 0}); ok {
		t.Error("InColumn found ghost placement")
	}
	if l.DuplicateCells() != 1 {
		t.Errorf("DuplicateCells = %d, want 1", l.DuplicateCells())
	}
	if who, ok := l.OccupantAt(p2); !ok || who != n {
		t.Errorf("OccupantAt = %v %v", who, ok)
	}
}

func TestColumnsUsedSortedAndUtilization(t *testing.T) {
	l := New(target())
	l.Alloc(1, ColumnRef{1, 2})
	l.Alloc(2, ColumnRef{0, 1})
	l.Alloc(3, ColumnRef{0, 1})
	cols := l.ColumnsUsed()
	if len(cols) != 2 || cols[0] != (ColumnRef{0, 1}) || cols[1] != (ColumnRef{1, 2}) {
		t.Errorf("ColumnsUsed = %v", cols)
	}
	// 3 cells over 2 columns x 4 rows.
	if got := l.Utilization(); got != 3.0/8.0 {
		t.Errorf("Utilization = %g, want 0.375", got)
	}
	if !l.IsPlaced(1) || l.IsPlaced(99) {
		t.Error("IsPlaced wrong")
	}
	if l.OperandsPlaced() != 3 || l.CellsUsed() != 3 {
		t.Error("counts wrong")
	}
}

func TestEmptyLayoutQueries(t *testing.T) {
	l := New(target())
	if _, ok := l.Home(5); ok {
		t.Error("Home on empty layout")
	}
	if l.Utilization() != 0 {
		t.Error("Utilization on empty layout should be 0")
	}
	if len(l.ColumnsUsed()) != 0 {
		t.Error("ColumnsUsed on empty layout")
	}
}

func TestReleaseAndRecycle(t *testing.T) {
	l := New(target())
	c := ColumnRef{Array: 0, Col: 0}
	for i := 0; i < 4; i++ {
		if _, err := l.Alloc(dfg.NodeID(i), c); err != nil {
			t.Fatal(err)
		}
	}
	if l.FreeRows(c) != 0 {
		t.Fatal("column should be full")
	}
	l.Release(2)
	if l.FreeRows(c) != 1 {
		t.Fatalf("FreeRows = %d after release, want 1", l.FreeRows(c))
	}
	p, err := l.Alloc(9, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Row != 2 {
		t.Errorf("recycled row = %d, want 2", p.Row)
	}
	if l.RecycledAllocs() != 1 {
		t.Errorf("RecycledAllocs = %d, want 1", l.RecycledAllocs())
	}
	if _, ok := l.Home(2); ok {
		t.Error("released operand still has a home")
	}
	if who, _ := l.OccupantAt(p); who != 9 {
		t.Error("occupant not updated after recycling")
	}
}

func TestWearLevelingPolicy(t *testing.T) {
	// LIFO (default): freed rows are reused immediately.
	l := New(target())
	c := ColumnRef{Array: 0, Col: 0}
	l.Alloc(1, c)
	l.Release(1)
	p, _ := l.Alloc(2, c)
	if p.Row != 0 {
		t.Errorf("default policy should reuse row 0, got %d", p.Row)
	}

	// Wear leveling: fresh rows first, freed rows FIFO afterwards.
	lw := New(target())
	lw.WearLeveling = true
	lw.Alloc(1, c) // row 0
	lw.Release(1)
	p1, _ := lw.Alloc(2, c) // must take fresh row 1, not recycled row 0
	if p1.Row != 1 {
		t.Fatalf("wear leveling should prefer fresh rows, got %d", p1.Row)
	}
	lw.Alloc(3, c) // row 2
	lw.Alloc(4, c) // row 3 — bump exhausted
	lw.Release(2)  // frees row 1 (after row 0 already in pool)
	pa, _ := lw.Alloc(5, c)
	pb, _ := lw.Alloc(6, c)
	if pa.Row != 0 || pb.Row != 1 {
		t.Errorf("FIFO rotation wrong: got rows %d,%d want 0,1", pa.Row, pb.Row)
	}
}
