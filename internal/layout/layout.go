// Package layout tracks where DFG operands live in the CIM array(s): the
// memory layout the mapping algorithms produce alongside the instruction
// stream. One operand can occupy several cells (the naive mapper duplicates
// data to co-locate an op's inputs in one column); the first placement is
// the operand's canonical home.
package layout

import (
	"fmt"
	"sort"

	"sherlock/internal/dfg"
)

// Target describes the addressable CIM fabric the mapper may use.
type Target struct {
	Arrays int // number of independent arrays (each with its own row buffer)
	Rows   int // rows per array (m)
	Cols   int // columns per array (n)
}

// Validate rejects degenerate targets.
func (t Target) Validate() error {
	if t.Arrays < 1 || t.Rows < 2 || t.Cols < 1 {
		return fmt.Errorf("layout: invalid target %+v", t)
	}
	return nil
}

// Cells returns the total cell capacity.
func (t Target) Cells() int { return t.Arrays * t.Rows * t.Cols }

// Place is one cell coordinate.
type Place struct {
	Array, Col, Row int
}

func (p Place) String() string {
	return fmt.Sprintf("[%d][%d][%d]", p.Array, p.Col, p.Row)
}

// ColumnRef addresses a column within an array.
type ColumnRef struct {
	Array, Col int
}

// Layout is the operand-to-cell assignment. The zero value is unusable;
// construct with New.
type Layout struct {
	target   Target
	places   map[dfg.NodeID][]Place // operand -> cells holding it (first = home)
	occupant map[Place]dfg.NodeID
	fill     map[ColumnRef]int   // bump allocator: next free row per column
	freed    map[ColumnRef][]int // recycled rows available below the bump point
	recycled int

	// WearLeveling switches the recycled-row pool from LIFO (reuse the
	// most recently freed row, which concentrates writes on few cells) to
	// FIFO (rotate through freed rows, spreading programming cycles —
	// implicit wear leveling for endurance-limited technologies).
	WearLeveling bool
}

// New returns an empty layout over the target.
func New(t Target) *Layout {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return &Layout{
		target:   t,
		places:   make(map[dfg.NodeID][]Place),
		occupant: make(map[Place]dfg.NodeID),
		fill:     make(map[ColumnRef]int),
		freed:    make(map[ColumnRef][]int),
	}
}

// Target returns the fabric description.
func (l *Layout) Target() Target { return l.target }

// Alloc places the operand at the next free row of the given column
// (preferring recycled rows) and returns the cell. It fails when the
// column is full.
func (l *Layout) Alloc(node dfg.NodeID, c ColumnRef) (Place, error) {
	if err := l.checkColumn(c); err != nil {
		return Place{}, err
	}
	row, ok := l.pickRow(c)
	if !ok {
		return Place{}, fmt.Errorf("layout: column %v full (%d rows)", c, l.target.Rows)
	}
	p := Place{Array: c.Array, Col: c.Col, Row: row}
	l.places[node] = append(l.places[node], p)
	l.occupant[p] = node
	return p, nil
}

// pickRow chooses the next row of the column. Default policy: reuse the
// most recently freed row first (maximizes locality and keeps the bump
// pointer low). With WearLeveling: exhaust fresh rows first, then rotate
// through freed rows FIFO, so programming cycles spread over every row of
// the column before any row is written twice.
func (l *Layout) pickRow(c ColumnRef) (int, bool) {
	free := l.freed[c]
	if l.WearLeveling {
		if l.fill[c] < l.target.Rows {
			row := l.fill[c]
			l.fill[c] = row + 1
			return row, true
		}
		if len(free) > 0 {
			row := free[0]
			l.freed[c] = free[1:]
			l.recycled++
			return row, true
		}
		return 0, false
	}
	if len(free) > 0 {
		row := free[len(free)-1]
		l.freed[c] = free[:len(free)-1]
		l.recycled++
		return row, true
	}
	if l.fill[c] < l.target.Rows {
		row := l.fill[c]
		l.fill[c] = row + 1
		return row, true
	}
	return 0, false
}

// Release frees every cell held by the operand, making the rows available
// for reuse within their columns (liveness-driven row recycling). Calling
// it for an unplaced operand is a no-op.
func (l *Layout) Release(node dfg.NodeID) {
	for _, p := range l.places[node] {
		delete(l.occupant, p)
		c := ColumnRef{Array: p.Array, Col: p.Col}
		l.freed[c] = append(l.freed[c], p.Row)
	}
	delete(l.places, node)
}

// RecycledAllocs reports how many allocations were served from released
// rows.
func (l *Layout) RecycledAllocs() int { return l.recycled }

func (l *Layout) checkColumn(c ColumnRef) error {
	if c.Array < 0 || c.Array >= l.target.Arrays || c.Col < 0 || c.Col >= l.target.Cols {
		return fmt.Errorf("layout: column %v outside target %+v", c, l.target)
	}
	return nil
}

// FreeRows reports how many rows remain unallocated in the column,
// including released rows awaiting reuse.
func (l *Layout) FreeRows(c ColumnRef) int {
	if err := l.checkColumn(c); err != nil {
		return 0
	}
	return l.target.Rows - l.fill[c] + len(l.freed[c])
}

// Home returns the operand's canonical (first) cell.
func (l *Layout) Home(node dfg.NodeID) (Place, bool) {
	ps := l.places[node]
	if len(ps) == 0 {
		return Place{}, false
	}
	return ps[0], true
}

// Places returns every cell holding the operand (a copy).
func (l *Layout) Places(node dfg.NodeID) []Place {
	return append([]Place(nil), l.places[node]...)
}

// InColumn returns the operand's cell within the given column, if any.
func (l *Layout) InColumn(node dfg.NodeID, c ColumnRef) (Place, bool) {
	for _, p := range l.places[node] {
		if p.Array == c.Array && p.Col == c.Col {
			return p, true
		}
	}
	return Place{}, false
}

// OccupantAt returns the operand stored at the cell, if any.
func (l *Layout) OccupantAt(p Place) (dfg.NodeID, bool) {
	n, ok := l.occupant[p]
	return n, ok
}

// IsPlaced reports whether the operand has at least one cell.
func (l *Layout) IsPlaced(node dfg.NodeID) bool { return len(l.places[node]) > 0 }

// CellsUsed returns the number of occupied cells.
func (l *Layout) CellsUsed() int { return len(l.occupant) }

// OperandsPlaced returns the number of distinct operands with a home.
func (l *Layout) OperandsPlaced() int { return len(l.places) }

// DuplicateCells returns how many cells hold redundant copies (total cells
// minus distinct operands) — the data-duplication overhead of a mapping.
func (l *Layout) DuplicateCells() int { return len(l.occupant) - len(l.places) }

// ColumnsUsed returns the columns with at least one allocation, sorted by
// (array, col).
func (l *Layout) ColumnsUsed() []ColumnRef {
	out := make([]ColumnRef, 0, len(l.fill))
	for c, n := range l.fill {
		if n > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Array != out[j].Array {
			return out[i].Array < out[j].Array
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Utilization returns occupied cells over the capacity of the columns in
// use (1.0 = perfectly packed columns).
func (l *Layout) Utilization() float64 {
	used := l.ColumnsUsed()
	if len(used) == 0 {
		return 0
	}
	return float64(len(l.occupant)) / float64(len(used)*l.target.Rows)
}
