// Package layout tracks where DFG operands live in the CIM array(s): the
// memory layout the mapping algorithms produce alongside the instruction
// stream. One operand can occupy several cells (the naive mapper duplicates
// data to co-locate an op's inputs in one column); the first placement is
// the operand's canonical home.
package layout

import (
	"fmt"

	"sherlock/internal/dfg"
)

// Target describes the addressable CIM fabric the mapper may use.
type Target struct {
	Arrays int // number of independent arrays (each with its own row buffer)
	Rows   int // rows per array (m)
	Cols   int // columns per array (n)
}

// Validate rejects degenerate targets.
func (t Target) Validate() error {
	if t.Arrays < 1 || t.Rows < 2 || t.Cols < 1 {
		return fmt.Errorf("layout: invalid target %+v", t)
	}
	return nil
}

// Cells returns the total cell capacity.
func (t Target) Cells() int { return t.Arrays * t.Rows * t.Cols }

// Place is one cell coordinate.
type Place struct {
	Array, Col, Row int
}

func (p Place) String() string {
	return fmt.Sprintf("[%d][%d][%d]", p.Array, p.Col, p.Row)
}

// ColumnRef addresses a column within an array.
type ColumnRef struct {
	Array, Col int
}

// Layout is the operand-to-cell assignment. The zero value is unusable;
// construct with New.
//
// NodeIDs and column coordinates are both dense small integers, so the hot
// per-allocation state lives in flat slices: the canonical home cell is
// stored inline per operand (no per-node slice allocation), and only the
// rare duplicate placements of the naive mapper spill into a map.
type Layout struct {
	target   Target
	home     []Place                // operand -> canonical cell; Row < 0 = unplaced
	more     map[dfg.NodeID][]Place // duplicate cells beyond the home (naive mapper)
	placed   int                    // operands with at least one cell
	occupant map[Place]dfg.NodeID
	fill     []int32   // bump allocator: next free row, indexed by array*Cols+col
	freed    [][]int32 // recycled rows available below the bump point
	recycled int

	// WearLeveling switches the recycled-row pool from LIFO (reuse the
	// most recently freed row, which concentrates writes on few cells) to
	// FIFO (rotate through freed rows, spreading programming cycles —
	// implicit wear leveling for endurance-limited technologies).
	WearLeveling bool
}

// New returns an empty layout over the target.
func New(t Target) *Layout {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return &Layout{
		target:   t,
		more:     make(map[dfg.NodeID][]Place),
		occupant: make(map[Place]dfg.NodeID),
		fill:     make([]int32, t.Arrays*t.Cols),
		freed:    make([][]int32, t.Arrays*t.Cols),
	}
}

// Target returns the fabric description.
func (l *Layout) Target() Target { return l.target }

// colIndex flattens a (validated) column reference.
func (l *Layout) colIndex(c ColumnRef) int { return c.Array*l.target.Cols + c.Col }

// homeAt returns the operand's inline home slot, or nil if the slot has
// never been touched.
func (l *Layout) homeAt(node dfg.NodeID) *Place {
	if int(node) >= len(l.home) {
		return nil
	}
	return &l.home[node]
}

// ensureHome grows the home table to cover node and returns its slot.
func (l *Layout) ensureHome(node dfg.NodeID) *Place {
	for int(node) >= len(l.home) {
		n := max(2*cap(l.home), int(node)+1)
		grown := make([]Place, len(l.home), n)
		copy(grown, l.home)
		l.home = grown[:cap(grown)]
		for i := len(grown); i < len(l.home); i++ {
			l.home[i].Row = -1
		}
	}
	return &l.home[node]
}

// Alloc places the operand at the next free row of the given column
// (preferring recycled rows) and returns the cell. It fails when the
// column is full.
func (l *Layout) Alloc(node dfg.NodeID, c ColumnRef) (Place, error) {
	if err := l.checkColumn(c); err != nil {
		return Place{}, err
	}
	row, ok := l.pickRow(c)
	if !ok {
		return Place{}, fmt.Errorf("layout: column %v full (%d rows)", c, l.target.Rows)
	}
	p := Place{Array: c.Array, Col: c.Col, Row: row}
	if slot := l.ensureHome(node); slot.Row < 0 {
		*slot = p
		l.placed++
	} else {
		l.more[node] = append(l.more[node], p)
	}
	l.occupant[p] = node
	return p, nil
}

// pickRow chooses the next row of the column. Default policy: reuse the
// most recently freed row first (maximizes locality and keeps the bump
// pointer low). With WearLeveling: exhaust fresh rows first, then rotate
// through freed rows FIFO, so programming cycles spread over every row of
// the column before any row is written twice.
func (l *Layout) pickRow(c ColumnRef) (int, bool) {
	ci := l.colIndex(c)
	free := l.freed[ci]
	if l.WearLeveling {
		if int(l.fill[ci]) < l.target.Rows {
			row := l.fill[ci]
			l.fill[ci] = row + 1
			return int(row), true
		}
		if len(free) > 0 {
			row := free[0]
			l.freed[ci] = free[1:]
			l.recycled++
			return int(row), true
		}
		return 0, false
	}
	if len(free) > 0 {
		row := free[len(free)-1]
		l.freed[ci] = free[:len(free)-1]
		l.recycled++
		return int(row), true
	}
	if int(l.fill[ci]) < l.target.Rows {
		row := l.fill[ci]
		l.fill[ci] = row + 1
		return int(row), true
	}
	return 0, false
}

// Release frees every cell held by the operand, making the rows available
// for reuse within their columns (liveness-driven row recycling). Calling
// it for an unplaced operand is a no-op.
func (l *Layout) Release(node dfg.NodeID) {
	slot := l.homeAt(node)
	if slot == nil || slot.Row < 0 {
		return
	}
	l.releaseCell(*slot)
	for _, p := range l.more[node] {
		l.releaseCell(p)
	}
	slot.Row = -1
	delete(l.more, node)
	l.placed--
}

func (l *Layout) releaseCell(p Place) {
	delete(l.occupant, p)
	ci := l.colIndex(ColumnRef{Array: p.Array, Col: p.Col})
	l.freed[ci] = append(l.freed[ci], int32(p.Row))
}

// RecycledAllocs reports how many allocations were served from released
// rows.
func (l *Layout) RecycledAllocs() int { return l.recycled }

func (l *Layout) checkColumn(c ColumnRef) error {
	if c.Array < 0 || c.Array >= l.target.Arrays || c.Col < 0 || c.Col >= l.target.Cols {
		return fmt.Errorf("layout: column %v outside target %+v", c, l.target)
	}
	return nil
}

// FreeRows reports how many rows remain unallocated in the column,
// including released rows awaiting reuse.
func (l *Layout) FreeRows(c ColumnRef) int {
	if err := l.checkColumn(c); err != nil {
		return 0
	}
	ci := l.colIndex(c)
	return l.target.Rows - int(l.fill[ci]) + len(l.freed[ci])
}

// Home returns the operand's canonical (first) cell.
func (l *Layout) Home(node dfg.NodeID) (Place, bool) {
	slot := l.homeAt(node)
	if slot == nil || slot.Row < 0 {
		return Place{}, false
	}
	return *slot, true
}

// Places returns every cell holding the operand (a copy).
func (l *Layout) Places(node dfg.NodeID) []Place {
	slot := l.homeAt(node)
	if slot == nil || slot.Row < 0 {
		return nil
	}
	out := make([]Place, 0, 1+len(l.more[node]))
	out = append(out, *slot)
	return append(out, l.more[node]...)
}

// InColumn returns the operand's cell within the given column, if any.
func (l *Layout) InColumn(node dfg.NodeID, c ColumnRef) (Place, bool) {
	slot := l.homeAt(node)
	if slot == nil || slot.Row < 0 {
		return Place{}, false
	}
	if slot.Array == c.Array && slot.Col == c.Col {
		return *slot, true
	}
	for _, p := range l.more[node] {
		if p.Array == c.Array && p.Col == c.Col {
			return p, true
		}
	}
	return Place{}, false
}

// OccupantAt returns the operand stored at the cell, if any.
func (l *Layout) OccupantAt(p Place) (dfg.NodeID, bool) {
	n, ok := l.occupant[p]
	return n, ok
}

// IsPlaced reports whether the operand has at least one cell.
func (l *Layout) IsPlaced(node dfg.NodeID) bool {
	slot := l.homeAt(node)
	return slot != nil && slot.Row >= 0
}

// CellsUsed returns the number of occupied cells.
func (l *Layout) CellsUsed() int { return len(l.occupant) }

// OperandsPlaced returns the number of distinct operands with a home.
func (l *Layout) OperandsPlaced() int { return l.placed }

// DuplicateCells returns how many cells hold redundant copies (total cells
// minus distinct operands) — the data-duplication overhead of a mapping.
func (l *Layout) DuplicateCells() int { return len(l.occupant) - l.placed }

// ColumnsUsed returns the columns with at least one allocation, sorted by
// (array, col). Column indices are already laid out in that order, so the
// scan produces sorted output directly.
func (l *Layout) ColumnsUsed() []ColumnRef {
	var out []ColumnRef
	for ci, n := range l.fill {
		if n > 0 {
			out = append(out, ColumnRef{Array: ci / l.target.Cols, Col: ci % l.target.Cols})
		}
	}
	return out
}

// Utilization returns occupied cells over the capacity of the columns in
// use (1.0 = perfectly packed columns).
func (l *Layout) Utilization() float64 {
	used := l.ColumnsUsed()
	if len(used) == 0 {
		return 0
	}
	return float64(len(l.occupant)) / float64(len(used)*l.target.Rows)
}
