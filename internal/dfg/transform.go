package dfg

import (
	"fmt"
	"math/rand"
	"sort"

	"sherlock/internal/logic"
)

// SubstituteOptions controls the node-substitution transform (Sec. 3.3.3):
// two op nodes of the same associative type, where the producer's output is
// used exactly once (by the consumer), fuse into one multi-operand node.
type SubstituteOptions struct {
	// MaxOperands bounds the arity of fused nodes; it corresponds to the
	// maximum number of simultaneously activated rows the target supports.
	// Must be at least 2.
	MaxOperands int
	// Fraction in [0,1] selects how many of the applicable fusions are
	// performed, the x-axis knob of Fig. 6. 1 applies all.
	Fraction float64
	// Seed makes partial selection deterministic.
	Seed int64
	// CostOf, when non-nil, ranks fusion candidates: lower-cost fusions
	// are taken first when Fraction < 1. The optimized flow passes the
	// technology's decision-failure estimate here, so the fusions picked
	// are those that buy latency at the least reliability cost (Sec. 4.2:
	// "in opt the choice of the best operations to merge highly depends
	// on these decisions"). Nil falls back to a seeded random order (the
	// mapping-blind baseline, whose Fig. 6 curve is near-linear).
	CostOf func(op logic.Op, fusedArity int) float64
}

// SubstituteStats reports what the transform did.
type SubstituteStats struct {
	Candidates int // fusion opportunities found
	Applied    int // fusions performed
	OpsBefore  int
	OpsAfter   int
	MaxArity   int
}

type mergeEdge struct {
	producer NodeID
	consumer NodeID
}

// SubstituteNodes returns a transformed copy of g with same-type associative
// op chains flattened into multi-operand nodes, plus statistics. The graph
// g is not modified.
func SubstituteNodes(g *Graph, opt SubstituteOptions) (*Graph, SubstituteStats) {
	if opt.MaxOperands < 2 {
		panic(fmt.Sprintf("dfg: MaxOperands %d < 2", opt.MaxOperands))
	}
	if opt.Fraction < 0 || opt.Fraction > 1 {
		panic(fmt.Sprintf("dfg: Fraction %g outside [0,1]", opt.Fraction))
	}
	stats := SubstituteStats{OpsBefore: len(g.opInputs)}

	// Enumerate candidate fusion edges in deterministic order.
	var candidates []mergeEdge
	for _, c := range g.TopoOps() {
		t := g.OpType(c)
		if !t.Associative() {
			continue
		}
		for _, in := range g.opInputs[c] {
			p := g.Producer(in)
			if p == NoNode || g.OpType(p) != t {
				continue
			}
			if len(g.consumers[in]) != 1 || g.IsOutput(in) {
				continue
			}
			candidates = append(candidates, mergeEdge{producer: p, consumer: c})
		}
	}
	stats.Candidates = len(candidates)

	selected := make(map[mergeEdge]bool, len(candidates))
	n := int(float64(len(candidates))*opt.Fraction + 0.5)
	if opt.Fraction >= 1 {
		n = len(candidates)
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	if opt.CostOf != nil {
		cost := make([]float64, len(candidates))
		for i, cand := range candidates {
			t := g.OpType(cand.consumer)
			fusedArity := len(g.opInputs[cand.consumer]) + len(g.opInputs[cand.producer]) - 1
			if fusedArity > opt.MaxOperands {
				fusedArity = opt.MaxOperands
			}
			cost[i] = opt.CostOf(t, fusedArity)
		}
		sort.SliceStable(order, func(i, j int) bool { return cost[order[i]] < cost[order[j]] })
	} else {
		order = rand.New(rand.NewSource(opt.Seed)).Perm(len(candidates))
	}
	for i := 0; i < n; i++ {
		selected[candidates[order[i]]] = true
	}

	// Flatten in topo order. flat[op] is the op's effective input list
	// after absorbing selected single-use same-type producers.
	flat := make(map[NodeID][]NodeID, len(g.opInputs))
	absorbed := make(map[NodeID]bool)
	for _, c := range g.TopoOps() {
		ins := g.opInputs[c]
		t := g.OpType(c)
		out := make([]NodeID, 0, len(ins))
		out = append(out, ins...)
		if t.Associative() {
			for _, in := range ins {
				p := g.Producer(in)
				if p == NoNode || !selected[mergeEdge{producer: p, consumer: c}] {
					continue
				}
				if absorbed[p] {
					// Producer already gone (cannot happen: single
					// consumer), but guard anyway.
					continue
				}
				splice := flat[p]
				// Arity bound: replacing one operand with len(splice).
				if len(out)-1+len(splice) > opt.MaxOperands {
					continue
				}
				if t == logic.Xor && wouldDuplicate(out, in, splice) {
					// x XOR x cancels; fusing a duplicate would change
					// semantics under single-activation hardware. Skip.
					continue
				}
				out = removeOne(out, in)
				out = append(out, splice...)
				if t == logic.And || t == logic.Or {
					out = dedup(out)
				}
				absorbed[p] = true
				stats.Applied++
			}
		}
		flat[c] = out
	}

	// Rebuild.
	n2 := New()
	remap := make(map[NodeID]NodeID, len(g.nodes))
	for _, in := range g.inputs {
		remap[in] = n2.AddInput(g.Name(in))
	}
	for id := range g.nodes {
		opID := NodeID(id)
		if g.nodes[id].kind != KindOp || absorbed[opID] {
			continue
		}
		ins := flat[opID]
		mapped := make([]NodeID, len(ins))
		for i, in := range ins {
			m, ok := remap[in]
			if !ok {
				panic(fmt.Sprintf("dfg: substitution lost operand %q", g.Name(in)))
			}
			mapped[i] = m
		}
		oldOut := g.opOutput[opID]
		var newOut NodeID
		if len(mapped) == 1 && !g.nodes[id].op.IsUnary() {
			// Dedup collapsed a binary op to a single distinct operand
			// (e.g. AND(x,x)); emit a copy to preserve the operand.
			newOut = n2.AddOpNamed(logic.Copy, g.Name(oldOut), mapped[0])
		} else {
			newOut = n2.AddOpNamed(g.nodes[id].op, g.Name(oldOut), mapped...)
		}
		remap[oldOut] = newOut
		if len(mapped) > stats.MaxArity {
			stats.MaxArity = len(mapped)
		}
	}
	for _, out := range g.outputs {
		m, ok := remap[out]
		if !ok {
			panic(fmt.Sprintf("dfg: substitution lost output %q", g.Name(out)))
		}
		n2.MarkOutputNamed(m, g.outputAlias[out])
	}
	stats.OpsAfter = len(n2.opInputs)
	return n2, stats
}

func wouldDuplicate(current []NodeID, removed NodeID, splice []NodeID) bool {
	seen := make(map[NodeID]bool, len(current)+len(splice))
	for _, id := range current {
		if id != removed {
			seen[id] = true
		}
	}
	for _, id := range splice {
		if seen[id] {
			return true
		}
		seen[id] = true
	}
	return false
}

func removeOne(list []NodeID, id NodeID) []NodeID {
	out := make([]NodeID, 0, len(list)-1)
	removed := false
	for _, x := range list {
		if x == id && !removed {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}

func dedup(list []NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(list))
	out := list[:0]
	for _, x := range list {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// NANDLowerStats reports the effect of LowerToNAND.
type NANDLowerStats struct {
	OpsBefore int
	OpsAfter  int
	NotsAdded int
}

// LowerToNAND rewrites OR/NOR/XOR/XNOR operations into NAND/AND/NOT form.
// On STT-MRAM the sensing margins of OR- and XOR-type scouting reads are
// poor (Sec. 4.2, Fig. 6b); AND/NAND-type reads keep the wide margin, and
// NOT is a free row-buffer operation. Multi-operand ORs keep their arity
// (OR(k) -> NAND over k inverted operands); multi-operand XORs are expanded
// to binary trees before lowering.
func LowerToNAND(g *Graph) (*Graph, NANDLowerStats) {
	stats := NANDLowerStats{OpsBefore: len(g.opInputs)}
	b := NewBuilder()
	remap := make(map[NodeID]Val, len(g.nodes))
	for _, in := range g.inputs {
		remap[in] = b.Input(g.Name(in))
	}
	xor2 := func(x, y Val) Val {
		return b.Nand(b.Nand(x, b.Not(y)), b.Nand(b.Not(x), y))
	}
	for id := range g.nodes {
		opID := NodeID(id)
		if g.nodes[id].kind != KindOp {
			continue
		}
		ins := make([]Val, len(g.opInputs[opID]))
		for i, in := range g.opInputs[opID] {
			v, ok := remap[in]
			if !ok {
				panic(fmt.Sprintf("dfg: lowering lost operand %q", g.Name(in)))
			}
			ins[i] = v
		}
		var out Val
		switch t := g.nodes[id].op; t {
		case logic.And, logic.Nand:
			out = b.OpN(t, ins...)
		case logic.Not, logic.Copy:
			if t == logic.Not {
				out = b.Not(ins[0])
			} else {
				out = b.Copy(ins[0])
			}
		case logic.Or:
			out = b.OpN(logic.Nand, b.notAll(ins)...)
		case logic.Nor:
			out = b.OpN(logic.And, b.notAll(ins)...)
		case logic.Xor, logic.Xnor:
			acc := ins[0]
			for _, v := range ins[1:] {
				acc = xor2(acc, v)
			}
			if t == logic.Xnor {
				acc = b.Not(acc)
			}
			out = acc
		default:
			panic(fmt.Sprintf("dfg: lowering unknown op %v", t))
		}
		remap[g.opOutput[opID]] = out
	}
	for _, o := range g.outputs {
		v, ok := remap[o]
		if !ok {
			panic(fmt.Sprintf("dfg: lowering lost output %q", g.Name(o)))
		}
		name := g.OutputName(o)
		if v.isConst {
			panic(fmt.Sprintf("dfg: lowering folded output %q to a constant", name))
		}
		b.g.MarkOutputNamed(v.id, name)
	}
	out := b.Graph()
	stats.OpsAfter = len(out.opInputs)
	for _, op := range out.OpNodes() {
		if out.OpType(op) == logic.Not {
			stats.NotsAdded++
		}
	}
	return out, stats
}

func (b *Builder) notAll(vs []Val) []Val {
	out := make([]Val, len(vs))
	for i, v := range vs {
		out[i] = b.Not(v)
	}
	return out
}

// OpN emits a single (possibly multi-operand) node of the given type. For
// And/Or-family ops duplicate operands are removed; a node collapsing to a
// single operand degenerates to Copy (or Not for inverting types).
func (b *Builder) OpN(op logic.Op, vs ...Val) Val {
	if op.IsUnary() {
		if len(vs) != 1 {
			panic(fmt.Sprintf("dfg: OpN %v with %d operands", op, len(vs)))
		}
		if op == logic.Not {
			return b.Not(vs[0])
		}
		return b.Copy(vs[0])
	}
	ids := make([]NodeID, 0, len(vs))
	seen := make(map[NodeID]bool, len(vs))
	for _, v := range vs {
		if v.isConst {
			panic("dfg: OpN over constant value")
		}
		switch op {
		case logic.And, logic.Nand, logic.Or, logic.Nor:
			if seen[v.id] {
				continue
			}
		}
		seen[v.id] = true
		ids = append(ids, v.id)
	}
	if len(ids) == 1 {
		v := Val{id: ids[0]}
		switch op {
		case logic.Nand, logic.Nor, logic.Xnor:
			return b.Not(v)
		default:
			return v
		}
	}
	if len(ids) == 2 {
		// Route binary nodes through the folding/CSE path.
		a, y := Val{id: ids[0]}, Val{id: ids[1]}
		switch op {
		case logic.And:
			return b.And(a, y)
		case logic.Or:
			return b.Or(a, y)
		case logic.Xor:
			return b.Xor(a, y)
		case logic.Nand:
			return b.Nand(a, y)
		case logic.Nor:
			return b.Nor(a, y)
		case logic.Xnor:
			return b.Xnor(a, y)
		}
	}
	return Val{id: b.g.AddOp(op, ids...)}
}
