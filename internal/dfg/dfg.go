// Package dfg implements the data-flow graph at the heart of Sherlock.
//
// The DFG is a bipartite DAG (paper Fig. 3b): operand nodes carry values
// (kernel inputs, intermediates, outputs) and op nodes carry logic
// operations. Op nodes have unit weight, operand nodes zero weight; the
// b-level of an op node (its longest path to a sink, Kwok & Ahmad) is the
// scheduling priority used by both mapping algorithms.
package dfg

import (
	"fmt"
	"sort"
	"sync"

	"sherlock/internal/logic"
	"sherlock/internal/readyq"
)

// NodeID identifies a node within one Graph.
type NodeID int

// NoNode is the null NodeID.
const NoNode NodeID = -1

// Kind distinguishes the two node classes of the bipartite DAG.
type Kind uint8

// Node kinds.
const (
	KindOperand Kind = iota + 1
	KindOp
)

func (k Kind) String() string {
	switch k {
	case KindOperand:
		return "operand"
	case KindOp:
		return "op"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

type node struct {
	kind Kind
	op   logic.Op // KindOp only
	name string   // operand name, or a synthesized op label
}

// Graph is a bulk-bitwise data-flow graph. Construct with New and the Add*
// methods; graphs are acyclic by construction (ops may only consume operands
// that already exist).
type Graph struct {
	nodes []node

	// Op node relations.
	opInputs map[NodeID][]NodeID // op -> ordered input operands
	opOutput map[NodeID]NodeID   // op -> result operand

	// Operand relations.
	producer  map[NodeID]NodeID   // operand -> op producing it (absent if input)
	consumers map[NodeID][]NodeID // operand -> ops consuming it

	inputs  []NodeID // operands with no producer, in creation order
	outputs []NodeID // operands marked as kernel outputs, in mark order

	byName      map[string]NodeID // operand name -> id
	outputAlias map[NodeID]string // output operand -> user-facing name

	// Scheduling-order cache: b-levels and the priority order are needed
	// several times per compile (clustering, code generation) but only
	// change when nodes are added. Guarded by mu so concurrent campaign
	// workers can share one graph.
	mu          sync.Mutex
	blCache     []int32  // b-level per node (op entries only), nil when stale
	maxBL       int32    // maximum b-level, valid when blCache is
	prioCache   []NodeID // ops in ready-release priority order, nil when stale
	sortedCache []NodeID // legacy pre-sorted order, built on demand
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		opInputs:    make(map[NodeID][]NodeID),
		opOutput:    make(map[NodeID]NodeID),
		producer:    make(map[NodeID]NodeID),
		consumers:   make(map[NodeID][]NodeID),
		byName:      make(map[string]NodeID),
		outputAlias: make(map[NodeID]string),
	}
}

func (g *Graph) addNode(n node) NodeID {
	g.mu.Lock()
	g.blCache, g.prioCache, g.sortedCache = nil, nil, nil
	g.mu.Unlock()
	g.nodes = append(g.nodes, n)
	return NodeID(len(g.nodes) - 1)
}

// AddInput creates a kernel-input operand with the given unique name.
func (g *Graph) AddInput(name string) NodeID {
	id := g.addOperand(name)
	g.inputs = append(g.inputs, id)
	return id
}

func (g *Graph) addOperand(name string) NodeID {
	if name == "" {
		name = fmt.Sprintf("t%d", len(g.nodes))
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("dfg: duplicate operand name %q", name))
	}
	id := g.addNode(node{kind: KindOperand, name: name})
	g.byName[name] = id
	return id
}

// AddOp creates an op node applying op to the given input operands and a
// fresh operand node holding its result; it returns the result operand's ID.
// Unary ops take exactly one input, sense ops at least two. The inputs must
// be operand IDs of this graph.
func (g *Graph) AddOp(op logic.Op, ins ...NodeID) NodeID {
	return g.AddOpNamed(op, "", ins...)
}

// AddOpNamed is AddOp with an explicit name for the result operand
// (synthesized when empty).
func (g *Graph) AddOpNamed(op logic.Op, resultName string, ins ...NodeID) NodeID {
	if !op.Valid() {
		panic(fmt.Sprintf("dfg: invalid op %v", op))
	}
	if op.IsUnary() {
		if len(ins) != 1 {
			panic(fmt.Sprintf("dfg: %v takes 1 operand, got %d", op, len(ins)))
		}
	} else if len(ins) < 2 {
		panic(fmt.Sprintf("dfg: %v takes >=2 operands, got %d", op, len(ins)))
	}
	for _, in := range ins {
		if !g.isOperand(in) {
			panic(fmt.Sprintf("dfg: op input %d is not an operand of this graph", in))
		}
	}
	opID := g.addNode(node{kind: KindOp, op: op, name: fmt.Sprintf("%s_%d", op, len(g.nodes))})
	g.opInputs[opID] = append([]NodeID(nil), ins...)
	out := g.addOperand(resultName)
	g.opOutput[opID] = out
	g.producer[out] = opID
	for _, in := range ins {
		g.consumers[in] = append(g.consumers[in], opID)
	}
	return out
}

// MarkOutputNamed flags an operand as a kernel output under a user-facing
// alias (used when the computed operand has a synthesized internal name).
func (g *Graph) MarkOutputNamed(id NodeID, alias string) {
	g.MarkOutput(id)
	if alias != "" {
		g.outputAlias[id] = alias
		if _, exists := g.byName[alias]; !exists {
			g.byName[alias] = id
		}
	}
}

// OutputName returns the user-facing name of an output operand: its alias
// if one was given, otherwise its operand name.
func (g *Graph) OutputName(id NodeID) string {
	if a, ok := g.outputAlias[id]; ok {
		return a
	}
	return g.Name(id)
}

// MarkOutput flags an operand as a kernel output. Outputs are reported in
// mark order. Marking the same operand twice is an error.
func (g *Graph) MarkOutput(id NodeID) {
	if !g.isOperand(id) {
		panic(fmt.Sprintf("dfg: MarkOutput of non-operand %d", id))
	}
	for _, o := range g.outputs {
		if o == id {
			panic(fmt.Sprintf("dfg: operand %q already marked output", g.Name(id)))
		}
	}
	g.outputs = append(g.outputs, id)
}

func (g *Graph) isOperand(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes) && g.nodes[id].kind == KindOperand
}

func (g *Graph) isOp(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes) && g.nodes[id].kind == KindOp
}

// NumNodes returns the total node count (operands + ops).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Kind returns the node's kind.
func (g *Graph) Kind(id NodeID) Kind { return g.nodes[id].kind }

// OpType returns the logic operation of an op node.
func (g *Graph) OpType(id NodeID) logic.Op {
	if !g.isOp(id) {
		panic(fmt.Sprintf("dfg: OpType of non-op node %d", id))
	}
	return g.nodes[id].op
}

// Name returns the node's name.
func (g *Graph) Name(id NodeID) string { return g.nodes[id].name }

// OperandByName resolves an operand name, reporting whether it exists.
func (g *Graph) OperandByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Inputs returns the kernel-input operands in creation order (a copy).
func (g *Graph) Inputs() []NodeID { return append([]NodeID(nil), g.inputs...) }

// Outputs returns the operands marked as outputs in mark order (a copy).
func (g *Graph) Outputs() []NodeID { return append([]NodeID(nil), g.outputs...) }

// IsOutput reports whether the operand is a kernel output.
func (g *Graph) IsOutput(id NodeID) bool {
	for _, o := range g.outputs {
		if o == id {
			return true
		}
	}
	return false
}

// NumOps returns the number of op nodes.
func (g *Graph) NumOps() int { return len(g.opInputs) }

// OpNodes returns all op node IDs in creation (and therefore topological)
// order.
func (g *Graph) OpNodes() []NodeID {
	out := make([]NodeID, 0, len(g.opInputs))
	for id := range g.nodes {
		if g.nodes[id].kind == KindOp {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Operands returns all operand node IDs in creation order.
func (g *Graph) Operands() []NodeID {
	out := make([]NodeID, 0, len(g.nodes)-len(g.opInputs))
	for id := range g.nodes {
		if g.nodes[id].kind == KindOperand {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// OpInputs returns the ordered input operands of an op node (a copy).
func (g *Graph) OpInputs(op NodeID) []NodeID {
	if !g.isOp(op) {
		panic(fmt.Sprintf("dfg: OpInputs of non-op node %d", op))
	}
	return append([]NodeID(nil), g.opInputs[op]...)
}

// AppendOpInputs appends the ordered input operands of an op node to buf
// and returns the extended slice — the allocation-free variant of OpInputs
// for hot loops that bring their own buffer.
func (g *Graph) AppendOpInputs(op NodeID, buf []NodeID) []NodeID {
	if !g.isOp(op) {
		panic(fmt.Sprintf("dfg: AppendOpInputs of non-op node %d", op))
	}
	return append(buf, g.opInputs[op]...)
}

// NumOpInputs returns the arity of an op node without copying its inputs.
func (g *Graph) NumOpInputs(op NodeID) int {
	if !g.isOp(op) {
		panic(fmt.Sprintf("dfg: NumOpInputs of non-op node %d", op))
	}
	return len(g.opInputs[op])
}

// OpOutput returns the result operand of an op node.
func (g *Graph) OpOutput(op NodeID) NodeID {
	if !g.isOp(op) {
		panic(fmt.Sprintf("dfg: OpOutput of non-op node %d", op))
	}
	return g.opOutput[op]
}

// Producer returns the op node producing the operand, or NoNode for kernel
// inputs.
func (g *Graph) Producer(operand NodeID) NodeID {
	if !g.isOperand(operand) {
		panic(fmt.Sprintf("dfg: Producer of non-operand node %d", operand))
	}
	if p, ok := g.producer[operand]; ok {
		return p
	}
	return NoNode
}

// Consumers returns the op nodes consuming the operand (a copy).
func (g *Graph) Consumers(operand NodeID) []NodeID {
	if !g.isOperand(operand) {
		panic(fmt.Sprintf("dfg: Consumers of non-operand node %d", operand))
	}
	return append([]NodeID(nil), g.consumers[operand]...)
}

// AppendConsumers appends the op nodes consuming the operand to buf and
// returns the extended slice (the allocation-free variant of Consumers).
func (g *Graph) AppendConsumers(operand NodeID, buf []NodeID) []NodeID {
	if !g.isOperand(operand) {
		panic(fmt.Sprintf("dfg: AppendConsumers of non-operand node %d", operand))
	}
	return append(buf, g.consumers[operand]...)
}

// NumConsumers returns how many op nodes consume the operand without
// copying the consumer list.
func (g *Graph) NumConsumers(operand NodeID) int {
	if !g.isOperand(operand) {
		panic(fmt.Sprintf("dfg: NumConsumers of non-operand node %d", operand))
	}
	return len(g.consumers[operand])
}

// OpPreds returns the distinct op nodes whose outputs feed op, in input
// order.
func (g *Graph) OpPreds(op NodeID) []NodeID {
	var preds []NodeID
	seen := make(map[NodeID]bool)
	for _, in := range g.opInputs[op] {
		if p, ok := g.producer[in]; ok && !seen[p] {
			seen[p] = true
			preds = append(preds, p)
		}
	}
	return preds
}

// AppendOpPreds appends the distinct op nodes whose outputs feed op to buf
// in input order — the allocation-free variant of OpPreds. Deduplication is
// a linear scan of the appended region, which beats a map for the small
// arities real kernels have.
func (g *Graph) AppendOpPreds(op NodeID, buf []NodeID) []NodeID {
	start := len(buf)
	for _, in := range g.opInputs[op] {
		p, ok := g.producer[in]
		if !ok {
			continue
		}
		dup := false
		for _, q := range buf[start:] {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, p)
		}
	}
	return buf
}

// OpSuccs returns the distinct op nodes consuming op's output.
func (g *Graph) OpSuccs(op NodeID) []NodeID {
	out := g.opOutput[op]
	var succs []NodeID
	seen := make(map[NodeID]bool)
	for _, c := range g.consumers[out] {
		if !seen[c] {
			seen[c] = true
			succs = append(succs, c)
		}
	}
	return succs
}

// TopoOps returns op nodes in a valid topological order. Because AddOp only
// references pre-existing operands, creation order is already topological.
func (g *Graph) TopoOps() []NodeID { return g.OpNodes() }

// ensureOrder computes and caches the b-levels and the priority order.
// Callers must hold g.mu. The b-level recurrence maximizes over an op's
// consumers directly (duplicate consumers cannot change a maximum), so no
// per-op successor set is materialized.
//
// The priority order is produced by an event-driven ready-queue traversal
// instead of pre-sorting all nodes: an op is released into a bitmap bucket
// queue (internal/readyq, keyed by descending b-level) the moment its last
// predecessor retires, and retiring the queue head releases its dependents
// in O(1). The pop sequence is still globally non-increasing in b-level —
// when the head has b-level b, every unprocessed op with a higher b-level
// would already be ready and queued ahead of it — but ties within one
// b-level come out in ready-release (wake-up) order rather than by node ID,
// and the O(n log n) sort is gone.
func (g *Graph) ensureOrder() {
	if g.blCache != nil {
		return
	}
	bl := make([]int32, len(g.nodes))
	ops := g.OpNodes()
	maxBL := int32(0)
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		best := int32(0)
		for _, c := range g.consumers[g.opOutput[op]] {
			if bl[c] > best {
				best = bl[c]
			}
		}
		bl[op] = best + 1
		if bl[op] > maxBL {
			maxBL = bl[op]
		}
	}

	order := make([]NodeID, 0, len(ops))
	pending := make([]int32, len(g.nodes))
	q := readyq.Get(len(g.nodes), int(maxBL)+1)
	for _, op := range ops { // creation order seeds the queue deterministically
		n := int32(0)
		for _, in := range g.opInputs[op] {
			if _, ok := g.producer[in]; ok {
				n++
			}
		}
		pending[op] = n
		if n == 0 {
			q.Push(int32(op), maxBL-bl[op])
		}
	}
	for {
		it, _, ok := q.PopMin()
		if !ok {
			break
		}
		op := NodeID(it)
		order = append(order, op)
		for _, c := range g.consumers[g.opOutput[op]] { // retire: wake dependents
			pending[c]--
			if pending[c] == 0 {
				q.Push(int32(c), maxBL-bl[c])
			}
		}
	}
	readyq.Put(q)
	if len(order) != len(ops) {
		panic("dfg: ready traversal did not reach every op (graph not acyclic?)")
	}
	g.blCache, g.maxBL, g.prioCache = bl, maxBL, order
}

// BLevels computes the b-level (longest path to any sink, counting op nodes
// as weight 1) of every op node. The result is cached on the graph; the
// returned map is a fresh copy the caller may mutate.
func (g *Graph) BLevels() map[NodeID]int {
	g.mu.Lock()
	g.ensureOrder()
	bl := g.blCache
	prio := g.prioCache
	g.mu.Unlock()
	out := make(map[NodeID]int, len(prio))
	for _, op := range prio {
		out[op] = int(bl[op])
	}
	return out
}

// BLevelsDense returns the b-levels as a flat slice indexed by NodeID
// (entries for operand nodes are zero). The caller owns the returned copy;
// the mapper indexes it directly in its scoring loop instead of hashing
// NodeIDs.
func (g *Graph) BLevelsDense() []int32 {
	g.mu.Lock()
	g.ensureOrder()
	out := append([]int32(nil), g.blCache...)
	g.mu.Unlock()
	return out
}

// BLevel returns the b-level of one op node from the cached order — the
// allocation-free lookup the mapper's scoring loop uses.
func (g *Graph) BLevel(op NodeID) int {
	if !g.isOp(op) {
		panic(fmt.Sprintf("dfg: BLevel of non-op node %d", op))
	}
	g.mu.Lock()
	g.ensureOrder()
	v := g.blCache[op]
	g.mu.Unlock()
	return int(v)
}

// TLevels computes the t-level (longest path from any source, exclusive of
// the node itself) of every op node.
func (g *Graph) TLevels() map[NodeID]int {
	tl := make(map[NodeID]int)
	for _, op := range g.TopoOps() {
		best := 0
		for _, p := range g.OpPreds(op) {
			if tl[p]+1 > best {
				best = tl[p] + 1
			}
		}
		tl[op] = best
	}
	return tl
}

// OpsByPriority returns op nodes in descending b-level order — the node
// queue nq used by both Algorithm 1 and Algorithm 2. The order comes from
// the event-driven ready-queue traversal (see ensureOrder): b-levels are
// globally non-increasing, and ties within one b-level appear in
// deterministic ready-release order. The order is cached on the graph; the
// returned slice is a fresh copy the caller may mutate.
func (g *Graph) OpsByPriority() []NodeID {
	g.mu.Lock()
	g.ensureOrder()
	out := append([]NodeID(nil), g.prioCache...)
	g.mu.Unlock()
	return out
}

// OpsByPrioritySorted returns the historical node queue: op nodes sorted
// by descending b-level with ties broken by ascending ID. It is retained
// for the legacy level-scheduler path (mapping.Options.LegacyLevelScheduler)
// and the differential tests that pit the ready-queue scheduler against it.
func (g *Graph) OpsByPrioritySorted() []NodeID {
	g.mu.Lock()
	g.ensureOrder()
	if g.sortedCache == nil {
		bl := g.blCache
		ops := g.OpNodes()
		sort.SliceStable(ops, func(i, j int) bool {
			if bl[ops[i]] != bl[ops[j]] {
				return bl[ops[i]] > bl[ops[j]]
			}
			return ops[i] < ops[j]
		})
		g.sortedCache = ops
	}
	out := append([]NodeID(nil), g.sortedCache...)
	g.mu.Unlock()
	return out
}

// CriticalPathLength returns the maximum b-level (0 for an empty graph).
func (g *Graph) CriticalPathLength() int {
	g.mu.Lock()
	g.ensureOrder()
	best := int32(0)
	for _, op := range g.prioCache {
		if g.blCache[op] > best {
			best = g.blCache[op]
		}
	}
	g.mu.Unlock()
	return int(best)
}

// Stats summarizes a graph.
type Stats struct {
	Ops          int
	Operands     int
	Inputs       int
	Outputs      int
	MaxArity     int
	CriticalPath int
	ByOp         map[logic.Op]int
	// OpsWithArityOver2 counts op nodes with more than two operands
	// (multi-row-activation ops, the Fig. 6 x-axis).
	OpsWithArityOver2 int
}

// ComputeStats walks the graph once and summarizes it.
func (g *Graph) ComputeStats() Stats {
	s := Stats{ByOp: make(map[logic.Op]int)}
	for id := range g.nodes {
		switch g.nodes[id].kind {
		case KindOperand:
			s.Operands++
		case KindOp:
			s.Ops++
			s.ByOp[g.nodes[id].op]++
			ar := len(g.opInputs[NodeID(id)])
			if ar > s.MaxArity {
				s.MaxArity = ar
			}
			if ar > 2 {
				s.OpsWithArityOver2++
			}
		}
	}
	s.Inputs = len(g.inputs)
	s.Outputs = len(g.outputs)
	s.CriticalPath = g.CriticalPathLength()
	return s
}

// Validate checks structural invariants. Graphs built through the public
// API always pass; transforms use it as a self-check.
func (g *Graph) Validate() error {
	for id := range g.nodes {
		nid := NodeID(id)
		switch g.nodes[id].kind {
		case KindOp:
			ins := g.opInputs[nid]
			op := g.nodes[id].op
			if op.IsUnary() && len(ins) != 1 {
				return fmt.Errorf("op %d (%v) has %d inputs, want 1", id, op, len(ins))
			}
			if !op.IsUnary() && len(ins) < 2 {
				return fmt.Errorf("op %d (%v) has %d inputs, want >=2", id, op, len(ins))
			}
			for _, in := range ins {
				if !g.isOperand(in) {
					return fmt.Errorf("op %d input %d is not an operand", id, in)
				}
				if in >= nid {
					return fmt.Errorf("op %d consumes operand %d created later (cycle risk)", id, in)
				}
			}
			out, ok := g.opOutput[nid]
			if !ok || !g.isOperand(out) {
				return fmt.Errorf("op %d has no output operand", id)
			}
			if g.producer[out] != nid {
				return fmt.Errorf("op %d output %d producer mismatch", id, out)
			}
		case KindOperand:
			if p, ok := g.producer[nid]; ok {
				if !g.isOp(p) {
					return fmt.Errorf("operand %d producer %d is not an op", id, p)
				}
			}
		default:
			return fmt.Errorf("node %d has invalid kind", id)
		}
	}
	for _, out := range g.outputs {
		if !g.isOperand(out) {
			return fmt.Errorf("output %d is not an operand", out)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nodes = append([]node(nil), g.nodes...)
	for k, v := range g.opInputs {
		c.opInputs[k] = append([]NodeID(nil), v...)
	}
	for k, v := range g.opOutput {
		c.opOutput[k] = v
	}
	for k, v := range g.producer {
		c.producer[k] = v
	}
	for k, v := range g.consumers {
		c.consumers[k] = append([]NodeID(nil), v...)
	}
	c.inputs = append([]NodeID(nil), g.inputs...)
	c.outputs = append([]NodeID(nil), g.outputs...)
	for k, v := range g.byName {
		c.byName[k] = v
	}
	for k, v := range g.outputAlias {
		c.outputAlias[k] = v
	}
	return c
}
