package dfg

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/logic"
)

// xorChain builds out = x0 ^ x1 ^ ... ^ x{n-1} as a linear chain.
func chainGraph(op logic.Op, n int) *Graph {
	g := New()
	acc := g.AddInput("x0")
	for i := 1; i < n; i++ {
		in := g.AddInput(fmt.Sprintf("x%d", i))
		acc = g.AddOp(op, acc, in)
	}
	g.MarkOutputNamed(acc, "out")
	return g
}

func randomAssignments(g *Graph, count int, seed int64) []map[string]bool {
	rng := rand.New(rand.NewSource(seed))
	names := g.InputNames()
	out := make([]map[string]bool, count)
	for i := range out {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = rng.Intn(2) == 1
		}
		out[i] = m
	}
	return out
}

func TestSubstituteFlattensChain(t *testing.T) {
	for _, op := range []logic.Op{logic.And, logic.Or, logic.Xor} {
		g := chainGraph(op, 4) // 3 binary ops
		out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 4, Fraction: 1})
		if err := out.Validate(); err != nil {
			t.Fatalf("%v: invalid: %v", op, err)
		}
		if st.OpsAfter != 1 {
			t.Errorf("%v: ops after = %d, want 1", op, st.OpsAfter)
		}
		if st.MaxArity != 4 {
			t.Errorf("%v: max arity = %d, want 4", op, st.MaxArity)
		}
		if err := EquivalentOn(g, out, randomAssignments(g, 32, 1)); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func TestSubstituteRespectsMaxOperands(t *testing.T) {
	g := chainGraph(logic.Xor, 10) // 9 binary ops
	out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 3, Fraction: 1})
	if st.MaxArity > 3 {
		t.Fatalf("arity %d exceeds bound 3", st.MaxArity)
	}
	for _, op := range out.OpNodes() {
		if len(out.OpInputs(op)) > 3 {
			t.Fatalf("op with %d operands", len(out.OpInputs(op)))
		}
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 64, 2)); err != nil {
		t.Error(err)
	}
}

func TestSubstituteFractionZeroIsIdentity(t *testing.T) {
	g := chainGraph(logic.And, 6)
	out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 8, Fraction: 0})
	if st.Applied != 0 {
		t.Fatalf("applied = %d, want 0", st.Applied)
	}
	if st.OpsAfter != st.OpsBefore {
		t.Fatalf("ops changed with fraction 0: %d -> %d", st.OpsBefore, st.OpsAfter)
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 16, 3)); err != nil {
		t.Error(err)
	}
}

func TestSubstituteFractionMonotone(t *testing.T) {
	g := chainGraph(logic.Xor, 16)
	prevApplied := -1
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		_, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 4, Fraction: f, Seed: 7})
		if st.Applied < prevApplied {
			t.Fatalf("applied decreased from %d at fraction %g", prevApplied, f)
		}
		prevApplied = st.Applied
	}
}

func TestSubstituteDoesNotFuseMultiUse(t *testing.T) {
	// t = a&b is used twice; it must not be fused into either consumer.
	g := New()
	a, b, c := g.AddInput("a"), g.AddInput("b"), g.AddInput("c")
	tv := g.AddOp(logic.And, a, b)
	u := g.AddOp(logic.And, tv, c)
	v := g.AddOp(logic.And, tv, a)
	g.MarkOutputNamed(u, "u")
	g.MarkOutputNamed(v, "v")
	out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 8, Fraction: 1})
	if st.Applied != 0 {
		t.Errorf("fused a multi-use producer (%d applied)", st.Applied)
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 16, 4)); err != nil {
		t.Error(err)
	}
}

func TestSubstituteDoesNotFuseOutputs(t *testing.T) {
	// mid is a kernel output: fusing it away would lose the output.
	g := New()
	a, b, c := g.AddInput("a"), g.AddInput("b"), g.AddInput("c")
	mid := g.AddOp(logic.Or, a, b)
	fin := g.AddOp(logic.Or, mid, c)
	g.MarkOutputNamed(mid, "mid")
	g.MarkOutputNamed(fin, "fin")
	out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 8, Fraction: 1})
	if st.Applied != 0 {
		t.Errorf("fused an output-producing op (%d applied)", st.Applied)
	}
	if got := len(out.Outputs()); got != 2 {
		t.Fatalf("outputs = %d, want 2", got)
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 16, 5)); err != nil {
		t.Error(err)
	}
}

func TestSubstituteMixedTypesNotFused(t *testing.T) {
	g := New()
	a, b, c := g.AddInput("a"), g.AddInput("b"), g.AddInput("c")
	x := g.AddOp(logic.And, a, b)
	y := g.AddOp(logic.Or, x, c) // different type: no fusion
	g.MarkOutputNamed(y, "y")
	_, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 8, Fraction: 1})
	if st.Applied != 0 {
		t.Error("fused ops of different types")
	}
}

func TestSubstituteNandNotFused(t *testing.T) {
	g := chainGraph(logic.Nand, 4)
	out, st := SubstituteNodes(g, SubstituteOptions{MaxOperands: 8, Fraction: 1})
	if st.Applied != 0 {
		t.Error("NAND chain fused — NAND is not associative")
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 16, 6)); err != nil {
		t.Error(err)
	}
}

func TestSubstituteTreeEquivalence(t *testing.T) {
	// A random balanced-ish XOR/AND/OR tree fused at full fraction stays
	// functionally identical.
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder()
	b.DisableCSE = true
	leaves := make([]Val, 16)
	for i := range leaves {
		leaves[i] = b.Input(fmt.Sprintf("in%d", i))
	}
	ops := []func(a, y Val) Val{b.And, b.Or, b.Xor}
	for len(leaves) > 1 {
		f := ops[rng.Intn(len(ops))]
		leaves = append(leaves[2:], f(leaves[0], leaves[1]))
	}
	b.Output("root", leaves[0])
	g := b.Graph()
	out, _ := SubstituteNodes(g, SubstituteOptions{MaxOperands: 4, Fraction: 1})
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := EquivalentOn(g, out, randomAssignments(g, 100, 7)); err != nil {
		t.Error(err)
	}
}

func TestLowerToNANDEquivalence(t *testing.T) {
	// A graph exercising every op type.
	b := NewBuilder()
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("o1", b.Xor(b.Or(x, y), z))
	b.Output("o2", b.Nor(x, z))
	b.Output("o3", b.Xnor(y, z))
	b.Output("o4", b.And(b.Not(x), y))
	g := b.Graph()
	low, st := LowerToNAND(g)
	if err := low.Validate(); err != nil {
		t.Fatalf("lowered invalid: %v", err)
	}
	if st.OpsAfter <= 0 {
		t.Fatal("no ops after lowering")
	}
	for _, op := range low.OpNodes() {
		switch tt := low.OpType(op); tt {
		case logic.And, logic.Nand, logic.Not, logic.Copy:
		default:
			t.Fatalf("op %v survived NAND lowering", tt)
		}
	}
	if err := EquivalentOn(g, low, randomAssignments(g, 64, 8)); err != nil {
		t.Error(err)
	}
}

func TestLowerToNANDPreservesMultiOperandOr(t *testing.T) {
	g := chainGraph(logic.Or, 4)
	fused, _ := SubstituteNodes(g, SubstituteOptions{MaxOperands: 4, Fraction: 1})
	low, _ := LowerToNAND(fused)
	// OR(4) should become one NAND(4) plus NOTs, not a NAND tree.
	var nandArity int
	for _, op := range low.OpNodes() {
		if low.OpType(op) == logic.Nand {
			if n := len(low.OpInputs(op)); n > nandArity {
				nandArity = n
			}
		}
	}
	if nandArity != 4 {
		t.Errorf("max NAND arity = %d, want 4 (multi-operand OR collapsed)", nandArity)
	}
	if err := EquivalentOn(g, low, randomAssignments(g, 32, 9)); err != nil {
		t.Error(err)
	}
}

func TestLowerToNANDMultiXorTree(t *testing.T) {
	g := chainGraph(logic.Xor, 5)
	fused, _ := SubstituteNodes(g, SubstituteOptions{MaxOperands: 5, Fraction: 1})
	low, _ := LowerToNAND(fused)
	if err := EquivalentOn(g, low, randomAssignments(g, 64, 10)); err != nil {
		t.Error(err)
	}
}

func TestOpNDegenerateCases(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	// Duplicate operands collapse for AND-family.
	v := b.OpN(logic.And, x, x, y)
	if p := b.Graph().Producer(v.ID()); p == NoNode || b.Graph().OpType(p) != logic.And {
		t.Fatal("OpN AND with dup did not produce an AND")
	}
	if got := len(b.Graph().OpInputs(b.Graph().Producer(v.ID()))); got != 2 {
		t.Errorf("OpN dedup produced arity %d, want 2", got)
	}
	// All-duplicates NAND degenerates to NOT.
	w := b.OpN(logic.Nand, x, x)
	if p := b.Graph().Producer(w.ID()); b.Graph().OpType(p) != logic.Not {
		t.Error("NAND(x,x) should lower to NOT(x)")
	}
}
