package dfg

import (
	"strings"
	"testing"

	"sherlock/internal/logic"
)

// buildDiamond creates the DFG of out = (a&b) ^ (a|b).
func buildDiamond() (*Graph, NodeID, NodeID) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.AddOp(logic.And, a, b)
	y := g.AddOp(logic.Or, a, b)
	out := g.AddOp(logic.Xor, x, y)
	g.MarkOutputNamed(out, "out")
	return g, a, b
}

func TestGraphBasics(t *testing.T) {
	g, a, b := buildDiamond()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(g.Inputs()); got != 2 {
		t.Fatalf("inputs = %d, want 2", got)
	}
	if got := len(g.Outputs()); got != 1 {
		t.Fatalf("outputs = %d, want 1", got)
	}
	st := g.ComputeStats()
	if st.Ops != 3 || st.Operands != 5 {
		t.Errorf("stats = %+v, want 3 ops 5 operands", st)
	}
	if st.ByOp[logic.And] != 1 || st.ByOp[logic.Or] != 1 || st.ByOp[logic.Xor] != 1 {
		t.Errorf("per-op counts wrong: %v", st.ByOp)
	}
	if len(g.Consumers(a)) != 2 || len(g.Consumers(b)) != 2 {
		t.Error("inputs should each have two consumers")
	}
	if g.Producer(a) != NoNode {
		t.Error("input has a producer")
	}
}

func TestBLevels(t *testing.T) {
	g, _, _ := buildDiamond()
	bl := g.BLevels()
	ops := g.TopoOps()
	// AND and OR feed XOR: b-level 2; XOR is a sink op: b-level 1.
	if bl[ops[0]] != 2 || bl[ops[1]] != 2 || bl[ops[2]] != 1 {
		t.Errorf("b-levels = %v %v %v, want 2 2 1", bl[ops[0]], bl[ops[1]], bl[ops[2]])
	}
	if g.CriticalPathLength() != 2 {
		t.Errorf("critical path = %d, want 2", g.CriticalPathLength())
	}
	tl := g.TLevels()
	if tl[ops[0]] != 0 || tl[ops[2]] != 1 {
		t.Errorf("t-levels wrong: %v", tl)
	}
}

func TestOpsByPriorityOrdering(t *testing.T) {
	g, _, _ := buildDiamond()
	prio := g.OpsByPriority()
	bl := g.BLevels()
	for i := 1; i < len(prio); i++ {
		if bl[prio[i-1]] < bl[prio[i]] {
			t.Fatalf("priority order violated at %d", i)
		}
		if bl[prio[i-1]] == bl[prio[i]] && prio[i-1] >= prio[i] {
			t.Fatalf("tie-break by ID violated at %d", i)
		}
	}
}

func TestChainBLevel(t *testing.T) {
	g := New()
	v := g.AddInput("x")
	w := g.AddInput("y")
	for i := 0; i < 10; i++ {
		v = g.AddOp(logic.And, v, w)
	}
	g.MarkOutput(v)
	if got := g.CriticalPathLength(); got != 10 {
		t.Errorf("chain critical path = %d, want 10", got)
	}
}

func TestEvaluate(t *testing.T) {
	g, _, _ := buildDiamond()
	// (a&b)^(a|b) == a^b
	for _, c := range []struct{ a, b bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		got, err := EvaluateByName(g, map[string]bool{"a": c.a, "b": c.b})
		if err != nil {
			t.Fatal(err)
		}
		if got["out"] != (c.a != c.b) {
			t.Errorf("out(%v,%v) = %v, want %v", c.a, c.b, got["out"], c.a != c.b)
		}
	}
}

func TestEvaluateMissingInput(t *testing.T) {
	g, _, _ := buildDiamond()
	if _, err := EvaluateByName(g, map[string]bool{"a": true}); err == nil {
		t.Fatal("missing input not reported")
	}
}

func TestAddOpArityPanics(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	for _, f := range []func(){
		func() { g.AddOp(logic.And, a) },
		func() { g.AddOp(logic.Not, a, a) },
		func() { g.AddOp(logic.Invalid, a, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	g := New()
	g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate input name accepted")
		}
	}()
	g.AddInput("a")
}

func TestCloneIndependence(t *testing.T) {
	g, a, b := buildDiamond()
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	g.AddOp(logic.Nand, a, b)
	if c.ComputeStats().Ops == g.ComputeStats().Ops {
		t.Error("clone shares op storage with original")
	}
	if got, want := c.OutputNames()[0], "out"; got != want {
		t.Errorf("clone output name %q, want %q", got, want)
	}
}

func TestBuilderConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	tr, fa := b.Const(true), b.Const(false)

	for name, v := range map[string]Val{
		"and_false": b.And(x, fa),
		"or_true":   b.Or(tr, x),
		"xor_self":  b.Xor(x, x),
	} {
		isConst, _ := v.IsConst()
		if !isConst {
			t.Errorf("%s did not fold to a constant", name)
		}
	}
	for name, v := range map[string]Val{
		"and_true":  b.And(x, tr),
		"or_false":  b.Or(fa, x),
		"xor_false": b.Xor(x, fa),
		"and_self":  b.And(x, x),
	} {
		if v != x {
			t.Errorf("%s did not fold to x", name)
		}
	}
	if nx := b.Xor(x, tr); nx.isConst {
		t.Error("x^1 folded to constant, want NOT node")
	}
	if got := b.Not(b.Not(x)); got != x {
		t.Error("double negation not folded")
	}
	if b.Graph().ComputeStats().ByOp[logic.Not] != 1 {
		t.Errorf("expected exactly one NOT node, got %v", b.Graph().ComputeStats().ByOp)
	}
}

func TestBuilderCSE(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	v1 := b.And(x, y)
	v2 := b.And(y, x) // commuted
	if v1 != v2 {
		t.Error("CSE missed commuted AND")
	}
	if b.Graph().ComputeStats().Ops != 1 {
		t.Errorf("ops = %d, want 1", b.Graph().ComputeStats().Ops)
	}

	b2 := NewBuilder()
	b2.DisableCSE = true
	x2, y2 := b2.Input("x"), b2.Input("y")
	b2.And(x2, y2)
	b2.And(x2, y2)
	if b2.Graph().ComputeStats().Ops != 2 {
		t.Error("DisableCSE did not disable hashing")
	}
}

func TestBuilderMux(t *testing.T) {
	b := NewBuilder()
	s, x, y := b.Input("s"), b.Input("x"), b.Input("y")
	b.Output("m", b.Mux(s, x, y))
	g := b.Graph()
	for _, c := range []struct{ s, x, y bool }{
		{true, true, false}, {true, false, true}, {false, true, false}, {false, false, true},
	} {
		got, err := EvaluateByName(g, map[string]bool{"s": c.s, "x": c.x, "y": c.y})
		if err != nil {
			t.Fatal(err)
		}
		want := c.y
		if c.s {
			want = c.x
		}
		if got["m"] != want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", c.s, c.x, c.y, got["m"], want)
		}
	}
}

func TestPruneDead(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	live := b.And(x, y)
	b.Or(x, y) // dead
	b.Output("z", live)
	g := b.Graph()
	pruned := PruneDead(g)
	if err := pruned.Validate(); err != nil {
		t.Fatalf("pruned invalid: %v", err)
	}
	if pruned.ComputeStats().Ops != 1 {
		t.Errorf("pruned ops = %d, want 1", pruned.ComputeStats().Ops)
	}
	if len(pruned.Inputs()) != 2 {
		t.Error("pruning dropped kernel inputs")
	}
	if err := EquivalentOn(g, pruned, allPairs("x", "y")); err != nil {
		t.Errorf("pruned graph not equivalent: %v", err)
	}
}

func allPairs(a, b string) []map[string]bool {
	var out []map[string]bool
	for _, va := range []bool{false, true} {
		for _, vb := range []bool{false, true} {
			out = append(out, map[string]bool{a: va, b: vb})
		}
	}
	return out
}

func TestWriteDOT(t *testing.T) {
	g, _, _ := buildDiamond()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "diamond"); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "XOR", "lightblue", "orange", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestOutputAlias(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("result", b.And(x, y))
	g := b.Graph()
	if got := g.OutputNames()[0]; got != "result" {
		t.Errorf("output name = %q, want result", got)
	}
	if _, ok := g.OperandByName("result"); !ok {
		t.Error("alias not resolvable")
	}
}

func TestOutputCollisionMaterializesCopy(t *testing.T) {
	// CSE folds identical expressions; marking the shared value as two
	// (or three) outputs must materialize distinct operands.
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o1", b.And(x, y))
	b.Output("o2", b.And(y, x))
	b.Output("o3", b.And(x, y))
	g := b.Graph()
	if got := len(g.Outputs()); got != 3 {
		t.Fatalf("outputs = %d, want 3", got)
	}
	seen := map[NodeID]bool{}
	for _, o := range g.Outputs() {
		if seen[o] {
			t.Fatal("two outputs share an operand")
		}
		seen[o] = true
	}
	res, err := EvaluateByName(g, map[string]bool{"x": true, "y": true})
	if err != nil {
		t.Fatal(err)
	}
	if !res["o1"] || !res["o2"] || !res["o3"] {
		t.Error("copied outputs computed wrong values")
	}
}
