package dfg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format in the style of the
// paper's Fig. 3b: operand nodes as orange ellipses, op nodes as blue boxes
// annotated with their b-level in red.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	bl := g.BLevels()
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=TB;\n")
	for id := range g.nodes {
		nid := NodeID(id)
		switch g.nodes[id].kind {
		case KindOperand:
			shape := "ellipse"
			fill := "orange"
			if g.Producer(nid) == NoNode {
				fill = "moccasin"
			}
			label := g.Name(nid)
			if g.IsOutput(nid) {
				label = g.OutputName(nid) + " (out)"
			}
			fmt.Fprintf(&sb, "  n%d [label=%q shape=%s style=filled fillcolor=%s];\n",
				id, label, shape, fill)
		case KindOp:
			fmt.Fprintf(&sb, "  n%d [label=<%s <font color=\"red\">%d</font>> shape=box style=filled fillcolor=lightblue];\n",
				id, g.nodes[id].op, bl[nid])
		}
	}
	for id := range g.nodes {
		nid := NodeID(id)
		if g.nodes[id].kind != KindOp {
			continue
		}
		for _, in := range g.opInputs[nid] {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", in, id)
		}
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", id, g.opOutput[nid])
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
