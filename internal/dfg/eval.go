package dfg

import (
	"fmt"

	"sherlock/internal/bitvec"
)

// Evaluate computes every operand's value given an assignment of all kernel
// inputs. It is the golden functional semantics against which the mapped
// and simulated program is verified.
func Evaluate(g *Graph, inputs map[NodeID]bool) (map[NodeID]bool, error) {
	vals := make(map[NodeID]bool, len(g.nodes))
	for _, in := range g.inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("dfg: missing value for input %q", g.Name(in))
		}
		vals[in] = v
	}
	for _, op := range g.TopoOps() {
		bits := make([]bool, len(g.opInputs[op]))
		for i, in := range g.opInputs[op] {
			v, ok := vals[in]
			if !ok {
				return nil, fmt.Errorf("dfg: operand %q used before defined", g.Name(in))
			}
			bits[i] = v
		}
		vals[g.opOutput[op]] = g.nodes[op].op.Eval(bits...)
	}
	return vals, nil
}

// EvaluateByName is Evaluate with string-keyed inputs and outputs: it takes
// kernel input values by name and returns the kernel outputs by their
// user-facing names.
func EvaluateByName(g *Graph, inputs map[string]bool) (map[string]bool, error) {
	byID := make(map[NodeID]bool, len(inputs))
	for _, in := range g.inputs {
		v, ok := inputs[g.Name(in)]
		if !ok {
			return nil, fmt.Errorf("dfg: missing value for input %q", g.Name(in))
		}
		byID[in] = v
	}
	vals, err := Evaluate(g, byID)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(g.outputs))
	for _, o := range g.outputs {
		out[g.OutputName(o)] = vals[o]
	}
	return out, nil
}

// EvaluateWords runs the kernel over 64 independent lanes at once: bit l of
// every input word is one input assignment, and bit l of each output word is
// that lane's kernel output — the golden model's SWAR form. Lanes the caller
// does not use carry garbage in the inverting ops' outputs; mask the result.
func EvaluateWords(g *Graph, inputs map[string]uint64) (map[string]uint64, error) {
	vals := make(map[NodeID]uint64, len(g.nodes))
	for _, in := range g.inputs {
		v, ok := inputs[g.Name(in)]
		if !ok {
			return nil, fmt.Errorf("dfg: missing value for input %q", g.Name(in))
		}
		vals[in] = v
	}
	words := make([]uint64, 0, 8)
	for _, op := range g.TopoOps() {
		words = words[:0]
		for _, in := range g.opInputs[op] {
			v, ok := vals[in]
			if !ok {
				return nil, fmt.Errorf("dfg: operand %q used before defined", g.Name(in))
			}
			words = append(words, v)
		}
		vals[g.opOutput[op]] = g.nodes[op].op.EvalWords(words...)
	}
	out := make(map[string]uint64, len(g.outputs))
	for _, o := range g.outputs {
		out[g.OutputName(o)] = vals[o]
	}
	return out, nil
}

// WordEvaluator evaluates the kernel's SWAR golden semantics repeatedly
// without per-call allocation: one value word per node in a flat array and
// positional inputs/outputs (Graph.Inputs()/Graph.Outputs() order) replace
// EvaluateWords' name-keyed maps. Monte-Carlo shards evaluate tens of
// thousands of 64-lane groups against one graph; the map churn dominated
// that loop. Not safe for concurrent use — create one per goroutine.
type WordEvaluator struct {
	g       *Graph
	ops     []NodeID
	vals    []uint64 // indexed by NodeID
	out     []uint64 // last Eval's outputs, reused
	scratch []uint64
}

// NewWordEvaluator prepares an evaluator for the graph.
func NewWordEvaluator(g *Graph) *WordEvaluator {
	return &WordEvaluator{
		g:       g,
		ops:     g.TopoOps(),
		vals:    make([]uint64, len(g.nodes)),
		out:     make([]uint64, len(g.outputs)),
		scratch: make([]uint64, 0, 8),
	}
}

// Eval computes all outputs for one 64-lane input block: inputs[i] is the
// word of kernel input i in Graph.Inputs() order, and entry j of the result
// is output j in Graph.Outputs() order. As with EvaluateWords, unused lanes
// carry garbage through inverting ops; mask the result. The returned slice
// is overwritten by the next Eval.
func (ev *WordEvaluator) Eval(inputs []uint64) []uint64 {
	g := ev.g
	if len(inputs) != len(g.inputs) {
		panic(fmt.Sprintf("dfg: %d input words for %d kernel inputs", len(inputs), len(g.inputs)))
	}
	for i, id := range g.inputs {
		ev.vals[id] = inputs[i]
	}
	for _, op := range ev.ops {
		words := ev.scratch[:0]
		for _, in := range g.opInputs[op] {
			words = append(words, ev.vals[in])
		}
		ev.scratch = words[:0]
		ev.vals[g.opOutput[op]] = g.nodes[op].op.EvalWords(words...)
	}
	for j, o := range g.outputs {
		ev.out[j] = ev.vals[o]
	}
	return ev.out
}

// EvaluateVectors runs the kernel over whole bit-vectors at once (the bulk
// dimension): input vectors must share one length, and each output vector's
// bit i is the kernel applied to bit i of every input. Internally it packs
// 64 lanes per word and evaluates one EvaluateWords pass per word.
func EvaluateVectors(g *Graph, inputs map[string]*bitvec.Vector) (map[string]*bitvec.Vector, error) {
	n := -1
	for name, v := range inputs {
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, fmt.Errorf("dfg: input %q length %d != %d", name, v.Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	outs := make(map[string]*bitvec.Vector, len(g.outputs))
	for _, o := range g.outputs {
		outs[g.OutputName(o)] = bitvec.New(n)
	}
	wordIn := make(map[string]uint64, len(inputs))
	for wi := 0; wi*64 < n; wi++ {
		for name, v := range inputs {
			wordIn[name] = v.Word(wi)
		}
		res, err := EvaluateWords(g, wordIn)
		if err != nil {
			return nil, err
		}
		for name, w := range res {
			outs[name].SetWord(wi, w) // SetWord drops bits past the length
		}
	}
	return outs, nil
}

// EquivalentOn checks that two graphs with identical input/output signatures
// agree on the given input assignments; it returns the first disagreement.
func EquivalentOn(a, b *Graph, assignments []map[string]bool) error {
	for i, in := range assignments {
		ra, err := EvaluateByName(a, in)
		if err != nil {
			return fmt.Errorf("graph a, assignment %d: %w", i, err)
		}
		rb, err := EvaluateByName(b, in)
		if err != nil {
			return fmt.Errorf("graph b, assignment %d: %w", i, err)
		}
		if len(ra) != len(rb) {
			return fmt.Errorf("assignment %d: output count %d vs %d", i, len(ra), len(rb))
		}
		for name, va := range ra {
			vb, ok := rb[name]
			if !ok {
				return fmt.Errorf("assignment %d: output %q missing from graph b", i, name)
			}
			if va != vb {
				return fmt.Errorf("assignment %d: output %q differs (%v vs %v)", i, name, va, vb)
			}
		}
	}
	return nil
}
