package dfg

import (
	"testing"

	"sherlock/internal/bitvec"
	"sherlock/internal/logic"
)

func TestEvaluateVectors(t *testing.T) {
	// out = (a & b) ^ c over 70-bit vectors (crosses the word boundary).
	b := NewBuilder()
	a, c, d := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("out", b.Xor(b.And(a, c), d))
	g := b.Graph()

	n := 70
	va, vb, vc := bitvec.New(n), bitvec.New(n), bitvec.New(n)
	for i := 0; i < n; i++ {
		va.Set(i, i%2 == 0)
		vb.Set(i, i%3 == 0)
		vc.Set(i, i%5 == 0)
	}
	outs, err := EvaluateVectors(g, map[string]*bitvec.Vector{"a": va, "b": vb, "c": vc})
	if err != nil {
		t.Fatal(err)
	}
	want := bitvec.Xor(bitvec.And(va, vb), vc)
	if !outs["out"].Equal(want) {
		t.Fatal("vector evaluation diverges from bitvec reference")
	}
}

func TestEvaluateVectorsLengthMismatch(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.And(x, y))
	_, err := EvaluateVectors(b.Graph(), map[string]*bitvec.Vector{
		"x": bitvec.New(4), "y": bitvec.New(5),
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEvaluateVectorsMissingInput(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.Or(x, y))
	_, err := EvaluateVectors(b.Graph(), map[string]*bitvec.Vector{"x": bitvec.New(3)})
	if err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEquivalentOnDetectsDifference(t *testing.T) {
	mk := func(op logic.Op) *Graph {
		g := New()
		a, b := g.AddInput("a"), g.AddInput("b")
		g.MarkOutputNamed(g.AddOp(op, a, b), "o")
		return g
	}
	and, or := mk(logic.And), mk(logic.Or)
	if err := EquivalentOn(and, and.Clone(), allPairs("a", "b")); err != nil {
		t.Errorf("identical graphs reported different: %v", err)
	}
	if err := EquivalentOn(and, or, allPairs("a", "b")); err == nil {
		t.Error("AND vs OR reported equivalent")
	}
	// Output-name mismatch is also a difference.
	g3 := New()
	a, b := g3.AddInput("a"), g3.AddInput("b")
	g3.MarkOutputNamed(g3.AddOp(logic.And, a, b), "different")
	if err := EquivalentOn(and, g3, allPairs("a", "b")); err == nil {
		t.Error("different output names reported equivalent")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _, _ := buildDiamond()
	// Corrupt internals deliberately: producer mismatch.
	ops := g.OpNodes()
	out := g.OpOutput(ops[0])
	g.producer[out] = ops[1]
	if err := g.Validate(); err == nil {
		t.Error("corrupted producer map passed validation")
	}
}

func TestSortedOpCounts(t *testing.T) {
	got := SortedOpCounts(map[logic.Op]int{logic.Xor: 2, logic.And: 1})
	if len(got) != 2 || got[0] != "AND:1" || got[1] != "XOR:2" {
		t.Errorf("SortedOpCounts = %v", got)
	}
}

func TestPruneDeadKeepsAliases(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("keep", b.And(x, y))
	b.Xor(x, y) // dead
	pruned := PruneDead(b.Graph())
	if pruned.OutputNames()[0] != "keep" {
		t.Error("alias lost through pruning")
	}
}

// TestEvaluateWordsMatchesScalar checks the word-parallel evaluator lane
// by lane against the scalar Evaluate path.
func TestEvaluateWordsMatchesScalar(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("p", b.Or(b.Nand(x, y), z))
	b.Output("q", b.Xor(b.Not(x), b.And(y, z)))
	g := b.Graph()

	_, _, _ = x, y, z
	words := map[string]uint64{"x": 0xAAAA5555F0F01234, "y": 0x123456789ABCDEF0, "z": ^uint64(0)}
	got, err := EvaluateWords(g, words)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 64; l++ {
		in := map[string]bool{
			"x": words["x"]>>uint(l)&1 == 1,
			"y": words["y"]>>uint(l)&1 == 1,
			"z": words["z"]>>uint(l)&1 == 1,
		}
		want, err := EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name]>>uint(l)&1 == 1 != w {
				t.Fatalf("lane %d output %s: word path %v, scalar %v",
					l, name, !w, w)
			}
		}
	}
}

func TestEvaluateWordsMissingInput(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.And(x, y))
	if _, err := EvaluateWords(b.Graph(), map[string]uint64{"x": 1}); err == nil {
		t.Fatal("missing input accepted")
	}
}

// TestWordEvaluatorMatchesEvaluateWords pins the allocation-free positional
// evaluator to the map-keyed reference: same graph, same lanes, identical
// output words across repeated reuses of one evaluator.
func TestWordEvaluatorMatchesEvaluateWords(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("p", b.Or(b.Nand(x, y), z))
	b.Output("q", b.Xor(b.Not(x), b.And(y, z)))
	g := b.Graph()

	ev := NewWordEvaluator(g)
	inputs := g.Inputs()
	outputs := g.Outputs()
	in := make([]uint64, len(inputs))
	words := make(map[string]uint64, len(inputs))
	for trial := 0; trial < 20; trial++ {
		for i, id := range inputs {
			w := uint64(trial*1103515245+12345) * (uint64(i)*2654435761 + 1)
			in[i] = w
			words[g.Name(id)] = w
		}
		want, err := EvaluateWords(g, words)
		if err != nil {
			t.Fatal(err)
		}
		got := ev.Eval(in)
		if len(got) != len(outputs) {
			t.Fatalf("trial %d: %d output words for %d outputs", trial, len(got), len(outputs))
		}
		for j, o := range outputs {
			if w := want[g.OutputName(o)]; got[j] != w {
				t.Fatalf("trial %d output %q: positional %#x, map-keyed %#x",
					trial, g.OutputName(o), got[j], w)
			}
		}
	}
}

// TestWordEvaluatorInputCountPanics pins the length check.
func TestWordEvaluatorInputCountPanics(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.And(x, y))
	ev := NewWordEvaluator(b.Graph())
	defer func() {
		if recover() == nil {
			t.Fatal("short input slice accepted")
		}
	}()
	ev.Eval([]uint64{1})
}
