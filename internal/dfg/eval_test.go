package dfg

import (
	"testing"

	"sherlock/internal/bitvec"
	"sherlock/internal/logic"
)

func TestEvaluateVectors(t *testing.T) {
	// out = (a & b) ^ c over 70-bit vectors (crosses the word boundary).
	b := NewBuilder()
	a, c, d := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("out", b.Xor(b.And(a, c), d))
	g := b.Graph()

	n := 70
	va, vb, vc := bitvec.New(n), bitvec.New(n), bitvec.New(n)
	for i := 0; i < n; i++ {
		va.Set(i, i%2 == 0)
		vb.Set(i, i%3 == 0)
		vc.Set(i, i%5 == 0)
	}
	outs, err := EvaluateVectors(g, map[string]*bitvec.Vector{"a": va, "b": vb, "c": vc})
	if err != nil {
		t.Fatal(err)
	}
	want := bitvec.Xor(bitvec.And(va, vb), vc)
	if !outs["out"].Equal(want) {
		t.Fatal("vector evaluation diverges from bitvec reference")
	}
}

func TestEvaluateVectorsLengthMismatch(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.And(x, y))
	_, err := EvaluateVectors(b.Graph(), map[string]*bitvec.Vector{
		"x": bitvec.New(4), "y": bitvec.New(5),
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEvaluateVectorsMissingInput(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("o", b.Or(x, y))
	_, err := EvaluateVectors(b.Graph(), map[string]*bitvec.Vector{"x": bitvec.New(3)})
	if err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEquivalentOnDetectsDifference(t *testing.T) {
	mk := func(op logic.Op) *Graph {
		g := New()
		a, b := g.AddInput("a"), g.AddInput("b")
		g.MarkOutputNamed(g.AddOp(op, a, b), "o")
		return g
	}
	and, or := mk(logic.And), mk(logic.Or)
	if err := EquivalentOn(and, and.Clone(), allPairs("a", "b")); err != nil {
		t.Errorf("identical graphs reported different: %v", err)
	}
	if err := EquivalentOn(and, or, allPairs("a", "b")); err == nil {
		t.Error("AND vs OR reported equivalent")
	}
	// Output-name mismatch is also a difference.
	g3 := New()
	a, b := g3.AddInput("a"), g3.AddInput("b")
	g3.MarkOutputNamed(g3.AddOp(logic.And, a, b), "different")
	if err := EquivalentOn(and, g3, allPairs("a", "b")); err == nil {
		t.Error("different output names reported equivalent")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _, _ := buildDiamond()
	// Corrupt internals deliberately: producer mismatch.
	ops := g.OpNodes()
	out := g.OpOutput(ops[0])
	g.producer[out] = ops[1]
	if err := g.Validate(); err == nil {
		t.Error("corrupted producer map passed validation")
	}
}

func TestSortedOpCounts(t *testing.T) {
	got := SortedOpCounts(map[logic.Op]int{logic.Xor: 2, logic.And: 1})
	if len(got) != 2 || got[0] != "AND:1" || got[1] != "XOR:2" {
		t.Errorf("SortedOpCounts = %v", got)
	}
}

func TestPruneDeadKeepsAliases(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("keep", b.And(x, y))
	b.Xor(x, y) // dead
	pruned := PruneDead(b.Graph())
	if pruned.OutputNames()[0] != "keep" {
		t.Error("alias lost through pruning")
	}
}
