package dfg

import (
	"math/rand"
	"testing"

	"sherlock/internal/logic"
)

// randomDAG builds a random layered graph for order tests.
func randomDAG(seed int64, nInputs, nOps int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	operands := make([]NodeID, 0, nInputs+nOps)
	for i := 0; i < nInputs; i++ {
		operands = append(operands, g.AddInput(""))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Xor}
	for i := 0; i < nOps; i++ {
		a := operands[rng.Intn(len(operands))]
		b := operands[rng.Intn(len(operands))]
		for b == a {
			b = operands[rng.Intn(len(operands))]
		}
		out := g.AddOp(ops[rng.Intn(len(ops))], a, b)
		operands = append(operands, out)
	}
	return g
}

func checkPriorityOrder(t *testing.T, g *Graph, order []NodeID) {
	t.Helper()
	if len(order) != len(g.OpNodes()) {
		t.Fatalf("order has %d ops, graph has %d", len(order), len(g.OpNodes()))
	}
	seen := make(map[NodeID]bool, len(order))
	for i, op := range order {
		for _, p := range g.OpPreds(op) {
			if !seen[p] {
				t.Fatalf("op %d at position %d before predecessor %d", op, i, p)
			}
		}
		seen[op] = true
	}
}

func TestOpsByPriorityIsTopoAndDescending(t *testing.T) {
	g := randomDAG(7, 12, 300)
	order := g.OpsByPriority()
	checkPriorityOrder(t, g, order)
	// The event-driven traversal must still be globally non-increasing in
	// b-level: with retire-on-pop, any unprocessed op with a higher
	// b-level would already be ready and queued ahead.
	for i := 1; i < len(order); i++ {
		if g.BLevel(order[i]) > g.BLevel(order[i-1]) {
			t.Fatalf("b-level increases at position %d: %d after %d",
				i, g.BLevel(order[i]), g.BLevel(order[i-1]))
		}
	}
	// Deterministic across graphs built identically.
	again := randomDAG(7, 12, 300).OpsByPriority()
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("order not deterministic at %d: %d vs %d", i, order[i], again[i])
		}
	}
}

func TestOpsByPrioritySortedMatchesLegacyOrder(t *testing.T) {
	g := randomDAG(11, 8, 200)
	order := g.OpsByPrioritySorted()
	checkPriorityOrder(t, g, order)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if g.BLevel(b) > g.BLevel(a) {
			t.Fatalf("b-level increases at %d", i)
		}
		if g.BLevel(b) == g.BLevel(a) && b < a {
			t.Fatalf("tie at %d not in ascending ID order: %d then %d", i, a, b)
		}
	}
}

func TestReadyWalkerWindows(t *testing.T) {
	g := randomDAG(3, 10, 500)
	for _, window := range []int{1, 7, 64, 1 << 20} {
		w := g.NewReadyWalker()
		var order []NodeID
		for {
			batch := w.Next(window)
			if batch == nil {
				break
			}
			if len(batch) > window {
				t.Fatalf("window %d: batch of %d", window, len(batch))
			}
			order = append(order, batch...)
		}
		w.Close()
		checkPriorityOrder(t, g, order)
		if w.Emitted() != len(order) {
			t.Fatalf("Emitted() = %d, issued %d", w.Emitted(), len(order))
		}
	}
	// Window 1 retire-on-pop degenerates to the cached priority order.
	w := g.NewReadyWalker()
	defer w.Close()
	want := g.OpsByPriority()
	for i := 0; ; i++ {
		batch := w.Next(1)
		if batch == nil {
			if i != len(want) {
				t.Fatalf("walker ended after %d ops, want %d", i, len(want))
			}
			break
		}
		if batch[0] != want[i] {
			t.Fatalf("window-1 order diverges at %d: %d vs %d", i, batch[0], want[i])
		}
	}
}

func TestReadyWalkerNoPredecessorInSameWindow(t *testing.T) {
	g := randomDAG(19, 6, 400)
	w := g.NewReadyWalker()
	defer w.Close()
	for {
		batch := w.Next(64)
		if batch == nil {
			break
		}
		in := make(map[NodeID]bool, len(batch))
		for _, op := range batch {
			in[op] = true
		}
		for _, op := range batch {
			for _, p := range g.OpPreds(op) {
				if in[p] {
					t.Fatalf("op %d and its predecessor %d issued in one window", op, p)
				}
			}
		}
	}
}
