package dfg

import (
	"fmt"
	"sort"

	"sherlock/internal/logic"
)

// Val is a value handle used by Builder: either an operand node or a
// compile-time boolean constant. Constants never enter the graph; the
// builder folds them away.
type Val struct {
	id      NodeID
	isConst bool
	k       bool
}

// IsConst reports whether the value folded to a compile-time constant, and
// its value.
func (v Val) IsConst() (bool, bool) { return v.isConst, v.k }

// ID returns the operand node backing a non-constant value.
func (v Val) ID() NodeID {
	if v.isConst {
		panic("dfg: ID of constant Val")
	}
	return v.id
}

// Builder constructs DFGs from expressions, with constant folding, local
// algebraic simplification, and (optional) common-subexpression
// elimination. It is the programmatic equivalent of the paper's
// pycparser-based front-end and is used by the workload generators.
type Builder struct {
	g   *Graph
	cse map[cseKey]Val
	// DisableCSE turns off structural hashing (useful to stress the
	// mappers with redundant graphs).
	DisableCSE bool
}

type cseKey struct {
	op   logic.Op
	a, b NodeID // b = NoNode for unary
}

// NewBuilder returns a Builder over a fresh graph.
func NewBuilder() *Builder {
	return &Builder{g: New(), cse: make(map[cseKey]Val)}
}

// Graph returns the graph built so far. The builder may continue to be
// used afterwards.
func (b *Builder) Graph() *Graph { return b.g }

// Input declares a named kernel input.
func (b *Builder) Input(name string) Val {
	return Val{id: b.g.AddInput(name)}
}

// Inputs declares n inputs named prefix0..prefix{n-1}.
func (b *Builder) Inputs(prefix string, n int) []Val {
	vs := make([]Val, n)
	for i := range vs {
		vs[i] = b.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return vs
}

// Const returns a compile-time constant value.
func (b *Builder) Const(v bool) Val { return Val{isConst: true, k: v} }

// Output marks v as a kernel output under the given name. Constant outputs
// are materialized through an XNOR/XOR trick is unnecessary here: they are
// rejected, since a bulk-bitwise kernel with a constant output needs no
// computation at all.
func (b *Builder) Output(name string, v Val) {
	if v.isConst {
		panic(fmt.Sprintf("dfg: output %q folded to constant %v", name, v.k))
	}
	if b.g.IsOutput(v.id) {
		// CSE can collapse two outputs onto one operand; each output
		// needs its own cell, so materialize a fresh copy (bypassing the
		// CSE table, which would hand the same copy back).
		v = Val{id: b.g.AddOp(logic.Copy, v.id)}
	}
	b.g.MarkOutputNamed(v.id, name)
}

// Not returns ~a, folding constants and double negation.
func (b *Builder) Not(a Val) Val {
	if a.isConst {
		return b.Const(!a.k)
	}
	// Double negation: if a was produced by a NOT, return its input.
	if p := b.g.Producer(a.id); p != NoNode && b.g.OpType(p) == logic.Not {
		return Val{id: b.g.opInputs[p][0]}
	}
	return b.emit(logic.Not, a)
}

// Copy returns a row-clone of a (rarely needed directly; the mappers insert
// copies themselves).
func (b *Builder) Copy(a Val) Val {
	if a.isConst {
		return a
	}
	return b.emit(logic.Copy, a)
}

// And returns a & y.
func (b *Builder) And(a, y Val) Val {
	if a.isConst {
		if !a.k {
			return b.Const(false)
		}
		return y
	}
	if y.isConst {
		if !y.k {
			return b.Const(false)
		}
		return a
	}
	if a.id == y.id {
		return a
	}
	return b.emit(logic.And, a, y)
}

// Or returns a | y.
func (b *Builder) Or(a, y Val) Val {
	if a.isConst {
		if a.k {
			return b.Const(true)
		}
		return y
	}
	if y.isConst {
		if y.k {
			return b.Const(true)
		}
		return a
	}
	if a.id == y.id {
		return a
	}
	return b.emit(logic.Or, a, y)
}

// Xor returns a ^ y.
func (b *Builder) Xor(a, y Val) Val {
	if a.isConst {
		if a.k {
			return b.Not(y)
		}
		return y
	}
	if y.isConst {
		if y.k {
			return b.Not(a)
		}
		return a
	}
	if a.id == y.id {
		return b.Const(false)
	}
	return b.emit(logic.Xor, a, y)
}

// Nand returns ~(a & y).
func (b *Builder) Nand(a, y Val) Val {
	if a.isConst || y.isConst || a.id == y.id {
		return b.Not(b.And(a, y))
	}
	return b.emit(logic.Nand, a, y)
}

// Nor returns ~(a | y).
func (b *Builder) Nor(a, y Val) Val {
	if a.isConst || y.isConst || a.id == y.id {
		return b.Not(b.Or(a, y))
	}
	return b.emit(logic.Nor, a, y)
}

// Xnor returns ~(a ^ y).
func (b *Builder) Xnor(a, y Val) Val {
	if a.isConst || y.isConst || a.id == y.id {
		return b.Not(b.Xor(a, y))
	}
	return b.emit(logic.Xnor, a, y)
}

// AndN folds And over the values.
func (b *Builder) AndN(vs ...Val) Val { return b.fold(b.And, vs) }

// OrN folds Or over the values.
func (b *Builder) OrN(vs ...Val) Val { return b.fold(b.Or, vs) }

// XorN folds Xor over the values.
func (b *Builder) XorN(vs ...Val) Val { return b.fold(b.Xor, vs) }

// Mux returns sel ? t : f, built from AND/OR/NOT.
func (b *Builder) Mux(sel, t, f Val) Val {
	return b.Or(b.And(sel, t), b.And(b.Not(sel), f))
}

func (b *Builder) fold(f func(a, y Val) Val, vs []Val) Val {
	if len(vs) == 0 {
		panic("dfg: fold over zero values")
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = f(acc, v)
	}
	return acc
}

func (b *Builder) emit(op logic.Op, ins ...Val) Val {
	ids := make([]NodeID, len(ins))
	for i, v := range ins {
		ids[i] = v.id
	}
	key := makeKey(op, ids)
	if !b.DisableCSE {
		if v, ok := b.cse[key]; ok {
			return v
		}
	}
	out := Val{id: b.g.AddOp(op, ids...)}
	if !b.DisableCSE {
		b.cse[key] = out
	}
	return out
}

func makeKey(op logic.Op, ids []NodeID) cseKey {
	if len(ids) == 1 {
		return cseKey{op: op, a: ids[0], b: NoNode}
	}
	a, c := ids[0], ids[1]
	// Commutative binary ops hash order-independently.
	switch op {
	case logic.And, logic.Or, logic.Xor, logic.Nand, logic.Nor, logic.Xnor:
		if a > c {
			a, c = c, a
		}
	}
	return cseKey{op: op, a: a, b: c}
}

// PruneDead returns a copy of g with op nodes whose results are transitively
// unused (not reachable from any kernel output) removed. The relative order
// of surviving nodes is preserved.
func PruneDead(g *Graph) *Graph {
	liveOperand := make(map[NodeID]bool)
	liveOp := make(map[NodeID]bool)
	var stack []NodeID
	for _, out := range g.outputs {
		if !liveOperand[out] {
			liveOperand[out] = true
			stack = append(stack, out)
		}
	}
	for len(stack) > 0 {
		operand := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := g.Producer(operand)
		if p == NoNode || liveOp[p] {
			continue
		}
		liveOp[p] = true
		for _, in := range g.opInputs[p] {
			if !liveOperand[in] {
				liveOperand[in] = true
				stack = append(stack, in)
			}
		}
	}

	n := New()
	remap := make(map[NodeID]NodeID)
	// Recreate inputs first (even unused ones: they are part of the kernel
	// signature), then replay live ops in creation order.
	for _, in := range g.inputs {
		remap[in] = n.AddInput(g.Name(in))
	}
	for id := range g.nodes {
		nid := NodeID(id)
		if g.nodes[id].kind != KindOp || !liveOp[nid] {
			continue
		}
		ins := make([]NodeID, len(g.opInputs[nid]))
		for i, in := range g.opInputs[nid] {
			m, ok := remap[in]
			if !ok {
				panic(fmt.Sprintf("dfg: PruneDead lost operand %d", in))
			}
			ins[i] = m
		}
		out := g.opOutput[nid]
		remap[out] = n.AddOpNamed(g.nodes[id].op, g.Name(out), ins...)
	}
	for _, out := range g.outputs {
		n.MarkOutputNamed(remap[out], g.outputAlias[out])
	}
	return n
}

// InputNames returns the kernel input names in creation order.
func (g *Graph) InputNames() []string {
	names := make([]string, len(g.inputs))
	for i, id := range g.inputs {
		names[i] = g.Name(id)
	}
	return names
}

// OutputNames returns the kernel output names (aliases when present) in
// mark order.
func (g *Graph) OutputNames() []string {
	names := make([]string, len(g.outputs))
	for i, id := range g.outputs {
		names[i] = g.OutputName(id)
	}
	return names
}

// SortedOpCounts renders per-op counts in a stable order, for reports.
func SortedOpCounts(byOp map[logic.Op]int) []string {
	type kv struct {
		op logic.Op
		n  int
	}
	var list []kv
	for op, n := range byOp {
		list = append(list, kv{op, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].op < list[j].op })
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = fmt.Sprintf("%v:%d", e.op, e.n)
	}
	return out
}
