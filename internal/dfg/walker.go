package dfg

import "sherlock/internal/readyq"

// ReadyWalker streams a graph's op nodes in event-driven scheduling order,
// one bounded issue window at a time. Ops sit in a bitmap bucket queue
// (internal/readyq) keyed by descending b-level; an op enters the queue
// when its last predecessor retires. Next returns up to `window` ready ops
// in priority order and retires the previous window first, so an op's
// consumers become eligible no earlier than the window after its own —
// dependence order is preserved by construction, whatever the window size.
//
// A window of 1 degenerates to the pure priority order of OpsByPriority
// (retire-on-pop). Larger windows issue a whole wave of mutually
// independent ops before any wake-ups from that wave are considered, which
// is what lets structurally parallel clusters advance their row allocators
// in lockstep without a global pre-sort.
//
// The walker is single-use and not safe for concurrent use. Close releases
// the pooled queue; it is safe to call once the walk is done or abandoned.
type ReadyWalker struct {
	g       *Graph
	q       *readyq.Queue
	bl      []int32
	maxBL   int32
	pending []int32
	batch   []NodeID
	emitted int
}

// NewReadyWalker returns a walker over g's op nodes. Construction seeds
// the queue with every op whose inputs are all kernel inputs, in creation
// order.
func (g *Graph) NewReadyWalker() *ReadyWalker {
	g.mu.Lock()
	g.ensureOrder()
	bl, maxBL := g.blCache, g.maxBL
	g.mu.Unlock()

	w := &ReadyWalker{
		g:       g,
		bl:      bl,
		maxBL:   maxBL,
		pending: make([]int32, len(g.nodes)),
		q:       readyq.Get(len(g.nodes), int(maxBL)+1),
	}
	for id := range g.nodes {
		if g.nodes[id].kind != KindOp {
			continue
		}
		op := NodeID(id)
		n := int32(0)
		for _, in := range g.opInputs[op] {
			if _, ok := g.producer[in]; ok {
				n++
			}
		}
		w.pending[op] = n
		if n == 0 {
			w.q.Push(int32(op), maxBL-bl[op])
		}
	}
	return w
}

// Next retires the previously returned window and pops up to window ready
// ops in priority order. It returns nil when every op has been issued. The
// returned slice is reused by the next call; consume it before advancing.
func (w *ReadyWalker) Next(window int) []NodeID {
	if window < 1 {
		window = 1
	}
	for _, op := range w.batch { // retire: wake the window's dependents
		for _, c := range w.g.consumers[w.g.opOutput[op]] {
			w.pending[c]--
			if w.pending[c] == 0 {
				w.q.Push(int32(c), w.maxBL-w.bl[c])
			}
		}
	}
	w.batch = w.batch[:0]
	for len(w.batch) < window {
		it, _, ok := w.q.PopMin()
		if !ok {
			break
		}
		w.batch = append(w.batch, NodeID(it))
	}
	w.emitted += len(w.batch)
	if len(w.batch) == 0 {
		return nil
	}
	return w.batch
}

// Emitted returns how many ops have been issued so far.
func (w *ReadyWalker) Emitted() int { return w.emitted }

// Close returns the pooled queue. The walker must not be used afterwards.
func (w *ReadyWalker) Close() {
	if w.q != nil {
		readyq.Put(w.q)
		w.q = nil
	}
}
