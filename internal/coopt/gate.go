package coopt

import (
	"fmt"
	"math/rand"
	"sort"

	"sherlock/internal/dfg"
	"sherlock/internal/mapping"
	"sherlock/internal/verify"
)

// VerifyMapped is the acceptance gate every candidate mapping must clear:
// the emitted program passes the static verifier at zero findings — not
// merely zero errors — against the layout it was scheduled for.
func VerifyMapped(res *mapping.Result, maxRows int) error {
	rep := verify.ProgramOpts(res.Program, res.Layout.Target(), verify.Options{MaxRows: maxRows})
	if rep.Clean() {
		return nil
	}
	return fmt.Errorf("coopt: candidate program has %d verifier finding(s), first: %s",
		len(rep.Findings), rep.Findings[0])
}

// ProveMapped is the static equivalence gate: the candidate's emitted
// program is symbolically executed into an AIG (internal/verify) and every
// readout is discharged against the reference kernel. A fully proven
// report subsumes the dynamic fuzz; a refuted report carries a concrete
// counterexample; outputs that exhaust the proof budget come back
// unproven and the caller falls back to FuzzEquivalence.
func ProveMapped(res *mapping.Result, kernel *dfg.Graph) (*verify.EquivReport, error) {
	outs := res.Graph.Outputs()
	specs := make([]verify.OutputAt, len(outs))
	for i, o := range outs {
		p, err := res.OutputPlace(o)
		if err != nil {
			return nil, err
		}
		specs[i] = verify.OutputAt{Name: res.Graph.OutputName(o), Place: p}
	}
	return verify.EquivalentOpts(res.Program, res.Layout.Target(), kernel, specs, verify.EquivOptions{})
}

// FuzzEquivalence checks that cand computes the same function as ref by
// packed random simulation: the interfaces must agree exactly (same input
// and output name sets) and every output must match on `rounds` random
// 64-lane word vectors. Deterministic for a given seed.
func FuzzEquivalence(ref, cand *dfg.Graph, rounds int, seed int64) error {
	if rounds <= 0 {
		rounds = 8
	}
	refIn, candIn := ref.InputNames(), cand.InputNames()
	if err := sameNameSet("input", refIn, candIn); err != nil {
		return err
	}
	if err := sameNameSet("output", ref.OutputNames(), cand.OutputNames()); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	outNames := ref.OutputNames()
	for round := 0; round < rounds; round++ {
		in := make(map[string]uint64, len(refIn))
		for _, name := range refIn {
			in[name] = rng.Uint64()
		}
		want, err := dfg.EvaluateWords(ref, in)
		if err != nil {
			return fmt.Errorf("coopt: fuzz reference eval: %w", err)
		}
		got, err := dfg.EvaluateWords(cand, in)
		if err != nil {
			return fmt.Errorf("coopt: fuzz candidate eval: %w", err)
		}
		for _, name := range outNames {
			if got[name] != want[name] {
				return fmt.Errorf("coopt: candidate diverges on output %q (round %d): got %016x want %016x",
					name, round, got[name], want[name])
			}
		}
	}
	return nil
}

func sameNameSet(kind string, a, b []string) error {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) != len(bs) {
		return fmt.Errorf("coopt: candidate has %d %ss, reference %d", len(bs), kind, len(as))
	}
	for i := range as {
		if as[i] != bs[i] {
			return fmt.Errorf("coopt: %s set mismatch: %q vs %q", kind, bs[i], as[i])
		}
	}
	return nil
}
