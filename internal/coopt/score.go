package coopt

import (
	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/mapping"
	"sherlock/internal/reliability"
	"sherlock/internal/sim"
)

// Score is a candidate's cost on the real models: command-bus latency and
// energy from the array cost model, decision-failure probability from the
// reliability model.
type Score struct {
	LatencyNS float64
	EnergyPJ  float64
	PDF       float64 // P(≥1 decision failure) over the program
}

// Weights blends the three score components into a single objective,
// expressed as ratios against the baseline so the components' wildly
// different units cancel. Latency dominates by default — the paper's
// Algorithm 2 optimizes kernel latency first.
type Weights struct {
	Latency float64
	Energy  float64
	PDF     float64
}

func (w Weights) withDefaults() Weights {
	if w.Latency == 0 && w.Energy == 0 && w.PDF == 0 {
		return Weights{Latency: 0.85, Energy: 0.10, PDF: 0.05}
	}
	return w
}

// Objective returns the weighted relative cost of s against base; 1.0 means
// exactly the baseline, lower is better. The zero value of Weights scores
// with the defaults.
func (w Weights) Objective(s, base Score) float64 {
	w = w.withDefaults()
	return w.Latency*ratio(s.LatencyNS, base.LatencyNS) +
		w.Energy*ratio(s.EnergyPJ, base.EnergyPJ) +
		w.PDF*ratio(s.PDF, base.PDF)
}

// ratio guards against degenerate baselines: a zero-cost baseline component
// scores 1 (neutral) when matched and 2 (penalized) when exceeded.
func ratio(a, b float64) float64 {
	if b > 0 {
		return a / b
	}
	if a <= 0 {
		return 1
	}
	return 2
}

// ScoreMapped prices a finished mapping with the standard models for the
// given technology and array size — the Score hook the facade and the
// experiment runner both install.
func ScoreMapped(res *mapping.Result, model *arraymodel.CostModel, params device.Params) (Score, error) {
	cost, err := sim.Measure(res.Program, model)
	if err != nil {
		return Score{}, err
	}
	rel, err := reliability.Assess(res.Program, params)
	if err != nil {
		return Score{}, err
	}
	return Score{LatencyNS: cost.LatencyNS, EnergyPJ: cost.EnergyPJ, PDF: rel.PApp}, nil
}
