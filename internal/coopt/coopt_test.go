package coopt_test

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"sherlock/internal/arraymodel"
	"sherlock/internal/coopt"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/symword"
	"sherlock/internal/verify"
)

const (
	testTech = device.STTMRAM
	testSize = 128
)

func testEvaluate(g *dfg.Graph) (*mapping.Result, error) {
	return mapping.Optimized(g, mapping.Options{
		Target: layout.Target{Arrays: 2, Rows: testSize, Cols: testSize},
	})
}

func testConfig() coopt.Config {
	model := arraymodel.New(arraymodel.DefaultConfig(testTech, testSize))
	params := device.ParamsFor(testTech)
	return coopt.Config{
		MaxRows:  params.MaxRows,
		Evaluate: testEvaluate,
		Score: func(m *mapping.Result) (coopt.Score, error) {
			return coopt.ScoreMapped(m, model, params)
		},
	}
}

// absKernel is a small XOR/MUX-heavy kernel (|x| of a two's-complement
// word) — representative of the Sobel gradient datapath.
func absKernel(width int) *dfg.Graph {
	b := dfg.NewBuilder()
	x := symword.Inputs(b, "x", width)
	symword.Outputs(b, "y", symword.Abs(b, x))
	return b.Graph()
}

func TestOptimizeNeverWorseAndVerified(t *testing.T) {
	g := absKernel(8)
	res, err := coopt.Optimize(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped == nil || len(res.Mapped.Program) == 0 {
		t.Fatal("no mapping returned")
	}
	if res.Stats.BestObjective > 1 {
		t.Fatalf("result worse than baseline: objective %.4f", res.Stats.BestObjective)
	}
	if err := coopt.VerifyMapped(res.Mapped, device.ParamsFor(testTech).MaxRows); err != nil {
		t.Fatalf("adopted mapping fails the verify gate: %v", err)
	}
	if err := coopt.FuzzEquivalence(g, res.Graph, 16, 7); err != nil {
		t.Fatalf("adopted graph not equivalent to kernel: %v", err)
	}
	if res.Stats.Improved && res.Stats.BestScore.LatencyNS >= res.Stats.BaselineScore.LatencyNS &&
		res.Stats.BestObjective >= 1 {
		t.Fatal("Improved set but scores do not beat baseline")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	run := func() (*coopt.Result, error) { return coopt.Optimize(absKernel(8), testConfig()) }
	r1, err1 := run()
	r2, err2 := run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Stats.BestObjective != r2.Stats.BestObjective ||
		r1.Stats.AndsAfter != r2.Stats.AndsAfter ||
		len(r1.Mapped.Program) != len(r2.Mapped.Program) {
		t.Fatalf("nondeterministic optimize: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestVerifierGateRejectsCorruptedProgram proves the zero-findings gate has
// teeth: a single corrupted column index in an otherwise valid program must
// be rejected.
func TestVerifierGateRejectsCorruptedProgram(t *testing.T) {
	res, err := testEvaluate(absKernel(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := coopt.VerifyMapped(res, 0); err != nil {
		t.Fatalf("pristine program rejected: %v", err)
	}
	corrupted := *res // shallow copy; program replaced below
	prog := append(isa.Program(nil), res.Program...)
	mutated := false
	for i := range prog {
		if len(prog[i].Cols) > 0 {
			cols := append([]int(nil), prog[i].Cols...)
			cols[len(cols)-1] = testSize + 17 // out of fabric bounds
			prog[i].Cols = cols
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no instruction with columns to corrupt")
	}
	corrupted.Program = prog
	err = coopt.VerifyMapped(&corrupted, 0)
	if err == nil {
		t.Fatal("verify gate accepted a corrupted program")
	}
	if !strings.Contains(err.Error(), "finding") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

// TestOptimizeRejectsCorruptedCandidates corrupts every non-baseline
// mapping the optimizer evaluates; the baseline must win with zero adopted
// candidates.
func TestOptimizeRejectsCorruptedCandidates(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig()
	inner := cfg.Evaluate
	cfg.Evaluate = func(g *dfg.Graph) (*mapping.Result, error) {
		res, err := inner(g)
		if err != nil {
			return nil, err
		}
		if calls.Add(1) == 1 {
			return res, nil // baseline stays pristine
		}
		prog := append(isa.Program(nil), res.Program...)
		for i := range prog {
			if len(prog[i].Cols) > 0 {
				cols := append([]int(nil), prog[i].Cols...)
				cols[len(cols)-1] = testSize + 17
				prog[i].Cols = cols
				break
			}
		}
		res.Program = prog
		return res, nil
	}
	g := absKernel(6)
	res, err := coopt.Optimize(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Improved {
		t.Fatal("optimizer adopted a corrupted candidate")
	}
	if res.Stats.Rejected == 0 {
		t.Fatal("no candidate was rejected despite corruption")
	}
	if res.Graph != g {
		t.Fatal("result graph is not the original kernel")
	}
	if err := coopt.VerifyMapped(res.Mapped, 0); err != nil {
		t.Fatalf("returned baseline mapping does not verify: %v", err)
	}
}

func TestFuzzEquivalenceCatchesMutation(t *testing.T) {
	build := func(xnor bool) *dfg.Graph {
		b := dfg.NewBuilder()
		p, q, r := b.Input("p"), b.Input("q"), b.Input("r")
		v := b.And(p, q)
		if xnor {
			b.Output("o", b.Xnor(v, r))
		} else {
			b.Output("o", b.Xor(v, r))
		}
		return b.Graph()
	}
	if err := coopt.FuzzEquivalence(build(false), build(false), 8, 3); err != nil {
		t.Fatalf("identical graphs reported different: %v", err)
	}
	if err := coopt.FuzzEquivalence(build(false), build(true), 8, 3); err == nil {
		t.Fatal("fuzzer missed an XOR→XNOR mutation")
	}
	// Interface mismatches are rejected before any simulation.
	b := dfg.NewBuilder()
	b.Output("zz", b.And(b.Input("p"), b.Input("q")))
	if err := coopt.FuzzEquivalence(build(false), b.Graph(), 8, 3); err == nil {
		t.Fatal("fuzzer accepted mismatched interfaces")
	}
}

// TestOptimizeStaticallyProves: with the translation-validation gate in
// place, candidates should be discharged by proof, not by fuzzing.
func TestOptimizeStaticallyProves(t *testing.T) {
	res, err := coopt.Optimize(absKernel(8), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Proved == 0 {
		t.Fatalf("no candidate proved statically: %+v", res.Stats)
	}
	if got := res.Stats.Proved + res.Stats.FuzzBackstops; got > res.Stats.Evaluations {
		t.Fatalf("gate counters (%d) exceed evaluations (%d)", got, res.Stats.Evaluations)
	}
}

// TestProveMappedRefutesCorruptedProgram: a single flipped fold op in an
// otherwise valid program must be refuted with a concrete counterexample.
func TestProveMappedRefutesCorruptedProgram(t *testing.T) {
	g := absKernel(4)
	res, err := testEvaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coopt.ProveMapped(res, g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllProven() {
		t.Fatalf("pristine mapping not proven: %v", rep.Err())
	}
	corrupted := *res
	prog := append(isa.Program(nil), res.Program...)
	flipped := false
	for i := range prog {
		if prog[i].IsCIMRead() {
			ops := append([]logic.Op(nil), prog[i].Ops...)
			inv, ok := ops[0].Inverse()
			if !ok {
				continue
			}
			ops[0] = inv
			prog[i].Ops = ops
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no CIM read to corrupt")
	}
	corrupted.Program = prog
	rep, err = coopt.ProveMapped(&corrupted, g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AnyRefuted() {
		t.Fatalf("flipped fold op not refuted: %v", rep.Err())
	}
	var me *verify.MismatchError
	if !errors.As(rep.Err(), &me) {
		t.Fatalf("refutation did not surface a counterexample: %v", rep.Err())
	}
}

// TestOptimizeRaceSmoke is the CI race-detector target: a tiny kernel, two
// iterations, parallel candidate evaluation.
func TestOptimizeRaceSmoke(t *testing.T) {
	cfg := testConfig()
	cfg.Iterations = 2
	cfg.Workers = 4
	if _, err := coopt.Optimize(absKernel(4), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestObjectiveWeights pins the blended-objective arithmetic.
func TestObjectiveWeights(t *testing.T) {
	w := coopt.Weights{Latency: 1}
	base := coopt.Score{LatencyNS: 200, EnergyPJ: 50, PDF: 0.5}
	if got := w.Objective(coopt.Score{LatencyNS: 100, EnergyPJ: 999, PDF: 0.9}, base); got != 0.5 {
		t.Fatalf("latency-only objective = %v, want 0.5", got)
	}
	w = coopt.Weights{Latency: 0.5, Energy: 0.5}
	if got := w.Objective(coopt.Score{LatencyNS: 100, EnergyPJ: 100}, base); got != 1.25 {
		t.Fatalf("blended objective = %v, want 1.25", got)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		s := coopt.Score{LatencyNS: rng.Float64(), EnergyPJ: rng.Float64(), PDF: rng.Float64()}
		if obj := (coopt.Weights{}).Objective(s, s); obj < 0.999 || obj > 1.001 {
			t.Fatalf("self-objective with default weights = %v, want 1", obj)
		}
	}
}
