// Package coopt closes the loop between logic synthesis and crossbar
// scheduling: it lifts a kernel DFG into the AIG substrate, applies a
// portfolio of resynthesis pass sequences (balance, cut rewriting against
// an NPN class library, MFFC refactoring), maps every candidate through the
// real scheduler, and scores it with the array cost model — keeping the
// best mapping found and iterating until the budget or patience runs out.
//
// Every candidate that could be adopted must clear two independent gates
// first: the emitted program verifies at zero findings, and the scheduled
// program is statically PROVEN equivalent to the original kernel by the
// translation validator (internal/verify) — symbolic execution into an AIG
// plus structural/exhaustive equivalence checking. Candidates whose proof
// exhausts its budget fall back to packed random equivalence fuzzing; a
// refutation is a hard rejection. Candidates that fail anything are
// rejections, never errors — the baseline compile is always the floor.
package coopt

import (
	"fmt"
	"sync/atomic"

	"sherlock/internal/aig"
	"sherlock/internal/dfg"
	"sherlock/internal/mapping"
	"sherlock/internal/memo"
	"sherlock/internal/pool"
)

// PassKind names one resynthesis pass in a portfolio sequence.
type PassKind int

const (
	// PassBalance rebuilds AND/XOR chains depth-minimally.
	PassBalance PassKind = iota
	// PassRewrite applies DAG-aware 4-input cut rewriting.
	PassRewrite
	// PassRefactor collapses and resynthesizes maximum fanout-free cones.
	PassRefactor
)

func (p PassKind) String() string {
	switch p {
	case PassBalance:
		return "balance"
	case PassRewrite:
		return "rewrite"
	case PassRefactor:
		return "refactor"
	default:
		return fmt.Sprintf("PassKind(%d)", int(p))
	}
}

// SeqString renders a pass sequence for logs ("rewrite+refactor"; the empty
// sequence — the pure polarity-aware round-trip — prints as "roundtrip").
func SeqString(seq []PassKind) string {
	if len(seq) == 0 {
		return "roundtrip"
	}
	s := ""
	for i, p := range seq {
		if i > 0 {
			s += "+"
		}
		s += p.String()
	}
	return s
}

// DefaultPortfolio is the full candidate generator set. The empty sequence
// is deliberate: lift→lower alone performs polarity-aware operator
// reselection (NOT elimination into NAND/NOR/XNOR), which already moves the
// instruction count.
func DefaultPortfolio() [][]PassKind {
	return [][]PassKind{
		{},
		{PassBalance},
		{PassRewrite},
		{PassRefactor},
		{PassRewrite, PassRefactor},
		{PassRefactor, PassRewrite, PassBalance},
	}
}

// PortfolioBalance is the ablation portfolio: round-trip and balance only.
func PortfolioBalance() [][]PassKind {
	return [][]PassKind{{}, {PassBalance}}
}

// Config parameterizes one optimization run. Evaluate and Score connect the
// optimizer to the caller's real pipeline: Evaluate must apply whatever
// graph transforms precede mapping (MRA substitution, NAND lowering) and
// run the mapper; Score prices a finished mapping.
type Config struct {
	Iterations int // candidate-generation rounds (default 4)
	Patience   int // stop after this many rounds without global improvement (default 2)
	FuzzWords  int // 64-lane random vectors per equivalence fuzz (default 8)
	Seed       int64
	Workers    int // pool fan-out; <=0 selects GOMAXPROCS
	MaxRows    int // verify gate: device row-activation limit (0 = unchecked)

	Weights   Weights
	Portfolio [][]PassKind // nil selects DefaultPortfolio

	Evaluate func(*dfg.Graph) (*mapping.Result, error)
	Score    func(*mapping.Result) (Score, error)
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 4
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.FuzzWords <= 0 {
		c.FuzzWords = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Weights = c.Weights.withDefaults()
	if c.Portfolio == nil {
		c.Portfolio = DefaultPortfolio()
	}
	return c
}

// IterationStats records one candidate-generation round.
type IterationStats struct {
	Iteration     int
	BestSeq       string  // winning portfolio sequence this round
	BestObjective float64 // winner's objective (1.0 = baseline)
	Adopted       bool    // winner improved the global best
	Rejected      int     // candidates rejected this round
}

// Stats summarizes an Optimize run.
type Stats struct {
	Improved      bool
	BaselineScore Score
	BestScore     Score
	BestObjective float64 // weighted objective of the final result vs baseline
	AndsBefore    int     // lifted AIG size of the original kernel
	AndsAfter     int     // AIG size of the adopted candidate (== AndsBefore if none)
	Evaluations   int     // full candidate evaluations (lower+map+verify+prove+score)
	CacheHits     int     // candidates served from the fingerprint memo
	Rejected      int     // candidates rejected by any gate
	Proved        int     // candidates statically proven equivalent (fuzz skipped)
	FuzzBackstops int     // candidates that fell back to dynamic fuzzing (proof budget exhausted)
	Iterations    []IterationStats
}

// Result is the outcome of an Optimize run: the graph that should be
// compiled (the resynthesized kernel, or the original when nothing beat the
// baseline) and its finished mapping.
type Result struct {
	Graph  *dfg.Graph
	Mapped *mapping.Result
	Stats  Stats
}

type evalOut struct {
	graph *dfg.Graph
	res   *mapping.Result
	score Score
}

// Optimize runs the co-optimization loop over kernel g. The baseline —
// g evaluated through the caller's own pipeline — is always the floor: on
// any lift failure or total candidate rejection the baseline mapping is
// returned with Improved == false.
func Optimize(g *dfg.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Evaluate == nil || cfg.Score == nil {
		return nil, fmt.Errorf("coopt: Config.Evaluate and Config.Score are required")
	}

	baseRes, err := cfg.Evaluate(g)
	if err != nil {
		return nil, fmt.Errorf("coopt: baseline evaluation: %w", err)
	}
	baseScore, err := cfg.Score(baseRes)
	if err != nil {
		return nil, fmt.Errorf("coopt: baseline scoring: %w", err)
	}
	res := &Result{
		Graph:  g,
		Mapped: baseRes,
		Stats: Stats{
			BaselineScore: baseScore,
			BestScore:     baseScore,
			BestObjective: 1,
		},
	}

	orig, err := aig.LiftDFG(g)
	if err != nil {
		// Kernel uses ops outside the AIG substrate: baseline stands.
		res.Stats.Rejected++
		return res, nil
	}
	res.Stats.AndsBefore = orig.Size()
	res.Stats.AndsAfter = orig.Size()

	cache := memo.New[[32]byte, *evalOut](memo.Config[*evalOut]{MaxEntries: 256})
	var proved, backstops atomic.Int64
	eval := func(c *aig.Cone) (*evalOut, error) {
		return cache.Do(c.Fingerprint(), func() (*evalOut, error) {
			lowered, err := c.Lower()
			if err != nil {
				return nil, err
			}
			mapped, err := cfg.Evaluate(lowered)
			if err != nil {
				return nil, err
			}
			if err := VerifyMapped(mapped, cfg.MaxRows); err != nil {
				return nil, err
			}
			// Translation validation against the ORIGINAL kernel: a full
			// proof covers the resynthesis, the caller's graph transforms,
			// and the scheduler in one pass and subsumes the fuzz. A
			// refutation (or a malformed readout interface) rejects the
			// candidate outright; only a budget-exhausted proof falls back
			// to dynamic fuzzing of the lowered DFG.
			rep, perr := ProveMapped(mapped, g)
			switch {
			case perr != nil:
				return nil, perr
			case rep.AllProven():
				proved.Add(1)
			case rep.AnyRefuted():
				return nil, rep.Err()
			default:
				backstops.Add(1)
				if err := FuzzEquivalence(g, lowered, cfg.FuzzWords, cfg.Seed); err != nil {
					return nil, err
				}
			}
			score, err := cfg.Score(mapped)
			if err != nil {
				return nil, err
			}
			return &evalOut{graph: lowered, res: mapped, score: score}, nil
		})
	}

	var (
		bestOut  *evalOut  // nil while the baseline still leads
		bestCone *aig.Cone // cone of the global best candidate
		bestObj  = 1.0
		cur      = orig
		stalls   = 0
	)
	for it := 1; it <= cfg.Iterations && stalls < cfg.Patience; it++ {
		seqs := cfg.Portfolio
		cones := make([]*aig.Cone, len(seqs))
		outs := make([]*evalOut, len(seqs))
		errs := make([]error, len(seqs))
		_ = pool.Run(cfg.Workers, len(seqs), func(i int) error {
			cones[i] = applyPasses(cur, seqs[i])
			outs[i], errs[i] = eval(cones[i])
			return nil
		})

		ist := IterationStats{Iteration: it, BestSeq: "none", BestObjective: 1}
		roundIdx := -1
		roundObj := 0.0
		for i := range outs {
			if errs[i] != nil {
				ist.Rejected++
				continue
			}
			obj := cfg.Weights.Objective(outs[i].score, baseScore)
			if roundIdx < 0 || obj < roundObj {
				roundIdx, roundObj = i, obj
			}
		}
		res.Stats.Rejected += ist.Rejected
		if roundIdx < 0 {
			// Every candidate rejected: nothing to move to, stop searching.
			res.Stats.Iterations = append(res.Stats.Iterations, ist)
			break
		}
		ist.BestSeq = SeqString(seqs[roundIdx])
		ist.BestObjective = roundObj
		if roundObj < bestObj {
			bestObj = roundObj
			bestOut = outs[roundIdx]
			bestCone = cones[roundIdx]
			ist.Adopted = true
			stalls = 0
		} else {
			stalls++
		}
		// Diversify from the round winner even when it did not beat the
		// global best; patience bounds how long that is allowed to wander.
		cur = cones[roundIdx]
		res.Stats.Iterations = append(res.Stats.Iterations, ist)
	}

	st := cache.Stats()
	res.Stats.Evaluations = int(st.Misses)
	res.Stats.CacheHits = int(st.Hits + st.Coalesced)
	res.Stats.Proved = int(proved.Load())
	res.Stats.FuzzBackstops = int(backstops.Load())
	if bestOut != nil {
		res.Graph = bestOut.graph
		res.Mapped = bestOut.res
		res.Stats.Improved = true
		res.Stats.BestScore = bestOut.score
		res.Stats.BestObjective = bestObj
		res.Stats.AndsAfter = bestCone.Size()
	}
	return res, nil
}

func applyPasses(c *aig.Cone, seq []PassKind) *aig.Cone {
	for _, p := range seq {
		switch p {
		case PassBalance:
			g, outs := aig.Balance(c.G, c.Outs)
			c = c.WithNet(g, outs)
		case PassRewrite:
			g, outs, _ := aig.Rewrite(c.G, c.Outs)
			c = c.WithNet(g, outs)
		case PassRefactor:
			g, outs, _ := aig.Refactor(c.G, c.Outs)
			c = c.WithNet(g, outs)
		}
	}
	return c
}
