package aig

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
)

func TestAndFolding(t *testing.T) {
	g := New(2)
	a, b := g.Input(0), g.Input(1)
	if g.And(a, Const0) != Const0 {
		t.Error("AND with 0")
	}
	if g.And(Const1, b) != b {
		t.Error("AND with 1")
	}
	if g.And(a, a) != a {
		t.Error("idempotence")
	}
	if g.And(a, a.Not()) != Const0 {
		t.Error("complement annihilation")
	}
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Error("structural hashing missed commuted AND")
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
}

func TestEvalBasicGates(t *testing.T) {
	g := New(2)
	a, b := g.Input(0), g.Input(1)
	and, or, xor := g.And(a, b), g.Or(a, b), g.Xor(a, b)
	for i := 0; i < 4; i++ {
		va, vb := i&1 == 1, i&2 == 2
		in := []bool{va, vb}
		if g.Eval(and, in) != (va && vb) {
			t.Errorf("AND(%v,%v)", va, vb)
		}
		if g.Eval(or, in) != (va || vb) {
			t.Errorf("OR(%v,%v)", va, vb)
		}
		if g.Eval(xor, in) != (va != vb) {
			t.Errorf("XOR(%v,%v)", va, vb)
		}
	}
}

func TestMuxCases(t *testing.T) {
	g := New(3)
	s, a, b := g.Input(0), g.Input(1), g.Input(2)
	cases := []struct {
		hi, lo Lit
	}{
		{a, b}, {a, a}, {Const1, Const0}, {Const0, Const1},
		{a, Const0}, {Const0, a}, {a, Const1}, {Const1, a},
	}
	for ci, c := range cases {
		m := g.Mux(s, c.hi, c.lo)
		for i := 0; i < 8; i++ {
			in := []bool{i&1 == 1, i&2 == 2, i&4 == 4}
			want := g.Eval(c.lo, in)
			if in[0] {
				want = g.Eval(c.hi, in)
			}
			if g.Eval(m, in) != want {
				t.Errorf("case %d assignment %d wrong", ci, i)
			}
		}
	}
}

func TestTTBasics(t *testing.T) {
	tt := NewTT(3)
	tt.Set(5, true)
	if !tt.Get(5) || tt.Get(4) {
		t.Error("Set/Get wrong")
	}
	if c, _ := tt.isConst(); c {
		t.Error("non-constant table reported constant")
	}
	zero := NewTT(3)
	if c, v := zero.isConst(); !c || v {
		t.Error("zero table not detected")
	}
	ones := TTFromFunc(3, func(uint) bool { return true })
	if c, v := ones.isConst(); !c || !v {
		t.Error("ones table not detected")
	}
	// Large (8-var) tables span multiple words.
	big := TTFromFunc(8, func(i uint) bool { return i == 255 })
	if !big.Get(255) || big.Get(0) {
		t.Error("8-var table wrong")
	}
	if c, _ := big.isConst(); c {
		t.Error("8-var one-hot table reported constant")
	}
}

func TestSynthesizeSingleVariable(t *testing.T) {
	g := New(1)
	ident := TTFromFunc(1, func(i uint) bool { return i == 1 })
	if got := g.Synthesize(ident); got != g.Input(0) {
		t.Errorf("identity synthesized to %v", got)
	}
	inv := TTFromFunc(1, func(i uint) bool { return i == 0 })
	if got := g.Synthesize(inv); got != g.Input(0).Not() {
		t.Errorf("inverter synthesized to %v", got)
	}
	if g.NumAnds() != 0 {
		t.Errorf("trivial functions created %d ANDs", g.NumAnds())
	}
}

func TestSynthesizeRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 5, 6, 8} {
		for trial := 0; trial < 4; trial++ {
			tt := TTFromFunc(n, func(uint) bool { return rng.Intn(2) == 1 })
			g := New(n)
			out := g.Synthesize(tt)
			for i := uint(0); i < 1<<uint(n); i++ {
				in := make([]bool, n)
				for v := 0; v < n; v++ {
					in[v] = i>>uint(v)&1 == 1
				}
				if g.Eval(out, in) != tt.Get(i) {
					t.Fatalf("n=%d trial=%d: mismatch at assignment %d", n, trial, i)
				}
			}
		}
	}
}

func TestSynthesizeSharesAcrossOutputs(t *testing.T) {
	// Synthesizing the same table twice must not grow the graph.
	tt := TTFromFunc(4, func(i uint) bool { return i%3 == 0 })
	g := New(4)
	a := g.Synthesize(tt)
	size := g.NumAnds()
	b := g.Synthesize(tt)
	if a != b || g.NumAnds() != size {
		t.Error("memoization failed")
	}
}

func TestEmitMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tt := TTFromFunc(5, func(uint) bool { return rng.Intn(2) == 1 })
	g := New(5)
	out := g.Synthesize(tt)

	b := dfg.NewBuilder()
	ins := make([]dfg.Val, 5)
	for i := range ins {
		ins[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	v := g.Emit(b, ins, out)
	if c, _ := v.IsConst(); c {
		t.Fatal("non-constant function emitted as constant")
	}
	b.Output("f", v)
	graph := b.Graph()

	for i := uint(0); i < 32; i++ {
		in := make(map[string]bool, 5)
		bits := make([]bool, 5)
		for vbit := 0; vbit < 5; vbit++ {
			bits[vbit] = i>>uint(vbit)&1 == 1
			in[fmt.Sprintf("x%d", vbit)] = bits[vbit]
		}
		res, err := dfg.EvaluateByName(graph, in)
		if err != nil {
			t.Fatal(err)
		}
		if res["f"] != g.Eval(out, bits) {
			t.Fatalf("DFG emission diverges at %d", i)
		}
	}
}

func TestEmitAllSharesThroughCSE(t *testing.T) {
	// Two outputs with a large shared cone should produce fewer DFG ops
	// than the sum of their separate emissions.
	g := New(6)
	var f1, f2 Lit
	{
		rng := rand.New(rand.NewSource(17))
		shared := TTFromFunc(6, func(uint) bool { return rng.Intn(2) == 1 })
		base := g.Synthesize(shared)
		f1 = g.And(base, g.Input(0))
		f2 = g.And(base, g.Input(1))
	}
	b := dfg.NewBuilder()
	ins := make([]dfg.Val, 6)
	for i := range ins {
		ins[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	outs := g.EmitAll(b, ins, []Lit{f1, f2})
	b.Output("a", outs[0])
	b.Output("c", outs[1])
	total := b.Graph().ComputeStats().Ops
	// The shared cone must be emitted once: total ops ~ cone + 2, not
	// 2*cone. Loose bound: less than 1.5x the single-output size.
	single := func() int {
		b2 := dfg.NewBuilder()
		ins2 := make([]dfg.Val, 6)
		for i := range ins2 {
			ins2[i] = b2.Input(fmt.Sprintf("x%d", i))
		}
		b2.Output("a", g.Emit(b2, ins2, f1))
		return b2.Graph().ComputeStats().Ops
	}()
	if total > single+single/2 {
		t.Errorf("no sharing: total %d vs single %d", total, single)
	}
}

func TestPanics(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.Input(2) },
		func() { g.Eval(Const1, []bool{true}) },
		func() { NewTT(17) },
		func() { g.Synthesize(NewTT(3)) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
