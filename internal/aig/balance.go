package aig

// Balance rebuilds the cones feeding outs with depth-minimal AND and XOR
// trees: maximal single-fanout same-kind chains are flattened into leaf
// lists and recombined greedily, always pairing the two shallowest
// operands (the Huffman construction, optimal for tree depth). Shared
// nodes (fanout > 1) and polarity boundaries stay put, so no logic is
// duplicated. Returns the rebuilt graph and the remapped output literals.
func Balance(g *Graph, outs []Lit) (*Graph, []Lit) {
	ni := analyzeNet(g, outs)
	ng := New(g.nInputs)
	depth := make([]int32, 1+g.nInputs, len(g.nodes))
	// depthOf fills depths lazily for nodes the wrapped constructors (Xor,
	// Or) created behind our back; children always precede parents, so their
	// depths are already recorded when index i is filled.
	depthOf := func(l Lit) int32 {
		for len(depth) < len(ng.nodes) {
			nd := ng.nodes[len(depth)]
			var d int32
			if nd.kind == kindAnd {
				d = 1 + max(depth[nd.a.node()], depth[nd.b.node()])
			}
			depth = append(depth, d)
		}
		return depth[l.node()]
	}

	remap := make([]Lit, len(g.nodes))
	have := make([]bool, len(g.nodes))
	for i := 0; i < g.nInputs; i++ {
		remap[1+i], have[1+i] = ng.Input(i), true
	}
	remap[0], have[0] = Const0, true

	type leaf struct {
		l   Lit // remapped, positive for XOR leaves
		seq int // flattening order, the deterministic tie-break
	}
	combine := func(leaves []leaf, join func(a, b Lit) Lit) Lit {
		for len(leaves) > 1 {
			// Pick the two shallowest (earliest-flattened on ties).
			better := func(i, j int) bool {
				di, dj := depthOf(leaves[i].l), depthOf(leaves[j].l)
				if di != dj {
					return di < dj
				}
				return leaves[i].seq < leaves[j].seq
			}
			lo, hi := 0, 1
			if better(hi, lo) {
				lo, hi = hi, lo
			}
			for i := 2; i < len(leaves); i++ {
				if better(i, lo) {
					lo, hi = i, lo
				} else if better(i, hi) {
					hi = i
				}
			}
			a, b := leaves[lo], leaves[hi]
			if lo > hi {
				lo, hi = hi, lo
			}
			leaves[lo] = leaf{l: join(a.l, b.l), seq: min(a.seq, b.seq)}
			leaves[hi] = leaves[len(leaves)-1]
			leaves = leaves[:len(leaves)-1]
		}
		return leaves[0].l
	}

	var emit func(m uint32) Lit
	emit = func(m uint32) Lit {
		if have[m] {
			return remap[m]
		}
		var out Lit
		if ni.isXor[m] {
			// Flatten the maximal single-fanout XOR chain; complements on
			// absorbed edges fold into one parity bit.
			var leaves []leaf
			parity := false
			var flat func(e Lit)
			flat = func(e Lit) {
				c := e.node()
				if ni.isXor[c] && ni.refs[c] == 1 {
					parity = parity != e.complement()
					flat(ni.xorU[c])
					flat(ni.xorW[c])
					return
				}
				parity = parity != e.complement()
				leaves = append(leaves, leaf{l: emit(c), seq: len(leaves)})
			}
			flat(ni.xorU[m])
			flat(ni.xorW[m])
			out = combine(leaves, ng.Xor)
			if parity {
				out = out.Not()
			}
		} else {
			nd := g.nodes[m]
			var leaves []leaf
			var flat func(e Lit)
			flat = func(e Lit) {
				c := e.node()
				if !e.complement() && g.nodes[c].kind == kindAnd &&
					!ni.isXor[c] && ni.refs[c] == 1 {
					flat(g.nodes[c].a)
					flat(g.nodes[c].b)
					return
				}
				l := emit(c)
				if e.complement() {
					l = l.Not()
				}
				leaves = append(leaves, leaf{l: l, seq: len(leaves)})
			}
			flat(nd.a)
			flat(nd.b)
			out = combine(leaves, ng.And)
		}
		remap[m], have[m] = out, true
		return out
	}
	newOuts := make([]Lit, len(outs))
	for i, o := range outs {
		l := emit(o.node())
		if o.complement() {
			l = l.Not()
		}
		newOuts[i] = l
	}
	return ng, newOuts
}
