package aig

import "sort"

// Canonical n-ary fold constructors. AndN/OrN/XorN sort their operands by
// literal value before folding, so every permutation of the same operand
// multiset builds — and strash-shares — the exact same nodes. This is the
// property the translation validator leans on: the mapper reorders fold
// operands freely (merged scouting reads activate sorted row lists), and as
// long as both the lifted kernel and the symbolically executed program build
// their folds through these constructors, an op-for-op-faithful program
// proves equivalent by pure literal equality, with zero extra nodes.

// AndN returns the conjunction of lits (Const1 for an empty list), built in
// canonical sorted operand order.
func (g *Graph) AndN(lits []Lit) Lit {
	switch len(lits) {
	case 0:
		return Const1
	case 1:
		return lits[0]
	}
	s := append(make([]Lit, 0, len(lits)), lits...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	v := s[0]
	for _, l := range s[1:] {
		v = g.And(v, l)
	}
	return v
}

// OrN returns the disjunction of lits (Const0 for an empty list), built in
// canonical sorted operand order.
func (g *Graph) OrN(lits []Lit) Lit {
	switch len(lits) {
	case 0:
		return Const0
	case 1:
		return lits[0]
	}
	s := make([]Lit, len(lits))
	for i, l := range lits {
		s[i] = l.Not()
	}
	return g.AndN(s).Not()
}

// XorN returns the parity of lits (Const0 for an empty list). Operand
// complements are stripped into an overall parity bit first — x XOR ¬y is
// ¬(x XOR y) — so the fold runs over positive literals only, in canonical
// sorted order.
func (g *Graph) XorN(lits []Lit) Lit {
	parity := false
	s := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.complement() {
			parity = !parity
			l = l.Not()
		}
		if l == Const0 {
			continue // XOR identity
		}
		s = append(s, l)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Adjacent duplicates cancel (x XOR x = 0); fold what survives.
	v := Const0
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			i++
			continue
		}
		v = g.Xor(v, s[i])
	}
	if parity {
		v = v.Not()
	}
	return v
}
