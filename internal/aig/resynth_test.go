package aig

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
)

// randomNet builds a random multi-output AIG over n inputs and returns the
// graph plus output literals. Construction mixes every wrapper (And/Or/Xor/
// Mux) and random complements so folding and strash paths all get exercised.
func randomNet(rng *rand.Rand, n, ops, outs int) (*Graph, []Lit) {
	g := New(n)
	lits := make([]Lit, 0, n+ops)
	for i := 0; i < n; i++ {
		lits = append(lits, g.Input(i))
	}
	pick := func() Lit {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 1 {
			l = l.Not()
		}
		return l
	}
	for i := 0; i < ops; i++ {
		var v Lit
		switch rng.Intn(4) {
		case 0:
			v = g.And(pick(), pick())
		case 1:
			v = g.Or(pick(), pick())
		case 2:
			v = g.Xor(pick(), pick())
		default:
			v = g.Mux(pick(), pick(), pick())
		}
		lits = append(lits, v)
	}
	os := make([]Lit, outs)
	for i := range os {
		os[i] = pick()
	}
	return g, os
}

func evalOuts(g *Graph, outs []Lit, n int, assignment uint) []bool {
	in := make([]bool, n)
	for i := 0; i < n; i++ {
		in[i] = assignment>>i&1 == 1
	}
	res := make([]bool, len(outs))
	for i, o := range outs {
		res[i] = g.Eval(o, in)
	}
	return res
}

// checkEquiv exhaustively compares two nets over all input assignments.
func checkEquiv(t *testing.T, tag string, g1 *Graph, o1 []Lit, g2 *Graph, o2 []Lit, n int) {
	t.Helper()
	for a := uint(0); a < 1<<n; a++ {
		r1 := evalOuts(g1, o1, n, a)
		r2 := evalOuts(g2, o2, n, a)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s: output %d differs at assignment %b: %v vs %v", tag, i, a, r1[i], r2[i])
			}
		}
	}
}

func TestBalanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g, outs := randomNet(rng, 6, 30, 4)
		ng, nouts := Balance(g, outs)
		checkEquiv(t, fmt.Sprintf("trial %d", trial), g, outs, ng, nouts, 6)
	}
}

func TestRewriteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		g, outs := randomNet(rng, 6, 30, 4)
		ng, nouts, _ := Rewrite(g, outs)
		checkEquiv(t, fmt.Sprintf("trial %d", trial), g, outs, ng, nouts, 6)
	}
}

func TestRefactorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g, outs := randomNet(rng, 6, 30, 4)
		ng, nouts, _ := Refactor(g, outs)
		checkEquiv(t, fmt.Sprintf("trial %d", trial), g, outs, ng, nouts, 6)
	}
}

func TestPassesNeverGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		g, outs := randomNet(rng, 6, 40, 4)
		before := ConeSize(g, outs)
		if ng, nouts, _ := Rewrite(g, outs); ConeSize(ng, nouts) > before {
			t.Fatalf("rewrite grew cone: %d -> %d", before, ConeSize(ng, nouts))
		}
		if ng, nouts, _ := Refactor(g, outs); ConeSize(ng, nouts) > before {
			t.Fatalf("refactor grew cone: %d -> %d", before, ConeSize(ng, nouts))
		}
	}
}

func TestNPNCanonicalizeInvariant(t *testing.T) {
	lib := newNPNLibrary()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		f := uint16(rng.Intn(1 << 16))
		e := lib.canonicalize(f)
		// The recorded transform must actually map t to its representative.
		got := npnApply(f, e.tf.perm, e.tf.mask)
		if e.tf.outFlip {
			got = ^got
		}
		if got != e.canon {
			t.Fatalf("transform does not reach representative: f=%04x canon=%04x got=%04x", f, e.canon, got)
		}
		// Class members share a representative: apply a random NPN move.
		perm := perms4[rng.Intn(len(perms4))]
		mask := uint8(rng.Intn(16))
		f2 := npnApply(f, perm, mask)
		if rng.Intn(2) == 1 {
			f2 = ^f2
		}
		if lib.canonicalize(f2).canon != e.canon {
			t.Fatalf("class member %04x of %04x canonicalized differently", f2, f)
		}
	}
}

func TestNPNBuildRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	lib := newNPNLibrary()
	for trial := 0; trial < 300; trial++ {
		f := uint16(rng.Intn(1 << 16))
		g := New(4)
		leaves := []Lit{g.Input(0), g.Input(1), g.Input(2), g.Input(3)}
		out, added := lib.build(g, f, leaves)
		if added != g.NumAnds() {
			t.Fatalf("added=%d but graph has %d ANDs", added, g.NumAnds())
		}
		if got := truthOf(g, out); got != f {
			t.Fatalf("build(%04x) computes %04x", f, got)
		}
	}
	// Seeded classes must beat plain Shannon synthesis: MAJ3 in 4 ANDs.
	g := New(4)
	maj := TTFromFunc(3, func(a uint) bool {
		b0, b1, b2 := a&1, a>>1&1, a>>2&1
		return b0+b1+b2 >= 2
	})
	_ = maj
	var mt uint16
	for a := uint(0); a < 8; a++ {
		if maj.Get(a) {
			mt |= 1 << a
			mt |= 1 << (a + 8) // replicate over unused var 3
		}
	}
	before := g.NumAnds()
	_, _ = lib.build(g, mt, []Lit{g.Input(0), g.Input(1), g.Input(2), g.Input(3)})
	if cost := g.NumAnds() - before; cost > 4 {
		t.Fatalf("MAJ3 instantiation cost %d ANDs, want <= 4", cost)
	}
}

func TestReduceSupport(t *testing.T) {
	// f = x0 AND x2 expressed over a 4-leaf cut: vars 1 and 3 redundant.
	c := &cut{leaves: [4]uint32{10, 11, 12, 13}, n: 4}
	tbl := projTT[0] & projTT[2]
	rt, rl := reduceSupport(tbl, c)
	if len(rl) != 2 || rl[0] != 10 || rl[1] != 12 {
		t.Fatalf("support leaves = %v, want [10 12]", rl)
	}
	if rt != projTT[0]&projTT[1] {
		t.Fatalf("reduced table %04x, want %04x", rt, projTT[0]&projTT[1])
	}
	// Constant function reduces to no leaves.
	if rt, rl := reduceSupport(0xFFFF, c); len(rl) != 0 || rt != 0xFFFF {
		t.Fatalf("const reduce gave %04x %v", rt, rl)
	}
	// Single-variable function, complemented sense.
	if rt, rl := reduceSupport(^projTT[1], c); len(rl) != 1 || rl[0] != 11 || rt != ^projTT[0] {
		t.Fatalf("unary reduce gave %04x %v", rt, rl)
	}
}

func TestFingerprintDeterministicAcrossRebuilds(t *testing.T) {
	build := func() ([32]byte, [32]byte) {
		rng := rand.New(rand.NewSource(31))
		g, outs := randomNet(rng, 6, 30, 4)
		fp := g.Fingerprint(outs)
		ng, nouts, _ := Rewrite(g, outs)
		return fp, ng.Fingerprint(nouts)
	}
	f1, r1 := build()
	f2, r2 := build()
	if f1 != f2 || r1 != r2 {
		t.Fatal("fingerprint differs across identical rebuilds")
	}
	if f1 == r1 {
		t.Skip("rewrite was an exact no-op on this net") // fingerprints may legitimately coincide
	}
}

func TestFingerprintIgnoresDeadNodesAndBuildOrder(t *testing.T) {
	// Same function, different construction orders and extra dead logic.
	g1 := New(3)
	x := g1.And(g1.Input(0), g1.Input(1))
	o1 := g1.Or(x, g1.Input(2))
	g2 := New(3)
	g2.And(g2.Input(2), g2.Input(1)) // dead
	y := g2.And(g2.Input(0), g2.Input(1))
	o2 := g2.Or(y, g2.Input(2))
	if g1.Fingerprint([]Lit{o1}) != g2.Fingerprint([]Lit{o2}) {
		t.Fatal("fingerprint depends on dead nodes or construction history")
	}
	// Output order matters (it is part of the interface).
	a, b := g1.Input(0), o1
	if g1.Fingerprint([]Lit{a, b}) == g1.Fingerprint([]Lit{b, a}) {
		t.Fatal("fingerprint ignored output order")
	}
}

func TestMarkRollback(t *testing.T) {
	g := New(3)
	a, b, c := g.Input(0), g.Input(1), g.Input(2)
	keep := g.And(a, b)
	cp := g.mark()
	spec := g.And(keep, c)
	g.And(spec, a.Not())
	g.rollback(cp)
	if g.NumAnds() != 1 {
		t.Fatalf("rollback left %d ANDs, want 1", g.NumAnds())
	}
	// The strash entries of removed nodes must be gone: rebuilding the same
	// structure allocates fresh nodes rather than resurrecting stale ones.
	again := g.And(keep, c)
	if again.node() != uint32(g.mark())-1 {
		t.Fatal("rollback left a stale strash entry")
	}
	// Surviving node untouched.
	if g.And(a, b) != keep {
		t.Fatal("rollback corrupted surviving strash entries")
	}
}

// liftLowerRoundTrip drives a DFG through Lift → passes → Lower and checks
// 64-lane word equivalence against the original on random vectors.
func liftLowerRoundTrip(t *testing.T, g *dfg.Graph, passes func(*Cone) *Cone, seed int64) {
	t.Helper()
	cone, err := LiftDFG(g)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	// A bulk-bitwise kernel may not have constant outputs (the dfg builder
	// rejects them), and resynthesis can prove an output constant that the
	// builder's weaker folding missed. Skip those nets: Lower reporting the
	// constant is the correct behavior, checked separately below.
	nin := len(cone.InputNames)
	for _, o := range cone.Outs {
		var ones int
		for a := uint(0); a < 1<<nin; a++ {
			in := make([]bool, nin)
			for i := 0; i < nin; i++ {
				in[i] = a>>i&1 == 1
			}
			if cone.G.Eval(o, in) {
				ones++
			}
		}
		if ones == 0 || ones == 1<<nin {
			return // genuinely constant output; builder contract excludes it
		}
	}
	cone = passes(cone)
	lowered, err := cone.Lower()
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 8; round++ {
		in := make(map[string]uint64)
		for _, name := range g.InputNames() {
			in[name] = rng.Uint64()
		}
		want, err := dfg.EvaluateWords(g, in)
		if err != nil {
			t.Fatalf("eval original: %v", err)
		}
		got, err := dfg.EvaluateWords(lowered, in)
		if err != nil {
			t.Fatalf("eval lowered: %v", err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("round %d: output %s = %016x, want %016x", round, name, got[name], w)
			}
		}
	}
}

func randomDFG(rng *rand.Rand, n, ops, outs int) *dfg.Graph {
	b := dfg.NewBuilder()
	vals := b.Inputs("x", n)
	pick := func() dfg.Val { return vals[rng.Intn(len(vals))] }
	for i := 0; i < ops; i++ {
		var v dfg.Val
		switch rng.Intn(8) {
		case 0:
			v = b.And(pick(), pick())
		case 1:
			v = b.Or(pick(), pick())
		case 2:
			v = b.Xor(pick(), pick())
		case 3:
			v = b.Nand(pick(), pick())
		case 4:
			v = b.Nor(pick(), pick())
		case 5:
			v = b.Xnor(pick(), pick())
		case 6:
			v = b.Not(pick())
		default:
			v = b.Mux(pick(), pick(), pick())
		}
		if c, _ := v.IsConst(); !c {
			vals = append(vals, v)
		}
	}
	for i := 0; i < outs; i++ {
		b.Output(fmt.Sprintf("y%d", i), vals[len(vals)-1-i])
	}
	return b.Graph()
}

func TestLiftLowerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		g := randomDFG(rng, 8, 40, 5)
		liftLowerRoundTrip(t, g, func(c *Cone) *Cone { return c }, int64(100+trial))
	}
}

func TestLiftLowerThroughPassPipelines(t *testing.T) {
	pipelines := map[string]func(c *Cone) *Cone{
		"balance": func(c *Cone) *Cone {
			ng, outs := Balance(c.G, c.Outs)
			return c.WithNet(ng, outs)
		},
		"rewrite": func(c *Cone) *Cone {
			ng, outs, _ := Rewrite(c.G, c.Outs)
			return c.WithNet(ng, outs)
		},
		"refactor": func(c *Cone) *Cone {
			ng, outs, _ := Refactor(c.G, c.Outs)
			return c.WithNet(ng, outs)
		},
		"all": func(c *Cone) *Cone {
			ng, outs, _ := Rewrite(c.G, c.Outs)
			ng2, outs2, _ := Refactor(ng, outs)
			ng3, outs3 := Balance(ng2, outs2)
			return c.WithNet(ng3, outs3)
		},
	}
	for name, pipe := range pipelines {
		pipe := pipe
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 15; trial++ {
				g := randomDFG(rng, 8, 40, 5)
				liftLowerRoundTrip(t, g, pipe, int64(200+trial))
			}
		})
	}
}

func TestLowerPolarityAware(t *testing.T) {
	// ¬(a∧b) consumed once must lower to a single NAND, not AND+NOT.
	b := dfg.NewBuilder()
	a, y := b.Input("a"), b.Input("b")
	b.Output("o", b.Nand(a, y))
	cone, err := LiftDFG(b.Graph())
	if err != nil {
		t.Fatal(err)
	}
	lowered, err := cone.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if n := lowered.NumOps(); n != 1 {
		t.Fatalf("NAND round-trip emitted %d ops, want 1", n)
	}
	// XOR of complemented operand folds into XNOR: still exactly one op.
	b2 := dfg.NewBuilder()
	p, q := b2.Input("p"), b2.Input("q")
	b2.Output("o", b2.Xor(b2.Not(p), q))
	cone2, err := LiftDFG(b2.Graph())
	if err != nil {
		t.Fatal(err)
	}
	lowered2, err := cone2.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if n := lowered2.NumOps(); n != 1 {
		t.Fatalf("XOR(¬p,q) round-trip emitted %d ops, want 1 (XNOR)", n)
	}
}
