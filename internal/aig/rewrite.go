package aig

import "sort"

// DAG-aware 4-input cut rewriting (the ABC "rewrite" idea, sized for this
// repo): enumerate small cuts bottom-up, canonicalize each cut function
// into its NPN class, and replace the cut's cone with the class library's
// implementation whenever that saves more AND nodes (the cut's MFFC) than
// it adds after structural hashing. Candidate implementations are built
// speculatively and rolled back when rejected, so losing trials leave no
// residue in the new graph.

const (
	cutsPerNode  = 6 // enumeration cap per node (plus the trivial cut)
	cutMaxLeaves = 4
)

type cut struct {
	leaves [cutMaxLeaves]uint32 // ascending node indices
	n      uint8
}

// add unions more leaves into the sorted set; false if that would exceed
// the leaf cap.
func (c *cut) add(leafSet []uint32) bool {
	for _, l := range leafSet {
		i := 0
		for i < int(c.n) && c.leaves[i] < l {
			i++
		}
		if i < int(c.n) && c.leaves[i] == l {
			continue
		}
		if int(c.n) == cutMaxLeaves {
			return false
		}
		for j := int(c.n); j > i; j-- {
			c.leaves[j] = c.leaves[j-1]
		}
		c.leaves[i] = l
		c.n++
	}
	return true
}

// RewriteStats summarizes one Rewrite pass.
type RewriteStats struct {
	Rewrites   int // accepted cut replacements
	NodesSaved int // sum of (MFFC − added) over accepted replacements
	Classes    int // distinct NPN classes canonicalized
	Learned    int // classes synthesized into the library this pass
}

// Rewrite rebuilds the cones feeding outs, applying the best
// strictly-improving cut replacement at every node (first-found on ties,
// deterministic). Returns the new graph, remapped outputs and pass stats.
func Rewrite(g *Graph, outs []Lit) (*Graph, []Lit, RewriteStats) {
	inCone, refs := rawCone(g, outs)
	ng := New(g.nInputs)
	lib := newNPNLibrary()
	var stats RewriteStats

	n := len(g.nodes)
	first := 1 + g.nInputs
	remap := make([]Lit, n)
	for i := 0; i < g.nInputs; i++ {
		remap[1+i] = ng.Input(i)
	}
	cuts := make([][]cut, n)
	for i := 1; i < first; i++ {
		if inCone[i] {
			cuts[i] = []cut{{leaves: [cutMaxLeaves]uint32{uint32(i)}, n: 1}}
		}
	}

	ttMemo := make(map[uint32]uint16, 32)
	var cutTT func(m uint32, c *cut) uint16
	cutTT = func(m uint32, c *cut) uint16 {
		if t, ok := ttMemo[m]; ok {
			return t
		}
		for i := 0; i < int(c.n); i++ {
			if c.leaves[i] == m {
				ttMemo[m] = projTT[i]
				return projTT[i]
			}
		}
		nd := g.nodes[m]
		ta := cutTT(nd.a.node(), c)
		if nd.a.complement() {
			ta = ^ta
		}
		tb := cutTT(nd.b.node(), c)
		if nd.b.complement() {
			tb = ^tb
		}
		t := ta & tb
		ttMemo[m] = t
		return t
	}

	for m := uint32(first); m < uint32(n); m++ {
		if !inCone[m] {
			continue
		}
		nd := g.nodes[m]
		an, bn := nd.a.node(), nd.b.node()

		// Merge child cuts (every pair whose union stays ≤ 4 leaves).
		var cands []cut
		for _, ca := range cuts[an] {
			for _, cb := range cuts[bn] {
				merged := ca
				if !merged.add(cb.leaves[:cb.n]) {
					continue
				}
				dup := false
				for _, prev := range cands {
					if prev.n == merged.n && prev.leaves == merged.leaves {
						dup = true
						break
					}
				}
				if !dup {
					cands = append(cands, merged)
				}
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].n < cands[j].n })
		if len(cands) > cutsPerNode {
			cands = cands[:cutsPerNode]
		}

		// Try each cut; keep the best strict node-count improvement. Losing
		// speculative builds roll back; a superseded earlier winner merely
		// goes dead (it is outside the final cone).
		bestGain := 0
		var bestLit Lit
		for ci := range cands {
			c := &cands[ci]
			if int(c.n) < 2 {
				continue
			}
			clear(ttMemo)
			t := cutTT(m, c)
			rt, rl := reduceSupport(t, c)
			leafLits := make([]Lit, len(rl))
			for i, leafNode := range rl {
				leafLits[i] = remap[leafNode]
			}
			saved := mffcSize(g, refs, m, c)
			var lit Lit
			var added int
			switch len(rl) {
			case 0:
				lit = ng.Const(rt&1 == 1)
			case 1:
				lit = leafLits[0]
				if rt&1 == 1 { // value 1 at leaf=0 ⇒ function is ¬leaf
					lit = lit.Not()
				}
			default:
				cp := ng.mark()
				lit, added = lib.build(ng, rt, leafLits)
				if saved-added <= bestGain {
					ng.rollback(cp)
					continue
				}
			}
			if gain := saved - added; gain > bestGain {
				bestGain, bestLit = gain, lit
			}
		}
		if bestGain > 0 {
			remap[m] = bestLit
			stats.Rewrites++
			stats.NodesSaved += bestGain
		} else {
			a := remap[an]
			if nd.a.complement() {
				a = a.Not()
			}
			b := remap[bn]
			if nd.b.complement() {
				b = b.Not()
			}
			remap[m] = ng.And(a, b)
		}

		// This node's cut set for parents: survivors plus the trivial cut.
		cuts[m] = append(cands, cut{leaves: [cutMaxLeaves]uint32{uint32(m)}, n: 1})
	}

	stats.Classes = len(lib.canon)
	stats.Learned = lib.learned
	newOuts := make([]Lit, len(outs))
	for i, o := range outs {
		l := remap[o.node()]
		if o.complement() {
			l = l.Not()
		}
		newOuts[i] = l
	}
	return ng, newOuts, stats
}

// projTT are the 4-variable projection tables: projTT[i] is "value of
// variable i" over the 16 assignments.
var projTT = [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}

// reduceSupport drops cut leaves the function does not depend on and
// compacts the table onto the surviving variables, replicated back to a
// canonical 4-variable table (positions ≥ support size redundant).
func reduceSupport(t uint16, c *cut) (uint16, []uint32) {
	var sup [cutMaxLeaves]bool
	var leaves []uint32
	k := 0
	for i := 0; i < int(c.n); i++ {
		mu := projTT[i]
		s := uint(1) << i
		t0 := t &^ mu
		t0 |= t0 << s
		t1 := t & mu
		t1 |= t1 >> s
		if t0 != t1 {
			sup[i] = true
			leaves = append(leaves, c.leaves[i])
			k++
		}
	}
	// Squeeze out redundant positions, highest first so lower positions
	// keep their indices; each squeeze substitutes the variable with 0.
	for i := int(c.n) - 1; i >= 0; i-- {
		if sup[i] {
			continue
		}
		var nt uint16
		for j := 0; j < 16; j++ {
			a := (j>>i)<<(i+1) | j&(1<<i-1) // insert 0 at position i
			if a < 16 && t>>a&1 == 1 {
				nt |= 1 << j
			}
		}
		t = nt
	}
	for kk := k; kk < cutMaxLeaves; kk++ {
		t |= t << (1 << kk)
	}
	return t, leaves
}

// mffcSize counts the AND nodes that die if node m is replaced over the
// cut: m plus its maximum fanout-free cone above the cut leaves. refs is
// restored before returning.
func mffcSize(g *Graph, refs []int32, m uint32, c *cut) int {
	isLeaf := func(x uint32) bool {
		for i := 0; i < int(c.n); i++ {
			if c.leaves[i] == x {
				return true
			}
		}
		return false
	}
	count := 0
	var deref func(x uint32)
	deref = func(x uint32) {
		count++
		nd := g.nodes[x]
		for _, e := range [2]Lit{nd.a, nd.b} {
			cn := e.node()
			if isLeaf(cn) || g.nodes[cn].kind != kindAnd {
				continue
			}
			refs[cn]--
			if refs[cn] == 0 {
				deref(cn)
			}
		}
	}
	var reref func(x uint32)
	reref = func(x uint32) {
		nd := g.nodes[x]
		for _, e := range [2]Lit{nd.a, nd.b} {
			cn := e.node()
			if isLeaf(cn) || g.nodes[cn].kind != kindAnd {
				continue
			}
			if refs[cn] == 0 {
				reref(cn)
			}
			refs[cn]++
		}
	}
	deref(m)
	reref(m)
	return count
}
