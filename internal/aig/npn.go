package aig

// NPN canonicalization of 4-variable functions and the class library the
// rewrite pass instantiates from. The canonical representative of a class
// is the lexicographically smallest table reachable by permuting inputs,
// complementing inputs and complementing the output; the transform that
// reaches it is kept so a library implementation of the representative can
// be instantiated for any class member:
//
//	canon(y) = f(x) ⊕ outFlip,  with  x[perm[i]] = y[i] ⊕ mask_i
//
// so feeding the implementation canonLits[i] = leaves[perm[i]] ⊕ mask_i
// and flipping its output by outFlip reproduces f(leaves) exactly.

type npnTransform struct {
	perm    [4]uint8
	mask    uint8
	outFlip bool
}

type npnEntry struct {
	canon uint16
	tf    npnTransform
}

// recipe is a library implementation of a canonical representative: a tiny
// 4-input scratch AIG plus its output literal. Instantiation replays its
// AND nodes onto the target graph.
type recipe struct {
	g    *Graph
	out  Lit
	cost int // AND count, for reporting
}

type npnLibrary struct {
	canon   map[uint16]npnEntry // function table -> canonical class + transform
	recipes map[uint16]*recipe  // canonical table -> implementation
	learned int
}

var perms4 = allPerms4()

func allPerms4() [][4]uint8 {
	var out [][4]uint8
	var rec func(cur []uint8, used [4]bool)
	rec = func(cur []uint8, used [4]bool) {
		if len(cur) == 4 {
			out = append(out, [4]uint8{cur[0], cur[1], cur[2], cur[3]})
			return
		}
		for v := uint8(0); v < 4; v++ {
			if !used[v] {
				used[v] = true
				rec(append(cur, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, [4]bool{})
	return out
}

// npnApply computes c where c(y) = t(x), x[perm[i]] = y[i] ⊕ mask_i.
func npnApply(t uint16, perm [4]uint8, mask uint8) uint16 {
	var c uint16
	for y := 0; y < 16; y++ {
		x := 0
		for i := 0; i < 4; i++ {
			bit := (y>>i ^ int(mask)>>i) & 1
			x |= bit << perm[i]
		}
		if t>>x&1 == 1 {
			c |= 1 << y
		}
	}
	return c
}

// canonicalize finds the class representative of t, memoized per library.
func (lib *npnLibrary) canonicalize(t uint16) npnEntry {
	if e, ok := lib.canon[t]; ok {
		return e
	}
	best := npnEntry{canon: 0xFFFF, tf: npnTransform{perm: [4]uint8{0, 1, 2, 3}}}
	first := true
	for _, perm := range perms4 {
		for mask := 0; mask < 16; mask++ {
			c := npnApply(t, perm, uint8(mask))
			if first || c < best.canon {
				best = npnEntry{canon: c, tf: npnTransform{perm: perm, mask: uint8(mask)}}
				first = false
			}
			if nc := ^c; nc < best.canon {
				best = npnEntry{canon: nc, tf: npnTransform{perm: perm, mask: uint8(mask), outFlip: true}}
			}
		}
	}
	lib.canon[t] = best
	return best
}

// newNPNLibrary seeds the library with hand-optimal implementations for
// classes where Shannon decomposition is suboptimal (majority-3 costs 4
// ANDs, Shannon's mux cascade 5); everything else is learned on first
// encounter via memoized Shannon synthesis on a scratch graph.
func newNPNLibrary() *npnLibrary {
	lib := &npnLibrary{
		canon:   make(map[uint16]npnEntry),
		recipes: make(map[uint16]*recipe),
	}
	// MAJ3(a,b,c) = ab ∨ c(a ∨ b): 4 ANDs.
	lib.seed(func(g *Graph, x [4]Lit) Lit {
		a, b, c := x[0], x[1], x[2]
		return g.Or(g.And(a, b), g.And(c, g.Or(a, b)))
	})
	// One-level carry mix a ⊕ bc (Shannon spends 5 ANDs, 4 suffice).
	lib.seed(func(g *Graph, x [4]Lit) Lit {
		return g.Xor(x[0], g.And(x[1], x[2]))
	})
	return lib
}

// seed registers a hand construction (built over explicit x-literals) under
// its class representative: one probe build reads off the function, a second
// build re-expresses it as the canonical representative.
func (lib *npnLibrary) seed(build func(*Graph, [4]Lit) Lit) {
	probe := New(4)
	f := truthOf(probe, build(probe, [4]Lit{probe.Input(0), probe.Input(1), probe.Input(2), probe.Input(3)}))
	e := lib.canonicalize(f)
	rg := New(4)
	// canon(y) = f(x)⊕outFlip with x[perm[i]] = y[i]⊕mask: wire the
	// construction's x-inputs from the representative's y-inputs.
	var xs [4]Lit
	for i := 0; i < 4; i++ {
		l := rg.Input(i)
		if e.tf.mask>>i&1 == 1 {
			l = l.Not()
		}
		xs[e.tf.perm[i]] = l
	}
	out := build(rg, xs)
	if e.tf.outFlip {
		out = out.Not()
	}
	if truthOf(rg, out) != e.canon {
		panic("aig: npn seed does not reproduce its canonical class")
	}
	lib.recipes[e.canon] = &recipe{g: rg, out: out, cost: rg.NumAnds()}
}

// truthOf samples a 4-input graph literal into a table.
func truthOf(g *Graph, l Lit) uint16 {
	var t uint16
	in := make([]bool, 4)
	for a := 0; a < 16; a++ {
		for i := 0; i < 4; i++ {
			in[i] = a>>i&1 == 1
		}
		if g.Eval(l, in) {
			t |= 1 << a
		}
	}
	return t
}

// build instantiates the class implementation of table t onto g over the
// given leaf literals, returning the output literal and how many AND nodes
// the instantiation actually created (after strash).
func (lib *npnLibrary) build(g *Graph, t uint16, leaves []Lit) (Lit, int) {
	e := lib.canonicalize(t)
	rec, ok := lib.recipes[e.canon]
	if !ok {
		// Learn the class: Shannon-synthesize the representative once on a
		// scratch graph; the memoized decomposition shares subfunctions.
		rg := New(4)
		out := rg.SynthesizeOnto(ttFromWord(e.canon, 4), []Lit{rg.Input(0), rg.Input(1), rg.Input(2), rg.Input(3)})
		rec = &recipe{g: rg, out: out, cost: rg.NumAnds()}
		lib.recipes[e.canon] = rec
		lib.learned++
	}
	// canonLits[i] = leaves[perm[i]] ⊕ mask_i (pad short leaf lists with
	// constants — the representative cannot depend on those positions).
	var canonLits [4]Lit
	for i := 0; i < 4; i++ {
		src := int(e.tf.perm[i])
		l := Const0
		if src < len(leaves) {
			l = leaves[src]
		}
		if e.tf.mask>>i&1 == 1 {
			l = l.Not()
		}
		canonLits[i] = l
	}
	before := len(g.nodes)
	vals := make([]Lit, len(rec.g.nodes))
	vals[0] = Const0
	for i := 0; i < 4; i++ {
		vals[1+i] = canonLits[i]
	}
	mapLit := func(l Lit) Lit {
		v := vals[l.node()]
		if l.complement() {
			v = v.Not()
		}
		return v
	}
	for i := 5; i < len(rec.g.nodes); i++ {
		nd := rec.g.nodes[i]
		vals[i] = g.And(mapLit(nd.a), mapLit(nd.b))
	}
	out := mapLit(rec.out)
	if e.tf.outFlip {
		out = out.Not()
	}
	return out, len(g.nodes) - before
}

// ttFromWord expands a packed table into a TT value.
func ttFromWord(t uint16, n int) TT {
	tt := NewTT(n)
	for i := uint(0); i < 1<<uint(n); i++ {
		if t>>i&1 == 1 {
			tt.Set(i, true)
		}
	}
	return tt
}
