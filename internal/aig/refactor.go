package aig

import "sort"

// Refactor collapses each maximum fanout-free cone (MFFC) in the net into
// its truth table over the cone's leaf boundary and resynthesizes it by
// memoized Shannon decomposition, keeping the new structure only when it is
// strictly smaller than the cone it replaces. Where rewrite works on fixed
// 4-input cuts, refactor attacks larger single-output regions (up to
// refactorMaxLeaves leaves), so the two passes find different redundancy.
const refactorMaxLeaves = 8

// RefactorStats summarizes one Refactor pass.
type RefactorStats struct {
	Tried      int // MFFCs evaluated for collapse
	Collapses  int // accepted resyntheses
	NodesSaved int // sum of (MFFC size − resynthesized size) over accepts
}

// Refactor rebuilds the cones feeding outs. Only MFFC roots (shared nodes
// and output drivers) are emitted; interior single-fanout nodes are either
// swallowed by an accepted collapse or copied structurally with the rest of
// their cone. Returns the new graph, remapped outputs and pass stats.
func Refactor(g *Graph, outs []Lit) (*Graph, []Lit, RefactorStats) {
	inCone, refs := rawCone(g, outs)
	n := len(g.nodes)
	first := 1 + g.nInputs
	outDriven := make([]bool, n)
	for _, o := range outs {
		outDriven[o.node()] = true
	}

	ng := New(g.nInputs)
	remap := make([]Lit, n)
	have := make([]bool, n)
	remap[0], have[0] = Const0, true
	for i := 0; i < g.nInputs; i++ {
		remap[1+i], have[1+i] = ng.Input(i), true
	}
	var stats RefactorStats

	var emitCopy func(x uint32) Lit
	emitCopy = func(x uint32) Lit {
		if have[x] {
			return remap[x]
		}
		nd := g.nodes[x]
		a := emitCopy(nd.a.node())
		if nd.a.complement() {
			a = a.Not()
		}
		b := emitCopy(nd.b.node())
		if nd.b.complement() {
			b = b.Not()
		}
		l := ng.And(a, b)
		remap[x], have[x] = l, true
		return l
	}

	inMffc := make([]bool, n)
	for m := uint32(first); m < uint32(n); m++ {
		if !inCone[m] {
			continue
		}
		if refs[m] <= 1 && !outDriven[m] {
			continue // interior of some later root's MFFC
		}

		// Collect the MFFC: nodes whose reference count falls to zero when m
		// is removed. The deref walk is mirrored by reref to restore refs.
		var mffc []uint32
		var deref func(x uint32)
		deref = func(x uint32) {
			mffc = append(mffc, x)
			inMffc[x] = true
			nd := g.nodes[x]
			for _, e := range [2]Lit{nd.a, nd.b} {
				cn := e.node()
				if g.nodes[cn].kind != kindAnd {
					continue
				}
				refs[cn]--
				if refs[cn] == 0 {
					deref(cn)
				}
			}
		}
		var reref func(x uint32)
		reref = func(x uint32) {
			nd := g.nodes[x]
			for _, e := range [2]Lit{nd.a, nd.b} {
				cn := e.node()
				if g.nodes[cn].kind != kindAnd {
					continue
				}
				if refs[cn] == 0 {
					reref(cn)
				}
				refs[cn]++
			}
		}
		deref(m)
		reref(m)
		sort.Slice(mffc, func(i, j int) bool { return mffc[i] < mffc[j] })

		// Leaf boundary: children referenced from inside that did not die.
		var leaves []uint32
		for _, x := range mffc {
			nd := g.nodes[x]
			for _, e := range [2]Lit{nd.a, nd.b} {
				if cn := e.node(); !inMffc[cn] {
					leaves = append(leaves, cn)
				}
			}
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
		uniq := leaves[:0]
		for _, l := range leaves {
			if len(uniq) == 0 || uniq[len(uniq)-1] != l {
				uniq = append(uniq, l)
			}
		}
		leaves = uniq
		for _, x := range mffc {
			inMffc[x] = false
		}
		nl := len(leaves)
		if len(mffc) < 2 || nl < 1 || nl > refactorMaxLeaves {
			emitCopy(m)
			continue
		}

		// Word-parallel truth-table simulation of the cone over its leaves.
		nw := 1
		if nl > 6 {
			nw = 1 << (nl - 6)
		}
		val := make(map[uint32][]uint64, nl+len(mffc))
		for vi, leafN := range leaves {
			w := make([]uint64, nw)
			for a := 0; a < 1<<nl; a++ {
				if a>>vi&1 == 1 {
					w[a>>6] |= 1 << (a & 63)
				}
			}
			val[leafN] = w
		}
		for _, x := range mffc {
			nd := g.nodes[x]
			wa, wb := val[nd.a.node()], val[nd.b.node()]
			w := make([]uint64, nw)
			for k := range w {
				a, b := wa[k], wb[k]
				if nd.a.complement() {
					a = ^a
				}
				if nd.b.complement() {
					b = ^b
				}
				w[k] = a & b
			}
			val[x] = w
		}
		wm := val[m]
		tt := TTFromFunc(nl, func(a uint) bool { return wm[a>>6]>>(a&63)&1 == 1 })

		leafLits := make([]Lit, nl)
		for i, ln := range leaves {
			leafLits[i] = remap[ln] // leaves are inputs or earlier roots
		}
		stats.Tried++
		cp := ng.mark()
		lit := ng.SynthesizeOnto(tt, leafLits)
		if added := int(ng.mark() - cp); added < len(mffc) {
			remap[m], have[m] = lit, true
			stats.Collapses++
			stats.NodesSaved += len(mffc) - added
			continue
		}
		ng.rollback(cp)
		emitCopy(m)
	}

	newOuts := make([]Lit, len(outs))
	for i, o := range outs {
		l := remap[o.node()]
		if o.complement() {
			l = l.Not()
		}
		newOuts[i] = l
	}
	return ng, newOuts, stats
}
