package aig

import (
	"crypto/sha256"
	"encoding/binary"
)

// Fingerprint returns a canonical content hash of the logic cones feeding
// outs. Nodes are renumbered by a depth-first postorder walk from the
// outputs (children before parents, fanin a before fanin b), so the hash
// depends only on the reachable structure and the output order — not on
// construction order, dead nodes, or strash-table state. Two graphs built
// by different pass pipelines that converge to the same cones fingerprint
// identically, which is what the co-optimizer's candidate cache keys on.
func (g *Graph) Fingerprint(outs []Lit) [32]byte {
	h := sha256.New()
	var buf [3 * binary.MaxVarintLen64]byte
	emit := func(tag byte, a, b uint64) {
		buf[0] = tag
		n := 1 + binary.PutUvarint(buf[1:], a)
		n += binary.PutUvarint(buf[n:], b)
		h.Write(buf[:n])
	}
	id := make([]int64, len(g.nodes))
	for i := range id {
		id[i] = -1
	}
	next := int64(0)
	var visit func(n uint32) uint64
	visit = func(n uint32) uint64 {
		if id[n] >= 0 {
			return uint64(id[n])
		}
		nd := g.nodes[n]
		switch nd.kind {
		case kindConst:
			emit('C', 0, 0)
		case kindInput:
			emit('I', uint64(nd.input), 0)
		case kindAnd:
			ia := visit(nd.a.node())<<1 | uint64(nd.a&1)
			ib := visit(nd.b.node())<<1 | uint64(nd.b&1)
			emit('A', ia, ib)
		}
		id[n] = next
		next++
		return uint64(id[n])
	}
	for _, o := range outs {
		io := visit(o.node())<<1 | uint64(o&1)
		emit('O', io, 0)
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// checkpoint marks the current graph size so a speculative build can be
// undone with rollback.
type checkpoint int

func (g *Graph) mark() checkpoint { return checkpoint(len(g.nodes)) }

// rollback removes every node created since the checkpoint, unhooking its
// strash entry. Only valid while no surviving literal references the
// removed nodes and Synthesize (whose memo would retain them) has not run
// since the mark — the rewriting passes' speculative candidate builds
// satisfy both by construction.
func (g *Graph) rollback(m checkpoint) {
	for i := int(m); i < len(g.nodes); i++ {
		nd := g.nodes[i]
		delete(g.strash, [2]Lit{nd.a, nd.b})
	}
	g.nodes = g.nodes[:m]
}

// SynthesizeOnto builds a circuit computing the truth table over arbitrary
// leaf literals (table variable v = leaves[v]) by memoized Shannon
// decomposition, sharing equal subfunctions within the call. Unlike
// Synthesize it never touches the graph-global memo, so it composes with
// mark/rollback.
func (g *Graph) SynthesizeOnto(t TT, leaves []Lit) Lit {
	if t.n != len(leaves) {
		panic("aig: SynthesizeOnto arity mismatch")
	}
	memo := make(map[string]Lit)
	var syn func(t TT) Lit
	syn = func(t TT) Lit {
		if c, v := t.isConst(); c {
			return g.Const(v)
		}
		key := t.key()
		if l, ok := memo[key]; ok {
			return l
		}
		lo, hi := t.cofactors()
		l := g.Mux(leaves[t.n-1], syn(hi), syn(lo))
		memo[key] = l
		return l
	}
	return syn(t)
}
