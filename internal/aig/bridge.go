package aig

import (
	"fmt"

	"sherlock/internal/dfg"
	"sherlock/internal/logic"
)

// Cone is a kernel lifted out of a dfg.Graph: an AIG plus the bookkeeping
// needed to lower it back into an equivalent DFG with the same input and
// output names. The resynthesis passes transform the AIG; Lower re-emits a
// DFG through the standard builder (CSE, folding) with polarity-aware
// operator selection.
type Cone struct {
	G           *Graph
	Outs        []Lit    // one literal per kernel output, in Outputs() order
	InputNames  []string // graph input i = AIG input i
	OutputNames []string // user-facing names, parallel to Outs
}

// WithNet returns a Cone over a transformed net (same interface, new
// graph/output literals) — how pass pipelines thread through.
func (c *Cone) WithNet(g *Graph, outs []Lit) *Cone {
	return &Cone{G: g, Outs: outs, InputNames: c.InputNames, OutputNames: c.OutputNames}
}

// Fingerprint canonically hashes the cone structure plus its I/O naming —
// the co-optimizer's candidate cache key.
func (c *Cone) Fingerprint() [32]byte {
	return c.G.Fingerprint(c.Outs)
}

// Size returns the cone's AND-node count.
func (c *Cone) Size() int { return ConeSize(c.G, c.Outs) }

// LiftDFG folds a boolean DFG into an AIG: every sense op becomes AND
// structure (inverted ops become complement edges, XOR its three-AND
// encoding), NOT becomes a complement, COPY an alias. Multi-operand ops
// fold through the canonical sorted n-ary constructors (AndN/OrN/XorN), so
// operand order never changes the built structure — the property the
// translation validator (internal/verify.Equivalent) relies on to discharge
// mapper output against the kernel by literal equality. The result is the
// substrate the resynthesis passes operate on; Lower inverts the encoding.
func LiftDFG(src *dfg.Graph) (*Cone, error) {
	ins := src.Inputs()
	g := New(len(ins))
	lits := make([]Lit, src.NumNodes())
	names := make([]string, len(ins))
	for i, in := range ins {
		lits[in] = g.Input(i)
		names[i] = src.Name(in)
	}
	var buf []dfg.NodeID
	var ops []Lit
	for _, op := range src.TopoOps() {
		buf = src.AppendOpInputs(op, buf[:0])
		if len(buf) == 0 {
			return nil, fmt.Errorf("aig: op %d has no operands", op)
		}
		ops = ops[:0]
		for _, in := range buf {
			ops = append(ops, lits[in])
		}
		t := src.OpType(op)
		var v Lit
		switch t {
		case logic.Not:
			v = ops[0].Not()
		case logic.Copy:
			v = ops[0]
		case logic.And, logic.Nand:
			v = g.AndN(ops)
			if t == logic.Nand {
				v = v.Not()
			}
		case logic.Or, logic.Nor:
			v = g.OrN(ops)
			if t == logic.Nor {
				v = v.Not()
			}
		case logic.Xor, logic.Xnor:
			v = g.XorN(ops)
			if t == logic.Xnor {
				v = v.Not()
			}
		default:
			return nil, fmt.Errorf("aig: cannot lift op %v", t)
		}
		lits[src.OpOutput(op)] = v
	}
	outs := src.Outputs()
	c := &Cone{
		G:           g,
		Outs:        make([]Lit, len(outs)),
		InputNames:  names,
		OutputNames: make([]string, len(outs)),
	}
	for i, o := range outs {
		c.Outs[i] = lits[o]
		c.OutputNames[i] = src.OutputName(o)
	}
	return c, nil
}

// Lower emits the cone back into a fresh DFG. Emission is polarity-aware:
// each node is materialized in the polarity its consumers demand, so
// complement edges are absorbed into the native inverted sense ops instead
// of NOT instructions —
//
//	AND demanded negated        → NAND
//	AND over two complements    → NOR (positive) / OR (negated)
//	matched XOR encoding        → XOR/XNOR (fanin complements fold into
//	                              the op choice, never into a NOT)
//
// Nodes demanded in both polarities emit positive plus one CSE-shared NOT.
// Every original input is redeclared (in order) even if resynthesis proved
// it redundant, so the kernel signature — and the mapper's host-write
// protocol — is preserved.
func (c *Cone) Lower() (*dfg.Graph, error) {
	g := c.G
	n := len(g.nodes)
	first := 1 + g.nInputs
	isXor := make([]bool, n)
	xorU := make([]Lit, n)
	xorW := make([]Lit, n)
	for i := first; i < n; i++ {
		if u, w, ok := g.matchXor(uint32(i)); ok {
			isXor[i], xorU[i], xorW[i] = true, u, w
		}
	}

	// Demand propagation, reverse topological: which polarity(ies) of each
	// node the effective consumers need.
	posD := make([]bool, n)
	negD := make([]bool, n)
	demand := func(l Lit) {
		if l.complement() {
			negD[l.node()] = true
		} else {
			posD[l.node()] = true
		}
	}
	for _, o := range c.Outs {
		if !o.IsConst() {
			demand(o)
		}
	}
	for i := n - 1; i >= first; i-- {
		if !posD[i] && !negD[i] {
			continue
		}
		if isXor[i] {
			// XOR fanin parity folds into the op choice: children are
			// always wanted positive.
			posD[xorU[i].node()] = true
			posD[xorW[i].node()] = true
			continue
		}
		nd := g.nodes[i]
		if nd.a.complement() && nd.b.complement() {
			// NOR/OR form consumes the children positively.
			posD[nd.a.node()] = true
			posD[nd.b.node()] = true
		} else {
			demand(nd.a)
			demand(nd.b)
		}
	}

	b := dfg.NewBuilder()
	vals := make([]dfg.Val, n)
	haveVal := make([]bool, n)
	negVal := make([]bool, n) // vals[i] carries ¬node i
	for i, name := range c.InputNames {
		vals[1+i] = b.Input(name)
		haveVal[1+i] = true
	}
	litval := func(l Lit) (dfg.Val, error) {
		if l.IsConst() {
			return b.Const(l == Const1), nil
		}
		m := l.node()
		if !haveVal[m] {
			return dfg.Val{}, fmt.Errorf("aig: lowering referenced unemitted node %d", m)
		}
		v := vals[m]
		if l.complement() != negVal[m] {
			v = b.Not(v)
		}
		return v, nil
	}
	for i := first; i < n; i++ {
		if !posD[i] && !negD[i] {
			continue
		}
		neg := negD[i] && !posD[i] // primary polarity of the emitted val
		var v dfg.Val
		var err error
		if isXor[i] {
			u, w := xorU[i], xorW[i]
			var vu, vw dfg.Val
			if vu, err = litval(u &^ 1); err != nil {
				return nil, err
			}
			if vw, err = litval(w &^ 1); err != nil {
				return nil, err
			}
			xnor := u.complement() != w.complement()
			if neg {
				xnor = !xnor
			}
			if xnor {
				v = b.Xnor(vu, vw)
			} else {
				v = b.Xor(vu, vw)
			}
		} else {
			nd := g.nodes[i]
			var va, vb dfg.Val
			if nd.a.complement() && nd.b.complement() {
				if va, err = litval(nd.a.Not()); err != nil {
					return nil, err
				}
				if vb, err = litval(nd.b.Not()); err != nil {
					return nil, err
				}
				if neg {
					v = b.Or(va, vb)
				} else {
					v = b.Nor(va, vb)
				}
			} else {
				if va, err = litval(nd.a); err != nil {
					return nil, err
				}
				if vb, err = litval(nd.b); err != nil {
					return nil, err
				}
				if neg {
					v = b.Nand(va, vb)
				} else {
					v = b.And(va, vb)
				}
			}
		}
		vals[i], haveVal[i], negVal[i] = v, true, neg
	}
	for j, o := range c.Outs {
		v, err := litval(o)
		if err != nil {
			return nil, err
		}
		if isConst, _ := v.IsConst(); isConst {
			return nil, fmt.Errorf("aig: output %q lowered to a constant", c.OutputNames[j])
		}
		b.Output(c.OutputNames[j], v)
	}
	return b.Graph(), nil
}
