package aig

import (
	"math/rand"
	"testing"
)

func TestNaryCanonicalOrder(t *testing.T) {
	g := New(4)
	a, b, c, d := g.Input(0), g.Input(1), g.Input(2), g.Input(3)
	perm1 := g.AndN([]Lit{a, b, c, d})
	perm2 := g.AndN([]Lit{d, b.Not(), a, c})
	perm3 := g.AndN([]Lit{c, d, a, b})
	if perm1 != perm3 {
		t.Fatalf("AndN not order-invariant: %v vs %v", perm1, perm3)
	}
	if perm1 == perm2 {
		t.Fatalf("AndN merged different operand sets")
	}
	if x, y := g.OrN([]Lit{a, b, c}), g.OrN([]Lit{c, a, b}); x != y {
		t.Fatalf("OrN not order-invariant: %v vs %v", x, y)
	}
	if x, y := g.XorN([]Lit{a, b.Not(), c}), g.XorN([]Lit{c.Not(), b, a}); x != y {
		t.Fatalf("XorN complement stripping not canonical: %v vs %v", x, y)
	}
	if got := g.XorN([]Lit{a, b, a}); got != g.XorN([]Lit{b}) {
		t.Fatalf("XorN duplicate cancellation: got %v want %v", got, b)
	}
	if g.AndN(nil) != Const1 || g.OrN(nil) != Const0 || g.XorN(nil) != Const0 {
		t.Fatalf("empty folds not neutral elements")
	}
}

func TestCheckOutputsStrash(t *testing.T) {
	g := New(3)
	x := g.AndN([]Lit{g.Input(0), g.Input(1), g.Input(2)})
	y := g.AndN([]Lit{g.Input(2), g.Input(0), g.Input(1)})
	vs, _ := CheckOutputs(g, []Lit{x}, []Lit{y}, EquivOptions{})
	if vs[0].Verdict != VerdictProven || vs[0].Method != "strash" {
		t.Fatalf("canonical folds should prove by strash, got %+v", vs[0])
	}
}

// Skewed vs balanced association of one chain must prove via the normalized
// rebuild — the shape Balance candidates take.
func TestCheckOutputsRebuildReassociation(t *testing.T) {
	const n = 12
	g := New(n)
	skewAnd, skewXor := g.Input(0), g.Input(0)
	for i := 1; i < n; i++ {
		skewAnd = g.And(skewAnd, g.Input(i))
		skewXor = g.Xor(skewXor, g.Input(i))
	}
	var tree func(lo, hi int, op func(Lit, Lit) Lit) Lit
	tree = func(lo, hi int, op func(Lit, Lit) Lit) Lit {
		if hi-lo == 1 {
			return g.Input(lo)
		}
		mid := (lo + hi) / 2
		return op(tree(lo, mid, op), tree(mid, hi, op))
	}
	balAnd := tree(0, n, g.And)
	balXor := tree(0, n, g.Xor)
	vs, st := CheckOutputs(g, []Lit{skewAnd, skewXor}, []Lit{balAnd, balXor}, EquivOptions{})
	for i, v := range vs {
		if v.Verdict != VerdictProven {
			t.Fatalf("pair %d: %v via %s, want proven", i, v.Verdict, v.Method)
		}
		if v.Method != "rebuild" {
			t.Fatalf("pair %d proved via %s, want rebuild", i, v.Method)
		}
	}
	if st.RebuiltNodes == 0 {
		t.Fatalf("rebuild ran but reported no nodes")
	}
}

// Distribution a·(b+c) = a·b + a·c is not an AC reassociation; the sweep has
// to prove the roots equal over their joint support.
func TestCheckOutputsSweepDistribution(t *testing.T) {
	g := New(3)
	a, b, c := g.Input(0), g.Input(1), g.Input(2)
	f1 := g.And(a, g.Or(b, c))
	f2 := g.Or(g.And(a, b), g.And(a, c))
	vs, st := CheckOutputs(g, []Lit{f1}, []Lit{f2}, EquivOptions{})
	if vs[0].Verdict != VerdictProven {
		t.Fatalf("distribution not proven: %+v", vs[0])
	}
	if st.Merges == 0 {
		t.Fatalf("expected at least one sweep merge")
	}
}

func TestCheckOutputsCosimRefutes(t *testing.T) {
	g := New(4)
	a, b := g.Input(0), g.Input(1)
	f1 := g.And(a, b)
	f2 := g.Or(a, b)
	vs, _ := CheckOutputs(g, []Lit{f1}, []Lit{f2}, EquivOptions{})
	v := vs[0]
	if v.Verdict != VerdictRefuted || v.Method != "cosim" {
		t.Fatalf("AND vs OR not cosim-refuted: %+v", v)
	}
	if len(v.Counter) != g.NumInputs() {
		t.Fatalf("counterexample covers %d of %d inputs", len(v.Counter), g.NumInputs())
	}
	if g.Eval(f1, v.Counter) == g.Eval(f2, v.Counter) {
		t.Fatalf("counterexample %v does not separate the functions", v.Counter)
	}
}

// A wide AND vs constant false agrees on (almost) every random vector; only
// the exhaustive table stage can find the single separating assignment.
func TestCheckOutputsTableRefutes(t *testing.T) {
	const n = 14
	g := New(n)
	all := make([]Lit, n)
	for i := range all {
		all[i] = g.Input(i)
	}
	wide := g.AndN(all)
	vs, st := CheckOutputs(g, []Lit{wide}, []Lit{Const0}, EquivOptions{SimWords: 1})
	v := vs[0]
	if v.Verdict != VerdictRefuted {
		t.Fatalf("wide AND vs const not refuted: %+v", v)
	}
	if v.Method == "cosim" {
		t.Skipf("random cosim already separated the pair under this seed")
	}
	if v.Method != "table" {
		t.Fatalf("refuted via %s, want table", v.Method)
	}
	if st.TableProofs == 0 {
		t.Fatalf("table stage reported no work")
	}
	if !g.Eval(wide, v.Counter) {
		t.Fatalf("counterexample %v does not set the wide AND", v.Counter)
	}
}

func TestCheckOutputsUnprovenWithinBudget(t *testing.T) {
	g := New(3)
	a, b, c := g.Input(0), g.Input(1), g.Input(2)
	f1 := g.And(a, g.Or(b, c))
	f2 := g.Or(g.And(a, b), g.And(a, c))
	vs, _ := CheckOutputs(g, []Lit{f1}, []Lit{f2}, EquivOptions{MaxSupport: 2})
	if vs[0].Verdict != VerdictUnproven {
		t.Fatalf("3-input sweep under MaxSupport=2 should be unproven, got %+v", vs[0])
	}
}

// graft recreates src's cones node for node inside dst (raw ANDs, no
// canonical reordering), so structurally transformed nets can be compared
// against their originals in one shared graph.
func graft(dst, src *Graph, outs []Lit) []Lit {
	lits := make([]Lit, len(src.nodes))
	lits[0] = Const0
	for i := 1; i <= src.nInputs; i++ {
		lits[i] = dst.Input(i - 1)
	}
	for i := 1 + src.nInputs; i < len(src.nodes); i++ {
		nd := src.nodes[i]
		if nd.kind != kindAnd {
			continue
		}
		a := lits[nd.a.node()] ^ Lit(nd.a&1)
		b := lits[nd.b.node()] ^ Lit(nd.b&1)
		lits[i] = dst.And(a, b)
	}
	res := make([]Lit, len(outs))
	for i, o := range outs {
		res[i] = lits[o.node()] ^ Lit(o&1)
	}
	return res
}

// The prover must accept every shape the resynthesis passes generate — the
// exact candidates the coopt gate now discharges statically.
func TestCheckOutputsProvesResynthesisShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	passes := []struct {
		name  string
		apply func(*Graph, []Lit) (*Graph, []Lit)
	}{
		{"balance", func(g *Graph, outs []Lit) (*Graph, []Lit) { return Balance(g, outs) }},
		{"rewrite", func(g *Graph, outs []Lit) (*Graph, []Lit) {
			g2, o2, _ := Rewrite(g, outs)
			return g2, o2
		}},
		{"refactor", func(g *Graph, outs []Lit) (*Graph, []Lit) {
			g2, o2, _ := Refactor(g, outs)
			return g2, o2
		}},
	}
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(4)
		g := New(n)
		lits := make([]Lit, 0, 40)
		for i := 0; i < n; i++ {
			lits = append(lits, g.Input(i))
		}
		for i := 0; i < 24; i++ {
			a := lits[rng.Intn(len(lits))] ^ Lit(rng.Intn(2))
			b := lits[rng.Intn(len(lits))] ^ Lit(rng.Intn(2))
			if v := g.And(a, b); !v.IsConst() {
				lits = append(lits, v)
			}
		}
		outs := []Lit{lits[len(lits)-1], lits[len(lits)-2] ^ 1, lits[len(lits)-3]}
		for _, pass := range passes {
			g2, outs2 := pass.apply(g, outs)
			grafted := graft(g, g2, outs2)
			vs, _ := CheckOutputs(g, outs, grafted, EquivOptions{})
			for i, v := range vs {
				if v.Verdict != VerdictProven {
					t.Fatalf("trial %d pass %s output %d: %v via %s, want proven",
						trial, pass.name, i, v.Verdict, v.Method)
				}
			}
		}
	}
}
