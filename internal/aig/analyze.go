package aig

// Structural analysis shared by the resynthesis passes: XOR-pattern
// detection, cone membership and reference counting over the "effective"
// netlist view in which a matched XOR node points straight at its two
// fanin literals instead of at the pair of internal ANDs encoding it.

// matchXor recognizes the canonical two-level AND encoding of XOR:
//
//	n = AND(¬A, ¬B),  A = AND(u, w),  B = AND(¬u, ¬w)
//
// and reports n = u XOR w (as literals, complements included). Strash
// guarantees A and B have distinct, non-constant children, so a match is
// exact — no truth-table check is needed.
func (g *Graph) matchXor(n uint32) (u, w Lit, ok bool) {
	nd := g.nodes[n]
	if nd.kind != kindAnd || !nd.a.complement() || !nd.b.complement() {
		return 0, 0, false
	}
	an, bn := nd.a.node(), nd.b.node()
	na, nb := g.nodes[an], g.nodes[bn]
	if na.kind != kindAnd || nb.kind != kindAnd {
		return 0, 0, false
	}
	if (nb.a == na.a.Not() && nb.b == na.b.Not()) ||
		(nb.a == na.b.Not() && nb.b == na.a.Not()) {
		return na.a, na.b, true
	}
	return 0, 0, false
}

// netinfo is the effective-netlist view of the cones feeding outs.
type netinfo struct {
	isXor  []bool // node is a matched XOR encoding
	xorU   []Lit  // matched XOR fanins (valid when isXor)
	xorW   []Lit
	inCone []bool  // node is reachable from outs via effective edges
	refs   []int32 // effective in-cone reference count (outputs included)
}

// analyzeNet detects XOR encodings and counts cone references over the
// effective edges: a matched XOR node references its two fanin nodes, not
// the internal AND pair (which joins the cone only if referenced from
// elsewhere).
func analyzeNet(g *Graph, outs []Lit) *netinfo {
	n := len(g.nodes)
	ni := &netinfo{
		isXor:  make([]bool, n),
		xorU:   make([]Lit, n),
		xorW:   make([]Lit, n),
		inCone: make([]bool, n),
		refs:   make([]int32, n),
	}
	first := 1 + g.nInputs
	for i := first; i < n; i++ {
		if u, w, ok := g.matchXor(uint32(i)); ok {
			ni.isXor[i], ni.xorU[i], ni.xorW[i] = true, u, w
		}
	}
	var visit func(m uint32)
	visit = func(m uint32) {
		if ni.inCone[m] {
			return
		}
		ni.inCone[m] = true
		nd := g.nodes[m]
		if nd.kind != kindAnd {
			return
		}
		var ea, eb Lit
		if ni.isXor[m] {
			ea, eb = ni.xorU[m], ni.xorW[m]
		} else {
			ea, eb = nd.a, nd.b
		}
		ni.refs[ea.node()]++
		visit(ea.node())
		ni.refs[eb.node()]++
		visit(eb.node())
	}
	for _, o := range outs {
		ni.refs[o.node()]++
		visit(o.node())
	}
	return ni
}

// rawCone marks the nodes reachable from outs over raw AND edges and
// counts raw references (outputs included).
func rawCone(g *Graph, outs []Lit) (inCone []bool, refs []int32) {
	n := len(g.nodes)
	inCone = make([]bool, n)
	refs = make([]int32, n)
	var visit func(m uint32)
	visit = func(m uint32) {
		if inCone[m] {
			return
		}
		inCone[m] = true
		nd := g.nodes[m]
		if nd.kind != kindAnd {
			return
		}
		refs[nd.a.node()]++
		visit(nd.a.node())
		refs[nd.b.node()]++
		visit(nd.b.node())
	}
	for _, o := range outs {
		refs[o.node()]++
		visit(o.node())
	}
	return inCone, refs
}

// ConeSize returns the number of AND nodes reachable from outs — the
// circuit size metric the resynthesis passes optimize (dead nodes left
// behind by rewrites do not count).
func ConeSize(g *Graph, outs []Lit) int {
	inCone, _ := rawCone(g, outs)
	size := 0
	for i := 1 + g.nInputs; i < len(g.nodes); i++ {
		if inCone[i] && g.nodes[i].kind == kindAnd {
			size++
		}
	}
	return size
}
