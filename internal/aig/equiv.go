package aig

import (
	"encoding/binary"
	"math/rand"
)

// Combinational equivalence checking over pairs of literals in one shared
// graph — the discharge engine behind the translation validator
// (internal/verify.Equivalent) and the coopt candidate-acceptance gate.
//
// The pipeline, cheapest decision procedure first:
//
//  1. strash   — both sides built through the canonical constructors landed
//                on the same literal. An op-for-op-faithful mapper program
//                proves this way, in O(instructions) nodes and O(1) per
//                output.
//  2. cosim    — 64·SimWords random vectors simulated over the whole graph
//                once; any differing lane refutes equivalence and yields a
//                concrete counterexample assignment.
//  3. rebuild  — cosim-indistinguishable pairs are re-expressed in a fresh
//                graph with AC normalization (maximal AND/XOR trees flatten
//                into canonical sorted folds, so balancing and operand
//                reassociation vanish) plus fraig-style sweeping (nodes with
//                identical simulation signatures and joint structural
//                support ≤ MaxSupport are proven equal or distinct by
//                exhaustive enumeration and merged). Rewritten-but-equal
//                structures converge to one literal here.
//  4. table    — pairs still distinct after the rebuild are miter-checked
//                exhaustively when their joint support is ≤ MaxSupport.
//
// Anything surviving all four is VerdictUnproven — never silently accepted;
// callers fall back to dynamic checking (coopt keeps its equivalence fuzz as
// exactly that backstop).

// Verdict is the outcome of one equivalence query.
type Verdict uint8

// Verdicts.
const (
	VerdictProven   Verdict = iota // sides are the same Boolean function
	VerdictRefuted                 // a counterexample assignment exists
	VerdictUnproven                // undecided within the static budget
)

func (v Verdict) String() string {
	switch v {
	case VerdictProven:
		return "proven"
	case VerdictRefuted:
		return "refuted"
	case VerdictUnproven:
		return "unproven"
	}
	return "Verdict(?)"
}

// EquivOptions bounds the decision procedures.
type EquivOptions struct {
	// MaxSupport caps the joint structural support (in primary inputs) up to
	// which exhaustive truth-table proofs run, both for sweep merges and for
	// the final per-pair miter. Default 16 (64Ki assignments, batched 64 per
	// word).
	MaxSupport int
	// SimWords is the number of 64-lane random words cosimulated per input.
	// Default 8 (512 vectors).
	SimWords int
	// FlatCap caps the leaf count of one flattened AND/XOR tree during AC
	// normalization; larger trees flatten partially. Default 256.
	FlatCap int
	// Seed drives the cosimulation vectors. Default 1.
	Seed int64
}

func (o EquivOptions) withDefaults() EquivOptions {
	if o.MaxSupport <= 0 {
		o.MaxSupport = 16
	}
	if o.SimWords <= 0 {
		o.SimWords = 8
	}
	if o.FlatCap <= 0 {
		o.FlatCap = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PairVerdict is the result for one (a, b) literal pair.
type PairVerdict struct {
	Verdict Verdict
	// Method names the decision procedure that settled the pair: "strash",
	// "cosim", "rebuild" or "table"; "unproven" when none did.
	Method string
	// Counter is a full primary-input assignment on which the two sides
	// differ; non-nil exactly when Verdict == VerdictRefuted.
	Counter []bool
}

// EquivStats reports how much work CheckOutputs did.
type EquivStats struct {
	RebuiltNodes int // AND nodes in the normalized rebuild graph
	Merges       int // sweep merges proven by exhaustive enumeration
	TableProofs  int // final per-pair exhaustive checks run
}

// CheckOutputs decides, for every index i, whether literals a[i] and b[i] of
// g compute the same Boolean function of g's primary inputs.
func CheckOutputs(g *Graph, a, b []Lit, opt EquivOptions) ([]PairVerdict, EquivStats) {
	if len(a) != len(b) {
		panic("aig: CheckOutputs literal slices differ in length")
	}
	opt = opt.withDefaults()
	out := make([]PairVerdict, len(a))
	open := make([]int, 0, len(a))
	for i := range a {
		if a[i] == b[i] {
			out[i] = PairVerdict{Verdict: VerdictProven, Method: "strash"}
		} else {
			open = append(open, i)
		}
	}
	if len(open) == 0 {
		return out, EquivStats{}
	}

	p := newProver(g, opt)
	p.cosim()
	still := open[:0]
	for _, i := range open {
		if ctr, differ := p.refute(a[i], b[i]); differ {
			out[i] = PairVerdict{Verdict: VerdictRefuted, Method: "cosim", Counter: ctr}
		} else {
			still = append(still, i)
		}
	}
	open = still
	if len(open) == 0 {
		return out, p.stats()
	}

	roots := make([]Lit, 0, 2*len(open))
	for _, i := range open {
		roots = append(roots, a[i], b[i])
	}
	p.rebuild(roots)
	for _, i := range open {
		ra, rb := p.reprLit(a[i]), p.reprLit(b[i])
		if ra == rb {
			out[i] = PairVerdict{Verdict: VerdictProven, Method: "rebuild"}
			continue
		}
		out[i] = p.table(ra, rb)
	}
	return out, p.stats()
}

// prover holds the shared state of one CheckOutputs run.
type prover struct {
	g   *Graph
	opt EquivOptions

	simG []uint64 // R words per source node, input-seeded random cosim

	h      *Graph   // normalized rebuild target
	simH   []uint64 // R words per rebuild node, same input seeds as simG
	supH   [][]int32
	supBig []bool
	alias  []Lit // rebuild node -> representative literal (sweep merges)
	class  map[string][]uint32
	repr   []Lit // source node -> rebuild literal

	andFlat [][]Lit    // source node -> flattened AND leaf list (G literals)
	xorFlat [][]uint32 // source node -> flattened XOR leaf nodes (positive)
	xorPar  []bool     // parity stripped while flattening xorFlat

	merges, tables int
}

func newProver(g *Graph, opt EquivOptions) *prover {
	return &prover{g: g, opt: opt, class: map[string][]uint32{}}
}

func (p *prover) stats() EquivStats {
	st := EquivStats{Merges: p.merges, TableProofs: p.tables}
	if p.h != nil {
		st.RebuiltNodes = p.h.NumAnds()
	}
	return st
}

// cosim fills simG: SimWords random 64-lane words per input, propagated
// through every node (nodes are stored in topological order by
// construction, children always precede parents).
func (p *prover) cosim() {
	g, R := p.g, p.opt.SimWords
	rng := rand.New(rand.NewSource(p.opt.Seed))
	p.simG = make([]uint64, len(g.nodes)*R)
	for i, nd := range g.nodes {
		switch nd.kind {
		case kindInput:
			for r := 0; r < R; r++ {
				p.simG[i*R+r] = rng.Uint64()
			}
		case kindAnd:
			an, bn := int(nd.a.node()), int(nd.b.node())
			ac, bc := nd.a.complement(), nd.b.complement()
			for r := 0; r < R; r++ {
				wa, wb := p.simG[an*R+r], p.simG[bn*R+r]
				if ac {
					wa = ^wa
				}
				if bc {
					wb = ^wb
				}
				p.simG[i*R+r] = wa & wb
			}
		}
	}
}

func (p *prover) simLitG(l Lit, r int) uint64 {
	w := p.simG[int(l.node())*p.opt.SimWords+r]
	if l.complement() {
		w = ^w
	}
	return w
}

// refute compares the cosim signatures of a and b; on a difference it
// extracts the full input assignment of the first differing lane.
func (p *prover) refute(a, b Lit) ([]bool, bool) {
	for r := 0; r < p.opt.SimWords; r++ {
		if diff := p.simLitG(a, r) ^ p.simLitG(b, r); diff != 0 {
			lane := 0
			for diff&1 == 0 {
				diff >>= 1
				lane++
			}
			ctr := make([]bool, p.g.nInputs)
			for i := 0; i < p.g.nInputs; i++ {
				ctr[i] = p.simG[(1+i)*p.opt.SimWords+r]>>uint(lane)&1 == 1
			}
			return ctr, true
		}
	}
	return nil, false
}

// --- normalized rebuild with sweeping -----------------------------------

// rebuild re-expresses the cones of roots in a fresh graph p.h: AND/XOR
// trees flatten into canonical sorted folds (FlatCap-bounded), and every
// created node is swept against simulation-signature classmates, merging
// pairs whose equality an exhaustive check over their joint support proves.
func (p *prover) rebuild(roots []Lit) {
	g, R := p.g, p.opt.SimWords
	p.h = New(g.nInputs)
	p.alias = make([]Lit, 1+g.nInputs)
	p.supH = make([][]int32, 1+g.nInputs)
	p.supBig = make([]bool, 1+g.nInputs)
	p.simH = make([]uint64, (1+g.nInputs)*R)
	for i := 0; i <= g.nInputs; i++ {
		p.alias[i] = Lit(uint32(i) << 1)
		if i > 0 {
			p.supH[i] = []int32{int32(i - 1)}
			copy(p.simH[i*R:(i+1)*R], p.simG[i*R:(i+1)*R])
			p.enroll(uint32(i))
		}
	}

	inCone, _ := rawCone(g, roots)
	n := len(g.nodes)
	p.repr = make([]Lit, n)
	p.andFlat = make([][]Lit, n)
	p.xorFlat = make([][]uint32, n)
	p.xorPar = make([]bool, n)
	for i := 0; i <= g.nInputs && i < n; i++ {
		p.repr[i] = Lit(uint32(i) << 1)
	}
	for i := 1 + g.nInputs; i < n; i++ {
		if !inCone[i] || g.nodes[i].kind != kindAnd {
			continue
		}
		if _, _, ok := g.matchXor(uint32(i)); ok {
			leaves, parity := p.flattenXor(uint32(i))
			lits := make([]Lit, len(leaves))
			for k, leaf := range leaves {
				lits[k] = p.resolve(p.repr[leaf])
			}
			v := p.foldXor(lits)
			if parity {
				v = v.Not()
			}
			p.repr[i] = v
			continue
		}
		leaves := p.flattenAnd(uint32(i))
		lits := make([]Lit, len(leaves))
		for k, leaf := range leaves {
			lits[k] = p.resolve(p.repr[leaf.node()]) ^ Lit(leaf&1)
		}
		p.repr[i] = p.foldAnd(lits)
	}
}

// reprLit maps a source literal to its (alias-resolved) rebuild literal.
func (p *prover) reprLit(l Lit) Lit {
	return p.resolve(p.repr[l.node()]) ^ Lit(l&1)
}

func (p *prover) resolve(l Lit) Lit {
	return p.alias[l.node()] ^ Lit(l&1)
}

// flattenAnd returns the FlatCap-bounded AND leaf list of source node n:
// non-complemented AND children that are not XOR encodings splice their own
// leaf lists in. Lists are memoized per node, so each is assembled once.
func (p *prover) flattenAnd(n uint32) []Lit {
	if p.andFlat[n] != nil {
		return p.andFlat[n]
	}
	nd := p.g.nodes[n]
	leaves := make([]Lit, 0, 4)
	for _, e := range [2]Lit{nd.a, nd.b} {
		sub := []Lit(nil)
		if !e.complement() && p.g.nodes[e.node()].kind == kindAnd {
			if _, _, isx := p.g.matchXor(e.node()); !isx {
				sub = p.flattenAnd(e.node())
			}
		}
		if sub != nil && len(leaves)+len(sub) <= p.opt.FlatCap {
			leaves = append(leaves, sub...)
		} else {
			leaves = append(leaves, e)
		}
	}
	p.andFlat[n] = leaves
	return leaves
}

// flattenXor returns the XOR leaf nodes (positive) and stripped parity of a
// matched XOR encoding rooted at source node n.
func (p *prover) flattenXor(n uint32) ([]uint32, bool) {
	if p.xorFlat[n] != nil {
		return p.xorFlat[n], p.xorPar[n]
	}
	u, w, _ := p.g.matchXor(n)
	leaves := make([]uint32, 0, 4)
	parity := false
	for _, e := range [2]Lit{u, w} {
		if e.complement() {
			parity = !parity
		}
		m := e.node()
		if p.g.nodes[m].kind == kindAnd {
			if _, _, isx := p.g.matchXor(m); isx {
				sub, subPar := p.flattenXor(m)
				if len(leaves)+len(sub) <= p.opt.FlatCap {
					leaves = append(leaves, sub...)
					if subPar {
						parity = !parity
					}
					continue
				}
			}
		}
		leaves = append(leaves, m)
	}
	p.xorFlat[n], p.xorPar[n] = leaves, parity
	return leaves, parity
}

// foldAnd and foldXor are the rebuild-side canonical folds: the same
// sorted-operand discipline as AndN/XorN, but every fold step is swept as
// its node is created, so partial folds converge onto already-proven
// representatives before the next operand lands.
func (p *prover) foldAnd(lits []Lit) Lit {
	s := append(make([]Lit, 0, len(lits)), lits...)
	sortLits(s)
	v := Const1
	for _, l := range s {
		v = p.sweepNew(p.h.And(v, l))
	}
	return v
}

func (p *prover) foldXor(lits []Lit) Lit {
	parity := false
	s := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.complement() {
			parity = !parity
			l = l.Not()
		}
		if l == Const0 {
			continue
		}
		s = append(s, l)
	}
	sortLits(s)
	v := Const0
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			i++ // x XOR x cancels
			continue
		}
		v = p.sweepNew(p.h.Xor(v, s[i]))
	}
	if parity {
		v = v.Not()
	}
	return v
}

func sortLits(s []Lit) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sweepNew brings the prover's per-node state (simulation, support, alias,
// class index) up to date with nodes the last fold step created, attempting
// a sweep merge for each, and returns l with its alias applied. Simulation
// and support derive from the node's actual children — never their aliases
// — so they stay consistent with the cone evalWord walks.
func (p *prover) sweepNew(l Lit) Lit {
	R := p.opt.SimWords
	for n := len(p.alias); n < len(p.h.nodes); n++ {
		nd := p.h.nodes[n]
		an, bn := int(nd.a.node()), int(nd.b.node())
		base := n * R
		p.simH = append(p.simH, make([]uint64, R)...)
		for r := 0; r < R; r++ {
			wa, wb := p.simH[an*R+r], p.simH[bn*R+r]
			if nd.a.complement() {
				wa = ^wa
			}
			if nd.b.complement() {
				wb = ^wb
			}
			p.simH[base+r] = wa & wb
		}
		p.supH = append(p.supH, p.unionSupport(an, bn))
		p.supBig = append(p.supBig, p.supH[n] == nil)
		p.alias = append(p.alias, Lit(uint32(n)<<1))
		if m, phase, ok := p.findEqual(uint32(n)); ok {
			p.alias[n] = Lit(m<<1) ^ phase
			p.merges++
		} else {
			p.enroll(uint32(n))
		}
	}
	return p.resolve(l)
}

// unionSupport merges the capped structural supports of two rebuild nodes;
// nil means the union exceeds MaxSupport.
func (p *prover) unionSupport(a, b int) []int32 {
	if p.supBig[a] || p.supBig[b] {
		return nil
	}
	sa, sb := p.supH[a], p.supH[b]
	out := make([]int32, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) || j < len(sb) {
		switch {
		case j >= len(sb) || (i < len(sa) && sa[i] < sb[j]):
			out = append(out, sa[i])
			i++
		case i >= len(sa) || sb[j] < sa[i]:
			out = append(out, sb[j])
			j++
		default:
			out = append(out, sa[i])
			i, j = i+1, j+1
		}
		if len(out) > p.opt.MaxSupport {
			return nil
		}
	}
	return out
}

// classKey canonicalizes a rebuild node's simulation signature: the phase
// bit (lane 0 of word 0) is normalized out so a node and its complement land
// in the same class.
func (p *prover) classKey(n uint32) (string, Lit) {
	R := p.opt.SimWords
	var phase Lit
	if p.simH[int(n)*R]&1 == 1 {
		phase = 1
	}
	buf := make([]byte, 8*R)
	for r := 0; r < R; r++ {
		w := p.simH[int(n)*R+r]
		if phase == 1 {
			w = ^w
		}
		binary.LittleEndian.PutUint64(buf[8*r:], w)
	}
	return string(buf), phase
}

func (p *prover) enroll(n uint32) {
	key, _ := p.classKey(n)
	p.class[key] = append(p.class[key], n)
}

// maxBuddies bounds how many signature classmates one sweep attempt may try
// to prove against — a guard against pathological classes of simulation
// aliases.
const maxBuddies = 8

// findEqual looks for an older rebuild node provably equal (maybe up to
// complement) to n: same canonical signature, joint support within
// MaxSupport, equality confirmed by exhaustive enumeration.
func (p *prover) findEqual(n uint32) (uint32, Lit, bool) {
	if p.supBig[n] {
		return 0, 0, false
	}
	key, phase := p.classKey(n)
	buddies := p.class[key]
	if len(buddies) > maxBuddies {
		buddies = buddies[:maxBuddies]
	}
	for _, m := range buddies {
		if p.supBig[m] {
			continue
		}
		_, mPhase := p.classKey(m)
		rel := phase ^ mPhase // n == m ^ rel if equal at all
		sup := p.jointSupport(n, m)
		if sup == nil {
			continue
		}
		if p.exhaust(Lit(n<<1), Lit(m<<1)^rel, sup) == nil {
			return m, rel, true
		}
	}
	return 0, 0, false
}

func (p *prover) jointSupport(a, b uint32) []int32 {
	return p.unionSupport(int(a), int(b))
}

// exhaust checks fa == fb over every assignment of the support variables
// (other inputs pinned to 0 — they are outside both cones' support). It
// returns nil when equal, or the first differing assignment as a full
// primary-input vector.
func (p *prover) exhaust(fa, fb Lit, sup []int32) []bool {
	k := uint(len(sup))
	total := uint64(1) << k
	vals := map[uint32]uint64{}
	inputW := make([]uint64, len(sup))
	for base := uint64(0); base < total; base += 64 {
		for j := range sup {
			switch {
			case j < 6:
				inputW[j] = varPattern[j]
			case base>>uint(j)&1 == 1:
				inputW[j] = ^uint64(0)
			default:
				inputW[j] = 0
			}
		}
		clear(vals)
		wa := p.evalWord(fa, sup, inputW, vals)
		wb := p.evalWord(fb, sup, inputW, vals)
		if diff := wa ^ wb; diff != 0 {
			lane := uint64(0)
			for diff&1 == 0 {
				diff >>= 1
				lane++
			}
			assign := base | lane
			ctr := make([]bool, p.h.nInputs)
			for j, v := range sup {
				ctr[v] = assign>>uint(j)&1 == 1
			}
			return ctr
		}
	}
	return nil
}

// varPattern[j] is the canonical 64-lane enumeration pattern of support
// variable j < 6: lane t carries bit j of assignment t.
var varPattern = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// evalWord evaluates a rebuild literal on one 64-assignment word batch:
// support variable j takes inputW[j], every other input is 0.
func (p *prover) evalWord(l Lit, sup []int32, inputW []uint64, vals map[uint32]uint64) uint64 {
	var rec func(n uint32) uint64
	rec = func(n uint32) uint64 {
		if w, ok := vals[n]; ok {
			return w
		}
		nd := p.h.nodes[n]
		var w uint64
		switch nd.kind {
		case kindConst:
			w = 0
		case kindInput:
			for j, v := range sup {
				if int(v) == nd.input {
					w = inputW[j]
					break
				}
			}
		case kindAnd:
			wa, wb := rec(nd.a.node()), rec(nd.b.node())
			if nd.a.complement() {
				wa = ^wa
			}
			if nd.b.complement() {
				wb = ^wb
			}
			w = wa & wb
		}
		vals[n] = w
		return w
	}
	w := rec(l.node())
	if l.complement() {
		w = ^w
	}
	return w
}

// table is the final decision procedure for one pair: exhaustive miter over
// the joint support when it fits MaxSupport, otherwise unproven.
func (p *prover) table(ra, rb Lit) PairVerdict {
	sup := p.jointSupport(ra.node(), rb.node())
	if sup == nil {
		return PairVerdict{Verdict: VerdictUnproven, Method: "unproven"}
	}
	p.tables++
	if ctr := p.exhaust(ra, rb, sup); ctr != nil {
		return PairVerdict{Verdict: VerdictRefuted, Method: "table", Counter: ctr}
	}
	return PairVerdict{Verdict: VerdictProven, Method: "table"}
}
