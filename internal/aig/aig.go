// Package aig implements a small and-inverter-graph logic synthesizer: it
// turns arbitrary truth tables into AND/NOT networks via memoized Shannon
// decomposition with structural hashing.
//
// Sherlock uses it to generate the bit-sliced AES S-box circuit (the role
// the Usuba bitslicing compiler plays in the paper): each of the eight
// S-box output bits is an 8-input boolean function synthesized into a
// shared gate network, which is then emitted into the workload DFG.
package aig

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"sherlock/internal/dfg"
)

// Lit is a literal: a node index with a complement flag in the low bit.
type Lit uint32

// Const0 and Const1 are the constant literals (node 0).
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

func (l Lit) node() uint32     { return uint32(l) >> 1 }
func (l Lit) complement() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// IsConst reports whether the literal is one of the constants.
func (l Lit) IsConst() bool { return l.node() == 0 }

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindInput
	kindAnd
)

type node struct {
	kind  nodeKind
	input int // kindInput: input index
	a, b  Lit // kindAnd: operands, a <= b
}

// Graph is an and-inverter graph over a fixed set of primary inputs.
type Graph struct {
	nInputs int
	nodes   []node
	strash  map[[2]Lit]Lit
	memo    map[string]Lit // truth-table -> literal, for Synthesize
}

// New returns an empty graph with n primary inputs.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("aig: negative input count %d", n))
	}
	g := &Graph{
		nInputs: n,
		nodes:   []node{{kind: kindConst}},
		strash:  make(map[[2]Lit]Lit),
		memo:    make(map[string]Lit),
	}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, node{kind: kindInput, input: i})
	}
	return g
}

// NumInputs returns the number of primary inputs.
func (g *Graph) NumInputs() int { return g.nInputs }

// NumAnds returns the number of AND nodes (circuit size).
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - g.nInputs }

// Input returns the literal of primary input i.
func (g *Graph) Input(i int) Lit {
	if i < 0 || i >= g.nInputs {
		panic(fmt.Sprintf("aig: input %d outside [0,%d)", i, g.nInputs))
	}
	return Lit(uint32(1+i) << 1)
}

// Const returns a constant literal.
func (g *Graph) Const(v bool) Lit {
	if v {
		return Const1
	}
	return Const0
}

// And returns a AND b, folding constants, idempotence, and complements, and
// sharing structurally identical nodes.
func (g *Graph) And(a, b Lit) Lit {
	switch {
	case a == Const0 || b == Const0:
		return Const0
	case a == Const1:
		return b
	case b == Const1:
		return a
	case a == b:
		return a
	case a == b.Not():
		return Const0
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := g.strash[key]; ok {
		return l
	}
	g.nodes = append(g.nodes, node{kind: kindAnd, a: a, b: b})
	l := Lit(uint32(len(g.nodes)-1) << 1)
	g.strash[key] = l
	return l
}

// Or returns a OR b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a XOR b (three AND nodes worst case).
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns sel ? hi : lo.
func (g *Graph) Mux(sel, hi, lo Lit) Lit {
	switch {
	case hi == lo:
		return hi
	case hi == Const1 && lo == Const0:
		return sel
	case hi == Const0 && lo == Const1:
		return sel.Not()
	case lo == Const0:
		return g.And(sel, hi)
	case hi == Const0:
		return g.And(sel.Not(), lo)
	case lo == Const1:
		return g.Or(sel.Not(), hi)
	case hi == Const1:
		return g.Or(sel, lo)
	}
	return g.Or(g.And(sel, hi), g.And(sel.Not(), lo))
}

// Eval computes the literal's value under the input assignment.
func (g *Graph) Eval(l Lit, inputs []bool) bool {
	if len(inputs) != g.nInputs {
		panic(fmt.Sprintf("aig: %d inputs for %d-input graph", len(inputs), g.nInputs))
	}
	vals := make([]bool, len(g.nodes))
	for i := 1; i < len(g.nodes); i++ {
		n := g.nodes[i]
		switch n.kind {
		case kindInput:
			vals[i] = inputs[n.input]
		case kindAnd:
			va := vals[n.a.node()] != n.a.complement()
			vb := vals[n.b.node()] != n.b.complement()
			vals[i] = va && vb
		}
	}
	return vals[l.node()] != l.complement()
}

// TT is a truth table over n variables: bit i of the table is the function
// value at input assignment i, where variable v contributes bit v of i.
type TT struct {
	n    int
	bits []uint64
}

// NewTT returns an all-false table over n <= 16 variables.
func NewTT(n int) TT {
	if n < 0 || n > 16 {
		panic(fmt.Sprintf("aig: unsupported truth-table arity %d", n))
	}
	words := 1
	if n > 6 {
		words = 1 << uint(n-6)
	}
	return TT{n: n, bits: make([]uint64, words)}
}

// TTFromFunc samples f over all 2^n assignments.
func TTFromFunc(n int, f func(assignment uint) bool) TT {
	t := NewTT(n)
	for i := uint(0); i < 1<<uint(n); i++ {
		if f(i) {
			t.Set(i, true)
		}
	}
	return t
}

// Get returns the function value at the assignment.
func (t TT) Get(i uint) bool {
	return t.bits[i/64]>>(i%64)&1 == 1
}

// Set sets the function value at the assignment.
func (t *TT) Set(i uint, v bool) {
	if v {
		t.bits[i/64] |= 1 << (i % 64)
	} else {
		t.bits[i/64] &^= 1 << (i % 64)
	}
}

// N returns the table's variable count.
func (t TT) N() int { return t.n }

func (t TT) key() string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(t.n))
	for _, w := range t.bits {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(w, 16))
	}
	return sb.String()
}

func (t TT) isConst() (bool, bool) {
	size := uint(1) << uint(t.n)
	ones := 0
	for i, w := range t.bits {
		if uint(i*64) >= size {
			break
		}
		valid := w
		if size-uint(i*64) < 64 {
			valid &= (1 << (size - uint(i*64))) - 1
		}
		ones += bits.OnesCount64(valid)
	}
	if ones == 0 {
		return true, false
	}
	if uint(ones) == size {
		return true, true
	}
	return false, false
}

// cofactors splits on the top variable (index n-1): lo is the function with
// x_{n-1}=0, hi with x_{n-1}=1; both over n-1 variables.
func (t TT) cofactors() (lo, hi TT) {
	m := t.n - 1
	lo, hi = NewTT(m), NewTT(m)
	half := uint(1) << uint(m)
	for i := uint(0); i < half; i++ {
		lo.Set(i, t.Get(i))
		hi.Set(i, t.Get(i+half))
	}
	return lo, hi
}

// Synthesize builds a circuit computing the truth table over the graph's
// inputs (table variable v = graph input v). Tables over fewer variables
// than the graph has inputs use the low-indexed inputs. Equal subfunctions
// are shared across calls through the graph's memo table.
func (g *Graph) Synthesize(t TT) Lit {
	if t.n > g.nInputs {
		panic(fmt.Sprintf("aig: %d-variable table on %d-input graph", t.n, g.nInputs))
	}
	if c, v := t.isConst(); c {
		return g.Const(v)
	}
	key := t.key()
	if l, ok := g.memo[key]; ok {
		return l
	}
	lo, hi := t.cofactors()
	l := g.Mux(g.Input(t.n-1), g.Synthesize(hi), g.Synthesize(lo))
	g.memo[key] = l
	return l
}

// Emit lowers the cone of out into a DFG via the builder, mapping graph
// input i to inputs[i]. Complemented edges become NOT nodes (folded and
// shared by the builder).
func (g *Graph) Emit(b *dfg.Builder, inputs []dfg.Val, out Lit) dfg.Val {
	if len(inputs) != g.nInputs {
		panic(fmt.Sprintf("aig: %d DFG inputs for %d-input graph", len(inputs), g.nInputs))
	}
	vals := make([]dfg.Val, len(g.nodes))
	have := make([]bool, len(g.nodes))
	var build func(n uint32) dfg.Val
	build = func(n uint32) dfg.Val {
		if have[n] {
			return vals[n]
		}
		nd := g.nodes[n]
		var v dfg.Val
		switch nd.kind {
		case kindConst:
			v = b.Const(false)
		case kindInput:
			v = inputs[nd.input]
		case kindAnd:
			va := build(nd.a.node())
			if nd.a.complement() {
				va = b.Not(va)
			}
			vb := build(nd.b.node())
			if nd.b.complement() {
				vb = b.Not(vb)
			}
			v = b.And(va, vb)
		}
		vals[n], have[n] = v, true
		return v
	}
	v := build(out.node())
	if out.complement() {
		v = b.Not(v)
	}
	return v
}

// EmitAll lowers several outputs, sharing the common cone.
func (g *Graph) EmitAll(b *dfg.Builder, inputs []dfg.Val, outs []Lit) []dfg.Val {
	res := make([]dfg.Val, len(outs))
	for i, o := range outs {
		res[i] = g.Emit(b, inputs, o)
	}
	return res
}
