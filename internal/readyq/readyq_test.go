package readyq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestReadyQueueFIFOWithinPriority(t *testing.T) {
	q := New(8, 4)
	q.Push(3, 1)
	q.Push(5, 1)
	q.Push(1, 1)
	want := []int32{3, 5, 1}
	for i, w := range want {
		it, p, ok := q.PopMin()
		if !ok || it != w || p != 1 {
			t.Fatalf("pop %d: got (%d,%d,%v), want (%d,1,true)", i, it, p, ok, w)
		}
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestReadyQueuePriorityOrder(t *testing.T) {
	// Differential: random pushes against a stable reference sort by
	// (priority, push sequence).
	rng := rand.New(rand.NewSource(42))
	const items, prios = 500, 300
	q := New(items, prios)
	type entry struct {
		item, prio int32
		seq        int
	}
	var ref []entry
	for i := 0; i < items; i++ {
		e := entry{item: int32(i), prio: int32(rng.Intn(prios)), seq: i}
		ref = append(ref, e)
		q.Push(e.item, e.prio)
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].prio < ref[j].prio })
	for i, e := range ref {
		it, p, ok := q.PopMin()
		if !ok || it != e.item || p != e.prio {
			t.Fatalf("pop %d: got (%d,%d,%v), want (%d,%d,true)", i, it, p, ok, e.item, e.prio)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestReadyQueueInterleavedPushPop(t *testing.T) {
	// Pops interleaved with pushes at decreasing priorities must always
	// yield the current minimum.
	q := New(64, 64)
	q.Push(10, 50)
	q.Push(11, 40)
	if it, p, _ := q.PopMin(); it != 11 || p != 40 {
		t.Fatalf("got (%d,%d), want (11,40)", it, p)
	}
	q.Push(12, 30)
	q.Push(13, 45)
	if it, p, _ := q.PopMin(); it != 12 || p != 30 {
		t.Fatalf("got (%d,%d), want (12,30)", it, p)
	}
	if it, p, _ := q.PopMin(); it != 13 || p != 45 {
		t.Fatalf("got (%d,%d), want (13,45)", it, p)
	}
	if it, p, _ := q.PopMin(); it != 10 || p != 50 {
		t.Fatalf("got (%d,%d), want (10,50)", it, p)
	}
}

func TestReadyQueueRemove(t *testing.T) {
	q := New(16, 16)
	for i := int32(0); i < 6; i++ {
		q.Push(i, i%3)
	}
	// Chains: prio0 {0,3}, prio1 {1,4}, prio2 {2,5}.
	q.Remove(0) // head of its chain
	q.Remove(4) // tail of its chain
	q.Remove(2) // sole predecessor case after removal below
	if q.Contains(0) || q.Contains(4) || q.Contains(2) {
		t.Fatal("removed item still reported queued")
	}
	var got []int32
	for {
		it, _, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, it)
	}
	want := []int32{3, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReadyQueueMinPeek(t *testing.T) {
	q := New(8, 2048)
	if _, _, ok := q.Min(); ok {
		t.Fatal("Min on empty queue reported ok")
	}
	q.Push(7, 2000)
	q.Push(3, 65) // different summary word than 2000
	if it, p, ok := q.Min(); !ok || it != 3 || p != 65 {
		t.Fatalf("Min = (%d,%d,%v), want (3,65,true)", it, p, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Min must not consume; len = %d", q.Len())
	}
}

func TestReadyQueueWideSummary(t *testing.T) {
	// More than 4096 priorities exercises the multi-word summary scan.
	const prios = 5000
	q := New(4, prios)
	q.Push(0, prios-1)
	q.Push(1, 4097)
	if it, p, _ := q.PopMin(); it != 1 || p != 4097 {
		t.Fatalf("got (%d,%d), want (1,4097)", it, p)
	}
	if it, p, _ := q.PopMin(); it != 0 || p != prios-1 {
		t.Fatalf("got (%d,%d), want (0,%d)", it, p, prios-1)
	}
}

func TestReadyQueueResetReuse(t *testing.T) {
	q := Get(32, 32)
	q.Push(1, 5)
	q.Push(2, 9)
	// Abandon non-empty, then Reset: the queue must come back clean.
	q.Reset(64, 64)
	if q.Len() != 0 {
		t.Fatalf("reset queue has len %d", q.Len())
	}
	q.Push(40, 63) // exercises the grown regions
	if it, p, _ := q.PopMin(); it != 40 || p != 63 {
		t.Fatalf("got (%d,%d), want (40,63)", it, p)
	}
	Put(q)
}

func TestReadyQueueSteadyStateAllocs(t *testing.T) {
	q := New(1024, 256)
	allocs := testing.AllocsPerRun(100, func() {
		q.Reset(1024, 256)
		for i := int32(0); i < 1024; i++ {
			q.Push(i, i&255)
		}
		for q.Len() > 0 {
			q.PopMin()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocated %.1f times, want 0", allocs)
	}
}

func TestReadyQueuePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	q := New(4, 4)
	expectPanic("item range", func() { q.Push(4, 0) })
	expectPanic("prio range", func() { q.Push(0, 4) })
	q.Push(0, 0)
	expectPanic("double push", func() { q.Push(0, 1) })
	expectPanic("remove unqueued", func() { q.Remove(1) })
}
