// Package readyq implements the hierarchical bitmap priority queue behind
// Sherlock's event-driven schedulers.
//
// A Queue holds dense int32 item IDs bucketed by a small non-negative
// priority (b-levels on the DFG side, dispatch times on the instruction
// side — both bounded by the DFG depth, so bucketing is dense and exact).
// Occupancy is tracked by a two-tier summary bitmap: one bit per priority
// in the bucket tier, one bit per bucket word in the summary tier. Bits
// are stored most-significant-first (priority p of a word sits at bit
// 63-(p&63)), so bits.LeadingZeros64 jumps straight to the minimum — the
// CLZ find-min idiom. Find-min and extract-min are O(1) for up to 4096
// priorities (one summary word); beyond that only the summary scan grows,
// by one word per 4096 priorities.
//
// Items within one priority form an intrusive doubly-linked FIFO chain
// (head/tail per bucket, next/prev per item), giving O(1) insert at the
// tail, O(1) pop at the head, and O(1) removal from the middle. All state
// lives in flat arrays indexed by item ID and priority; a drained queue is
// clean by construction, so pooled reuse via Get/Put only pays for growth,
// never for clearing.
package readyq

import (
	"fmt"
	"math/bits"
	"sync"
)

// Queue is a bucket priority queue over int32 item IDs. The zero value is
// unusable; construct with New or Get.
type Queue struct {
	// Bucket tier: bit 63-(p&63) of words[p>>6] is set iff bucket p is
	// non-empty. Summary tier: bit 63-(w&63) of summary[w>>6] is set iff
	// words[w] != 0.
	words   []uint64
	summary []uint64

	head, tail []int32 // per priority: FIFO chain ends (-1 when empty)
	next, prev []int32 // per item: chain links
	bucket     []int32 // per item: current priority, -1 when absent

	numItems int
	numPrios int
	size     int
}

// New returns a queue for item IDs in [0, items) and priorities in
// [0, priorities).
func New(items, priorities int) *Queue {
	q := &Queue{}
	q.Reset(items, priorities)
	return q
}

var pool = sync.Pool{New: func() any { return &Queue{} }}

// Get returns a pooled queue reset for the given capacity.
func Get(items, priorities int) *Queue {
	q := pool.Get().(*Queue)
	q.Reset(items, priorities)
	return q
}

// Put returns a queue to the pool.
func Put(q *Queue) { pool.Put(q) }

// Reset re-dimensions the queue and empties it. Backing arrays are reused
// when large enough; a queue that was drained to empty needs no clearing
// beyond the newly grown regions.
func (q *Queue) Reset(items, priorities int) {
	if items < 0 || priorities < 0 {
		panic(fmt.Sprintf("readyq: negative capacity %d/%d", items, priorities))
	}
	if q.size != 0 {
		// Abandoned non-empty queue: drain so the invariant "empty queue
		// has clean arrays" is restored before reuse.
		for q.size > 0 {
			q.PopMin()
		}
	}
	nw := (priorities + 63) / 64
	ns := (nw + 63) / 64
	q.words = growZero(q.words, nw)
	q.summary = growZero(q.summary, ns)
	q.head = growNeg(q.head, priorities)
	q.tail = growNeg(q.tail, priorities)
	q.next = growNeg(q.next, items)
	q.prev = growNeg(q.prev, items)
	q.bucket = growNeg(q.bucket, items)
	q.numItems = items
	q.numPrios = priorities
}

// growZero extends s to n entries; newly exposed entries are zero. Entries
// below the previous length are trusted clean (drained-queue invariant).
func growZero(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]uint64, n)
	copy(out, s)
	return out
}

// growNeg extends s to n entries; newly exposed entries are -1.
func growNeg(s []int32, n int) []int32 {
	old := len(s)
	if cap(s) >= n {
		s = s[:n]
	} else {
		out := make([]int32, n)
		copy(out, s)
		for i := old; i < n; i++ {
			out[i] = -1
		}
		return out
	}
	for i := old; i < n; i++ {
		s[i] = -1
	}
	return s
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.size }

// Contains reports whether the item is currently queued.
func (q *Queue) Contains(item int32) bool { return q.bucket[item] >= 0 }

// Push appends the item to the FIFO chain of the given priority. Pushing
// an item that is already queued is a programming error and panics.
func (q *Queue) Push(item, prio int32) {
	if item < 0 || int(item) >= q.numItems {
		panic(fmt.Sprintf("readyq: item %d out of range [0,%d)", item, q.numItems))
	}
	if prio < 0 || int(prio) >= q.numPrios {
		panic(fmt.Sprintf("readyq: priority %d out of range [0,%d)", prio, q.numPrios))
	}
	if q.bucket[item] >= 0 {
		panic(fmt.Sprintf("readyq: item %d already queued at priority %d", item, q.bucket[item]))
	}
	q.bucket[item] = prio
	q.next[item] = -1
	if t := q.tail[prio]; t >= 0 {
		q.prev[item] = t
		q.next[t] = item
		q.tail[prio] = item
	} else {
		q.prev[item] = -1
		q.head[prio] = item
		q.tail[prio] = item
		w := prio >> 6
		q.words[w] |= 1 << (63 - uint(prio&63))
		q.summary[w>>6] |= 1 << (63 - uint(w&63))
	}
	q.size++
}

// Min returns the head item of the lowest non-empty priority without
// removing it.
func (q *Queue) Min() (item, prio int32, ok bool) {
	p, ok := q.minPrio()
	if !ok {
		return -1, -1, false
	}
	return q.head[p], p, true
}

// minPrio locates the lowest set bit position: a linear scan over the
// summary tier (one word per 4096 priorities, so a single iteration for
// every DFG this repo has ever seen) and two CLZ hops.
func (q *Queue) minPrio() (int32, bool) {
	for s, sw := range q.summary {
		if sw == 0 {
			continue
		}
		w := s<<6 + bits.LeadingZeros64(sw)
		return int32(w<<6 + bits.LeadingZeros64(q.words[w])), true
	}
	return -1, false
}

// PopMin removes and returns the head item of the lowest non-empty
// priority. FIFO order within a priority makes the pop sequence — and
// everything scheduled off it — deterministic.
func (q *Queue) PopMin() (item, prio int32, ok bool) {
	p, ok := q.minPrio()
	if !ok {
		return -1, -1, false
	}
	it := q.head[p]
	q.unlink(it, p)
	return it, p, true
}

// Remove unlinks a queued item from wherever it sits, in O(1). Removing an
// item that is not queued is a programming error and panics.
func (q *Queue) Remove(item int32) {
	p := q.bucket[item]
	if p < 0 {
		panic(fmt.Sprintf("readyq: remove of unqueued item %d", item))
	}
	q.unlink(item, p)
}

func (q *Queue) unlink(item, prio int32) {
	nx, pv := q.next[item], q.prev[item]
	if pv >= 0 {
		q.next[pv] = nx
	} else {
		q.head[prio] = nx
	}
	if nx >= 0 {
		q.prev[nx] = pv
	} else {
		q.tail[prio] = pv
	}
	q.next[item], q.prev[item], q.bucket[item] = -1, -1, -1
	if q.head[prio] < 0 {
		w := prio >> 6
		q.words[w] &^= 1 << (63 - uint(prio&63))
		if q.words[w] == 0 {
			q.summary[w>>6] &^= 1 << (63 - uint(w&63))
		}
	}
	q.size--
}
