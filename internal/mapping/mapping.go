// Package mapping implements Sherlock's two mapping/scheduling algorithms:
// the naive column-major baseline (Algorithm 1) and the optimized
// cluster-based mapper (Algorithm 2), including the cross-cluster
// instruction-merging optimization of Sec. 3.3.3.
//
// Both mappers take a DFG and a target description and produce a memory
// layout (operand -> cell) plus the instruction program that executes the
// DFG on the scouting-logic CIM array.
package mapping

import (
	"fmt"
	"sync"

	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// Options configures a mapping run.
type Options struct {
	Target layout.Target

	// Alpha and Beta weight the cluster-assignment score (Eq. 1): Alpha
	// scales the dependency/priority affinity, Beta the load-balancing
	// penalty on cluster size. Zero values select the defaults.
	Alpha, Beta float64

	// PaperEq1 applies the score exactly as printed in the paper
	// (β·|C| + α·Σρ). The printed form contradicts the surrounding prose
	// (see DESIGN.md); it is kept as an ablation knob.
	PaperEq1 bool

	// RecycleRows enables liveness-driven row reuse: once every consumer
	// of an intermediate operand has executed, its cells return to their
	// columns' free pools. This stretches the limited array capacity the
	// paper highlights (Sec. 2.2, "array sizes can not be arbitrarily
	// large") at no instruction cost.
	RecycleRows bool

	// WearLeveling rotates through recycled rows FIFO instead of reusing
	// the most recently freed one, spreading programming cycles across
	// cells (endurance; only meaningful with RecycleRows).
	WearLeveling bool

	// IssueWindow bounds how many ready ops the mappers pull from the
	// event-driven ready queue per wave (see dfg.ReadyWalker): an op's
	// consumers become eligible no earlier than the wave after its own,
	// so dependence order holds for any window. Zero selects the default
	// of 64; 1 degenerates to pure priority order.
	IssueWindow int

	// LegacyLevelScheduler selects the pre-PR-6 scheduling pipeline: ops
	// consumed in the fully pre-sorted priority order (b-level desc, ID
	// asc) and instructions merged under strict ASAP level barriers. Kept
	// as an ablation knob and as the reference side of the differential
	// scheduler tests.
	LegacyLevelScheduler bool
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 0.25
	}
	if o.IssueWindow == 0 {
		o.IssueWindow = 64
	}
	return o
}

// forEachOp drives a mapper loop over the graph's ops in scheduling order:
// event-driven ready dispatch in bounded issue windows by default, or the
// legacy pre-sorted priority order under Options.LegacyLevelScheduler.
func forEachOp(g *dfg.Graph, opt Options, fn func(op dfg.NodeID) error) error {
	if opt.LegacyLevelScheduler {
		for _, op := range g.OpsByPrioritySorted() {
			if err := fn(op); err != nil {
				return err
			}
		}
		return nil
	}
	w := g.NewReadyWalker()
	defer w.Close()
	for {
		batch := w.Next(opt.IssueWindow)
		if batch == nil {
			return nil
		}
		for _, op := range batch {
			if err := fn(op); err != nil {
				return err
			}
		}
	}
}

// Stats summarizes what a mapping run did.
type Stats struct {
	Copies       int // cross-column operand copies inserted
	ColumnsUsed  int
	Clusters     int // optimized mapper only
	MergedAway   int // instructions eliminated by cross-cluster merging
	Instructions int
	RecycledRows int // allocations served from released rows
}

// Result is a completed mapping: the program, the layout it addresses, and
// bookkeeping for result readout.
type Result struct {
	Program isa.Program
	Layout  *layout.Layout
	Graph   *dfg.Graph
	Stats   Stats
}

// OutputPlace returns the cell to read a kernel output from.
func (r *Result) OutputPlace(output dfg.NodeID) (layout.Place, error) {
	p, ok := r.Layout.Home(output)
	if !ok {
		return layout.Place{}, fmt.Errorf("mapping: output %q was never placed", r.Graph.Name(output))
	}
	return p, nil
}

// intArena hands out small []int backings for emitted instructions from
// large chunks, collapsing the two allocations per instruction (Cols,
// Rows) into one per few thousand. The chunks stay reachable from the
// emitted program, which owns them from then on.
type intArena struct {
	free []int
}

func (a *intArena) alloc(n int) []int {
	if len(a.free) < n {
		size := 4096
		if n > size {
			size = n
		}
		a.free = make([]int, size)
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}

func (a *intArena) one(x int) []int {
	s := a.alloc(1)
	s[0] = x
	return s
}

// emitter holds the shared code-generation state of both mappers.
type emitter struct {
	g      *dfg.Graph
	lay    *layout.Layout
	prog   isa.Program
	copies int
	arena  intArena

	// Reusable per-op scratch for the mapper loops.
	insBuf    []dfg.NodeID
	placesBuf []layout.Place
	retireBuf []dfg.NodeID

	// Row recycling (Options.RecycleRows): remaining consumer count per
	// operand (indexed by NodeID, nil when recycling is off); when it
	// reaches zero for a non-output operand, its cells are released for
	// reuse.
	consumersLeft []int32
}

// progPool recycles instruction buffers between mapper calls. The
// optimized mapper discards its pre-merge program once MergeInstructions
// has rebuilt it, so the multi-megabyte backing can be reused instead of
// re-allocated (and re-zeroed) on every compile.
var progPool = sync.Pool{New: func() any { return new(isa.Program) }}

// releaseProg returns a dead program buffer to the pool. Callers must not
// retain any slice aliasing its backing array.
func releaseProg(p isa.Program) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	progPool.Put(&p)
}

func newEmitter(g *dfg.Graph, t layout.Target, recycle, wearLevel bool) *emitter {
	e := &emitter{g: g, lay: layout.New(t)}
	// Roughly four instructions per op (read, align, write) plus copies;
	// one up-front allocation in the right ballpark beats letting append
	// double a multi-megabyte program several times over.
	want := 5*g.NumOps() + 64
	e.prog = (*progPool.Get().(*isa.Program))[:0]
	if cap(e.prog) < want {
		e.prog = make(isa.Program, 0, want)
	}
	e.lay.WearLeveling = wearLevel
	if recycle {
		e.consumersLeft = make([]int32, g.NumNodes())
		for _, operand := range g.Operands() {
			e.consumersLeft[operand] = int32(g.NumConsumers(operand))
		}
	}
	return e
}

// retireInputs decrements the consumer counts of an executed op's inputs,
// releasing operands whose last consumer just ran. Kernel outputs are never
// released (they must survive for host readout).
func (e *emitter) retireInputs(op dfg.NodeID) {
	if e.consumersLeft == nil {
		return
	}
	e.retireBuf = e.g.AppendOpInputs(op, e.retireBuf[:0])
	for _, in := range e.retireBuf {
		e.consumersLeft[in]--
		if e.consumersLeft[in] == 0 && !e.g.IsOutput(in) {
			e.lay.Release(in)
		}
	}
}

func (e *emitter) emit(in isa.Instruction) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("mapping: generated invalid instruction %s: %w", in, err)
	}
	e.prog = append(e.prog, in)
	return nil
}

// ensureInColumn guarantees the operand has a cell in the given column,
// emitting the host write or copy instructions needed, and returns that
// cell.
func (e *emitter) ensureInColumn(operand dfg.NodeID, col layout.ColumnRef) (layout.Place, error) {
	if p, ok := e.lay.InColumn(operand, col); ok {
		return p, nil
	}
	home, placed := e.lay.Home(operand)
	if !placed {
		// First materialization. Only kernel inputs may be unplaced at
		// use time; intermediates are placed by their producer's
		// write-back.
		if e.g.Producer(operand) != dfg.NoNode {
			return layout.Place{}, fmt.Errorf("mapping: intermediate %q used before produced", e.g.Name(operand))
		}
		p, err := e.lay.Alloc(operand, col)
		if err != nil {
			return layout.Place{}, err
		}
		err = e.emit(isa.Instruction{
			Kind:     isa.KindWrite,
			Array:    p.Array,
			Cols:     e.arena.one(p.Col),
			Rows:     e.arena.one(p.Row),
			Bindings: []string{e.g.Name(operand)},
		})
		return p, err
	}
	// Copy from home: load into the home array's row buffer, align
	// columns, then write (possibly across arrays).
	dup, err := e.lay.Alloc(operand, col)
	if err != nil {
		return layout.Place{}, err
	}
	if err := e.emit(isa.Instruction{
		Kind:  isa.KindRead,
		Array: home.Array,
		Cols:  e.arena.one(home.Col),
		Rows:  e.arena.one(home.Row),
	}); err != nil {
		return layout.Place{}, err
	}
	if err := e.emitAlignAndWrite(home.Array, home.Col, dup); err != nil {
		return layout.Place{}, err
	}
	e.copies++
	return dup, nil
}

// inputPlace returns a cell holding the operand without forcing it into
// col: its home if it has one, otherwise (kernel inputs) it is materialized
// in col via a host write.
func (e *emitter) inputPlace(operand dfg.NodeID, col layout.ColumnRef) (layout.Place, error) {
	if p, ok := e.lay.Home(operand); ok {
		return p, nil
	}
	return e.ensureInColumn(operand, col)
}

// emitAlignAndWrite shifts the srcArray row buffer so that the bit at
// srcCol lands on dst.Col, then writes it to dst (cross-array when needed).
func (e *emitter) emitAlignAndWrite(srcArray, srcCol int, dst layout.Place) error {
	if d := dst.Col - srcCol; d != 0 {
		if err := e.emit(isa.Instruction{
			Kind:    isa.KindShift,
			Array:   srcArray,
			Right:   d > 0,
			ShiftBy: abs(d),
		}); err != nil {
			return err
		}
	}
	w := isa.Instruction{
		Kind:  isa.KindWrite,
		Array: dst.Array,
		Cols:  e.arena.one(dst.Col),
		Rows:  e.arena.one(dst.Row),
	}
	if dst.Array != srcArray {
		w.HasSrcArray, w.SrcArray = true, srcArray
	}
	return e.emit(w)
}

// emitOp generates the instructions computing one op node with all its
// inputs already resident in column col, allocating and writing back the
// output there. inputPlaces must lie in col.
func (e *emitter) emitOp(op dfg.NodeID, col layout.ColumnRef, inputPlaces []layout.Place) error {
	out := e.g.OpOutput(op)
	outPlace, err := e.lay.Alloc(out, col)
	if err != nil {
		return err
	}
	t := e.g.OpType(op)
	if t.IsUnary() {
		in := inputPlaces[0]
		if err := e.emit(isa.Instruction{
			Kind:  isa.KindRead,
			Array: in.Array,
			Cols:  e.arena.one(in.Col),
			Rows:  e.arena.one(in.Row),
		}); err != nil {
			return err
		}
		if t == logic.Not {
			if err := e.emit(isa.Instruction{
				Kind:  isa.KindNot,
				Array: in.Array,
				Cols:  e.arena.one(in.Col),
			}); err != nil {
				return err
			}
		}
		return e.emitAlignAndWrite(in.Array, in.Col, outPlace)
	}

	rows := e.arena.alloc(len(inputPlaces))
	for i, p := range inputPlaces {
		if p.Array != col.Array || p.Col != col.Col {
			return fmt.Errorf("mapping: operand of %q not in sense column", e.g.Name(op))
		}
		rows[i] = p.Row
	}
	sortInts(rows)
	for i := 1; i < len(rows); i++ {
		if rows[i] == rows[i-1] {
			return fmt.Errorf("mapping: op %q activates row %d twice (duplicate operand)", e.g.Name(op), rows[i])
		}
	}
	if err := e.emit(isa.Instruction{
		Kind:  isa.KindRead,
		Array: col.Array,
		Cols:  e.arena.one(col.Col),
		Rows:  rows,
		Ops:   []logic.Op{t},
	}); err != nil {
		return err
	}
	return e.emit(isa.Instruction{
		Kind:  isa.KindWrite,
		Array: outPlace.Array,
		Cols:  e.arena.one(outPlace.Col),
		Rows:  e.arena.one(outPlace.Row),
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// columnSeq enumerates target columns in array-major order.
type columnSeq struct {
	t   layout.Target
	idx int
}

func (s *columnSeq) current() layout.ColumnRef {
	return layout.ColumnRef{Array: s.idx / s.t.Cols, Col: s.idx % s.t.Cols}
}

func (s *columnSeq) advance() error {
	s.idx++
	if s.idx >= s.t.Arrays*s.t.Cols {
		return fmt.Errorf("mapping: target capacity exhausted (%d columns)", s.t.Arrays*s.t.Cols)
	}
	return nil
}

// columnAt returns the i-th column in array-major order.
func columnAt(t layout.Target, i int) (layout.ColumnRef, error) {
	if i < 0 || i >= t.Arrays*t.Cols {
		return layout.ColumnRef{}, fmt.Errorf("mapping: column index %d outside target", i)
	}
	return layout.ColumnRef{Array: i / t.Cols, Col: i % t.Cols}, nil
}

func validateInput(g *dfg.Graph, t layout.Target) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("mapping: invalid graph: %w", err)
	}
	st := g.ComputeStats()
	if st.MaxArity+1 > t.Rows {
		return fmt.Errorf("mapping: op arity %d cannot fit a %d-row column", st.MaxArity, t.Rows)
	}
	if st.Ops == 0 {
		return fmt.Errorf("mapping: graph has no operations")
	}
	return nil
}
