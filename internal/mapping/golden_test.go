package mapping_test

import (
	"os"
	"path/filepath"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// TestGoldenPrograms pins the exact instruction text both mappers emit for a
// representative workload set (single- and multi-array targets, with and
// without row recycling). The golden files under testdata were generated
// before the allocation-free fast path landed, so a pass here proves the
// rewritten hazard analysis, merge bucketing, and cluster engine reproduce
// the historical output byte for byte. Regenerate deliberately with
// `go run ./internal/mapping/goldengen internal/mapping/testdata`.
func TestGoldenPrograms(t *testing.T) {
	must := func(g *dfg.Graph, err error) *dfg.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct {
		name string
		g    *dfg.Graph
		opt  mapping.Options
	}{
		{"bitweaving", must(bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 8})),
			mapping.Options{Target: layout.Target{Arrays: 1, Rows: 256, Cols: 256}}},
		{"sobel", must(sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128})),
			mapping.Options{Target: layout.Target{Arrays: 1, Rows: 128, Cols: 128}}},
		{"sobel_recycle", must(sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128})),
			mapping.Options{Target: layout.Target{Arrays: 1, Rows: 64, Cols: 512}, RecycleRows: true}},
		{"aes", must(aes.Build(aes.Config{Rounds: 2})),
			mapping.Options{Target: layout.Target{Arrays: 4, Rows: 512, Cols: 512}}},
	}
	for _, c := range cases {
		for _, mode := range []string{"naive", "opt"} {
			t.Run(c.name+"/"+mode, func(t *testing.T) {
				var res *mapping.Result
				var err error
				if mode == "naive" {
					res, err = mapping.Naive(c.g, c.opt)
				} else {
					res, err = mapping.Optimized(c.g, c.opt)
				}
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(filepath.Join("testdata", c.name+"_"+mode+".golden"))
				if err != nil {
					t.Fatal(err)
				}
				got := res.Program.String()
				if got != string(want) {
					t.Fatalf("emitted program differs from pinned golden (%d vs %d bytes); if the change is intentional, regenerate with `go run ./internal/mapping/goldengen internal/mapping/testdata`",
						len(got), len(want))
				}
				// Every emitted program is verifier-clean by construction —
				// and not just error-free: the mappers consume every buffer
				// value they load and never shadow a live cell, so the
				// pinned bar is zero findings at ANY severity.
				if rep := verify.Program(res.Program, c.opt.Target); len(rep.Findings) != 0 {
					for _, f := range rep.Findings[:min(len(rep.Findings), 10)] {
						t.Errorf("verifier finding: %v", f)
					}
					t.Fatalf("emitted program has %d static findings; the mapper regressed", len(rep.Findings))
				}
			})
		}
	}
}
