package mapping

import (
	"bytes"
	"math"
	"slices"
	"strconv"
	"sync"

	"sherlock/internal/isa"
	"sherlock/internal/logic"
	"sherlock/internal/readyq"
)

// MergeInstructions implements the instruction-merging optimization of
// Sec. 3.3.3: instructions in different columns that activate the same rows
// fuse into one instruction carrying a per-column operation list.
//
// Scheduling is hazard-gated ready dispatch, not a strict level barrier.
// Two passes over the dependence structure (cells and per-column row-buffer
// bits as resources; shifts touch their whole array's buffer) bound each
// instruction's dispatch window:
//
//   - a forward pass assigns the earliest level at which its last RAW/WAW/
//     WAR hazard has retired (its ready time), and
//   - a backward pass assigns the minimum ready time over its hazard
//     successors (its deadline).
//
// An instruction may issue at any time in [ready, deadline); within that
// slack it can fuse with a compatible group that became ready earlier:
//
//   - scouting reads with identical array and row set,
//   - plain reads with identical array and row,
//   - writes with identical array, row, and data source,
//   - row-buffer NOTs on the same array,
//
// provided the group's columns stay disjoint. Instructions whose slack does
// not reach an existing group open a new one at their own ready time, so
// every strict-level merge of the legacy scheduler still happens and
// cross-level fusion only ever removes further instructions — the merged
// program never exceeds the legacy count. Merged groups are dispatched
// through a bitmap ready queue (internal/readyq) keyed by issue time; group
// order within one time reproduces the lexicographic order of the
// historical string keys.
//
// It returns the merged program and the number of instructions eliminated.
//
// The pass runs on dense data structures throughout: hazard state lives in
// flat arrays indexed by interned resource IDs (see isa.Space) with
// per-array shift summaries making whole-buffer shifts O(1) instead of
// O(columns), merge signatures are comparable structs bucketed by hash, and
// all scratch is pooled — one call allocates only the output program.
func MergeInstructions(p isa.Program) (isa.Program, int) {
	if len(p) == 0 {
		return p, 0
	}
	space := p.ResourceSpace()

	ms := mergePool.Get().(*mergeScratch)
	defer mergePool.Put(ms)
	ms.levels = grow(ms.levels, len(p))
	ms.slack = grow(ms.slack, len(p))

	h := hazardPool.Get().(*hazardScratch)
	h.begin(space.Size(), space.Arrays)
	maxLevel := forwardLevels(p, space, h, ms.levels)
	h.begin(space.Size(), space.Arrays)
	backwardSlack(p, space, h, ms.levels, ms.slack)
	hazardPool.Put(h)

	ms.beginGroups(len(p), space)
	for i := range p {
		in := &p[i]
		if in.Kind == isa.KindShift {
			// Shifts never merge: a private group, bypassing the lookup.
			sid := int32(len(ms.sigs))
			ms.sigs = append(ms.sigs, mergeSig{kind: isa.KindShift, shiftIdx: int32(i)})
			ms.newGroup(sid, nil, int32(i), ms.levels[i], noGroupKey)
			continue
		}
		sig := makeSig(in, i)
		// Intern the signature once (one wide-key map op per instruction),
		// then probe issue times from the instruction's own ready level
		// upward with cheap word-keyed lookups: at most one group exists
		// per (signature, time) — same-class instructions are mutually
		// column-disjoint and a delayed joiner whose columns a class member
		// needs is always cut off by its own deadline first. The probe
		// window bounds how far an instruction chases a fusion partner
		// into its slack; beyond it a new group opens at its own level.
		sid, ok := ms.sigID[sig]
		if !ok {
			sid = int32(len(ms.sigs))
			ms.sigs = append(ms.sigs, sig)
			ms.sigID[sig] = sid
		}
		base := uint64(sid) << 32
		L := ms.levels[i]
		maxT := ms.slack[i] - 1
		if maxT > L+mergeProbeWindow {
			maxT = L + mergeProbeWindow
		}
		gid := int32(-1)
		for t := L; t <= maxT; t++ {
			id, ok := ms.groupAt[base|uint64(uint32(t))]
			if !ok {
				continue
			}
			g := &ms.groups[id]
			if in.Kind == isa.KindRead && !slices.Equal(in.Rows, g.rows) {
				continue // FNV collision: same hash, different row set
			}
			if ms.colConflict(id, in, space) {
				continue // fail safe; see the birth argument above
			}
			gid = id
			break
		}
		if gid < 0 {
			gid = ms.newGroup(sid, in.Rows, int32(i), L, base|uint64(uint32(L)))
		} else {
			g := &ms.groups[gid]
			ms.memberNext[g.tail] = int32(i)
			ms.memberNext[i] = -1
			g.tail = int32(i)
			g.count++
		}
		ms.stampCols(gid, in, space)
	}

	// Dispatch groups by issue time through the bitmap ready queue. Every
	// group emits exactly one instruction (or its members verbatim through
	// the fail safe, which never fires in practice), so the output size is
	// known here.
	out := make(isa.Program, 0, len(ms.groups))
	q := readyq.Get(len(ms.groups), int(maxLevel)+1)
	for id := range ms.groups {
		q.Push(int32(id), ms.groups[id].time)
	}
	for q.Len() > 0 {
		_, t, _ := q.Min()
		ms.order = ms.order[:0]
		for {
			id, pt, ok := q.Min()
			if !ok || pt != t {
				break
			}
			q.PopMin()
			ms.order = append(ms.order, id)
		}
		slices.SortFunc(ms.order, func(a, b int32) int {
			ga, gb := &ms.groups[a], &ms.groups[b]
			return cmpSigRows(&ms.sigs[ga.sig], ga.rows, &ms.sigs[gb.sig], gb.rows)
		})
		for _, gid := range ms.order {
			g := &ms.groups[gid]
			ms.members = ms.members[:0]
			for m := g.head; m >= 0; m = ms.memberNext[m] {
				ms.members = append(ms.members, m)
			}
			out = ms.appendMerged(out, p, ms.members)
		}
	}
	readyq.Put(q)
	return out, len(p) - len(out)
}

// mergeProgram dispatches to the ready-dispatch merger or, under the
// LegacyLevelScheduler ablation knob, the strict level-barrier merger.
func mergeProgram(p isa.Program, opt Options) (isa.Program, int) {
	if opt.LegacyLevelScheduler {
		return mergeInstructionsLegacy(p)
	}
	return MergeInstructions(p)
}

// mergeInstructionsLegacy is the pre-PR-6 merger: instructions are grouped
// under strict ASAP level barriers, so only instructions of exactly the
// same dependence level can fuse. Retained as the reference side of the
// differential scheduler tests and the scheduling ablation.
func mergeInstructionsLegacy(p isa.Program) (isa.Program, int) {
	if len(p) == 0 {
		return p, 0
	}
	space := p.ResourceSpace()

	ms := mergePool.Get().(*mergeScratch)
	defer mergePool.Put(ms)
	ms.levels = grow(ms.levels, len(p))

	h := hazardPool.Get().(*hazardScratch)
	h.begin(space.Size(), space.Arrays)
	maxLevel := forwardLevels(p, space, h, ms.levels)
	hazardPool.Put(h)
	levels := ms.levels

	// Group instruction indices by level with one counting sort.
	ms.levelStart = grow(ms.levelStart, int(maxLevel)+2)
	for i := range ms.levelStart {
		ms.levelStart[i] = 0
	}
	for _, l := range levels {
		ms.levelStart[l+1]++
	}
	for l := 1; l < len(ms.levelStart); l++ {
		ms.levelStart[l] += ms.levelStart[l-1]
	}
	ms.byLevel = grow(ms.byLevel, len(p))
	ms.cursor = grow(ms.cursor, int(maxLevel)+1)
	copy(ms.cursor, ms.levelStart[:maxLevel+1])
	for i, l := range levels {
		ms.byLevel[ms.cursor[l]] = int32(i)
		ms.cursor[l]++
	}

	out := make(isa.Program, 0, len(p))
	for l := int32(0); l <= maxLevel; l++ {
		idxs := ms.byLevel[ms.levelStart[l]:ms.levelStart[l+1]]
		out = ms.mergeLevel(out, p, idxs)
	}
	return out, len(p) - len(out)
}

// mergeSig is the comparable bucket key replacing the historical
// "R/%d/%s"-style strings. Reads discriminate on the hashed row set (the
// astronomically unlikely hash collision is split by comparing the actual
// row lists within a chain), writes on destination row and data source,
// shifts on their own index so they never merge.
type mergeSig struct {
	kind     isa.Kind
	array    int32
	row      int32  // writes: destination row
	src      int32  // writes: srcBuf, srcHost, or the source array id
	rowsLen  int32  // reads: number of activated rows
	rowsHash uint64 // reads: FNV-1a over the row list
	salt     int32  // reads: bumped on hash collision (legacy path only)
	shiftIdx int32  // shifts: instruction index (unique bucket)
}

// Write data-source classes. Their numeric order is irrelevant — ordering
// goes through srcRank which reproduces the "buf" < "host" < "x%d" string
// order.
const (
	srcBuf  int32 = -1
	srcHost int32 = -2
)

func makeSig(in *isa.Instruction, idx int) mergeSig {
	switch in.Kind {
	case isa.KindRead:
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for _, r := range in.Rows {
			h ^= uint64(r)
			h *= 1099511628211
		}
		return mergeSig{kind: isa.KindRead, array: int32(in.Array), rowsLen: int32(len(in.Rows)), rowsHash: h}
	case isa.KindWrite:
		src := srcBuf
		if in.IsHostWrite() {
			src = srcHost
		} else if in.HasSrcArray {
			src = int32(in.SrcArray)
		}
		return mergeSig{kind: isa.KindWrite, array: int32(in.Array), row: int32(in.Rows[0]), src: src}
	case isa.KindNot:
		return mergeSig{kind: isa.KindNot, array: int32(in.Array)}
	default: // shifts never merge
		return mergeSig{kind: isa.KindShift, shiftIdx: int32(idx)}
	}
}

// kindRank returns the first byte of the historical string key, the
// major sort criterion: 'N' < 'R' < 'S' < 'W'.
func kindRank(k isa.Kind) byte {
	switch k {
	case isa.KindNot:
		return 'N'
	case isa.KindRead:
		return 'R'
	case isa.KindShift:
		return 'S'
	default:
		return 'W'
	}
}

// cmpIntLex compares two non-negative integers as their decimal strings
// (so 10 < 2, matching the lexicographic order the string keys had). The
// digit buffers live on the stack.
func cmpIntLex(a, b int32) int {
	if a == b {
		return 0
	}
	var ab, bb [12]byte
	as := strconv.AppendInt(ab[:0], int64(a), 10)
	bs := strconv.AppendInt(bb[:0], int64(b), 10)
	return bytes.Compare(as, bs)
}

// cmpRowsLex compares two row lists the way their comma-joined decimal
// strings compare. Element-wise decimal comparison is exact here because
// ',' sorts below every digit, so a list that is a strict prefix of
// another always compares lower — the same tie-break the joined string
// had.
func cmpRowsLex(a, b []int) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := cmpIntLex(int32(a[i]), int32(b[i])); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// srcRank maps a write's data source to its position in the historical
// "buf" < "host" < "x%d" string order.
func srcRank(src int32) int {
	switch src {
	case srcBuf:
		return 0
	case srcHost:
		return 1
	default:
		return 2
	}
}

// cmpSigRows reproduces sort.Strings over the historical key strings.
func cmpSigRows(a *mergeSig, arows []int, b *mergeSig, brows []int) int {
	ra, rb := kindRank(a.kind), kindRank(b.kind)
	if ra != rb {
		return int(ra) - int(rb)
	}
	switch a.kind {
	case isa.KindNot:
		return cmpIntLex(a.array, b.array)
	case isa.KindRead:
		if c := cmpIntLex(a.array, b.array); c != 0 {
			return c
		}
		return cmpRowsLex(arows, brows)
	case isa.KindShift:
		// Historical key was "S/%06d": zero-padded, so numeric order.
		return int(a.shiftIdx) - int(b.shiftIdx)
	default: // KindWrite
		if c := cmpIntLex(a.array, b.array); c != 0 {
			return c
		}
		if c := cmpIntLex(a.row, b.row); c != 0 {
			return c
		}
		if c := srcRank(a.src) - srcRank(b.src); c != 0 {
			return c
		}
		if srcRank(a.src) == 2 {
			return cmpIntLex(a.src, b.src)
		}
		return 0
	}
}

// bucketInfo is one merge bucket of a legacy level: its signature, the
// representative row list (reads), and its member range in the scratch
// member array.
type bucketInfo struct {
	sig   mergeSig
	rows  []int // rows of the first member; read buckets only
	count int32
	start int32
	fill  int32
}

// cmpBuckets orders a legacy level's buckets like the historical keys.
func cmpBuckets(a, b *bucketInfo) int {
	return cmpSigRows(&a.sig, a.rows, &b.sig, b.rows)
}

// mergeProbeWindow is how many issue times beyond its own ready level an
// instruction probes for a fusion partner before opening its own group.
// Probes are further capped by the instruction's deadline, so the window
// only matters for instructions with long slack.
const mergeProbeWindow = 32

// noGroupKey marks a group that is never registered in the dispatch index
// (shifts). Unreachable as a real key: interned signature ids and issue
// times are both non-negative.
const noGroupKey = ^uint64(0)

// mergeGroup is one fusion group of the ready-dispatch merger: its
// signature, representative rows, issue time, and members as a linked list
// through mergeScratch.memberNext (program order).
type mergeGroup struct {
	sig        int32 // index into mergeScratch.sigs
	rows       []int
	time       int32
	head, tail int32
	count      int32
}

// colEntry carries one column of a merging instruction with its scouting
// op and host binding.
type colEntry struct {
	col     int
	op      logic.Op
	binding string
}

// mergeScratch is the pooled per-call state of the mergers.
type mergeScratch struct {
	// Shared.
	lookup  map[mergeSig]int32
	order   []int32
	members []int32
	cols    []colEntry
	levels  []int32

	// Legacy level-barrier state.
	levelStart []int32
	cursor     []int32
	byLevel    []int32
	buckets    []bucketInfo
	bucketOf   []int32

	// Ready-dispatch state.
	slack      []int32
	groups     []mergeGroup
	sigs       []mergeSig         // interned signature table
	sigID      map[mergeSig]int32 // signature → index into sigs
	groupAt    map[uint64]int32   // sigID<<32|time → group id
	memberNext []int32
	colGroup   []int32 // per (array,col): group that last claimed the column
	colGen     []int32 // generation stamp validating colGroup entries
	colEpoch   int32
}

var mergePool = sync.Pool{New: func() any {
	return &mergeScratch{
		lookup:  make(map[mergeSig]int32),
		sigID:   make(map[mergeSig]int32),
		groupAt: make(map[uint64]int32),
	}
}}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// beginGroups resets the grouping state for one program. Groups are
// pre-sized to the instruction count (their hard upper bound) so append
// never redoubles a multi-megabyte backing mid-pass.
func (ms *mergeScratch) beginGroups(n int, space isa.Space) {
	ms.sigs = ms.sigs[:0]
	clear(ms.sigID)
	clear(ms.groupAt)
	if cap(ms.groups) < n {
		ms.groups = make([]mergeGroup, 0, n)
	}
	ms.groups = ms.groups[:0]
	ms.memberNext = grow(ms.memberNext, n)
	cols := space.Arrays * space.BufCols
	if cap(ms.colGroup) < cols {
		ms.colGroup = make([]int32, cols)
		ms.colGen = make([]int32, cols)
		ms.colEpoch = 0
	}
	ms.colGroup = ms.colGroup[:cols]
	ms.colGen = ms.colGen[:cols]
	if ms.colEpoch == math.MaxInt32 {
		for i := range ms.colGen {
			ms.colGen[i] = 0
		}
		ms.colEpoch = 0
	}
	ms.colEpoch++
}

// newGroup opens a fusion group with one member and returns its id.
// Registering overwrites any same-key entry — only reachable through the
// column-conflict fail safe, in which case the stale group simply stops
// accepting members.
func (ms *mergeScratch) newGroup(sid int32, rows []int, member, time int32, key uint64) int32 {
	id := int32(len(ms.groups))
	ms.groups = append(ms.groups, mergeGroup{sig: sid, rows: rows, time: time, head: member, tail: member, count: 1})
	if key != noGroupKey {
		ms.groupAt[key] = id
	}
	ms.memberNext[member] = -1
	return id
}

// colConflict reports whether the instruction shares a column with a group
// member. Column claims are generation-stamped per (array, column), so the
// check is O(columns of the instruction) with no clearing between calls.
func (ms *mergeScratch) colConflict(gid int32, in *isa.Instruction, space isa.Space) bool {
	base := in.Array * space.BufCols
	for _, c := range in.Cols {
		k := base + c
		if ms.colGen[k] == ms.colEpoch && ms.colGroup[k] == gid {
			return true
		}
	}
	return false
}

func (ms *mergeScratch) stampCols(gid int32, in *isa.Instruction, space isa.Space) {
	base := in.Array * space.BufCols
	for _, c := range in.Cols {
		k := base + c
		ms.colGen[k] = ms.colEpoch
		ms.colGroup[k] = gid
	}
}

// mergeLevel buckets one legacy level's instructions, orders the buckets
// like the historical string keys, and appends the merged instructions to
// out.
func (ms *mergeScratch) mergeLevel(out isa.Program, p isa.Program, idxs []int32) isa.Program {
	clear(ms.lookup)
	ms.buckets = ms.buckets[:0]
	ms.bucketOf = grow(ms.bucketOf, len(idxs))

	for j, i := range idxs {
		in := &p[i]
		sig := makeSig(in, int(i))
		var ord int32
		for {
			b, seen := ms.lookup[sig]
			if !seen {
				ord = int32(len(ms.buckets))
				bi := bucketInfo{sig: sig}
				if in.Kind == isa.KindRead {
					bi.rows = in.Rows
				}
				ms.buckets = append(ms.buckets, bi)
				ms.lookup[sig] = ord
				break
			}
			if in.Kind != isa.KindRead || slices.Equal(in.Rows, ms.buckets[b].rows) {
				ord = b
				break
			}
			sig.salt++ // same hash, different row set: probe the next slot
		}
		ms.bucketOf[j] = ord
		ms.buckets[ord].count++
	}

	ms.order = grow(ms.order, len(ms.buckets))
	for i := range ms.order {
		ms.order[i] = int32(i)
	}
	slices.SortFunc(ms.order, func(a, b int32) int {
		return cmpBuckets(&ms.buckets[a], &ms.buckets[b])
	})

	run := int32(0)
	for _, ord := range ms.order {
		b := &ms.buckets[ord]
		b.start, b.fill = run, 0
		run += b.count
	}
	ms.members = grow(ms.members, len(idxs))
	for j, i := range idxs {
		b := &ms.buckets[ms.bucketOf[j]]
		ms.members[b.start+b.fill] = i
		b.fill++
	}

	for _, ord := range ms.order {
		b := &ms.buckets[ord]
		out = ms.appendMerged(out, p, ms.members[b.start:b.start+b.count])
	}
	return out
}

// appendMerged fuses one group of same-signature instructions onto out.
// Group columns are disjoint by construction (the ready-dispatch merger
// checks at join time, the legacy merger by level independence); a shared
// column would be a scheduler bug, in which case the group passes through
// unmerged (fail safe).
func (ms *mergeScratch) appendMerged(out isa.Program, p isa.Program, idxs []int32) isa.Program {
	if len(idxs) == 1 {
		return append(out, p[idxs[0]])
	}
	base := &p[idxs[0]]
	cols := ms.cols[:0]
	for _, ii := range idxs {
		in := &p[ii]
		for k, c := range in.Cols {
			ce := colEntry{col: c}
			if len(in.Ops) > 0 {
				ce.op = in.Ops[k]
			}
			if in.Bindings != nil {
				ce.binding = in.Bindings[k]
			}
			cols = append(cols, ce)
		}
	}
	slices.SortFunc(cols, func(a, b colEntry) int { return a.col - b.col })
	ms.cols = cols
	for i := 1; i < len(cols); i++ {
		if cols[i].col == cols[i-1].col {
			for _, ii := range idxs {
				out = append(out, p[ii])
			}
			return out
		}
	}

	merged := isa.Instruction{
		Kind:        base.Kind,
		Array:       base.Array,
		Rows:        base.Rows,
		Right:       base.Right,
		ShiftBy:     base.ShiftBy,
		HasSrcArray: base.HasSrcArray,
		SrcArray:    base.SrcArray,
	}
	merged.Cols = make([]int, len(cols))
	for i, ce := range cols {
		merged.Cols[i] = ce.col
	}
	if len(base.Ops) > 0 {
		merged.Ops = make([]logic.Op, len(cols))
		for i, ce := range cols {
			merged.Ops[i] = ce.op
		}
	}
	if base.Bindings != nil {
		merged.Bindings = make([]string, len(cols))
		for i, ce := range cols {
			merged.Bindings[i] = ce.binding
		}
	}
	return append(out, merged)
}

// hazardScratch is the pooled, epoch-stamped flat hazard state of the
// scheduling passes. An entry is live only when its generation stamp
// matches the current pass, so reusing the arrays across programs — and
// across the forward and backward pass of one call — costs no clearing.
//
// The per-resource arrays are direction-agnostic: the forward pass stores
// the latest past writer/reader level per resource, the backward pass the
// earliest future one. The per-array summaries (shiftLvl, aggW, aggR) are
// what make whole-buffer shifts O(1): a shift consults and updates three
// array-wide entries instead of touching every column's buffer bit, and
// bit-level accesses consult their array's shift entry alongside their own
// bit. Bit entries staler than the last shift are dominated by it in every
// max (forward) or min (backward), so they never need clearing.
type hazardScratch struct {
	gen         int32
	writerGen   []int32
	readerGen   []int32
	writerLevel []int32
	readerLevel []int32

	// Per-array summaries, indexed by array id.
	shiftGen []int32
	shiftLvl []int32 // forward: last shift's level; backward: next shift's
	aggWGen  []int32
	aggW     []int32 // forward: max live buffer-bit writer level; backward: min
	aggRGen  []int32
	aggR     []int32 // forward: max live buffer-bit reader level; backward: min
}

var hazardPool = sync.Pool{New: func() any { return new(hazardScratch) }}

func (h *hazardScratch) begin(size, arrays int) {
	if cap(h.writerGen) < size {
		h.writerGen = make([]int32, size)
		h.readerGen = make([]int32, size)
		h.writerLevel = make([]int32, size)
		h.readerLevel = make([]int32, size)
		h.gen = 0
	}
	h.writerGen = h.writerGen[:size]
	h.readerGen = h.readerGen[:size]
	h.writerLevel = h.writerLevel[:size]
	h.readerLevel = h.readerLevel[:size]
	if cap(h.shiftGen) < arrays {
		h.shiftGen = make([]int32, arrays)
		h.shiftLvl = make([]int32, arrays)
		h.aggWGen = make([]int32, arrays)
		h.aggW = make([]int32, arrays)
		h.aggRGen = make([]int32, arrays)
		h.aggR = make([]int32, arrays)
	}
	h.shiftGen = h.shiftGen[:arrays]
	h.shiftLvl = h.shiftLvl[:arrays]
	h.aggWGen = h.aggWGen[:arrays]
	h.aggW = h.aggW[:arrays]
	h.aggRGen = h.aggRGen[:arrays]
	h.aggR = h.aggR[:arrays]
	if h.gen == math.MaxInt32 {
		for i := range h.writerGen {
			h.writerGen[i] = 0
			h.readerGen[i] = 0
		}
		for i := range h.shiftGen {
			h.shiftGen[i] = 0
			h.aggWGen[i] = 0
			h.aggRGen[i] = 0
		}
		h.gen = 0
	}
	h.gen++
}

// forwardLevels assigns each instruction its ASAP dependence level — the
// earliest level at which every RAW/WAW/WAR hazard against earlier
// instructions has retired — and returns the maximum level. Shifts are
// O(1): instead of walking every buffer bit of their array they consult the
// array's aggregate writer/reader levels and record themselves in the
// array's shift entry, which bit-level accesses consult in turn. The levels
// are exactly those of the historical per-bit walk.
func forwardLevels(p isa.Program, s isa.Space, h *hazardScratch, levels []int32) int32 {
	cellBase := int32(s.Arrays * s.BufCols)
	maxLevel := int32(0)
	for i := range p {
		in := &p[i]
		lvl := int32(0)
		switch in.Kind {
		case isa.KindRead:
			a := in.Array
			for _, c := range in.Cols {
				rowBase := cellBase + int32((a*s.BufCols+c)*s.Rows)
				for _, r := range in.Rows {
					id := rowBase + int32(r)
					if h.writerGen[id] == h.gen && h.writerLevel[id] >= lvl {
						lvl = h.writerLevel[id] + 1 // RAW on the cell
					}
				}
				b := s.BufID(a, c)
				if h.writerGen[b] == h.gen && h.writerLevel[b] >= lvl {
					lvl = h.writerLevel[b] + 1 // WAW on the buffer bit
				}
				if h.readerGen[b] == h.gen && h.readerLevel[b] >= lvl {
					lvl = h.readerLevel[b] + 1 // WAR on the buffer bit
				}
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] >= lvl {
				lvl = h.shiftLvl[a] + 1 // the last shift wrote every bit
			}
			for _, c := range in.Cols {
				rowBase := cellBase + int32((a*s.BufCols+c)*s.Rows)
				for _, r := range in.Rows {
					id := rowBase + int32(r)
					if h.readerGen[id] != h.gen || h.readerLevel[id] < lvl {
						h.readerGen[id], h.readerLevel[id] = h.gen, lvl
					}
				}
				b := s.BufID(a, c)
				h.writerGen[b], h.writerLevel[b] = h.gen, lvl
				h.readerGen[b] = 0 // a write retires all readers since the last write
			}
			if h.aggWGen[a] != h.gen || h.aggW[a] < lvl {
				h.aggWGen[a], h.aggW[a] = h.gen, lvl
			}
		case isa.KindWrite:
			src := in.Array
			if in.HasSrcArray {
				src = in.SrcArray
			}
			host := in.IsHostWrite()
			row := int32(in.Rows[0])
			for _, c := range in.Cols {
				if !host {
					b := s.BufID(src, c)
					if h.writerGen[b] == h.gen && h.writerLevel[b] >= lvl {
						lvl = h.writerLevel[b] + 1 // RAW on the buffer bit
					}
				}
				id := cellBase + int32((in.Array*s.BufCols+c)*s.Rows) + row
				if h.writerGen[id] == h.gen && h.writerLevel[id] >= lvl {
					lvl = h.writerLevel[id] + 1 // WAW on the cell
				}
				if h.readerGen[id] == h.gen && h.readerLevel[id] >= lvl {
					lvl = h.readerLevel[id] + 1 // WAR on the cell
				}
			}
			if !host && h.shiftGen[src] == h.gen && h.shiftLvl[src] >= lvl {
				lvl = h.shiftLvl[src] + 1
			}
			for _, c := range in.Cols {
				if !host {
					b := s.BufID(src, c)
					if h.readerGen[b] != h.gen || h.readerLevel[b] < lvl {
						h.readerGen[b], h.readerLevel[b] = h.gen, lvl
					}
				}
				id := cellBase + int32((in.Array*s.BufCols+c)*s.Rows) + row
				h.writerGen[id], h.writerLevel[id] = h.gen, lvl
				h.readerGen[id] = 0
			}
			if !host {
				if h.aggRGen[src] != h.gen || h.aggR[src] < lvl {
					h.aggRGen[src], h.aggR[src] = h.gen, lvl
				}
			}
		case isa.KindNot:
			a := in.Array
			for _, c := range in.Cols {
				b := s.BufID(a, c)
				if h.writerGen[b] == h.gen && h.writerLevel[b] >= lvl {
					lvl = h.writerLevel[b] + 1
				}
				if h.readerGen[b] == h.gen && h.readerLevel[b] >= lvl {
					lvl = h.readerLevel[b] + 1
				}
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] >= lvl {
				lvl = h.shiftLvl[a] + 1
			}
			// The write retires the instruction's own read, so only the
			// writer side is committed — exactly as the per-bit walk did.
			for _, c := range in.Cols {
				b := s.BufID(a, c)
				h.writerGen[b], h.writerLevel[b] = h.gen, lvl
				h.readerGen[b] = 0
			}
			if h.aggWGen[a] != h.gen || h.aggW[a] < lvl {
				h.aggWGen[a], h.aggW[a] = h.gen, lvl
			}
		case isa.KindShift:
			a := in.Array
			if h.aggWGen[a] == h.gen && h.aggW[a] >= lvl {
				lvl = h.aggW[a] + 1 // RAW/WAW vs every live bit writer
			}
			if h.aggRGen[a] == h.gen && h.aggR[a] >= lvl {
				lvl = h.aggR[a] + 1 // WAR vs every live bit reader
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] >= lvl {
				lvl = h.shiftLvl[a] + 1
			}
			h.shiftGen[a], h.shiftLvl[a] = h.gen, lvl
		}
		levels[i] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	return maxLevel
}

// backwardSlack assigns each instruction its deadline: the minimum forward
// level over its hazard successors, math.MaxInt32 when it has none. An
// instruction may be delayed to any time strictly below its deadline
// without reordering against a successor. The pass mirrors forwardLevels in
// reverse — writerLevel holds the next writer's level, readerLevel the
// minimum future reader level before that writer, and the per-array
// summaries make shifts O(1). Entries beyond an intervening writer or shift
// are dominated in the min by the hazard chain through it, so they are
// never cleared.
func backwardSlack(p isa.Program, s isa.Space, h *hazardScratch, levels, slack []int32) {
	cellBase := int32(s.Arrays * s.BufCols)
	for i := len(p) - 1; i >= 0; i-- {
		in := &p[i]
		l := levels[i]
		dl := int32(math.MaxInt32)
		switch in.Kind {
		case isa.KindRead:
			a := in.Array
			for _, c := range in.Cols {
				rowBase := cellBase + int32((a*s.BufCols+c)*s.Rows)
				for _, r := range in.Rows {
					id := rowBase + int32(r)
					if h.writerGen[id] == h.gen && h.writerLevel[id] < dl {
						dl = h.writerLevel[id] // WAR: next cell writer
					}
				}
				b := s.BufID(a, c)
				if h.writerGen[b] == h.gen && h.writerLevel[b] < dl {
					dl = h.writerLevel[b] // WAW: next bit writer
				}
				if h.readerGen[b] == h.gen && h.readerLevel[b] < dl {
					dl = h.readerLevel[b] // RAW: future bit readers
				}
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] < dl {
				dl = h.shiftLvl[a]
			}
			for _, c := range in.Cols {
				rowBase := cellBase + int32((a*s.BufCols+c)*s.Rows)
				for _, r := range in.Rows {
					id := rowBase + int32(r)
					if h.readerGen[id] != h.gen || h.readerLevel[id] > l {
						h.readerGen[id], h.readerLevel[id] = h.gen, l
					}
				}
				b := s.BufID(a, c)
				h.writerGen[b], h.writerLevel[b] = h.gen, l
				h.readerGen[b] = 0 // readers beyond this writer are cut off
			}
			if h.aggWGen[a] != h.gen || h.aggW[a] > l {
				h.aggWGen[a], h.aggW[a] = h.gen, l
			}
		case isa.KindWrite:
			src := in.Array
			if in.HasSrcArray {
				src = in.SrcArray
			}
			host := in.IsHostWrite()
			row := int32(in.Rows[0])
			for _, c := range in.Cols {
				if !host {
					b := s.BufID(src, c)
					if h.writerGen[b] == h.gen && h.writerLevel[b] < dl {
						dl = h.writerLevel[b] // WAR: next bit writer
					}
				}
				id := cellBase + int32((in.Array*s.BufCols+c)*s.Rows) + row
				if h.writerGen[id] == h.gen && h.writerLevel[id] < dl {
					dl = h.writerLevel[id] // WAW: next cell writer
				}
				if h.readerGen[id] == h.gen && h.readerLevel[id] < dl {
					dl = h.readerLevel[id] // RAW: future cell readers
				}
			}
			if !host && h.shiftGen[src] == h.gen && h.shiftLvl[src] < dl {
				dl = h.shiftLvl[src]
			}
			for _, c := range in.Cols {
				if !host {
					b := s.BufID(src, c)
					if h.readerGen[b] != h.gen || h.readerLevel[b] > l {
						h.readerGen[b], h.readerLevel[b] = h.gen, l
					}
				}
				id := cellBase + int32((in.Array*s.BufCols+c)*s.Rows) + row
				h.writerGen[id], h.writerLevel[id] = h.gen, l
				h.readerGen[id] = 0
			}
			if !host {
				if h.aggRGen[src] != h.gen || h.aggR[src] > l {
					h.aggRGen[src], h.aggR[src] = h.gen, l
				}
			}
		case isa.KindNot:
			a := in.Array
			for _, c := range in.Cols {
				b := s.BufID(a, c)
				if h.writerGen[b] == h.gen && h.writerLevel[b] < dl {
					dl = h.writerLevel[b]
				}
				if h.readerGen[b] == h.gen && h.readerLevel[b] < dl {
					dl = h.readerLevel[b]
				}
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] < dl {
				dl = h.shiftLvl[a]
			}
			// As the nearest writer it also covers its own read for
			// earlier writers (same level on the same bit).
			for _, c := range in.Cols {
				b := s.BufID(a, c)
				h.writerGen[b], h.writerLevel[b] = h.gen, l
				h.readerGen[b] = 0
			}
			if h.aggWGen[a] != h.gen || h.aggW[a] > l {
				h.aggWGen[a], h.aggW[a] = h.gen, l
			}
		case isa.KindShift:
			a := in.Array
			if h.aggWGen[a] == h.gen && h.aggW[a] < dl {
				dl = h.aggW[a] // earliest future bit writer
			}
			if h.aggRGen[a] == h.gen && h.aggR[a] < dl {
				dl = h.aggR[a] // earliest future bit reader
			}
			if h.shiftGen[a] == h.gen && h.shiftLvl[a] < dl {
				dl = h.shiftLvl[a]
			}
			h.shiftGen[a], h.shiftLvl[a] = h.gen, l
		}
		slack[i] = dl
	}
}
