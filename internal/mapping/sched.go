package mapping

import (
	"fmt"
	"sort"
	"strings"

	"sherlock/internal/isa"
	"sherlock/internal/logic"
)

// MergeInstructions implements the instruction-merging optimization of
// Sec. 3.3.3: instructions in different columns that activate the same rows
// fuse into one instruction carrying a per-column operation list.
//
// A dependence DAG over the instruction stream (cells and per-column row
// buffer bits as resources; shifts touch their whole array's buffer) is
// level-scheduled ASAP; instructions within one level are mutually
// independent by construction, so compatible ones merge:
//
//   - scouting reads with identical array and row set,
//   - plain reads with identical array and row,
//   - writes with identical array, row, and data source,
//   - row-buffer NOTs on the same array.
//
// It returns the merged program and the number of instructions eliminated.
func MergeInstructions(p isa.Program) (isa.Program, int) {
	if len(p) == 0 {
		return p, 0
	}
	levels := scheduleLevels(p)

	// Group instruction indices by level in one pass.
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]int, maxLevel+1)
	for i, l := range levels {
		byLevel[l] = append(byLevel[l], i)
	}

	var out isa.Program
	for _, idxs := range byLevel {
		buckets := make(map[string][]isa.Instruction)
		var keysInOrder []string
		for _, i := range idxs {
			k := mergeKey(p[i], i)
			if _, seen := buckets[k]; !seen {
				keysInOrder = append(keysInOrder, k)
			}
			buckets[k] = append(buckets[k], p[i])
		}
		sort.Strings(keysInOrder)
		for _, k := range keysInOrder {
			out = append(out, mergeBucket(buckets[k])...)
		}
	}
	return out, len(p) - len(out)
}

// mergeKey groups mergeable instructions; instructions with unique keys
// pass through unmerged.
func mergeKey(in isa.Instruction, idx int) string {
	switch in.Kind {
	case isa.KindRead:
		return fmt.Sprintf("R/%d/%s", in.Array, joinRows(in.Rows))
	case isa.KindWrite:
		src := "buf"
		if in.IsHostWrite() {
			src = "host"
		} else if in.HasSrcArray {
			src = fmt.Sprintf("x%d", in.SrcArray)
		}
		return fmt.Sprintf("W/%d/%d/%s", in.Array, in.Rows[0], src)
	case isa.KindNot:
		return fmt.Sprintf("N/%d", in.Array)
	default: // shifts never merge
		return fmt.Sprintf("S/%06d", idx)
	}
}

func joinRows(rows []int) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprint(r)
	}
	return strings.Join(parts, ",")
}

// mergeBucket fuses one bucket of same-signature instructions. Columns
// within a level are disjoint by dependence construction.
func mergeBucket(ins []isa.Instruction) []isa.Instruction {
	if len(ins) == 1 {
		return ins
	}
	base := ins[0]
	type colData struct {
		op      logic.Op
		binding string
	}
	cols := make(map[int]colData)
	for _, in := range ins {
		for i, c := range in.Cols {
			d := colData{}
			if len(in.Ops) > 0 {
				d.op = in.Ops[i]
			}
			if in.Bindings != nil {
				d.binding = in.Bindings[i]
			}
			if _, dup := cols[c]; dup {
				// Shared column inside one level would be a scheduler
				// bug; fail safe by not merging at all.
				return ins
			}
			cols[c] = d
		}
	}
	sorted := make([]int, 0, len(cols))
	for c := range cols {
		sorted = append(sorted, c)
	}
	sort.Ints(sorted)

	merged := isa.Instruction{
		Kind:        base.Kind,
		Array:       base.Array,
		Rows:        base.Rows,
		Cols:        sorted,
		Right:       base.Right,
		ShiftBy:     base.ShiftBy,
		HasSrcArray: base.HasSrcArray,
		SrcArray:    base.SrcArray,
	}
	if len(base.Ops) > 0 {
		merged.Ops = make([]logic.Op, len(sorted))
		for i, c := range sorted {
			merged.Ops[i] = cols[c].op
		}
	}
	if base.Bindings != nil {
		merged.Bindings = make([]string, len(sorted))
		for i, c := range sorted {
			merged.Bindings[i] = cols[c].binding
		}
	}
	return []isa.Instruction{merged}
}

// scheduleLevels assigns each instruction its ASAP dependence level.
func scheduleLevels(p isa.Program) []int {
	bufCols := p.MaxCol()
	levels := make([]int, len(p))
	lastWriter := make(map[isa.Resource]int)
	lastReaders := make(map[isa.Resource][]int)
	for i, in := range p {
		reads, writes := in.Accesses(bufCols)
		lvl := 0
		for _, r := range reads {
			if w, ok := lastWriter[r]; ok && levels[w]+1 > lvl {
				lvl = levels[w] + 1 // RAW
			}
		}
		for _, r := range writes {
			if w, ok := lastWriter[r]; ok && levels[w]+1 > lvl {
				lvl = levels[w] + 1 // WAW
			}
			for _, rd := range lastReaders[r] {
				if levels[rd]+1 > lvl {
					lvl = levels[rd] + 1 // WAR
				}
			}
		}
		levels[i] = lvl
		for _, r := range reads {
			lastReaders[r] = append(lastReaders[r], i)
		}
		for _, r := range writes {
			lastWriter[r] = i
			delete(lastReaders, r)
		}
	}
	return levels
}
