package mapping

import (
	"bytes"
	"math"
	"slices"
	"strconv"
	"sync"

	"sherlock/internal/isa"
	"sherlock/internal/logic"
)

// MergeInstructions implements the instruction-merging optimization of
// Sec. 3.3.3: instructions in different columns that activate the same rows
// fuse into one instruction carrying a per-column operation list.
//
// A dependence DAG over the instruction stream (cells and per-column row
// buffer bits as resources; shifts touch their whole array's buffer) is
// level-scheduled ASAP; instructions within one level are mutually
// independent by construction, so compatible ones merge:
//
//   - scouting reads with identical array and row set,
//   - plain reads with identical array and row,
//   - writes with identical array, row, and data source,
//   - row-buffer NOTs on the same array.
//
// It returns the merged program and the number of instructions eliminated.
//
// The pass runs on dense data structures throughout: hazard state lives in
// flat arrays indexed by interned resource IDs (see isa.Space), merge
// signatures are comparable structs bucketed by hash, and all per-level
// scratch is pooled — one call allocates only the output program. Bucket
// order within a level reproduces the lexicographic order of the
// historical fmt.Sprintf keys bit-for-bit, so emitted programs are
// byte-identical to the string-keyed implementation.
func MergeInstructions(p isa.Program) (isa.Program, int) {
	if len(p) == 0 {
		return p, 0
	}
	levels := scheduleLevels(p)

	ms := mergePool.Get().(*mergeScratch)
	defer mergePool.Put(ms)

	// Group instruction indices by level with one counting sort.
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	ms.levelStart = grow(ms.levelStart, maxLevel+2)
	for i := range ms.levelStart {
		ms.levelStart[i] = 0
	}
	for _, l := range levels {
		ms.levelStart[l+1]++
	}
	for l := 1; l < len(ms.levelStart); l++ {
		ms.levelStart[l] += ms.levelStart[l-1]
	}
	ms.byLevel = grow(ms.byLevel, len(p))
	ms.cursor = grow(ms.cursor, maxLevel+1)
	copy(ms.cursor, ms.levelStart[:maxLevel+1])
	for i, l := range levels {
		ms.byLevel[ms.cursor[l]] = int32(i)
		ms.cursor[l]++
	}

	out := make(isa.Program, 0, len(p))
	for l := 0; l <= maxLevel; l++ {
		idxs := ms.byLevel[ms.levelStart[l]:ms.levelStart[l+1]]
		out = ms.mergeLevel(out, p, idxs)
	}
	return out, len(p) - len(out)
}

// mergeSig is the comparable bucket key replacing the historical
// "R/%d/%s"-style strings. Reads discriminate on the hashed row set (with
// a salt that splits the astronomically unlikely hash collision), writes
// on destination row and data source, shifts on their own index so they
// never merge.
type mergeSig struct {
	kind     isa.Kind
	array    int32
	row      int32  // writes: destination row
	src      int32  // writes: srcBuf, srcHost, or the source array id
	rowsLen  int32  // reads: number of activated rows
	rowsHash uint64 // reads: FNV-1a over the row list
	salt     int32  // reads: bumped on hash collision with different rows
	shiftIdx int32  // shifts: instruction index (unique bucket)
}

// Write data-source classes. Their numeric order is irrelevant — ordering
// goes through srcRank which reproduces the "buf" < "host" < "x%d" string
// order.
const (
	srcBuf  int32 = -1
	srcHost int32 = -2
)

func makeSig(in *isa.Instruction, idx int) mergeSig {
	switch in.Kind {
	case isa.KindRead:
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for _, r := range in.Rows {
			h ^= uint64(r)
			h *= 1099511628211
		}
		return mergeSig{kind: isa.KindRead, array: int32(in.Array), rowsLen: int32(len(in.Rows)), rowsHash: h}
	case isa.KindWrite:
		src := srcBuf
		if in.IsHostWrite() {
			src = srcHost
		} else if in.HasSrcArray {
			src = int32(in.SrcArray)
		}
		return mergeSig{kind: isa.KindWrite, array: int32(in.Array), row: int32(in.Rows[0]), src: src}
	case isa.KindNot:
		return mergeSig{kind: isa.KindNot, array: int32(in.Array)}
	default: // shifts never merge
		return mergeSig{kind: isa.KindShift, shiftIdx: int32(idx)}
	}
}

// kindRank returns the first byte of the historical string key, the
// major sort criterion: 'N' < 'R' < 'S' < 'W'.
func kindRank(k isa.Kind) byte {
	switch k {
	case isa.KindNot:
		return 'N'
	case isa.KindRead:
		return 'R'
	case isa.KindShift:
		return 'S'
	default:
		return 'W'
	}
}

// cmpIntLex compares two non-negative integers as their decimal strings
// (so 10 < 2, matching the lexicographic order the string keys had). The
// digit buffers live on the stack.
func cmpIntLex(a, b int32) int {
	if a == b {
		return 0
	}
	var ab, bb [12]byte
	as := strconv.AppendInt(ab[:0], int64(a), 10)
	bs := strconv.AppendInt(bb[:0], int64(b), 10)
	return bytes.Compare(as, bs)
}

// cmpRowsLex compares two row lists the way their comma-joined decimal
// strings compare. Element-wise decimal comparison is exact here because
// ',' sorts below every digit, so a list that is a strict prefix of
// another always compares lower — the same tie-break the joined string
// had.
func cmpRowsLex(a, b []int) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := cmpIntLex(int32(a[i]), int32(b[i])); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// srcRank maps a write's data source to its position in the historical
// "buf" < "host" < "x%d" string order.
func srcRank(src int32) int {
	switch src {
	case srcBuf:
		return 0
	case srcHost:
		return 1
	default:
		return 2
	}
}

// bucketInfo is one merge bucket of a level: its signature, the
// representative row list (reads), and its member range in the scratch
// member array.
type bucketInfo struct {
	sig   mergeSig
	rows  []int // rows of the first member; read buckets only
	count int32
	start int32
	fill  int32
}

// cmpBuckets reproduces sort.Strings over the historical key strings.
func cmpBuckets(a, b *bucketInfo) int {
	ra, rb := kindRank(a.sig.kind), kindRank(b.sig.kind)
	if ra != rb {
		return int(ra) - int(rb)
	}
	switch a.sig.kind {
	case isa.KindNot:
		return cmpIntLex(a.sig.array, b.sig.array)
	case isa.KindRead:
		if c := cmpIntLex(a.sig.array, b.sig.array); c != 0 {
			return c
		}
		return cmpRowsLex(a.rows, b.rows)
	case isa.KindShift:
		// Historical key was "S/%06d": zero-padded, so numeric order.
		return int(a.sig.shiftIdx) - int(b.sig.shiftIdx)
	default: // KindWrite
		if c := cmpIntLex(a.sig.array, b.sig.array); c != 0 {
			return c
		}
		if c := cmpIntLex(a.sig.row, b.sig.row); c != 0 {
			return c
		}
		if c := srcRank(a.sig.src) - srcRank(b.sig.src); c != 0 {
			return c
		}
		if srcRank(a.sig.src) == 2 {
			return cmpIntLex(a.sig.src, b.sig.src)
		}
		return 0
	}
}

// colEntry carries one column of a merging instruction with its scouting
// op and host binding.
type colEntry struct {
	col     int
	op      logic.Op
	binding string
}

// mergeScratch is the pooled per-call state of MergeInstructions.
type mergeScratch struct {
	levelStart []int32
	cursor     []int32
	byLevel    []int32

	lookup   map[mergeSig]int32
	buckets  []bucketInfo
	order    []int32
	bucketOf []int32
	members  []int32
	cols     []colEntry
}

var mergePool = sync.Pool{New: func() any {
	return &mergeScratch{lookup: make(map[mergeSig]int32)}
}}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// mergeLevel buckets one level's instructions, orders the buckets like the
// historical string keys, and appends the merged instructions to out.
func (ms *mergeScratch) mergeLevel(out isa.Program, p isa.Program, idxs []int32) isa.Program {
	clear(ms.lookup)
	ms.buckets = ms.buckets[:0]
	ms.bucketOf = grow(ms.bucketOf, len(idxs))

	for j, i := range idxs {
		in := &p[i]
		sig := makeSig(in, int(i))
		var ord int32
		for {
			b, seen := ms.lookup[sig]
			if !seen {
				ord = int32(len(ms.buckets))
				bi := bucketInfo{sig: sig}
				if in.Kind == isa.KindRead {
					bi.rows = in.Rows
				}
				ms.buckets = append(ms.buckets, bi)
				ms.lookup[sig] = ord
				break
			}
			if in.Kind != isa.KindRead || slices.Equal(in.Rows, ms.buckets[b].rows) {
				ord = b
				break
			}
			sig.salt++ // same hash, different row set: probe the next slot
		}
		ms.bucketOf[j] = ord
		ms.buckets[ord].count++
	}

	ms.order = grow(ms.order, len(ms.buckets))
	for i := range ms.order {
		ms.order[i] = int32(i)
	}
	slices.SortFunc(ms.order, func(a, b int32) int {
		return cmpBuckets(&ms.buckets[a], &ms.buckets[b])
	})

	run := int32(0)
	for _, ord := range ms.order {
		b := &ms.buckets[ord]
		b.start, b.fill = run, 0
		run += b.count
	}
	ms.members = grow(ms.members, len(idxs))
	for j, i := range idxs {
		b := &ms.buckets[ms.bucketOf[j]]
		ms.members[b.start+b.fill] = i
		b.fill++
	}

	for _, ord := range ms.order {
		b := &ms.buckets[ord]
		out = ms.appendMerged(out, p, ms.members[b.start:b.start+b.count])
	}
	return out
}

// appendMerged fuses one bucket of same-signature instructions onto out.
// Columns within a level are disjoint by dependence construction; a shared
// column would be a scheduler bug, in which case the bucket passes through
// unmerged (fail safe).
func (ms *mergeScratch) appendMerged(out isa.Program, p isa.Program, idxs []int32) isa.Program {
	if len(idxs) == 1 {
		return append(out, p[idxs[0]])
	}
	base := &p[idxs[0]]
	cols := ms.cols[:0]
	for _, ii := range idxs {
		in := &p[ii]
		for k, c := range in.Cols {
			ce := colEntry{col: c}
			if len(in.Ops) > 0 {
				ce.op = in.Ops[k]
			}
			if in.Bindings != nil {
				ce.binding = in.Bindings[k]
			}
			cols = append(cols, ce)
		}
	}
	slices.SortFunc(cols, func(a, b colEntry) int { return a.col - b.col })
	ms.cols = cols
	for i := 1; i < len(cols); i++ {
		if cols[i].col == cols[i-1].col {
			for _, ii := range idxs {
				out = append(out, p[ii])
			}
			return out
		}
	}

	merged := isa.Instruction{
		Kind:        base.Kind,
		Array:       base.Array,
		Rows:        base.Rows,
		Right:       base.Right,
		ShiftBy:     base.ShiftBy,
		HasSrcArray: base.HasSrcArray,
		SrcArray:    base.SrcArray,
	}
	merged.Cols = make([]int, len(cols))
	for i, ce := range cols {
		merged.Cols[i] = ce.col
	}
	if len(base.Ops) > 0 {
		merged.Ops = make([]logic.Op, len(cols))
		for i, ce := range cols {
			merged.Ops[i] = ce.op
		}
	}
	if base.Bindings != nil {
		merged.Bindings = make([]string, len(cols))
		for i, ce := range cols {
			merged.Bindings[i] = ce.binding
		}
	}
	return append(out, merged)
}

// hazardScratch is the pooled, epoch-stamped flat hazard state of
// scheduleLevels. An entry is live only when its generation stamp matches
// the current pass, so reusing the arrays across programs costs no
// clearing.
type hazardScratch struct {
	gen         int32
	writerGen   []int32
	readerGen   []int32
	writerLevel []int32
	readerLevel []int32

	reads, writes []int32
}

var hazardPool = sync.Pool{New: func() any { return new(hazardScratch) }}

func (h *hazardScratch) begin(size int) {
	if cap(h.writerGen) < size {
		h.writerGen = make([]int32, size)
		h.readerGen = make([]int32, size)
		h.writerLevel = make([]int32, size)
		h.readerLevel = make([]int32, size)
		h.gen = 0
	}
	h.writerGen = h.writerGen[:size]
	h.readerGen = h.readerGen[:size]
	h.writerLevel = h.writerLevel[:size]
	h.readerLevel = h.readerLevel[:size]
	if h.gen == math.MaxInt32 {
		for i := range h.writerGen {
			h.writerGen[i] = 0
			h.readerGen[i] = 0
		}
		h.gen = 0
	}
	h.gen++
}

// scheduleLevels assigns each instruction its ASAP dependence level.
// Resources are interned into dense IDs (isa.Space) and the last-writer /
// latest-reader tables are flat arrays, so one pass over the program does
// zero per-instruction allocation.
func scheduleLevels(p isa.Program) []int {
	space := p.ResourceSpace()
	h := hazardPool.Get().(*hazardScratch)
	defer hazardPool.Put(h)
	h.begin(space.Size())

	levels := make([]int, len(p))
	for i := range p {
		in := &p[i]
		h.reads, h.writes = in.AppendAccessIDs(space, h.reads[:0], h.writes[:0])
		lvl := int32(0)
		for _, r := range h.reads {
			if h.writerGen[r] == h.gen && h.writerLevel[r]+1 > lvl {
				lvl = h.writerLevel[r] + 1 // RAW
			}
		}
		for _, r := range h.writes {
			if h.writerGen[r] == h.gen && h.writerLevel[r]+1 > lvl {
				lvl = h.writerLevel[r] + 1 // WAW
			}
			if h.readerGen[r] == h.gen && h.readerLevel[r]+1 > lvl {
				lvl = h.readerLevel[r] + 1 // WAR
			}
		}
		levels[i] = int(lvl)
		for _, r := range h.reads {
			if h.readerGen[r] != h.gen || h.readerLevel[r] < lvl {
				h.readerGen[r], h.readerLevel[r] = h.gen, lvl
			}
		}
		for _, r := range h.writes {
			h.writerGen[r], h.writerLevel[r] = h.gen, lvl
			h.readerGen[r] = 0 // a write retires all readers since the last write
		}
	}
	return levels
}
