// Command goldengen regenerates the pinned mapper outputs under
// internal/mapping/testdata. The golden files freeze the exact program text
// both mappers emit for a fixed workload set; TestGoldenPrograms diffs
// against them so that performance work on the compiler fast path cannot
// silently change emitted code. Run it only when an intentional
// code-generation change lands:
//
//	go run ./internal/mapping/goldengen internal/mapping/testdata
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

func main() {
	dir := os.Args[1]
	type kase struct {
		name string
		g    *dfg.Graph
		t    layout.Target
		opt  mapping.Options
	}
	must := func(g *dfg.Graph, err error) *dfg.Graph {
		if err != nil {
			panic(err)
		}
		return g
	}
	bw := must(bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 8}))
	sb := must(sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128}))
	ae := must(aes.Build(aes.Config{Rounds: 2}))
	cases := []kase{
		{"bitweaving", bw, layout.Target{Arrays: 1, Rows: 256, Cols: 256}, mapping.Options{}},
		{"sobel", sb, layout.Target{Arrays: 1, Rows: 128, Cols: 128}, mapping.Options{}},
		{"sobel_recycle", sb, layout.Target{Arrays: 1, Rows: 64, Cols: 512}, mapping.Options{RecycleRows: true}},
		{"aes", ae, layout.Target{Arrays: 4, Rows: 512, Cols: 512}, mapping.Options{}},
	}
	for _, k := range cases {
		k.opt.Target = k.t
		for _, mode := range []string{"naive", "opt"} {
			var res *mapping.Result
			var err error
			if mode == "naive" {
				res, err = mapping.Naive(k.g, k.opt)
			} else {
				res, err = mapping.Optimized(k.g, k.opt)
			}
			if err != nil {
				panic(fmt.Sprintf("%s/%s: %v", k.name, mode, err))
			}
			path := filepath.Join(dir, k.name+"_"+mode+".golden")
			if err := os.WriteFile(path, []byte(res.Program.String()), 0o644); err != nil {
				panic(err)
			}
			// The readout manifest sidecar lets tools (sherlock-lint -equiv,
			// the golden CI gate) reconnect the pinned program to its
			// kernel's outputs without redoing the mapping.
			outs := res.Graph.Outputs()
			specs := make([]verify.OutputAt, len(outs))
			for i, o := range outs {
				p, err := res.OutputPlace(o)
				if err != nil {
					panic(fmt.Sprintf("%s/%s: %v", k.name, mode, err))
				}
				specs[i] = verify.OutputAt{Name: res.Graph.OutputName(o), Place: p}
			}
			opath := filepath.Join(dir, k.name+"_"+mode+".outputs")
			if err := os.WriteFile(opath, []byte(verify.FormatOutputs(specs)), 0o644); err != nil {
				panic(err)
			}
			fmt.Printf("%s: %d instructions, %d outputs\n", path, len(res.Program), len(specs))
		}
	}
}
