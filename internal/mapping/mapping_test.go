package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/reliability"
	"sherlock/internal/sim"
)

// randomGraph builds a random DAG with the given number of inputs and ops.
func randomGraph(seed int64, nInputs, nOps int) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := dfg.NewBuilder()
	b.DisableCSE = true
	vals := make([]dfg.Val, 0, nInputs+nOps)
	for i := 0; i < nInputs; i++ {
		vals = append(vals, b.Input(fmt.Sprintf("in%d", i)))
	}
	for len(vals) < nInputs+nOps {
		a := vals[rng.Intn(len(vals))]
		c := vals[rng.Intn(len(vals))]
		var v dfg.Val
		switch rng.Intn(7) {
		case 0:
			v = b.And(a, c)
		case 1:
			v = b.Or(a, c)
		case 2:
			v = b.Xor(a, c)
		case 3:
			v = b.Nand(a, c)
		case 4:
			v = b.Nor(a, c)
		case 5:
			v = b.Xnor(a, c)
		default:
			v = b.Not(a)
		}
		if ic, _ := v.IsConst(); ic {
			continue
		}
		vals = append(vals, v)
	}
	g := b.Graph()
	// Mark all sink operands as outputs so every live value is observable.
	n := 0
	for _, operand := range g.Operands() {
		if len(g.Consumers(operand)) == 0 && g.Producer(operand) != dfg.NoNode {
			g.MarkOutputNamed(operand, fmt.Sprintf("out%d", n))
			n++
		}
	}
	if n == 0 {
		g.MarkOutputNamed(g.Operands()[len(g.Operands())-1], "out0")
	}
	return g
}

type mapper func(*dfg.Graph, Options) (*Result, error)

// verifyMapping compiles g with the mapper and checks, over several random
// input assignments, that simulating the program reproduces the DFG
// semantics bit-exactly.
func verifyMapping(t *testing.T, g *dfg.Graph, m mapper, target layout.Target, trials int, seed int64) *Result {
	t.Helper()
	res, err := m(g, Options{Target: target})
	if err != nil {
		t.Fatalf("mapping failed: %v", err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		inputs := make(map[string]bool)
		for _, name := range g.InputNames() {
			inputs[name] = rng.Intn(2) == 1
		}
		want, err := dfg.EvaluateByName(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		mach := sim.NewMachine(target)
		if err := mach.Run(res.Program, inputs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, out := range g.Outputs() {
			p, err := res.OutputPlace(out)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mach.ReadOut(p)
			if err != nil {
				t.Fatalf("trial %d, output %q: %v", trial, g.OutputName(out), err)
			}
			if got != want[g.OutputName(out)] {
				t.Fatalf("trial %d: output %q = %v, want %v", trial, g.OutputName(out), got, want[g.OutputName(out)])
			}
		}
	}
	return res
}

func diamond() *dfg.Graph {
	b := dfg.NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	b.Output("out", b.Xor(b.And(x, y), b.Or(x, y)))
	return b.Graph()
}

func TestNaiveDiamond(t *testing.T) {
	verifyMapping(t, diamond(), Naive, layout.Target{Arrays: 1, Rows: 16, Cols: 4}, 8, 1)
}

func TestOptimizedDiamond(t *testing.T) {
	verifyMapping(t, diamond(), Optimized, layout.Target{Arrays: 1, Rows: 16, Cols: 4}, 8, 2)
}

func TestNaiveWithNotAndCopy(t *testing.T) {
	g := dfg.New()
	a, b := g.AddInput("a"), g.AddInput("b")
	na := g.AddOp(logic.Not, a)
	cp := g.AddOp(logic.Copy, b)
	g.MarkOutputNamed(g.AddOp(logic.And, na, cp), "o")
	verifyMapping(t, g, Naive, layout.Target{Arrays: 1, Rows: 8, Cols: 4}, 4, 3)
	verifyMapping(t, g, Optimized, layout.Target{Arrays: 1, Rows: 8, Cols: 4}, 4, 4)
}

func TestMultiOperandOps(t *testing.T) {
	g := dfg.New()
	ins := make([]dfg.NodeID, 4)
	for i := range ins {
		ins[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	g.MarkOutputNamed(g.AddOp(logic.Xor, ins...), "parity")
	g.MarkOutputNamed(g.AddOp(logic.And, ins...), "all")
	verifyMapping(t, g, Naive, layout.Target{Arrays: 1, Rows: 8, Cols: 4}, 16, 5)
	verifyMapping(t, g, Optimized, layout.Target{Arrays: 1, Rows: 8, Cols: 4}, 16, 6)
}

func TestRandomGraphsBothMappers(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, 6, 40)
		target := layout.Target{Arrays: 1, Rows: 24, Cols: 32}
		verifyMapping(t, g, Naive, target, 4, seed+100)
		verifyMapping(t, g, Optimized, target, 4, seed+200)
	}
}

func TestColumnSpillForcesMultipleColumns(t *testing.T) {
	// 60 ops worth of operands cannot fit an 16-row column.
	g := randomGraph(7, 8, 60)
	target := layout.Target{Arrays: 1, Rows: 16, Cols: 64}
	rn := verifyMapping(t, g, Naive, target, 3, 11)
	ro := verifyMapping(t, g, Optimized, target, 3, 12)
	if rn.Stats.ColumnsUsed < 2 || ro.Stats.ColumnsUsed < 2 {
		t.Fatalf("expected multi-column layouts, got naive=%d opt=%d",
			rn.Stats.ColumnsUsed, ro.Stats.ColumnsUsed)
	}
}

func TestCrossArrayMapping(t *testing.T) {
	// A target whose single array cannot hold the graph forces the
	// mappers across arrays, exercising the bus-write path.
	g := randomGraph(3, 6, 50)
	target := layout.Target{Arrays: 4, Rows: 12, Cols: 6}
	verifyMapping(t, g, Naive, target, 3, 21)
	verifyMapping(t, g, Optimized, target, 3, 22)
}

func TestTargetTooSmallErrors(t *testing.T) {
	g := randomGraph(4, 6, 80)
	_, err := Naive(g, Options{Target: layout.Target{Arrays: 1, Rows: 8, Cols: 2}})
	if err == nil {
		t.Error("naive accepted an impossible target")
	}
	_, err = Optimized(g, Options{Target: layout.Target{Arrays: 1, Rows: 8, Cols: 2}})
	if err == nil {
		t.Error("optimized accepted an impossible target")
	}
}

func TestArityLargerThanColumnErrors(t *testing.T) {
	g := dfg.New()
	ins := make([]dfg.NodeID, 6)
	for i := range ins {
		ins[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	g.MarkOutputNamed(g.AddOp(logic.And, ins...), "o")
	_, err := Naive(g, Options{Target: layout.Target{Arrays: 1, Rows: 4, Cols: 8}})
	if err == nil {
		t.Error("op wider than a column accepted")
	}
}

func TestEmptyGraphErrors(t *testing.T) {
	g := dfg.New()
	g.AddInput("a")
	if _, err := Naive(g, Options{Target: layout.Target{Arrays: 1, Rows: 8, Cols: 8}}); err == nil {
		t.Error("graph without ops accepted")
	}
}

// parallelKernels builds p independent, structurally identical chains —
// the shape where clustering and instruction merging shine.
func parallelKernels(p, depth int) *dfg.Graph {
	b := dfg.NewBuilder()
	b.DisableCSE = true
	for i := 0; i < p; i++ {
		x := b.Input(fmt.Sprintf("x%d", i))
		y := b.Input(fmt.Sprintf("y%d", i))
		acc := b.And(x, y)
		for d := 1; d < depth; d++ {
			acc = b.Xor(acc, y)
			acc = b.And(acc, x)
		}
		b.Output(fmt.Sprintf("o%d", i), acc)
	}
	return b.Graph()
}

func TestOptimizedBeatsNaiveOnParallelKernels(t *testing.T) {
	g := parallelKernels(8, 6)
	// Rows chosen so one chain fits a column but several do not.
	target := layout.Target{Arrays: 1, Rows: 32, Cols: 64}
	rn := verifyMapping(t, g, Naive, target, 3, 31)
	ro := verifyMapping(t, g, Optimized, target, 3, 32)
	if ro.Stats.Instructions >= rn.Stats.Instructions {
		t.Errorf("optimized (%d instructions) not better than naive (%d)",
			ro.Stats.Instructions, rn.Stats.Instructions)
	}
	if ro.Stats.Copies > rn.Stats.Copies {
		t.Errorf("optimized inserted more copies (%d) than naive (%d)",
			ro.Stats.Copies, rn.Stats.Copies)
	}
	if ro.Stats.MergedAway == 0 {
		t.Error("no instructions merged on perfectly parallel kernels")
	}
}

func TestClustersPartitionOps(t *testing.T) {
	g := randomGraph(5, 8, 60)
	target := layout.Target{Arrays: 1, Rows: 16, Cols: 64}
	clusters, err := Clusters(g, Options{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[dfg.NodeID]bool)
	for _, ops := range clusters {
		if len(ops) == 0 {
			t.Error("empty cluster")
		}
		for _, op := range ops {
			if seen[op] {
				t.Fatalf("op %d in two clusters", op)
			}
			seen[op] = true
		}
	}
	if len(seen) != len(g.OpNodes()) {
		t.Fatalf("clusters cover %d ops, graph has %d", len(seen), len(g.OpNodes()))
	}
	// Each cluster's footprint must fit one column.
	for ci, ops := range clusters {
		fp := make(map[dfg.NodeID]struct{})
		for _, op := range ops {
			for _, x := range opFootprint(g, op, nil) {
				fp[x] = struct{}{}
			}
		}
		if len(fp) > target.Rows {
			t.Errorf("cluster %d footprint %d exceeds %d rows", ci, len(fp), target.Rows)
		}
	}
}

func TestPaperEq1Ablation(t *testing.T) {
	g := randomGraph(6, 8, 50)
	target := layout.Target{Arrays: 1, Rows: 16, Cols: 64}
	res, err := Optimized(g, Options{Target: target, PaperEq1: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	// Correctness must hold regardless of the scoring variant.
	verifyWith := func(o Options) {
		m := func(g *dfg.Graph, opt Options) (*Result, error) { return Optimized(g, o) }
		verifyMapping(t, g, m, target, 2, 41)
	}
	verifyWith(Options{Target: target, PaperEq1: true})
}

func TestMergeInstructionsSemanticsPreserved(t *testing.T) {
	// Merge a naive program (which the Naive mapper does not do itself)
	// and check the merged version computes identically.
	g := parallelKernels(4, 4)
	target := layout.Target{Arrays: 1, Rows: 32, Cols: 16}
	res, err := Naive(g, Options{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	merged, eliminated := MergeInstructions(res.Program)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged program invalid: %v", err)
	}
	if eliminated < 0 {
		t.Fatalf("negative elimination count %d", eliminated)
	}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		inputs := make(map[string]bool)
		for _, name := range g.InputNames() {
			inputs[name] = rng.Intn(2) == 1
		}
		m1 := sim.NewMachine(target)
		if err := m1.Run(res.Program, inputs); err != nil {
			t.Fatal(err)
		}
		m2 := sim.NewMachine(target)
		if err := m2.Run(merged, inputs); err != nil {
			t.Fatal(err)
		}
		for _, out := range g.Outputs() {
			p, _ := res.OutputPlace(out)
			v1, err1 := m1.ReadOut(p)
			v2, err2 := m2.ReadOut(p)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if v1 != v2 {
				t.Fatalf("merging changed output %q", g.OutputName(out))
			}
		}
	}
}

func TestMergeInstructionsEmptyProgram(t *testing.T) {
	out, n := MergeInstructions(nil)
	if len(out) != 0 || n != 0 {
		t.Error("empty program not handled")
	}
}

func TestDeterminism(t *testing.T) {
	g := randomGraph(9, 8, 60)
	target := layout.Target{Arrays: 1, Rows: 16, Cols: 64}
	r1, err := Optimized(g, Options{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimized(g, Options{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Program.String() != r2.Program.String() {
		t.Error("optimized mapping is not deterministic")
	}
	n1, _ := Naive(g, Options{Target: target})
	n2, _ := Naive(g, Options{Target: target})
	if n1.Program.String() != n2.Program.String() {
		t.Error("naive mapping is not deterministic")
	}
}

func TestRecyclingPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+40, 6, 50)
		target := layout.Target{Arrays: 1, Rows: 16, Cols: 64}
		mN := func(g *dfg.Graph, o Options) (*Result, error) {
			o.RecycleRows = true
			return Naive(g, o)
		}
		mO := func(g *dfg.Graph, o Options) (*Result, error) {
			o.RecycleRows = true
			return Optimized(g, o)
		}
		rn := verifyMapping(t, g, mN, target, 3, seed+300)
		ro := verifyMapping(t, g, mO, target, 3, seed+400)
		if rn.Stats.RecycledRows == 0 && ro.Stats.RecycledRows == 0 {
			t.Errorf("seed %d: no rows recycled on either mapper", seed)
		}
	}
}

func TestRecyclingExtendsCapacity(t *testing.T) {
	// A long chain: live set is tiny but total operand count is large.
	// Without recycling it cannot fit the target; with recycling it can.
	b := dfg.NewBuilder()
	b.DisableCSE = true
	x, y := b.Input("x"), b.Input("y")
	acc := b.And(x, y)
	for i := 0; i < 200; i++ {
		acc = b.Xor(acc, x)
		acc = b.And(acc, y)
	}
	b.Output("end", acc)
	g := b.Graph()

	tiny := layout.Target{Arrays: 1, Rows: 24, Cols: 8} // 192 cells < 400+ operands
	if _, err := Naive(g, Options{Target: tiny}); err == nil {
		t.Fatal("expected the tiny target to overflow without recycling")
	}
	m := func(g *dfg.Graph, o Options) (*Result, error) {
		o.RecycleRows = true
		return Naive(g, o)
	}
	res := verifyMapping(t, g, m, tiny, 4, 77)
	if res.Stats.RecycledRows == 0 {
		t.Fatal("no recycling on a kernel that requires it")
	}
}

func TestRecyclingNeverReleasesOutputs(t *testing.T) {
	// Chain where an intermediate is also a kernel output: it must stay
	// readable at the end even with aggressive recycling.
	gb := dfg.NewBuilder()
	gb.DisableCSE = true
	x, y := gb.Input("x"), gb.Input("y")
	mid := gb.And(x, y)
	gb.Output("mid", mid)
	acc := mid
	for i := 0; i < 30; i++ {
		acc = gb.Xor(acc, y)
	}
	gb.Output("end", acc)
	g := gb.Graph()
	m := func(g *dfg.Graph, o Options) (*Result, error) {
		o.RecycleRows = true
		return Optimized(g, o)
	}
	verifyMapping(t, g, m, layout.Target{Arrays: 1, Rows: 16, Cols: 8}, 6, 99)
}

func TestWearLevelingSpreadsWrites(t *testing.T) {
	// A long chain with recycling reuses few rows; wear leveling must
	// spread the writes over more cells, lowering the per-cell maximum,
	// without changing semantics.
	b := dfg.NewBuilder()
	b.DisableCSE = true
	x, y := b.Input("x"), b.Input("y")
	acc := b.And(x, y)
	for i := 0; i < 120; i++ {
		acc = b.Xor(acc, x)
		acc = b.And(acc, y)
	}
	b.Output("end", acc)
	g := b.Graph()
	tiny := layout.Target{Arrays: 1, Rows: 32, Cols: 4}

	wearOf := func(level bool) int {
		m := func(g *dfg.Graph, o Options) (*Result, error) {
			o.RecycleRows = true
			o.WearLeveling = level
			return Naive(g, o)
		}
		res := verifyMapping(t, g, m, tiny, 3, 123)
		rep, err := reliability.AssessWear(res.Program)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxWritesPerCell
	}
	lifo := wearOf(false)
	fifo := wearOf(true)
	if fifo >= lifo {
		t.Errorf("wear leveling did not spread writes: max/cell %d (FIFO) vs %d (LIFO)", fifo, lifo)
	}
}
