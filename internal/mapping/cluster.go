package mapping

import (
	"container/heap"
	"fmt"
	"sort"

	"sherlock/internal/dfg"
)

// cluster is a group of op nodes destined for one CIM column. Its footprint
// is the set of operand cells the column must hold: every input consumed by
// the cluster's ops (locally produced or copied in) plus every output.
type cluster struct {
	id        int
	ops       []dfg.NodeID
	footprint map[dfg.NodeID]struct{}
}

func (c *cluster) footprintWith(extra []dfg.NodeID) int {
	n := len(c.footprint)
	for _, x := range extra {
		if _, ok := c.footprint[x]; !ok {
			n++
		}
	}
	return n
}

func (c *cluster) add(op dfg.NodeID, operands []dfg.NodeID) {
	c.ops = append(c.ops, op)
	for _, x := range operands {
		c.footprint[x] = struct{}{}
	}
}

// clusterer runs the FindClusters procedure of Algorithm 2.
type clusterer struct {
	g         *dfg.Graph
	bl        map[dfg.NodeID]int
	maxSize   int
	opt       Options
	clusters  map[int]*cluster
	opCluster map[dfg.NodeID]int
	nextID    int
}

// opFootprint returns the operand cells an op contributes: its inputs and
// its output.
func opFootprint(g *dfg.Graph, op dfg.NodeID) []dfg.NodeID {
	return append(g.OpInputs(op), g.OpOutput(op))
}

// findClusters partitions the op nodes into clusters whose footprints fit a
// column (C_maxSize), then greedily merges down toward k clusters. It
// returns the clusters as ordered op lists; every op appears exactly once.
func findClusters(g *dfg.Graph, opt Options, maxSize, k int) ([][]dfg.NodeID, error) {
	c := &clusterer{
		g:         g,
		bl:        g.BLevels(),
		maxSize:   maxSize,
		opt:       opt,
		clusters:  make(map[int]*cluster),
		opCluster: make(map[dfg.NodeID]int),
	}
	for _, op := range g.OpsByPriority() {
		if err := c.assign(op); err != nil {
			return nil, err
		}
	}
	c.mergeClusters(k)
	return c.ordered(), nil
}

func (c *clusterer) newCluster(op dfg.NodeID) {
	cl := &cluster{id: c.nextID, footprint: make(map[dfg.NodeID]struct{})}
	c.nextID++
	cl.add(op, opFootprint(c.g, op))
	c.clusters[cl.id] = cl
	c.opCluster[op] = cl.id
}

// assign places one op node following the case analysis of Sec. 3.3.1.
// Because predecessors always have strictly higher b-levels, they are
// already assigned when the node is visited.
func (c *clusterer) assign(op dfg.NodeID) error {
	fp := opFootprint(c.g, op)
	if len(fp) > c.maxSize {
		return fmt.Errorf("mapping: op %q needs %d cells, column holds %d", c.g.Name(op), len(fp), c.maxSize)
	}
	preds := c.g.OpPreds(op)
	if len(preds) == 0 {
		c.newCluster(op)
		return nil
	}

	// Distinct predecessor clusters, in deterministic order.
	seen := make(map[int]bool)
	var pcs []*cluster
	for _, p := range preds {
		id := c.opCluster[p]
		if !seen[id] {
			seen[id] = true
			pcs = append(pcs, c.clusters[id])
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i].id < pcs[j].id })

	// Case 2 (generalized): when several predecessor clusters can merge
	// into one column together with the node, do so — this removes the
	// cross-cluster dependency entirely.
	if len(pcs) > 1 {
		if merged := c.tryMergeAll(pcs, fp); merged != nil {
			merged.add(op, fp)
			c.opCluster[op] = merged.id
			return nil
		}
	}

	// Cases 1, 3, 4, 5 collapse into the assignment score (Eq. 1): pick
	// the predecessor cluster with the best score among those with room.
	var best *cluster
	bestScore := 0.0
	for _, pc := range pcs {
		if pc.footprintWith(fp) > c.maxSize {
			continue
		}
		s := c.score(op, pc, preds)
		if best == nil || s > bestScore {
			best, bestScore = pc, s
		}
	}
	if best == nil {
		c.newCluster(op)
		return nil
	}
	best.add(op, fp)
	c.opCluster[op] = best.id
	return nil
}

func (c *clusterer) tryMergeAll(pcs []*cluster, fp []dfg.NodeID) *cluster {
	union := make(map[dfg.NodeID]struct{})
	for _, pc := range pcs {
		for x := range pc.footprint {
			union[x] = struct{}{}
		}
	}
	for _, x := range fp {
		union[x] = struct{}{}
	}
	if len(union) > c.maxSize {
		return nil
	}
	dst := pcs[0]
	for _, src := range pcs[1:] {
		c.absorb(dst, src)
	}
	return dst
}

// absorb merges src into dst and deletes src.
func (c *clusterer) absorb(dst, src *cluster) {
	for _, op := range src.ops {
		c.opCluster[op] = dst.id
	}
	dst.ops = append(dst.ops, src.ops...)
	for x := range src.footprint {
		dst.footprint[x] = struct{}{}
	}
	delete(c.clusters, src.id)
}

// score implements Eq. 1. The default form follows the paper's prose:
// affinity grows with the number of in-cluster predecessors and shrinks
// with their priority distance, while larger clusters are penalized to
// balance load (case 5). With PaperEq1 the literally printed formula
// (β·|C| + α·Σρ) is used instead.
func (c *clusterer) score(op dfg.NodeID, pc *cluster, preds []dfg.NodeID) float64 {
	alpha, beta := c.opt.Alpha, c.opt.Beta
	if c.opt.PaperEq1 {
		sum := 0.0
		for _, q := range preds {
			if c.opCluster[q] == pc.id {
				sum += float64(c.bl[q] - c.bl[op])
			}
		}
		return beta*float64(len(pc.ops)) + alpha*sum
	}
	affinity := 0.0
	for _, q := range preds {
		if c.opCluster[q] == pc.id {
			rho := float64(c.bl[q] - c.bl[op])
			affinity += 1 / (1 + rho)
		}
	}
	return alpha*affinity - beta*float64(len(pc.ops))/float64(c.maxSize)
}

// pairKey canonically orders a cluster pair.
type pairKey struct{ a, b int }

func makePair(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

type pairItem struct {
	key    pairKey
	weight int
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight > h[j].weight
	}
	if h[i].key.a != h[j].key.a {
		return h[i].key.a < h[j].key.a
	}
	return h[i].key.b < h[j].key.b
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)   { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// mergeClusters greedily merges the most-dependent cluster pairs (data-flow
// edges plus shared operands) until at most k clusters remain or nothing
// more fits in a column.
func (c *clusterer) mergeClusters(k int) {
	if len(c.clusters) <= k {
		return
	}
	// Pair weights from op-level data-flow edges and shared inputs.
	weights := make(map[pairKey]int)
	for _, op := range c.g.OpNodes() {
		a := c.opCluster[op]
		for _, s := range c.g.OpSuccs(op) {
			if b := c.opCluster[s]; b != a {
				weights[makePair(a, b)] += 2 // direct dependency
			}
		}
	}
	// Shared operands (two clusters reading the same value).
	for _, operand := range c.g.Operands() {
		consumers := c.g.Consumers(operand)
		ids := make(map[int]bool)
		for _, cons := range consumers {
			ids[c.opCluster[cons]] = true
		}
		list := make([]int, 0, len(ids))
		for id := range ids {
			list = append(list, id)
		}
		sort.Ints(list)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				weights[makePair(list[i], list[j])]++
			}
		}
	}

	// Adjacency view for O(degree) weight folding on merge.
	adj := make(map[int]map[int]int, len(c.clusters))
	addEdge := func(a, b, w int) {
		if adj[a] == nil {
			adj[a] = make(map[int]int)
		}
		adj[a][b] += w
	}
	h := make(pairHeap, 0, len(weights))
	for key, w := range weights {
		addEdge(key.a, key.b, w)
		addEdge(key.b, key.a, w)
		h = append(h, pairItem{key: key, weight: w})
	}
	heap.Init(&h)

	for len(c.clusters) > k && h.Len() > 0 {
		it := heap.Pop(&h).(pairItem)
		a, b := it.key.a, it.key.b
		ca, okA := c.clusters[a]
		cb, okB := c.clusters[b]
		if !okA || !okB {
			continue // one side already merged away
		}
		if adj[a][b] != it.weight {
			continue // stale weight; a fresher entry exists
		}
		if ca.footprintWith(keys(cb.footprint)) > c.maxSize {
			// Footprints only grow; this pair can never merge. Drop it.
			delete(adj[a], b)
			delete(adj[b], a)
			continue
		}
		// Merge b into a; fold b's adjacency into a's.
		c.absorb(ca, cb)
		delete(adj[a], b)
		for o, w := range adj[b] {
			if o == a {
				continue
			}
			delete(adj[o], b)
			addEdge(a, o, w)
			addEdge(o, a, w)
			heap.Push(&h, pairItem{key: makePair(a, o), weight: adj[a][o]})
		}
		delete(adj, b)
	}
}

func keys(m map[dfg.NodeID]struct{}) []dfg.NodeID {
	out := make([]dfg.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// ordered returns the surviving clusters' op lists, clusters sorted by id
// and ops within a cluster left in insertion (priority) order.
func (c *clusterer) ordered() [][]dfg.NodeID {
	ids := make([]int, 0, len(c.clusters))
	for id := range c.clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]dfg.NodeID, len(ids))
	for i, id := range ids {
		out[i] = c.clusters[id].ops
	}
	return out
}
