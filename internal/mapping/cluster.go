package mapping

import (
	"fmt"
	"slices"

	"sherlock/internal/bitvec"
	"sherlock/internal/dfg"
)

// cluster is a group of op nodes destined for one CIM column. Its footprint
// is the set of operand cells the column must hold: every input consumed by
// the cluster's ops (locally produced or copied in) plus every output. The
// representation is adaptive (see clusterer.dense): a bitset over the dense
// operand numbering while the operand space is small enough that a bitset
// scan beats a merge walk, a sorted slice of operand indices beyond that —
// a footprint never exceeds maxSize entries, so the sparse form keeps
// 100k-op DFGs at O(footprint) memory per cluster instead of O(operands).
// Exactly one of fp/footprint is in use; both implement the same set
// semantics, so the emitted program does not depend on the choice.
type cluster struct {
	id  int
	ops []dfg.NodeID

	// Sparse form.
	fp []int32 // sorted distinct operand indices; len(fp) ≤ maxSize

	// Dense form.
	footprint *bitvec.Vector
	size      int32 // popcount of footprint
	lo, hi    int32 // dirty word band [lo, hi] (hi < lo when empty)
}

func (c *cluster) has(x int32) bool {
	if c.footprint != nil {
		return c.footprint.Get(int(x))
	}
	_, ok := slices.BinarySearch(c.fp, x)
	return ok
}

// fpSize returns the footprint's cardinality.
func (c *cluster) fpSize() int {
	if c.footprint != nil {
		return int(c.size)
	}
	return len(c.fp)
}

// footprintWith sizes the union with extra operand cells; extra holds
// dense operand indices (clusterer.fpIdx).
func (c *cluster) footprintWith(extra []int32) int {
	n := c.fpSize()
	for _, x := range extra {
		if !c.has(x) {
			n++
		}
	}
	return n
}

func (c *cluster) add(op dfg.NodeID, operands []int32) {
	c.ops = append(c.ops, op)
	if c.footprint != nil {
		for _, x := range operands {
			if !c.footprint.Get(int(x)) {
				c.footprint.Set(int(x), true)
				c.size++
				c.lo = min(c.lo, x>>6)
				c.hi = max(c.hi, x>>6)
			}
		}
		return
	}
	for _, x := range operands {
		if i, ok := slices.BinarySearch(c.fp, x); !ok {
			c.fp = slices.Insert(c.fp, i, x)
		}
	}
}

// mergeSortedInto merges two sorted distinct slices into dst (deduplicating
// values present in both) and returns it.
func mergeSortedInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// unionSizeAbove reports whether the union of two sorted distinct slices
// has more than limit elements, walking both only as far as needed.
func unionSizeAbove(a, b []int32, limit int) bool {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		n++
		if n > limit {
			return true
		}
		if n+(len(a)-i)+(len(b)-j) <= limit {
			return false // even counting every remainder it fits
		}
	}
	return n+(len(a)-i)+(len(b)-j) > limit
}

// clusterer runs the FindClusters procedure of Algorithm 2. All state is
// indexed by dense IDs (NodeID for ops/operands, sequential ints for
// clusters); the only maps left are the adjacency view of mergeClusters.
type clusterer struct {
	g        *dfg.Graph
	bl       []int32 // b-level per node, indexed by NodeID
	numNodes int
	maxSize  int
	opt      Options

	// Footprints only ever hold operand cells, so they are indexed by a
	// dense operand numbering instead of the full NodeID space. dense
	// selects the footprint representation: a bitset while a full scan
	// (numOperands/64 words) costs no more than a sparse merge walk
	// (maxSize entries), sorted slices beyond that.
	fpIdx       []int32 // NodeID -> dense operand index (-1 for ops)
	numOperands int
	dense       bool

	clusters  []*cluster // indexed by cluster id; nil once absorbed
	live      int        // clusters still alive
	opCluster []int32    // NodeID -> cluster id (-1 until assigned)

	// Reusable scratch.
	fpBuf    []dfg.NodeID // one op's footprint (inputs + output)
	fpIdxBuf []int32      // fpBuf translated to dense operand indices
	predBuf  []dfg.NodeID // one op's distinct predecessors
	pcsBuf   []*cluster   // distinct predecessor clusters
	ubufA    []int32      // tryMergeAll's candidate union (double-buffered)
	ubufB    []int32
	fpFree   [][]int32 // absorbed clusters' sparse footprints, ready for reuse

	// Dense-mode scratch.
	union   *bitvec.Vector // tryMergeAll's candidate union
	unionLo int32          // word band the last tryMergeAll dirtied
	unionHi int32
	vecFree []*bitvec.Vector // absorbed clusters' bitsets, ready for reuse
}

// opFootprint appends the operand cells an op contributes — its inputs and
// its output — to buf.
func opFootprint(g *dfg.Graph, op dfg.NodeID, buf []dfg.NodeID) []dfg.NodeID {
	buf = g.AppendOpInputs(op, buf)
	return append(buf, g.OpOutput(op))
}

// findClusters partitions the op nodes into clusters whose footprints fit a
// column (C_maxSize), then greedily merges down toward k clusters. It
// returns the clusters as ordered op lists; every op appears exactly once.
func findClusters(g *dfg.Graph, opt Options, maxSize, k int) ([][]dfg.NodeID, error) {
	n := g.NumNodes()
	c := &clusterer{
		g:         g,
		bl:        g.BLevelsDense(),
		numNodes:  n,
		maxSize:   maxSize,
		opt:       opt,
		opCluster: make([]int32, n),
		fpIdx:     make([]int32, n),
	}
	for i := range c.opCluster {
		c.opCluster[i] = -1
		c.fpIdx[i] = -1
	}
	for _, x := range g.Operands() {
		c.fpIdx[x] = int32(c.numOperands)
		c.numOperands++
	}
	c.dense = c.numOperands <= 64*maxSize
	if c.dense {
		c.union = bitvec.New(c.numOperands)
		c.unionLo, c.unionHi = int32(c.union.Words()), -1
	}
	if err := forEachOp(g, opt, c.assign); err != nil {
		return nil, err
	}
	c.mergeClusters(k)
	return c.ordered(), nil
}

// grabFp returns an empty footprint slice, reusing an absorbed cluster's
// backing when one is free.
func (c *clusterer) grabFp() []int32 {
	if n := len(c.fpFree); n > 0 {
		s := c.fpFree[n-1]
		c.fpFree = c.fpFree[:n-1]
		return s[:0]
	}
	return make([]int32, 0, 16)
}

func (c *clusterer) newCluster(op dfg.NodeID, fp []int32) {
	var cl *cluster
	if c.dense {
		var v *bitvec.Vector
		if n := len(c.vecFree); n > 0 {
			// Recycled vectors were range-zeroed when freed; no Reset needed.
			v = c.vecFree[n-1]
			c.vecFree = c.vecFree[:n-1]
		} else {
			v = bitvec.New(c.numOperands)
		}
		cl = &cluster{id: len(c.clusters), footprint: v, lo: int32(v.Words()), hi: -1}
	} else {
		cl = &cluster{id: len(c.clusters), fp: c.grabFp()}
	}
	cl.add(op, fp)
	c.clusters = append(c.clusters, cl)
	c.live++
	c.opCluster[op] = int32(cl.id)
}

// assign places one op node following the case analysis of Sec. 3.3.1.
// Because predecessors always have strictly higher b-levels, they are
// already assigned when the node is visited.
func (c *clusterer) assign(op dfg.NodeID) error {
	c.fpBuf = opFootprint(c.g, op, c.fpBuf[:0])
	c.fpIdxBuf = c.fpIdxBuf[:0]
	for _, x := range c.fpBuf {
		c.fpIdxBuf = append(c.fpIdxBuf, c.fpIdx[x])
	}
	fp := c.fpIdxBuf
	if len(fp) > c.maxSize {
		return fmt.Errorf("mapping: op %q needs %d cells, column holds %d", c.g.Name(op), len(fp), c.maxSize)
	}
	c.predBuf = c.g.AppendOpPreds(op, c.predBuf[:0])
	preds := c.predBuf
	if len(preds) == 0 {
		c.newCluster(op, fp)
		return nil
	}

	// Distinct predecessor clusters, in deterministic (ascending id) order.
	pcs := c.pcsBuf[:0]
	for _, p := range preds {
		id := c.opCluster[p]
		dup := false
		for _, pc := range pcs {
			if pc.id == int(id) {
				dup = true
				break
			}
		}
		if !dup {
			pcs = append(pcs, c.clusters[id])
		}
	}
	slices.SortFunc(pcs, func(a, b *cluster) int { return a.id - b.id })
	c.pcsBuf = pcs

	// Case 2 (generalized): when several predecessor clusters can merge
	// into one column together with the node, do so — this removes the
	// cross-cluster dependency entirely.
	if len(pcs) > 1 {
		if merged := c.tryMergeAll(pcs, fp); merged != nil {
			merged.add(op, fp)
			c.opCluster[op] = int32(merged.id)
			return nil
		}
	}

	// Cases 1, 3, 4, 5 collapse into the assignment score (Eq. 1): pick
	// the predecessor cluster with the best score among those with room.
	var best *cluster
	bestScore := 0.0
	for _, pc := range pcs {
		if pc.footprintWith(fp) > c.maxSize {
			continue
		}
		s := c.score(op, pc, preds)
		if best == nil || s > bestScore {
			best, bestScore = pc, s
		}
	}
	if best == nil {
		c.newCluster(op, fp)
		return nil
	}
	best.add(op, fp)
	c.opCluster[op] = int32(best.id)
	return nil
}

// tryMergeAll checks whether all predecessor clusters plus the op's own
// footprint fit one column, and if so merges them. The candidate union is
// built in reusable scratch — nothing is modified unless the merge is
// committed.
func (c *clusterer) tryMergeAll(pcs []*cluster, fp []int32) *cluster {
	if c.dense {
		return c.tryMergeAllDense(pcs, fp)
	}
	u := append(c.ubufA[:0], pcs[0].fp...)
	buf := c.ubufB
	for _, pc := range pcs[1:] {
		buf = mergeSortedInto(buf[:0], u, pc.fp)
		u, buf = buf, u
	}
	c.ubufA, c.ubufB = u, buf // keep the grown backings for reuse
	total := len(u)
	for i, x := range fp {
		if _, ok := slices.BinarySearch(u, x); ok {
			continue
		}
		if slices.Contains(fp[:i], x) {
			continue // duplicate within the op's own footprint
		}
		total++
	}
	if total > c.maxSize {
		return nil
	}
	dst := pcs[0]
	for _, src := range pcs[1:] {
		c.absorb(dst, src)
	}
	return dst
}

// tryMergeAllDense is tryMergeAll's bitset path: word-wide ORs into a
// scratch vector, range-zeroed between calls.
func (c *clusterer) tryMergeAllDense(pcs []*cluster, fp []int32) *cluster {
	// The union scratch is only dirty where the previous call left bits;
	// range-zero that band instead of wiping the whole vector.
	if c.unionHi >= c.unionLo {
		c.union.ZeroRange(int(c.unionLo), int(c.unionHi))
	}
	c.unionLo, c.unionHi = int32(c.union.Words()), -1
	total := 0
	for _, pc := range pcs {
		if pc.hi < pc.lo {
			continue
		}
		total += c.union.OrWithRangeCountNew(pc.footprint, int(pc.lo), int(pc.hi))
		c.unionLo = min(c.unionLo, pc.lo)
		c.unionHi = max(c.unionHi, pc.hi)
	}
	for _, x := range fp {
		if !c.union.Get(int(x)) {
			c.union.Set(int(x), true)
			total++
			c.unionLo = min(c.unionLo, x>>6)
			c.unionHi = max(c.unionHi, x>>6)
		}
	}
	if total > c.maxSize {
		return nil
	}
	dst := pcs[0]
	for _, src := range pcs[1:] {
		c.absorb(dst, src)
	}
	return dst
}

// absorb merges src into dst and deletes src.
func (c *clusterer) absorb(dst, src *cluster) {
	for _, op := range src.ops {
		c.opCluster[op] = int32(dst.id)
	}
	dst.ops = append(dst.ops, src.ops...)
	if c.dense {
		if src.hi >= src.lo {
			oLo, oHi := max(dst.lo, src.lo), min(dst.hi, src.hi)
			inter := 0
			if oLo <= oHi {
				inter = bitvec.IntersectOnesCountRange(dst.footprint, src.footprint, int(oLo), int(oHi))
			}
			dst.footprint.OrWithRange(src.footprint, int(src.lo), int(src.hi))
			dst.size += src.size - int32(inter)
			dst.lo = min(dst.lo, src.lo)
			dst.hi = max(dst.hi, src.hi)
			// Range-zero now so newCluster can reuse the vector without a
			// full Reset.
			src.footprint.ZeroRange(int(src.lo), int(src.hi))
		}
		c.vecFree = append(c.vecFree, src.footprint)
		src.footprint = nil
	} else {
		merged := mergeSortedInto(c.grabFp(), dst.fp, src.fp)
		c.fpFree = append(c.fpFree, dst.fp, src.fp)
		dst.fp = merged
		src.fp = nil
	}
	c.clusters[src.id] = nil
	c.live--
}

// unionAbove reports whether |A∪B| exceeds the column capacity, assuming
// the caller already knows |A|+|B| does.
func (c *clusterer) unionAbove(ca, cb *cluster) bool {
	if c.dense {
		// |A∪B| = |A|+|B|−|A∩B|, and the intersection can only live where
		// the clusters' word bands overlap — usually a narrow band, since
		// clusters grow from temporally adjacent ops.
		oLo, oHi := max(ca.lo, cb.lo), min(ca.hi, cb.hi)
		inter := 0
		if oLo <= oHi {
			inter = bitvec.IntersectOnesCountRange(ca.footprint, cb.footprint, int(oLo), int(oHi))
		}
		return int(ca.size+cb.size)-inter > c.maxSize
	}
	return unionSizeAbove(ca.fp, cb.fp, c.maxSize)
}

// score implements Eq. 1. The default form follows the paper's prose:
// affinity grows with the number of in-cluster predecessors and shrinks
// with their priority distance, while larger clusters are penalized to
// balance load (case 5). With PaperEq1 the literally printed formula
// (β·|C| + α·Σρ) is used instead.
func (c *clusterer) score(op dfg.NodeID, pc *cluster, preds []dfg.NodeID) float64 {
	alpha, beta := c.opt.Alpha, c.opt.Beta
	if c.opt.PaperEq1 {
		sum := 0.0
		for _, q := range preds {
			if c.opCluster[q] == int32(pc.id) {
				sum += float64(c.bl[q] - c.bl[op])
			}
		}
		return beta*float64(len(pc.ops)) + alpha*sum
	}
	affinity := 0.0
	for _, q := range preds {
		if c.opCluster[q] == int32(pc.id) {
			rho := float64(c.bl[q] - c.bl[op])
			affinity += 1 / (1 + rho)
		}
	}
	return alpha*affinity - beta*float64(len(pc.ops))/float64(c.maxSize)
}

// makePair packs a canonically ordered cluster pair into one word, so the
// dependence-occurrence list sorts as plain integers.
func makePair(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// pairEdge is one weighted cluster pair on the merge heap.
type pairEdge struct{ weight, a, b int32 }

// edgeLess orders the merge heap: heaviest pair first, ties by ascending
// pair — a strict total order, so the pop sequence is deterministic.
func edgeLess(x, y pairEdge) bool {
	if x.weight != y.weight {
		return x.weight > y.weight
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// edgeHeap is a hand-rolled binary heap under edgeLess; container/heap's
// interface indirection showed up in mapper profiles, and the merge loop
// pushes and pops tens of thousands of edges.
type edgeHeap []pairEdge

func (h *edgeHeap) push(e pairEdge) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !edgeLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *edgeHeap) pop() pairEdge {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && edgeLess(s[r], s[l]) {
			m = r
		}
		if !edgeLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// init establishes the heap property bottom-up (Floyd) in O(n).
func (h edgeHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l := 2*j + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && edgeLess(h[r], h[l]) {
				m = r
			}
			if !edgeLess(h[m], h[j]) {
				break
			}
			h[j], h[m] = h[m], h[j]
			j = m
		}
	}
}

// mergeClusters greedily merges the most-dependent cluster pairs (data-flow
// edges plus shared operands) until at most k clusters remain or nothing
// more fits in a column. Pair weights are gathered by sorted-pair
// accumulation: every dependence occurrence appends one packed pair (direct
// data-flow edges append two, keeping their historical weight of 2), the
// pair list is sorted once, and equal runs become weighted edges — no
// per-operand set allocation.
func (c *clusterer) mergeClusters(k int) {
	if c.live <= k {
		return
	}
	var pairs []uint64
	var idBuf []int32
	var opBuf []dfg.NodeID
	for _, op := range c.g.OpNodes() {
		a := int(c.opCluster[op])
		// Distinct successor ops (consumers of op's output).
		opBuf = c.g.AppendConsumers(c.g.OpOutput(op), opBuf[:0])
		for i, s := range opBuf {
			dup := false
			for _, q := range opBuf[:i] {
				if q == s {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if b := int(c.opCluster[s]); b != a {
				pk := makePair(a, b)
				pairs = append(pairs, pk, pk) // direct dependency: weight 2
			}
		}
	}
	// Shared operands (two clusters reading the same value).
	for _, operand := range c.g.Operands() {
		opBuf = c.g.AppendConsumers(operand, opBuf[:0])
		idBuf = idBuf[:0]
		for _, cons := range opBuf {
			id := c.opCluster[cons]
			if !slices.Contains(idBuf, id) {
				idBuf = append(idBuf, id)
			}
		}
		slices.Sort(idBuf)
		for i := 0; i < len(idBuf); i++ {
			for j := i + 1; j < len(idBuf); j++ {
				pairs = append(pairs, uint64(idBuf[i])<<32|uint64(idBuf[j]))
			}
		}
	}
	slices.Sort(pairs)

	// Adjacency view for O(degree) weight folding on merge. Cluster ids
	// are dense, so the outer level is a plain slice, and a degree
	// pre-pass sizes each inner map once instead of growing it through
	// several rehashes.
	deg := make([]int32, len(c.clusters))
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		deg[pairs[i]>>32]++
		deg[pairs[i]&0xffffffff]++
		i = j
	}
	adj := make([]map[int]int, len(c.clusters))
	addEdge := func(a, b, w int) {
		m := adj[a]
		if m == nil {
			m = make(map[int]int, deg[a]+4) // slack for folded-in edges
			adj[a] = m
		}
		m[b] += w
	}
	h := make(edgeHeap, 0, len(pairs))
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		a, b, w := int(pairs[i]>>32), int(pairs[i]&0xffffffff), j-i
		addEdge(a, b, w)
		addEdge(b, a, w)
		h = append(h, pairEdge{weight: int32(w), a: int32(a), b: int32(b)})
		i = j
	}
	h.init()

	for c.live > k && len(h) > 0 {
		it := h.pop()
		a, b := int(it.a), int(it.b)
		ca, cb := c.clusters[a], c.clusters[b]
		if ca == nil || cb == nil {
			continue // one side already merged away
		}
		if adj[a][b] != int(it.weight) {
			continue // stale weight; a fresher entry exists
		}
		// |A∪B| ≤ |A|+|B|, so most pairs resolve on the cached sizes alone;
		// only when the sum overshoots is the union actually measured.
		if ca.fpSize()+cb.fpSize() > c.maxSize && c.unionAbove(ca, cb) {
			// Footprints only grow; this pair can never merge. Drop it.
			delete(adj[a], b)
			delete(adj[b], a)
			continue
		}
		// Merge b into a; fold b's adjacency into a's.
		c.absorb(ca, cb)
		delete(adj[a], b)
		// Each neighbour o is folded exactly once and the pair heap has a
		// strict total order on (weight, key), so the pop sequence — and
		// with it the emitted program — is independent of this iteration
		// order. The byte-pinned goldens hold that promise to account.
		//sherlock:allow rangemap
		for o, w := range adj[b] {
			if o == a {
				continue
			}
			delete(adj[o], b)
			addEdge(a, o, w)
			addEdge(o, a, w)
			na, nb := a, o
			if na > nb {
				na, nb = nb, na
			}
			h.push(pairEdge{weight: int32(adj[a][o]), a: int32(na), b: int32(nb)})
		}
		adj[b] = nil
	}
}

// ordered returns the surviving clusters' op lists, clusters in ascending
// id order and ops within a cluster left in insertion (priority) order.
func (c *clusterer) ordered() [][]dfg.NodeID {
	out := make([][]dfg.NodeID, 0, c.live)
	for _, cl := range c.clusters {
		if cl != nil {
			out = append(out, cl.ops)
		}
	}
	return out
}
