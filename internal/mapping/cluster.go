package mapping

import (
	"container/heap"
	"fmt"
	"slices"

	"sherlock/internal/bitvec"
	"sherlock/internal/dfg"
)

// cluster is a group of op nodes destined for one CIM column. Its footprint
// is the set of operand cells the column must hold: every input consumed by
// the cluster's ops (locally produced or copied in) plus every output. The
// footprint is a word-packed bitset over NodeIDs, so the capacity checks
// and unions of the clustering loop are word-wide OR/popcount instead of
// hash-map iteration.
type cluster struct {
	id        int
	ops       []dfg.NodeID
	footprint *bitvec.Vector
	size      int // popcount of footprint, maintained incrementally
}

func (c *cluster) footprintWith(extra []dfg.NodeID) int {
	n := c.size
	for _, x := range extra {
		if !c.footprint.Get(int(x)) {
			n++
		}
	}
	return n
}

func (c *cluster) add(op dfg.NodeID, operands []dfg.NodeID) {
	c.ops = append(c.ops, op)
	for _, x := range operands {
		if !c.footprint.Get(int(x)) {
			c.footprint.Set(int(x), true)
			c.size++
		}
	}
}

// clusterer runs the FindClusters procedure of Algorithm 2. All state is
// indexed by dense IDs (NodeID for ops/operands, sequential ints for
// clusters); the only maps left are the adjacency view of mergeClusters.
type clusterer struct {
	g        *dfg.Graph
	bl       []int32 // b-level per node, indexed by NodeID
	numNodes int
	maxSize  int
	opt      Options

	clusters  []*cluster // indexed by cluster id; nil once absorbed
	live      int        // clusters still alive
	opCluster []int32    // NodeID -> cluster id (-1 until assigned)

	// Reusable scratch.
	fpBuf   []dfg.NodeID   // one op's footprint (inputs + output)
	predBuf []dfg.NodeID   // one op's distinct predecessors
	pcsBuf  []*cluster     // distinct predecessor clusters
	union   *bitvec.Vector // tryMergeAll's candidate union
}

// opFootprint appends the operand cells an op contributes — its inputs and
// its output — to buf.
func opFootprint(g *dfg.Graph, op dfg.NodeID, buf []dfg.NodeID) []dfg.NodeID {
	buf = g.AppendOpInputs(op, buf)
	return append(buf, g.OpOutput(op))
}

// findClusters partitions the op nodes into clusters whose footprints fit a
// column (C_maxSize), then greedily merges down toward k clusters. It
// returns the clusters as ordered op lists; every op appears exactly once.
func findClusters(g *dfg.Graph, opt Options, maxSize, k int) ([][]dfg.NodeID, error) {
	n := g.NumNodes()
	c := &clusterer{
		g:         g,
		bl:        g.BLevelsDense(),
		numNodes:  n,
		maxSize:   maxSize,
		opt:       opt,
		opCluster: make([]int32, n),
		union:     bitvec.New(n),
	}
	for i := range c.opCluster {
		c.opCluster[i] = -1
	}
	for _, op := range g.OpsByPriority() {
		if err := c.assign(op); err != nil {
			return nil, err
		}
	}
	c.mergeClusters(k)
	return c.ordered(), nil
}

func (c *clusterer) newCluster(op dfg.NodeID, fp []dfg.NodeID) {
	cl := &cluster{id: len(c.clusters), footprint: bitvec.New(c.numNodes)}
	cl.add(op, fp)
	c.clusters = append(c.clusters, cl)
	c.live++
	c.opCluster[op] = int32(cl.id)
}

// assign places one op node following the case analysis of Sec. 3.3.1.
// Because predecessors always have strictly higher b-levels, they are
// already assigned when the node is visited.
func (c *clusterer) assign(op dfg.NodeID) error {
	c.fpBuf = opFootprint(c.g, op, c.fpBuf[:0])
	fp := c.fpBuf
	if len(fp) > c.maxSize {
		return fmt.Errorf("mapping: op %q needs %d cells, column holds %d", c.g.Name(op), len(fp), c.maxSize)
	}
	c.predBuf = c.g.AppendOpPreds(op, c.predBuf[:0])
	preds := c.predBuf
	if len(preds) == 0 {
		c.newCluster(op, fp)
		return nil
	}

	// Distinct predecessor clusters, in deterministic (ascending id) order.
	pcs := c.pcsBuf[:0]
	for _, p := range preds {
		id := c.opCluster[p]
		dup := false
		for _, pc := range pcs {
			if pc.id == int(id) {
				dup = true
				break
			}
		}
		if !dup {
			pcs = append(pcs, c.clusters[id])
		}
	}
	slices.SortFunc(pcs, func(a, b *cluster) int { return a.id - b.id })
	c.pcsBuf = pcs

	// Case 2 (generalized): when several predecessor clusters can merge
	// into one column together with the node, do so — this removes the
	// cross-cluster dependency entirely.
	if len(pcs) > 1 {
		if merged := c.tryMergeAll(pcs, fp); merged != nil {
			merged.add(op, fp)
			c.opCluster[op] = int32(merged.id)
			return nil
		}
	}

	// Cases 1, 3, 4, 5 collapse into the assignment score (Eq. 1): pick
	// the predecessor cluster with the best score among those with room.
	var best *cluster
	bestScore := 0.0
	for _, pc := range pcs {
		if pc.footprintWith(fp) > c.maxSize {
			continue
		}
		s := c.score(op, pc, preds)
		if best == nil || s > bestScore {
			best, bestScore = pc, s
		}
	}
	if best == nil {
		c.newCluster(op, fp)
		return nil
	}
	best.add(op, fp)
	c.opCluster[op] = int32(best.id)
	return nil
}

// tryMergeAll checks whether all predecessor clusters plus the op's own
// footprint fit one column, and if so merges them. The candidate union is
// word-wide ORs into a scratch bitset — nothing is modified unless the
// merge is committed.
func (c *clusterer) tryMergeAll(pcs []*cluster, fp []dfg.NodeID) *cluster {
	c.union.CopyFrom(pcs[0].footprint)
	for _, pc := range pcs[1:] {
		c.union.OrWith(pc.footprint)
	}
	total := c.union.OnesCount()
	for _, x := range fp {
		if !c.union.Get(int(x)) {
			c.union.Set(int(x), true)
			total++
		}
	}
	if total > c.maxSize {
		return nil
	}
	dst := pcs[0]
	for _, src := range pcs[1:] {
		c.absorb(dst, src)
	}
	return dst
}

// absorb merges src into dst and deletes src.
func (c *clusterer) absorb(dst, src *cluster) {
	for _, op := range src.ops {
		c.opCluster[op] = int32(dst.id)
	}
	dst.ops = append(dst.ops, src.ops...)
	dst.footprint.OrWith(src.footprint)
	dst.size = dst.footprint.OnesCount()
	c.clusters[src.id] = nil
	c.live--
}

// score implements Eq. 1. The default form follows the paper's prose:
// affinity grows with the number of in-cluster predecessors and shrinks
// with their priority distance, while larger clusters are penalized to
// balance load (case 5). With PaperEq1 the literally printed formula
// (β·|C| + α·Σρ) is used instead.
func (c *clusterer) score(op dfg.NodeID, pc *cluster, preds []dfg.NodeID) float64 {
	alpha, beta := c.opt.Alpha, c.opt.Beta
	if c.opt.PaperEq1 {
		sum := 0.0
		for _, q := range preds {
			if c.opCluster[q] == int32(pc.id) {
				sum += float64(c.bl[q] - c.bl[op])
			}
		}
		return beta*float64(len(pc.ops)) + alpha*sum
	}
	affinity := 0.0
	for _, q := range preds {
		if c.opCluster[q] == int32(pc.id) {
			rho := float64(c.bl[q] - c.bl[op])
			affinity += 1 / (1 + rho)
		}
	}
	return alpha*affinity - beta*float64(len(pc.ops))/float64(c.maxSize)
}

// pairKey canonically orders a cluster pair.
type pairKey struct{ a, b int }

func makePair(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

type pairItem struct {
	key    pairKey
	weight int
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight > h[j].weight
	}
	if h[i].key.a != h[j].key.a {
		return h[i].key.a < h[j].key.a
	}
	return h[i].key.b < h[j].key.b
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)   { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// mergeClusters greedily merges the most-dependent cluster pairs (data-flow
// edges plus shared operands) until at most k clusters remain or nothing
// more fits in a column. Pair weights are gathered by sorted-pair
// accumulation: every dependence occurrence appends one pairKey (direct
// data-flow edges append two, keeping their historical weight of 2), the
// pair list is sorted once, and equal runs become weighted edges — no
// per-operand set allocation.
func (c *clusterer) mergeClusters(k int) {
	if c.live <= k {
		return
	}
	var pairs []pairKey
	var idBuf []int32
	var opBuf []dfg.NodeID
	for _, op := range c.g.OpNodes() {
		a := int(c.opCluster[op])
		// Distinct successor ops (consumers of op's output).
		opBuf = c.g.AppendConsumers(c.g.OpOutput(op), opBuf[:0])
		for i, s := range opBuf {
			dup := false
			for _, q := range opBuf[:i] {
				if q == s {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if b := int(c.opCluster[s]); b != a {
				pk := makePair(a, b)
				pairs = append(pairs, pk, pk) // direct dependency: weight 2
			}
		}
	}
	// Shared operands (two clusters reading the same value).
	for _, operand := range c.g.Operands() {
		opBuf = c.g.AppendConsumers(operand, opBuf[:0])
		idBuf = idBuf[:0]
		for _, cons := range opBuf {
			id := c.opCluster[cons]
			if !slices.Contains(idBuf, id) {
				idBuf = append(idBuf, id)
			}
		}
		slices.Sort(idBuf)
		for i := 0; i < len(idBuf); i++ {
			for j := i + 1; j < len(idBuf); j++ {
				pairs = append(pairs, pairKey{int(idBuf[i]), int(idBuf[j])})
			}
		}
	}
	slices.SortFunc(pairs, func(x, y pairKey) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})

	// Adjacency view for O(degree) weight folding on merge.
	adj := make(map[int]map[int]int, c.live)
	addEdge := func(a, b, w int) {
		if adj[a] == nil {
			adj[a] = make(map[int]int)
		}
		adj[a][b] += w
	}
	h := make(pairHeap, 0, len(pairs))
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		key, w := pairs[i], j-i
		addEdge(key.a, key.b, w)
		addEdge(key.b, key.a, w)
		h = append(h, pairItem{key: key, weight: w})
		i = j
	}
	heap.Init(&h)

	for c.live > k && h.Len() > 0 {
		it := heap.Pop(&h).(pairItem)
		a, b := it.key.a, it.key.b
		ca, cb := c.clusters[a], c.clusters[b]
		if ca == nil || cb == nil {
			continue // one side already merged away
		}
		if adj[a][b] != it.weight {
			continue // stale weight; a fresher entry exists
		}
		if bitvec.UnionOnesCount(ca.footprint, cb.footprint) > c.maxSize {
			// Footprints only grow; this pair can never merge. Drop it.
			delete(adj[a], b)
			delete(adj[b], a)
			continue
		}
		// Merge b into a; fold b's adjacency into a's.
		c.absorb(ca, cb)
		delete(adj[a], b)
		// Each neighbour o is folded exactly once and the pair heap has a
		// strict total order on (weight, key), so the pop sequence — and
		// with it the emitted program — is independent of this iteration
		// order. The byte-pinned goldens hold that promise to account.
		//sherlock:allow rangemap
		for o, w := range adj[b] {
			if o == a {
				continue
			}
			delete(adj[o], b)
			addEdge(a, o, w)
			addEdge(o, a, w)
			heap.Push(&h, pairItem{key: makePair(a, o), weight: adj[a][o]})
		}
		delete(adj, b)
	}
}

// ordered returns the surviving clusters' op lists, clusters in ascending
// id order and ops within a cluster left in insertion (priority) order.
func (c *clusterer) ordered() [][]dfg.NodeID {
	out := make([][]dfg.NodeID, 0, c.live)
	for _, cl := range c.clusters {
		if cl != nil {
			out = append(out, cl.ops)
		}
	}
	return out
}
