package mapping_test

import (
	"os"
	"path/filepath"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// goldenEquivCases mirrors goldengen's workload set; the .outputs sidecars
// under testdata are the readout manifests it emits alongside each golden.
func goldenEquivCases(tb testing.TB) []struct {
	name   string
	g      *dfg.Graph
	target layout.Target
	opt    mapping.Options
} {
	must := func(g *dfg.Graph, err error) *dfg.Graph {
		if err != nil {
			tb.Fatal(err)
		}
		return g
	}
	bw := must(bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 8}))
	sb := must(sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128}))
	ae := must(aes.Build(aes.Config{Rounds: 2}))
	return []struct {
		name   string
		g      *dfg.Graph
		target layout.Target
		opt    mapping.Options
	}{
		{"bitweaving", bw, layout.Target{Arrays: 1, Rows: 256, Cols: 256}, mapping.Options{}},
		{"sobel", sb, layout.Target{Arrays: 1, Rows: 128, Cols: 128}, mapping.Options{}},
		{"sobel_recycle", sb, layout.Target{Arrays: 1, Rows: 64, Cols: 512}, mapping.Options{RecycleRows: true}},
		{"aes", ae, layout.Target{Arrays: 4, Rows: 512, Cols: 512}, mapping.Options{}},
	}
}

// TestGoldenProgramsProveEquivalent is the translation-validation bar over
// the whole pinned corpus: every golden program — parsed back from its
// pinned text, not remapped — must statically prove equivalent to the
// kernel it was compiled from, with the readout contract taken from the
// .outputs manifest sidecar. This subsumes the byte-diff of
// TestGoldenPrograms in strength: even a regenerated golden cannot land
// unless the new program still computes the kernel.
func TestGoldenProgramsProveEquivalent(t *testing.T) {
	for _, c := range goldenEquivCases(t) {
		c.opt.Target = c.target
		for _, mode := range []string{"naive", "opt"} {
			t.Run(c.name+"/"+mode, func(t *testing.T) {
				text, err := os.ReadFile(filepath.Join("testdata", c.name+"_"+mode+".golden"))
				if err != nil {
					t.Fatal(err)
				}
				prog, err := isa.ParseProgram(string(text))
				if err != nil {
					t.Fatal(err)
				}
				mtext, err := os.ReadFile(filepath.Join("testdata", c.name+"_"+mode+".outputs"))
				if err != nil {
					t.Fatal(err)
				}
				outs, err := verify.ParseOutputs(string(mtext))
				if err != nil {
					t.Fatal(err)
				}
				// The manifest must match what a fresh mapping would emit —
				// a stale sidecar fails here, not with a confusing proof
				// error.
				var res *mapping.Result
				if mode == "naive" {
					res, err = mapping.Naive(c.g, c.opt)
				} else {
					res, err = mapping.Optimized(c.g, c.opt)
				}
				if err != nil {
					t.Fatal(err)
				}
				fresh := manifestOf(t, res)
				if got := verify.FormatOutputs(outs); got != fresh {
					t.Fatalf("manifest out of date; regenerate with `go run ./internal/mapping/goldengen internal/mapping/testdata`")
				}
				rep, err := verify.EquivalentOpts(prog, c.target, c.g, outs, verify.EquivOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.AllProven() {
					t.Fatalf("golden not proven equivalent: %v", rep.Err())
				}
			})
		}
	}
}

func manifestOf(tb testing.TB, res *mapping.Result) string {
	outs := res.Graph.Outputs()
	specs := make([]verify.OutputAt, len(outs))
	for i, o := range outs {
		p, err := res.OutputPlace(o)
		if err != nil {
			tb.Fatal(err)
		}
		specs[i] = verify.OutputAt{Name: res.Graph.OutputName(o), Place: p}
	}
	return verify.FormatOutputs(specs)
}

// BenchmarkVerifyEquiv measures the translation validator on the two
// largest pinned programs. The symbolic execution is O(instructions) AIG
// construction, and a faithful mapping discharges by structural hash, so
// the whole proof stays linear in program size.
func BenchmarkVerifyEquiv(b *testing.B) {
	for _, name := range []string{"aes", "sobel"} {
		var (
			g      *dfg.Graph
			target layout.Target
		)
		for _, c := range goldenEquivCases(b) {
			if c.name == name {
				g, target = c.g, c.target
			}
		}
		text, err := os.ReadFile(filepath.Join("testdata", name+"_opt.golden"))
		if err != nil {
			b.Fatal(err)
		}
		prog, err := isa.ParseProgram(string(text))
		if err != nil {
			b.Fatal(err)
		}
		mtext, err := os.ReadFile(filepath.Join("testdata", name+"_opt.outputs"))
		if err != nil {
			b.Fatal(err)
		}
		outs, err := verify.ParseOutputs(string(mtext))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := verify.EquivalentOpts(prog, target, g, outs, verify.EquivOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.AllProven() {
					b.Fatal(rep.Err())
				}
			}
		})
	}
}
