package mapping

import (
	"fmt"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
)

// Naive implements Algorithm 1: op nodes are visited in b-level priority
// order (event-driven ready dispatch, see dfg.ReadyWalker) and their
// not-yet-mapped operands are packed column-major into the array, spilling
// into the next column when one fills up. No clustering and no instruction
// merging is performed, so operands shared across columns cause copies
// (data duplication) exactly as the paper describes.
func Naive(g *dfg.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := validateInput(g, opt.Target); err != nil {
		return nil, err
	}
	e := newEmitter(g, opt.Target, opt.RecycleRows, opt.WearLeveling)
	cursor := &columnSeq{t: opt.Target}

	err := forEachOp(g, opt, func(op dfg.NodeID) error {
		if err := naiveMapOp(e, op, cursor); err != nil {
			return fmt.Errorf("mapping: naive, op %q: %w", g.Name(op), err)
		}
		e.retireInputs(op)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Program: e.prog, Layout: e.lay, Graph: g}
	res.Stats = Stats{
		Copies:       e.copies,
		ColumnsUsed:  len(e.lay.ColumnsUsed()),
		Instructions: len(e.prog),
		RecycledRows: e.lay.RecycledAllocs(),
	}
	return res, nil
}

func naiveMapOp(e *emitter, op dfg.NodeID, cursor *columnSeq) error {
	e.insBuf = e.g.AppendOpInputs(op, e.insBuf[:0])
	ins := e.insBuf

	col, err := naiveChooseColumn(e, ins, cursor)
	if err != nil {
		return err
	}

	if e.g.OpType(op).IsUnary() {
		// Row-buffer ops read their input wherever it lives; the
		// write-back aligns into this op's column.
		p, err := e.inputPlace(ins[0], col)
		if err != nil {
			return err
		}
		e.placesBuf = append(e.placesBuf[:0], p)
		return e.emitOp(op, col, e.placesBuf)
	}

	e.placesBuf = e.placesBuf[:0]
	for _, in := range ins {
		p, err := e.ensureInColumn(in, col)
		if err != nil {
			return err
		}
		e.placesBuf = append(e.placesBuf, p)
	}
	return e.emitOp(op, col, e.placesBuf)
}

// naiveChooseColumn realizes the blind cursor semantics of Algorithm 1
// (lines 7-17): each op computes in the *current* column, where its
// still-unmapped operands and its output are packed; the cursor advances
// when the column lacks room. Inputs already living in earlier columns are
// copied in — the data movement and duplication the paper attributes to
// this baseline.
func naiveChooseColumn(e *emitter, ins []dfg.NodeID, cursor *columnSeq) (layout.ColumnRef, error) {
	for {
		c := cursor.current()
		// Room needed in the cursor column: every input without a cell
		// here (first-use host writes and copies) plus the output.
		room := 1
		for _, in := range ins {
			if _, ok := e.lay.InColumn(in, c); !ok {
				room++
			}
		}
		if e.lay.FreeRows(c) >= room {
			return c, nil
		}
		if err := cursor.advance(); err != nil {
			return layout.ColumnRef{}, err
		}
	}
}
