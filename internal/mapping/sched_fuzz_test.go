package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/sim"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

// TestSchedulerDifferentialMerge fuzzes the ready-dispatch merger against
// the legacy strict-level merger: the same unmerged program goes through
// both, and on every trial
//
//   - the ready-dispatch program must not exceed the legacy instruction
//     count (cross-level fusion only ever removes instructions — every
//     strict-level merge still happens),
//   - both must be verifier-clean, and
//   - both must leave identical machine state on all three executors
//     (strict Machine, word-parallel LaneMachine, pre-decoded Exec).
func TestSchedulerDifferentialMerge(t *testing.T) {
	targets := []layout.Target{
		{Arrays: 1, Rows: 16, Cols: 32},
		{Arrays: 2, Rows: 24, Cols: 16},
		{Arrays: 3, Rows: 32, Cols: 8},
	}
	trials := 40
	if testing.Short() {
		trials = 8
	}
	ran := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(7000 + trial)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 3+rng.Intn(5), 10+rng.Intn(30))
		target := targets[trial%len(targets)]
		opt := Options{Target: target, RecycleRows: trial%2 == 1}
		res, err := Naive(g, opt)
		if err != nil {
			continue // random graph exceeded the small target
		}
		ready, _ := MergeInstructions(res.Program)
		legacy, _ := mergeInstructionsLegacy(res.Program)
		if len(ready) > len(legacy) {
			t.Fatalf("seed %d: ready-dispatch merger emitted %d instructions, legacy %d — cross-level scheduling must never lose merges",
				seed, len(ready), len(legacy))
		}
		for name, p := range map[string]isa.Program{"ready": ready, "legacy": legacy} {
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d: %s program invalid: %v", seed, name, err)
			}
			if rep := verify.Program(p, target); len(rep.Findings) != 0 {
				t.Fatalf("seed %d: %s program has %d verifier findings, first: %v",
					seed, name, len(rep.Findings), rep.Findings[0])
			}
		}
		ran++
		for vec := 0; vec < 3; vec++ {
			words := make(map[string]uint64)
			for _, name := range g.InputNames() {
				words[name] = rng.Uint64()
			}
			if err := diffRunExecutors(target, res, ready, legacy, words); err != nil {
				t.Fatalf("seed %d vector %d: %v", seed, vec, err)
			}
		}
	}
	if ran < trials/2 {
		t.Fatalf("only %d/%d random graphs fit their targets; widen the targets", ran, trials)
	}
}

// diffRunExecutors runs the two merged programs on all three executors and
// compares their results: complete cell state on the strict machine (both
// programs share the unmerged program's layout) and every kernel output on
// the lane and pre-decoded machines.
func diffRunExecutors(target layout.Target, res *Result, ready, legacy isa.Program, words map[string]uint64) error {
	// Strict machine: lane 0 of the word inputs, full state compare.
	bits := make(map[string]bool, len(words))
	for name, w := range words { //sherlock:allow rangemap
		bits[name] = w&1 == 1
	}
	m1, m2 := sim.NewMachine(target), sim.NewMachine(target)
	if err := m1.Run(ready, bits); err != nil {
		return fmt.Errorf("strict machine rejected ready-dispatch program: %w", err)
	}
	if err := m2.Run(legacy, bits); err != nil {
		return fmt.Errorf("strict machine rejected legacy program: %w", err)
	}
	for a := 0; a < target.Arrays; a++ {
		for c := 0; c < target.Cols; c++ {
			for r := 0; r < target.Rows; r++ {
				p := layout.Place{Array: a, Col: c, Row: r}
				v1, d1 := m1.Cell(p)
				v2, d2 := m2.Cell(p)
				if v1 != v2 || d1 != d2 {
					return fmt.Errorf("strict machine: cell %v diverged: ready (%v,%v), legacy (%v,%v)",
						p, v1, d1, v2, d2)
				}
			}
		}
	}

	// Lane machine and pre-decoded executor: compare every output word.
	l1, l2 := sim.NewLaneMachine(target, sim.WordLanes), sim.NewLaneMachine(target, sim.WordLanes)
	if err := l1.Run(ready, words); err != nil {
		return fmt.Errorf("lane machine rejected ready-dispatch program: %w", err)
	}
	if err := l2.Run(legacy, words); err != nil {
		return fmt.Errorf("lane machine rejected legacy program: %w", err)
	}
	x1, err := sim.Predecode(ready, target)
	if err != nil {
		return fmt.Errorf("predecode rejected ready-dispatch program: %w", err)
	}
	x2, err := sim.Predecode(legacy, target)
	if err != nil {
		return fmt.Errorf("predecode rejected legacy program: %w", err)
	}
	e1, e2 := x1.NewMachine(1), x2.NewMachine(1)
	if err := e1.RunMap(words); err != nil {
		return fmt.Errorf("exec machine rejected ready-dispatch program: %w", err)
	}
	if err := e2.RunMap(words); err != nil {
		return fmt.Errorf("exec machine rejected legacy program: %w", err)
	}
	for _, out := range res.Graph.Outputs() {
		p, err := res.OutputPlace(out)
		if err != nil {
			return err
		}
		w1, err := l1.ReadOutWord(p)
		if err != nil {
			return fmt.Errorf("lane readout of %v (ready): %w", p, err)
		}
		w2, err := l2.ReadOutWord(p)
		if err != nil {
			return fmt.Errorf("lane readout of %v (legacy): %w", p, err)
		}
		if w1 != w2 {
			return fmt.Errorf("lane machine: output %v diverged: ready %#x, legacy %#x", p, w1, w2)
		}
		ew1, err := e1.ReadOutWord(p, 0)
		if err != nil {
			return fmt.Errorf("exec readout of %v (ready): %w", p, err)
		}
		ew2, err := e2.ReadOutWord(p, 0)
		if err != nil {
			return fmt.Errorf("exec readout of %v (legacy): %w", p, err)
		}
		if ew1 != ew2 || ew1 != w1 {
			return fmt.Errorf("exec machine: output %v diverged: exec ready %#x, exec legacy %#x, lane %#x",
				p, ew1, ew2, w1)
		}
	}
	return nil
}

// TestSchedulerDifferentialPipeline fuzzes the whole optimized pipeline
// under both schedulers: ready-queue issue windows versus the legacy
// pre-sorted traversal with strict level barriers. Layouts legitimately
// differ (the traversals release ops in different tie orders), so the
// invariant is semantic: both verify clean and both compute the same
// output words for the same inputs.
func TestSchedulerDifferentialPipeline(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 32, Cols: 24}
	trials := 25
	if testing.Short() {
		trials = 6
	}
	ran := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(9000 + trial)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 4+rng.Intn(4), 12+rng.Intn(24))
		ready, errR := Optimized(g, Options{Target: target})
		legacy, errL := Optimized(g, Options{Target: target, LegacyLevelScheduler: true})
		if errR != nil || errL != nil {
			if (errR == nil) != (errL == nil) {
				t.Fatalf("seed %d: schedulers disagree on feasibility: ready err=%v, legacy err=%v",
					seed, errR, errL)
			}
			continue
		}
		for name, res := range map[string]*Result{"ready": ready, "legacy": legacy} {
			if err := res.Program.Validate(); err != nil {
				t.Fatalf("seed %d: %s pipeline program invalid: %v", seed, name, err)
			}
			if rep := verify.Program(res.Program, target); len(rep.Findings) != 0 {
				t.Fatalf("seed %d: %s pipeline has %d verifier findings, first: %v",
					seed, name, len(rep.Findings), rep.Findings[0])
			}
		}
		ran++
		for vec := 0; vec < 2; vec++ {
			words := make(map[string]uint64)
			for _, name := range g.InputNames() {
				words[name] = rng.Uint64()
			}
			l1 := sim.NewLaneMachine(target, sim.WordLanes)
			l2 := sim.NewLaneMachine(target, sim.WordLanes)
			if err := l1.Run(ready.Program, words); err != nil {
				t.Fatalf("seed %d: ready pipeline rejected: %v", seed, err)
			}
			if err := l2.Run(legacy.Program, words); err != nil {
				t.Fatalf("seed %d: legacy pipeline rejected: %v", seed, err)
			}
			for _, out := range g.Outputs() {
				p1, err := ready.OutputPlace(out)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				p2, err := legacy.OutputPlace(out)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				w1, err := l1.ReadOutWord(p1)
				if err != nil {
					t.Fatalf("seed %d: ready readout %v: %v", seed, p1, err)
				}
				w2, err := l2.ReadOutWord(p2)
				if err != nil {
					t.Fatalf("seed %d: legacy readout %v: %v", seed, p2, err)
				}
				if w1 != w2 {
					t.Fatalf("seed %d vector %d: output %q diverged: ready %#x, legacy %#x",
						seed, vec, g.Name(out), w1, w2)
				}
			}
		}
	}
	if ran < trials/2 {
		t.Fatalf("only %d/%d random graphs fit the target; widen it", ran, trials)
	}
}

// TestMergeNeverExceedsLegacyOnKernels pins the count invariant on the real
// kernels the golden tests compile: for every golden workload the
// ready-dispatch merged program must be no longer than the legacy one.
func TestMergeNeverExceedsLegacyOnKernels(t *testing.T) {
	for _, tc := range goldenKernels(t) {
		res, err := Optimized(tc.g, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		legacyOpt := tc.opt
		legacyOpt.LegacyLevelScheduler = true
		leg, err := Optimized(tc.g, legacyOpt)
		if err != nil {
			t.Fatalf("%s legacy: %v", tc.name, err)
		}
		if len(res.Program) > len(leg.Program) {
			t.Errorf("%s: ready-dispatch pipeline emitted %d instructions, legacy %d",
				tc.name, len(res.Program), len(leg.Program))
		}
		t.Logf("%s: ready %d instructions, legacy %d", tc.name, len(res.Program), len(leg.Program))
	}
}

type kernelCase struct {
	name string
	g    *dfg.Graph
	opt  Options
}

// goldenKernels builds the golden-test workload set (same configs and
// targets as golden_test.go) for in-package scheduler comparisons.
func goldenKernels(t *testing.T) []kernelCase {
	t.Helper()
	must := func(g *dfg.Graph, err error) *dfg.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	return []kernelCase{
		{"bitweaving", must(bitweaving.Build(bitweaving.Config{Bits: 16, Segments: 8})),
			Options{Target: layout.Target{Arrays: 1, Rows: 256, Cols: 256}}},
		{"sobel", must(sobel.Build(sobel.Config{TileW: 2, TileH: 2, PixelBits: 8, Threshold: 128})),
			Options{Target: layout.Target{Arrays: 1, Rows: 128, Cols: 128}}},
		{"aes", must(aes.Build(aes.Config{Rounds: 2})),
			Options{Target: layout.Target{Arrays: 4, Rows: 512, Cols: 512}}},
	}
}
