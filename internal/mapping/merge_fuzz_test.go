package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/sim"
)

// TestMergeInstructionsDifferential fuzzes the instruction merger against
// the strict-mode machine: for many random graphs and random input vectors,
// the unmerged and merged programs must leave every cell of the array in the
// same (value, defined) state and must agree on whether execution errors.
// This complements the golden tests — those pin the merger's output text,
// this pins its semantics on programs the golden set never exercises.
func TestMergeInstructionsDifferential(t *testing.T) {
	targets := []layout.Target{
		{Arrays: 1, Rows: 16, Cols: 32},
		{Arrays: 2, Rows: 24, Cols: 16},
		{Arrays: 3, Rows: 32, Cols: 8},
	}
	trials := 40
	if testing.Short() {
		trials = 8
	}
	ran := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 3+rng.Intn(5), 10+rng.Intn(30))
		target := targets[trial%len(targets)]
		opt := Options{Target: target, RecycleRows: trial%2 == 1}
		res, err := Naive(g, opt)
		if err != nil {
			// Random graph exceeded the small target; not what this
			// test is probing.
			continue
		}
		merged, eliminated := MergeInstructions(res.Program)
		if eliminated < 0 {
			t.Fatalf("seed %d: negative elimination count %d", seed, eliminated)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("seed %d: merged program invalid: %v", seed, err)
		}
		ran++
		for vec := 0; vec < 3; vec++ {
			inputs := make(map[string]bool)
			for _, name := range g.InputNames() {
				inputs[name] = rng.Intn(2) == 1
			}
			if err := diffRun(target, res.Program, merged, inputs); err != nil {
				t.Fatalf("seed %d vector %d: %v", seed, vec, err)
			}
		}
	}
	if ran < trials/2 {
		t.Fatalf("only %d/%d random graphs fit their targets; widen the targets", ran, trials)
	}
}

// diffRun executes both programs on fresh strict-mode machines and compares
// error outcomes and the complete cell state.
func diffRun(target layout.Target, before, after isa.Program, inputs map[string]bool) error {
	m1 := sim.NewMachine(target)
	err1 := m1.Run(before, inputs)
	m2 := sim.NewMachine(target)
	err2 := m2.Run(after, inputs)
	if (err1 == nil) != (err2 == nil) {
		return fmt.Errorf("strict-mode disagreement: unmerged err=%v, merged err=%v", err1, err2)
	}
	if err1 != nil {
		return nil // both rejected; nothing further to compare
	}
	for a := 0; a < target.Arrays; a++ {
		for c := 0; c < target.Cols; c++ {
			for r := 0; r < target.Rows; r++ {
				p := layout.Place{Array: a, Col: c, Row: r}
				v1, d1 := m1.Cell(p)
				v2, d2 := m2.Cell(p)
				if v1 != v2 || d1 != d2 {
					return fmt.Errorf("cell %v diverged: unmerged (%v,%v), merged (%v,%v)",
						p, v1, d1, v2, d2)
				}
			}
		}
	}
	return nil
}
