package mapping

import (
	"fmt"

	"sherlock/internal/dfg"
	"sherlock/internal/layout"
)

// Optimized implements Algorithm 2: op nodes are clustered so that each
// cluster's operand footprint fits one CIM column, clusters are greedily
// merged down toward k = ceil(#operands / rows), each cluster is assigned a
// column, and the generated instructions are merged across clusters
// (Sec. 3.3.3) after a dependence-preserving level schedule.
func Optimized(g *dfg.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := validateInput(g, opt.Target); err != nil {
		return nil, err
	}
	t := opt.Target
	operands := len(g.Operands())
	k := (operands + t.Rows - 1) / t.Rows

	clusters, err := findClusters(g, opt, t.Rows, k)
	if err != nil {
		return nil, err
	}
	if len(clusters) > t.Arrays*t.Cols {
		return nil, fmt.Errorf("mapping: %d clusters exceed the target's %d columns",
			len(clusters), t.Arrays*t.Cols)
	}

	// Column assignment: cluster i -> i-th column in array-major order.
	colOf := make([]layout.ColumnRef, g.NumNodes())
	for i, ops := range clusters {
		col, err := columnAt(t, i)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			colOf[op] = col
		}
	}

	// Generate code in priority order — issue windows over the ready
	// queue — so that structurally parallel clusters advance their row
	// allocators in lockstep: the precondition for cross-cluster
	// instruction merging.
	e := newEmitter(g, t, opt.RecycleRows, opt.WearLeveling)
	err = forEachOp(g, opt, func(op dfg.NodeID) error {
		col := colOf[op]
		e.insBuf = g.AppendOpInputs(op, e.insBuf[:0])
		ins := e.insBuf
		if g.OpType(op).IsUnary() {
			p, err := e.inputPlace(ins[0], col)
			if err != nil {
				return fmt.Errorf("mapping: optimized, op %q: %w", g.Name(op), err)
			}
			e.placesBuf = append(e.placesBuf[:0], p)
			if err := e.emitOp(op, col, e.placesBuf); err != nil {
				return fmt.Errorf("mapping: optimized, op %q: %w", g.Name(op), err)
			}
			e.retireInputs(op)
			return nil
		}
		e.placesBuf = e.placesBuf[:0]
		for _, in := range ins {
			p, err := e.ensureInColumn(in, col)
			if err != nil {
				return fmt.Errorf("mapping: optimized, op %q: %w", g.Name(op), err)
			}
			e.placesBuf = append(e.placesBuf, p)
		}
		if err := e.emitOp(op, col, e.placesBuf); err != nil {
			return fmt.Errorf("mapping: optimized, op %q: %w", g.Name(op), err)
		}
		e.retireInputs(op)
		return nil
	})
	if err != nil {
		return nil, err
	}

	merged, eliminated := mergeProgram(e.prog, opt)
	if len(e.prog) > 0 { // merged never aliases a non-empty input
		releaseProg(e.prog)
		e.prog = nil
	}
	res := &Result{Program: merged, Layout: e.lay, Graph: g}
	res.Stats = Stats{
		Copies:       e.copies,
		ColumnsUsed:  len(e.lay.ColumnsUsed()),
		Clusters:     len(clusters),
		MergedAway:   eliminated,
		Instructions: len(merged),
		RecycledRows: e.lay.RecycledAllocs(),
	}
	return res, nil
}

// Clusters exposes the clustering stage on its own (for inspection, tests
// and the dfg2dot tool).
func Clusters(g *dfg.Graph, opt Options) ([][]dfg.NodeID, error) {
	opt = opt.withDefaults()
	if err := validateInput(g, opt.Target); err != nil {
		return nil, err
	}
	t := opt.Target
	operands := len(g.Operands())
	k := (operands + t.Rows - 1) / t.Rows
	return findClusters(g, opt, t.Rows, k)
}
