package symword

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"sherlock/internal/dfg"
)

// evalNamed evaluates the built graph with the given word bindings and
// reads back one output word as an integer.
func evalNamed(t *testing.T, g *dfg.Graph, in map[string]bool, outPrefix string, outWidth int) uint64 {
	t.Helper()
	res, err := dfg.EvaluateByName(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var out uint64
	for i := 0; i < outWidth; i++ {
		if res[fmt.Sprintf("%s%d", outPrefix, i)] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func bindWord(in map[string]bool, prefix string, width int, v uint64) {
	for i := 0; i < width; i++ {
		in[fmt.Sprintf("%s%d", prefix, i)] = v>>uint(i)&1 == 1
	}
}

func TestPopcountGolden(t *testing.T) {
	for w := 1; w <= 9; w++ {
		b := dfg.NewBuilder()
		x := Inputs(b, "x", w)
		pc := Popcount(b, x)
		if want := bits.Len(uint(w)); pc.Width() != want {
			t.Fatalf("width %d: popcount output is %d bits, want %d", w, pc.Width(), want)
		}
		Outputs(b, "o", pc)
		g := b.Graph()
		for v := uint64(0); v < 1<<uint(w); v++ {
			in := make(map[string]bool)
			bindWord(in, "x", w, v)
			if got, want := evalNamed(t, g, in, "o", pc.Width()), uint64(bits.OnesCount64(v)); got != want {
				t.Fatalf("popcount_%d(%b) = %d, want %d", w, v, got, want)
			}
		}
	}
}

func TestCompress3Golden(t *testing.T) {
	const w = 4
	b := dfg.NewBuilder()
	x := Inputs(b, "x", w)
	y := Inputs(b, "y", w)
	z := Inputs(b, "z", w)
	sum, carry := Compress3(b, x, y, z)
	if sum.Width() != w || carry.Width() != w+1 {
		t.Fatalf("compress3 widths = (%d, %d), want (%d, %d)", sum.Width(), carry.Width(), w, w+1)
	}
	Outputs(b, "s", sum)
	// carry[0] is constant false by construction and cannot be a kernel
	// output; read the significant bits and shift back.
	Outputs(b, "c", carry[1:])
	g := b.Graph()
	for xv := uint64(0); xv < 1<<w; xv++ {
		for yv := uint64(0); yv < 1<<w; yv++ {
			for zv := uint64(0); zv < 1<<w; zv++ {
				in := make(map[string]bool)
				bindWord(in, "x", w, xv)
				bindWord(in, "y", w, yv)
				bindWord(in, "z", w, zv)
				s := evalNamed(t, g, in, "s", w)
				c := evalNamed(t, g, in, "c", w) << 1
				if s+c != xv+yv+zv {
					t.Fatalf("compress3(%d,%d,%d): sum %d + carry %d = %d, want %d",
						xv, yv, zv, s, c, s+c, xv+yv+zv)
				}
			}
		}
	}
}

func TestMulCarrySaveGolden(t *testing.T) {
	// 1x1 is excluded: its top product bit is constant zero, and constant
	// kernel outputs are rejected by the builder on principle.
	cases := []struct{ wx, wy int }{{2, 2}, {3, 5}, {4, 4}, {6, 2}}
	for _, tc := range cases {
		b := dfg.NewBuilder()
		x := Inputs(b, "x", tc.wx)
		y := Inputs(b, "y", tc.wy)
		p := MulCarrySave(b, x, y)
		if p.Width() != tc.wx+tc.wy {
			t.Fatalf("mul %dx%d: product width %d, want %d", tc.wx, tc.wy, p.Width(), tc.wx+tc.wy)
		}
		Outputs(b, "o", p)
		g := b.Graph()
		for xv := uint64(0); xv < 1<<uint(tc.wx); xv++ {
			for yv := uint64(0); yv < 1<<uint(tc.wy); yv++ {
				in := make(map[string]bool)
				bindWord(in, "x", tc.wx, xv)
				bindWord(in, "y", tc.wy, yv)
				if got, want := evalNamed(t, g, in, "o", p.Width()), xv*yv; got != want {
					t.Fatalf("mul %dx%d: %d*%d = %d, want %d", tc.wx, tc.wy, xv, yv, got, want)
				}
			}
		}
	}
}

func TestMulCarrySaveWide(t *testing.T) {
	// Spot-check a width where exhaustion is too big, against uint64 math.
	const wx, wy = 10, 10
	b := dfg.NewBuilder()
	x := Inputs(b, "x", wx)
	y := Inputs(b, "y", wy)
	p := MulCarrySave(b, x, y)
	Outputs(b, "o", p)
	g := b.Graph()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		xv := uint64(rng.Intn(1 << wx))
		yv := uint64(rng.Intn(1 << wy))
		in := make(map[string]bool)
		bindWord(in, "x", wx, xv)
		bindWord(in, "y", wy, yv)
		if got, want := evalNamed(t, g, in, "o", p.Width()), xv*yv; got != want {
			t.Fatalf("%d*%d = %d, want %d", xv, yv, got, want)
		}
	}
}
