package symword

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sherlock/internal/dfg"
)

// evalWord evaluates a circuit with two input words bound to integers and
// returns the named output word as an integer.
type harness struct {
	b      *dfg.Builder
	x, y   Word
	widthX int
	widthY int
}

func newHarness(wx, wy int) *harness {
	b := dfg.NewBuilder()
	h := &harness{b: b, widthX: wx, widthY: wy}
	h.x = Inputs(b, "x", wx)
	h.y = Inputs(b, "y", wy)
	return h
}

func (h *harness) run(t *testing.T, xv, yv uint64, outWidth int) uint64 {
	t.Helper()
	in := make(map[string]bool)
	for i := 0; i < h.widthX; i++ {
		in[fmt.Sprintf("x%d", i)] = xv>>uint(i)&1 == 1
	}
	for i := 0; i < h.widthY; i++ {
		in[fmt.Sprintf("y%d", i)] = yv>>uint(i)&1 == 1
	}
	res, err := dfg.EvaluateByName(h.b.Graph(), in)
	if err != nil {
		t.Fatal(err)
	}
	var out uint64
	for i := 0; i < outWidth; i++ {
		if res[fmt.Sprintf("o%d", i)] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestAddMatchesInteger(t *testing.T) {
	h := newHarness(8, 8)
	Outputs(h.b, "o", Add(h.b, h.x, h.y))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, c := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		if got, want := h.run(t, a, c, 9), a+c; got != want {
			t.Fatalf("%d+%d = %d, want %d", a, c, got, want)
		}
	}
}

func TestAddModWraps(t *testing.T) {
	h := newHarness(4, 4)
	Outputs(h.b, "o", AddMod(h.b, h.x, h.y))
	if got := h.run(t, 9, 9, 4); got != (9+9)%16 {
		t.Fatalf("AddMod(9,9) = %d, want 2", got)
	}
}

func TestSubTwosComplement(t *testing.T) {
	h := newHarness(8, 8)
	Outputs(h.b, "o", Sub(h.b, h.x, h.y))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, c := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		want := (a - c) & 0xFF
		if got := h.run(t, a, c, 8); got != want {
			t.Fatalf("%d-%d = %d, want %d", a, c, got, want)
		}
	}
}

func TestNegAndAbs(t *testing.T) {
	b := dfg.NewBuilder()
	x := Inputs(b, "x", 6)
	Outputs(b, "n", Neg(b, x))
	Outputs(b, "a", Abs(b, x))
	g := b.Graph()
	for v := 0; v < 64; v++ {
		in := make(map[string]bool)
		for i := 0; i < 6; i++ {
			in[fmt.Sprintf("x%d", i)] = v>>uint(i)&1 == 1
		}
		res, err := dfg.EvaluateByName(g, in)
		if err != nil {
			t.Fatal(err)
		}
		var neg, abs uint64
		for i := 0; i < 6; i++ {
			if res[fmt.Sprintf("n%d", i)] {
				neg |= 1 << uint(i)
			}
			if res[fmt.Sprintf("a%d", i)] {
				abs |= 1 << uint(i)
			}
		}
		if want := uint64(-v) & 63; neg != want {
			t.Fatalf("neg(%d) = %d, want %d", v, neg, want)
		}
		signed := int64(v)
		if v >= 32 {
			signed = int64(v) - 64
		}
		wantAbs := uint64(signed) & 63
		if signed < 0 {
			wantAbs = uint64(-signed) & 63
		}
		if abs != wantAbs {
			t.Fatalf("abs(%d as signed %d) = %d, want %d", v, signed, abs, wantAbs)
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	h := newHarness(8, 8)
	Outputs(h.b, "o", Xor(h.b, h.x, h.y))
	if got := h.run(t, 0b1100, 0b1010, 8); got != 0b0110 {
		t.Fatalf("xor = %b", got)
	}
	h2 := newHarness(8, 8)
	Outputs(h2.b, "o", And(h2.b, h2.x, h2.y))
	if got := h2.run(t, 0b1100, 0b1010, 8); got != 0b1000 {
		t.Fatalf("and = %b", got)
	}
	h3 := newHarness(8, 8)
	Outputs(h3.b, "o", Or(h3.b, Not(h3.b, h3.x), h3.y))
	if got := h3.run(t, 0xF0, 0x01, 8); got != 0x0F|0x01 {
		t.Fatalf("or/not = %x", got)
	}
}

func TestExtendAndShift(t *testing.T) {
	b := dfg.NewBuilder()
	x := Inputs(b, "x", 4)
	ze := ZeroExtend(b, x, 6)
	if ze.Width() != 6 {
		t.Fatal("zero extend width")
	}
	if c, v := ze[5].IsConst(); !c || v {
		t.Fatal("zero extension bits must be constant false")
	}
	se := SignExtend(b, x, 6)
	if se[5] != x[3] {
		t.Fatal("sign extension must replicate MSB")
	}
	sl := ShiftLeft(b, x, 2)
	if sl.Width() != 6 || sl[2] != x[0] {
		t.Fatal("shift left wiring wrong")
	}
	if c, v := sl[0].IsConst(); !c || v {
		t.Fatal("shifted-in bits must be zero")
	}
}

func TestComparatorsExhaustive(t *testing.T) {
	h := newHarness(4, 4)
	h.b.Output("lt", LessThan(h.b, h.x, h.y))
	h.b.Output("gt", GreaterThan(h.b, h.x, h.y))
	h.b.Output("eq", Equal(h.b, h.x, h.y))
	g := h.b.Graph()
	for a := uint64(0); a < 16; a++ {
		for c := uint64(0); c < 16; c++ {
			in := make(map[string]bool)
			for i := 0; i < 4; i++ {
				in[fmt.Sprintf("x%d", i)] = a>>uint(i)&1 == 1
				in[fmt.Sprintf("y%d", i)] = c>>uint(i)&1 == 1
			}
			res, err := dfg.EvaluateByName(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if res["lt"] != (a < c) || res["gt"] != (a > c) || res["eq"] != (a == c) {
				t.Fatalf("compare(%d,%d): lt=%v gt=%v eq=%v", a, c, res["lt"], res["gt"], res["eq"])
			}
		}
	}
}

func TestGEConstExhaustive(t *testing.T) {
	for _, k := range []uint64{0, 1, 5, 8, 15, 16, 31} {
		b := dfg.NewBuilder()
		x := Inputs(b, "x", 4)
		v := GEConst(b, x, k)
		if c, cv := v.IsConst(); c {
			// k=0 folds to constant true; k>=16 to constant false.
			if k == 0 && !cv || k >= 16 && cv {
				t.Fatalf("GEConst k=%d folded to %v", k, cv)
			}
			if k != 0 && k < 16 {
				t.Fatalf("GEConst k=%d folded unexpectedly", k)
			}
			continue
		}
		b.Output("ge", v)
		g := b.Graph()
		for a := uint64(0); a < 16; a++ {
			in := make(map[string]bool)
			for i := 0; i < 4; i++ {
				in[fmt.Sprintf("x%d", i)] = a>>uint(i)&1 == 1
			}
			res, err := dfg.EvaluateByName(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if res["ge"] != (a >= k) {
				t.Fatalf("GE(%d, %d) = %v", a, k, res["ge"])
			}
		}
	}
}

func TestMuxWords(t *testing.T) {
	b := dfg.NewBuilder()
	s := b.Input("s")
	x := Inputs(b, "x", 4)
	y := Inputs(b, "y", 4)
	Outputs(b, "o", Mux(b, s, x, y))
	g := b.Graph()
	in := map[string]bool{"s": true}
	for i := 0; i < 4; i++ {
		in[fmt.Sprintf("x%d", i)] = i%2 == 0
		in[fmt.Sprintf("y%d", i)] = i%2 == 1
	}
	res, _ := dfg.EvaluateByName(g, in)
	for i := 0; i < 4; i++ {
		if res[fmt.Sprintf("o%d", i)] != (i%2 == 0) {
			t.Fatal("mux selected wrong word")
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := dfg.NewBuilder()
	x := Inputs(b, "x", 4)
	y := Inputs(b, "y", 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	Add(b, x, y)
}

// Property: |x| == |-x| for random 8-bit two's complement values.
func TestQuickAbsSymmetry(t *testing.T) {
	f := func(v uint8) bool {
		b := dfg.NewBuilder()
		x := Inputs(b, "x", 8)
		Outputs(b, "a", Abs(b, x))
		Outputs(b, "b", Abs(b, Neg(b, x)))
		in := make(map[string]bool)
		for i := 0; i < 8; i++ {
			in[fmt.Sprintf("x%d", i)] = v>>uint(i)&1 == 1
		}
		res, err := dfg.EvaluateByName(b.Graph(), in)
		if err != nil {
			return false
		}
		// -128 negates to itself; |x| == |-x| still holds bitwise.
		for i := 0; i < 8; i++ {
			if res[fmt.Sprintf("a%d", i)] != res[fmt.Sprintf("b%d", i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
