// Package symword provides symbolic multi-bit words over DFG values: the
// building blocks for bit-sliced arithmetic circuits (ripple-carry adders,
// two's-complement subtraction, absolute value, comparisons). The bit-sliced
// Sobel and AES workloads are generated with it.
//
// A Word is little-endian: w[0] is the least significant bit. All circuits
// are built through a dfg.Builder, so constant bits fold away and common
// subexpressions are shared.
package symword

import (
	"fmt"

	"sherlock/internal/dfg"
)

// Word is a little-endian vector of symbolic bits.
type Word []dfg.Val

// Inputs declares a width-bit input word named prefix0..prefix{w-1}
// (bit index = significance).
func Inputs(b *dfg.Builder, prefix string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return w
}

// Const builds a compile-time constant word.
func Const(b *dfg.Builder, val uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Const(val>>uint(i)&1 == 1)
	}
	return w
}

// Outputs marks every bit of the word as a kernel output named
// prefix0..prefix{w-1}. Constant bits are materialized via XOR with a
// non-constant bit twice — since that cannot happen for meaningful
// kernels, constant bits are rejected instead.
func Outputs(b *dfg.Builder, prefix string, w Word) {
	for i, bit := range w {
		b.Output(fmt.Sprintf("%s%d", prefix, i), bit)
	}
}

// Width returns the number of bits.
func (w Word) Width() int { return len(w) }

func checkSameWidth(op string, x, y Word) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("symword: %s width mismatch %d vs %d", op, len(x), len(y)))
	}
}

// Xor returns the bitwise XOR of two equal-width words.
func Xor(b *dfg.Builder, x, y Word) Word {
	checkSameWidth("xor", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// And returns the bitwise AND of two equal-width words.
func And(b *dfg.Builder, x, y Word) Word {
	checkSameWidth("and", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// Or returns the bitwise OR of two equal-width words.
func Or(b *dfg.Builder, x, y Word) Word {
	checkSameWidth("or", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// Not returns the bitwise complement.
func Not(b *dfg.Builder, x Word) Word {
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// ZeroExtend returns x widened to width bits with constant zeros.
func ZeroExtend(b *dfg.Builder, x Word, width int) Word {
	if width < len(x) {
		panic(fmt.Sprintf("symword: cannot zero-extend %d bits to %d", len(x), width))
	}
	out := make(Word, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = b.Const(false)
	}
	return out
}

// SignExtend returns x widened to width bits by replicating the sign bit.
func SignExtend(b *dfg.Builder, x Word, width int) Word {
	if len(x) == 0 || width < len(x) {
		panic(fmt.Sprintf("symword: cannot sign-extend %d bits to %d", len(x), width))
	}
	out := make(Word, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = x[len(x)-1]
	}
	return out
}

// ShiftLeft returns x << n (wiring only; low bits become constant zero).
// The width grows by n.
func ShiftLeft(b *dfg.Builder, x Word, n int) Word {
	out := make(Word, len(x)+n)
	for i := 0; i < n; i++ {
		out[i] = b.Const(false)
	}
	copy(out[n:], x)
	return out
}

// fullAdder returns (sum, carry) of three bits.
func fullAdder(b *dfg.Builder, x, y, cin dfg.Val) (dfg.Val, dfg.Val) {
	axb := b.Xor(x, y)
	sum := b.Xor(axb, cin)
	carry := b.Or(b.And(x, y), b.And(cin, axb))
	return sum, carry
}

// Add returns x + y as a (width+1)-bit word (ripple-carry; the top bit is
// the carry out).
func Add(b *dfg.Builder, x, y Word) Word {
	checkSameWidth("add", x, y)
	out := make(Word, len(x)+1)
	carry := b.Const(false)
	for i := range x {
		out[i], carry = fullAdder(b, x[i], y[i], carry)
	}
	out[len(x)] = carry
	return out
}

// AddMod returns (x + y) mod 2^width.
func AddMod(b *dfg.Builder, x, y Word) Word {
	return Add(b, x, y)[:len(x)]
}

// Sub returns x - y in two's complement over width bits (the result wraps;
// interpret the top bit as the sign for same-width operands whose
// difference fits).
func Sub(b *dfg.Builder, x, y Word) Word {
	checkSameWidth("sub", x, y)
	out := make(Word, len(x))
	borrowAdd := Not(b, y)
	carry := b.Const(true) // +1 for two's complement
	for i := range x {
		out[i], carry = fullAdder(b, x[i], borrowAdd[i], carry)
	}
	return out
}

// Neg returns -x in two's complement over the same width.
func Neg(b *dfg.Builder, x Word) Word {
	zero := Const(b, 0, len(x))
	return Sub(b, zero, x)
}

// Abs interprets x as two's complement and returns |x| over the same
// width (conditional negation by the sign bit).
func Abs(b *dfg.Builder, x Word) Word {
	if len(x) == 0 {
		return x
	}
	sign := x[len(x)-1]
	neg := Neg(b, x)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Mux(sign, neg[i], x[i])
	}
	return out
}

// Mux returns sel ? x : y bitwise over equal-width words.
func Mux(b *dfg.Builder, sel dfg.Val, x, y Word) Word {
	checkSameWidth("mux", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Mux(sel, x[i], y[i])
	}
	return out
}

// GEConst returns the single-bit predicate x >= k for unsigned x.
func GEConst(b *dfg.Builder, x Word, k uint64) dfg.Val {
	// x >= k  <=>  NOT (x < k); compute borrow of x - k.
	ge := b.Const(true)
	for i := range x {
		ki := k>>uint(i)&1 == 1
		if ki {
			// borrow chain: at this bit x_i must be 1 to keep >=,
			// or the higher bits decide.
			ge = b.And(x[i], ge)
		} else {
			ge = b.Or(x[i], ge)
		}
	}
	if k >= 1<<uint(len(x)) {
		return b.Const(false)
	}
	return ge
}

// Equal returns the single-bit predicate x == y.
func Equal(b *dfg.Builder, x, y Word) dfg.Val {
	checkSameWidth("equal", x, y)
	acc := b.Const(true)
	for i := range x {
		acc = b.And(acc, b.Xnor(x[i], y[i]))
	}
	return acc
}

// LessThan returns the single-bit unsigned predicate x < y.
func LessThan(b *dfg.Builder, x, y Word) dfg.Val {
	checkSameWidth("lessthan", x, y)
	lt := b.Const(false)
	for i := 0; i < len(x); i++ { // LSB to MSB
		xiLTyi := b.And(b.Not(x[i]), y[i])
		eq := b.Xnor(x[i], y[i])
		lt = b.Or(xiLTyi, b.And(eq, lt))
	}
	return lt
}

// GreaterThan returns the single-bit unsigned predicate x > y.
func GreaterThan(b *dfg.Builder, x, y Word) dfg.Val {
	return LessThan(b, y, x)
}

// halfAdder returns (sum, carry) of two bits.
func halfAdder(b *dfg.Builder, x, y dfg.Val) (dfg.Val, dfg.Val) {
	return b.Xor(x, y), b.And(x, y)
}

// Compress3 is a carry-save 3:2 compressor: it reduces three same-width
// addends to two words satisfying x + y + z = sum + carry as integers, in
// one full-adder level with no carry propagation. sum keeps the input
// width; carry is one bit wider (its LSB is constant zero after shifting
// the per-bit majorities up one weight).
func Compress3(b *dfg.Builder, x, y, z Word) (sum, carry Word) {
	checkSameWidth("compress3", x, y)
	checkSameWidth("compress3", x, z)
	sum = make(Word, len(x))
	carry = make(Word, len(x)+1)
	carry[0] = b.Const(false)
	for i := range x {
		sum[i], carry[i+1] = fullAdder(b, x[i], y[i], z[i])
	}
	return sum, carry
}

// Popcount returns the number of set bits of x as a ceil(log2(w+1))-bit
// word, built as a column-reduction counter tree: each weight column is
// squeezed with full adders (3 bits -> sum + carry) and a final half adder,
// carries rippling into the next column, until one bit per column remains.
func Popcount(b *dfg.Builder, x Word) Word {
	if len(x) == 0 {
		panic("symword: popcount of empty word")
	}
	cols := [][]dfg.Val{append([]dfg.Val(nil), x...)}
	push := func(c int, v dfg.Val) {
		for len(cols) <= c {
			cols = append(cols, nil)
		}
		cols[c] = append(cols[c], v)
	}
	for c := 0; c < len(cols); c++ {
		for len(cols[c]) > 1 {
			if len(cols[c]) >= 3 {
				s, cy := fullAdder(b, cols[c][0], cols[c][1], cols[c][2])
				cols[c] = append(cols[c][3:], s)
				push(c+1, cy)
			} else {
				s, cy := halfAdder(b, cols[c][0], cols[c][1])
				cols[c] = append(cols[c][2:], s)
				push(c+1, cy)
			}
		}
	}
	out := make(Word, len(cols))
	for c := range out {
		out[c] = cols[c][0]
	}
	return out
}

// MulCarrySave returns x * y as a (len(x)+len(y))-bit word: AND-gate
// partial products are reduced column-wise with 3:2 compressors (carry-save,
// no intermediate carry chains) until every weight holds at most two bits,
// and a single ripple adder resolves the final two addends.
func MulCarrySave(b *dfg.Builder, x, y Word) Word {
	if len(x) == 0 || len(y) == 0 {
		panic("symword: multiply of empty word")
	}
	width := len(x) + len(y)
	cols := make([][]dfg.Val, width)
	for i := range x {
		for j := range y {
			cols[i+j] = append(cols[i+j], b.And(x[i], y[j]))
		}
	}
	for c := 0; c < len(cols); c++ {
		for len(cols[c]) > 2 {
			s, cy := fullAdder(b, cols[c][0], cols[c][1], cols[c][2])
			cols[c] = append(cols[c][3:], s)
			if c+1 < len(cols) {
				cols[c+1] = append(cols[c+1], cy)
			}
		}
	}
	addA := make(Word, width)
	addB := make(Word, width)
	for c := 0; c < width; c++ {
		addA[c], addB[c] = b.Const(false), b.Const(false)
		if len(cols[c]) > 0 {
			addA[c] = cols[c][0]
		}
		if len(cols[c]) > 1 {
			addB[c] = cols[c][1]
		}
	}
	return AddMod(b, addA, addB)
}
