// Package reliability computes application-level failure probabilities from
// generated programs (Sec. 4.2):
//
//	P_app = 1 - prod_i (1 - P_DFi)
//
// where P_DFi is the decision-failure probability of the i-th column-level
// sense decision. Decisions are grouped by (operation, activated-row-count)
// class so that programs with millions of sense events evaluate in O(unique
// classes), and each class's P_DF overlap integral is memoized inside
// internal/device (keyed by parameter set, op and row count), so repeated
// assessments of the same technology — the campaign engine assesses every
// sweep point, and the fault-injecting simulator asks per instruction —
// cost a lookup instead of an integral.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/stats"
)

// ClassReport details one (op, rows) sense class within a program.
type ClassReport struct {
	Class isa.SenseClass
	Count int
	PDF   float64 // per-decision failure probability
}

// Report is the reliability assessment of a program on a technology.
type Report struct {
	Tech device.Technology
	// PApp is the probability of at least one decision failure over the
	// whole program.
	PApp float64
	// SenseDecisions is the total number of column-level sense events.
	SenseDecisions int
	// WorstClass is the class with the highest per-decision P_DF (zero
	// value if the program has no sense events).
	WorstClass ClassReport
	Classes    []ClassReport
}

// Assess computes the report for a program under the given device
// parameters. Programs whose multi-row activations exceed the technology's
// limit are rejected.
func Assess(p isa.Program, params device.Params) (Report, error) {
	st := p.ComputeStats()
	if st.MaxRows > params.MaxRows {
		return Report{}, fmt.Errorf("reliability: program activates %d rows, %v supports %d",
			st.MaxRows, params.Tech, params.MaxRows)
	}
	rep := Report{Tech: params.Tech}
	var ps []float64
	var counts []int
	for _, class := range st.SenseClasses() {
		n := st.SenseEvents[class]
		pdf := params.DecisionFailure(class.Op, class.Rows)
		cr := ClassReport{Class: class, Count: n, PDF: pdf}
		rep.Classes = append(rep.Classes, cr)
		rep.SenseDecisions += n
		if pdf > rep.WorstClass.PDF {
			rep.WorstClass = cr
		}
		ps = append(ps, pdf)
		counts = append(counts, n)
	}
	rep.PApp = stats.ProbAtLeastOneWeighted(ps, counts)
	return rep, nil
}

// Point is one (latency-proxy, reliability) sample of a Fig. 6-style sweep.
type Point struct {
	// AllowedFraction is the fraction of node-substitution opportunities
	// permitted (the sweep knob).
	AllowedFraction float64
	// AchievedMRAPercent is the resulting share of sense ops with more
	// than two operands (the percentage printed on the paper's data
	// points).
	AchievedMRAPercent float64
	LatencyNS          float64
	EnergyPJ           float64
	PApp               float64
	Instructions       int
}

// SortPointsByLatency orders sweep points for plotting.
func SortPointsByLatency(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].LatencyNS < pts[j].LatencyNS })
}

// MTBFOps returns the expected number of program executions between
// failures (1/P_app), a convenience for reports; returns +Inf when P_app
// is zero.
func (r Report) MTBFOps() float64 {
	if r.PApp <= 0 {
		return math.Inf(1)
	}
	return 1 / r.PApp
}
