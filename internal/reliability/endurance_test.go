package reliability

import (
	"testing"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
)

func TestAssessWearCounts(t *testing.T) {
	p := isa.Program{
		{Kind: isa.KindWrite, Cols: []int{0, 1}, Rows: []int{5}, Bindings: []string{"a", "b"}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{5}},
		{Kind: isa.KindWrite, Cols: []int{3}, Rows: []int{7}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{5}},
		{Kind: isa.KindShift, ShiftBy: 1},
	}
	rep, err := AssessWear(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWrites != 4 {
		t.Errorf("total writes = %d, want 4", rep.TotalWrites)
	}
	if rep.CellsUsed != 3 {
		t.Errorf("cells = %d, want 3", rep.CellsUsed)
	}
	if rep.MaxWritesPerCell != 2 {
		t.Errorf("max per cell = %d, want 2 (cell 0/0/5 written twice)", rep.MaxWritesPerCell)
	}
	hot := rep.HotCells[0]
	if hot.Place != (layout.Place{Array: 0, Col: 0, Row: 5}) || hot.Writes != 2 {
		t.Errorf("hot cell = %+v", hot)
	}
	if rep.MeanWritesPerCell <= 1 || rep.MeanWritesPerCell >= 2 {
		t.Errorf("mean = %f", rep.MeanWritesPerCell)
	}
}

func TestAssessWearEmptyAndInvalid(t *testing.T) {
	rep, err := AssessWear(nil)
	if err != nil || rep.TotalWrites != 0 || len(rep.HotCells) != 0 {
		t.Errorf("empty program: %+v %v", rep, err)
	}
	if rep.LifetimeExecutions(1e9) != 0 {
		t.Error("lifetime of write-free program should be 0 (nothing to wear)")
	}
	if _, err := AssessWear(isa.Program{{Kind: isa.KindShift}}); err == nil {
		t.Error("invalid instruction accepted")
	}
}

func TestLifetimeExecutions(t *testing.T) {
	p := isa.Program{{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"x"}}}
	rep, err := AssessWear(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.LifetimeExecutions(EnduranceWrites(device.ReRAM)); got != 1e9 {
		t.Errorf("lifetime = %g, want 1e9", got)
	}
	if EnduranceWrites(device.PCM) >= EnduranceWrites(device.ReRAM) {
		t.Error("PCM must wear out before ReRAM")
	}
	if EnduranceWrites(device.STTMRAM) <= EnduranceWrites(device.ReRAM) {
		t.Error("STT-MRAM endures longest")
	}
}

func TestRecyclingConcentratesWear(t *testing.T) {
	// Reusing rows trades capacity for wear: the same cells absorb more
	// writes. This documents the trade-off the RecycleRows option makes.
	reuse := isa.Program{
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}},
	}
	spread := isa.Program{
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{1}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{1}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{2}},
	}
	r1, _ := AssessWear(reuse)
	r2, _ := AssessWear(spread)
	if r1.MaxWritesPerCell <= r2.MaxWritesPerCell {
		t.Error("row reuse should concentrate wear")
	}
	if r1.LifetimeExecutions(1e9) >= r2.LifetimeExecutions(1e9) {
		t.Error("concentrated wear should shorten lifetime")
	}
}
