package reliability

import (
	"math"
	"testing"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/logic"
)

func cimRead(op logic.Op, rows ...int) isa.Instruction {
	return isa.Instruction{Kind: isa.KindRead, Cols: []int{0}, Rows: rows, Ops: []logic.Op{op}}
}

func TestAssessEmptyProgram(t *testing.T) {
	rep, err := Assess(nil, device.ParamsFor(device.ReRAM))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PApp != 0 || rep.SenseDecisions != 0 {
		t.Errorf("empty program: %+v", rep)
	}
	if rep.MTBFOps() != math.Inf(1) && rep.MTBFOps() < 1e300 {
		t.Errorf("MTBF for zero P_app should be effectively infinite, got %g", rep.MTBFOps())
	}
}

func TestAssessSingleOpMatchesDevice(t *testing.T) {
	params := device.ParamsFor(device.STTMRAM)
	p := isa.Program{cimRead(logic.And, 0, 1)}
	rep, err := Assess(p, params)
	if err != nil {
		t.Fatal(err)
	}
	want := params.DecisionFailure(logic.And, 2)
	if math.Abs(rep.PApp-want) > 1e-15 {
		t.Errorf("PApp = %g, want %g", rep.PApp, want)
	}
	if rep.SenseDecisions != 1 {
		t.Errorf("decisions = %d, want 1", rep.SenseDecisions)
	}
	if rep.WorstClass.Class.Op != logic.And || rep.WorstClass.Count != 1 {
		t.Errorf("worst class %+v", rep.WorstClass)
	}
}

func TestAssessAccumulatesOverOps(t *testing.T) {
	params := device.ParamsFor(device.STTMRAM)
	one := isa.Program{cimRead(logic.Nand, 0, 1)}
	many := isa.Program{}
	for i := 0; i < 50; i++ {
		many = append(many, cimRead(logic.Nand, 0, 1))
	}
	r1, _ := Assess(one, params)
	r50, _ := Assess(many, params)
	if r50.PApp <= r1.PApp {
		t.Error("more ops must raise P_app")
	}
	// For small p, P_app(50) ~ 50 * p.
	if ratio := r50.PApp / r1.PApp; ratio < 45 || ratio > 51 {
		t.Errorf("accumulation ratio = %g, want ~50", ratio)
	}
}

func TestAssessPerColumnDecisionsCount(t *testing.T) {
	params := device.ParamsFor(device.ReRAM)
	wide := isa.Program{{
		Kind: isa.KindRead,
		Cols: []int{0, 1, 2},
		Rows: []int{0, 1},
		Ops:  []logic.Op{logic.And, logic.Or, logic.Xor},
	}}
	rep, err := Assess(wide, params)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SenseDecisions != 3 {
		t.Errorf("decisions = %d, want 3 (one per column)", rep.SenseDecisions)
	}
	if len(rep.Classes) != 3 {
		t.Errorf("classes = %d, want 3", len(rep.Classes))
	}
}

func TestAssessRejectsTooManyRows(t *testing.T) {
	params := device.ParamsFor(device.STTMRAM) // MaxRows = 4
	p := isa.Program{cimRead(logic.And, 0, 1, 2, 3, 4)}
	if _, err := Assess(p, params); err == nil {
		t.Error("5-row activation accepted on STT-MRAM")
	}
}

func TestNonSenseInstructionsDoNotCount(t *testing.T) {
	params := device.ParamsFor(device.ReRAM)
	p := isa.Program{
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"x"}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindNot, Cols: []int{0}},
		{Kind: isa.KindShift, ShiftBy: 1},
	}
	rep, err := Assess(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PApp != 0 || rep.SenseDecisions != 0 {
		t.Errorf("non-sense instructions contributed: %+v", rep)
	}
}

func TestTechOrderingAtAppLevel(t *testing.T) {
	// The same program must be far more reliable on ReRAM than STT-MRAM.
	var p isa.Program
	for i := 0; i < 100; i++ {
		p = append(p, cimRead(logic.Xor, 0, 1))
	}
	re, _ := Assess(p, device.ParamsFor(device.ReRAM))
	stt, _ := Assess(p, device.ParamsFor(device.STTMRAM))
	if re.PApp*100 > stt.PApp {
		t.Errorf("ReRAM P_app %g not clearly below STT-MRAM %g", re.PApp, stt.PApp)
	}
}

func TestSortPointsByLatency(t *testing.T) {
	pts := []Point{{LatencyNS: 3}, {LatencyNS: 1}, {LatencyNS: 2}}
	SortPointsByLatency(pts)
	if pts[0].LatencyNS != 1 || pts[2].LatencyNS != 3 {
		t.Errorf("unsorted: %+v", pts)
	}
}
