package reliability

import (
	"fmt"
	"sort"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
)

// NVM cells wear out: each programming pulse degrades the cell, and
// technologies tolerate a bounded number of writes (~1e6 for PCM up to
// ~1e12+ for ReRAM/STT-MRAM). A mapping decides which physical cells absorb
// the kernel's intermediate-result writes, so two schedules with identical
// latency can differ by orders of magnitude in array lifetime. WearReport
// quantifies that: the write pressure per cell for one program execution.
type WearReport struct {
	TotalWrites int
	CellsUsed   int
	// MaxWritesPerCell is the hottest cell's write count in one execution.
	MaxWritesPerCell int
	// MeanWritesPerCell averages over touched cells.
	MeanWritesPerCell float64
	// HotCells lists the most-written cells, hottest first (up to 8).
	HotCells []CellWear
}

// CellWear is one cell's write count.
type CellWear struct {
	Place  layout.Place
	Writes int
}

// LifetimeExecutions estimates how many kernel executions the array
// endures before the hottest cell exceeds the technology's write
// endurance.
func (w WearReport) LifetimeExecutions(enduranceWrites float64) float64 {
	if w.MaxWritesPerCell == 0 {
		return 0
	}
	return enduranceWrites / float64(w.MaxWritesPerCell)
}

// AssessWear tallies per-cell write pressure for one program execution.
func AssessWear(p isa.Program) (WearReport, error) {
	writes := make(map[layout.Place]int)
	total := 0
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return WearReport{}, fmt.Errorf("reliability: instruction %d (%s): %w", i, in, err)
		}
		if in.Kind != isa.KindWrite {
			continue
		}
		for _, c := range in.Cols {
			writes[layout.Place{Array: in.Array, Col: c, Row: in.Rows[0]}]++
			total++
		}
	}
	rep := WearReport{TotalWrites: total, CellsUsed: len(writes)}
	if len(writes) == 0 {
		return rep, nil
	}
	cells := make([]CellWear, 0, len(writes))
	for pl, n := range writes {
		cells = append(cells, CellWear{Place: pl, Writes: n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Writes != cells[j].Writes {
			return cells[i].Writes > cells[j].Writes
		}
		pi, pj := cells[i].Place, cells[j].Place
		if pi.Array != pj.Array {
			return pi.Array < pj.Array
		}
		if pi.Col != pj.Col {
			return pi.Col < pj.Col
		}
		return pi.Row < pj.Row
	})
	rep.MaxWritesPerCell = cells[0].Writes
	rep.MeanWritesPerCell = float64(total) / float64(len(writes))
	if len(cells) > 8 {
		cells = cells[:8]
	}
	rep.HotCells = cells
	return rep, nil
}

// EnduranceWrites returns a representative write-endurance budget per
// technology (programming cycles before a cell degrades beyond use):
// STT-MRAM is effectively unlimited, filamentary ReRAM sustains ~1e9 SET/
// RESET cycles, PCM wears out fastest.
func EnduranceWrites(tech device.Technology) float64 {
	switch tech {
	case device.STTMRAM:
		return 1e15
	case device.ReRAM:
		return 1e9
	case device.PCM:
		return 1e7
	}
	return 1e9
}
