// Package sim executes generated CIM programs bit-exactly and accounts for
// their latency, energy, and reliability — the role the extended gem5 plays
// in the paper's toolchain.
//
// The functional machine models each array's cell matrix and per-array row
// buffer. It runs in strict mode: reading a cell or buffer bit that was
// never defined is an error, which catches code-generation bugs instead of
// silently computing with zeros. An optional fault-injection mode flips
// sense decisions with their technology-dependent decision-failure
// probability, enabling Monte-Carlo validation of the analytical P_app
// model.
package sim

import (
	"fmt"
	"math/rand"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
)

// Machine is the functional CIM array simulator.
type Machine struct {
	target layout.Target

	cells   [][][]bool // [array][row][col]
	defined [][][]bool

	rowbuf    [][]bool // [array][col]
	bufDef    [][]bool
	faults    *faultModel
	flipCount int

	// Scratch buffers hoisted off the hot path: readBits gathers one
	// column's operands in stepRead, shiftBuf/shiftDef double-buffer the
	// row buffer in stepShift. Without them every read column and every
	// shift instruction allocates.
	readBits           []bool
	shiftBuf, shiftDef []bool
}

type faultModel struct {
	params device.Params
	rng    *rand.Rand
}

// NewMachine builds a zeroed machine for the target. No cell is "defined"
// until written.
func NewMachine(t layout.Target) *Machine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{target: t}
	m.cells = make([][][]bool, t.Arrays)
	m.defined = make([][][]bool, t.Arrays)
	m.rowbuf = make([][]bool, t.Arrays)
	m.bufDef = make([][]bool, t.Arrays)
	for a := 0; a < t.Arrays; a++ {
		m.cells[a] = make([][]bool, t.Rows)
		m.defined[a] = make([][]bool, t.Rows)
		for r := 0; r < t.Rows; r++ {
			m.cells[a][r] = make([]bool, t.Cols)
			m.defined[a][r] = make([]bool, t.Cols)
		}
		m.rowbuf[a] = make([]bool, t.Cols)
		m.bufDef[a] = make([]bool, t.Cols)
	}
	m.readBits = make([]bool, 0, 8)
	m.shiftBuf = make([]bool, t.Cols)
	m.shiftDef = make([]bool, t.Cols)
	return m
}

// EnableFaultInjection makes every sense decision flip with its
// decision-failure probability under the given technology parameters.
func (m *Machine) EnableFaultInjection(p device.Params, seed int64) {
	m.faults = &faultModel{params: p, rng: rand.New(rand.NewSource(seed))}
}

// FaultCount reports how many sense decisions were flipped so far.
func (m *Machine) FaultCount() int { return m.flipCount }

// Target returns the machine's fabric description.
func (m *Machine) Target() layout.Target { return m.target }

// Cell returns the stored bit at a cell; the second result is false if the
// cell was never written.
func (m *Machine) Cell(p layout.Place) (bool, bool) {
	if err := m.checkPlace(p.Array, p.Col, p.Row); err != nil {
		return false, false
	}
	return m.cells[p.Array][p.Row][p.Col], m.defined[p.Array][p.Row][p.Col]
}

func (m *Machine) checkPlace(array, col, row int) error {
	if array < 0 || array >= m.target.Arrays {
		return fmt.Errorf("sim: array %d outside target", array)
	}
	if col < 0 || col >= m.target.Cols {
		return fmt.Errorf("sim: column %d outside target", col)
	}
	if row < 0 || row >= m.target.Rows {
		return fmt.Errorf("sim: row %d outside target", row)
	}
	return nil
}

// Run executes the program from the machine's current state. Host-write
// bindings are resolved against inputs. Execution stops at the first error,
// identifying the offending instruction.
func (m *Machine) Run(p isa.Program, inputs map[string]bool) error {
	for i, in := range p {
		if err := m.step(in, inputs); err != nil {
			return fmt.Errorf("sim: instruction %d (%s): %w", i, in, err)
		}
	}
	return nil
}

func (m *Machine) step(in isa.Instruction, inputs map[string]bool) error {
	if err := in.Validate(); err != nil {
		return err
	}
	switch in.Kind {
	case isa.KindRead:
		return m.stepRead(in)
	case isa.KindWrite:
		return m.stepWrite(in, inputs)
	case isa.KindShift:
		return m.stepShift(in)
	case isa.KindNot:
		return m.stepNot(in)
	}
	return fmt.Errorf("unknown kind %v", in.Kind)
}

func (m *Machine) stepRead(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	for _, r := range in.Rows {
		if err := m.checkPlace(a, 0, r); err != nil {
			return err
		}
	}
	for i, c := range in.Cols {
		if err := m.checkPlace(a, c, in.Rows[0]); err != nil {
			return err
		}
		bits := m.readBits[:0]
		for _, r := range in.Rows {
			if !m.defined[a][r][c] {
				return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
			}
			bits = append(bits, m.cells[a][r][c])
		}
		m.readBits = bits[:0]
		var v bool
		if in.IsCIMRead() {
			v = in.Ops[i].Eval(bits...)
			if m.faults != nil {
				pdf := m.faults.params.DecisionFailure(in.Ops[i], len(in.Rows))
				if m.faults.rng.Float64() < pdf {
					v = !v
					m.flipCount++
				}
			}
		} else {
			v = bits[0]
		}
		m.rowbuf[a][c] = v
		m.bufDef[a][c] = true
	}
	return nil
}

func (m *Machine) stepWrite(in isa.Instruction, inputs map[string]bool) error {
	a, row := in.Array, in.Rows[0]
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	src := a
	if in.HasSrcArray {
		src = in.SrcArray
		if src >= m.target.Arrays {
			return fmt.Errorf("source array %d outside target", src)
		}
	}
	for i, c := range in.Cols {
		if err := m.checkPlace(a, c, row); err != nil {
			return err
		}
		var v bool
		switch {
		case in.IsHostWrite():
			val, ok := inputs[in.Bindings[i]]
			if !ok {
				return fmt.Errorf("unbound input %q", in.Bindings[i])
			}
			v = val
		default:
			if !m.bufDef[src][c] {
				return fmt.Errorf("write from undefined row-buffer bit [%d][%d]", src, c)
			}
			v = m.rowbuf[src][c]
		}
		m.cells[a][row][c] = v
		m.defined[a][row][c] = true
	}
	return nil
}

func (m *Machine) stepShift(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	n := m.target.Cols
	nb, nd := m.shiftBuf, m.shiftDef
	d := in.ShiftBy
	if !in.Right {
		d = -d
	}
	for c := 0; c < n; c++ {
		srcCol := c - d
		if srcCol >= 0 && srcCol < n {
			nb[c] = m.rowbuf[a][srcCol]
			nd[c] = m.bufDef[a][srcCol]
		} else {
			nb[c], nd[c] = false, false
		}
	}
	// Swap the shifted scratch in; the old buffer becomes next time's
	// scratch.
	m.rowbuf[a], m.shiftBuf = nb, m.rowbuf[a]
	m.bufDef[a], m.shiftDef = nd, m.bufDef[a]
	return nil
}

func (m *Machine) stepNot(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	for _, c := range in.Cols {
		if c >= m.target.Cols {
			return fmt.Errorf("column %d outside target", c)
		}
		if !m.bufDef[a][c] {
			return fmt.Errorf("NOT of undefined row-buffer bit [%d][%d]", a, c)
		}
		m.rowbuf[a][c] = !m.rowbuf[a][c]
	}
	return nil
}

// ReadOut returns the value stored at the cell, failing when the cell was
// never written — the host-side result readout.
func (m *Machine) ReadOut(p layout.Place) (bool, error) {
	v, ok := m.Cell(p)
	if !ok {
		return false, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	return v, nil
}
