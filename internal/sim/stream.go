package sim

// Chunked streaming execution: arbitrarily large lane counts flow through a
// bounded set of wide ExecMachines instead of materializing one machine (or
// one output block) per 256-lane group. A Stream owns S shards; each shard
// owns a small ring of machines and, in the default pipelined mode, three
// persistent stage goroutines:
//
//	pack    — claims the next chunk, retargets a free machine's lane
//	          geometry and fills its input scratch from the caller's block
//	exec    — runs the decoded program over the chunk's lanes
//	reduce  — reads the chunk's output words and folds them into the
//	          caller's sink (or output block)
//
// so while a shard executes chunk k it is already packing chunk k+1 and
// still reducing chunk k-1 — the stages overlap within a shard, and the N
// shards execute N chunks concurrently. Machines hand off between stages
// through channels (the channel send is the happens-before edge), so no
// machine is ever touched by two stages at once.
//
// Serial mode (StreamConfig.Serial) runs pack, exec and reduce inline on
// one goroutine per shard with a single machine — the ablation baseline
// that measures what the stage overlap buys.
//
// Error semantics mirror pool.Run: the first error by chunk index wins,
// later chunks are skipped (packed slots drain through the pipeline
// unexecuted), and Run returns after every shard has quiesced.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxStreamBlockWords caps the auto-sized chunk width: 256 words = 16384
// lanes per chunk, wide enough to amortize per-micro-op dispatch to noise.
const MaxStreamBlockWords = 256

// streamStateBudget is the per-machine state footprint (cells + row buffer
// + input scratch) the auto sizing targets: roughly an L2's worth, so a
// chunk's working set stays cache-resident across pack, exec and reduce.
const streamStateBudget = 1 << 20

// StreamConfig sizes a Stream.
type StreamConfig struct {
	// BlockWords is the chunk width B in words (B*64 lanes per chunk).
	// 0 auto-sizes: the largest B in [DefaultBlockWords,
	// MaxStreamBlockWords] that keeps one machine's state near
	// streamStateBudget bytes.
	BlockWords int
	// Shards is the number of concurrent chunk pipelines
	// (0 = runtime.GOMAXPROCS(0)).
	Shards int
	// Serial disables the stage overlap: each shard packs, executes and
	// reduces its chunks inline on one goroutine (ablation + debugging;
	// results are identical).
	Serial bool
}

// PackFunc fills m's input scratch (m.InputBlock()) for the chunk covering
// lanes [startLane, startLane+lanes). The machine's lane geometry is
// already set; every input slot's ceil(lanes/64) leading words must be
// overwritten (the pipeline skips Reset's scratch clears).
type PackFunc func(m *ExecMachine, chunk, startLane, lanes int) error

// ReduceFunc consumes one executed chunk from m — readout, fold, copy-out.
// It runs on shard's reducer goroutine only, so per-shard accumulators
// need no locking; chunks arrive in arbitrary global order.
type ReduceFunc func(shard int, m *ExecMachine, chunk, startLane, lanes int) error

// Stream is a reusable chunked execution pipeline over one decoded
// program. One Run executes at a time (Run serializes internally); the
// shards, machines and stage goroutines persist across runs, so a warmed
// Stream runs with zero per-call allocations. Close releases the
// goroutines; a Stream is not usable after Close.
type Stream struct {
	e      *Exec
	block  int // B, words per chunk
	serial bool
	shards []*streamShard

	// shutdown is the sentinel slot that tells downstream stages to exit;
	// nil slots mark end-of-run.
	shutdown *streamSlot

	runMu  sync.Mutex
	closed bool
	job    streamJob
}

// streamJob is the mutable per-run state, reused across runs.
type streamJob struct {
	lanes      int
	chunkLanes int
	chunks     int
	pack       PackFunc
	reduce     ReduceFunc

	next atomic.Int64
	stop atomic.Bool

	mu       sync.Mutex
	errChunk int
	err      error

	wg sync.WaitGroup
}

// fail records err for chunk, keeping the lowest-indexed failure (the one
// a sequential run would have hit first), and halts further claiming.
func (j *streamJob) fail(chunk int, err error) {
	j.mu.Lock()
	if j.err == nil || chunk < j.errChunk {
		j.errChunk, j.err = chunk, err
	}
	j.mu.Unlock()
	j.stop.Store(true)
}

// streamSlot is one in-flight chunk: a machine plus the chunk coordinates
// it currently carries. skip marks slots whose pack failed (they drain
// through exec and reduce untouched).
type streamSlot struct {
	m     *ExecMachine
	chunk int
	start int
	lanes int
	skip  bool
}

// streamShard is one pipeline lane: a machine ring and the channels its
// stage goroutines hand slots through.
type streamShard struct {
	id    int
	start chan struct{}
	free  chan *streamSlot
	exec  chan *streamSlot
	red   chan *streamSlot
}

// streamRing is the machine ring depth of a pipelined shard: one slot per
// stage, so pack, exec and reduce can all be busy at once.
const streamRing = 3

// NewStream builds a stream over a decoded program and starts its shard
// goroutines. The caller owns the Stream and must Close it.
func NewStream(e *Exec, cfg StreamConfig) (*Stream, error) {
	block := cfg.BlockWords
	if block == 0 {
		block = autoBlockWords(e)
	}
	if block < 1 {
		return nil, fmt.Errorf("sim: stream block of %d words", cfg.BlockWords)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &Stream{
		e:        e,
		block:    block,
		serial:   cfg.Serial,
		shutdown: &streamSlot{},
	}
	ring := streamRing
	if cfg.Serial {
		ring = 1
	}
	for i := 0; i < shards; i++ {
		sh := &streamShard{
			id:    i,
			start: make(chan struct{}, 1),
			free:  make(chan *streamSlot, ring),
			exec:  make(chan *streamSlot, ring),
			red:   make(chan *streamSlot, ring),
		}
		for r := 0; r < ring; r++ {
			sh.free <- &streamSlot{m: e.NewMachine(block)}
		}
		s.shards = append(s.shards, sh)
		if cfg.Serial {
			go s.serialShard(sh)
		} else {
			go s.packStage(sh)
			go s.execStage(sh)
			go s.reduceStage(sh)
		}
	}
	return s, nil
}

// autoBlockWords picks the cache-sized chunk width for a program: small
// kernels get wide blocks (cheap per-lane dispatch), huge kernels collapse
// toward the 4-word batch default so one chunk's state still fits.
func autoBlockWords(e *Exec) int {
	state := (e.numCells + e.numBuf + len(e.inputNames)) * 8
	if state < 8 {
		state = 8
	}
	b := streamStateBudget / state
	if b < DefaultBlockWords {
		b = DefaultBlockWords
	}
	if b > MaxStreamBlockWords {
		b = MaxStreamBlockWords
	}
	return b
}

// BlockWords returns B, the chunk width in words.
func (s *Stream) BlockWords() int { return s.block }

// ChunkLanes returns the lanes per chunk (B*64).
func (s *Stream) ChunkLanes() int { return s.block * WordLanes }

// Shards returns the concurrent pipeline count.
func (s *Stream) Shards() int { return len(s.shards) }

// Serial reports whether stage overlap is disabled.
func (s *Stream) Serial() bool { return s.serial }

// Run streams lanes input vectors through the pipeline: chunk c covers
// lanes [c*ChunkLanes(), ...), pack fills each chunk's input scratch and
// reduce consumes its outputs. Runs serialize; the first error (by chunk
// index) is returned after the pipeline quiesces.
func (s *Stream) Run(lanes int, pack PackFunc, reduce ReduceFunc) error {
	if lanes <= 0 {
		return fmt.Errorf("sim: stream of %d lanes", lanes)
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.closed {
		return fmt.Errorf("sim: Run on a closed Stream")
	}
	j := &s.job
	j.lanes = lanes
	j.chunkLanes = s.ChunkLanes()
	j.chunks = (lanes + j.chunkLanes - 1) / j.chunkLanes
	j.pack, j.reduce = pack, reduce
	j.next.Store(0)
	j.stop.Store(false)
	j.err, j.errChunk = nil, 0
	j.wg.Add(len(s.shards))
	for _, sh := range s.shards {
		sh.start <- struct{}{}
	}
	j.wg.Wait()
	j.pack, j.reduce = nil, nil
	return j.err
}

// Close stops every shard goroutine. Idempotent; in-flight Runs have
// completed (Run holds the same lock).
func (s *Stream) Close() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.start)
	}
}

// claim takes the next unprocessed chunk, or ok=false when the run is done
// (or stopping). Chunks are claimed dynamically so shards load-balance.
func (j *streamJob) claim() (chunk, start, lanes int, ok bool) {
	if j.stop.Load() {
		return 0, 0, 0, false
	}
	chunk = int(j.next.Add(1)) - 1
	if chunk >= j.chunks {
		return 0, 0, 0, false
	}
	start = chunk * j.chunkLanes
	lanes = j.lanes - start
	if lanes > j.chunkLanes {
		lanes = j.chunkLanes
	}
	return chunk, start, lanes, true
}

// packStage is a shard's front goroutine: per run, claim chunks, pack them
// into free machines, and push them to exec; a nil slot marks end-of-run.
func (s *Stream) packStage(sh *streamShard) {
	for range sh.start {
		j := &s.job
		for {
			chunk, start, lanes, ok := j.claim()
			if !ok {
				break
			}
			slot := <-sh.free
			slot.chunk, slot.start, slot.lanes, slot.skip = chunk, start, lanes, false
			slot.m.setLanes(lanes)
			if err := j.pack(slot.m, chunk, start, lanes); err != nil {
				j.fail(chunk, err)
				slot.skip = true
			}
			sh.exec <- slot
		}
		sh.exec <- nil
	}
	sh.exec <- s.shutdown
}

// execStage runs packed chunks and forwards them to reduce.
func (s *Stream) execStage(sh *streamShard) {
	for {
		slot := <-sh.exec
		if slot == s.shutdown {
			sh.red <- slot
			return
		}
		if slot == nil {
			sh.red <- nil
			continue
		}
		j := &s.job
		if !slot.skip && !j.stop.Load() {
			if err := slot.m.Run(slot.m.InputBlock()); err != nil {
				j.fail(slot.chunk, err)
				slot.skip = true
			}
		} else {
			slot.skip = true
		}
		sh.red <- slot
	}
}

// reduceStage consumes executed chunks and recycles their machines; the
// end-of-run nil releases the shard's share of the run barrier.
func (s *Stream) reduceStage(sh *streamShard) {
	for {
		slot := <-sh.red
		if slot == s.shutdown {
			return
		}
		j := &s.job
		if slot == nil {
			j.wg.Done()
			continue
		}
		if !slot.skip && !j.stop.Load() {
			if err := j.reduce(sh.id, slot.m, slot.chunk, slot.start, slot.lanes); err != nil {
				j.fail(slot.chunk, err)
			}
		}
		sh.free <- slot
	}
}

// serialShard is the ablation pipeline: one goroutine, one machine, the
// three stages run back to back per chunk with no overlap.
func (s *Stream) serialShard(sh *streamShard) {
	slot := <-sh.free
	for range sh.start {
		j := &s.job
		for {
			chunk, start, lanes, ok := j.claim()
			if !ok {
				break
			}
			slot.m.setLanes(lanes)
			if err := j.pack(slot.m, chunk, start, lanes); err != nil {
				j.fail(chunk, err)
				continue
			}
			if err := slot.m.Run(slot.m.InputBlock()); err != nil {
				j.fail(chunk, err)
				continue
			}
			if err := j.reduce(sh.id, slot.m, chunk, start, lanes); err != nil {
				j.fail(chunk, err)
			}
		}
		j.wg.Done()
	}
}
