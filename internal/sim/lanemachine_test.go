package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// progModel tracks which cells and row-buffer bits a generated program has
// defined, so the generator only emits valid-by-construction instructions
// and the test knows which cells to read back.
type progModel struct {
	t        layout.Target
	cellsDef [][][]bool
	bufDef   [][]bool
	prog     isa.Program
	names    []string
}

func newProgModel(t layout.Target) *progModel {
	m := &progModel{t: t}
	m.cellsDef = make([][][]bool, t.Arrays)
	m.bufDef = make([][]bool, t.Arrays)
	for a := 0; a < t.Arrays; a++ {
		m.cellsDef[a] = make([][]bool, t.Rows)
		for r := 0; r < t.Rows; r++ {
			m.cellsDef[a][r] = make([]bool, t.Cols)
		}
		m.bufDef[a] = make([]bool, t.Cols)
	}
	return m
}

// subset returns a random non-empty sorted subset of xs.
func subset(rng *rand.Rand, xs []int) []int {
	var out []int
	for _, x := range xs {
		if rng.Intn(2) == 0 {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		out = []int{xs[rng.Intn(len(xs))]}
	}
	return out
}

func (m *progModel) hostWrite(rng *rand.Rand) {
	a, r := rng.Intn(m.t.Arrays), rng.Intn(m.t.Rows)
	all := make([]int, m.t.Cols)
	for c := range all {
		all[c] = c
	}
	cols := subset(rng, all)
	bind := make([]string, len(cols))
	for i := range bind {
		bind[i] = fmt.Sprintf("x%d", len(m.names))
		m.names = append(m.names, bind[i])
	}
	m.prog = append(m.prog, isa.Instruction{
		Kind: isa.KindWrite, Array: a, Cols: cols, Rows: []int{r}, Bindings: bind,
	})
	for _, c := range cols {
		m.cellsDef[a][r][c] = true
	}
}

func (m *progModel) cimRead(rng *rand.Rand) bool {
	a := rng.Intn(m.t.Arrays)
	for attempt := 0; attempt < 4; attempt++ {
		k := 2 + rng.Intn(2)
		if k > m.t.Rows {
			k = 2
		}
		rows := rng.Perm(m.t.Rows)[:k]
		var cols []int
		for c := 0; c < m.t.Cols; c++ {
			ok := true
			for _, r := range rows {
				if !m.cellsDef[a][r][c] {
					ok = false
					break
				}
			}
			if ok {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			continue
		}
		cols = subset(rng, cols)
		sortInts(rows)
		ops := make([]logic.Op, len(cols))
		sense := logic.SenseOps()
		for i := range ops {
			ops[i] = sense[rng.Intn(len(sense))]
		}
		m.prog = append(m.prog, isa.Instruction{
			Kind: isa.KindRead, Array: a, Cols: cols, Rows: rows, Ops: ops,
		})
		for _, c := range cols {
			m.bufDef[a][c] = true
		}
		return true
	}
	return false
}

func (m *progModel) plainRead(rng *rand.Rand) bool {
	a := rng.Intn(m.t.Arrays)
	for attempt := 0; attempt < 4; attempt++ {
		r := rng.Intn(m.t.Rows)
		var cols []int
		for c := 0; c < m.t.Cols; c++ {
			if m.cellsDef[a][r][c] {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			continue
		}
		cols = subset(rng, cols)
		m.prog = append(m.prog, isa.Instruction{
			Kind: isa.KindRead, Array: a, Cols: cols, Rows: []int{r},
		})
		for _, c := range cols {
			m.bufDef[a][c] = true
		}
		return true
	}
	return false
}

func (m *progModel) bufCols(a int) []int {
	var cols []int
	for c := 0; c < m.t.Cols; c++ {
		if m.bufDef[a][c] {
			cols = append(cols, c)
		}
	}
	return cols
}

func (m *progModel) bufWrite(rng *rand.Rand, cross bool) bool {
	src := rng.Intn(m.t.Arrays)
	cols := m.bufCols(src)
	if len(cols) == 0 {
		return false
	}
	cols = subset(rng, cols)
	dst, r := src, rng.Intn(m.t.Rows)
	in := isa.Instruction{Kind: isa.KindWrite, Cols: cols, Rows: []int{r}}
	if cross && m.t.Arrays > 1 {
		for dst == src {
			dst = rng.Intn(m.t.Arrays)
		}
		in.HasSrcArray, in.SrcArray = true, src
	}
	in.Array = dst
	m.prog = append(m.prog, in)
	for _, c := range cols {
		m.cellsDef[dst][r][c] = true
	}
	return true
}

func (m *progModel) not(rng *rand.Rand) bool {
	a := rng.Intn(m.t.Arrays)
	cols := m.bufCols(a)
	if len(cols) == 0 {
		return false
	}
	m.prog = append(m.prog, isa.Instruction{Kind: isa.KindNot, Array: a, Cols: subset(rng, cols)})
	return true
}

func (m *progModel) shift(rng *rand.Rand) {
	a := rng.Intn(m.t.Arrays)
	d := 1 + rng.Intn(2)
	right := rng.Intn(2) == 0
	m.prog = append(m.prog, isa.Instruction{Kind: isa.KindShift, Array: a, Right: right, ShiftBy: d})
	old := m.bufDef[a]
	nd := make([]bool, m.t.Cols)
	dd := d
	if !right {
		dd = -d
	}
	for c := 0; c < m.t.Cols; c++ {
		if s := c - dd; s >= 0 && s < m.t.Cols {
			nd[c] = old[s]
		}
	}
	m.bufDef[a] = nd
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// randomProgram generates a valid-by-construction program plus its input
// names and the cells left defined for readout.
func randomProgram(rng *rand.Rand, t layout.Target, steps int) (*progModel, []layout.Place) {
	m := newProgModel(t)
	m.hostWrite(rng)
	for len(m.prog) < steps {
		switch rng.Intn(10) {
		case 0, 1:
			m.hostWrite(rng)
		case 2, 3, 4:
			if !m.cimRead(rng) {
				m.hostWrite(rng)
			}
		case 5:
			if !m.plainRead(rng) {
				m.hostWrite(rng)
			}
		case 6:
			if !m.bufWrite(rng, false) {
				m.hostWrite(rng)
			}
		case 7:
			if !m.bufWrite(rng, true) {
				m.hostWrite(rng)
			}
		case 8:
			if !m.not(rng) {
				m.hostWrite(rng)
			}
		case 9:
			m.shift(rng)
		}
	}
	var defined []layout.Place
	for a := 0; a < t.Arrays; a++ {
		for r := 0; r < t.Rows; r++ {
			for c := 0; c < t.Cols; c++ {
				if m.cellsDef[a][r][c] {
					defined = append(defined, layout.Place{Array: a, Col: c, Row: r})
				}
			}
		}
	}
	return m, defined
}

// TestLaneMachineMatchesScalarFuzz is the differential oracle: random
// programs with random inputs must read out identically from Machine (one
// run per lane) and LaneMachine (one SWAR pass), at every lane count
// including partial final words, and with garbage in the dead high lanes of
// the input words.
func TestLaneMachineMatchesScalarFuzz(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(17))
	laneChoices := []int{1, 2, 7, 31, 63, 64}
	for trial := 0; trial < 150; trial++ {
		pm, defined := randomProgram(rng, target, 24)
		lanes := laneChoices[trial%len(laneChoices)]

		words := make(map[string]uint64, len(pm.names))
		perLane := make([]map[string]bool, lanes)
		for _, n := range pm.names {
			words[n] = 0
		}
		for l := 0; l < lanes; l++ {
			in := make(map[string]bool, len(pm.names))
			for _, n := range pm.names {
				v := rng.Intn(2) == 1
				in[n] = v
				if v {
					words[n] |= uint64(1) << uint(l)
				}
			}
			perLane[l] = in
		}
		if lanes < 64 {
			// Dead lanes must not leak into live results.
			for _, n := range pm.names {
				words[n] |= rng.Uint64() << uint(lanes)
			}
		}

		lm := NewLaneMachine(target, lanes)
		if err := lm.Run(pm.prog, words); err != nil {
			t.Fatalf("trial %d: lane machine: %v\nprogram:\n%s", trial, err, pm.prog)
		}
		for l := 0; l < lanes; l++ {
			sm := NewMachine(target)
			if err := sm.Run(pm.prog, perLane[l]); err != nil {
				t.Fatalf("trial %d lane %d: scalar machine: %v\nprogram:\n%s", trial, l, err, pm.prog)
			}
			for _, p := range defined {
				want, err := sm.ReadOut(p)
				if err != nil {
					t.Fatalf("trial %d lane %d: scalar readout %v: %v", trial, l, p, err)
				}
				w, err := lm.ReadOutWord(p)
				if err != nil {
					t.Fatalf("trial %d: lane readout %v: %v", trial, p, err)
				}
				if got := w>>uint(l)&1 == 1; got != want {
					t.Fatalf("trial %d lane %d cell %v: lane machine %v, scalar %v\nprogram:\n%s",
						trial, l, p, got, want, pm.prog)
				}
			}
		}
	}
}

// TestLaneMachineStrictErrorsMatchScalar asserts the lane machine rejects
// exactly what the scalar machine rejects, with identical messages: the
// program is lane-uniform, so an undefined access in one lane is one in
// all.
func TestLaneMachineStrictErrorsMatchScalar(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 8, Cols: 4}
	cases := []struct {
		name, prog string
		inputs     map[string]bool
	}{
		{"undefined read", "Read [0][0][0]", nil},
		{"shift drops bit", "Write [0][3][0] <x>\nRead [0][3][0]\nShift [0] R[2]\nWrite [0][3][1]",
			map[string]bool{"x": true}},
		{"unbound input", "Write [0][0][0] <mystery>", map[string]bool{}},
		{"bad array", "Write [5][0][0] <x>", map[string]bool{"x": true}},
		{"bad row", "Read [0][0][0,99] [AND]", map[string]bool{"x": true}},
		{"undefined buffer write", "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [1][0][0] @[0]\nNot [1][1]",
			map[string]bool{"x": true}},
	}
	for _, tc := range cases {
		prog, err := isa.ParseProgram(tc.prog)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		sm := NewMachine(target)
		errS := sm.Run(prog, tc.inputs)
		for _, lanes := range []int{64, 5} {
			words := make(map[string]uint64)
			for n, v := range tc.inputs {
				var w uint64
				if v {
					w = ^uint64(0)
				}
				words[n] = w
			}
			lm := NewLaneMachine(target, lanes)
			errL := lm.Run(prog, words)
			if (errS == nil) != (errL == nil) {
				t.Errorf("%s (lanes %d): scalar err %v, lane err %v", tc.name, lanes, errS, errL)
				continue
			}
			if errS != nil && errS.Error() != errL.Error() {
				t.Errorf("%s (lanes %d): error mismatch\nscalar: %v\nlane:   %v", tc.name, lanes, errS, errL)
			}
		}
	}
}

// TestLaneMachineReset asserts Reset reuses the machine cleanly: state from
// a previous pass must not leak into the next one.
func TestLaneMachineReset(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 2}
	prog, err := isa.ParseProgram("Write [0][0,1][0] <a,b>")
	if err != nil {
		t.Fatal(err)
	}
	m := NewLaneMachine(target, 64)
	if err := m.Run(prog, map[string]uint64{"a": ^uint64(0), "b": 0}); err != nil {
		t.Fatal(err)
	}
	m.Reset(3)
	if m.Lanes() != 3 || m.Mask() != 7 {
		t.Fatalf("Reset(3): lanes %d mask %#x", m.Lanes(), m.Mask())
	}
	if _, err := m.ReadOutWord(layout.Place{Array: 0, Col: 0, Row: 0}); err == nil {
		t.Fatal("cell stayed defined across Reset")
	}
	if err := m.Run(prog, map[string]uint64{"a": 5, "b": 2}); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadOutWord(layout.Place{Array: 0, Col: 0, Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Fatalf("readout after Reset = %#x, want 0x5", w)
	}
	if m.TotalFaults() != 0 {
		t.Fatal("fault counts survived Reset")
	}
}

// TestLaneMachineLaneEdges drives the boundary lane counts — a single lane,
// one short of a full word, and a full word — through Reset, Mask,
// ReadOutWord masking and fault accounting.
func TestLaneMachineLaneEdges(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 2}
	prog, err := isa.ParseProgram("Write [0][0,1][0] <a,b>")
	if err != nil {
		t.Fatal(err)
	}
	p := layout.Place{Array: 0, Col: 0, Row: 0}
	for _, lanes := range []int{1, 63, 64} {
		wantMask := ^uint64(0)
		if lanes < 64 {
			wantMask = uint64(1)<<uint(lanes) - 1
		}
		m := NewLaneMachine(target, lanes)
		if m.Lanes() != lanes || m.Mask() != wantMask {
			t.Fatalf("lanes %d: Lanes()=%d Mask()=%#x, want mask %#x", lanes, m.Lanes(), m.Mask(), wantMask)
		}
		// Garbage above the live lanes must be masked out of readout.
		if err := m.Run(prog, map[string]uint64{"a": ^uint64(0), "b": ^uint64(0)}); err != nil {
			t.Fatalf("lanes %d: %v", lanes, err)
		}
		w, err := m.ReadOutWord(p)
		if err != nil {
			t.Fatalf("lanes %d: %v", lanes, err)
		}
		if w != wantMask {
			t.Fatalf("lanes %d: readout %#x, want %#x", lanes, w, wantMask)
		}
		if m.TotalFaults() != 0 {
			t.Fatalf("lanes %d: faults without injection", lanes)
		}
		// FaultCount bounds follow the lane count exactly.
		if got := m.FaultCount(lanes - 1); got != 0 {
			t.Fatalf("lanes %d: FaultCount(last)=%d", lanes, got)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("lanes %d: FaultCount(%d) did not panic", lanes, lanes)
				}
			}()
			m.FaultCount(lanes)
		}()
	}
}

// TestLaneMachineTotalFaultsAfterShrink is the regression test for
// TotalFaults summing beyond the live lane count: counts sitting above
// m.lanes are stale by definition (only a wider earlier configuration could
// have written them) and must not leak into the total. Reset also clears
// the backing array today, so the test plants a stale entry directly —
// that keeps it sensitive to the summation bound, not to Reset's clearing.
func TestLaneMachineTotalFaultsAfterShrink(t *testing.T) {
	prog, target, _, laneIn := faultProgram(t)
	m := NewLaneMachine(target, WordLanes)
	m.Reset(3)
	m.flipCounts[40] = 7 // simulate a leftover tally from a 64-lane pass
	if got := m.TotalFaults(); got != 0 {
		t.Fatalf("TotalFaults with 3 lanes = %d, want 0 (stale lane-40 count leaked)", got)
	}
	// A clean narrow run keeps the total at zero.
	if err := m.Run(prog, laneIn); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalFaults(); got != 0 {
		t.Fatalf("TotalFaults after clean narrow run = %d, want 0", got)
	}
}

// faultProgram is a high-decision-count program for sampler statistics: two
// host-written rows and four 8-column XOR scouting reads, 32 sense
// decisions per run.
func faultProgram(t *testing.T) (isa.Program, layout.Target, map[string]bool, map[string]uint64) {
	t.Helper()
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 8}
	var sb []isa.Instruction
	for r := 0; r < 2; r++ {
		cols := make([]int, 8)
		bind := make([]string, 8)
		for c := range cols {
			cols[c] = c
			bind[c] = fmt.Sprintf("r%dc%d", r, c)
		}
		sb = append(sb, isa.Instruction{
			Kind: isa.KindWrite, Cols: cols, Rows: []int{r}, Bindings: bind,
		})
	}
	for i := 0; i < 4; i++ {
		cols := make([]int, 8)
		ops := make([]logic.Op, 8)
		for c := range cols {
			cols[c] = c
			ops[c] = logic.Xor
		}
		sb = append(sb, isa.Instruction{Kind: isa.KindRead, Cols: cols, Rows: []int{0, 1}, Ops: ops})
	}
	prog := isa.Program(sb)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	scalarIn := make(map[string]bool)
	laneIn := make(map[string]uint64)
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 2; r++ {
		for c := 0; c < 8; c++ {
			n := fmt.Sprintf("r%dc%d", r, c)
			scalarIn[n] = rng.Intn(2) == 1
			laneIn[n] = rng.Uint64()
		}
	}
	return prog, target, scalarIn, laneIn
}

// TestGeometricSkipMatchesBernoulli validates the lane machine's
// geometric-skip fault sampler against the scalar machine's per-decision
// Bernoulli draws: over many runs at a high P_DF, the per-run flip-count
// histograms must agree (two-sample chi-squared), as must the means. Both
// streams are seeded, so the test is deterministic.
func TestGeometricSkipMatchesBernoulli(t *testing.T) {
	prog, target, scalarIn, laneIn := faultProgram(t)
	params := device.ParamsFor(device.STTMRAM)
	params.RelSDLRS, params.RelSDHRS = 0.5, 0.5 // inflate P_DF into testable range

	const runs = 4096
	const maxBin = 10
	var scalarHist, laneHist [maxBin + 1]int
	scalarTotal, laneTotal := 0, 0

	for i := 0; i < runs; i++ {
		m := NewMachine(target)
		m.EnableFaultInjection(params, int64(1000+i))
		if err := m.Run(prog, scalarIn); err != nil {
			t.Fatal(err)
		}
		f := m.FaultCount()
		scalarTotal += f
		if f > maxBin {
			f = maxBin
		}
		scalarHist[f]++
	}

	lm := NewLaneMachine(target, WordLanes)
	for b := 0; b < runs/WordLanes; b++ {
		lm.Reset(WordLanes)
		lm.EnableFaultInjection(params, int64(5000+b))
		if err := lm.Run(prog, laneIn); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < WordLanes; l++ {
			f := lm.FaultCount(l)
			laneTotal += f
			if f > maxBin {
				f = maxBin
			}
			laneHist[f]++
		}
	}

	if scalarTotal == 0 || laneTotal == 0 {
		t.Fatalf("degenerate sampler totals: scalar %d, lane %d", scalarTotal, laneTotal)
	}
	meanS := float64(scalarTotal) / runs
	meanL := float64(laneTotal) / runs
	if rel := math.Abs(meanS-meanL) / meanS; rel > 0.10 {
		t.Errorf("mean flips diverge: scalar %.3f vs lane %.3f (%.1f%%)", meanS, meanL, 100*rel)
	}

	// Two-sample chi-squared with equal sample sizes.
	chi2, df := 0.0, -1
	for i := range scalarHist {
		o1, o2 := float64(scalarHist[i]), float64(laneHist[i])
		if o1+o2 < 8 {
			continue // too sparse to contribute meaningfully
		}
		d := o1 - o2
		chi2 += d * d / (o1 + o2)
		df++
	}
	if df < 2 {
		t.Fatalf("chi-squared degenerate: df=%d (hists %v vs %v)", df, scalarHist, laneHist)
	}
	crit := float64(df) + 4*math.Sqrt(2*float64(df)) // ~p<0.001 upper tail
	if chi2 > crit {
		t.Errorf("chi2=%.2f exceeds crit=%.2f (df=%d)\nscalar %v\nlane   %v",
			chi2, crit, df, scalarHist, laneHist)
	}
}

// TestLaneFaultDeterminism pins the sampler's reproducibility: one seed,
// one fault pattern.
func TestLaneFaultDeterminism(t *testing.T) {
	prog, target, _, laneIn := faultProgram(t)
	params := device.ParamsFor(device.STTMRAM)
	params.RelSDLRS, params.RelSDHRS = 0.5, 0.5

	counts := func() []int {
		m := NewLaneMachine(target, WordLanes)
		m.EnableFaultInjection(params, 42)
		if err := m.Run(prog, laneIn); err != nil {
			t.Fatal(err)
		}
		out := make([]int, WordLanes)
		for l := range out {
			out[l] = m.FaultCount(l)
		}
		return out
	}
	a, b := counts(), counts()
	for l := range a {
		if a[l] != b[l] {
			t.Fatalf("lane %d: %d flips vs %d for identical seeds", l, a[l], b[l])
		}
	}
}
