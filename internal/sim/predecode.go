package sim

// Predecode splits simulation into a one-time program transformation and a
// repeated bulk execution, the way SIMDRAM-style frameworks separate
// "generate the μop sequence" from "issue it over the data width". The
// interpreting machines (Machine, LaneMachine) re-run Instruction.Validate,
// re-check bounds, re-hash input names and re-walk [][][] structures on
// every pass; a Monte-Carlo campaign or a RunBatch sweep executes the SAME
// program 10^4..10^6 times, so all of that work is loop-invariant. Exec
// hoists it: one decode pass validates everything, resolves every cell and
// row-buffer access to a flat offset, binds input names to integer slots,
// and fuses the program into a flat []microOp stream whose inner loop is a
// tight switch with no maps, no validation and no nested indexing.
//
// Strict-mode definedness resolves at decode time too: the program is
// lane-uniform and every read either is dominated by a same-run write or is
// an error, so "read of undefined cell" cannot depend on the data. The
// executor therefore carries no defined masks at all — which also makes
// ExecMachine.Reset O(1) in the cell count.

import (
	"fmt"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// Micro-op kinds. Fold ops carry a sense class for fault injection; the
// remaining ops only move words.
const (
	uopCopy      uint8 = iota // plain read: buf[dst] = cells[src]
	uopFoldAnd                // CIM read: buf[dst] = [~]AND(cells[src+r] for r in rows)
	uopFoldOr                 // CIM read, OR/NOR fold
	uopFoldXor                // CIM read, XOR/XNOR fold
	uopHostWrite              // cells[dst] = input slot src
	uopBufWrite               // cells[dst] = buf[src] (src may be another array)
	uopNot                    // buf[dst] = ^buf[dst]
	uopShift                  // move whole row-buffer columns of one array
)

// microOp is one fused step of the decoded program. Scatter/gather ops
// address the shared srcs/dsts pools through [p0,p1); fold ops additionally
// take their activated rows from rowOffs[rows0:rows1]. A shift carries its
// array and signed distance directly.
type microOp struct {
	kind         uint8
	inv          bool  // invert the fold result (NAND/NOR/XNOR)
	class        int32 // sense-class index for fault injection; -1 for none
	p0, p1       int32 // operand range in srcs/dsts
	rows0, rows1 int32 // fold-row range in rowOffs
	array        int32 // shift only
	dist         int32 // shift only; negative = left
}

// bindUse records one host-write column in (instruction, column) order, so
// the unbound-input check can report the same instruction the interpreting
// machines would have failed at.
type bindUse struct {
	instr int32
	slot  int32
}

// Exec is a program pre-decoded for one target: immutable after Predecode
// and safe for concurrent use by any number of ExecMachines.
type Exec struct {
	target layout.Target
	prog   isa.Program
	space  isa.Space

	// Flat state geometry. Cells use the program's dense resource space
	// with rows contiguous per column: cellOff(a,c,r) = (a*BufCols+c)*Rows+r,
	// so a fold walks a stride-1 range. The row buffer must span the full
	// target width (not space.BufCols): shifts can carry live data past the
	// widest directly-addressed column and back.
	numCells int
	bufCols  int // row-buffer words per array = target.Cols
	numBuf   int

	ops     []microOp
	srcs    []int32
	dsts    []int32
	rowOffs []int32

	classes []isa.SenseClass

	inputNames []string // slot -> name, program first-use order
	slots      map[string]int
	bindUses   []bindUse

	defined []bool // final cell definedness, for readout
}

// Predecode validates the program against the target and compiles it into
// an executor. Every error the interpreting machines could raise at run
// time — except unbound inputs, which depend on the caller's binding map —
// is raised here instead, with an identical message.
func Predecode(p isa.Program, t layout.Target) (*Exec, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Clamp the space to the target. Any coordinate beyond the target fails
	// decoding below with the machines' exact error; the clamp only keeps a
	// hostile coordinate from inflating the decode-time allocations first.
	sp := p.ResourceSpace().Clamp(t.Arrays, t.Cols, t.Rows)
	e := &Exec{
		target:   t,
		prog:     p,
		space:    sp,
		numCells: sp.Arrays * sp.BufCols * sp.Rows,
		bufCols:  t.Cols,
		numBuf:   sp.Arrays * t.Cols,
		slots:    make(map[string]int),
	}
	cellDef := make([]bool, e.numCells)
	bufDef := make([]bool, e.numBuf)
	classIdx := make(map[isa.SenseClass]int32)
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return nil, decodeErr(i, in, err)
		}
		var err error
		switch in.Kind {
		case isa.KindRead:
			err = e.decodeRead(in, cellDef, bufDef, classIdx)
		case isa.KindWrite:
			err = e.decodeWrite(i, in, cellDef, bufDef)
		case isa.KindShift:
			err = e.decodeShift(in, bufDef)
		case isa.KindNot:
			err = e.decodeNot(in, bufDef)
		}
		if err != nil {
			return nil, decodeErr(i, in, err)
		}
	}
	e.defined = cellDef
	return e, nil
}

func decodeErr(i int, in isa.Instruction, err error) error {
	return fmt.Errorf("sim: instruction %d (%s): %w", i, in, err)
}

func (e *Exec) cellOff(a, c, r int) int { return (a*e.space.BufCols+c)*e.space.Rows + r }
func (e *Exec) bufOff(a, c int) int     { return a*e.bufCols + c }

func (e *Exec) checkPlace(array, col, row int) error {
	if array < 0 || array >= e.target.Arrays {
		return fmt.Errorf("sim: array %d outside target", array)
	}
	if col < 0 || col >= e.target.Cols {
		return fmt.Errorf("sim: column %d outside target", col)
	}
	if row < 0 || row >= e.target.Rows {
		return fmt.Errorf("sim: row %d outside target", row)
	}
	return nil
}

func (e *Exec) classFor(classIdx map[isa.SenseClass]int32, op logic.Op, rows int) int32 {
	cls := isa.SenseClass{Op: op, Rows: rows}
	if id, ok := classIdx[cls]; ok {
		return id
	}
	id := int32(len(e.classes))
	e.classes = append(e.classes, cls)
	classIdx[cls] = id
	return id
}

func (e *Exec) slotFor(name string) int {
	if s, ok := e.slots[name]; ok {
		return s
	}
	s := len(e.inputNames)
	e.inputNames = append(e.inputNames, name)
	e.slots[name] = s
	return s
}

func foldKind(op logic.Op) (uint8, bool, error) {
	switch op {
	case logic.And:
		return uopFoldAnd, false, nil
	case logic.Nand:
		return uopFoldAnd, true, nil
	case logic.Or:
		return uopFoldOr, false, nil
	case logic.Nor:
		return uopFoldOr, true, nil
	case logic.Xor:
		return uopFoldXor, false, nil
	case logic.Xnor:
		return uopFoldXor, true, nil
	}
	return 0, false, fmt.Errorf("unsupported CIM op %v", op)
}

func (e *Exec) decodeRead(in isa.Instruction, cellDef, bufDef []bool, classIdx map[isa.SenseClass]int32) error {
	a := in.Array
	if a >= e.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	for _, r := range in.Rows {
		if err := e.checkPlace(a, 0, r); err != nil {
			return err
		}
	}
	cim := in.IsCIMRead()
	rows0 := int32(len(e.rowOffs))
	for _, r := range in.Rows {
		e.rowOffs = append(e.rowOffs, int32(r))
	}
	rows1 := int32(len(e.rowOffs))
	// Fuse runs of ADJACENT same-op columns into one micro-op. Splitting on
	// every op change (not grouping all columns of an op) keeps the fault
	// sampler's per-column draw order identical to the interpreting
	// machines: all sense classes share one RNG, so cross-class call order
	// is part of the determinism contract.
	open := -1
	var runOp logic.Op
	for ci, c := range in.Cols {
		if err := e.checkPlace(a, c, in.Rows[0]); err != nil {
			return err
		}
		if cim {
			for _, r := range in.Rows {
				if !cellDef[e.cellOff(a, c, r)] {
					return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
				}
			}
			op := in.Ops[ci]
			if open < 0 || op != runOp {
				kind, inv, err := foldKind(op)
				if err != nil {
					return err
				}
				e.ops = append(e.ops, microOp{
					kind: kind, inv: inv,
					class: e.classFor(classIdx, op, len(in.Rows)),
					p0:    int32(len(e.srcs)),
					rows0: rows0, rows1: rows1,
				})
				open, runOp = len(e.ops)-1, op
			}
			e.srcs = append(e.srcs, int32(e.cellOff(a, c, 0)))
		} else {
			r := in.Rows[0]
			if !cellDef[e.cellOff(a, c, r)] {
				return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
			}
			if open < 0 {
				e.ops = append(e.ops, microOp{kind: uopCopy, class: -1, p0: int32(len(e.srcs))})
				open = len(e.ops) - 1
			}
			e.srcs = append(e.srcs, int32(e.cellOff(a, c, r)))
		}
		e.dsts = append(e.dsts, int32(e.bufOff(a, c)))
		e.ops[open].p1 = int32(len(e.srcs))
		bufDef[e.bufOff(a, c)] = true
	}
	return nil
}

func (e *Exec) decodeWrite(instr int, in isa.Instruction, cellDef, bufDef []bool) error {
	a, row := in.Array, in.Rows[0]
	if a >= e.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	src := a
	if in.HasSrcArray {
		src = in.SrcArray
		if src >= e.target.Arrays {
			return fmt.Errorf("source array %d outside target", src)
		}
	}
	kind := uopBufWrite
	if in.IsHostWrite() {
		kind = uopHostWrite
	}
	e.ops = append(e.ops, microOp{kind: kind, class: -1, p0: int32(len(e.srcs))})
	oi := len(e.ops) - 1
	for ci, c := range in.Cols {
		if err := e.checkPlace(a, c, row); err != nil {
			return err
		}
		if kind == uopHostWrite {
			slot := e.slotFor(in.Bindings[ci])
			e.bindUses = append(e.bindUses, bindUse{instr: int32(instr), slot: int32(slot)})
			e.srcs = append(e.srcs, int32(slot))
		} else {
			if !bufDef[e.bufOff(src, c)] {
				return fmt.Errorf("write from undefined row-buffer bit [%d][%d]", src, c)
			}
			e.srcs = append(e.srcs, int32(e.bufOff(src, c)))
		}
		off := e.cellOff(a, c, row)
		e.dsts = append(e.dsts, int32(off))
		cellDef[off] = true
	}
	e.ops[oi].p1 = int32(len(e.srcs))
	return nil
}

func (e *Exec) decodeShift(in isa.Instruction, bufDef []bool) error {
	a := in.Array
	if a >= e.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	d := in.ShiftBy
	if !in.Right {
		d = -d
	}
	// Definedness moves with the data; columns shifted in from outside are
	// undefined again.
	n := e.bufCols
	region := bufDef[a*n : a*n+n]
	old := append([]bool(nil), region...)
	for c := 0; c < n; c++ {
		if s := c - d; s >= 0 && s < n {
			region[c] = old[s]
		} else {
			region[c] = false
		}
	}
	e.ops = append(e.ops, microOp{kind: uopShift, class: -1, array: int32(a), dist: int32(d)})
	return nil
}

func (e *Exec) decodeNot(in isa.Instruction, bufDef []bool) error {
	a := in.Array
	if a >= e.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	e.ops = append(e.ops, microOp{kind: uopNot, class: -1, p0: int32(len(e.srcs))})
	oi := len(e.ops) - 1
	for _, c := range in.Cols {
		if c >= e.bufCols {
			return fmt.Errorf("column %d outside target", c)
		}
		if !bufDef[e.bufOff(a, c)] {
			return fmt.Errorf("NOT of undefined row-buffer bit [%d][%d]", a, c)
		}
		// srcs and dsts stay in lockstep across every micro-op, so NOT
		// mirrors its target into both pools.
		e.srcs = append(e.srcs, int32(e.bufOff(a, c)))
		e.dsts = append(e.dsts, int32(e.bufOff(a, c)))
	}
	e.ops[oi].p1 = int32(len(e.srcs))
	return nil
}

// Target returns the fabric the program was decoded against.
func (e *Exec) Target() layout.Target { return e.target }

// NumSlots returns the number of distinct host-input slots.
func (e *Exec) NumSlots() int { return len(e.inputNames) }

// InputNames returns the host-write input names in slot order — the
// program's first-use order, identical to isa.Program.Bindings.
func (e *Exec) InputNames() []string { return append([]string(nil), e.inputNames...) }

// Slot resolves an input name to its slot, reporting whether the program
// consumes it.
func (e *Exec) Slot(name string) (int, bool) {
	s, ok := e.slots[name]
	return s, ok
}

// Defined reports whether the program leaves the cell holding data — the
// decode-time definedness that gates ReadOutWord. Places outside the
// decoded space are simply undefined.
func (e *Exec) Defined(p layout.Place) bool {
	if p.Array < 0 || p.Array >= e.space.Arrays ||
		p.Col < 0 || p.Col >= e.space.BufCols ||
		p.Row < 0 || p.Row >= e.space.Rows {
		return false
	}
	return e.defined[e.cellOff(p.Array, p.Col, p.Row)]
}

// MicroOps returns the decoded micro-op count (fused instruction steps).
func (e *Exec) MicroOps() int { return len(e.ops) }

// SenseClasses returns how many distinct (op, rows) fault classes the
// program exercises.
func (e *Exec) SenseClasses() int { return len(e.classes) }
