package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

// WordLanes is the SWAR width of the lane machine: how many independent
// input vectors one LaneMachine pass executes.
const WordLanes = 64

// LaneMachine is the word-parallel functional CIM simulator: the SWAR
// (SIMD-within-a-register) counterpart of Machine. Where Machine stores one
// bool per cell and executes the program for a single input vector, the
// lane machine packs up to 64 independent input vectors into the bits of a
// uint64 per cell and evaluates every CIM read, shift, write and readout
// with word-wide bitwise logic — one program pass per 64 vectors. This is
// the paper's own bulk-bitwise premise applied to the simulator itself:
// scouting ops are associative per lane, so AND/OR/XOR folds over row words
// compute all lanes' sense decisions at once.
//
// Bit l of every word belongs to lane l. The machine is bit-for-bit
// equivalent to running Machine once per lane, including strict-mode
// undefined-cell errors (the program is lane-uniform, so definedness is
// identical across lanes). Fault injection draws from a geometric-skip
// (binomial-thinning) sampler: decisions of one (op, rows) class form a
// stream, and the RNG is consulted once per injected flip instead of once
// per sense decision — at the paper's tiny P_DF values that is orders of
// magnitude fewer draws, with the exact same per-decision Bernoulli(P_DF)
// marginal distribution.
type LaneMachine struct {
	target layout.Target
	lanes  int
	mask   uint64 // low `lanes` bits set

	cells   [][][]uint64 // [array][row][col], bit l = lane l's cell value
	defined [][][]uint64 // definedness masks (0 or mask, lane-uniform)
	defBack []uint64     // contiguous backing of defined, for fast Reset

	rowbuf [][]uint64 // [array][col]
	bufDef [][]uint64

	faults     *laneFaultModel
	flipCounts []int // per-lane injected-fault tallies

	shiftBuf, shiftDef []uint64 // stepShift double buffers
}

// NewLaneMachine builds a zeroed lane machine for the target with the given
// number of active lanes (1..WordLanes). No cell is "defined" until
// written.
func NewLaneMachine(t layout.Target, lanes int) *LaneMachine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	m := &LaneMachine{target: t, flipCounts: make([]int, WordLanes)}
	m.cells = make([][][]uint64, t.Arrays)
	m.defined = make([][][]uint64, t.Arrays)
	m.rowbuf = make([][]uint64, t.Arrays)
	m.bufDef = make([][]uint64, t.Arrays)
	cellBack := make([]uint64, t.Arrays*t.Rows*t.Cols)
	m.defBack = make([]uint64, t.Arrays*t.Rows*t.Cols)
	for a := 0; a < t.Arrays; a++ {
		m.cells[a] = make([][]uint64, t.Rows)
		m.defined[a] = make([][]uint64, t.Rows)
		for r := 0; r < t.Rows; r++ {
			off := (a*t.Rows + r) * t.Cols
			m.cells[a][r] = cellBack[off : off+t.Cols]
			m.defined[a][r] = m.defBack[off : off+t.Cols]
		}
		m.rowbuf[a] = make([]uint64, t.Cols)
		m.bufDef[a] = make([]uint64, t.Cols)
	}
	m.shiftBuf = make([]uint64, t.Cols)
	m.shiftDef = make([]uint64, t.Cols)
	m.setLanes(lanes)
	return m
}

func (m *LaneMachine) setLanes(lanes int) {
	if lanes < 1 || lanes > WordLanes {
		panic(fmt.Sprintf("sim: lane count %d outside [1,%d]", lanes, WordLanes))
	}
	m.lanes = lanes
	if lanes == WordLanes {
		m.mask = ^uint64(0)
	} else {
		m.mask = (uint64(1) << uint(lanes)) - 1
	}
}

// Reset returns the machine to its post-construction state with a new lane
// count, reusing every allocation: definedness and fault state clear, cell
// payloads stay (they are unreadable until redefined).
func (m *LaneMachine) Reset(lanes int) {
	m.setLanes(lanes)
	clear(m.defBack)
	for a := range m.bufDef {
		clear(m.bufDef[a])
	}
	clear(m.flipCounts)
	m.faults = nil
}

// Lanes returns the number of active lanes.
func (m *LaneMachine) Lanes() int { return m.lanes }

// Mask returns the active-lane mask (bit l set iff lane l is live).
func (m *LaneMachine) Mask() uint64 { return m.mask }

// Target returns the machine's fabric description.
func (m *LaneMachine) Target() layout.Target { return m.target }

// EnableFaultInjection makes every sense decision of every lane flip with
// its decision-failure probability under the given technology parameters.
// The stream of decisions is ordered (instruction, column, lane), so a
// given seed yields one deterministic fault pattern.
func (m *LaneMachine) EnableFaultInjection(p device.Params, seed int64) {
	m.faults = &laneFaultModel{
		params: p,
		rng:    rand.New(rand.NewSource(seed)),
		skip:   make(map[isa.SenseClass]int64),
	}
}

// FaultCount reports how many sense decisions were flipped in one lane.
func (m *LaneMachine) FaultCount(lane int) int {
	if lane < 0 || lane >= m.lanes {
		panic(fmt.Sprintf("sim: lane %d outside [0,%d)", lane, m.lanes))
	}
	return m.flipCounts[lane]
}

// TotalFaults reports the flips injected across the active lanes. Entries
// beyond m.lanes are excluded: they can only hold leftovers from a wider
// earlier configuration, never live flips (the sampler confines fault words
// to live lanes).
func (m *LaneMachine) TotalFaults() int {
	total := 0
	for _, c := range m.flipCounts[:m.lanes] {
		total += c
	}
	return total
}

func (m *LaneMachine) checkPlace(array, col, row int) error {
	if array < 0 || array >= m.target.Arrays {
		return fmt.Errorf("sim: array %d outside target", array)
	}
	if col < 0 || col >= m.target.Cols {
		return fmt.Errorf("sim: column %d outside target", col)
	}
	if row < 0 || row >= m.target.Rows {
		return fmt.Errorf("sim: row %d outside target", row)
	}
	return nil
}

// Run executes the program from the machine's current state for all lanes
// at once. Host-write bindings resolve against input words (bit l = lane
// l's value). Execution stops at the first error, identifying the
// offending instruction; because the program is lane-uniform, an error in
// one lane is an error in all.
func (m *LaneMachine) Run(p isa.Program, inputs map[string]uint64) error {
	for i, in := range p {
		if err := m.step(in, inputs); err != nil {
			return fmt.Errorf("sim: instruction %d (%s): %w", i, in, err)
		}
	}
	return nil
}

func (m *LaneMachine) step(in isa.Instruction, inputs map[string]uint64) error {
	if err := in.Validate(); err != nil {
		return err
	}
	switch in.Kind {
	case isa.KindRead:
		return m.stepRead(in)
	case isa.KindWrite:
		return m.stepWrite(in, inputs)
	case isa.KindShift:
		return m.stepShift(in)
	case isa.KindNot:
		return m.stepNot(in)
	}
	return fmt.Errorf("unknown kind %v", in.Kind)
}

func (m *LaneMachine) stepRead(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	for _, r := range in.Rows {
		if err := m.checkPlace(a, 0, r); err != nil {
			return err
		}
	}
	cim := in.IsCIMRead()
	for i, c := range in.Cols {
		if err := m.checkPlace(a, c, in.Rows[0]); err != nil {
			return err
		}
		var acc uint64
		if cim {
			for _, r := range in.Rows {
				if m.defined[a][r][c]&m.mask != m.mask {
					return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
				}
			}
			op := in.Ops[i]
			switch op {
			case logic.And, logic.Nand:
				acc = ^uint64(0)
				for _, r := range in.Rows {
					acc &= m.cells[a][r][c]
				}
			case logic.Or, logic.Nor:
				for _, r := range in.Rows {
					acc |= m.cells[a][r][c]
				}
			case logic.Xor, logic.Xnor:
				for _, r := range in.Rows {
					acc ^= m.cells[a][r][c]
				}
			default:
				return fmt.Errorf("unsupported CIM op %v", op)
			}
			switch op {
			case logic.Nand, logic.Nor, logic.Xnor:
				acc = ^acc
			}
			if m.faults != nil {
				if flips := m.faults.flips(op, len(in.Rows), m.lanes); flips != 0 {
					acc ^= flips
					m.countFlips(flips)
				}
			}
		} else {
			r := in.Rows[0]
			if m.defined[a][r][c]&m.mask != m.mask {
				return fmt.Errorf("read of undefined cell [%d][%d][%d]", a, c, r)
			}
			acc = m.cells[a][r][c]
		}
		m.rowbuf[a][c] = acc & m.mask
		m.bufDef[a][c] = m.mask
	}
	return nil
}

func (m *LaneMachine) countFlips(w uint64) {
	for w != 0 {
		m.flipCounts[bits.TrailingZeros64(w)]++
		w &= w - 1
	}
}

func (m *LaneMachine) stepWrite(in isa.Instruction, inputs map[string]uint64) error {
	a, row := in.Array, in.Rows[0]
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	src := a
	if in.HasSrcArray {
		src = in.SrcArray
		if src >= m.target.Arrays {
			return fmt.Errorf("source array %d outside target", src)
		}
	}
	for i, c := range in.Cols {
		if err := m.checkPlace(a, c, row); err != nil {
			return err
		}
		var v uint64
		switch {
		case in.IsHostWrite():
			val, ok := inputs[in.Bindings[i]]
			if !ok {
				return fmt.Errorf("unbound input %q", in.Bindings[i])
			}
			v = val
		default:
			if m.bufDef[src][c]&m.mask != m.mask {
				return fmt.Errorf("write from undefined row-buffer bit [%d][%d]", src, c)
			}
			v = m.rowbuf[src][c]
		}
		m.cells[a][row][c] = v & m.mask
		m.defined[a][row][c] = m.mask
	}
	return nil
}

func (m *LaneMachine) stepShift(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	// Shift moves whole columns of the row buffer; lanes ride along inside
	// each word untouched.
	n := m.target.Cols
	nb, nd := m.shiftBuf, m.shiftDef
	d := in.ShiftBy
	if !in.Right {
		d = -d
	}
	for c := 0; c < n; c++ {
		srcCol := c - d
		if srcCol >= 0 && srcCol < n {
			nb[c] = m.rowbuf[a][srcCol]
			nd[c] = m.bufDef[a][srcCol]
		} else {
			nb[c], nd[c] = 0, 0
		}
	}
	m.rowbuf[a], m.shiftBuf = nb, m.rowbuf[a]
	m.bufDef[a], m.shiftDef = nd, m.bufDef[a]
	return nil
}

func (m *LaneMachine) stepNot(in isa.Instruction) error {
	a := in.Array
	if a >= m.target.Arrays {
		return fmt.Errorf("array %d outside target", a)
	}
	for _, c := range in.Cols {
		if c >= m.target.Cols {
			return fmt.Errorf("column %d outside target", c)
		}
		if m.bufDef[a][c]&m.mask != m.mask {
			return fmt.Errorf("NOT of undefined row-buffer bit [%d][%d]", a, c)
		}
		m.rowbuf[a][c] = ^m.rowbuf[a][c] & m.mask
	}
	return nil
}

// ReadOutWord returns the stored word at a cell (bit l = lane l's value),
// failing when the cell was never written — the host-side result readout.
func (m *LaneMachine) ReadOutWord(p layout.Place) (uint64, error) {
	if err := m.checkPlace(p.Array, p.Col, p.Row); err != nil {
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	if m.defined[p.Array][p.Row][p.Col]&m.mask != m.mask {
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	return m.cells[p.Array][p.Row][p.Col] & m.mask, nil
}

// laneFaultModel injects sense-decision faults for all lanes with a
// geometric-skip sampler. Decisions of one (op, rows) reliability class
// form a conceptual stream in execution order; instead of one Bernoulli
// draw per decision, the model draws the gap to the next flip from the
// geometric distribution Geom(P_DF) and skips that many decisions. The two
// processes are identically distributed, but at P_DF ~ 1e-6 the geometric
// form consults the RNG roughly once per million decisions instead of a
// million times.
type laneFaultModel struct {
	params device.Params
	rng    *rand.Rand
	// skip[class] counts how many upcoming decisions of the class survive
	// before the next injected flip.
	skip map[isa.SenseClass]int64
}

// maxGap caps geometric gaps so skip arithmetic cannot overflow; at any
// realistic decision count a gap this large means "never flips".
const maxGap = int64(1) << 60

// geomGap draws the number of un-flipped decisions preceding the next flip.
// Shared by laneFaultModel and execFaultModel so both consume the RNG
// identically — same seed, same fault pattern across the two executors.
func geomGap(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 0
	}
	// Inversion sampling: floor(log(1-U)/log(1-p)) ~ Geom(p), U in [0,1).
	g := math.Log1p(-rng.Float64()) / math.Log1p(-p)
	if !(g < float64(maxGap)) { // also catches NaN/Inf
		return maxGap
	}
	return int64(g)
}

func (f *laneFaultModel) gap(p float64) int64 { return geomGap(f.rng, p) }

// flips returns the fault word for one CIM-read column: `lanes` decisions
// of class (op, rows) are consumed from the class stream, and bit l is set
// iff lane l's decision flips.
func (f *laneFaultModel) flips(op logic.Op, rows, lanes int) uint64 {
	pdf := f.params.DecisionFailure(op, rows)
	if pdf <= 0 {
		return 0
	}
	cls := isa.SenseClass{Op: op, Rows: rows}
	rem, ok := f.skip[cls]
	if !ok {
		rem = f.gap(pdf)
	}
	var w uint64
	for rem < int64(lanes) {
		w |= uint64(1) << uint(rem)
		rem += 1 + f.gap(pdf)
		if rem > maxGap {
			rem = maxGap
		}
	}
	f.skip[cls] = rem - int64(lanes)
	return w
}
