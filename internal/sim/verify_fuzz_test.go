package sim

// Differential fuzz between the static verifier (internal/verify) and the
// dynamic strict mode (Predecode + the interpreting Machine). The two are
// independent implementations of the same semantics; this file is the proof
// they agree:
//
//   - verifier accepts  ⇔  Predecode succeeds  ⇔  Machine runs strict-clean
//     (with every host input bound), and
//   - on rejects, the verifier's first error is byte-identical to the
//     dynamic error, including the instruction index and rendering.
//
// Valid-by-construction programs exercise the accept side; random mutations
// of them exercise the reject side with realistic near-miss bugs (the kind
// a mapper regression would produce) rather than pure noise.

import (
	"math/rand"
	"strings"
	"testing"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/verify"
)

// TestVerifierAcceptsGeneratedPrograms: every valid-by-construction random
// program must verify without errors, with the binding order matching both
// the canonical isa order and Predecode's slot table.
func TestVerifierAcceptsGeneratedPrograms(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		pm, _ := randomProgram(rng, target, 20)
		rep := verify.Program(pm.prog, target)
		if err := rep.Err(); err != nil {
			t.Fatalf("trial %d: verifier rejected a valid program: %v\nprogram:\n%s", trial, err, pm.prog)
		}
		ex, err := Predecode(pm.prog, target)
		if err != nil {
			t.Fatalf("trial %d: predecode rejected a valid program: %v", trial, err)
		}
		want := strings.Join(pm.prog.Bindings(), ",")
		if got := strings.Join(rep.Bindings(), ","); got != want {
			t.Fatalf("trial %d: verifier bindings %q, isa bindings %q", trial, got, want)
		}
		if got := strings.Join(ex.InputNames(), ","); got != want {
			t.Fatalf("trial %d: predecode slots %q, isa bindings %q", trial, got, want)
		}
	}
}

// mutate corrupts a copy of prog with one of a set of realistic codegen
// bugs. The result may still be valid — the differential check below does
// not care which way it goes, only that all three judges agree.
func mutate(rng *rand.Rand, prog isa.Program, t layout.Target) isa.Program {
	out := make(isa.Program, len(prog))
	for i, in := range prog {
		out[i] = in
		out[i].Cols = append([]int(nil), in.Cols...)
		out[i].Rows = append([]int(nil), in.Rows...)
		out[i].Ops = append([]logic.Op(nil), in.Ops...)
		out[i].Bindings = append([]string(nil), in.Bindings...)
	}
	if len(out) == 0 {
		return out
	}
	i := rng.Intn(len(out))
	switch rng.Intn(8) {
	case 0: // array out of range
		out[i].Array = t.Arrays + rng.Intn(3)
	case 1: // row out of range (kept sorted: bump the last row)
		if len(out[i].Rows) > 0 {
			out[i].Rows[len(out[i].Rows)-1] = t.Rows + rng.Intn(3)
		}
	case 2: // column out of range (kept sorted: bump the last column)
		if len(out[i].Cols) > 0 {
			out[i].Cols[len(out[i].Cols)-1] = t.Cols + rng.Intn(3)
		}
	case 3: // drop an instruction: later consumers may go undefined
		out = append(out[:i], out[i+1:]...)
	case 4: // swap two instructions: reorder hazards
		j := rng.Intn(len(out))
		out[i], out[j] = out[j], out[i]
	case 5: // insert a read of a random (likely undefined) cell
		in := isa.Instruction{Kind: isa.KindRead, Array: rng.Intn(t.Arrays),
			Cols: []int{rng.Intn(t.Cols)}, Rows: []int{rng.Intn(t.Rows)}}
		out = append(out[:i], append(isa.Program{in}, out[i:]...)...)
	case 6: // corrupt a scouting op into a non-sense op (structural break)
		if len(out[i].Ops) > 0 {
			out[i].Ops[rng.Intn(len(out[i].Ops))] = logic.Not
		}
	case 7: // unsort a column list (structural break)
		if len(out[i].Cols) > 1 {
			out[i].Cols[0], out[i].Cols[1] = out[i].Cols[1], out[i].Cols[0]
		}
	}
	return out
}

// TestVerifierMatchesStrictModeOnMutants is the reject-side oracle: for
// thousands of mutated programs, the static verdict must equal the dynamic
// one — same accept/reject decision and byte-identical first error from
// both Predecode and the interpreting Machine.
func TestVerifierMatchesStrictModeOnMutants(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(202))
	rejected := 0
	const trials = 600
	for trial := 0; trial < trials; trial++ {
		pm, _ := randomProgram(rng, target, 16)
		prog := mutate(rng, pm.prog, target)

		_, errD := Predecode(prog, target)
		errV := verify.Program(prog, target).Err()
		if (errD == nil) != (errV == nil) {
			t.Fatalf("trial %d: predecode err %v, verifier err %v\nprogram:\n%s", trial, errD, errV, prog)
		}
		if errD != nil {
			rejected++
			if errD.Error() != errV.Error() {
				t.Fatalf("trial %d: error text mismatch\npredecode: %v\nverifier:  %v\nprogram:\n%s",
					trial, errD, errV, prog)
			}
		}

		// The interpreting machine must agree too, with every input bound so
		// the only failures left are the statically decidable ones.
		inputs := make(map[string]bool)
		for _, n := range prog.Bindings() {
			inputs[n] = rng.Intn(2) == 1
		}
		errM := NewMachine(target).Run(prog, inputs)
		if (errM == nil) != (errV == nil) {
			t.Fatalf("trial %d: machine err %v, verifier err %v\nprogram:\n%s", trial, errM, errV, prog)
		}
		if errM != nil && errM.Error() != errV.Error() {
			t.Fatalf("trial %d: error text mismatch\nmachine:  %v\nverifier: %v\nprogram:\n%s",
				trial, errM, errV, prog)
		}
	}
	// The mutation set must actually exercise the reject side.
	if rejected < trials/10 {
		t.Fatalf("only %d/%d mutants rejected; mutation set too tame", rejected, trials)
	}
}
