package sim

import (
	"strings"
	"testing"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
)

func smallTarget() layout.Target { return layout.Target{Arrays: 2, Rows: 8, Cols: 4} }

func run(t *testing.T, text string, inputs map[string]bool) *Machine {
	t.Helper()
	p, err := isa.ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(smallTarget())
	if err := m.Run(p, inputs); err != nil {
		t.Fatal(err)
	}
	return m
}

func cell(t *testing.T, m *Machine, a, c, r int) bool {
	t.Helper()
	v, err := m.ReadOut(layout.Place{Array: a, Col: c, Row: r})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHostWriteAndReadback(t *testing.T) {
	m := run(t, "Write [0][0,2][3] <a,b>", map[string]bool{"a": true, "b": false})
	if !cell(t, m, 0, 0, 3) || cell(t, m, 0, 2, 3) {
		t.Error("host write stored wrong bits")
	}
	if _, err := m.ReadOut(layout.Place{Array: 0, Col: 1, Row: 3}); err == nil {
		t.Error("readout of untouched cell should fail")
	}
}

func TestCIMReadComputesPerColumnOps(t *testing.T) {
	text := `
Write [0][0,1][0] <a0,b0>
Write [0][0,1][1] <a1,b1>
Read [0][0,1][0,1] [AND,OR]
Write [0][0,1][2]
`
	m := run(t, text, map[string]bool{"a0": true, "a1": true, "b0": true, "b1": false})
	if !cell(t, m, 0, 0, 2) { // AND(1,1)
		t.Error("AND column wrong")
	}
	if !cell(t, m, 0, 1, 2) { // OR(1,0)
		t.Error("OR column wrong")
	}
}

func TestMultiRowXorParity(t *testing.T) {
	text := `
Write [0][0][0] <x0>
Write [0][0][1] <x1>
Write [0][0][2] <x2>
Read [0][0][0,1,2] [XOR]
Write [0][0][3]
`
	m := run(t, text, map[string]bool{"x0": true, "x1": true, "x2": true})
	if !cell(t, m, 0, 0, 3) {
		t.Error("XOR3 of three ones should be 1")
	}
}

func TestNotAndShift(t *testing.T) {
	text := `
Write [0][0][0] <x>
Read [0][0][0]
Not [0][0]
Shift [0] R[2]
Write [0][2][1]
`
	m := run(t, text, map[string]bool{"x": false})
	if !cell(t, m, 0, 2, 1) {
		t.Error("NOT+shift chain wrong: want NOT(0)=1 moved to column 2")
	}
}

func TestShiftLeft(t *testing.T) {
	text := `
Write [0][3][0] <x>
Read [0][3][0]
Shift [0] L[3]
Write [0][0][1]
`
	m := run(t, text, map[string]bool{"x": true})
	if !cell(t, m, 0, 0, 1) {
		t.Error("left shift by 3 should move col 3 to col 0")
	}
}

func TestShiftDropsBitsAtEdge(t *testing.T) {
	// After shifting right by 2, column 3's old bit falls off; writing
	// from a now-undefined position must fail.
	text := `
Write [0][3][0] <x>
Read [0][3][0]
Shift [0] R[2]
Write [0][3][1]
`
	p, _ := isa.ParseProgram(text)
	m := NewMachine(smallTarget())
	err := m.Run(p, map[string]bool{"x": true})
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("want undefined-bit error, got %v", err)
	}
}

func TestCrossArrayWrite(t *testing.T) {
	text := `
Write [0][1][0] <x>
Read [0][1][0]
Write [1][1][5] @[0]
`
	m := run(t, text, map[string]bool{"x": true})
	if !cell(t, m, 1, 1, 5) {
		t.Error("cross-array write lost the bit")
	}
}

func TestStrictModeCatchesUndefinedRead(t *testing.T) {
	p, _ := isa.ParseProgram("Read [0][0][0]")
	m := NewMachine(smallTarget())
	if err := m.Run(p, nil); err == nil {
		t.Error("read of undefined cell accepted")
	}
}

func TestRunErrorsIdentifyInstruction(t *testing.T) {
	text := "Write [0][0][0] <x>\nRead [0][0][7]\n"
	p, _ := isa.ParseProgram(text)
	m := NewMachine(smallTarget())
	err := m.Run(p, map[string]bool{"x": true})
	if err == nil || !strings.Contains(err.Error(), "instruction 1") {
		t.Errorf("error %v should blame instruction 1", err)
	}
}

func TestRunRejectsOutOfTargetAddresses(t *testing.T) {
	for _, text := range []string{
		"Write [5][0][0] <x>",
		"Write [0][0][99] <x>",
		"Read [0][0][0,99] [AND]",
	} {
		p, err := isa.ParseProgram(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		m := NewMachine(smallTarget())
		if err := m.Run(p, map[string]bool{"x": true}); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestUnboundInputFails(t *testing.T) {
	p, _ := isa.ParseProgram("Write [0][0][0] <mystery>")
	m := NewMachine(smallTarget())
	if err := m.Run(p, map[string]bool{}); err == nil {
		t.Error("unbound input accepted")
	}
}

func TestFaultInjectionFlipsEventually(t *testing.T) {
	// STT-MRAM XOR has a high P_DF; over many trials faults must appear,
	// and with faults disabled results stay exact.
	prog := isa.Program{
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{1}, Bindings: []string{"b"}},
		{Kind: isa.KindRead, Cols: []int{0}, Rows: []int{0, 1}, Ops: []logic.Op{logic.Xor}},
		{Kind: isa.KindWrite, Cols: []int{0}, Rows: []int{2}},
	}
	in := map[string]bool{"a": true, "b": false}
	params := device.ParamsFor(device.STTMRAM)
	// Inflate variability to make flips frequent enough for a fast test.
	params.RelSDLRS, params.RelSDHRS = 0.5, 0.5

	flips := 0
	for seed := int64(0); seed < 300; seed++ {
		m := NewMachine(smallTarget())
		m.EnableFaultInjection(params, seed)
		if err := m.Run(prog, in); err != nil {
			t.Fatal(err)
		}
		flips += m.FaultCount()
	}
	if flips == 0 {
		t.Error("no faults injected over 300 noisy trials")
	}

	m := NewMachine(smallTarget())
	if err := m.Run(prog, in); err != nil {
		t.Fatal(err)
	}
	if m.FaultCount() != 0 {
		t.Error("faults without fault injection enabled")
	}
	if v := cell(t, m, 0, 0, 2); !v {
		t.Error("fault-free XOR wrong")
	}
}

func TestMeasureBreakdownSums(t *testing.T) {
	text := `
Write [0][0][0] <a>
Write [0][0][1] <b>
Read [0][0][0,1] [AND]
Not [0][0]
Shift [0] R[1]
Write [0][1][2]
Write [1][1][2] @[0]
`
	p, err := isa.ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	cm := arraymodel.New(arraymodel.Config{Tech: device.ReRAM, Rows: 8, Cols: 4, DataWidth: 16})
	c, err := Measure(p, cm)
	if err != nil {
		t.Fatal(err)
	}
	if c.LatencyNS <= 0 || c.EnergyPJ <= 0 {
		t.Fatal("non-positive totals")
	}
	sumNS := c.ReadNS + c.WriteNS + c.ShiftNS + c.NotNS + c.HostNS
	if diff := c.LatencyNS - sumNS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("latency breakdown does not sum: %g vs %g", c.LatencyNS, sumNS)
	}
	if c.HostNS <= 0 || c.ShiftNS <= 0 || c.NotNS <= 0 {
		t.Error("expected every class to be populated")
	}
	if c.EDP() != c.EnergyPJ*c.LatencyNS {
		t.Error("EDP definition drifted")
	}
	// Cross-array write costs more than a plain write of same width.
	plain, _ := Measure(isa.Program{{Kind: isa.KindWrite, Cols: []int{1}, Rows: []int{2}}}, cm)
	cross, _ := Measure(isa.Program{{Kind: isa.KindWrite, Array: 1, Cols: []int{1}, Rows: []int{2}, HasSrcArray: true, SrcArray: 0}}, cm)
	if cross.LatencyNS <= plain.LatencyNS || cross.EnergyPJ <= plain.EnergyPJ {
		t.Error("cross-array write should cost extra")
	}
}

func TestMeasureRejectsInvalidProgram(t *testing.T) {
	cm := arraymodel.New(arraymodel.Config{Tech: device.ReRAM, Rows: 8, Cols: 4, DataWidth: 16})
	if _, err := Measure(isa.Program{{Kind: isa.KindShift}}, cm); err == nil {
		t.Error("invalid instruction accepted by Measure")
	}
}
