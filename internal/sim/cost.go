package sim

import (
	"fmt"

	"sherlock/internal/arraymodel"
	"sherlock/internal/isa"
)

// Cost is the accounted execution cost of a program on one array
// configuration. Latency assumes the arrays share a command bus and execute
// one instruction at a time (the conservative model the paper's latency
// numbers imply); energy is the sum over instructions.
type Cost struct {
	LatencyNS float64
	EnergyPJ  float64

	// Breakdown by instruction class.
	ReadNS, WriteNS, ShiftNS, NotNS, HostNS float64
	ReadPJ, WritePJ, ShiftPJ, NotPJ, HostPJ float64
}

// LatencyUS returns the latency in microseconds.
func (c Cost) LatencyUS() float64 { return c.LatencyNS / 1e3 }

// EnergyUJ returns the energy in microjoules.
func (c Cost) EnergyUJ() float64 { return c.EnergyPJ / 1e6 }

// EDP returns the energy-delay product in pJ·ns (the Fig. 7 metric up to a
// constant factor).
func (c Cost) EDP() float64 { return c.EnergyPJ * c.LatencyNS }

// ScaleEnergy multiplies every energy component by f (e.g. the SIMD lane
// count of the macro); latency is unaffected.
func (c Cost) ScaleEnergy(f float64) Cost {
	c.EnergyPJ *= f
	c.ReadPJ *= f
	c.WritePJ *= f
	c.ShiftPJ *= f
	c.NotPJ *= f
	c.HostPJ *= f
	return c
}

// interArrayBusNS/PJ cost the cross-array write path on top of a regular
// write: one hop over the inter-array bus.
const (
	interArrayBusNS       = 2.0
	interArrayBusPJPerCol = 0.5
)

// Measure accounts latency and energy for the program under the cost model.
func Measure(p isa.Program, m *arraymodel.CostModel) (Cost, error) {
	var c Cost
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return Cost{}, fmt.Errorf("sim: instruction %d (%s): %w", i, in, err)
		}
		switch in.Kind {
		case isa.KindRead:
			ns := m.ReadNS(len(in.Rows))
			pj := m.ReadEnergyPJ(len(in.Cols), len(in.Rows))
			c.ReadNS += ns
			c.ReadPJ += pj
		case isa.KindWrite:
			switch {
			case in.IsHostWrite():
				c.HostNS += m.HostWriteNS()
				c.HostPJ += m.HostWriteEnergyPJ(len(in.Cols))
			case in.HasSrcArray:
				c.WriteNS += m.WriteNS() + interArrayBusNS
				c.WritePJ += m.WriteEnergyPJ(len(in.Cols)) + interArrayBusPJPerCol*float64(len(in.Cols))
			default:
				c.WriteNS += m.WriteNS()
				c.WritePJ += m.WriteEnergyPJ(len(in.Cols))
			}
		case isa.KindShift:
			c.ShiftNS += m.ShiftNS(in.ShiftBy)
			c.ShiftPJ += m.ShiftEnergyPJ(in.ShiftBy)
		case isa.KindNot:
			c.NotNS += m.NotNS()
			c.NotPJ += m.NotEnergyPJ(len(in.Cols))
		}
	}
	c.LatencyNS = c.ReadNS + c.WriteNS + c.ShiftNS + c.NotNS + c.HostNS
	c.EnergyPJ = c.ReadPJ + c.WritePJ + c.ShiftPJ + c.NotPJ + c.HostPJ
	return c, nil
}
